// Tests for the declarative scenario subsystem (src/scenario/): the
// strict loader/validator and its diagnostics (scenario_doc.hpp), the
// canonical resolved serialization and its fixed-point/hashing contract,
// netlist compilation (compile.hpp), the committed golden configs under
// scenarios/ (GCDR_SCENARIOS_DIR), the deterministic scenario fuzzer
// (fuzz.hpp), and the daemon's scenario job kind (serve/protocol.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/json_parse.hpp"
#include "scenario/compile.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/run.hpp"
#include "scenario/scenario_doc.hpp"
#include "serve/cache.hpp"
#include "serve/executor.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "util/hash.hpp"

#ifndef GCDR_SCENARIOS_DIR
#define GCDR_SCENARIOS_DIR "scenarios"
#endif

namespace gcdr::scenario {
namespace {

// Minimal valid document the malformed cases below are mutations of.
constexpr const char* kMinimalDoc = R"({
  "schema": "gcdr.scenario/v1",
  "name": "minimal",
  "tasks": [{"kind": "differential", "prefix": "diff"}]
})";

bool load(const std::string& text, ScenarioDoc& doc,
          std::vector<Diagnostic>& diags) {
    diags.clear();
    return scenario_from_string(text, doc, diags, "<test>");
}

bool any_diag_contains(const std::vector<Diagnostic>& diags,
                       const std::string& needle) {
    for (const auto& d : diags) {
        if (d.render().find(needle) != std::string::npos) return true;
    }
    return false;
}

// --- loader basics -------------------------------------------------------

TEST(ScenarioDoc, MinimalDocumentLoads) {
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(kMinimalDoc, doc, diags))
        << (diags.empty() ? "" : diags[0].render());
    EXPECT_EQ(doc.name, "minimal");
    ASSERT_EQ(doc.tasks.size(), 1u);
    EXPECT_EQ(doc.tasks[0].kind, TaskSpec::Kind::kDifferential);
    EXPECT_EQ(doc.tasks[0].prefix, "diff");
    // Unset sections keep their documented defaults.
    EXPECT_EQ(doc.mc.max_evals, 200'000u);
    EXPECT_FALSE(doc.has_netlist);
}

TEST(ScenarioDoc, ParseErrorCarriesLineAndColumn) {
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    // Broken JSON on line 3.
    EXPECT_FALSE(load("{\n  \"schema\": \"gcdr.scenario/v1\",\n  !\n}", doc,
                      diags));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("JSON parse error"), std::string::npos);
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_EQ(diags[0].file, "<test>");
}

TEST(ScenarioDoc, ValidationDiagnosticPointsAtOffendingValue) {
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    const std::string text = "{\n"
                             "  \"schema\": \"gcdr.scenario/v1\",\n"
                             "  \"name\": \"x\",\n"
                             "  \"mc\": {\"max_evals\": 0},\n"
                             "  \"tasks\": [{\"kind\": \"differential\", "
                             "\"prefix\": \"d\"}]\n"
                             "}";
    EXPECT_FALSE(load(text, doc, diags));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].path, "mc.max_evals");
    EXPECT_EQ(diags[0].line, 4u);  // the 0 literal sits on line 4
    EXPECT_GT(diags[0].column, 0u);
}

// --- malformed-scenario table --------------------------------------------

struct MalformedCase {
    const char* label;
    const char* text;
    const char* expect;  ///< substring of some rendered diagnostic
};

// Every rejection class named in the format doc gets a table row; these
// strings are the subsystem's user interface, so changes to them are
// breaking and must show up here.
const MalformedCase kMalformed[] = {
    {"wrong schema",
     R"({"schema":"gcdr.scenario/v0","name":"x",
         "tasks":[{"kind":"differential","prefix":"d"}]})",
     "schema"},
    {"unknown top-level key",
     R"({"schema":"gcdr.scenario/v1","name":"x","bogus":1,
         "tasks":[{"kind":"differential","prefix":"d"}]})",
     "unknown key \"bogus\""},
    {"unknown model key",
     R"({"schema":"gcdr.scenario/v1","name":"x","model":{"gri_dx":0.01},
         "tasks":[{"kind":"differential","prefix":"d"}]})",
     "unknown key \"gri_dx\""},
    {"unknown task key for kind",
     R"({"schema":"gcdr.scenario/v1","name":"x",
         "tasks":[{"kind":"differential","prefix":"d","axes":[]}]})",
     "unknown key \"axes\" for kind \"differential\""},
    {"zero mc budget",
     R"({"schema":"gcdr.scenario/v1","name":"x","mc":{"max_evals":0},
         "tasks":[{"kind":"differential","prefix":"d"}]})",
     "mc.max_evals must be >= 1"},
    {"negative sweep step",
     R"({"schema":"gcdr.scenario/v1","name":"x","tasks":[
         {"kind":"ber_surface","prefix":"s","axes":[
          {"name":"sj_uipp","steps":{"from":0.5,"to":0.1,"step":-0.1}}]}]})",
     "sweep step must be positive"},
    {"duplicate task prefix",
     R"({"schema":"gcdr.scenario/v1","name":"x","tasks":[
         {"kind":"differential","prefix":"d"},
         {"kind":"differential","prefix":"d"}]})",
     "duplicate metric prefix \"d\""},
    {"netlist_run without netlist",
     R"({"schema":"gcdr.scenario/v1","name":"x",
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "needs a \"netlist\" section"},
    {"unconnected channel input",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source"},"c":{"kind":"channel"},
                      "m":{"kind":"monitor"}},
         "wires":[{"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "input din is not driven by any wire"},
    {"doubly-driven channel input",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s0":{"kind":"source"},"s1":{"kind":"source"},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s0.out","to":"c.din"},
                  {"from":"s1.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "input din is driven more than once"},
    {"dangling source output",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source"},"s2":{"kind":"source"},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "output out drives nothing"},
    {"mismatched channel params",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source"},
                      "c0":{"kind":"channel","ckj_uirms":0.01},
                      "c1":{"kind":"channel","ckj_uirms":0.02},
                      "m0":{"kind":"monitor"},"m1":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c0.din"},
                  {"from":"s.out","to":"c1.din"},
                  {"from":"c0.dout","to":"m0.in"},
                  {"from":"c1.dout","to":"m1.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "channel parameters must match"},
    {"bad grid_dx",
     R"({"schema":"gcdr.scenario/v1","name":"x","model":{"grid_dx":0.5},
         "tasks":[{"kind":"differential","prefix":"d"}]})",
     "grid_dx"},
    {"bad prefix charset",
     R"({"schema":"gcdr.scenario/v1","name":"x",
         "tasks":[{"kind":"differential","prefix":"Bad Prefix"}]})",
     "prefix"},
    {"pattern combined with prbs",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source","pattern":[1,0],"prbs":7},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "cannot be combined with \"bits\" or \"prbs\""},
    {"repeat without pattern",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source","repeat":4},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "\"repeat\" only applies to a \"pattern\" source"},
    {"non-bit pattern element",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source","pattern":[1,2]},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "pattern bits must be 0 or 1"},
    {"rate_offset out of range",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source","rate_offset":0.75},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"netlist_run","prefix":"n"}]})",
     "want in [-0.5, 0.5]"},
    {"health_probe without netlist",
     R"({"schema":"gcdr.scenario/v1","name":"x",
         "tasks":[{"kind":"health_probe","prefix":"h"}]})",
     "health_probe task needs a \"netlist\" section"},
    {"health_probe frames out of range",
     R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
         "instances":{"s":{"kind":"source"},
                      "c":{"kind":"channel"},"m":{"kind":"monitor"}},
         "wires":[{"from":"s.out","to":"c.din"},
                  {"from":"c.dout","to":"m.in"}]},
         "tasks":[{"kind":"health_probe","prefix":"h","frames":0}]})",
     "want an integer in [1, 1000]"},
};

TEST(ScenarioDoc, MalformedDocumentsAreRejectedLoudly) {
    for (const auto& c : kMalformed) {
        ScenarioDoc doc;
        std::vector<Diagnostic> diags;
        EXPECT_FALSE(load(c.text, doc, diags)) << c.label;
        EXPECT_FALSE(diags.empty()) << c.label;
        EXPECT_TRUE(any_diag_contains(diags, c.expect))
            << c.label << ": wanted \"" << c.expect << "\", got \""
            << (diags.empty() ? "" : diags[0].render()) << "\"";
    }
}

TEST(ScenarioDoc, CollectsMultipleDiagnosticsInOnePass) {
    // Two independent faults — the loader reports both, not just the
    // first (a config author fixes a whole file per iteration).
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    EXPECT_FALSE(load(
        R"({"schema":"gcdr.scenario/v1","name":"x","mc":{"max_evals":0},
            "tasks":[{"kind":"differential","prefix":"d","bogus":1}]})",
        doc, diags));
    EXPECT_TRUE(any_diag_contains(diags, "mc.max_evals must be >= 1"));
    EXPECT_TRUE(any_diag_contains(diags, "unknown key \"bogus\""));
}

// --- canonical form ------------------------------------------------------

TEST(ScenarioCanonical, ResolvedJsonIsAFixedPoint) {
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(kMinimalDoc, doc, diags));
    const std::string r1 = resolved_json(doc);
    ScenarioDoc doc2;
    ASSERT_TRUE(scenario_from_string(r1, doc2, diags, "<resolved>"))
        << (diags.empty() ? "" : diags[0].render());
    EXPECT_EQ(resolved_json(doc2), r1);
    EXPECT_EQ(scenario_hash(doc2), scenario_hash(doc));
}

TEST(ScenarioCanonical, HashIgnoresKeyOrderAndFloatSpelling) {
    ScenarioDoc a, b;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(
        R"({"schema":"gcdr.scenario/v1","name":"x",
            "model":{"sj_uipp":0.3,"grid_dx":0.002},
            "tasks":[{"kind":"differential","prefix":"d"}]})",
        a, diags));
    ASSERT_TRUE(load(
        R"({"tasks":[{"prefix":"d","kind":"differential"}],
            "model":{"grid_dx":2e-3,"sj_uipp":0.30},
            "name":"x","schema":"gcdr.scenario/v1"})",
        b, diags));
    EXPECT_EQ(resolved_json(a), resolved_json(b));
    EXPECT_EQ(scenario_hash(a), scenario_hash(b));
}

TEST(ScenarioCanonical, HashSeparatesDifferentWorkloads) {
    ScenarioDoc a, b;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(kMinimalDoc, a, diags));
    ASSERT_TRUE(load(
        R"({"schema":"gcdr.scenario/v1","name":"minimal",
            "model":{"sj_uipp":0.1},
            "tasks":[{"kind":"differential","prefix":"diff"}]})",
        b, diags));
    EXPECT_NE(scenario_hash(a), scenario_hash(b));
}

TEST(ScenarioCanonical, SweepGeneratorsExpandDeterministically) {
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(
        R"({"schema":"gcdr.scenario/v1","name":"x","tasks":[
            {"kind":"ber_surface","prefix":"s","axes":[
             {"name":"sj_uipp","steps":{"from":0.1,"to":0.5,"step":0.1}},
             {"name":"sj_freq_norm",
              "logspace":{"from":0.001,"to":0.1,"points":3}}]}]})",
        doc, diags))
        << (diags.empty() ? "" : diags[0].render());
    ASSERT_EQ(doc.tasks.size(), 1u);
    ASSERT_EQ(doc.tasks[0].axes.size(), 2u);
    const auto& steps = doc.tasks[0].axes[0].values;
    ASSERT_EQ(steps.size(), 5u);
    EXPECT_DOUBLE_EQ(steps.front(), 0.1);
    EXPECT_DOUBLE_EQ(steps.back(), 0.5);
    const auto& logs = doc.tasks[0].axes[1].values;
    ASSERT_EQ(logs.size(), 3u);
    EXPECT_NEAR(logs[1], 0.01, 1e-12);
}

TEST(ScenarioCanonical, PatternSourceAndHealthProbeRoundTrip) {
    // The health subsystem's fault-injection knobs: an explicit bit
    // pattern (replacing the PRBS stream) with a repeat count and a TX
    // rate offset, driven by a health_probe task. All three must survive
    // the resolved-form round trip byte for byte.
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(load(
        R"({"schema":"gcdr.scenario/v1","name":"x","netlist":{
            "instances":{
              "s":{"kind":"source","pattern":[1,1,0,0],"repeat":10,
                   "rate_offset":0.05,"start_ns":4.0},
              "c":{"kind":"channel"},"m":{"kind":"monitor"}},
            "wires":[{"from":"s.out","to":"c.din"},
                     {"from":"c.dout","to":"m.in"}]},
            "tasks":[{"kind":"health_probe","prefix":"h","frames":3}]})",
        doc, diags))
        << (diags.empty() ? "" : diags[0].render());
    ASSERT_EQ(doc.tasks.size(), 1u);
    EXPECT_EQ(doc.tasks[0].kind, TaskSpec::Kind::kHealthProbe);
    EXPECT_EQ(doc.tasks[0].frames, 3u);
    ASSERT_EQ(doc.netlist.sources.size(), 1u);
    const SourceSpec& s = doc.netlist.sources[0];
    EXPECT_EQ(s.pattern, (std::vector<int>{1, 1, 0, 0}));
    EXPECT_EQ(s.repeat, 10u);
    EXPECT_DOUBLE_EQ(s.rate_offset, 0.05);
    const std::string r1 = resolved_json(doc);
    ScenarioDoc doc2;
    ASSERT_TRUE(scenario_from_string(r1, doc2, diags, "<resolved>"))
        << (diags.empty() ? "" : diags[0].render());
    EXPECT_EQ(resolved_json(doc2), r1);
    EXPECT_EQ(scenario_hash(doc2), scenario_hash(doc));
}

// --- golden configs ------------------------------------------------------

TEST(ScenarioGoldens, CommittedScenariosLoadAndRoundTrip) {
    const char* goldens[] = {"fig9_ber_sj.json",    "baseline_jtol.json",
                             "multilane_smoke.json", "xval_sj030.json",
                             "fig8_timing.json",     "health_smoke.json"};
    for (const char* g : goldens) {
        const std::string path = std::string(GCDR_SCENARIOS_DIR) + "/" + g;
        ScenarioDoc doc;
        std::vector<Diagnostic> diags;
        ASSERT_TRUE(scenario_from_file(path, doc, diags))
            << path << ": "
            << (diags.empty() ? "unreadable" : diags[0].render());
        // Canonical fixed point: reloading the resolved form reproduces
        // it byte for byte (this is what makes scenario_hash a stable
        // cache/ledger key).
        const std::string r1 = resolved_json(doc);
        ScenarioDoc doc2;
        ASSERT_TRUE(scenario_from_string(r1, doc2, diags, path))
            << path << ": " << (diags.empty() ? "" : diags[0].render());
        EXPECT_EQ(resolved_json(doc2), r1) << path;
        EXPECT_EQ(scenario_hash(doc2), scenario_hash(doc)) << path;
    }
}

TEST(ScenarioGoldens, MultilaneNetlistCompiles) {
    const std::string path =
        std::string(GCDR_SCENARIOS_DIR) + "/multilane_smoke.json";
    ScenarioDoc doc;
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(scenario_from_file(path, doc, diags));
    ASSERT_TRUE(doc.has_netlist);
    const CompiledNetlist net = compile_netlist(doc.netlist);
    EXPECT_EQ(net.config.n_channels, 4);
    ASSERT_EQ(net.lanes.size(), 4u);
    // Lanes follow channel name order; each carries its source's
    // pattern length and its wire's skew.
    EXPECT_EQ(net.lanes[0].bits, 2000u);
    EXPECT_DOUBLE_EQ(net.lanes[0].skew_ps, 0.0);
    EXPECT_DOUBLE_EQ(net.lanes[3].skew_ps, 105.0);
}

// --- fuzzer --------------------------------------------------------------

TEST(ScenarioFuzz, SameSeedSameDocument) {
    const ScenarioDoc a = random_valid(7);
    const ScenarioDoc b = random_valid(7);
    EXPECT_EQ(resolved_json(a), resolved_json(b));
    EXPECT_EQ(scenario_hash(a), scenario_hash(b));
}

TEST(ScenarioFuzz, SeedsProduceDistinctValidDocuments) {
    std::vector<std::uint64_t> hashes;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const ScenarioDoc doc = random_valid(seed);
        // Every generated document must survive its own validator via
        // the canonical round trip — the fuzzer may only emit documents
        // a user could have written.
        ScenarioDoc reloaded;
        std::vector<Diagnostic> diags;
        ASSERT_TRUE(scenario_from_string(resolved_json(doc), reloaded,
                                         diags, "<fuzz>"))
            << "seed " << seed << ": "
            << (diags.empty() ? "" : diags[0].render());
        hashes.push_back(scenario_hash(doc));
    }
    std::sort(hashes.begin(), hashes.end());
    EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end())
        << "fuzz seeds collided on identical documents";
}

}  // namespace
}  // namespace gcdr::scenario

// --- serve integration ---------------------------------------------------

namespace gcdr::serve {
namespace {

JobSpec parse_or_die(const std::string& text) {
    obs::JsonValue v;
    std::string err;
    EXPECT_TRUE(obs::json_parse(text, v, &err)) << err;
    JobSpec spec;
    EXPECT_TRUE(parse_job(v, spec, err)) << err;
    return spec;
}

constexpr const char* kScenarioJob =
    R"({"type":"scenario","seed":3,"scenario":{
        "schema":"gcdr.scenario/v1","name":"serve_smoke",
        "model":{"grid_dx":0.002},
        "tasks":[{"kind":"differential","prefix":"d",
                  "behavioral_runs":0}]}})";

TEST(ServeScenario, ParsesAndHashesCanonically) {
    const JobSpec spec = parse_or_die(kScenarioJob);
    EXPECT_EQ(spec.type, JobType::kScenario);
    ASSERT_TRUE(spec.has_scenario);
    EXPECT_EQ(spec.scenario.name, "serve_smoke");

    // Key order / float spelling of the embedded document must not
    // change the config hash (same content-addressing contract as the
    // statmodel job kinds).
    const JobSpec re = parse_or_die(
        R"({"scenario":{
            "tasks":[{"behavioral_runs":0,"prefix":"d",
                      "kind":"differential"}],
            "model":{"grid_dx":2e-3},"name":"serve_smoke",
            "schema":"gcdr.scenario/v1"},"seed":3,"type":"scenario"})");
    EXPECT_EQ(resolved_spec_json(spec), resolved_spec_json(re));
    EXPECT_EQ(spec_config_hash(spec), spec_config_hash(re));
}

TEST(ServeScenario, ScenarioJobsUseTheirOwnModelVersion) {
    EXPECT_STREQ(model_version_of(JobType::kScenario), kScenarioModelVersion);
    EXPECT_STREQ(model_version_of(JobType::kBer), kModelVersion);
    // The version stamp is a cache-key component: scenario results and
    // statmodel results can never shadow each other.
    EXPECT_NE(util::fnv1a64(kScenarioModelVersion),
              util::fnv1a64(kModelVersion));
}

TEST(ServeScenario, RejectsMalformedScenarioJobs) {
    const struct {
        const char* text;
        const char* expect;
    } cases[] = {
        {R"({"type":"scenario","seed":1})", "scenario job needs"},
        {R"({"type":"scenario","config":{"grid_dx":0.01},"scenario":{
             "schema":"gcdr.scenario/v1","name":"x",
             "tasks":[{"kind":"differential","prefix":"d"}]}})",
         "not valid for scenario jobs"},
        {R"({"type":"ber","scenario":{
             "schema":"gcdr.scenario/v1","name":"x",
             "tasks":[{"kind":"differential","prefix":"d"}]}})",
         "only valid for scenario jobs"},
        {R"({"type":"scenario","scenario":{
             "schema":"gcdr.scenario/v1","name":"x",
             "tasks":[{"kind":"differential","prefix":"d","bogus":1}]}})",
         "unknown key \"bogus\""},
    };
    for (const auto& c : cases) {
        obs::JsonValue v;
        std::string err;
        ASSERT_TRUE(obs::json_parse(c.text, v, &err)) << err;
        JobSpec spec;
        EXPECT_FALSE(parse_job(v, spec, err)) << c.text;
        EXPECT_NE(err.find(c.expect), std::string::npos)
            << "wanted \"" << c.expect << "\" in \"" << err << "\"";
    }
}

TEST(ServeScenario, ExecutorCachesByteIdenticalPayloads) {
    ResultCache cache;
    JobExecutor exec(cache, nullptr);
    exec::ThreadPool pool(2);
    const JobSpec spec = parse_or_die(kScenarioJob);

    const CacheKey key = JobExecutor::key_of(spec);
    EXPECT_EQ(key.model_hash, util::fnv1a64(kScenarioModelVersion));
    EXPECT_EQ(key.seed, 3u);

    JobState job1(1, spec), job2(2, spec);
    const ExecOutcome first = exec.execute(job1, pool);
    const ExecOutcome second = exec.execute(job2, pool);
    EXPECT_EQ(first.status, JobStatus::kDone);
    EXPECT_EQ(first.cache_misses, 1u);
    EXPECT_EQ(second.cache_hits, 1u);
    EXPECT_EQ(second.cache_misses, 0u);

    // A hit serves the stored bytes verbatim: payloads are identical.
    std::string stored;
    ASSERT_TRUE(cache.lookup(key, stored));
    EXPECT_NE(first.envelope.find("\"payload\":" + stored),
              std::string::npos);
    EXPECT_NE(second.envelope.find("\"payload\":" + stored),
              std::string::npos);
    EXPECT_NE(first.envelope.find(kScenarioModelVersion),
              std::string::npos);
}

}  // namespace
}  // namespace gcdr::serve
