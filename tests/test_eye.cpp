// Tests for eye/: the clock-aligned eye generator (Sec. 3.3b) — folding,
// opening metrics, edge statistics and rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "eye/eye_diagram.hpp"
#include "util/rng.hpp"

namespace gcdr::eye {
namespace {

EyeBuilder make_two_edge_eye(double left, double right, double sigma,
                             int n, Rng& rng) {
    EyeBuilder eye(kPaperRate, 200);
    for (int i = 0; i < n; ++i) {
        eye.add_transition_phase(left + sigma * rng.gaussian());
        eye.add_transition_phase(right + sigma * rng.gaussian());
    }
    return eye;
}

TEST(Eye, FoldsAbsoluteTimesAgainstClock) {
    EyeBuilder eye(kPaperRate, 100);
    // Clock edge at 10 ns; transition 100 ps later -> phase 0.25 UI.
    eye.add_transition(SimTime::ns(10) + SimTime::ps(100), SimTime::ns(10));
    ASSERT_EQ(eye.total_transitions(), 1u);
    ASSERT_EQ(eye.phases().size(), 1u);
    EXPECT_NEAR(eye.phases()[0], 0.25, 1e-9);
}

TEST(Eye, PhaseWrapsIntoWindow) {
    EyeBuilder eye(kPaperRate, 100);
    eye.add_transition_phase(2.3);   // folds to 0.3
    eye.add_transition_phase(-0.2);  // folds to 0.8
    EXPECT_NEAR(eye.phases()[0], 0.3, 1e-9);
    EXPECT_NEAR(eye.phases()[1], 0.8, 1e-9);
}

TEST(Eye, EmptyEyeIsFullyOpen) {
    EyeBuilder eye(kPaperRate, 64);
    EXPECT_DOUBLE_EQ(eye.eye_opening_ui(), 1.0);
}

TEST(Eye, OpeningMatchesInjectedGap) {
    Rng rng(3);
    // Edges at 0.0 and 0.5 with tiny sigma: two gaps of ~0.5; opening ~0.5.
    auto eye = make_two_edge_eye(0.05, 0.55, 0.005, 5000, rng);
    EXPECT_NEAR(eye.eye_opening_ui(), 0.5, 0.05);
}

TEST(Eye, CenterFallsInsideTheGap) {
    Rng rng(5);
    auto eye = make_two_edge_eye(0.1, 0.6, 0.005, 5000, rng);
    const double c = eye.eye_center_ui();
    // The widest gap is (0.6, 1.1 mod 1): center ~0.85.
    EXPECT_GT(c, 0.6);
    EXPECT_LT(c, 1.0);
}

TEST(Eye, OpeningShrinksWithJitter) {
    Rng rng(7);
    auto crisp = make_two_edge_eye(0.0, 0.5, 0.005, 4000, rng);
    auto smeared = make_two_edge_eye(0.0, 0.5, 0.05, 4000, rng);
    EXPECT_GT(crisp.eye_opening_ui(), smeared.eye_opening_ui());
}

TEST(Eye, BerOpeningSmallerThanHitOpening) {
    Rng rng(9);
    auto eye = make_two_edge_eye(0.0, 0.5, 0.02, 20000, rng);
    const double at_hits = eye.eye_opening_ui();
    const double at_1e12 = eye.eye_opening_at_ber(1e-12);
    EXPECT_LT(at_1e12, at_hits);
    EXPECT_GT(at_1e12, 0.0);
}

TEST(Eye, EdgeSigmaRecoversInjectedSigma) {
    Rng rng(11);
    auto eye = make_two_edge_eye(0.2, 0.7, 0.03, 20000, rng);
    EXPECT_NEAR(eye.edge_sigma_ui(0.2), 0.03, 0.005);
    EXPECT_NEAR(eye.edge_sigma_ui(0.7), 0.03, 0.005);
}

TEST(Eye, AsciiArtHasMarkerAndRows) {
    Rng rng(13);
    auto eye = make_two_edge_eye(0.1, 0.6, 0.02, 2000, rng);
    const auto art = eye.ascii_art(8, 0.35);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('^'), std::string::npos);
    EXPECT_NE(art.find("sampling instant"), std::string::npos);
}

TEST(Eye, CsvHasOneRowPerBin) {
    EyeBuilder eye(kPaperRate, 64);
    eye.add_transition_phase(0.5);
    const auto csv = eye.to_csv();
    // Header + 64 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 65);
}

TEST(Eye, TwoUiWindowForDoubleEyes) {
    EyeBuilder eye(kPaperRate, 128, 2.0);
    eye.add_transition_phase(1.5);
    EXPECT_NEAR(eye.phases()[0], 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(eye.width_ui(), 2.0);
}

}  // namespace
}  // namespace gcdr::eye
