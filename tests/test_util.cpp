// Unit tests for util/: SimTime arithmetic, RNG statistics and
// reproducibility, Gaussian-tail math, FFT convolution.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>

#include "util/fft.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace gcdr {
namespace {

TEST(SimTime, UnitConstructorsAgree) {
    EXPECT_EQ(SimTime::ps(1).femtoseconds(), 1000);
    EXPECT_EQ(SimTime::ns(1), SimTime::ps(1000));
    EXPECT_EQ(SimTime::us(1), SimTime::ns(1000));
    EXPECT_DOUBLE_EQ(SimTime::ps(400).seconds(), 400e-12);
}

TEST(SimTime, FromSecondsRoundsToGrid) {
    EXPECT_EQ(SimTime::from_seconds(1e-12), SimTime::ps(1));
    EXPECT_EQ(SimTime::from_seconds(400e-12), SimTime::ps(400));
    EXPECT_EQ(SimTime::from_seconds(0.4e-15), SimTime::fs(0));
    EXPECT_EQ(SimTime::from_seconds(0.6e-15), SimTime::fs(1));
}

TEST(SimTime, ArithmeticAndComparison) {
    const SimTime a = SimTime::ps(100);
    const SimTime b = SimTime::ps(300);
    EXPECT_EQ(a + b, SimTime::ps(400));
    EXPECT_EQ(b - a, SimTime::ps(200));
    EXPECT_EQ(a * 4, SimTime::ps(400));
    EXPECT_EQ(b / a, 3);
    EXPECT_LT(a, b);
    EXPECT_EQ(SimTime::ps(400) / 4, a);
}

TEST(SimTime, ToStringPicksUnits) {
    EXPECT_EQ(SimTime::ps(400).to_string(), "400ps");
    EXPECT_EQ(SimTime::ns(2).to_string(), "2ns");
    EXPECT_EQ(SimTime::fs(5).to_string(), "5fs");
}

TEST(LinkRate, PaperRateUiIs400ps) {
    EXPECT_DOUBLE_EQ(kPaperRate.ui_seconds(), 400e-12);
    EXPECT_EQ(kPaperRate.ui_time(), SimTime::ps(400));
    EXPECT_DOUBLE_EQ(kPaperRate.seconds_to_ui(800e-12), 2.0);
    EXPECT_DOUBLE_EQ(kPaperRate.time_to_ui(SimTime::ps(200)), 0.5);
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.generator()() == b.generator()()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformMomentsAndRange) {
    Rng rng(7);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sum2 += u * u;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, GaussianMoments) {
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
        sum3 += g * g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
    EXPECT_NEAR(sum3 / n, 0.0, 0.05);  // symmetry
}

TEST(Rng, GaussianScaled) {
    Rng rng(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(3.0, 0.5);
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 3.0, 0.01);
    EXPECT_NEAR(sum2 / n - mean * mean, 0.25, 0.01);
}

TEST(Rng, ArcsineBoundedWithHighEdgeDensity) {
    Rng rng(17);
    const double amp = 0.2;
    int near_edges = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.arcsine(amp);
        ASSERT_LE(std::abs(v), amp + 1e-12);
        if (std::abs(v) > 0.9 * amp) ++near_edges;
    }
    // Arcsine: P(|x| > 0.9a) = 1 - 2*asin(0.9)/pi ~ 0.287.
    EXPECT_NEAR(static_cast<double>(near_edges) / n, 0.287, 0.01);
}

TEST(Rng, DualDiracIsBalanced) {
    Rng rng(19);
    int pos = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.dual_dirac(0.1);
        ASSERT_TRUE(v == 0.1 || v == -0.1);
        if (v > 0) ++pos;
    }
    EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, IndexWithinBounds) {
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.index(17), 17u);
    }
    EXPECT_EQ(rng.index(0), 0u);
}

TEST(Rng, LongJumpDecorrelates) {
    Xoshiro256 a(5);
    Xoshiro256 b(5);
    b.long_jump();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, ReferenceVectors) {
    // First outputs after splitmix64 state seeding, cross-checked against
    // an independent implementation of Blackman & Vigna's xoshiro256++.
    // Pins both the seeding path and the output scrambler: any change to
    // either silently reshuffles every "deterministic" result in the repo.
    struct Case {
        std::uint64_t seed;
        std::uint64_t out[6];
    };
    const Case cases[] = {
        {0x9E3779B97F4A7C15ull,
         {0x58f24f57e97e3f07ull, 0x5f9a9d6f9a653406ull,
          0x6534ee33d1fd29d7ull, 0x2e89656c364e9184ull,
          0xf3f9cb7e6c53ebbbull, 0x69e9c62bd0cff7bcull}},
        {42ull,
         {0xd0764d4f4476689full, 0x519e4174576f3791ull,
          0xfbe07cfb0c24ed8cull, 0xb37d9f600cd835b8ull,
          0xcb231c3874846a73ull, 0x968d9f004e50de7dull}},
        {1ull,
         {0xcfc5d07f6f03c29bull, 0xbf424132963fe08dull,
          0x19a37d5757aaf520ull, 0xbf08119f05cd56d6ull,
          0x2f47184b86186fa4ull, 0x97299fcae7202345ull}},
    };
    for (const Case& c : cases) {
        Xoshiro256 g(c.seed);
        for (std::uint64_t expected : c.out) {
            EXPECT_EQ(g(), expected) << "seed " << c.seed;
        }
    }
}

TEST(Xoshiro256, LongJumpReferenceVector) {
    Xoshiro256 g(42);
    g.long_jump();
    const std::uint64_t expected[4] = {
        0x02019a87bfc0bb07ull, 0x25bee49209717963ull,
        0x210470a1c31829f5ull, 0x177eb6d945c458c2ull};
    for (std::uint64_t e : expected) EXPECT_EQ(g(), e);
}

TEST(Xoshiro256, LongJumpStreamsDoNotOverlap) {
    // Three successive long_jump() streams from one seed: windows of 8192
    // draws are pairwise disjoint (2^128-step spacing makes any overlap a
    // catastrophic implementation bug, not a coincidence).
    constexpr int kStreams = 3;
    constexpr int kWindow = 8192;
    std::set<std::uint64_t> seen;
    Xoshiro256 base(2026);
    for (int s = 0; s < kStreams; ++s) {
        Xoshiro256 g = base;
        for (int i = 0; i < kWindow; ++i) seen.insert(g());
        base.long_jump();
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kStreams) * kWindow);
}

TEST(Mathx, QFunctionKnownValues) {
    EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
    EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
    EXPECT_NEAR(q_function(7.034), 1e-12, 3e-13);  // the BER target Q
}

TEST(Mathx, QInverseRoundTrip) {
    for (double p : {0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15}) {
        EXPECT_NEAR(q_function(q_inverse(p)) / p, 1.0, 1e-6) << p;
    }
}

TEST(Mathx, Log10QMatchesDirectInBulk) {
    for (double x : {0.5, 1.0, 3.0, 7.0, 15.0, 25.0}) {
        EXPECT_NEAR(log10_q_function(x), std::log10(q_function(x)), 1e-9);
    }
}

TEST(Mathx, Log10QFarTailIsFiniteAndMonotonic) {
    double prev = log10_q_function(30.0);
    for (double x = 35.0; x <= 200.0; x += 5.0) {
        const double cur = log10_q_function(x);
        EXPECT_TRUE(std::isfinite(cur));
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

TEST(Mathx, IncompleteBetaKnownValues) {
    // I_x(a, b) references: polynomial cases are exact, the rest computed
    // with arbitrary-precision arithmetic.
    EXPECT_NEAR(beta_inc(2, 3, 0.4), 0.5248, 1e-10);
    EXPECT_NEAR(beta_inc(5, 2, 0.8), 0.65536, 1e-10);
    EXPECT_NEAR(beta_inc(10, 10, 0.5), 0.5, 1e-10);
    EXPECT_NEAR(beta_inc(0.5, 0.5, 0.3), 0.369010119566, 1e-10);
    EXPECT_NEAR(beta_inc(1, 7, 0.05), 0.301662703906, 1e-10);
    // The regime the Clopper-Pearson bounds live in: huge b, tiny x.
    EXPECT_NEAR(beta_inc(4, 999997, 3e-6), 0.352768111218, 1e-9);
}

TEST(Mathx, IncompleteBetaInverseRoundTrip) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
        for (auto [a, b] : {std::pair{2.0, 3.0}, {0.5, 0.5}, {10.0, 1.0},
                            {4.0, 999997.0}}) {
            const double x = beta_inc_inv(a, b, p);
            EXPECT_NEAR(beta_inc(a, b, x), p, 1e-8)
                << "a=" << a << " b=" << b << " p=" << p;
        }
    }
}

TEST(Mathx, DbConversions) {
    EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
    EXPECT_DOUBLE_EQ(from_db(30.0), 1000.0);
    EXPECT_NEAR(from_db(to_db(7.3)), 7.3, 1e-12);
}

TEST(Mathx, LinspaceEndpoints) {
    const auto v = linspace(1.0, 2.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 1.0);
    EXPECT_DOUBLE_EQ(v.back(), 2.0);
    EXPECT_DOUBLE_EQ(v[2], 1.5);
}

TEST(Mathx, LogspaceIsGeometric) {
    const auto v = logspace(1.0, 1000.0, 4);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_NEAR(v[1] / v[0], 10.0, 1e-9);
    EXPECT_NEAR(v[3], 1000.0, 1e-9);
}

TEST(Mathx, InterpLinearClampsAndInterpolates) {
    const std::vector<double> xs{1.0, 2.0, 4.0};
    const std::vector<double> ys{10.0, 20.0, 40.0};
    EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 5.0), 40.0);
    EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 3.0), 30.0);
    EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 15.0);
}

TEST(Mathx, TrapzIntegratesLinearExactly) {
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) ys.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(trapz(ys, 1.0), 50.0);  // integral of x over [0,10]
}

TEST(Fft, NextPow2) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fft, NextPow2GuardsAgainstOverflow) {
    // The largest representable power of two is 2^63 on a 64-bit size_t;
    // the old shift loop wrapped to 0 (infinite loop) for anything above.
    constexpr std::size_t kTop =
        (std::numeric_limits<std::size_t>::max() >> 1) + 1;
    EXPECT_EQ(next_pow2(kTop), kTop);
    EXPECT_EQ(next_pow2(kTop - 5), kTop);
    EXPECT_THROW(next_pow2(kTop + 1), std::overflow_error);
    EXPECT_THROW(next_pow2(std::numeric_limits<std::size_t>::max()),
                 std::overflow_error);
}

TEST(Fft, ForwardInverseRoundTrip) {
    std::vector<std::complex<double>> data(64);
    Rng rng(3);
    for (auto& d : data) d = {rng.uniform(), rng.uniform()};
    const auto orig = data;
    fft_inplace(data, false);
    fft_inplace(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-12);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-12);
    }
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
    std::vector<std::complex<double>> data(16, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft_inplace(data, false);
    for (const auto& d : data) {
        EXPECT_NEAR(d.real(), 1.0, 1e-12);
        EXPECT_NEAR(d.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, ConvolutionMatchesDirect) {
    Rng rng(9);
    std::vector<double> a(37), b(53);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    const auto fast = convolve_fft(a, b);
    const auto slow = convolve_direct(a, b);
    ASSERT_EQ(fast.size(), slow.size());
    ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i], slow[i], 1e-10);
    }
}

TEST(Fft, ConvolveRejectsEmptyInputs) {
    // Empty operands used to fall through to a.size() + b.size() - 1
    // arithmetic; now both convolvers reject them loudly.
    EXPECT_THROW(convolve_fft({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(convolve_fft({1.0}, {}), std::invalid_argument);
    EXPECT_THROW(convolve_direct({1.0}, {}), std::invalid_argument);
    EXPECT_THROW(convolve_direct({}, {1.0}), std::invalid_argument);
}

TEST(Fft, ConvolveCrossCheckOddAndPrimeLengths) {
    // The packed real transform must agree with the direct product for
    // every awkward length pairing (odd, prime, length-1) — these stress
    // the zero-padding and the Hermitian k/n-k recombination.
    const std::size_t lengths[] = {1, 2, 3, 5, 7, 13, 31, 97, 101};
    Rng rng(17);
    for (std::size_t la : lengths) {
        for (std::size_t lb : lengths) {
            std::vector<double> a(la), b(lb);
            for (auto& v : a) v = rng.uniform(-2.0, 2.0);
            for (auto& v : b) v = rng.uniform(-2.0, 2.0);
            const auto fast = convolve_fft(a, b);
            const auto slow = convolve_direct(a, b);
            ASSERT_EQ(fast.size(), slow.size()) << la << "x" << lb;
            for (std::size_t i = 0; i < fast.size(); ++i) {
                EXPECT_NEAR(fast[i], slow[i], 1e-10)
                    << "lengths " << la << "x" << lb << " at " << i;
            }
        }
    }
}

TEST(Fft, ConvolveSingleElementKernelScales) {
    // a (*) {k} must be exactly k*a up to FFT rounding, in either order.
    std::vector<double> a;
    Rng rng(23);
    for (int i = 0; i < 40; ++i) a.push_back(rng.uniform(-1.0, 1.0));
    for (double k : {2.5, -0.125, 0.0}) {
        for (const auto& out :
             {convolve_fft(a, {k}), convolve_fft({k}, a)}) {
            ASSERT_EQ(out.size(), a.size());
            for (std::size_t i = 0; i < out.size(); ++i) {
                EXPECT_NEAR(out[i], k * a[i], 1e-12);
            }
        }
    }
}

TEST(Fft, ConvolveNearDenormalDensities) {
    // Gaussian-tail-scale values (~1e-154 each, products ~1e-308, at the
    // denormal boundary) must come through without overflow/underflow blowup
    // and match the direct product to relative precision of the peak.
    std::vector<double> a(300), b(200);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 1e-154 * (1.0 + 0.01 * static_cast<double>(i % 7));
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = 1e-154 * (2.0 - 0.01 * static_cast<double>(i % 5));
    }
    const auto fast = convolve_fft(a, b);
    const auto slow = convolve_direct(a, b);
    ASSERT_EQ(fast.size(), slow.size());
    double peak = 0.0;
    for (double v : slow) peak = std::max(peak, std::abs(v));
    ASSERT_GT(peak, 0.0);
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_TRUE(std::isfinite(fast[i]));
        EXPECT_NEAR(fast[i], slow[i], 1e-11 * peak);
    }
}

TEST(Fft, PlanCacheGivesIdenticalBitsAcrossCalls) {
    // The per-thread twiddle cache must make repeat transforms (and
    // transforms interleaved with other sizes) bit-identical: sweeps rely
    // on convolution determinism for reproducible BER curves.
    Rng rng(31);
    std::vector<double> a(600), b(500);
    for (auto& v : a) v = rng.uniform(0.0, 1.0);
    for (auto& v : b) v = rng.uniform(0.0, 1.0);
    const auto first = convolve_fft(a, b);
    // Interleave a different size to churn the cache.
    (void)convolve_fft(std::vector<double>(17, 1.0),
                       std::vector<double>(9, 1.0));
    const auto second = convolve_fft(a, b);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]);  // bitwise, not approximate
    }
}

}  // namespace
}  // namespace gcdr
