// Tests for the gated ring oscillator: free-running frequency vs control
// current, the Fig 8 gating sequence (freeze within T/2, clock rise T/2
// after release), the T/8 lead of the improved clock tap (Fig 15), and
// white-noise jitter accumulation matching the CKJ budget.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cdr/gated_ring_osc.hpp"

namespace gcdr::cdr {
namespace {

struct Fixture {
    sim::Scheduler sched;
    Rng rng{77};
};

/// Measure the mean period of a wire's rising edges over [t0, t1].
double measured_period_ps(sim::Scheduler& sched, sim::Wire& w, SimTime t0,
                          SimTime t1) {
    std::vector<double> rises;
    w.on_change([&] {
        if (w.value() && sched.now() >= t0 && sched.now() <= t1) {
            rises.push_back(sched.now().picoseconds());
        }
    });
    sched.run_until(t1);
    if (rises.size() < 2) return 0.0;
    return (rises.back() - rises.front()) /
           static_cast<double>(rises.size() - 1);
}

TEST(Gcco, FreeRunsAtFcWithMidpointCurrent) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);  // never gated
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    const double period =
        measured_period_ps(f.sched, osc.ckout(), SimTime::ns(20),
                           SimTime::ns(420));
    EXPECT_NEAR(period, 400.0, 0.5);
    EXPECT_NEAR(osc.frequency_hz(), 2.5e9, 1.0);
}

TEST(Gcco, ControlCurrentShiftsFrequency) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    p.k_hz_per_a = 1.0e13;
    p.ic0_a = 200e-6;
    // +12.5 uA * 1e13 Hz/A = +125 MHz -> 2.625 GHz.
    GatedRingOscillator osc(f.sched, f.rng, p, trig, 212.5e-6);
    EXPECT_NEAR(osc.frequency_hz(), 2.625e9, 1.0);
    const double period =
        measured_period_ps(f.sched, osc.ckout(), SimTime::ns(20),
                           SimTime::ns(420));
    EXPECT_NEAR(period, 1e12 / 2.625e9, 0.5);
}

TEST(Gcco, NominalStageDelayIsEighthPeriod) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    EXPECT_EQ(osc.nominal_stage_delay(), SimTime::ps(50));
}

TEST(Gcco, GatingFreezesAndReleasesPerFig8) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    // Let it oscillate, then gate for 300 ps (tau = 0.75 UI).
    const SimTime t_gate = SimTime::ns(40);
    const SimTime t_release = t_gate + SimTime::ps(300);
    f.sched.schedule_at(t_gate, [&] { trig.set_now(false); });
    f.sched.schedule_at(t_release, [&] { trig.set_now(true); });

    std::vector<SimTime> rises_after_release;
    osc.ckout().on_change([&] {
        if (osc.ckout().value() && f.sched.now() >= t_release) {
            rises_after_release.push_back(f.sched.now());
        }
    });
    f.sched.run_until(t_release + SimTime::ns(4));

    // During the frozen state ckout is low; the first rise lands T/2 after
    // the release edge (Fig 8), subsequent rises every T.
    ASSERT_GE(rises_after_release.size(), 3u);
    const double first_ps =
        (rises_after_release[0] - t_release).picoseconds();
    EXPECT_NEAR(first_ps, 200.0, 3.0);  // T/2 = 200 ps
    const double second_gap =
        (rises_after_release[1] - rises_after_release[0]).picoseconds();
    EXPECT_NEAR(second_gap, 400.0, 3.0);
}

TEST(Gcco, FrozenStateSettlesWithinHalfPeriod) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    const SimTime t_gate = SimTime::ns(40);
    f.sched.schedule_at(t_gate, [&] { trig.set_now(false); });
    // After T/2 = 200 ps of gating, the ring must hold: vinv4 high, ckout
    // low, and stay there.
    f.sched.run_until(t_gate + SimTime::ps(210));
    EXPECT_TRUE(osc.stage(3).value());
    EXPECT_FALSE(osc.ckout().value());
    const auto changes_before = osc.ckout().transition_count();
    f.sched.run_until(t_gate + SimTime::ns(10));
    EXPECT_EQ(osc.ckout().transition_count(), changes_before);
}

TEST(Gcco, ImprovedClockLeadsCkoutByStageDelay) {
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    std::vector<double> ck_rises, imp_rises;
    osc.ckout().on_change([&] {
        if (osc.ckout().value()) ck_rises.push_back(f.sched.now().picoseconds());
    });
    osc.ck_improved().on_change([&] {
        if (osc.ck_improved().value()) {
            imp_rises.push_back(f.sched.now().picoseconds());
        }
    });
    f.sched.run_until(SimTime::ns(100));
    ASSERT_GT(ck_rises.size(), 10u);
    ASSERT_GT(imp_rises.size(), 10u);
    // Match each ckout rise to the nearest preceding improved-clock rise:
    // the lead must be one stage delay (50 ps).
    int matched = 0;
    for (double c : ck_rises) {
        for (double m : imp_rises) {
            if (std::abs(c - m - 50.0) < 2.0) {
                ++matched;
                break;
            }
        }
    }
    EXPECT_GT(matched, static_cast<int>(ck_rises.size()) - 3);
}

TEST(Gcco, StageSigmaForCkjInvertsAccumulation) {
    // sigma_rel chosen for 0.01 UI at CID 5 must reproduce 0.01 UI when
    // accumulated back: sigma_ui = sigma_rel * sqrt(8*cid)/8.
    const double s = GccoParams::stage_sigma_for_ckj(0.01, 5);
    EXPECT_NEAR(s * std::sqrt(8.0 * 5.0) / 8.0, 0.01, 1e-12);
}

TEST(Gcco, JitterAccumulationMatchesCkjBudget) {
    // Free-run the jittered oscillator and measure the deviation of the
    // edge at 5 UI horizons: must be ~0.01 UI RMS.
    Fixture f;
    sim::Wire trig(f.sched, "trig", true);
    GccoParams p;
    p.fc_hz = 2.5e9;
    p.jitter_sigma = GccoParams::stage_sigma_for_ckj(0.01, 5);

    // Collect rising-edge times over a long run; measure sigma of
    // (t[i+5] - t[i] - 5T) across the population.
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    std::vector<double> rises;
    osc.ckout().on_change([&] {
        if (osc.ckout().value()) rises.push_back(f.sched.now().picoseconds());
    });
    f.sched.run_until(SimTime::us(4));  // ~10k cycles
    ASSERT_GT(rises.size(), 5000u);
    std::vector<double> dev;
    for (std::size_t i = 0; i + 5 < rises.size(); i += 5) {
        dev.push_back((rises[i + 5] - rises[i] - 5.0 * 400.0) / 400.0);
    }
    double sum = 0.0, sum2 = 0.0;
    for (double d : dev) {
        sum += d;
        sum2 += d * d;
    }
    const double n = static_cast<double>(dev.size());
    const double mean = sum / n;
    const double sigma = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(sigma, 0.01, 0.0015);
    EXPECT_NEAR(mean, 0.0, 0.002);
}

TEST(Gcco, StartsFromGatedState) {
    // If trig is low at construction, the ring must settle frozen and only
    // start oscillating after the first release.
    Fixture f;
    sim::Wire trig(f.sched, "trig", false);
    GccoParams p;
    p.fc_hz = 2.5e9;
    GatedRingOscillator osc(f.sched, f.rng, p, trig, p.ic0_a);
    f.sched.run_until(SimTime::ns(5));
    const auto frozen_count = osc.ckout().transition_count();
    f.sched.run_until(SimTime::ns(10));
    EXPECT_EQ(osc.ckout().transition_count(), frozen_count);
    f.sched.schedule_at(SimTime::ns(12), [&] { trig.set_now(true); });
    f.sched.run_until(SimTime::ns(20));
    EXPECT_GT(osc.ckout().transition_count(), frozen_count + 10);
}

}  // namespace
}  // namespace gcdr::cdr
