// Parameterized property sweeps across the model space: invariants that
// must hold at every point of the (SJ frequency, offset, CID, sampling
// phase) grid, plus transistor-level pulse behaviour of the CML edge
// detector path.

#include <gtest/gtest.h>

#include <cmath>

#include "analog/cml_cells.hpp"
#include "analog/transient.hpp"
#include "statmodel/bathtub.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr {
namespace {

// ---------------------------------------------------------------------
// Statistical model invariants over a parameter grid.

struct SweepPoint {
    double sj_freq_norm;
    double freq_offset;
    int max_cid;
};

class StatSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(StatSweep, BerIsMonotoneInSjAmplitude) {
    const auto pt = GetParam();
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.sj_freq_norm = pt.sj_freq_norm;
    cfg.freq_offset = pt.freq_offset;
    cfg.max_cid = pt.max_cid;
    double prev = -1.0;
    for (double amp : {0.0, 0.25, 0.5, 1.0}) {
        cfg.spec.sj_uipp = amp;
        const double b = statmodel::ber_of(cfg);
        EXPECT_GE(b, prev * (1.0 - 1e-9));
        EXPECT_GE(b, 0.0);
        EXPECT_LE(b, 1.0);
        prev = b;
    }
}

TEST_P(StatSweep, WorstCaseUpperBoundsWeightedWithoutSj) {
    // The paper's "CID is the worst case" reasoning (Sec. 2.3) holds for
    // drift and jitter *accumulation* — both grow with run length — so
    // with no sinusoidal jitter the all-runs-at-CID model must bound the
    // weighted one. (With SJ it can fail: see SjResonanceBreaksWorstCase.)
    const auto pt = GetParam();
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.sj_freq_norm = pt.sj_freq_norm;
    cfg.freq_offset = pt.freq_offset;
    cfg.max_cid = pt.max_cid;
    cfg.spec.sj_uipp = 0.0;
    cfg.run_model = statmodel::RunModel::kWeighted;
    const double weighted = statmodel::ber_of(cfg);
    cfg.run_model = statmodel::RunModel::kWorstCase;
    EXPECT_GE(statmodel::ber_of(cfg), weighted * (1.0 - 1e-9));
}

TEST(StatSweepCounterexample, SjResonanceBreaksWorstCase) {
    // At f_SJ/f_data = 1/CID the effective SJ on the CID-length run's
    // closing edge is sin(pi) = 0: the longest run is then the *easiest*
    // bit, and the worst-case-run model underestimates the weighted BER.
    // A refinement this reproduction adds to the paper's Sec. 2.3 claim.
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.max_cid = 5;
    cfg.sj_freq_norm = 0.2;  // 1/5
    cfg.spec.sj_uipp = 0.4;
    cfg.run_model = statmodel::RunModel::kWeighted;
    const double weighted = statmodel::ber_of(cfg);
    cfg.run_model = statmodel::RunModel::kWorstCase;
    const double worst = statmodel::ber_of(cfg);
    EXPECT_LT(worst, weighted);
}

TEST_P(StatSweep, LateErrorMonotoneInRunLength) {
    const auto pt = GetParam();
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.sj_freq_norm = pt.sj_freq_norm;
    // Monotonicity in L holds for drift and accumulation; keep offset
    // non-negative so the drift direction is fixed.
    cfg.freq_offset = std::max(0.0, pt.freq_offset);
    cfg.max_cid = pt.max_cid;
    statmodel::GatedOscStatModel m(cfg);
    EXPECT_LE(m.late_error_prob(1), m.late_error_prob(pt.max_cid) + 1e-30);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StatSweep,
    ::testing::Values(SweepPoint{1e-3, 0.0, 5}, SweepPoint{1e-3, 0.01, 5},
                      SweepPoint{0.05, 0.0, 5}, SweepPoint{0.05, 0.01, 7},
                      SweepPoint{0.2, -0.01, 5}, SweepPoint{0.2, 0.02, 7},
                      SweepPoint{0.45, 0.0, 7}));

// ---------------------------------------------------------------------
// Bathtub invariants across offsets.

class BathtubSweep : public ::testing::TestWithParam<double> {};

TEST_P(BathtubSweep, OpeningNeverGrowsWithOffsetMagnitude) {
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.freq_offset = 0.0;
    const double open0 = statmodel::bathtub_opening_ui(cfg, 1e-12, 49);
    cfg.freq_offset = GetParam();
    const double open_d = statmodel::bathtub_opening_ui(cfg, 1e-12, 49);
    EXPECT_LE(open_d, open0 + 0.03);
}

TEST_P(BathtubSweep, OptimumIsInsideTheCell) {
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    cfg.freq_offset = GetParam();
    const auto best = statmodel::optimal_sampling_phase(cfg, 33);
    EXPECT_GT(best.phase_ui, 0.0);
    EXPECT_LT(best.phase_ui, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Offsets, BathtubSweep,
                         ::testing::Values(-0.02, -0.01, 0.005, 0.01, 0.02));

// ---------------------------------------------------------------------
// Transistor-level edge-detector path: the XOR must emit a pulse of width
// ~tau for an isolated data edge, at CML levels.

TEST(CmlEdgeDetector, XorEmitsTauWidePulse) {
    analog::Circuit ckt;
    analog::CmlCellParams params;
    analog::CmlNetlist nl(ckt, params);

    auto in = nl.net("in");
    nl.drive_nrz(in, {false, false, true, true, true, true}, 400e-12,
                 30e-12);
    auto delayed = nl.delay_line(in, 4, "dl");
    auto edet = nl.net("edet");
    nl.xor2(in, delayed, edet);

    analog::TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    // XOR output should go high (differentially) while in != delayed,
    // i.e. for roughly the 4-stage delay after the edge at 800 ps.
    double t_rise = -1.0, t_fall = -1.0;
    double prev = analog::diff_v(sim, edet);
    ASSERT_TRUE(sim.run_until(2.4e-9, 2e-12,
                              [&](const analog::TransientSim& s) {
        const double v = analog::diff_v(s, edet);
        if (prev < 0.0 && v >= 0.0 && t_rise < 0.0 && s.time_s() > 0.7e-9) {
            t_rise = s.time_s();
        }
        if (t_rise > 0.0 && t_fall < 0.0 && prev > 0.0 && v <= 0.0) {
            t_fall = s.time_s();
        }
        prev = v;
    }));
    ASSERT_GT(t_rise, 0.0) << "no pulse emitted";
    ASSERT_GT(t_fall, 0.0) << "pulse never ended";
    const double width = t_fall - t_rise;
    // Large-signal CML delay per stage is within a factor ~2 of the
    // first-order 0.69*RC = 50 ps estimate.
    EXPECT_GT(width, 4 * 25e-12);
    EXPECT_LT(width, 4 * 110e-12);
}

}  // namespace
}  // namespace gcdr
