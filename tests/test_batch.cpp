// Batched SoA kernel (sim/batch/) correctness anchors:
//  - lane-granular bit-identity: lane k of a ChannelBatch run equals a
//    scalar GccoChannel run with the same seed/config/edges — decisions,
//    margins, ones count and executed-event count, swept over seeds x
//    channel counts x thread counts x sampling topologies;
//  - NormalBank streams equal util::Rng::gaussian(), whether produced by
//    the vectorized top_up or the scalar on-demand refill;
//  - SIMD-vs-scalar-fallback equivalence for the convolve axpy kernel
//    (the -DGCDR_SIMD=OFF CI leg reruns this whole file against the
//    scalar build, closing the loop from the other side);
//  - the batched BehavioralMarginModel oracle returns the same margins as
//    the scalar one.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "jitter/jitter.hpp"
#include "mc/margin_model.hpp"
#include "sim/batch/channel_batch.hpp"
#include "sim/batch/lane_rng.hpp"
#include "sim/scheduler.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace gcdr;

std::vector<jitter::Edge> lane_edges(std::uint64_t edge_seed,
                                     std::size_t n_bits,
                                     const jitter::StreamParams& sp) {
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    Rng rng(edge_seed);
    return jitter::jittered_edges(gen.bits(n_bits), sp, rng);
}

struct ScalarRun {
    std::vector<cdr::Decision> decisions;
    std::vector<double> margins;
    std::uint64_t events = 0;
};

ScalarRun scalar_lane_run(const cdr::ChannelConfig& cfg,
                          std::uint64_t noise_seed,
                          const std::vector<jitter::Edge>& edges,
                          SimTime t_end) {
    sim::Scheduler sched;
    Rng rng(noise_seed);
    cdr::GccoChannel ch(sched, rng, cfg, "s");
    ch.drive(edges);
    sched.run_until(t_end);
    return ScalarRun{ch.decisions(), ch.margins_ui(), sched.executed_events()};
}

void expect_lane_matches_scalar(const sim::batch::ChannelBatch& batch,
                                std::size_t lane, const ScalarRun& ref) {
    const auto& bd = batch.decisions(lane);
    ASSERT_EQ(bd.size(), ref.decisions.size()) << "lane " << lane;
    std::uint64_t ref_ones = 0;
    for (std::size_t i = 0; i < bd.size(); ++i) {
        EXPECT_EQ(bd[i].time, ref.decisions[i].time)
            << "lane " << lane << " decision " << i;
        EXPECT_EQ(bd[i].bit, ref.decisions[i].bit)
            << "lane " << lane << " decision " << i;
        ref_ones += ref.decisions[i].bit ? 1u : 0u;
    }
    const auto& bm = batch.margins_ui(lane);
    ASSERT_EQ(bm.size(), ref.margins.size()) << "lane " << lane;
    for (std::size_t i = 0; i < bm.size(); ++i) {
        // Same fold function on identical integer times: bitwise equal.
        EXPECT_EQ(bm[i], ref.margins[i]) << "lane " << lane << " margin "
                                         << i;
    }
    EXPECT_EQ(batch.ones(lane), ref_ones) << "lane " << lane;
    EXPECT_EQ(batch.events_executed(lane), ref.events) << "lane " << lane;
}

TEST(ChannelBatch, LaneBitIdentityAcrossSeedsChannelsAndTopologies) {
    constexpr std::size_t kBits = 300;
    for (const bool improved : {false, true}) {
        auto cfg = cdr::ChannelConfig::nominal(2.5e9 / 1.03);
        cfg.improved_sampling = improved;
        jitter::StreamParams sp;
        sp.spec = jitter::JitterSpec::paper_table1();
        sp.start = SimTime::ns(4);
        const SimTime t_end =
            sp.start + cfg.rate.ui_to_time(static_cast<double>(kBits));
        for (const std::uint64_t seed : {1ull, 17ull, 99ull}) {
            for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                                        std::size_t{8}}) {
                sim::batch::ChannelBatch batch(cfg, n);
                std::vector<std::vector<jitter::Edge>> edges(n);
                for (std::size_t k = 0; k < n; ++k) {
                    edges[k] = lane_edges(exec::derive_seed(seed, 1000 + k),
                                          kBits, sp);
                    batch.seed_lane(k, exec::derive_seed(seed, k));
                    batch.drive(k, edges[k]);
                }
                batch.run_until(t_end);
                for (std::size_t k = 0; k < n; ++k) {
                    const auto ref = scalar_lane_run(
                        cfg, exec::derive_seed(seed, k), edges[k], t_end);
                    expect_lane_matches_scalar(batch, k, ref);
                }
            }
        }
    }
}

TEST(ChannelBatch, ThreadCountInvariance) {
    constexpr std::size_t kBits = 400;
    constexpr std::size_t kLanes = 6;
    auto cfg = cdr::ChannelConfig::nominal(2.5e9);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    const SimTime t_end =
        sp.start + cfg.rate.ui_to_time(static_cast<double>(kBits));

    auto run = [&](exec::ThreadPool* pool) {
        auto batch =
            std::make_unique<sim::batch::ChannelBatch>(cfg, kLanes);
        for (std::size_t k = 0; k < kLanes; ++k) {
            batch->seed_lane(k, exec::derive_seed(5, k));
            batch->drive(k, lane_edges(exec::derive_seed(5, 100 + k), kBits,
                                       sp));
        }
        batch->run_until(t_end, pool);
        return batch;
    };

    const auto serial = run(nullptr);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        exec::ThreadPool pool(threads);
        const auto pooled = run(&pool);
        for (std::size_t k = 0; k < kLanes; ++k) {
            ASSERT_EQ(pooled->decisions(k).size(),
                      serial->decisions(k).size());
            for (std::size_t i = 0; i < serial->decisions(k).size(); ++i) {
                EXPECT_EQ(pooled->decisions(k)[i].time,
                          serial->decisions(k)[i].time);
                EXPECT_EQ(pooled->decisions(k)[i].bit,
                          serial->decisions(k)[i].bit);
            }
            EXPECT_EQ(pooled->margins_ui(k), serial->margins_ui(k));
            EXPECT_EQ(pooled->events_executed(k),
                      serial->events_executed(k));
        }
    }
}

TEST(NormalBank, MatchesRngGaussianStream) {
    for (const std::uint64_t seed : {1ull, 2ull, 0xDEADBEEFull}) {
        sim::batch::NormalBank bank(3);
        bank.seed_lane(0, seed);
        bank.seed_lane(1, seed + 1);
        bank.seed_lane(2, seed ^ 0x5555);
        Rng r0(seed), r1(seed + 1), r2(seed ^ 0x5555);
        for (int i = 0; i < 5000; ++i) {
            EXPECT_EQ(bank.next(0), r0.gaussian()) << i;
            EXPECT_EQ(bank.next(1), r1.gaussian()) << i;
            EXPECT_EQ(bank.next(2), r2.gaussian()) << i;
        }
    }
}

TEST(NormalBank, VectorTopUpEqualsScalarRefill) {
    // Bank A refills exclusively through the (possibly SIMD) top_up;
    // bank B through the scalar on-demand path. Streams must agree no
    // matter how refills interleave with consumption.
    constexpr std::size_t kLanes = 5;  // odd: exercises the remainder tile
    sim::batch::NormalBank a(kLanes), b(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
        a.seed_lane(l, 42 + l);
        b.seed_lane(l, 42 + l);
    }
    for (int round = 0; round < 20; ++round) {
        a.top_up(64);
        // Uneven consumption so lanes sit at different stream offsets.
        for (std::size_t l = 0; l < kLanes; ++l) {
            const int n = 13 + static_cast<int>(l) * 7 + round;
            for (int i = 0; i < n; ++i) {
                EXPECT_EQ(a.next(l), b.next(l))
                    << "lane " << l << " round " << round << " draw " << i;
            }
        }
    }
}

TEST(SimdShim, AxpyMatchesScalar) {
    Rng rng(7);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1023}}) {
        std::vector<double> b(n), out_v(n, 0.0), out_s(n, 0.0);
        for (auto& x : b) x = rng.gaussian();
        for (int rep = 0; rep < 8; ++rep) {
            const double a = rng.gaussian();
            simd::axpy(out_v.data(), b.data(), a, n);
            simd::axpy_scalar(out_s.data(), b.data(), a, n);
        }
        for (std::size_t i = 0; i < n; ++i) {
            // Identical on FMA-free targets; allow 1-ulp-scale drift for
            // -march builds where contraction may differ.
            EXPECT_NEAR(out_v[i], out_s[i],
                        std::abs(out_s[i]) * 1e-15 + 1e-300)
                << i;
        }
    }
}

TEST(SimdShim, ConvolveDirectMatchesNaive) {
    Rng rng(11);
    std::vector<double> a(37), b(53);
    for (auto& x : a) x = rng.uniform();
    for (auto& x : b) x = rng.uniform();
    const auto got = convolve_direct(a, b);
    std::vector<double> want(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j) {
            want[i + j] += a[i] * b[j];
        }
    }
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], std::abs(want[i]) * 1e-15 + 1e-300)
            << i;
    }
}

TEST(BehavioralMarginModel, BatchedOracleMatchesScalar) {
    statmodel::ModelConfig mcfg;
    mcfg.spec.sj_uipp = 0.30;
    mcfg.sj_freq_norm = 0.5;
    auto scalar_params = mc::BehavioralMarginModel::params_from(mcfg);
    auto batch_params = scalar_params;
    batch_params.batch_lanes = 4;
    const mc::BehavioralMarginModel scalar_model(scalar_params);
    const mc::BehavioralMarginModel batch_model(batch_params);

    Rng rng(3);
    const auto pmf = mc::run_length_pmf(scalar_params.max_cid);
    std::vector<mc::RunSample> samples(23);
    for (auto& s : samples) {
        s.run_length = mc::run_length_from_uniform(pmf, rng.uniform());
        s.u_dj = rng.uniform();
        s.z_edge = rng.gaussian();
        s.z_trig = rng.gaussian();
        s.z_osc = rng.gaussian();
        s.u_phase = rng.uniform();
        s.z_early = rng.gaussian();
        s.noise_seed = rng.generator()();
    }
    std::vector<double> batched(samples.size());
    batch_model.margin_ui_batch(samples.data(), samples.size(),
                                batched.data());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(batched[i], scalar_model.margin_ui(samples[i])) << i;
    }
    EXPECT_GT(batch_model.batch_stats().evals, 0u);
}

}  // namespace
