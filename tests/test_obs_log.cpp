// Tests for obs/log.hpp: record formatting (text and JSONL), level
// parsing/filtering, sink routing on the global logger, per-call-site
// rate limiting, and concurrent emission through one sink.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/log.hpp"

namespace gcdr::obs {
namespace {

LogRecord make_record() {
    LogRecord rec;
    rec.level = LogLevel::kWarn;
    rec.wall = std::chrono::system_clock::time_point{};  // epoch
    rec.component = "obs.flight";
    rec.message = "cannot open dump";
    rec.fields.emplace_back("path", "/tmp/x.json");
    rec.fields.emplace_back("attempt", std::uint64_t{3});
    rec.fields.emplace_back("ratio", 0.25);
    rec.fields.emplace_back("fatal", false);
    return rec;
}

/// Captures records in memory for routing/concurrency assertions.
struct CaptureSink : LogSink {
    std::vector<LogRecord> records;
    void write(const LogRecord& rec) override { records.push_back(rec); }
};

/// Every test that touches the global logger restores the default
/// stderr-at-info configuration afterwards.
struct GlobalLoggerFixture : ::testing::Test {
    ~GlobalLoggerFixture() override { Logger::global().reset(); }
};

TEST(LogLevelNames, RoundTrip) {
    EXPECT_STREQ(log_level_name(LogLevel::kTrace), "trace");
    EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
    LogLevel level{};
    EXPECT_TRUE(parse_log_level("WARN", level));
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_TRUE(parse_log_level("warning", level));
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_TRUE(parse_log_level("off", level));
    EXPECT_EQ(level, LogLevel::kOff);
    EXPECT_FALSE(parse_log_level("loud", level));
    EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
}

TEST(Rfc3339, FormatsUtc) {
    EXPECT_EQ(format_utc_rfc3339(std::chrono::system_clock::time_point{}),
              "1970-01-01T00:00:00Z");
}

TEST(StderrSinkFormat, GoldenLine) {
    EXPECT_EQ(StderrSink::format(make_record()),
              "1970-01-01T00:00:00Z WARN  obs.flight: cannot open dump "
              "path=/tmp/x.json attempt=3 ratio=0.25 fatal=false");
}

TEST(StderrSinkFormat, SuppressedCountTrails) {
    LogRecord rec = make_record();
    rec.fields.clear();
    rec.suppressed = 17;
    EXPECT_EQ(StderrSink::format(rec),
              "1970-01-01T00:00:00Z WARN  obs.flight: cannot open dump "
              "suppressed=17");
}

TEST(JsonlSinkFormat, IsOneValidCompactObject) {
    const std::string line = JsonlFileSink::format(make_record());
    EXPECT_EQ(line.find('\n'), std::string::npos);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(json_parse(line, doc, &err)) << err << "\n" << line;
    EXPECT_EQ(doc.find("schema")->string_or(""), "gcdr.log/v1");
    EXPECT_EQ(doc.find("level")->string_or(""), "warn");
    EXPECT_EQ(doc.find("component")->string_or(""), "obs.flight");
    EXPECT_EQ(doc.find("message")->string_or(""), "cannot open dump");
    const JsonValue* fields = doc.find("fields");
    ASSERT_NE(fields, nullptr);
    EXPECT_EQ(fields->find("path")->string_or(""), "/tmp/x.json");
    EXPECT_EQ(fields->find("attempt")->uint_or(0), 3u);
    EXPECT_DOUBLE_EQ(fields->find("ratio")->number_or(0.0), 0.25);
    EXPECT_FALSE(fields->find("fatal")->boolean);
    EXPECT_EQ(doc.find("suppressed"), nullptr);  // omitted when zero
}

TEST_F(GlobalLoggerFixture, LevelThresholdFilters) {
    auto sink = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(sink);
    Logger::global().set_level(LogLevel::kWarn);
    EXPECT_FALSE(Logger::global().enabled(LogLevel::kInfo));
    EXPECT_TRUE(Logger::global().enabled(LogLevel::kError));
    log_info("t", "dropped");
    log_warn("t", "kept");
    log_error("t", "kept too");
    ASSERT_EQ(sink->records.size(), 2u);
    EXPECT_EQ(sink->records[0].message, "kept");
    EXPECT_EQ(sink->records[1].message, "kept too");
}

TEST_F(GlobalLoggerFixture, OffLevelSilencesEverything) {
    auto sink = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(sink);
    Logger::global().set_level(LogLevel::kOff);
    log_error("t", "even errors");
    EXPECT_TRUE(sink->records.empty());
}

TEST_F(GlobalLoggerFixture, RecordsFanOutToAllSinks) {
    auto a = std::make_shared<CaptureSink>();
    auto b = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(a);
    Logger::global().add_sink(b);
    log_info("t", "hello", {{"k", "v"}});
    ASSERT_EQ(a->records.size(), 1u);
    ASSERT_EQ(b->records.size(), 1u);
    EXPECT_EQ(a->records[0].fields[0].value_text(), "v");
}

TEST_F(GlobalLoggerFixture, LoggerStampsWallClock) {
    auto sink = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(sink);
    const auto before = std::chrono::system_clock::now();
    log_info("t", "stamped");
    ASSERT_EQ(sink->records.size(), 1u);
    EXPECT_GE(sink->records[0].wall + std::chrono::seconds(1), before);
}

TEST_F(GlobalLoggerFixture, JsonlFileSinkAppends) {
    const std::string path =
        ::testing::TempDir() + "gcdr_log_sink_test.jsonl";
    std::remove(path.c_str());
    {
        auto sink = std::make_shared<JsonlFileSink>(path);
        ASSERT_TRUE(sink->ok());
        Logger::global().clear_sinks();
        Logger::global().add_sink(sink);
        log_info("t", "first");
        log_info("t", "second");
    }
    Logger::global().reset();
    std::ifstream is(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    JsonValue doc;
    ASSERT_TRUE(json_parse(lines[1], doc, nullptr));
    EXPECT_EQ(doc.find("message")->string_or(""), "second");
    std::remove(path.c_str());
}

TEST(RateGate, AdmitsFirstThenCountsDrops) {
    LogRateGate gate(3600.0);  // effectively once per test run
    std::uint64_t suppressed = 99;
    EXPECT_TRUE(gate.admit(&suppressed));
    EXPECT_EQ(suppressed, 0u);
    for (int i = 0; i < 5; ++i) EXPECT_FALSE(gate.admit(nullptr));
    // The drop count is handed to the NEXT admitted record.
    LogRateGate fast(0.0);
    EXPECT_TRUE(fast.admit(&suppressed));
}

TEST(RateGate, ZeroIntervalAdmitsEverything) {
    LogRateGate gate(0.0);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t suppressed = 1;
        EXPECT_TRUE(gate.admit(&suppressed));
        EXPECT_EQ(suppressed, 0u);
    }
}

TEST_F(GlobalLoggerFixture, MacroRateLimitsPerCallSite) {
    auto sink = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(sink);
    for (int i = 0; i < 100; ++i) {
        GCDR_LOG_EVERY(LogLevel::kInfo, 3600.0, "t", "hot loop",
                       {"i", std::int64_t{1}});
    }
    ASSERT_EQ(sink->records.size(), 1u);
    EXPECT_EQ(sink->records[0].suppressed, 0u);  // drops follow, not lead
}

TEST_F(GlobalLoggerFixture, ConcurrentEmissionLosesNothing) {
    auto sink = std::make_shared<CaptureSink>();
    Logger::global().clear_sinks();
    Logger::global().add_sink(sink);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 250;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i) {
                log_info("t" + std::to_string(t), "m",
                         {{"i", std::int64_t{i}}});
            }
        });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(sink->records.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (const LogRecord& rec : sink->records) {
        EXPECT_EQ(rec.message, "m");
        ASSERT_EQ(rec.fields.size(), 1u);
    }
}

}  // namespace
}  // namespace gcdr::obs
