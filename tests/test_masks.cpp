// Tests for masks/: log-log interpolation and compliance checking of the
// jitter-tolerance templates (Fig 5).

#include <gtest/gtest.h>

#include "masks/jtol_mask.hpp"

namespace gcdr::masks {
namespace {

TEST(JtolMask, InterpolatesLogLog) {
    JtolMask mask("test", {{1e3, 10.0}, {1e5, 0.1}});
    // -20 dB/dec in log-log: halfway in log f is the geometric mean in A.
    EXPECT_NEAR(mask.amplitude_at(1e4), 1.0, 1e-9);
    EXPECT_NEAR(mask.amplitude_at(1e3), 10.0, 1e-12);
    EXPECT_NEAR(mask.amplitude_at(1e5), 0.1, 1e-12);
}

TEST(JtolMask, ClampsOutsideSpan) {
    JtolMask mask("test", {{1e3, 10.0}, {1e5, 0.1}});
    EXPECT_DOUBLE_EQ(mask.amplitude_at(1.0), 10.0);
    EXPECT_DOUBLE_EQ(mask.amplitude_at(1e9), 0.1);
}

TEST(JtolMask, InfinibandShape) {
    const auto mask = JtolMask::infiniband_2g5();
    const double corner = 2.5e9 / 1667.0;
    // High-frequency plateau.
    EXPECT_NEAR(mask.amplitude_at(100e6), 0.35, 1e-6);
    EXPECT_NEAR(mask.amplitude_at(corner), 0.35, 0.01);
    // One decade below the corner: 10x the plateau (-20 dB/dec).
    EXPECT_NEAR(mask.amplitude_at(corner / 10.0), 3.5, 0.05);
    // Low-frequency cap.
    EXPECT_NEAR(mask.amplitude_at(1e3), 15.0, 1e-6);
}

TEST(JtolMask, SonetOc48Plateau) {
    const auto mask = JtolMask::sonet_oc48();
    EXPECT_NEAR(mask.amplitude_at(50e6), 0.37, 1e-6);
    EXPECT_GT(mask.amplitude_at(100.0), 100.0);
}

TEST(JtolMask, ComplianceAcceptsCurveAboveMask) {
    const auto mask = JtolMask::infiniband_2g5();
    std::vector<MaskPoint> good;
    for (double f = 1e3; f < 1.25e9; f *= 3.0) {
        good.push_back({f, mask.amplitude_at(f) * 2.0});
    }
    EXPECT_TRUE(mask.complies(good));
}

TEST(JtolMask, ComplianceRejectsDipBelowMask) {
    const auto mask = JtolMask::infiniband_2g5();
    std::vector<MaskPoint> bad;
    for (double f = 1e3; f < 1.25e9; f *= 3.0) {
        bad.push_back({f, mask.amplitude_at(f) * 2.0});
    }
    bad[bad.size() / 2].amp_uipp = mask.amplitude_at(bad[bad.size() / 2].freq_hz) * 0.5;
    EXPECT_FALSE(mask.complies(bad));
}

TEST(JtolMask, ComplianceIgnoresOutOfSpanPoints) {
    JtolMask mask("narrow", {{1e6, 1.0}, {1e7, 1.0}});
    // A measured curve that only covers part of the mask span but is above
    // it there, plus arbitrary points outside the mask span.
    std::vector<MaskPoint> curve{{1e5, 0.001}, {1e6, 2.0}, {1e7, 2.0},
                                 {1e8, 0.001}};
    EXPECT_TRUE(mask.complies(curve));
}

TEST(JtolMask, EmptyMeasurementFails) {
    EXPECT_FALSE(JtolMask::infiniband_2g5().complies({}));
}

}  // namespace
}  // namespace gcdr::masks
