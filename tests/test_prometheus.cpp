// Golden-format tests for obs/prometheus.hpp: name sanitization, label
// escaping and ordering, counter/gauge rendering, cumulative histogram
// buckets, inline-label families and const-label merging.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace gcdr::obs {
namespace {

TEST(PromName, SanitizesInvalidCharacters) {
    EXPECT_EQ(prometheus_sanitize_name("sim.events_executed"),
              "sim_events_executed");
    EXPECT_EQ(prometheus_sanitize_name("cdr-ch0/period ps"),
              "cdr_ch0_period_ps");
    EXPECT_EQ(prometheus_sanitize_name("a:b_c9"), "a:b_c9");  // legal as-is
}

TEST(PromName, GuardsLeadingDigit) {
    EXPECT_EQ(prometheus_sanitize_name("2p5gbit.rate"), "_2p5gbit_rate");
}

TEST(PromLabel, EscapesBackslashQuoteNewline) {
    EXPECT_EQ(prometheus_escape_label("plain"), "plain");
    EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
    EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(prometheus_escape_label("line1\nline2"), "line1\\nline2");
}

TEST(PromExport, CounterGetsTotalSuffixAndTypeHeader) {
    MetricsRegistry reg;
    reg.counter("sim.events_executed").inc(42);
    EXPECT_EQ(to_prometheus(reg),
              "# TYPE gcdr_sim_events_executed_total counter\n"
              "gcdr_sim_events_executed_total 42\n");
}

TEST(PromExport, GaugeRendersValueAndSkipsUnset) {
    MetricsRegistry reg;
    reg.gauge("kernel_perf.cdr_events_per_s").set(1.125e7);
    reg.gauge("never.set");  // must not appear: Prometheus has no null
    EXPECT_EQ(to_prometheus(reg),
              "# TYPE gcdr_kernel_perf_cdr_events_per_s gauge\n"
              "gcdr_kernel_perf_cdr_events_per_s 11250000\n");
}

TEST(PromExport, EmptyPrefixOmitsUnderscore) {
    MetricsRegistry reg;
    reg.counter("a").inc();
    PrometheusOptions opts;
    opts.prefix.clear();
    EXPECT_EQ(to_prometheus(reg, opts),
              "# TYPE a_total counter\na_total 1\n");
}

TEST(PromExport, HistogramBucketsAreCumulativeWithInf) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("exec.item_seconds");
    h.record(1e-3);
    h.record(1e-3);
    h.record(2.0);
    const std::string text = to_prometheus(reg);
    std::istringstream is(text);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "# TYPE gcdr_exec_item_seconds histogram");
    // Cumulative counts: the 1e-3 bucket holds 2, the 2.0 bucket brings
    // the running total to 3, and +Inf repeats the grand total.
    std::vector<std::string> body;
    while (std::getline(is, line)) body.push_back(line);
    ASSERT_GE(body.size(), 4u);
    EXPECT_TRUE(body[0].rfind("gcdr_exec_item_seconds_bucket{le=\"", 0) == 0)
        << body[0];
    EXPECT_TRUE(body[0].size() > 2 && body[0].substr(body[0].size() - 2) ==
                                          " 2")
        << body[0];
    EXPECT_TRUE(body[1].substr(body[1].size() - 2) == " 3") << body[1];
    EXPECT_EQ(body[2], "gcdr_exec_item_seconds_bucket{le=\"+Inf\"} 3");
    // The sum is a float accumulation; pin the prefix, not the last bits.
    EXPECT_TRUE(body[3].rfind("gcdr_exec_item_seconds_sum 2.002", 0) == 0)
        << body[3];
    EXPECT_EQ(body[4], "gcdr_exec_item_seconds_count 3");
}

TEST(PromExport, OverflowBucketBecomesInf) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("h");
    h.record(1e20);  // beyond the 1e12 grid: overflow bucket, upper = inf
    const std::string text = to_prometheus(reg);
    EXPECT_NE(text.find("gcdr_h_bucket{le=\"+Inf\"} 1\n"), std::string::npos)
        << text;
    // Exactly one +Inf bucket: the overflow bucket must not be doubled.
    const auto first = text.find("le=\"+Inf\"");
    EXPECT_EQ(text.find("le=\"+Inf\"", first + 1), std::string::npos) << text;
}

TEST(PromExport, InlineLabelsFormOneFamilySortedBySignature) {
    MetricsRegistry reg;
    reg.counter("exec.items{lane=1}").inc(10);
    reg.counter("exec.items{lane=0}").inc(20);
    EXPECT_EQ(to_prometheus(reg),
              "# TYPE gcdr_exec_items_total counter\n"
              "gcdr_exec_items_total{lane=\"0\"} 20\n"
              "gcdr_exec_items_total{lane=\"1\"} 10\n");
}

TEST(PromExport, ConstLabelsMergeAndInlineWins) {
    MetricsRegistry reg;
    reg.gauge("g{run=inline}").set(1.0);
    reg.gauge("plain").set(2.0);
    PrometheusOptions opts;
    opts.const_labels = {{"run", "const"}, {"host", "ci"}};
    EXPECT_EQ(to_prometheus(reg, opts),
              "# TYPE gcdr_g gauge\n"
              "gcdr_g{host=\"ci\",run=\"inline\"} 1\n"
              "# TYPE gcdr_plain gauge\n"
              "gcdr_plain{host=\"ci\",run=\"const\"} 2\n");
}

TEST(PromExport, LabelValuesAreEscaped) {
    MetricsRegistry reg;
    reg.gauge("g").set(1.0);
    PrometheusOptions opts;
    opts.const_labels = {{"path", "C:\\tmp\n\"x\""}};
    EXPECT_EQ(to_prometheus(reg, opts),
              "# TYPE gcdr_g gauge\n"
              "gcdr_g{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1\n");
}

TEST(PromExport, FamiliesSortDeterministically) {
    MetricsRegistry reg;
    reg.gauge("zz").set(1.0);
    reg.counter("aa").inc();
    reg.histogram("mm").record(1.0);
    const std::string text = to_prometheus(reg);
    const auto a = text.find("gcdr_aa_total");
    const auto m = text.find("gcdr_mm");
    const auto z = text.find("gcdr_zz");
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
}

TEST(PromExport, WriteToFileRoundTrips) {
    MetricsRegistry reg;
    reg.counter("c").inc(7);
    const std::string path =
        ::testing::TempDir() + "gcdr_prom_test.prom";
    ASSERT_TRUE(write_prometheus(path, reg));
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_EQ(ss.str(), to_prometheus(reg));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace gcdr::obs
