// Tests for the observability stack added with the tracing PR: causal
// event tracing (obs/trace_causal + Scheduler hooks), span profiling
// (obs/trace_span), and the flight recorder (obs/flight_recorder) wired
// through GccoChannel, MultiChannelCdr and the behavioral margin model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cdr/channel.hpp"
#include "cdr/elastic_buffer.hpp"
#include "cdr/multichannel.hpp"
#include "encoding/prbs.hpp"
#include "mc/margin_model.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_causal.hpp"
#include "obs/trace_span.hpp"
#include "sim/scheduler.hpp"

namespace gcdr {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

std::string fresh_dir(const std::string& leaf) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("gcdr_trace_test_" + leaf);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

// ---------------------------------------------------------------- causal

TEST(CausalTracer, SchedulerRecordsParentLinks) {
    sim::Scheduler sched;
    obs::CausalTracer tracer;
    sched.attach_tracer(&tracer);
    ASSERT_EQ(sched.tracer(), &tracer);

    struct Ctx {
        sim::Scheduler* s;
        std::uint64_t ida = 0, idb = 0, idc = 0;
    } ctx{&sched};

    sched.schedule_at(SimTime::ps(100), [&ctx] {
        ctx.ida = ctx.s->current_event_id();
        ctx.s->schedule_in(SimTime::ps(10), [&ctx] {
            ctx.idb = ctx.s->current_event_id();
            ctx.s->schedule_in(SimTime::ps(10), [&ctx] {
                ctx.idc = ctx.s->current_event_id();
            });
        });
    });
    sched.run();

    // Ids are nonzero while executing, 0 between events.
    EXPECT_NE(ctx.ida, 0u);
    EXPECT_NE(ctx.idc, 0u);
    EXPECT_EQ(sched.current_event_id(), 0u);

    const auto chain = tracer.chain(ctx.idc);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0].id, ctx.idc);
    EXPECT_EQ(chain[0].parent, ctx.idb);
    EXPECT_EQ(chain[1].id, ctx.idb);
    EXPECT_EQ(chain[1].parent, ctx.ida);
    EXPECT_EQ(chain[2].id, ctx.ida);
    EXPECT_EQ(chain[2].parent, 0u);  // scheduled from outside any event
    EXPECT_EQ(chain[2].time_fs, SimTime::ps(100).femtoseconds());
}

TEST(CausalTracer, RingEvictionTruncatesChain) {
    obs::CausalTracer tracer(4);
    EXPECT_EQ(tracer.capacity(), 4u);
    for (std::uint64_t id = 1; id <= 10; ++id) {
        tracer.on_schedule(id, id - 1, static_cast<std::int64_t>(id) * 100);
    }
    EXPECT_EQ(tracer.recorded(), 10u);
    // Only the newest `capacity` ids survive.
    EXPECT_EQ(tracer.find(3), nullptr);
    EXPECT_EQ(tracer.find(6), nullptr);
    ASSERT_NE(tracer.find(10), nullptr);
    EXPECT_EQ(tracer.find(10)->parent, 9u);
    // 10 -> 9 -> 8 -> 7, then 6 is evicted: clean truncation.
    const auto chain = tracer.chain(10);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain.back().id, 7u);

    tracer.clear();
    EXPECT_EQ(tracer.find(10), nullptr);
}

TEST(CausalTracer, DetachedSchedulerKeepsIdZero) {
    sim::Scheduler sched;
    EXPECT_EQ(sched.tracer(), nullptr);
    std::uint64_t seen = 1;
    sched.schedule_at(SimTime::ps(10),
                      [&] { seen = sched.current_event_id(); });
    sched.run();
    EXPECT_EQ(seen, 0u);  // no tracer => no id bookkeeping
}

TEST(Scheduler, PastScheduleInvokesFaultHookThenThrows) {
    sim::Scheduler sched;
    std::string fault_kind;
    std::string fault_detail;
    sched.set_fault_hook([&](const char* kind, const std::string& detail) {
        fault_kind = kind;
        fault_detail = detail;
    });
    sched.schedule_at(SimTime::ps(100), [] {});
    sched.run();
    ASSERT_EQ(sched.now(), SimTime::ps(100));
    EXPECT_THROW(sched.schedule_at(SimTime::ps(50), [] {}),
                 std::logic_error);
    EXPECT_EQ(fault_kind, "schedule_in_past");
    EXPECT_FALSE(fault_detail.empty());
}

// ---------------------------------------------------------------- spans

TEST(SpanCollector, DisabledRecordsNothing) {
    obs::SpanCollector c;
    EXPECT_FALSE(c.enabled());
    { obs::TraceSpan span("never", c); }
    c.record("never", 0.0, 1.0);
    EXPECT_TRUE(c.merged().empty());
    EXPECT_EQ(c.dropped(), 0u);
}

TEST(SpanCollector, MergeIsDeterministicAcrossThreads) {
    obs::SpanCollector c;
    c.enable();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const double t0 = t * 0.001 + i;  // deterministic times
                c.record(t % 2 == 0 ? "even.phase" : "odd.phase", t0,
                         t0 + 0.5);
            }
        });
    }
    for (auto& th : threads) th.join();
    c.disable();

    const auto merged = c.merged();
    ASSERT_EQ(merged.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    // Sorted by (t0, t1, name, tid, seq): a pure function of the span set.
    for (std::size_t i = 1; i < merged.size(); ++i) {
        EXPECT_LE(merged[i - 1].t0_s, merged[i].t0_s);
    }
    const auto again = c.merged();
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].name, again[i].name);
        EXPECT_EQ(merged[i].tid, again[i].tid);
        EXPECT_EQ(merged[i].seq, again[i].seq);
    }

    const auto sums = c.summaries();
    ASSERT_EQ(sums.size(), 2u);  // sorted by name
    EXPECT_EQ(sums[0].name, "even.phase");
    EXPECT_EQ(sums[1].name, "odd.phase");
    EXPECT_EQ(sums[0].count + sums[1].count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_NEAR(sums[0].max_s, 0.5, 1e-12);
}

TEST(SpanCollector, ChromeTraceJsonShape) {
    obs::SpanCollector c;
    c.enable();
    { obs::TraceSpan span("unit.work", c); }
    c.record("unit.work", 1.0, 1.25);
    c.disable();
    const auto json = c.chrome_trace_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"unit.work\""), std::string::npos);
    EXPECT_NE(json.find("gcdr.trace/v1"), std::string::npos);
    // 1.0 s -> 1e6 us timestamps, 0.25 s -> 250000 us duration.
    EXPECT_NE(json.find("250000"), std::string::npos);
}

TEST(SpanCollector, FullBufferCountsDrops) {
    obs::SpanCollector c;
    c.enable(4);
    for (int i = 0; i < 10; ++i) {
        c.record("spill", static_cast<double>(i), i + 0.5);
    }
    c.disable();
    EXPECT_EQ(c.merged().size(), 4u);
    EXPECT_EQ(c.dropped(), 6u);
    c.clear();
    EXPECT_TRUE(c.merged().empty());
    EXPECT_EQ(c.dropped(), 0u);
}

// ------------------------------------------------------------- recorder

TEST(FlightRing, KeepsNewestAndRoundsCapacity) {
    obs::FlightRing ring("unit", 3);  // rounded up to 4
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 1; i <= 10; ++i) {
        ring.append(i * 100, "tick", static_cast<double>(i));
    }
    EXPECT_EQ(ring.appended(), 10u);
    const auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().time_fs, 700);  // oldest retained
    EXPECT_EQ(snap.back().time_fs, 1000);  // newest
    EXPECT_STREQ(snap.back().kind, "tick");
}

TEST(FlightRecorder, DumpWritesJsonAndHonorsMaxDumps) {
    obs::FlightRecorder::Config cfg;
    cfg.ring_capacity = 8;
    cfg.dump_dir = fresh_dir("dump");
    cfg.max_dumps = 2;
    cfg.window_fs = 1000;
    obs::FlightRecorder rec(cfg);

    obs::CausalTracer tracer;
    tracer.on_schedule(1, 0, 400);
    tracer.on_schedule(2, 1, 500);
    auto& ring = rec.ring("ch0");
    ring.set_tracer(&tracer);
    ring.append(400, "gcco_gate", 0.0, 1);
    ring.append(500, "decision", 1.0, 2);

    std::vector<std::string> hook_paths;
    rec.set_waveform_dump([&](const std::string& stem, std::int64_t t0,
                              std::int64_t t1) {
        EXPECT_LE(t0, 500);
        EXPECT_GE(t1, 500);
        hook_paths.push_back(stem + ".vcd");
        return hook_paths;
    });

    const auto path = rec.dump("unit_reason");
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(std::filesystem::exists(path));
    const auto doc = slurp(path);
    EXPECT_NE(doc.find("gcdr.flight.dump/v1"), std::string::npos);
    EXPECT_NE(doc.find("unit_reason"), std::string::npos);
    EXPECT_NE(doc.find("causal_chain"), std::string::npos);
    EXPECT_NE(doc.find("gcco_gate"), std::string::npos);
    ASSERT_EQ(hook_paths.size(), 1u);
    EXPECT_NE(doc.find(hook_paths[0]), std::string::npos);

    EXPECT_FALSE(rec.dump("second").empty());
    EXPECT_TRUE(rec.dump("beyond_cap").empty());  // capped, still counted
    EXPECT_EQ(rec.triggers(), 3u);
    EXPECT_EQ(rec.dump_paths().size(), 2u);
    ring.set_tracer(nullptr);
}

TEST(ElasticBuffer, FaultHookFiresOnOverflowAndUnderflow) {
    cdr::ElasticBuffer eb(4);
    std::vector<std::string> kinds;
    eb.set_fault_hook([&](const char* kind) { kinds.emplace_back(kind); });
    // Drain the half-full priming fill, then one read past empty.
    while (eb.occupancy() > 0) EXPECT_TRUE(eb.read().has_value());
    EXPECT_FALSE(eb.read().has_value());
    ASSERT_FALSE(kinds.empty());
    EXPECT_EQ(kinds.back(), "elastic_underflow");
    for (int i = 0; i < 8; ++i) eb.write(i % 2 == 0);
    EXPECT_GE(eb.overflows(), 1u);
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), "elastic_overflow"),
              kinds.end());
}

// ---------------------------------------------------- end-to-end chains

// The acceptance walk: a sampled bit's causal chain must reach back to a
// GCCO gating/restart event (EDET pulse edge) through the trace ring.
TEST(FlightIntegration, DecisionChainReachesGccoGating) {
    sim::Scheduler sched;
    obs::CausalTracer tracer(1 << 16);
    sched.attach_tracer(&tracer);
    Rng rng(7);
    auto cfg = cdr::ChannelConfig::nominal(2.5e9);
    cdr::GccoChannel ch(sched, rng, cfg);
    obs::FlightRing ring("ch0", 8192);
    ring.set_tracer(&tracer);
    ch.record_flight(ring);

    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    const std::size_t n_bits = 300;
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    ch.drive(jitter::jittered_edges(gen.bits(n_bits), sp, rng));
    sched.run_until(sp.start +
                    cfg.rate.ui_to_time(static_cast<double>(n_bits)));

    const auto events = ring.snapshot();
    ASSERT_FALSE(events.empty());
    std::set<std::string> kinds;
    std::set<std::uint64_t> gating_ids;
    std::uint64_t decision_cause = 0;
    for (const auto& e : events) {
        kinds.insert(e.kind);
        const std::string kind = e.kind;
        if ((kind == "gcco_gate" || kind == "gcco_restart") &&
            e.cause_id != 0) {
            gating_ids.insert(e.cause_id);
        }
        if (kind == "decision" && e.cause_id != 0) {
            decision_cause = e.cause_id;  // newest decision wins
        }
    }
    EXPECT_TRUE(kinds.count("din"));
    EXPECT_TRUE(kinds.count("gcco_gate"));
    EXPECT_TRUE(kinds.count("gcco_restart"));
    EXPECT_TRUE(kinds.count("sample_clk_rise"));
    ASSERT_TRUE(kinds.count("decision"));
    ASSERT_NE(decision_cause, 0u);
    ASSERT_FALSE(gating_ids.empty());

    const auto chain = tracer.chain(decision_cause, 4096);
    ASSERT_GE(chain.size(), 2u);
    bool reaches_gating = false;
    for (const auto& rec : chain) {
        if (gating_ids.count(rec.id)) reaches_gating = true;
    }
    EXPECT_TRUE(reaches_gating)
        << "decision chain of " << chain.size()
        << " events never crossed a GCCO gate/restart";
    ring.set_tracer(nullptr);
}

TEST(FlightIntegration, MultiChannelLockLossDumpsPostMortem) {
    obs::FlightRecorder::Config fcfg;
    fcfg.ring_capacity = 256;
    fcfg.dump_dir = fresh_dir("lockloss");
    obs::FlightRecorder rec(fcfg);

    sim::Scheduler sched;
    Rng rng(3);
    auto cfg = cdr::MultiChannelConfig::paper_receiver();
    cfg.n_channels = 2;
    cdr::MultiChannelCdr mc(sched, rng, cfg);
    mc.enable_flight_recorder(rec, 1024);

    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    jitter::StreamParams sp;
    sp.start = SimTime::ns(4);
    mc.drive(0, jitter::jittered_edges(gen.bits(100), sp, rng));
    mc.run_until(SimTime::ns(60));

    // Impossible tolerance: every channel transitions locked -> unlocked
    // (channels start assumed locked), so each dumps a post-mortem.
    mc.update_lock_metrics(0.0);
    EXPECT_GE(rec.triggers(), 1u);
    const auto paths = rec.dump_paths();
    ASSERT_FALSE(paths.empty());
    const auto doc = slurp(paths.front());
    EXPECT_NE(doc.find("lock_loss:ch"), std::string::npos);
    EXPECT_NE(doc.find("causal_chain"), std::string::npos);
    // The waveform hook wrote a bounded VCD window per channel.
    bool found_vcd = false;
    for (const auto& entry :
         std::filesystem::directory_iterator(fcfg.dump_dir)) {
        if (entry.path().extension() == ".vcd") found_vcd = true;
    }
    EXPECT_TRUE(found_vcd);
}

TEST(FlightIntegration, MarginModelErrorLeavesLaneDump) {
    obs::FlightRecorder::Config fcfg;
    fcfg.ring_capacity = 256;
    fcfg.dump_dir = fresh_dir("mc");
    obs::FlightRecorder rec(fcfg);

    // A hopeless operating point (huge SJ + frequency offset) so a
    // high-sigma closing edge decodes the wrong bit count quickly.
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.6;
    cfg.sj_freq_norm = 0.5;
    cfg.freq_offset = 0.08;
    auto bp = mc::BehavioralMarginModel::params_from(cfg);
    bp.flight = &rec;
    mc::BehavioralMarginModel model(bp);

    mc::RunSample s;
    s.run_length = model.max_run_length();
    s.u_dj = 0.999;
    s.u_phase = 0.25;
    for (double z = 0.0; z <= 8.0 && rec.triggers() == 0; z += 2.0) {
        s.z_edge = z;
        s.noise_seed = static_cast<std::uint64_t>(z) + 1;
        (void)model.margin_ui(s);
    }
    EXPECT_GE(rec.triggers(), 1u);
    ASSERT_FALSE(rec.dump_paths().empty());
    const auto doc = slurp(rec.dump_paths().front());
    EXPECT_NE(doc.find("mc_margin_error"), std::string::npos);
    EXPECT_NE(doc.find("mc.lane"), std::string::npos);
}

}  // namespace
}  // namespace gcdr
