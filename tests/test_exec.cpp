// Unit tests for the execution layer (exec/): ThreadPool fork-join
// semantics (full index coverage, exception propagation, nested-call
// fallback, lane indexing), deterministic seed derivation, SweepGrid
// flat-index decoding against hand-rolled nested loops, and the two
// determinism guarantees the subsystem exists for — sweep results and
// multi-channel behavioral runs bit-identical across thread counts —
// plus Xoshiro256::long_jump stream independence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "cdr/multichannel.hpp"
#include "encoding/prbs.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "jitter/jitter.hpp"
#include "util/rng.hpp"

namespace gcdr::exec {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, SizeCountsCallerLane) {
    ThreadPool serial(1);
    EXPECT_EQ(serial.size(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 10007;  // prime: no lucky chunk alignment
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, SerialPoolRunsInOrderOnCaller) {
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallel_for(5, [&](std::size_t i) {
        order.push_back(i);  // no synchronization: single lane by contract
        EXPECT_EQ(ThreadPool::lane_index(), 0u);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
    ThreadPool pool(3);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, FirstExceptionPropagatesAllItemsStillRun) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 101;
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallel_for(kN,
                          [&](std::size_t i) {
                              executed.fetch_add(1);
                              if (i == 42) {
                                  throw std::runtime_error("item 42");
                              }
                          }),
        std::runtime_error);
    // The barrier completed: every index ran even though one threw.
    EXPECT_EQ(executed.load(), static_cast<int>(kN));
    // The pool survives for the next job.
    std::atomic<int> again{0};
    pool.parallel_for(7, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 7);
}

TEST(ThreadPool, LaneIndexWithinPoolBounds) {
    ThreadPool pool(4);
    EXPECT_EQ(ThreadPool::lane_index(), 0u);  // outside any parallel_for
    std::vector<std::atomic<int>> lane_hits(pool.size());
    pool.parallel_for(1000, [&](std::size_t) {
        const std::size_t lane = ThreadPool::lane_index();
        ASSERT_LT(lane, pool.size());
        lane_hits[lane].fetch_add(1, std::memory_order_relaxed);
    });
    int total = 0;
    for (auto& h : lane_hits) total += h.load();
    EXPECT_EQ(total, 1000);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(8, [&](std::size_t) {
        // Nested call must not deadlock: it degenerates to an inline loop
        // on the current lane.
        pool.parallel_for(16, [&](std::size_t) {
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

// ---------------------------------------------------------------------------
// Seed derivation + SweepGrid

TEST(DeriveSeed, PureDistinctAndBaseSensitive) {
    EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 0xDEADBEEFull}) {
        EXPECT_NE(derive_seed(base, 0), base);  // golden-ratio offset
        for (std::uint64_t i = 0; i < 1000; ++i) {
            seen.insert(derive_seed(base, i));
        }
    }
    // splitmix64 finalizer: no collisions across 3 bases x 1000 indices.
    EXPECT_EQ(seen.size(), 3000u);
}

TEST(SweepGrid, SizeIsProductOfAxes) {
    SweepGrid grid;
    EXPECT_EQ(grid.size(), 0u);
    grid.axis("a", {1.0, 2.0, 3.0});
    EXPECT_EQ(grid.size(), 3u);
    grid.axis("b", {10.0, 20.0});
    EXPECT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid.n_axes(), 2u);
    EXPECT_EQ(grid.axis_at(0).name, "a");
}

TEST(SweepGrid, FlatIndexMatchesNestedLoopOrder) {
    const std::vector<double> slow = {1.0, 2.0, 3.0};
    const std::vector<double> fast = {10.0, 20.0};
    SweepGrid grid;
    grid.axis("slow", slow).axis("fast", fast);
    std::size_t flat = 0;
    for (std::size_t s = 0; s < slow.size(); ++s) {
        for (std::size_t f = 0; f < fast.size(); ++f, ++flat) {
            const SweepPoint p = grid.point(flat, /*base_seed=*/9);
            EXPECT_EQ(p.index, flat);
            EXPECT_EQ(p.seed, derive_seed(9, flat));
            ASSERT_EQ(p.idx.size(), 2u);
            EXPECT_EQ(p.idx[0], s);
            EXPECT_EQ(p.idx[1], f);
            EXPECT_EQ(p.value[0], slow[s]);
            EXPECT_EQ(p.value[1], fast[f]);
        }
    }
    EXPECT_EQ(flat, grid.size());
}

// ---------------------------------------------------------------------------
// Determinism across thread counts

TEST(SweepRunner, StochasticSweepBitIdenticalAcrossThreadCounts) {
    SweepGrid grid;
    grid.axis("x", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
        .axis("y", {1.0, 2.0, 3.0, 4.0, 5.0});
    // A stochastic point function drawing only from p.seed — the contract
    // every parallel sweep must satisfy.
    const auto eval = [](const SweepPoint& p) {
        Rng rng(p.seed);
        double acc = p.value[0] * p.value[1];
        for (int k = 0; k < 100; ++k) acc += rng.gaussian();
        return acc;
    };
    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto a = SweepRunner(serial, grid, 123).map<double>(eval);
    const auto b = SweepRunner(wide, grid, 123).map<double>(eval);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "point " << i;  // exact, not approximate
    }
    // A different base seed yields a different surface.
    const auto c = SweepRunner(serial, grid, 124).map<double>(eval);
    EXPECT_NE(a, c);
}

TEST(SweepRunner, ZeroPointGridYieldsEmptyResult) {
    SweepGrid empty;                      // no axes at all
    SweepGrid degenerate;
    degenerate.axis("x", {}).axis("y", {1.0, 2.0});  // one axis empty
    ThreadPool pool(2);
    int calls = 0;
    const auto eval = [&](const SweepPoint&) {
        ++calls;
        return 1.0;
    };
    EXPECT_TRUE(SweepRunner(pool, empty, 1).map<double>(eval).empty());
    EXPECT_TRUE(
        SweepRunner(pool, degenerate, 1).map<double>(eval).empty());
    EXPECT_EQ(calls, 0);
}

TEST(SweepRunner, SingleThreadPoolRunsEveryPointInOrder) {
    SweepGrid grid;
    grid.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0});
    ThreadPool serial(1);
    std::vector<std::size_t> visited;
    const auto out =
        SweepRunner(serial, grid, 7).map<double>([&](const SweepPoint& p) {
            visited.push_back(p.index);
            return p.value[0] * 10.0;
        });
    ASSERT_EQ(out.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(visited[i], i);  // serial pool: caller-thread, in order
        EXPECT_DOUBLE_EQ(out[i], (static_cast<double>(i) + 1.0) * 10.0);
    }
}

TEST(SweepRunner, PointCountNotDividingLaneCountCoversAll) {
    // Stratum/point counts that don't divide evenly across lanes: 7
    // points on 4 lanes, 13 on 8 — every index runs exactly once and
    // results land in their own slots.
    for (auto [points, lanes] :
         {std::pair<std::size_t, std::size_t>{7, 4}, {13, 8}, {3, 8}}) {
        SweepGrid grid;
        std::vector<double> xs(points);
        for (std::size_t i = 0; i < points; ++i) {
            xs[i] = static_cast<double>(i);
        }
        grid.axis("x", xs);
        ThreadPool pool(lanes);
        const auto out = SweepRunner(pool, grid, 3)
                             .map<double>([](const SweepPoint& p) {
                                 return p.value[0] + 0.5;
                             });
        ASSERT_EQ(out.size(), points);
        for (std::size_t i = 0; i < points; ++i) {
            EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 0.5);
        }
    }
}

TEST(Xoshiro, LongJumpStreamsDoNotCollide) {
    // Channels get streams separated by 2^128 steps. Draw 4 streams from
    // one seed and check the first 1000 outputs of all streams are
    // pairwise distinct (a single collision of 64-bit outputs across 4000
    // draws would be a catastrophic correlation signal).
    Xoshiro256 stream(42);
    std::set<std::uint64_t> all;
    for (int ch = 0; ch < 4; ++ch) {
        stream.long_jump();
        Xoshiro256 local = stream;
        for (int i = 0; i < 1000; ++i) all.insert(local());
    }
    EXPECT_EQ(all.size(), 4000u);
}

TEST(Xoshiro, LongJumpIsDeterministic) {
    Xoshiro256 a(7), b(7);
    a.long_jump();
    b.long_jump();
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(MultiChannelCdr, ParallelRunBitIdenticalToSerial) {
    // Two per-channel-scheduler receivers with the same seed and inputs;
    // one runs its channels serially, the other on a 4-lane pool. The
    // recovered system-domain streams must match bit for bit.
    const auto build_and_run = [](ThreadPool* pool) {
        auto cfg = cdr::MultiChannelConfig::paper_receiver();
        cdr::MultiChannelCdr rx(/*seed=*/77, cfg);
        Rng edge_rng(5);  // shared edge-stream RNG: consumed serially
        const std::size_t n_bits = 600;
        for (int lane = 0; lane < rx.n_channels(); ++lane) {
            encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
            jitter::StreamParams sp;
            sp.spec = jitter::JitterSpec::paper_table1();
            sp.start = SimTime::ns(4) + SimTime::ps(137 * lane);
            rx.drive(lane, jitter::jittered_edges(gen.bits(n_bits), sp,
                                                  edge_rng));
        }
        rx.run_until(SimTime::ns(8) + kPaperRate.ui_to_time(
                                          static_cast<double>(n_bits)),
                     pool);
        return rx.drain_elastic();
    };
    ThreadPool pool(4);
    const auto serial = build_and_run(nullptr);
    const auto parallel = build_and_run(&pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t lane = 0; lane < serial.size(); ++lane) {
        EXPECT_FALSE(serial[lane].empty()) << "lane " << lane;
        EXPECT_EQ(serial[lane], parallel[lane]) << "lane " << lane;
    }
}

// ---------------------------------------------------------------------------
// ThreadPool::parallel_for_cancellable

TEST(ThreadPoolCancellable, RunsEverythingWhenNeverStopped) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(lanes);
        std::atomic<bool> stop{false};
        std::vector<std::atomic<int>> hit(100);
        const std::size_t ran = pool.parallel_for_cancellable(
            hit.size(), [&](std::size_t i) { hit[i].fetch_add(1); }, stop);
        EXPECT_EQ(ran, hit.size()) << lanes << " lanes";
        for (auto& h : hit) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolCancellable, StopFlagHaltsHandoutMidRun) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(lanes);
        std::atomic<bool> stop{false};
        std::atomic<std::size_t> executed{0};
        const std::size_t n = 1000;
        const std::size_t ran = pool.parallel_for_cancellable(
            n,
            [&](std::size_t) {
                if (executed.fetch_add(1) + 1 >= 10) stop.store(true);
            },
            stop);
        // At most one extra item per lane can be in flight when the flag
        // latches; the rest of the index space is never handed out.
        EXPECT_GE(ran, std::size_t{10}) << lanes << " lanes";
        EXPECT_LE(ran, 10 + lanes) << lanes << " lanes";
        EXPECT_EQ(ran, executed.load()) << lanes << " lanes";
    }
}

TEST(ThreadPoolCancellable, PreSetStopRunsNothing) {
    ThreadPool pool(4);
    std::atomic<bool> stop{true};
    std::atomic<int> calls{0};
    const std::size_t ran = pool.parallel_for_cancellable(
        50, [&](std::size_t) { calls.fetch_add(1); }, stop);
    EXPECT_EQ(ran, 0u);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolCancellable, ExceptionsPropagateLikeParallelFor) {
    ThreadPool pool(4);
    std::atomic<bool> stop{false};
    EXPECT_THROW(pool.parallel_for_cancellable(
                     8,
                     [&](std::size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                     },
                     stop),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> ok{0};
    pool.parallel_for(4, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPoolCancellable, PlainParallelForUnaffectedAfterCancelledJob) {
    // A cancelled job must not leave a stale stop pointer behind for the
    // next plain parallel_for.
    ThreadPool pool(4);
    std::atomic<bool> stop{true};
    (void)pool.parallel_for_cancellable(16, [](std::size_t) {}, stop);
    std::atomic<int> calls{0};
    pool.parallel_for(16, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 16);
}

}  // namespace
}  // namespace gcdr::exec
