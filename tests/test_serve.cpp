// Tests for the serving stack: shared FNV hashing (util/hash.hpp),
// canonical JSON + config hashing (serve/canonical.hpp, protocol.hpp),
// the content-addressed result cache (serve/cache.hpp), the priority job
// queue (serve/queue.hpp), cache-aware execution (serve/executor.hpp),
// and the HTTP daemon end to end (serve/server.hpp).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/json_parse.hpp"
#include "obs/ledger.hpp"
#include "obs/log.hpp"
#include "serve/cache.hpp"
#include "serve/canonical.hpp"
#include "serve/executor.hpp"
#include "serve/http.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "util/hash.hpp"

namespace gcdr::serve {
namespace {

// --- util/hash -----------------------------------------------------------

TEST(UtilHash, Fnv1a64KnownVectors) {
    // Official FNV-1a test vectors; these constants are part of the
    // on-disk format of both the run ledger and the cache segments.
    EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(UtilHash, StreamingMatchesOneShot) {
    const std::uint64_t whole = util::fnv1a64("hello world");
    const std::uint64_t split =
        util::fnv1a64(" world", util::fnv1a64("hello"));
    EXPECT_EQ(whole, split);
}

TEST(UtilHash, U64ContinuationIsOrderSensitive) {
    std::uint64_t a = util::kFnv1a64OffsetBasis;
    a = util::fnv1a64_u64(1, a);
    a = util::fnv1a64_u64(2, a);
    std::uint64_t b = util::kFnv1a64OffsetBasis;
    b = util::fnv1a64_u64(2, b);
    b = util::fnv1a64_u64(1, b);
    EXPECT_NE(a, b);
}

TEST(UtilHash, HexRoundTrip) {
    const std::uint64_t h = util::fnv1a64("roundtrip");
    const std::string hex = util::hash_hex(h);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t back = 0;
    ASSERT_TRUE(util::parse_hash_hex(hex, back));
    EXPECT_EQ(back, h);
    EXPECT_FALSE(util::parse_hash_hex("123", back));
    EXPECT_FALSE(util::parse_hash_hex("zzzzzzzzzzzzzzzz", back));
    EXPECT_FALSE(util::parse_hash_hex("0123456789ABCDEF", back));  // upper
}

TEST(UtilHash, NoCollisionAcrossConfigCorpus) {
    // A small corpus of realistic near-identical config strings must not
    // collide (a collision here would silently cross-serve results).
    std::vector<std::string> corpus;
    for (int i = 0; i < 200; ++i) {
        corpus.push_back("{\"sj_uipp\":0." + std::to_string(1000 + i) +
                         "}");
        corpus.push_back("{\"rj_uirms\":0." + std::to_string(1000 + i) +
                         "}");
    }
    std::vector<std::uint64_t> hashes;
    for (const auto& s : corpus) hashes.push_back(util::fnv1a64(s));
    std::sort(hashes.begin(), hashes.end());
    EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()),
              hashes.end());
}

TEST(ObsLedgerForwarder, MatchesUtilHash) {
    EXPECT_EQ(obs::fnv1a64("--deep --channels 4"),
              util::fnv1a64("--deep --channels 4"));
}

// --- canonical JSON ------------------------------------------------------

std::string canon(std::string_view text) {
    std::string out;
    std::string err;
    EXPECT_TRUE(canonicalize(text, out, &err)) << err;
    return out;
}

TEST(Canonical, SortsKeysAndStripsWhitespace) {
    EXPECT_EQ(canon(R"({ "b" : 1 , "a" : 2 })"), R"({"a":2,"b":1})");
    EXPECT_EQ(canon(R"({"b":1,"a":2})"), canon(R"({"a":2,"b":1})"));
}

TEST(Canonical, KeyReorderHashesIdentically) {
    obs::JsonValue a, b;
    ASSERT_TRUE(obs::json_parse(R"({"x":{"q":1,"p":2},"y":[3]})", a));
    ASSERT_TRUE(obs::json_parse(R"({"y":[3],"x":{"p":2,"q":1}})", b));
    EXPECT_EQ(canonical_hash(a), canonical_hash(b));
}

TEST(Canonical, NumberSpellingsCollapse) {
    EXPECT_EQ(canon("1"), "1");
    EXPECT_EQ(canon("1.0"), "1");
    EXPECT_EQ(canon("1e0"), "1");
    EXPECT_EQ(canon("10e-1"), "1");
    EXPECT_EQ(canon("-0.0"), "0");
    EXPECT_EQ(canon("-0"), "0");
    EXPECT_EQ(canon("0.5"), canon("5e-1"));
}

TEST(Canonical, ExactUint64SurvivesBeyondDoubleRange) {
    // 2^63 + 1 is not representable as a double; the integer token's
    // digits must pass through untouched.
    EXPECT_EQ(canon("9223372036854775809"), "9223372036854775809");
    EXPECT_EQ(canon("18446744073709551615"), "18446744073709551615");
}

TEST(Canonical, DuplicateKeysKeepFirst) {
    // Matches obs::JsonValue::find (first match wins).
    EXPECT_EQ(canon(R"({"a":1,"a":2})"), R"({"a":1})");
}

TEST(Canonical, IdempotentThroughReparse) {
    const char* docs[] = {
        R"({"b":[1,2.5,{"c":-0.0}],"a":"s\n"})",
        R"({"mc":{"max_evals":200000},"seed":9223372036854775809})",
        "[1e308,2e-308,0.1]",
    };
    for (const char* doc : docs) {
        const std::string once = canon(doc);
        EXPECT_EQ(canon(once), once) << doc;
    }
}

// --- protocol: resolved spec + cache key ---------------------------------

JobSpec parse_ok(const std::string& body) {
    obs::JsonValue v;
    std::string err;
    EXPECT_TRUE(obs::json_parse(body, v, &err)) << err;
    JobSpec spec;
    EXPECT_TRUE(parse_job(v, spec, err)) << err;
    return spec;
}

TEST(Protocol, OmittedDefaultsHashLikeExplicitDefaults) {
    const JobSpec a = parse_ok(R"({"type":"ber"})");
    const JobSpec b = parse_ok(
        R"({"type":"ber","config":{"dj_uipp":0.4,"rj_uirms":0.021}})");
    EXPECT_EQ(spec_config_hash(a), spec_config_hash(b));
}

TEST(Protocol, KeyOrderAndFloatSpellingInvariant) {
    const JobSpec a = parse_ok(
        R"({"type":"ber","config":{"sj_uipp":0.1,"rj_uirms":0.02}})");
    const JobSpec b = parse_ok(
        R"({"config":{"rj_uirms":2e-2,"sj_uipp":1e-1},"type":"ber"})");
    EXPECT_EQ(spec_config_hash(a), spec_config_hash(b));
}

TEST(Protocol, SeedIsKeyComponentNotConfig) {
    const JobSpec a = parse_ok(R"({"type":"ber","seed":1})");
    const JobSpec b = parse_ok(R"({"type":"ber","seed":2})");
    EXPECT_EQ(spec_config_hash(a), spec_config_hash(b));
    EXPECT_NE(JobExecutor::key_of(a), JobExecutor::key_of(b));
}

TEST(Protocol, DifferentWorkloadsHashDifferently) {
    const JobSpec ber = parse_ok(R"({"type":"ber"})");
    const JobSpec eye = parse_ok(R"({"type":"eye"})");
    const JobSpec tweaked =
        parse_ok(R"({"type":"ber","config":{"sj_uipp":0.1}})");
    EXPECT_NE(spec_config_hash(ber), spec_config_hash(eye));
    EXPECT_NE(spec_config_hash(ber), spec_config_hash(tweaked));
}

TEST(Protocol, ResolvedSpecIsAlreadyCanonical) {
    const JobSpec spec = parse_ok(
        R"({"type":"sweep","axes":[{"name":"sj_uipp","values":[0.1,0.2]}]})");
    const std::string resolved = resolved_spec_json(spec);
    std::string recanon;
    ASSERT_TRUE(canonicalize(resolved, recanon, nullptr));
    EXPECT_EQ(recanon, resolved);
}

TEST(Protocol, UnknownKeysAreHardErrors) {
    obs::JsonValue v;
    JobSpec spec;
    std::string err;
    ASSERT_TRUE(obs::json_parse(R"({"type":"ber","sj_uipp":0.1})", v));
    EXPECT_FALSE(parse_job(v, spec, err));  // config knob at top level
    ASSERT_TRUE(
        obs::json_parse(R"({"type":"ber","config":{"sj_uip":0.1}})", v));
    EXPECT_FALSE(parse_job(v, spec, err));  // typo'd knob
    ASSERT_TRUE(obs::json_parse(R"({"type":"warp"})", v));
    EXPECT_FALSE(parse_job(v, spec, err));  // unknown type
    ASSERT_TRUE(obs::json_parse(
        R"({"type":"ber","axes":[{"name":"sj_uipp","values":[1]}]})", v));
    EXPECT_FALSE(parse_job(v, spec, err));  // axes on a non-sweep
}

TEST(Protocol, SweepPointsShareKeyspaceWithStandaloneBer) {
    const JobSpec sweep = parse_ok(
        R"({"type":"sweep","seed":7,
            "axes":[{"name":"sj_uipp","values":[0.1,0.2]}]})");
    exec::SweepGrid grid;
    for (const auto& axis : sweep.axes) grid.axis(axis.name, axis.values);
    const exec::SweepPoint p1 = grid.point(1, sweep.seed);
    const JobSpec point = sweep_point_spec(sweep, p1);
    EXPECT_EQ(point.type, JobType::kBer);
    EXPECT_TRUE(point.axes.empty());
    EXPECT_EQ(point.seed, p1.seed);
    // A standalone BER request for the same config hits the same entry.
    const JobSpec standalone =
        parse_ok(R"({"type":"ber","config":{"sj_uipp":0.2}})");
    EXPECT_EQ(spec_config_hash(point), spec_config_hash(standalone));
}

// --- result cache --------------------------------------------------------

CacheKey key_for(std::uint64_t n) {
    CacheKey k;
    k.config_hash = util::fnv1a64("cfg" + std::to_string(n));
    k.seed = n;
    k.model_hash = util::fnv1a64(kModelVersion);
    return k;
}

TEST(ResultCacheTest, LookupStoreAndStats) {
    ResultCache cache;
    std::string out;
    EXPECT_FALSE(cache.lookup(key_for(1), out));
    cache.store(key_for(1), R"({"ber":1.25e-13})");
    ASSERT_TRUE(cache.lookup(key_for(1), out));
    EXPECT_EQ(out, R"({"ber":1.25e-13})");
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.5);
}

TEST(ResultCacheTest, LruEvictionDropsColdEntries) {
    ResultCache cache({}, /*max_entries=*/2);
    cache.store(key_for(1), "1");
    cache.store(key_for(2), "2");
    std::string out;
    ASSERT_TRUE(cache.lookup(key_for(1), out));  // 1 now most recent
    cache.store(key_for(3), "3");                // evicts 2
    EXPECT_TRUE(cache.contains(key_for(1)));
    EXPECT_FALSE(cache.contains(key_for(2)));
    EXPECT_TRUE(cache.contains(key_for(3)));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, PersistReloadIsBitIdentical) {
    const std::string path =
        ::testing::TempDir() + "gcdr_serve_cache_test.jsonl";
    std::remove(path.c_str());
    // Payload with formatting that naive re-serialization would mangle.
    const std::string payload =
        R"({"ber":1.2500000000000001e-13,"eye_margin_ui":0.25})";
    {
        ResultCache cache(path);
        ASSERT_TRUE(cache.load());
        cache.store(key_for(1), payload);
        cache.store(key_for(2), R"({"points":[{"ber":1e-9},null]})");
    }
    ResultCache reloaded(path);
    ASSERT_TRUE(reloaded.load());
    EXPECT_EQ(reloaded.stats().loaded, 2u);
    std::string out;
    ASSERT_TRUE(reloaded.lookup(key_for(1), out));
    EXPECT_EQ(out, payload);  // byte-for-byte
    ASSERT_TRUE(reloaded.lookup(key_for(2), out));
    EXPECT_EQ(out, R"({"points":[{"ber":1e-9},null]})");
    std::remove(path.c_str());
}

TEST(ResultCacheTest, ReloadSkipsCorruptTruncatedAndForeignLines) {
    const std::string path =
        ::testing::TempDir() + "gcdr_serve_cache_corrupt.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        cache.store(key_for(1), R"({"ber":1e-9})");
    }
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"schema\":\"gcdr.serve.cache/v1\",\"trunc\n";  // crash
        os << "{\"schema\":\"gcdr.bench.ledger/v1\"}\n";        // foreign
        os << "not json at all\n";
        os << "\n";  // blank: free to skip
    }
    {
        ResultCache cache(path);
        cache.store(key_for(2), R"({"ber":2e-9})");
    }
    ResultCache reloaded(path);
    ASSERT_TRUE(reloaded.load());
    const CacheStats s = reloaded.stats();
    EXPECT_EQ(s.loaded, 2u);        // both real records survive
    EXPECT_EQ(s.load_skipped, 3u);  // truncated + foreign + garbage
    EXPECT_TRUE(reloaded.contains(key_for(1)));
    EXPECT_TRUE(reloaded.contains(key_for(2)));
    std::remove(path.c_str());
}

TEST(ResultCacheTest, DuplicateKeyOnReloadLastWriterWins) {
    const std::string path =
        ::testing::TempDir() + "gcdr_serve_cache_dup.jsonl";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        cache.store(key_for(1), R"({"v":1})");
        cache.store(key_for(1), R"({"v":2})");  // appends a second record
    }
    ResultCache reloaded(path);
    ASSERT_TRUE(reloaded.load());
    std::string out;
    ASSERT_TRUE(reloaded.lookup(key_for(1), out));
    EXPECT_EQ(out, R"({"v":2})");
    EXPECT_EQ(reloaded.stats().entries, 1u);
    std::remove(path.c_str());
}

TEST(ResultCacheTest, CompactRewritesToLiveSet) {
    const std::string path =
        ::testing::TempDir() + "gcdr_serve_cache_compact.jsonl";
    std::remove(path.c_str());
    ResultCache cache(path, /*max_entries=*/2);
    cache.store(key_for(1), "1");
    cache.store(key_for(2), "2");
    cache.store(key_for(3), "3");  // evicts 1; segment has 3 records
    ASSERT_TRUE(cache.compact());
    ResultCache reloaded(path);
    ASSERT_TRUE(reloaded.load());
    EXPECT_EQ(reloaded.stats().loaded, 2u);
    EXPECT_FALSE(reloaded.contains(key_for(1)));
    EXPECT_TRUE(reloaded.contains(key_for(2)));
    EXPECT_TRUE(reloaded.contains(key_for(3)));
    std::remove(path.c_str());
}

// --- job queue -----------------------------------------------------------

JobSpec quick_spec(int priority = 0, double deadline_s = 0.0) {
    JobSpec spec;
    spec.type = JobType::kBer;
    spec.priority = priority;
    spec.deadline_s = deadline_s;
    return spec;
}

TEST(JobQueueTest, PriorityThenFifoOrder) {
    JobQueue q;
    const auto low = q.submit(quick_spec(0));
    const auto high = q.submit(quick_spec(5));
    const auto low2 = q.submit(quick_spec(0));
    ASSERT_TRUE(low && high && low2);
    EXPECT_EQ(q.pop()->id(), high->id());
    EXPECT_EQ(q.pop()->id(), low->id());  // FIFO among equal priority
    EXPECT_EQ(q.pop()->id(), low2->id());
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueueTest, CancelBeforePopRetiresWithoutRunning) {
    JobQueue q;
    const auto a = q.submit(quick_spec());
    const auto b = q.submit(quick_spec());
    ASSERT_TRUE(q.cancel(a->id()));
    const auto popped = q.pop();
    ASSERT_TRUE(popped);
    EXPECT_EQ(popped->id(), b->id());
    EXPECT_EQ(a->status(), JobStatus::kCancelled);
    EXPECT_NE(a->result().find("\"cancelled\""), std::string::npos);
    EXPECT_FALSE(q.cancel(999));  // unknown id
}

TEST(JobQueueTest, LapsedDeadlineRetiresAsExpired) {
    JobQueue q;
    const auto doomed = q.submit(quick_spec(0, /*deadline_s=*/1e-9));
    const auto live = q.submit(quick_spec());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto popped = q.pop();
    ASSERT_TRUE(popped);
    EXPECT_EQ(popped->id(), live->id());
    EXPECT_EQ(doomed->status(), JobStatus::kExpired);
}

TEST(JobQueueTest, StopWakesBlockedPopAndRejectsSubmits) {
    JobQueue q;
    std::thread waiter([&] { EXPECT_EQ(q.pop(), nullptr); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.stop();
    waiter.join();
    EXPECT_EQ(q.submit(quick_spec()), nullptr);
}

TEST(JobQueueTest, WaitBlocksUntilFinish) {
    JobQueue q;
    const auto job = q.submit(quick_spec());
    std::thread worker([&] {
        const auto j = q.pop();
        ASSERT_TRUE(j);
        EXPECT_EQ(j->status(), JobStatus::kRunning);
        j->finish(JobStatus::kDone, "{\"x\":1}");
    });
    EXPECT_EQ(job->wait(), JobStatus::kDone);
    EXPECT_EQ(job->result(), "{\"x\":1}");
    worker.join();
    // First terminal status wins; later finishes are ignored.
    job->finish(JobStatus::kFailed, "{}");
    EXPECT_EQ(job->status(), JobStatus::kDone);
}

// --- executor ------------------------------------------------------------

/// Fast config for tests: a coarse PDF grid keeps ber_of cheap.
std::string fast_cfg(const char* extra = "") {
    return std::string(R"({"grid_dx":0.01)") + extra + "}";
}

TEST(JobExecutorTest, CacheHitIsBitIdenticalToRecompute) {
    ResultCache cache;
    JobExecutor executor(cache);
    exec::ThreadPool pool(1);
    const JobSpec spec =
        parse_ok(R"({"type":"ber","config":)" + fast_cfg() + "}");
    JobState cold(1, spec), warm(2, spec);
    const ExecOutcome first = executor.execute(cold, pool);
    const ExecOutcome second = executor.execute(warm, pool);
    EXPECT_EQ(first.status, JobStatus::kDone);
    EXPECT_EQ(first.cache_misses, 1u);
    EXPECT_EQ(second.cache_hits, 1u);
    // Envelopes differ (job ids, hit tallies); payloads must not.
    auto payload_of = [](const std::string& env) {
        obs::JsonValue v;
        EXPECT_TRUE(obs::json_parse(env, v));
        const obs::JsonValue* p = v.find("payload");
        EXPECT_NE(p, nullptr);
        return canonical_json(*p);
    };
    EXPECT_EQ(payload_of(first.envelope), payload_of(second.envelope));
    // And the raw stored payload is untouched by a reload round-trip:
    // executor payloads re-canonicalize to themselves.
    std::string stored;
    ASSERT_TRUE(cache.lookup(JobExecutor::key_of(spec), stored));
    std::string recanon;
    ASSERT_TRUE(canonicalize(stored, recanon, nullptr));
    EXPECT_EQ(recanon, stored);
}

TEST(JobExecutorTest, SweepCachesPointsAndResumes) {
    ResultCache cache;
    JobExecutor executor(cache);
    exec::ThreadPool pool(2);
    const JobSpec sweep = parse_ok(
        R"({"type":"sweep","config":{"grid_dx":0.01},
            "axes":[{"name":"sj_uipp","values":[0.05,0.1,0.15]}]})");
    JobState job(1, sweep);
    const ExecOutcome out = executor.execute(job, pool);
    EXPECT_EQ(out.status, JobStatus::kDone);
    EXPECT_EQ(out.cache_misses, 3u);
    EXPECT_EQ(cache.stats().entries, 3u);
    // Resubmission: all points hit.
    JobState again(2, sweep);
    const ExecOutcome rerun = executor.execute(again, pool);
    EXPECT_EQ(rerun.cache_hits, 3u);
    EXPECT_EQ(rerun.cache_misses, 0u);
    // The sweep payload lists points in grid order.
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(rerun.envelope, v));
    const obs::JsonValue* points = v.find("payload")->find("points");
    ASSERT_TRUE(points && points->is_array());
    EXPECT_EQ(points->items.size(), 3u);
}

TEST(JobExecutorTest, CancelledSweepReturnsPartialProgress) {
    ResultCache cache;
    JobExecutor executor(cache);
    exec::ThreadPool pool(1);  // serial: cancel after point 0 is exact
    const JobSpec sweep = parse_ok(
        R"({"type":"sweep","config":{"grid_dx":0.01},
            "axes":[{"name":"sj_uipp","values":[0.05,0.1,0.15,0.2]}]})");
    JobState job(1, sweep);
    std::atomic<int> emitted{0};
    job.stream_sink = [&](const std::string&) {
        if (++emitted == 1) job.request_cancel();
    };
    const ExecOutcome out = executor.execute(job, pool);
    EXPECT_EQ(out.status, JobStatus::kCancelled);
    const std::size_t done = cache.stats().entries;
    EXPECT_GE(done, 1u);
    EXPECT_LT(done, 4u);
    // Resume: only the missing points compute.
    JobState resume(2, sweep);
    const ExecOutcome out2 = executor.execute(resume, pool);
    EXPECT_EQ(out2.status, JobStatus::kDone);
    EXPECT_EQ(out2.cache_hits, done);
    EXPECT_EQ(out2.cache_misses, 4u - done);
}

TEST(JobExecutorTest, PreExpiredSingleJobSkipsCompute) {
    ResultCache cache;
    JobExecutor executor(cache);
    exec::ThreadPool pool(1);
    JobSpec spec = parse_ok(R"({"type":"ber"})");
    spec.deadline_s = 1e-9;
    JobState job(1, spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const ExecOutcome out = executor.execute(job, pool);
    EXPECT_EQ(out.status, JobStatus::kExpired);
    EXPECT_EQ(cache.stats().entries, 0u);
}

// --- HTTP daemon end to end ----------------------------------------------

class ServeHttpTest : public ::testing::Test {
protected:
    void SetUp() override {
        ServerOptions opts;
        opts.workers = 2;
        opts.job_threads = 1;
        server_ = std::make_unique<ServeServer>(opts);
        ASSERT_TRUE(server_->start());
        client_ = std::make_unique<HttpClient>("127.0.0.1",
                                               server_->port());
    }
    void TearDown() override { server_->stop(); }

    std::unique_ptr<ServeServer> server_;
    std::unique_ptr<HttpClient> client_;
};

TEST_F(ServeHttpTest, RunBerWarmHitIsBitIdentical) {
    const std::string body =
        R"({"type":"ber","config":{"grid_dx":0.01}})";
    HttpClient::Response cold, warm;
    ASSERT_TRUE(client_->post("/v1/run", body, cold));
    ASSERT_EQ(cold.status, 200);
    ASSERT_TRUE(client_->post("/v1/run", body, warm));
    ASSERT_EQ(warm.status, 200);
    obs::JsonValue vc, vw;
    ASSERT_TRUE(obs::json_parse(cold.body, vc));
    ASSERT_TRUE(obs::json_parse(warm.body, vw));
    EXPECT_EQ(vc.find("schema")->string_or(""), "gcdr.serve.result/v1");
    EXPECT_EQ(vc.find("status")->string_or(""), "done");
    EXPECT_EQ(vc.find("cache")->find("misses")->uint_or(0), 1u);
    EXPECT_EQ(vw.find("cache")->find("hits")->uint_or(0), 1u);
    EXPECT_EQ(canonical_json(*vc.find("payload")),
              canonical_json(*vw.find("payload")));
    EXPECT_GE(vc.find("payload")->find("ber")->number_or(-1), 0.0);
}

TEST_F(ServeHttpTest, AsyncJobLifecycle) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post(
        "/v1/jobs", R"({"type":"eye","config":{"grid_dx":0.01}})", resp));
    ASSERT_EQ(resp.status, 202);
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    const std::uint64_t id = v.find("job_id")->uint_or(0);
    ASSERT_GT(id, 0u);
    // Poll until terminal (bounded).
    std::string status;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(
            client_->get("/v1/jobs/" + std::to_string(id), resp));
        ASSERT_EQ(resp.status, 200);
        ASSERT_TRUE(obs::json_parse(resp.body, v));
        status = v.find("status")->string_or("");
        if (status == "done") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(status, "done");
    const obs::JsonValue* result = v.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_GT(
        result->find("payload")->find("eye_margin_ui")->number_or(-1),
        0.0);
}

TEST_F(ServeHttpTest, CancelEndpointAndUnknownIds) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/jobs",
                              R"({"type":"ber","config":{"grid_dx":0.01},
                                  "priority":-1})",
                              resp));
    ASSERT_EQ(resp.status, 202);
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    const std::uint64_t id = v.find("job_id")->uint_or(0);
    ASSERT_TRUE(client_->post(
        "/v1/jobs/" + std::to_string(id) + "/cancel", "", resp));
    EXPECT_EQ(resp.status, 200);
    ASSERT_TRUE(client_->post("/v1/jobs/424242/cancel", "", resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client_->get("/v1/jobs/not-a-number", resp));
    EXPECT_EQ(resp.status, 400);
}

TEST_F(ServeHttpTest, StreamingSweepChunksArriveInIndexOrder) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post(
        "/v1/run",
        R"({"type":"sweep","config":{"grid_dx":0.01},"stream":true,
            "axes":[{"name":"sj_uipp","values":[0.05,0.1]}]})",
        resp));
    ASSERT_EQ(resp.status, 200);
    EXPECT_TRUE(resp.chunked);
    // Two per-point chunks plus the final envelope chunk.
    ASSERT_EQ(resp.chunks.size(), 3u);
    obs::JsonValue p0, p1, env;
    ASSERT_TRUE(obs::json_parse(resp.chunks[0], p0));
    ASSERT_TRUE(obs::json_parse(resp.chunks[1], p1));
    ASSERT_TRUE(obs::json_parse(resp.chunks[2], env));
    EXPECT_EQ(p0.find("index")->uint_or(99), 0u);
    EXPECT_EQ(p1.find("index")->uint_or(99), 1u);
    EXPECT_EQ(env.find("status")->string_or(""), "done");
    EXPECT_EQ(env.find("points_done")->uint_or(0), 2u);
}

TEST_F(ServeHttpTest, BadRequestsGet400AndUnknownRoutes404) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/run", "not json", resp));
    EXPECT_EQ(resp.status, 400);
    ASSERT_TRUE(client_->post("/v1/run", R"({"type":"warp"})", resp));
    EXPECT_EQ(resp.status, 400);
    ASSERT_TRUE(
        client_->post("/v1/run", R"({"type":"ber","bogus":1})", resp));
    EXPECT_EQ(resp.status, 400);
    ASSERT_TRUE(client_->get("/v1/nope", resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client_->get("/v1/run", resp));  // wrong method
    EXPECT_EQ(resp.status, 405);
}

TEST_F(ServeHttpTest, HealthStatsAndMetricsEndpoints) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->get("/v1/healthz", resp));
    ASSERT_EQ(resp.status, 200);
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    EXPECT_EQ(v.find("status")->string_or(""), "ok");

    // One computed + one cached request make the stats non-trivial.
    HttpClient::Response run;
    const std::string body =
        R"({"type":"ber","config":{"grid_dx":0.01,"sj_uipp":0.11}})";
    ASSERT_TRUE(client_->post("/v1/run", body, run));
    ASSERT_TRUE(client_->post("/v1/run", body, run));

    ASSERT_TRUE(client_->get("/v1/stats", resp));
    ASSERT_EQ(resp.status, 200);
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    EXPECT_EQ(v.find("cache")->find("hits")->uint_or(0), 1u);
    EXPECT_EQ(v.find("cache")->find("stores")->uint_or(0), 1u);
    EXPECT_GE(v.find("jobs_submitted")->uint_or(0), 2u);

    ASSERT_TRUE(client_->get("/metrics", resp));
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("gcdr_serve_cache_hits"), std::string::npos);
    EXPECT_NE(resp.body.find("gcdr_serve_requests_total"),
              std::string::npos);
}

TEST_F(ServeHttpTest, ShutdownEndpointFlagsTheMainLoop) {
    EXPECT_FALSE(server_->shutdown_requested());
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/shutdown", "", resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(server_->shutdown_requested());
}

// --- live lane-health streaming ------------------------------------------

/// A one-lane health_probe scenario job, small enough to finish in well
/// under a second: a 12-bit pattern tiled 60x through one jitter-free
/// channel, probed in 4 frames.
const char* kHealthProbeJob = R"({"type":"scenario","seed":1,"scenario":{
  "schema":"gcdr.scenario/v1","name":"watch_probe","title":"watch probe",
  "model":{"dj_uipp":0.0,"rj_uirms":0.0,"sj_uipp":0.0,"ckj_uirms":0.0},
  "netlist":{"instances":{
    "src0":{"kind":"source","pattern":[1,1,0,0,1,0,1,1,1,1,0,1],
            "repeat":60,"start_ns":4.0},
    "lane0":{"kind":"channel","f_osc_hz":2.5e9,"ckj_uirms":0.0},
    "mon0":{"kind":"monitor"}},
   "wires":[{"from":"src0.out","to":"lane0.din"},
            {"from":"lane0.dout","to":"mon0.in"}]},
  "tasks":[{"kind":"health_probe","prefix":"w","frames":4}]}})";

std::vector<std::string> lane_states_of(const obs::JsonValue& health) {
    std::vector<std::string> states;
    const obs::JsonValue* lanes = health.find("lanes");
    if (!lanes) return states;
    for (const auto& lane : lanes->items) {
        states.push_back(lane.find("state")->string_or(""));
    }
    return states;
}

TEST_F(ServeHttpTest, WatchStreamsIncrementalHealthFrames) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/jobs", kHealthProbeJob, resp));
    ASSERT_EQ(resp.status, 202);
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    const std::uint64_t id = v.find("job_id")->uint_or(0);
    ASSERT_GT(id, 0u);

    // The watch blocks until the job is terminal; frames are retained in
    // the job state, so attaching late loses nothing.
    HttpClient::Response watch;
    ASSERT_TRUE(client_->get("/v1/watch/" + std::to_string(id), watch));
    ASSERT_EQ(watch.status, 200);
    EXPECT_TRUE(watch.chunked);
    // frames=4 -> 3 incremental snapshots + the final one + the trailer.
    ASSERT_EQ(watch.chunks.size(), 5u);
    for (std::size_t i = 0; i + 1 < watch.chunks.size(); ++i) {
        obs::JsonValue frame;
        ASSERT_TRUE(obs::json_parse(watch.chunks[i], frame)) << i;
        EXPECT_EQ(frame.find("schema")->string_or(""), "gcdr.health/v1")
            << i;
        ASSERT_EQ(frame.find("lanes")->items.size(), 1u) << i;
    }
    obs::JsonValue trailer;
    ASSERT_TRUE(obs::json_parse(watch.chunks.back(), trailer));
    EXPECT_EQ(trailer.find("job_id")->uint_or(0), id);
    EXPECT_EQ(trailer.find("status")->string_or(""), "done");
    EXPECT_EQ(trailer.find("frames")->uint_or(0), 4u);

    // The final frame must agree with the result payload's health block:
    // identical lock states, and byte-identical content once both are in
    // canonical form (the cacheable payload is canonicalized, the live
    // frame is the runner's raw compact serialization).
    ASSERT_TRUE(client_->get("/v1/jobs/" + std::to_string(id), resp));
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    ASSERT_EQ(v.find("status")->string_or(""), "done");
    const obs::JsonValue* tasks =
        v.find("result")->find("payload")->find("tasks");
    ASSERT_NE(tasks, nullptr);
    const obs::JsonValue* health = tasks->find("w")->find("health");
    ASSERT_NE(health, nullptr);
    obs::JsonValue final_frame;
    ASSERT_TRUE(
        obs::json_parse(watch.chunks[watch.chunks.size() - 2], final_frame));
    EXPECT_EQ(lane_states_of(final_frame), lane_states_of(*health));
    EXPECT_EQ(lane_states_of(final_frame),
              std::vector<std::string>{"locked"});
    std::string canon_frame;
    ASSERT_TRUE(canonicalize(watch.chunks[watch.chunks.size() - 2],
                             canon_frame, nullptr));
    EXPECT_EQ(canon_frame, canonical_json(*health));

    // /v1/health snapshot lists the job with its latest frame.
    ASSERT_TRUE(client_->get("/v1/health", resp));
    ASSERT_EQ(resp.status, 200);
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    const obs::JsonValue* jobs = v.find("jobs");
    ASSERT_NE(jobs, nullptr);
    bool found = false;
    for (const auto& j : jobs->items) {
        if (j.find("job_id")->uint_or(0) != id) continue;
        found = true;
        EXPECT_EQ(j.find("status")->string_or(""), "done");
        EXPECT_EQ(j.find("frames")->uint_or(0), 4u);
        EXPECT_EQ(j.find("health")->find("schema")->string_or(""),
                  "gcdr.health/v1");
    }
    EXPECT_TRUE(found);
}

TEST_F(ServeHttpTest, WatchOnFullyCachedJobStreamsOnlyTheTrailer) {
    // Warm the cache, then resubmit: the cached job produces no live
    // frames (documented), so the watch sees the trailer alone.
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/run", kHealthProbeJob, resp));
    ASSERT_EQ(resp.status, 200);
    ASSERT_TRUE(client_->post("/v1/jobs", kHealthProbeJob, resp));
    ASSERT_EQ(resp.status, 202);
    obs::JsonValue v;
    ASSERT_TRUE(obs::json_parse(resp.body, v));
    const std::uint64_t id = v.find("job_id")->uint_or(0);

    HttpClient::Response watch;
    ASSERT_TRUE(client_->get("/v1/watch/" + std::to_string(id), watch));
    ASSERT_EQ(watch.status, 200);
    ASSERT_EQ(watch.chunks.size(), 1u);
    obs::JsonValue trailer;
    ASSERT_TRUE(obs::json_parse(watch.chunks[0], trailer));
    EXPECT_EQ(trailer.find("status")->string_or(""), "done");
    EXPECT_EQ(trailer.find("frames")->uint_or(99), 0u);
}

TEST_F(ServeHttpTest, WatchRejectsUnknownAndMalformedIds) {
    HttpClient::Response resp;
    ASSERT_TRUE(client_->get("/v1/watch/424242", resp));
    EXPECT_EQ(resp.status, 404);
    ASSERT_TRUE(client_->get("/v1/watch/nope", resp));
    EXPECT_EQ(resp.status, 400);
}

TEST_F(ServeHttpTest, MetricsCarryQueueWaitAndCacheAgeHistograms) {
    // A cold run records queue-wait; the warm rerun records the served
    // entry's age.
    const std::string body =
        R"({"type":"ber","config":{"grid_dx":0.01,"sj_uipp":0.13}})";
    HttpClient::Response resp;
    ASSERT_TRUE(client_->post("/v1/run", body, resp));
    ASSERT_TRUE(client_->post("/v1/run", body, resp));
    ASSERT_TRUE(client_->get("/metrics", resp));
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("gcdr_serve_queue_wait_seconds_count"),
              std::string::npos);
    EXPECT_NE(resp.body.find("gcdr_serve_cache_entry_age_seconds_count"),
              std::string::npos);
    EXPECT_NE(resp.body.find("gcdr_serve_cache_oldest_entry_age_seconds"),
              std::string::npos);
}

class CaptureLogSink : public obs::LogSink {
public:
    void write(const obs::LogRecord& rec) override {
        std::lock_guard<std::mutex> lk(mu_);
        records_.push_back(rec);
    }
    [[nodiscard]] std::vector<obs::LogRecord> records() {
        std::lock_guard<std::mutex> lk(mu_);
        return records_;
    }

private:
    std::mutex mu_;
    std::vector<obs::LogRecord> records_;
};

TEST_F(ServeHttpTest, EveryRequestGetsAnAccessLogLine) {
    auto sink = std::make_shared<CaptureLogSink>();
    obs::Logger::global().clear_sinks();
    obs::Logger::global().add_sink(sink);

    HttpClient::Response resp;
    ASSERT_TRUE(client_->get("/v1/healthz", resp));
    ASSERT_EQ(resp.status, 200);

    // The access line is written right after the response bytes go out;
    // give the connection thread a bounded moment to reach it.
    bool found = false;
    for (int i = 0; i < 200 && !found; ++i) {
        for (const auto& rec : sink->records()) {
            if (rec.component != "serve.access") continue;
            if (rec.message != "GET /v1/healthz") continue;
            found = true;
            std::uint64_t bytes = 0;
            std::int64_t status = 0;
            double duration = -1.0;
            for (const auto& f : rec.fields) {
                if (f.key == "status") status = f.i;
                if (f.key == "bytes") bytes = f.u;
                if (f.key == "duration_s") duration = f.d;
            }
            EXPECT_EQ(status, 200);
            EXPECT_EQ(bytes, resp.body.size());
            EXPECT_GE(duration, 0.0);
        }
        if (!found) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    obs::Logger::global().reset();
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gcdr::serve
