// Tests for the runtime gauges added to sim/ and exec/ plus the opt-in
// ProgressReporter: scheduler queue/pool occupancy, ThreadPool lane
// instruments, and progress emission through the structured logger.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/scheduler.hpp"

namespace gcdr {
namespace {

// --- scheduler queue/pool gauges -----------------------------------------

TEST(SchedulerGauges, QueueAndPoolPublishedAtFlush) {
    obs::MetricsRegistry reg;
    sim::Scheduler s;
    s.attach_metrics(&reg, "sim");
    for (int i = 0; i < 100; ++i) {
        s.schedule_at(SimTime::ps(10 * (i + 1)), [] {});
    }
    s.run();
    ASSERT_TRUE(reg.gauge("sim.queue_depth").has_value());
    EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth").value(), 0.0);  // drained
    ASSERT_TRUE(reg.gauge("sim.pool_capacity").has_value());
    const double capacity = reg.gauge("sim.pool_capacity").value();
    EXPECT_GT(capacity, 0.0);
    // The pool grows slab-at-a-time; capacity is a whole slab multiple.
    EXPECT_EQ(static_cast<std::size_t>(capacity) % 256, 0u);
    ASSERT_TRUE(reg.gauge("sim.pool_in_use").has_value());
    EXPECT_LE(reg.gauge("sim.pool_in_use").value(), capacity);
}

TEST(SchedulerGauges, DepthReflectsPendingEventsMidRun) {
    obs::MetricsRegistry reg;
    sim::Scheduler s;
    s.attach_metrics(&reg, "sim");
    for (int i = 0; i < 8; ++i) {
        s.schedule_at(SimTime::ns(i + 1), [] {});
    }
    s.run_until(SimTime::ns(4));  // events at 5..8 ns still queued
    ASSERT_TRUE(reg.gauge("sim.queue_depth").has_value());
    EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth").value(), 4.0);
    EXPECT_GE(reg.gauge("sim.pool_in_use").value(), 4.0);
}

TEST(SchedulerGauges, DetachStopsPublishing) {
    obs::MetricsRegistry reg;
    sim::Scheduler s;
    s.attach_metrics(&reg, "sim");
    s.schedule_at(SimTime::ps(1), [] {});
    s.run();
    s.attach_metrics(nullptr);
    s.schedule_at(SimTime::ns(1), [] {});
    // Detached: the stale flushed value must not change.
    EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth").value(), 0.0);
    s.run();
}

// --- thread-pool instruments ---------------------------------------------

TEST(ThreadPoolMetrics, ParallelJobFeedsAllInstruments) {
    obs::MetricsRegistry reg;
    exec::ThreadPool pool(4);
    pool.attach_metrics(&reg, "exec");
    ASSERT_TRUE(reg.gauge("exec.lanes").has_value());
    EXPECT_DOUBLE_EQ(reg.gauge("exec.lanes").value(),
                     static_cast<double>(pool.size()));

    std::atomic<int> touched{0};
    pool.parallel_for(64, [&](std::size_t) {
        touched.fetch_add(1, std::memory_order_relaxed);
        volatile double x = 0;
        for (int k = 0; k < 2000; ++k) x = x + k;
    });
    EXPECT_EQ(touched.load(), 64);
    EXPECT_EQ(reg.counter("exec.jobs").value(), 1u);
    EXPECT_EQ(reg.counter("exec.items").value(), 64u);
    EXPECT_EQ(reg.histogram("exec.item_seconds").count(), 64u);
    EXPECT_EQ(reg.histogram("exec.job_seconds").count(), 1u);
    ASSERT_TRUE(reg.gauge("exec.lane_utilization").has_value());
    EXPECT_GT(reg.gauge("exec.lane_utilization").value(), 0.0);
    EXPECT_LE(reg.gauge("exec.lane_utilization").value(), 1.0);
}

TEST(ThreadPoolMetrics, SerialPathCountsToo) {
    obs::MetricsRegistry reg;
    exec::ThreadPool pool(1);  // size()==1: parallel_for runs serially
    pool.attach_metrics(&reg, "exec");
    pool.parallel_for(10, [](std::size_t) {});
    EXPECT_EQ(reg.counter("exec.jobs").value(), 1u);
    EXPECT_EQ(reg.counter("exec.items").value(), 10u);
    EXPECT_EQ(reg.histogram("exec.item_seconds").count(), 10u);
    // One lane, never idle: utilization pins to 1.0 on the serial path.
    EXPECT_DOUBLE_EQ(reg.gauge("exec.lane_utilization").value(), 1.0);
}

TEST(ThreadPoolMetrics, DetachStopsCounting) {
    obs::MetricsRegistry reg;
    exec::ThreadPool pool(2);
    pool.attach_metrics(&reg, "exec");
    pool.parallel_for(4, [](std::size_t) {});
    pool.attach_metrics(nullptr);
    pool.parallel_for(4, [](std::size_t) {});
    EXPECT_EQ(reg.counter("exec.jobs").value(), 1u);
    EXPECT_EQ(reg.counter("exec.items").value(), 4u);
}

TEST(ThreadPoolMetrics, ResultsUnchangedByAttachment) {
    // Telemetry must be purely observational: same inputs, same outputs,
    // instrumented or not.
    auto run = [](exec::ThreadPool& pool) {
        std::vector<std::uint64_t> out(100);
        pool.parallel_for(out.size(),
                          [&](std::size_t i) { out[i] = i * i + 7; });
        return out;
    };
    exec::ThreadPool bare(3);
    obs::MetricsRegistry reg;
    exec::ThreadPool instrumented(3);
    instrumented.attach_metrics(&reg, "exec");
    EXPECT_EQ(run(bare), run(instrumented));
}

// --- progress reporter ----------------------------------------------------

struct CaptureSink : obs::LogSink {
    std::vector<obs::LogRecord> records;
    void write(const obs::LogRecord& rec) override {
        records.push_back(rec);
    }
};

/// Restores the global logger and the progress switch after each test.
struct ProgressFixture : ::testing::Test {
    ~ProgressFixture() override {
        obs::ProgressReporter::set_enabled(false);
        obs::Logger::global().reset();
    }
};

TEST_F(ProgressFixture, DisabledByDefault) {
    EXPECT_FALSE(obs::ProgressReporter::enabled());
    obs::ProgressReporter::set_enabled(true);
    EXPECT_TRUE(obs::ProgressReporter::enabled());
    obs::ProgressReporter::set_enabled(false);
    EXPECT_FALSE(obs::ProgressReporter::enabled());
}

TEST_F(ProgressFixture, TallyAndFinishAreIdempotent) {
    obs::ProgressReporter progress("test.unit", 100, /*min_interval_s=*/3600);
    progress.add(30);
    progress.add(20);
    EXPECT_EQ(progress.done(), 50u);
    EXPECT_EQ(progress.total(), 100u);
    progress.finish();
    progress.finish();  // second call must be a no-op
    EXPECT_EQ(progress.done(), 50u);
}

TEST_F(ProgressFixture, EmitsThroughLoggerWhenEnabled) {
    auto sink = std::make_shared<CaptureSink>();
    obs::Logger::global().clear_sinks();
    obs::Logger::global().add_sink(sink);
    obs::ProgressReporter::set_enabled(true);

    obs::ProgressReporter progress("test.emit", 10, /*min_interval_s=*/3600);
    progress.add(10);  // first add passes the gate
    progress.finish();
    ASSERT_GE(sink->records.size(), 1u);
    const obs::LogRecord& last = sink->records.back();
    EXPECT_EQ(last.component, "progress.test.emit");
    EXPECT_EQ(last.message, "10/10 (100.0%)");
    bool saw_done = false;
    bool saw_total = false;
    for (const auto& field : last.fields) {
        if (field.key == "done") saw_done = field.value_text() == "10";
        if (field.key == "total") saw_total = field.value_text() == "10";
    }
    EXPECT_TRUE(saw_done);
    EXPECT_TRUE(saw_total);
}

}  // namespace
}  // namespace gcdr
