// Tests for the run-ledger stack: the JSON parser (obs/json_parse.hpp),
// ledger record serialization + append/reload round-trip
// (obs/ledger.hpp), build provenance (git sha), and the process RSS
// gauges (obs/process_stats.hpp) that ride along in every snapshot.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/json_parse.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/report.hpp"

namespace gcdr::obs {
namespace {

// --- JSON parser ---------------------------------------------------------

TEST(JsonParse, Scalars) {
    JsonValue v;
    ASSERT_TRUE(json_parse("null", v, nullptr));
    EXPECT_TRUE(v.is_null());
    ASSERT_TRUE(json_parse("true", v, nullptr));
    EXPECT_TRUE(v.boolean);
    ASSERT_TRUE(json_parse("-1.5e3", v, nullptr));
    EXPECT_DOUBLE_EQ(v.number, -1500.0);
    ASSERT_TRUE(json_parse("\"hi\"", v, nullptr));
    EXPECT_EQ(v.text, "hi");
}

TEST(JsonParse, NestedContainersPreserveOrder) {
    JsonValue v;
    ASSERT_TRUE(json_parse(R"({"b":[1,2,{"c":3}],"a":null})", v, nullptr));
    ASSERT_TRUE(v.is_object());
    ASSERT_EQ(v.members.size(), 2u);
    EXPECT_EQ(v.members[0].first, "b");  // document order, not sorted
    EXPECT_EQ(v.members[1].first, "a");
    const JsonValue* b = v.find("b");
    ASSERT_TRUE(b && b->is_array());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_DOUBLE_EQ(b->items[1].number, 2.0);
    EXPECT_DOUBLE_EQ(b->items[2].find("c")->number_or(0), 3.0);
}

TEST(JsonParse, StringEscapes) {
    JsonValue v;
    ASSERT_TRUE(json_parse(R"("a\"b\\c\n\tA")", v, nullptr));
    EXPECT_EQ(v.text, "a\"b\\c\n\tA");
}

TEST(JsonParse, UnicodeEscapesAndSurrogatePairs) {
    JsonValue v;
    ASSERT_TRUE(json_parse("\"\\u00e9\"", v, nullptr));  // e-acute
    EXPECT_EQ(v.text, "\xC3\xA9");
    ASSERT_TRUE(json_parse("\"\\ud83d\\ude00\"", v, nullptr));  // emoji
    EXPECT_EQ(v.text, "\xF0\x9F\x98\x80");
    // A lone high surrogate is malformed.
    EXPECT_FALSE(json_parse(R"("\ud83d")", v, nullptr));
}

TEST(JsonParse, ExactUint64ViaToken) {
    JsonValue v;
    // 2^63 + 1 is not representable as a double; the token read is exact.
    ASSERT_TRUE(json_parse("9223372036854775809", v, nullptr));
    EXPECT_EQ(v.uint_or(0), 9223372036854775809ull);
    ASSERT_TRUE(json_parse("-3", v, nullptr));
    EXPECT_EQ(v.uint_or(7), 7u);  // negative: fallback
    ASSERT_TRUE(json_parse("1.25", v, nullptr));
    EXPECT_EQ(v.uint_or(7), 7u);  // fractional: fallback
}

TEST(JsonParse, RejectsGarbage) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(json_parse("", v, &err));
    EXPECT_FALSE(json_parse("{", v, &err));
    EXPECT_FALSE(json_parse("[1,]", v, &err));
    EXPECT_FALSE(json_parse("{\"a\":1} trailing", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, DepthCapStopsRunawayNesting) {
    std::string deep(200, '[');
    deep += std::string(200, ']');
    JsonValue v;
    EXPECT_FALSE(json_parse(deep, v, nullptr));
}

// --- ledger --------------------------------------------------------------

TEST(Fnv1a64, KnownVectors) {
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(fnv1a64("--deep"), fnv1a64("--wide"));
}

LedgerKey test_key() {
    LedgerKey key;
    key.bench = "kernel_perf";
    key.config = "--deep --channels 4";
    key.seed = 12345;
    key.threads = 4;
    return key;
}

TEST(Ledger, RecordIsOneValidLineWithKeyFields) {
    MetricsRegistry reg;
    reg.counter("sim.events_executed").inc(1000);
    reg.gauge("kernel_perf.cdr_events_per_s").set(1.1e7);
    ReportInfo info;
    info.id = "kernel_perf";
    info.wall_seconds = 1.5;
    const std::string line = ledger_record_json(test_key(), reg, info);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(json_parse(line, doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->string_or(""), "gcdr.bench.ledger/v1");
    EXPECT_EQ(doc.find("bench")->string_or(""), "kernel_perf");
    EXPECT_EQ(doc.find("config")->string_or(""), "--deep --channels 4");
    EXPECT_EQ(doc.find("seed")->uint_or(0), 12345u);
    EXPECT_EQ(doc.find("threads")->uint_or(0), 4u);
    EXPECT_DOUBLE_EQ(doc.find("wall_seconds")->number_or(0), 1.5);
    EXPECT_FALSE(doc.find("git_sha")->string_or("").empty());
    EXPECT_FALSE(doc.find("build_mode")->string_or("").empty());
    // config_hash is the 16-hex-digit fnv1a64 of the config string.
    char want[17];
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64("--deep --channels 4")));
    EXPECT_EQ(doc.find("config_hash")->string_or(""), want);
    // Full metrics object rides along.
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(
        metrics->find("counters")->find("sim.events_executed")->uint_or(0),
        1000u);
    EXPECT_DOUBLE_EQ(metrics->find("gauges")
                         ->find("kernel_perf.cdr_events_per_s")
                         ->number_or(0),
                     1.1e7);
}

TEST(Ledger, AppendReloadRoundTrip) {
    const std::string path =
        ::testing::TempDir() + "gcdr_ledger_test.jsonl";
    std::remove(path.c_str());
    MetricsRegistry reg;
    reg.gauge("g.rate_per_s").set(100.0);
    ReportInfo info;
    info.id = "kernel_perf";

    ASSERT_TRUE(ledger_append(path, test_key(), reg, info));
    reg.gauge("g.rate_per_s").set(101.0);
    ASSERT_TRUE(ledger_append(path, test_key(), reg, info));

    std::vector<JsonValue> records;
    std::size_t skipped = 0;
    ASSERT_TRUE(ledger_read(path, records, &skipped));
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_DOUBLE_EQ(records[0]
                         .find("metrics")
                         ->find("gauges")
                         ->find("g.rate_per_s")
                         ->number_or(0),
                     100.0);
    EXPECT_DOUBLE_EQ(records[1]
                         .find("metrics")
                         ->find("gauges")
                         ->find("g.rate_per_s")
                         ->number_or(0),
                     101.0);
    std::remove(path.c_str());
}

TEST(Ledger, ReloadSkipsCorruptAndForeignLines) {
    const std::string path =
        ::testing::TempDir() + "gcdr_ledger_corrupt_test.jsonl";
    std::remove(path.c_str());
    MetricsRegistry reg;
    ReportInfo info;
    info.id = "b";
    ASSERT_TRUE(ledger_append(path, test_key(), reg, info));
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"schema\":\"gcdr.bench.ledger/v1\",\"trunc\n";  // crash
        os << "{\"schema\":\"gcdr.log/v1\"}\n";                  // foreign
        os << "\n";                                              // blank
    }
    ASSERT_TRUE(ledger_append(path, test_key(), reg, info));

    std::vector<JsonValue> records;
    std::size_t skipped = 0;
    ASSERT_TRUE(ledger_read(path, records, &skipped));
    EXPECT_EQ(records.size(), 2u);  // the two real appends survive
    EXPECT_EQ(skipped, 2u);         // truncated + foreign; blank is free
    std::remove(path.c_str());
}

TEST(Ledger, ReadMissingFileFails) {
    std::vector<JsonValue> records;
    EXPECT_FALSE(ledger_read("/nonexistent/dir/ledger.jsonl", records));
}

// --- build provenance ----------------------------------------------------

TEST(BuildInfo, GitShaEnvOverridesCompiledDefault) {
    ::setenv("GCDR_GIT_SHA", "feedc0de", 1);
    EXPECT_EQ(BuildInfo::current().git_sha, "feedc0de");
    ::unsetenv("GCDR_GIT_SHA");
    EXPECT_FALSE(BuildInfo::current().git_sha.empty());
}

// --- process stats -------------------------------------------------------

TEST(ProcessStats, RssIsPositiveOnLinux) {
    // A running process occupies memory; both probes must return > 0 on
    // any platform the repo supports (Linux /proc or rusage fallback).
    EXPECT_GT(process_peak_rss_bytes(), 0u);
    EXPECT_GT(process_current_rss_bytes(), 0u);
    EXPECT_GE(process_peak_rss_bytes(), process_current_rss_bytes() / 2);
}

TEST(ProcessStats, RecordSetsGauges) {
    MetricsRegistry reg;
    record_process_stats(reg);
    EXPECT_TRUE(reg.gauge("process.peak_rss_bytes").has_value());
    EXPECT_GT(reg.gauge("process.peak_rss_bytes").value(), 0.0);
    EXPECT_TRUE(reg.gauge("process.current_rss_bytes").has_value());
}

}  // namespace
}  // namespace gcdr::obs
