// Cross-model integration tests: the statistical model (statmodel/) and
// the event-driven behavioral model (cdr/ on sim/) are independent
// implementations of the same system — they must agree on trends, and the
// full receiver must carry real 8b/10b payload end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ber/bert.hpp"
#include "cdr/channel.hpp"
#include "cdr/multichannel.hpp"
#include "encoding/enc8b10b.hpp"
#include "encoding/prbs.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr {
namespace {

struct BehavioralRun {
    double mean_margin = 0.0;
    double worst_margin = 1.0;
    double ber = 0.0;
};

BehavioralRun run_channel(double f_osc, double sj_uipp, double sj_freq_hz,
                          bool improved, std::uint64_t seed = 33,
                          std::size_t n_bits = 12000) {
    sim::Scheduler sched;
    Rng rng(seed);
    auto cfg = cdr::ChannelConfig::nominal(f_osc);
    cfg.improved_sampling = improved;
    cdr::GccoChannel ch(sched, rng, cfg);
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.spec.sj_uipp = sj_uipp;
    sp.spec.sj_freq_hz = sj_freq_hz;
    sp.start = SimTime::ns(4);
    ch.drive(jitter::jittered_edges(gen.bits(n_bits), sp, rng));
    sched.run_until(sp.start +
                    cfg.rate.ui_to_time(static_cast<double>(n_bits) - 4));
    BehavioralRun r;
    r.ber = ch.measured_prbs_ber(encoding::PrbsOrder::kPrbs7);
    for (double m : ch.margins_ui()) {
        r.mean_margin += m;
        r.worst_margin = std::min(r.worst_margin, m);
    }
    r.mean_margin /= static_cast<double>(ch.margins_ui().size());
    return r;
}

TEST(CrossModel, FrequencyOffsetTrendsAgree) {
    // Statistical: BER grows with |offset|; behavioral: worst margin
    // shrinks in lockstep.
    double prev_stat = 0.0;
    double prev_margin = 1.0;
    for (double off : {0.0, 0.02, 0.04}) {
        statmodel::ModelConfig cfg;
        cfg.grid_dx = 1e-3;
        cfg.max_cid = 7;
        cfg.freq_offset = off;
        const double stat_ber = statmodel::ber_of(cfg);
        EXPECT_GE(stat_ber, prev_stat * 0.999) << off;
        prev_stat = stat_ber;

        // Mean margin is the robust behavioral counterpart (the worst
        // margin is a single extreme draw).
        const auto beh = run_channel(2.5e9 / (1.0 + off), 0.0, 0.0, false);
        EXPECT_LE(beh.mean_margin, prev_margin + 0.005) << off;
        prev_margin = beh.mean_margin;
    }
}

TEST(CrossModel, SjFrequencyShapeAgrees) {
    // Low-frequency SJ of the same amplitude must hurt both models less
    // than near-rate SJ.
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 1e-3;
    cfg.max_cid = 7;
    cfg.spec.sj_uipp = 0.5;
    cfg.sj_freq_norm = 1e-4;
    const double stat_low = statmodel::ber_of(cfg);
    cfg.sj_freq_norm = 0.1;
    const double stat_high = statmodel::ber_of(cfg);
    EXPECT_GT(stat_high, stat_low);

    const auto beh_low = run_channel(2.5e9, 0.5, 250e3, false);
    const auto beh_high = run_channel(2.5e9, 0.5, 250e6, false);
    EXPECT_LT(beh_high.worst_margin, beh_low.worst_margin);
}

TEST(CrossModel, ImprovedSamplingShiftMatchesTheoryWithin3Percent) {
    // Both models place the advanced sampling point T/8 earlier; the
    // behavioral mean margin must shift by the same amount the statistical
    // sample-instant arithmetic predicts.
    const auto base = run_channel(2.5e9, 0.0, 0.0, false);
    const auto improved = run_channel(2.5e9, 0.0, 0.0, true);
    EXPECT_NEAR(improved.mean_margin - base.mean_margin, 0.125, 0.03);
}

TEST(CrossModel, StatModelIsConservativeVsBehavioralAtDesignPoint) {
    // The statistical model books the full Table 1 DJ once per run; the
    // behavioral triangle-sweep DJ is tracked by the retrigger. So the
    // statistical BER must upper-bound the behavioral extrapolation at the
    // design point.
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 1e-3;
    cfg.max_cid = 7;
    const double stat_ber = statmodel::ber_of(cfg);

    sim::Scheduler sched;
    Rng rng(3);
    auto ch_cfg = cdr::ChannelConfig::nominal(2.5e9);
    cdr::GccoChannel ch(sched, rng, ch_cfg);
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    ch.drive(jitter::jittered_edges(gen.bits(20000), sp, rng));
    sched.run_until(sp.start + ch_cfg.rate.ui_to_time(19996.0));
    const double beh_ber =
        ber::extrapolate_ber_from_margins(ch.margins_ui());
    EXPECT_LE(beh_ber, std::max(stat_ber, 1e-12) * 1e3);
}

TEST(MultiChannel, FourLanesRecoverSkewedPayload) {
    sim::Scheduler sched;
    Rng rng(17);
    auto cfg = cdr::MultiChannelConfig::paper_receiver();
    cdr::MultiChannelCdr rx(sched, rng, cfg);
    ASSERT_NEAR(rx.pll().vco_frequency_hz(), 2.5e9, 2.5e9 * 1e-5);

    const SimTime skews[4] = {SimTime::ps(0), SimTime::ps(610),
                              SimTime::ps(1240), SimTime::ps(90)};
    std::vector<std::vector<bool>> tx(4);
    for (int lane = 0; lane < 4; ++lane) {
        encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7,
                                    17 + lane);
        tx[lane] = gen.bits(4000);
        jitter::StreamParams sp;
        sp.spec = jitter::JitterSpec::paper_table1();
        sp.start = SimTime::ns(4) + skews[lane];
        rx.drive(lane, jitter::jittered_edges(tx[lane], sp, rng));
    }
    sched.run_until(SimTime::ns(4) + kPaperRate.ui_to_time(3990));
    for (int lane = 0; lane < 4; ++lane) {
        EXPECT_LT(rx.channel(lane).measured_prbs_ber(
                      encoding::PrbsOrder::kPrbs7),
                  1e-3)
            << "lane " << lane;
        EXPECT_GT(rx.channel(lane).decisions().size(), 3000u);
    }
}

TEST(MultiChannel, ElasticDrainPreservesStreams) {
    sim::Scheduler sched;
    Rng rng(19);
    auto cfg = cdr::MultiChannelConfig::paper_receiver();
    cfg.n_channels = 2;
    cdr::MultiChannelCdr rx(sched, rng, cfg);
    for (int lane = 0; lane < 2; ++lane) {
        encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7, 5 + lane);
        jitter::StreamParams sp;
        sp.start = SimTime::ns(4);
        rx.drive(lane, jitter::jittered_edges(gen.bits(2000), sp, rng));
    }
    sched.run_until(SimTime::ns(4) + kPaperRate.ui_to_time(1996));
    const auto lanes = rx.drain_elastic();
    for (int lane = 0; lane < 2; ++lane) {
        // All recovered bits present after the priming zeros.
        EXPECT_GE(lanes[lane].size(),
                  rx.channel(lane).decisions().size());
        EXPECT_EQ(rx.elastic(lane).overflows(), 0u);
    }
}

TEST(EndToEnd, EncodedPayloadSurvivesChannelAndDecode) {
    // 8b/10b bytes -> serializer -> jittered channel -> CDR -> comma
    // alignment -> decoder: the payload must round-trip.
    sim::Scheduler sched;
    Rng rng(23);
    auto cfg = cdr::ChannelConfig::nominal(2.4995e9);  // -200 ppm
    cdr::GccoChannel ch(sched, rng, cfg);

    encoding::Encoder8b10b enc;
    std::vector<encoding::CodePoint> cps;
    for (int i = 0; i < 6; ++i) cps.push_back(encoding::kK28_5);
    const std::string payload = "gated oscillator";
    for (char c : payload) {
        cps.push_back({static_cast<std::uint8_t>(c), false});
    }
    for (int i = 0; i < 4; ++i) cps.push_back(encoding::kK28_5);
    const auto bits = enc.encode_stream(cps);

    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    ch.drive(jitter::jittered_edges(bits, sp, rng));
    sched.run_until(sp.start +
                    cfg.rate.ui_to_time(static_cast<double>(bits.size())));

    const auto rec = ch.recovered_bits();
    const auto align = encoding::find_comma_alignment(rec);
    ASSERT_TRUE(align.has_value());
    encoding::Decoder8b10b dec;
    std::string text;
    for (std::size_t i = *align; i + 10 <= rec.size(); i += 10) {
        std::uint16_t sym = 0;
        for (int b = 0; b < 10; ++b) {
            sym = static_cast<std::uint16_t>((sym << 1) | rec[i + b]);
        }
        const auto res = dec.decode(sym);
        if (res && !res->code.is_control &&
            std::isprint(res->code.byte)) {
            text.push_back(static_cast<char>(res->code.byte));
        }
    }
    EXPECT_NE(text.find(payload), std::string::npos) << "got: " << text;
}

}  // namespace
}  // namespace gcdr
