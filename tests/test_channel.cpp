// End-to-end tests of one GCCO CDR channel: clean recovery, frequency-
// offset resilience (the topology's defining property), the Fig 13
// edge-detector delay constraint, and the Fig 15 sampling-point shift.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ber/bert.hpp"
#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"

namespace gcdr::cdr {
namespace {

constexpr auto kPrbs = encoding::PrbsOrder::kPrbs7;

struct ChannelRun {
    sim::Scheduler sched;
    Rng rng;
    std::unique_ptr<GccoChannel> ch;

    ChannelRun(const ChannelConfig& cfg, const jitter::JitterSpec& spec,
        std::size_t n_bits, std::uint64_t seed = 2024,
        double data_rate_offset = 0.0)
        : rng(seed) {
        ch = std::make_unique<GccoChannel>(sched, rng, cfg);
        encoding::PrbsGenerator gen(kPrbs);
        jitter::StreamParams sp;
        sp.rate = cfg.rate;
        sp.spec = spec;
        sp.data_rate_offset = data_rate_offset;
        sp.start = SimTime::ns(4);  // let the oscillator start up first
        ch->drive(jitter::jittered_edges(gen.bits(n_bits), sp, rng));
        // The ring free-runs forever; stop slightly BEFORE the data ends,
        // otherwise the sampler keeps clocking the frozen line level and
        // the self-synchronizing checker scores the tail as errors.
        sched.run_until(sp.start +
                        cfg.rate.ui_to_time(static_cast<double>(n_bits) - 4));
    }
};

jitter::JitterSpec clean_spec() {
    jitter::JitterSpec s;
    s.dj_uipp = s.rj_uirms = s.sj_uipp = 0.0;
    s.ckj_uirms = 0.0;
    return s;
}

TEST(Channel, CleanMatchedRecoveryIsErrorFree) {
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9, /*ckj=*/0.0);
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    ChannelRun run(cfg, clean_spec(), 3000);
    EXPECT_GT(run.ch->decisions().size(), 2500u);
    EXPECT_EQ(run.ch->measured_prbs_ber(kPrbs), 0.0);
}

TEST(Channel, ToleratesFivePercentSlowOscillator) {
    // The Fig 14 condition: CCO at 2.375 GHz vs 2.5 Gb/s data (-5%).
    // Retriggering absorbs the offset for PRBS7 run lengths.
    ChannelConfig cfg = ChannelConfig::nominal(2.375e9, 0.0);
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    ChannelRun run(cfg, clean_spec(), 5000);
    EXPECT_EQ(run.ch->measured_prbs_ber(kPrbs), 0.0);
}

TEST(Channel, ToleratesFastOscillator) {
    ChannelConfig cfg = ChannelConfig::nominal(2.625e9, 0.0);  // +5%
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    ChannelRun run(cfg, clean_spec(), 5000);
    EXPECT_EQ(run.ch->measured_prbs_ber(kPrbs), 0.0);
}

TEST(Channel, LargeOffsetBreaksRecovery) {
    // 20% slow: over a 7-bit PRBS run the sample drifts more than half a
    // bit — the gated oscillator's FTOL cliff.
    ChannelConfig cfg = ChannelConfig::nominal(2.0e9, 0.0);
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    ChannelRun run(cfg, clean_spec(), 5000);
    EXPECT_GT(run.ch->measured_prbs_ber(kPrbs), 1e-3);
}

TEST(Channel, Table1JitterStillRecoversMostBits) {
    // Note: the behavioral stream generator injects DJ independently per
    // edge (as the paper's VHDL does), which is pessimistic versus the
    // statistical model's correlated-DJ budget — a rare error in 10k bits
    // is possible, wholesale failure is not.
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9);
    jitter::JitterSpec spec;  // Table 1: DJ 0.4, RJ 0.021, CKJ via config
    ChannelRun run(cfg, spec, 10000);
    EXPECT_LT(run.ch->measured_prbs_ber(kPrbs), 2e-4);
    // Margin population must support extrapolation to small BERs.
    EXPECT_LT(ber::extrapolate_ber_from_margins(run.ch->margins_ui()), 1e-4);
}

TEST(Channel, EyeOpensAroundSamplingInstant) {
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9);
    jitter::JitterSpec spec;
    ChannelRun run(cfg, spec, 10000);
    const auto& eye = run.ch->eye();
    EXPECT_GT(eye.total_transitions(), 4000u);
    // Swept DJ is tracked by the retriggering; RJ and CKJ tails remain.
    EXPECT_GT(eye.eye_opening_ui(), 0.3);
    EXPECT_LT(eye.eye_opening_ui(), 0.95);
}

TEST(Channel, SjNearRateDegradesMargins) {
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9);
    jitter::JitterSpec base;
    ChannelRun quiet(cfg, base, 8000, 1);
    jitter::JitterSpec sj = base;
    sj.sj_uipp = 0.3;
    sj.sj_freq_hz = 250e6;  // f/10, the Fig 14 stress condition
    ChannelRun noisy(cfg, sj, 8000, 1);
    EXPECT_LT(noisy.ch->eye().eye_opening_ui(),
              quiet.ch->eye().eye_opening_ui());
}

class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, ReliableOnlyInsideHalfToFullBit) {
    // Fig 13: tau <= T/2 releases the oscillator before the frozen state
    // reaches stage 4 -> the resync silently fails on many edges and the
    // sampling phase wanders (visible as a smeared margin population);
    // T/2 < tau < T is safe; tau >= T merges EDET pulses on dense
    // transitions and loses samples outright.
    const double tau_ui = GetParam();
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9, 0.0);
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    cfg.edge_detector.n_cells = 4;
    cfg.edge_detector.cell_delay =
        SimTime::from_seconds(tau_ui * cfg.rate.ui_seconds() / 4.0);
    // A -2% frequency offset forces reliance on resynchronization.
    cfg.gcco.fc_hz = 2.45e9;
    ChannelRun run(cfg, clean_spec(), 4000);
    const double ber = run.ch->measured_prbs_ber(kPrbs);
    const auto& margins = run.ch->margins_ui();
    ASSERT_GT(margins.size(), 500u);
    double mean_margin = 0.0;
    for (double m : margins) mean_margin += m;
    mean_margin /= static_cast<double>(margins.size());

    if (tau_ui > 0.55 && tau_ui < 0.8) {
        // Safe window at this offset. (The clean-edge bound is tau < T,
        // but a slow oscillator tightens it: the last sample of a run of
        // L survives only while tau + (L-1)*delta < 1, so tau = 0.9 at
        // -2% already loses L = 7 samples — see the 0.9 branch.)
        EXPECT_EQ(ber, 0.0) << "tau = " << tau_ui << " UI";
        EXPECT_GT(mean_margin, 0.4) << "tau = " << tau_ui << " UI";
    } else if (tau_ui < 0.45) {
        // Fig 13 hazard as this model exhibits it: the ring re-anchors to
        // the EDET *fall* plus the drain time instead of the rise, so the
        // sampling instant lands (T/2 - tau) late in the eye — directly
        // eating closing-edge margin ("poor jitter tolerance").
        // The loss grows as tau shrinks below T/2.
        EXPECT_LT(mean_margin, 0.45 - 0.7 * (0.5 - tau_ui))
            << "tau = " << tau_ui << " UI";
    } else if (tau_ui > 1.05) {
        EXPECT_GT(ber, 1e-4) << "tau = " << tau_ui << " UI";
    } else if (tau_ui > 0.85 && tau_ui < 0.95) {
        // Freeze-swallowed last samples of the longest runs: bit slips.
        EXPECT_GT(ber, 1e-4) << "tau = " << tau_ui << " UI";
    }
}

INSTANTIATE_TEST_SUITE_P(Fig13, TauSweep,
                         ::testing::Values(0.25, 0.4, 0.6, 0.75, 0.9, 1.2));

TEST(Channel, ImprovedSamplingAdvancesMarginCenter) {
    // Fig 15/16: the inverted third-stage clock samples T/8 earlier, so
    // the margin to the closing edge grows by ~1/8 UI.
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9, 0.0);
    cfg.gcco.jitter_sigma = 0.0;
    cfg.edge_detector.cell_jitter_rel = 0.0;
    ChannelRun base(cfg, clean_spec(), 4000);
    cfg.improved_sampling = true;
    ChannelRun improved(cfg, clean_spec(), 4000);

    auto mean_of = [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v) s += x;
        return s / static_cast<double>(v.size());
    };
    ASSERT_GT(base.ch->margins_ui().size(), 1000u);
    ASSERT_GT(improved.ch->margins_ui().size(), 1000u);
    const double shift = mean_of(improved.ch->margins_ui()) -
                         mean_of(base.ch->margins_ui());
    EXPECT_NEAR(shift, 0.125, 0.02);
}

TEST(Channel, ImprovedSamplingWidensClosingMarginUnderSlowOffset) {
    // Fig 16/17 behaviorally: at the Fig 14 operating point (-5% CCO) the
    // advanced sampling point recovers right-edge margin. Note a finding
    // of this behavioral model the paper's statistical Fig 17 does not
    // capture (and the paper caveats): the ultimate slow-offset BER cliff
    // is set by the next trigger's freeze swallowing the in-flight clock
    // wavefront, which is the SAME wavefront for both clock taps — so the
    // improvement shows up in margin, not in the slip-dominated cliff.
    auto min_margin = [](bool improved) {
        ChannelConfig cfg = ChannelConfig::nominal(2.375e9, 0.0);
        cfg.gcco.jitter_sigma = 0.0;
        cfg.edge_detector.cell_jitter_rel = 0.0;
        cfg.improved_sampling = improved;
        ChannelRun run(cfg, clean_spec(), 4000);
        const auto& m = run.ch->margins_ui();
        double worst = 1.0;
        for (double x : m) worst = std::min(worst, x);
        return worst;
    };
    const double base = min_margin(false);
    const double improved = min_margin(true);
    // Closing-edge margin: distance from the last sample to the closing
    // transition is 1 - pos; larger min margin = safer.
    EXPECT_GT(improved, base + 0.08);
}

TEST(Channel, DecisionsArriveAtRecoveredClockRate) {
    ChannelConfig cfg = ChannelConfig::nominal(2.5e9, 0.0);
    cfg.gcco.jitter_sigma = 0.0;
    ChannelRun run(cfg, clean_spec(), 2000);
    const auto& d = run.ch->decisions();
    ASSERT_GT(d.size(), 1000u);
    // Median spacing must be the bit period.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < d.size(); ++i) {
        gaps.push_back((d[i].time - d[i - 1].time).picoseconds());
    }
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                     gaps.end());
    EXPECT_NEAR(gaps[gaps.size() / 2], 400.0, 5.0);
}

}  // namespace
}  // namespace gcdr::cdr
