// Tests for stats/: grid PDFs, moments, tails and convolution — the engine
// the statistical BER model relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/grid_pdf.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace gcdr::stats {
namespace {

constexpr double kDx = 1e-3;

TEST(GridPdf, DiracHasUnitMassAtPoint) {
    const auto p = GridPdf::dirac(0.25, kDx);
    EXPECT_NEAR(p.mass(), 1.0, 1e-12);
    EXPECT_NEAR(p.mean(), 0.25, 1e-12);
    EXPECT_NEAR(p.variance(), 0.0, 1e-15);
}

TEST(GridPdf, UniformMoments) {
    const auto p = GridPdf::uniform(0.4, kDx);
    EXPECT_NEAR(p.mass(), 1.0, 1e-9);
    EXPECT_NEAR(p.mean(), 0.0, 1e-9);
    // Var of U(-0.2, 0.2) = (0.4)^2/12.
    EXPECT_NEAR(p.variance(), 0.4 * 0.4 / 12.0, 1e-4);
}

TEST(GridPdf, GaussianMomentsAndTails) {
    const double sigma = 0.021;
    const auto p = GridPdf::gaussian(sigma, kDx);
    EXPECT_NEAR(p.mass(), 1.0, 1e-9);
    EXPECT_NEAR(p.mean(), 0.0, 1e-9);
    EXPECT_NEAR(p.stddev(), sigma, 1e-4);
    // One-sided 3-sigma tail ~ Q(3) = 1.35e-3.
    EXPECT_NEAR(p.tail_above(3.0 * sigma), q_function(3.0), 2e-4);
    EXPECT_NEAR(p.tail_below(-3.0 * sigma), q_function(3.0), 2e-4);
}

TEST(GridPdf, GaussianDeepTailRepresentable) {
    // The 1e-12 BER integration depends on far-tail fidelity.
    const double sigma = 0.02;
    const auto p = GridPdf::gaussian(sigma, 1e-4);
    const double t7 = p.tail_above(7.0 * sigma);
    EXPECT_GT(t7, 1e-13);
    EXPECT_LT(t7, 1e-11);
}

TEST(GridPdf, ArcsineMomentsAndShape) {
    const double amp = 0.15;
    const auto p = GridPdf::arcsine(amp, kDx);
    EXPECT_NEAR(p.mass(), 1.0, 1e-9);
    EXPECT_NEAR(p.mean(), 0.0, 1e-9);
    // Var of arcsine on [-a, a] is a^2/2.
    EXPECT_NEAR(p.variance(), amp * amp / 2.0, 1e-4);
    // Density at the edges exceeds density at the center.
    const auto& d = p.density();
    EXPECT_GT(d.front(), d[d.size() / 2]);
    // Strictly bounded support.
    EXPECT_NEAR(p.tail_above(amp + 2 * kDx), 0.0, 1e-15);
}

TEST(GridPdf, FromSamplesRecoversMoments) {
    Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i) xs.push_back(rng.gaussian(1.0, 0.1));
    const auto p = GridPdf::from_samples(xs, 5e-3);
    EXPECT_NEAR(p.mass(), 1.0, 1e-9);
    EXPECT_NEAR(p.mean(), 1.0, 5e-3);
    EXPECT_NEAR(p.stddev(), 0.1, 5e-3);
}

TEST(GridPdf, ConvolutionAddsMeansAndVariances) {
    const auto u = GridPdf::uniform(0.4, kDx);
    const auto g = GridPdf::gaussian(0.03, kDx);
    auto c = u.convolve(g);
    EXPECT_NEAR(c.mass(), 1.0, 1e-6);
    EXPECT_NEAR(c.mean(), u.mean() + g.mean(), 1e-6);
    EXPECT_NEAR(c.variance(), u.variance() + g.variance(), 1e-5);
}

TEST(GridPdf, ConvolveTwoUniformsGivesTriangle) {
    const auto u = GridPdf::uniform(0.4, kDx);
    const auto tri = u.convolve(u);
    // Triangular on [-0.4, 0.4]: peak at center, zero past the ends.
    EXPECT_NEAR(tri.mean(), 0.0, 1e-9);
    EXPECT_NEAR(tri.variance(), 2.0 * 0.4 * 0.4 / 12.0, 2e-4);
    EXPECT_NEAR(tri.tail_above(0.41), 0.0, 1e-12);
    EXPECT_NEAR(tri.tail_below(-0.41), 0.0, 1e-12);
    // P(X < -0.2) for the triangle = 1/8.
    EXPECT_NEAR(tri.tail_below(-0.2), 0.125, 2e-3);
}

TEST(GridPdf, ShiftMovesSupport) {
    auto g = GridPdf::gaussian(0.01, kDx);
    g.shift(0.5);
    EXPECT_NEAR(g.mean(), 0.5, 1e-9);
    EXPECT_NEAR(g.tail_below(0.4), 0.0, 1e-12);
}

TEST(GridPdf, CdfIsMonotoneFromZeroToOne) {
    const auto g = GridPdf::gaussian(0.05, kDx);
    double prev = -1.0;
    for (double x = -0.3; x <= 0.3; x += 0.01) {
        const double c = g.cdf(x);
        EXPECT_GE(c, prev - 1e-12);
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0 + 1e-9);
        prev = c;
    }
    EXPECT_NEAR(g.cdf(0.0), 0.5, 2e-3);
}

TEST(GridPdf, TailOutsideSplitsMass) {
    const auto u = GridPdf::uniform(1.0, kDx);
    EXPECT_NEAR(u.tail_outside(-0.25, 0.25), 0.5, 5e-3);
}

TEST(GridPdf, ConvolveAllHandlesDiracsAndEmpties) {
    std::vector<GridPdf> parts;
    parts.push_back(GridPdf::dirac(0.1, kDx));
    parts.push_back(GridPdf());  // empty: skipped
    parts.push_back(GridPdf::gaussian(0.02, kDx));
    parts.push_back(GridPdf::dirac(-0.3, kDx));
    const auto c = convolve_all(parts, kDx);
    EXPECT_NEAR(c.mean(), 0.1 - 0.3, 1e-6);
    EXPECT_NEAR(c.stddev(), 0.02, 1e-4);
    EXPECT_NEAR(c.mass(), 1.0, 1e-6);
}

TEST(GridPdf, ConvolveAllOfNothingIsDiracAtZero) {
    const auto c = convolve_all({}, kDx);
    EXPECT_NEAR(c.mass(), 1.0, 1e-12);
    EXPECT_NEAR(c.mean(), 0.0, 1e-12);
}

TEST(GridPdf, FftAndDirectPathsAgree) {
    // Large operands trigger the FFT path; compare against direct conv of
    // the same data through small slices of the API.
    const auto a = GridPdf::gaussian(0.3, 1e-4);   // ~ 6000 bins
    const auto b = GridPdf::uniform(0.5, 1e-4);    // ~ 5000 bins
    ASSERT_GT(a.size(), 2048u);
    ASSERT_GT(b.size(), 2048u);
    const auto c = a.convolve(b);
    EXPECT_NEAR(c.mass(), 1.0, 1e-6);
    EXPECT_NEAR(c.variance(), a.variance() + b.variance(), 1e-4);
    // No negative densities leaked from FFT rounding.
    for (double v : c.density()) EXPECT_GE(v, 0.0);
}

TEST(GridPdf, ConvolvePruneFloorTrimsOnlySubFloorTails) {
    const auto g = GridPdf::gaussian(0.02, kDx);   // tails reach ~1e-19
    const auto u = GridPdf::uniform(0.1, kDx);
    const auto full = g.convolve(u);               // default: no pruning
    const auto pruned = g.convolve(u, 1e-18);
    // Support shrinks, bulk statistics don't.
    ASSERT_LT(pruned.size(), full.size());
    EXPECT_NEAR(pruned.mass(), full.mass(), 1e-15);
    EXPECT_NEAR(pruned.mean(), full.mean(), 1e-12);
    EXPECT_NEAR(pruned.stddev(), full.stddev(), 1e-12);
    // x0 shifted by exactly the trimmed leading bins, so surviving bins
    // sit at identical positions with identical densities.
    const auto offset = static_cast<std::size_t>(
        std::round((pruned.x0() - full.x0()) / kDx));
    ASSERT_GT(offset, 0u);
    for (std::size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned.density()[i], full.density()[i + offset]);
        EXPECT_GE(pruned.density()[i] + 1.0, 1.0);  // finite, non-NaN
    }
    // Every trimmed bin really was below the floor.
    for (std::size_t i = 0; i < offset; ++i) {
        EXPECT_LT(full.density()[i], 1e-18);
    }
    // Interior bins stay even if pruning is requested with a huge floor:
    // the result never collapses below one bin.
    const auto extreme = g.convolve(u, 1e100);
    EXPECT_GE(extreme.size(), 1u);
}

TEST(GridPdf, ConvolvePruneFloorDefaultOffIsBitIdentical) {
    // prune_floor = 0 must take the historical path exactly: same support,
    // same bits, so seeded statmodel outputs cannot move.
    const auto g = GridPdf::gaussian(0.015, kDx);
    const auto u = GridPdf::uniform(0.2, kDx);
    const auto a = g.convolve(u);
    const auto b = g.convolve(u, 0.0);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.x0(), b.x0());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.density()[i], b.density()[i]);
    }
}

TEST(GridPdf, ConvolveAllForwardsPruneFloor) {
    std::vector<GridPdf> parts;
    parts.push_back(GridPdf::gaussian(0.02, kDx));
    parts.push_back(GridPdf::uniform(0.1, kDx));
    parts.push_back(GridPdf::gaussian(0.01, kDx));
    const auto full = convolve_all(parts, kDx);
    const auto pruned = convolve_all(parts, kDx, 1e-18);
    ASSERT_LT(pruned.size(), full.size());
    EXPECT_NEAR(pruned.mass(), full.mass(), 1e-14);
    // Tail integrals above the measurement floor are unaffected.
    const double x = full.mean() + 6.0 * full.stddev();
    EXPECT_NEAR(pruned.tail_above(x), full.tail_above(x),
                1e-15 + 1e-9 * full.tail_above(x));
}

TEST(GridPdf, TripleConvolutionMatchesAnalyticGaussian) {
    // Sum of three Gaussians is Gaussian with summed variances; check a
    // far-tail value against the closed form.
    const auto g1 = GridPdf::gaussian(0.01, 2e-4);
    const auto g2 = GridPdf::gaussian(0.02, 2e-4);
    const auto g3 = GridPdf::gaussian(0.02, 2e-4);
    const auto c = g1.convolve(g2).convolve(g3);
    const double sigma = std::sqrt(0.01 * 0.01 + 2 * 0.02 * 0.02);
    const double tail = c.tail_below(-5.0 * sigma);
    EXPECT_NEAR(tail / q_function(5.0), 1.0, 0.05);
}

}  // namespace
}  // namespace gcdr::stats
