// Tests for jitter/: edge-stream generation under the Table 1 jitter budget
// and the dual-Dirac decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "encoding/prbs.hpp"
#include "jitter/jitter.hpp"

namespace gcdr::jitter {
namespace {

std::vector<bool> alternating(std::size_t n) {
    std::vector<bool> bits(n);
    for (std::size_t i = 0; i < n; ++i) bits[i] = i % 2 == 0;
    return bits;
}

TEST(JitterSpec, Table1Defaults) {
    const auto spec = JitterSpec::paper_table1();
    EXPECT_DOUBLE_EQ(spec.dj_uipp, 0.4);
    EXPECT_DOUBLE_EQ(spec.rj_uirms, 0.021);
    EXPECT_DOUBLE_EQ(spec.ckj_uirms, 0.01);
    EXPECT_DOUBLE_EQ(spec.sj_uipp, 0.0);
}

TEST(SinusoidalJitter, AmplitudeAndPeriod) {
    SinusoidalJitter sj(0.2, 1e6);  // 0.2 UIpp at 1 MHz
    double peak = 0.0;
    for (int i = 0; i < 1000; ++i) {
        peak = std::max(peak, std::abs(sj.at(i * 1e-9)));
    }
    EXPECT_NEAR(peak, 0.1, 1e-3);  // half of peak-peak
    // Quarter period of 1 MHz = 250 ns: maximum of the sine.
    EXPECT_NEAR(sj.at(250e-9), 0.1, 1e-12);
    EXPECT_NEAR(sj.at(0.0), 0.0, 1e-12);
}

TEST(IdealEdges, OnlyAtTransitions) {
    const std::vector<bool> bits{0, 1, 1, 0, 1};
    const auto edges = ideal_edges(bits, kPaperRate);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0].time, SimTime::ps(400));  // bit 1 boundary
    EXPECT_TRUE(edges[0].value);
    EXPECT_EQ(edges[1].time, SimTime::ps(3 * 400));
    EXPECT_FALSE(edges[1].value);
    EXPECT_EQ(edges[2].time, SimTime::ps(4 * 400));
}

TEST(JitteredEdges, CleanSpecMatchesIdeal) {
    StreamParams p;
    p.spec = JitterSpec{};
    p.spec.dj_uipp = p.spec.rj_uirms = p.spec.sj_uipp = 0.0;
    Rng rng(1);
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    const auto bits = gen.bits(100);
    const auto jittered = jittered_edges(bits, p, rng);
    const auto ideal = ideal_edges(bits, p.rate);
    ASSERT_EQ(jittered.size(), ideal.size());
    for (std::size_t i = 0; i < ideal.size(); ++i) {
        EXPECT_EQ(jittered[i].time, ideal[i].time);
        EXPECT_EQ(jittered[i].value, ideal[i].value);
    }
}

TEST(JitteredEdges, MonotonicEvenUnderHeavyJitter) {
    StreamParams p;
    p.spec.dj_uipp = 0.8;
    p.spec.rj_uirms = 0.2;
    p.spec.sj_uipp = 1.0;
    p.spec.sj_freq_hz = 250e6;
    Rng rng(5);
    const auto edges = jittered_edges(alternating(2000), p, rng);
    for (std::size_t i = 1; i < edges.size(); ++i) {
        EXPECT_LT(edges[i - 1].time, edges[i].time);
    }
}

TEST(JitteredEdges, DjBoundedUniform) {
    StreamParams p;
    p.spec = JitterSpec{};
    p.spec.rj_uirms = 0.0;
    p.spec.dj_uipp = 0.4;
    Rng rng(7);
    const auto bits = alternating(20000);
    const auto edges = jittered_edges(bits, p, rng);
    const double ui = p.rate.ui_seconds();
    double max_dev = 0.0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const double nominal = static_cast<double>(i) * ui;
        const double dev_ui =
            (edges[i].time.seconds() - nominal) / ui;
        max_dev = std::max(max_dev, std::abs(dev_ui));
    }
    EXPECT_LE(max_dev, 0.2 + 1e-9);   // bounded by DJ/2
    EXPECT_GT(max_dev, 0.18);         // and actually exercises the bound
}

TEST(JitteredEdges, RjStatisticsMatchSpec) {
    StreamParams p;
    p.spec = JitterSpec{};
    p.spec.dj_uipp = 0.0;
    p.spec.rj_uirms = 0.05;
    Rng rng(11);
    const auto bits = alternating(50000);
    const auto edges = jittered_edges(bits, p, rng);
    const double ui = p.rate.ui_seconds();
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const double dev =
            (edges[i].time.seconds() - static_cast<double>(i) * ui) / ui;
        sum += dev;
        sum2 += dev * dev;
    }
    const double n = static_cast<double>(edges.size());
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.0, 0.002);
    EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 0.05, 0.003);
}

TEST(JitteredEdges, DataRateOffsetStretchesPeriod) {
    StreamParams p;
    p.spec = JitterSpec{};
    p.spec.dj_uipp = p.spec.rj_uirms = 0.0;
    p.data_rate_offset = 100e-6;  // +100 ppm faster data
    Rng rng(13);
    const auto edges = jittered_edges(alternating(10001), p, rng);
    const double measured_ui = edges.back().time.seconds() /
                               static_cast<double>(edges.size() - 1);
    EXPECT_NEAR(measured_ui, p.rate.ui_seconds() / (1.0 + 100e-6),
                1e-18 + measured_ui * 1e-9);
}

TEST(JitteredEdges, SjShiftsEdgesCoherently) {
    StreamParams p;
    p.spec = JitterSpec{};
    p.spec.dj_uipp = p.spec.rj_uirms = 0.0;
    p.spec.sj_uipp = 0.2;
    p.spec.sj_freq_hz = 2.5e9 / 100.0;  // period = 100 UI
    Rng rng(17);
    const auto edges = jittered_edges(alternating(400), p, rng);
    const double ui = p.rate.ui_seconds();
    // Deviation at edge i must equal the sinusoid evaluated at its nominal
    // time (deterministic, no randomness configured).
    SinusoidalJitter sj(0.2, p.spec.sj_freq_hz);
    for (std::size_t i = 0; i < edges.size(); i += 37) {
        const double nominal = static_cast<double>(i) * ui;
        const double dev_ui = (edges[i].time.seconds() - nominal) / ui;
        EXPECT_NEAR(dev_ui, sj.at(nominal), 1e-4);
    }
}

TEST(DualDirac, RecoversPureGaussian) {
    Rng rng(23);
    std::vector<double> samples;
    for (int i = 0; i < 200000; ++i) samples.push_back(rng.gaussian(0.0, 0.02));
    const auto fit = fit_dual_dirac(samples);
    EXPECT_NEAR(fit.rj_rms, 0.02, 0.004);
    EXPECT_LT(fit.dj_pp, 0.01);
}

TEST(DualDirac, RecoversBimodalDjPlusRj) {
    Rng rng(29);
    std::vector<double> samples;
    for (int i = 0; i < 200000; ++i) {
        samples.push_back(rng.dual_dirac(0.1) + rng.gaussian(0.0, 0.02));
    }
    const auto fit = fit_dual_dirac(samples);
    EXPECT_NEAR(fit.dj_pp, 0.2, 0.03);
    EXPECT_NEAR(fit.rj_rms, 0.02, 0.006);
}

TEST(DualDirac, TjAtBerGrowsAsBerShrinks) {
    DualDiracFit fit{0.2, 0.02};
    const double tj9 = fit.tj_at_ber(1e-9);
    const double tj12 = fit.tj_at_ber(1e-12);
    EXPECT_GT(tj12, tj9);
    EXPECT_NEAR(tj12, 0.2 + 2.0 * 7.034 * 0.02, 1e-3);
}

TEST(DualDirac, TooFewSamplesReturnsZeros) {
    const auto fit = fit_dual_dirac({0.1, -0.1, 0.0});
    EXPECT_EQ(fit.dj_pp, 0.0);
    EXPECT_EQ(fit.rj_rms, 0.0);
}

}  // namespace
}  // namespace gcdr::jitter
