// Unit tests for the telemetry subsystem (obs/): counter/gauge/histogram
// semantics, JSON export well-formedness and round-trip of expected keys,
// the bench run-report document, and instrumented components reporting
// exact tallies (Scheduler event counts, Tracer sample cap).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sharded.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace gcdr::obs {
namespace {

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON parser used only to validate exporter
// output: checks well-formedness and collects every object key as a
// dotted path ("metrics.counters.sim.events_executed"). Not a general
// parser — just enough for round-trip assertions without a dependency.
class JsonChecker {
public:
    bool parse(const std::string& text) {
        s_ = text;
        pos_ = 0;
        keys_.clear();
        if (!value("")) return false;
        skip_ws();
        return pos_ == s_.size();
    }
    [[nodiscard]] bool has_key(const std::string& path) const {
        return keys_.count(path) > 0;
    }
    [[nodiscard]] const std::set<std::string>& keys() const { return keys_; }

private:
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }
    bool literal(const char* lit) {
        const std::string_view sv(lit);
        if (s_.compare(pos_, sv.size(), sv) != 0) return false;
        pos_ += sv.size();
        return true;
    }
    bool string(std::string& out) {
        if (pos_ >= s_.size() || s_[pos_] != '"') return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                if (pos_ + 1 >= s_.size()) return false;
                ++pos_;  // accept any escaped char (incl. uXXXX loosely)
            }
            out.push_back(s_[pos_++]);
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing quote
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
        bool digits = false;
        auto take_digits = [&] {
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        take_digits();
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            take_digits();
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
                ++pos_;
            }
            take_digits();
        }
        return digits && pos_ > start;
    }
    bool value(const std::string& path) {
        skip_ws();
        if (pos_ >= s_.size()) return false;
        const char c = s_[pos_];
        if (c == '{') return object(path);
        if (c == '[') return array(path);
        if (c == '"') {
            std::string ignored;
            return string(ignored);
        }
        if (literal("true") || literal("false") || literal("null")) {
            return true;
        }
        return number();
    }
    bool object(const std::string& path) {
        ++pos_;  // '{'
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            std::string k;
            if (!string(k)) return false;
            const std::string child = path.empty() ? k : path + "." + k;
            keys_.insert(child);
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
            if (!value(child)) return false;
            skip_ws();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }
    bool array(const std::string& path) {
        ++pos_;  // '['
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value(path)) return false;
            skip_ws();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    std::string s_;
    std::size_t pos_ = 0;
    std::set<std::string> keys_;
};

// ---------------------------------------------------------------------------
// Instrument semantics

TEST(Counter, IncrementAndReset) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndWaterMarks) {
    Gauge g;
    EXPECT_FALSE(g.has_value());
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    EXPECT_TRUE(g.has_value());
    EXPECT_EQ(g.value(), 3.5);
    g.set_max(2.0);  // lower than current -> keeps 3.5
    EXPECT_EQ(g.value(), 3.5);
    g.set_max(7.0);
    EXPECT_EQ(g.value(), 7.0);

    Gauge lo;
    lo.set_min(5.0);  // first observation always taken
    lo.set_min(9.0);
    EXPECT_EQ(lo.value(), 5.0);
    lo.set_min(-1.0);
    EXPECT_EQ(lo.value(), -1.0);
}

TEST(Histogram, ExactStatsAndBucketing) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (double v : {1.0, 10.0, 100.0}) h.record(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 111.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 37.0);

    // Each sample lands in a distinct bucket; buckets are sorted by edge
    // and their counts total count().
    const auto buckets = h.nonempty_buckets();
    ASSERT_EQ(buckets.size(), 3u);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        total += buckets[i].count;
        if (i) {
            EXPECT_GT(buckets[i].upper, buckets[i - 1].upper);
        }
    }
    EXPECT_EQ(total, 3u);
}

TEST(Histogram, QuantilesClampedToObservedRange) {
    Histogram h;
    for (int i = 0; i < 1000; ++i) h.record(400.0);  // degenerate population
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 400.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 400.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 400.0);

    Histogram spread;
    for (int i = 1; i <= 100; ++i) spread.record(static_cast<double>(i));
    const double p50 = spread.quantile(0.5);
    const double p99 = spread.quantile(0.99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 100.0);
    EXPECT_GT(p99, p50);  // 16 buckets/decade resolves 50 vs 99
}

TEST(Histogram, UnderOverflowAndNonPositive) {
    Histogram h;
    h.record(0.0);      // non-positive -> underflow bucket
    h.record(-5.0);     // likewise
    h.record(1e-40);    // below 10^kMinExp
    h.record(1e15);     // above 10^kMaxExp
    EXPECT_EQ(h.count(), 4u);
    const auto buckets = h.nonempty_buckets();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_DOUBLE_EQ(buckets.front().upper,
                     std::pow(10.0, Histogram::kMinExp));
    EXPECT_EQ(buckets.front().count, 3u);
    EXPECT_TRUE(std::isinf(buckets.back().upper));
    EXPECT_EQ(buckets.back().count, 1u);
}

TEST(Histogram, BucketEdgesContainSamples) {
    // A recorded value must never exceed its bucket's upper edge.
    Histogram h;
    const double v = 365.17;
    h.record(v);
    const auto buckets = h.nonempty_buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_LE(v, buckets[0].upper);
    EXPECT_GE(v, buckets[0].upper / std::pow(10.0, 1.0 / Histogram::kPerDecade));
}

TEST(Registry, SameNameSharesInstrument) {
    MetricsRegistry reg;
    Counter& a = reg.counter("x.events");
    Counter& b = reg.counter("x.events");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    // Kinds are namespaced separately: same name, different instrument.
    Gauge& g = reg.gauge("x.events");
    g.set(1.5);
    EXPECT_EQ(reg.counters().size(), 1u);
    EXPECT_EQ(reg.gauges().size(), 1u);
}

TEST(ScopedTimer, RecordsOnDestruction) {
    MetricsRegistry reg;
    {
        ScopedTimer t(&reg, "work_seconds");
        EXPECT_GE(t.seconds_so_far(), 0.0);
    }
    EXPECT_EQ(reg.histogram("work_seconds").count(), 1u);
    EXPECT_GE(reg.histogram("work_seconds").min(), 0.0);
    // Null registry: a no-op probe, must not crash or register anything.
    { ScopedTimer t(nullptr, "ignored"); }
    EXPECT_EQ(reg.histograms().count("ignored"), 0u);
}

// ---------------------------------------------------------------------------
// Thread safety (the exec/ sweep layer hammers these from worker lanes)

TEST(Concurrency, CounterIncrementsAreNotLost) {
    Counter c;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Concurrency, GaugeWatermarksSeeEveryObservation) {
    Gauge hi, lo;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const double v = t * kPerThread + i;
                hi.set_max(v);
                lo.set_min(v);
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(hi.value(), static_cast<double>(kThreads * kPerThread - 1));
    EXPECT_EQ(lo.value(), 0.0);
}

TEST(Concurrency, HistogramTotalsExactUnderContention) {
    Histogram h;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&h] {
            for (int i = 1; i <= kPerThread; ++i) {
                h.record(static_cast<double>(i));
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), kThreads * (kPerThread * (kPerThread + 1.0)) /
                                  2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kPerThread));
    std::uint64_t bucket_total = 0;
    for (const auto& b : h.nonempty_buckets()) bucket_total += b.count;
    EXPECT_EQ(bucket_total, h.count());
}

TEST(Concurrency, RegistryCreationFromManyThreads) {
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&reg] {
            // All threads race to create/find the same instruments.
            for (int i = 0; i < 200; ++i) {
                reg.counter("shared.c").inc();
                reg.gauge("shared.g").set_max(static_cast<double>(i));
                reg.histogram("shared.h").record(1.0);
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(reg.counter("shared.c").value(), 8u * 200u);
    EXPECT_EQ(reg.histogram("shared.h").count(), 8u * 200u);
    EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(ShardedCounter, MergesLaneTalliesOnFlush) {
    Counter sink;
    ShardedCounter shards(sink, 4);
    shards.inc(0);
    shards.inc(1, 10);
    shards.inc(3, 100);
    EXPECT_EQ(sink.value(), 0u);  // nothing published yet
    shards.flush();
    EXPECT_EQ(sink.value(), 111u);
    shards.flush();  // flush drains: no double counting
    EXPECT_EQ(sink.value(), 111u);
    // Out-of-range lane degrades to a direct (atomic) sink increment.
    shards.inc(99, 5);
    EXPECT_EQ(sink.value(), 116u);
}

TEST(ShardedCounter, FlushesOnDestruction) {
    Counter sink;
    {
        ShardedCounter shards(sink, 2);
        shards.inc(1, 42);
    }
    EXPECT_EQ(sink.value(), 42u);
}

// ---------------------------------------------------------------------------
// JSON writer + exporters

TEST(JsonWriter, StructuralOutput) {
    JsonWriter w(0);  // compact
    w.begin_object()
        .key("a")
        .value(1)
        .key("b")
        .begin_array()
        .value(true)
        .null_value()
        .value("s\"x")
        .end_array()
        .end_object();
    EXPECT_TRUE(w.complete());
    JsonChecker chk;
    EXPECT_TRUE(chk.parse(w.str()));
    EXPECT_TRUE(chk.has_key("a"));
    EXPECT_TRUE(chk.has_key("b"));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    JsonWriter w;
    w.begin_array()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .end_array();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str().find("nan"), std::string::npos);
    EXPECT_EQ(w.str().find("inf"), std::string::npos);
    JsonChecker chk;
    EXPECT_TRUE(chk.parse(w.str()));
}

TEST(JsonWriter, EscapesControlCharacters) {
    const std::string esc = JsonWriter::escape("tab\there \"q\" \\ \n");
    EXPECT_NE(esc.find("\\t"), std::string::npos);
    EXPECT_NE(esc.find("\\\""), std::string::npos);
    EXPECT_NE(esc.find("\\\\"), std::string::npos);
    EXPECT_NE(esc.find("\\n"), std::string::npos);
    EXPECT_EQ(esc.find('\n'), std::string::npos);
}

TEST(Registry, JsonRoundTripHasExpectedKeys) {
    MetricsRegistry reg;
    reg.counter("sim.events").inc(7);
    reg.gauge("sim.ratio").set(2.5);
    reg.gauge("unset");  // exported as null
    reg.histogram("lat_seconds").record(1e-3);

    const std::string doc = reg.to_json();
    JsonChecker chk;
    ASSERT_TRUE(chk.parse(doc)) << doc;
    EXPECT_TRUE(chk.has_key("counters.sim.events"));
    EXPECT_TRUE(chk.has_key("gauges.sim.ratio"));
    EXPECT_TRUE(chk.has_key("gauges.unset"));
    EXPECT_TRUE(chk.has_key("histograms.lat_seconds.count"));
    EXPECT_TRUE(chk.has_key("histograms.lat_seconds.mean"));
    EXPECT_TRUE(chk.has_key("histograms.lat_seconds.p50"));
    EXPECT_TRUE(chk.has_key("histograms.lat_seconds.buckets.le"));
    // Exact values survive the trip textually.
    EXPECT_NE(doc.find("\"sim.events\": 7"), std::string::npos);
    EXPECT_NE(doc.find("\"unset\": null"), std::string::npos);
}

TEST(Registry, CsvExport) {
    MetricsRegistry reg;
    reg.counter("c1").inc(5);
    reg.gauge("g1").set(0.25);
    reg.histogram("h1").record(2.0);
    const std::string csv = reg.to_csv();
    EXPECT_NE(csv.find("counter,c1,5"), std::string::npos);
    EXPECT_NE(csv.find("gauge,g1,"), std::string::npos);
    EXPECT_NE(csv.find("h1.count"), std::string::npos);
}

TEST(Report, DocumentSchemaAndWrite) {
    MetricsRegistry reg;
    reg.counter("sim.events_executed").inc(123);
    reg.histogram("t_seconds").record(0.5);
    ReportInfo info;
    info.id = "unit_test";
    info.title = "telemetry unit test";
    info.wall_seconds = 1.25;
    info.threads = 8;
    info.seed = 12345;

    const std::string doc = run_report_json(reg, info);
    JsonChecker chk;
    ASSERT_TRUE(chk.parse(doc)) << doc;
    EXPECT_TRUE(chk.has_key("schema"));
    EXPECT_TRUE(chk.has_key("bench"));
    EXPECT_TRUE(chk.has_key("wall_seconds"));
    EXPECT_TRUE(chk.has_key("run.threads"));
    EXPECT_TRUE(chk.has_key("run.seed"));
    EXPECT_NE(doc.find("\"threads\": 8"), std::string::npos);
    EXPECT_NE(doc.find("\"seed\": 12345"), std::string::npos);
    EXPECT_TRUE(chk.has_key("build.compiler"));
    EXPECT_TRUE(chk.has_key("build.build_mode"));
    EXPECT_TRUE(chk.has_key("metrics.counters.sim.events_executed"));
    EXPECT_TRUE(chk.has_key("metrics.histograms.t_seconds.count"));
    EXPECT_NE(doc.find(kReportSchema), std::string::npos);

    const auto path = std::filesystem::temp_directory_path() /
                      "gcdr_test_report.json";
    ASSERT_TRUE(write_run_report(path.string(), reg, info));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), doc);  // written byte-identical (doc ends in \n)
    std::filesystem::remove(path);
    // Unwritable path is a soft failure (returns false, no throw).
    EXPECT_FALSE(write_run_report("/nonexistent-dir/x/y.json", reg, info));
}

// ---------------------------------------------------------------------------
// Instrumented components

TEST(InstrumentedScheduler, ReportsExactEventCount) {
    MetricsRegistry reg;
    sim::Scheduler s;
    s.attach_metrics(&reg);
    constexpr int kEvents = 257;
    for (int i = 0; i < kEvents; ++i) {
        s.schedule_at(SimTime::ps(10 * (i % 13)), [] {});
    }
    s.run();
    EXPECT_EQ(reg.counter("sim.events_scheduled").value(),
              static_cast<std::uint64_t>(kEvents));
    EXPECT_EQ(reg.counter("sim.events_executed").value(),
              static_cast<std::uint64_t>(kEvents));
    EXPECT_EQ(reg.counter("sim.events_executed").value(),
              s.executed_events());
    // All events were queued before run(): the high-water mark saw them.
    EXPECT_EQ(reg.gauge("sim.queue_high_water").value(),
              static_cast<double>(kEvents));
    EXPECT_TRUE(reg.gauge("sim.wall_seconds").has_value());
}

TEST(InstrumentedScheduler, DetachStopsCounting) {
    MetricsRegistry reg;
    sim::Scheduler s;
    s.attach_metrics(&reg);
    s.schedule_at(SimTime::ps(1), [] {});
    s.run();
    s.attach_metrics(nullptr);
    s.schedule_at(SimTime::ps(2), [] {});
    s.run();
    EXPECT_EQ(reg.counter("sim.events_executed").value(), 1u);
    EXPECT_EQ(s.executed_events(), 2u);
}

TEST(InstrumentedWire, CountsCommittedTransitions) {
    MetricsRegistry reg;
    sim::Scheduler s;
    sim::Wire w(s, "d", false);
    w.attach_metrics(reg);
    w.post_transport(SimTime::ps(10), true);
    w.post_transport(SimTime::ps(20), false);
    w.post_transport(SimTime::ps(30), false);  // no transition: same value
    s.run();
    EXPECT_EQ(reg.counter("wire.d.transitions").value(), 2u);
}

TEST(TracerCap, DropsAndCountsBeyondMaxSamples) {
    MetricsRegistry reg;
    sim::Scheduler s;
    sim::Wire w(s, "clk", false);
    sim::Tracer tr;
    tr.set_max_samples(5);
    tr.attach_metrics(reg);
    tr.watch(w);
    constexpr int kToggles = 20;
    for (int i = 1; i <= kToggles; ++i) {
        w.post_transport(SimTime::ps(10 * i), i % 2 == 1);
    }
    s.run();
    EXPECT_EQ(tr.samples().size(), 5u);
    EXPECT_EQ(tr.dropped_samples(), static_cast<std::uint64_t>(kToggles - 5));
    EXPECT_EQ(reg.counter("trace.dropped_samples").value(),
              static_cast<std::uint64_t>(kToggles - 5));
    EXPECT_EQ(reg.gauge("trace.samples").value(), 5.0);
    // The kept samples are the earliest ones, still in time order.
    EXPECT_EQ(tr.samples().back().time, SimTime::ps(50));
}

TEST(TracerCap, ZeroMeansUnlimited) {
    sim::Scheduler s;
    sim::Wire w(s, "d", false);
    sim::Tracer tr;  // default: no cap
    tr.watch(w);
    for (int i = 1; i <= 100; ++i) {
        w.post_transport(SimTime::ps(i), i % 2 == 1);
    }
    s.run();
    EXPECT_EQ(tr.samples().size(), 100u);
    EXPECT_EQ(tr.dropped_samples(), 0u);
}

}  // namespace
}  // namespace gcdr::obs
