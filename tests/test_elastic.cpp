// Tests for the elastic buffer (Fig 4): FIFO ordering, skip-based
// recentering, and overflow/underflow accounting.

#include <gtest/gtest.h>

#include "cdr/elastic_buffer.hpp"

namespace gcdr::cdr {
namespace {

TEST(Elastic, StartsHalfFull) {
    ElasticBuffer eb(32);
    EXPECT_EQ(eb.occupancy(), 16u);
    EXPECT_EQ(eb.depth(), 32u);
}

TEST(Elastic, FifoOrderPreserved) {
    ElasticBuffer eb(32);
    // Drain the priming fill first.
    for (int i = 0; i < 16; ++i) (void)eb.read();
    const std::vector<bool> pattern{1, 0, 0, 1, 1, 1, 0, 1};
    for (bool b : pattern) eb.write(b);
    for (bool expected : pattern) {
        const auto got = eb.read();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, expected);
    }
}

TEST(Elastic, UnderflowCountedAndReported) {
    ElasticBuffer eb(8);
    for (int i = 0; i < 4; ++i) (void)eb.read();
    EXPECT_EQ(eb.underflows(), 0u);
    EXPECT_FALSE(eb.read().has_value());
    EXPECT_EQ(eb.underflows(), 1u);
}

TEST(Elastic, SkippableBitsAbsorbFastWriter) {
    // Writer 25% faster than reader: skippable bits must be dropped rather
    // than overflowing.
    ElasticBuffer eb(16);
    std::uint64_t wrote = 0;
    for (int cycle = 0; cycle < 400; ++cycle) {
        eb.write(cycle % 2 == 0, /*skippable=*/cycle % 4 == 0);
        ++wrote;
        if (cycle % 4 != 3) (void)eb.read();
    }
    EXPECT_EQ(eb.overflows(), 0u);
    EXPECT_GT(eb.skips_dropped(), 0u);
    EXPECT_LE(eb.occupancy(), eb.depth());
}

TEST(Elastic, SkipInsertionRefillsSlowWriter) {
    ElasticBuffer eb(16);
    // Reader much faster than writer; the skippable priming bits repeat.
    std::uint64_t reads_ok = 0;
    for (int cycle = 0; cycle < 64; ++cycle) {
        if (cycle % 8 == 0) eb.write(true, /*skippable=*/true);
        if (eb.read().has_value()) ++reads_ok;
    }
    EXPECT_GT(eb.skips_inserted(), 0u);
    EXPECT_GT(reads_ok, 32u);
}

TEST(Elastic, NonSkippablePayloadNeverDropped) {
    ElasticBuffer eb(64);
    for (int i = 0; i < 32; ++i) (void)eb.read();  // drain priming
    // Interleave payload with skippable filler; overfill on purpose.
    int payload_in = 0;
    for (int i = 0; i < 96; ++i) {
        const bool skippable = i % 2 == 0;
        eb.write(!skippable, skippable);
        if (!skippable) ++payload_in;
    }
    int payload_out = 0;
    while (eb.occupancy() > 0) {
        const auto b = eb.read();
        if (b.has_value() && *b) ++payload_out;
    }
    EXPECT_EQ(payload_out, payload_in);
}

TEST(Elastic, OverflowWithNoSkippableSlackIsCounted) {
    ElasticBuffer eb(8);
    for (int i = 0; i < 4; ++i) (void)eb.read();  // drain priming
    for (int i = 0; i < 16; ++i) eb.write(true, /*skippable=*/false);
    EXPECT_GT(eb.overflows(), 0u);
}

}  // namespace
}  // namespace gcdr::cdr
