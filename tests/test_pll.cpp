// Tests for the shared behavioral PLL (Fig 6): lock acquisition, the
// control-current operating point it distributes, and loop dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "cdr/pll.hpp"

namespace gcdr::cdr {
namespace {

PllConfig paper_pll() {
    PllConfig cfg;
    cfg.f_ref_hz = 156.25e6;
    cfg.divider = 16;  // HFCK = 2.5 GHz
    cfg.cco.fc_hz = 2.4e9;  // free-running 100 MHz off target
    cfg.cco.k_hz_per_a = 1.0e13;
    cfg.cco.ic0_a = 200e-6;
    return cfg;
}

TEST(Pll, LocksToDividerTimesReference) {
    BehavioralPll pll(paper_pll());
    ASSERT_TRUE(pll.run_to_lock());
    EXPECT_NEAR(pll.vco_frequency_hz(), 2.5e9, 2.5e9 * 1e-6);
    EXPECT_NEAR(pll.target_frequency_hz(), 2.5e9, 1.0);
}

TEST(Pll, ControlCurrentMatchesFrequencyArithmetic) {
    BehavioralPll pll(paper_pll());
    ASSERT_TRUE(pll.run_to_lock());
    // f = fc + k*(ic - ic0)  =>  ic = ic0 + (2.5G - 2.4G)/1e13 = 210 uA.
    EXPECT_NEAR(pll.control_current_a(), 210e-6, 0.5e-6);
}

TEST(Pll, LocksFromBothSidesOfTarget) {
    auto cfg = paper_pll();
    cfg.cco.fc_hz = 2.6e9;  // free-running above target
    BehavioralPll pll(cfg);
    ASSERT_TRUE(pll.run_to_lock());
    EXPECT_NEAR(pll.control_current_a(), 190e-6, 0.5e-6);
}

TEST(Pll, FrequencyErrorShrinksMonotonicallyOnAverage) {
    BehavioralPll pll(paper_pll());
    pll.run(2e-6);
    const double early = std::abs(pll.frequency_error_rel());
    pll.run(20e-6);
    const double late = std::abs(pll.frequency_error_rel());
    EXPECT_LT(late, early);
}

TEST(Pll, HistoryRecordsTheTransient) {
    BehavioralPll pll(paper_pll());
    pll.run(10e-6);
    const auto& h = pll.ic_history();
    ASSERT_GT(h.size(), 10u);
    // Starts near ic0 (first record is one stride into the transient),
    // ends near the lock point.
    EXPECT_NEAR(h.front(), 200e-6, 2e-5);
    EXPECT_NEAR(h.back(), 210e-6, 2e-6);
}

TEST(Pll, WiderBandwidthLocksFaster) {
    auto slow_cfg = paper_pll();
    slow_cfg.loop_bw_hz = 0.5e6;
    auto fast_cfg = paper_pll();
    fast_cfg.loop_bw_hz = 4e6;
    BehavioralPll slow(slow_cfg), fast(fast_cfg);
    slow.run(4e-6);
    fast.run(4e-6);
    EXPECT_LT(std::abs(fast.frequency_error_rel()),
              std::abs(slow.frequency_error_rel()));
}

TEST(Pll, MatchedChannelOscillatorReachesLineRate) {
    // The whole point of the Fig 6 architecture: a channel GCCO built from
    // the same params, fed the PLL's IC, free-runs at the line rate.
    const auto cfg = paper_pll();
    BehavioralPll pll(cfg);
    ASSERT_TRUE(pll.run_to_lock());
    const double channel_f =
        cfg.cco.frequency_at(pll.control_current_a());
    EXPECT_NEAR(channel_f, 2.5e9, 2.5e9 * 1e-5);
}

}  // namespace
}  // namespace gcdr::cdr
