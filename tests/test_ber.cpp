// Tests for ber/: error counting, confidence bounds and the Q-scale
// margin extrapolation used to bridge 25k-bit simulations to 1e-12 claims.

#include <gtest/gtest.h>

#include <cmath>

#include "ber/bert.hpp"
#include "util/rng.hpp"

namespace gcdr::ber {
namespace {

TEST(ErrorCounter, CountsAndRatio) {
    ErrorCounter c;
    for (int i = 0; i < 1000; ++i) c.record(i % 100 == 0);
    EXPECT_EQ(c.bits(), 1000u);
    EXPECT_EQ(c.errors(), 10u);
    EXPECT_DOUBLE_EQ(c.ber(), 0.01);
    c.reset();
    EXPECT_EQ(c.bits(), 0u);
    EXPECT_DOUBLE_EQ(c.ber(), 0.0);
}

TEST(ErrorCounter, RecordBitsBulk) {
    ErrorCounter c;
    c.record_bits(1000000, 3);
    EXPECT_DOUBLE_EQ(c.ber(), 3e-6);
}

TEST(ErrorCounter, RuleOfThreeForZeroErrors) {
    ErrorCounter c;
    c.record_bits(1000000, 0);
    // 95%: -ln(0.05)/N ~ 3/N.
    EXPECT_NEAR(c.ber_upper_bound(0.95), 3.0 / 1e6, 0.01 / 1e6);
}

TEST(ErrorCounter, UpperBoundAboveEstimateWithErrors) {
    ErrorCounter c;
    c.record_bits(100000, 10);
    const double ub = c.ber_upper_bound(0.95);
    EXPECT_GT(ub, c.ber());
    EXPECT_LT(ub, 10 * c.ber());
}

TEST(ErrorCounter, NoBitsGivesVacuousBound) {
    ErrorCounter c;
    EXPECT_DOUBLE_EQ(c.ber_upper_bound(), 1.0);
}

TEST(ErrorCounter, ExactClopperPearsonUpperBound) {
    // References computed with arbitrary-precision binomial tail sums.
    ErrorCounter a;
    a.record_bits(1000000, 3);
    EXPECT_NEAR(a.ber_upper_bound(0.95), 7.753638099e-6, 1e-13);
    ErrorCounter b;
    b.record_bits(100000, 10);
    EXPECT_NEAR(b.ber_upper_bound(0.95), 1.696162876e-4, 1e-12);
}

TEST(ErrorCounter, TwoSidedIntervalReferenceValues) {
    struct Case {
        std::uint64_t n, k;
        double lo, hi;
    };
    const Case cases[] = {
        {30, 0, 0.0, 0.1157033082},
        {10, 1, 0.002528578544, 0.445016117},
        {100, 5, 0.01643187918, 0.1128349111},
        {1000000, 3, 6.186725502e-7, 8.767247788e-6},
        {100000, 10, 4.795489514e-5, 1.838958454e-4},
        {1000, 50, 0.0373353976, 0.06539048792},
    };
    for (const Case& c : cases) {
        ErrorCounter counter;
        counter.record_bits(c.n, c.k);
        const auto iv = counter.ber_interval(0.95);
        EXPECT_NEAR(iv.lo, c.lo, 1e-8 * (c.lo > 0 ? c.lo : 1.0))
            << "n=" << c.n << " k=" << c.k;
        EXPECT_NEAR(iv.hi, c.hi, 1e-8 * c.hi)
            << "n=" << c.n << " k=" << c.k;
        // The counted point estimate lies inside, and the one-sided
        // bound is looser than the two-sided hi at the same confidence.
        EXPECT_LE(iv.lo, counter.ber());
        EXPECT_GE(iv.hi, counter.ber());
    }
}

TEST(ErrorCounter, IntervalDegenerateCases) {
    ErrorCounter none;
    const auto vac = none.ber_interval();
    EXPECT_DOUBLE_EQ(vac.lo, 0.0);
    EXPECT_DOUBLE_EQ(vac.hi, 1.0);
    ErrorCounter all;
    all.record_bits(20, 20);
    const auto iv = all.ber_interval(0.95);
    EXPECT_GT(iv.lo, 0.5);
    EXPECT_DOUBLE_EQ(iv.hi, 1.0);
}

TEST(BitsNeeded, MatchesRuleOfThree) {
    EXPECT_NEAR(bits_needed_for(1e-12, 0.95), 3.0e12, 0.01e12);
    // Tighter confidence costs more bits.
    EXPECT_GT(bits_needed_for(1e-12, 0.99), bits_needed_for(1e-12, 0.95));
}

TEST(Extrapolation, GaussianMarginsMatchQFunction) {
    // Margins ~ N(mu, sigma): expected extrapolated BER ~ Q(mu/sigma).
    Rng rng(41);
    std::vector<double> margins;
    const double mu = 0.35, sigma = 0.05;
    for (int i = 0; i < 200000; ++i) {
        margins.push_back(rng.gaussian(mu, sigma));
    }
    const double est = extrapolate_ber_from_margins(margins);
    const double expected = std::pow(10.0, log10_q_function(mu / sigma));
    EXPECT_GT(est, expected * 1e-3);
    EXPECT_LT(est, expected * 1e3);
}

TEST(Extrapolation, WiderMarginsGiveLowerBer) {
    Rng rng(43);
    std::vector<double> narrow, wide;
    for (int i = 0; i < 50000; ++i) {
        const double g = rng.gaussian();
        narrow.push_back(0.2 + 0.05 * g);
        wide.push_back(0.4 + 0.05 * g);
    }
    EXPECT_LT(extrapolate_ber_from_margins(wide),
              extrapolate_ber_from_margins(narrow));
}

TEST(Extrapolation, TooFewSamplesIsConservative) {
    EXPECT_DOUBLE_EQ(extrapolate_ber_from_margins({0.5, 0.4}), 1.0);
}

TEST(Extrapolation, NegativeMeanMarginsSaturate) {
    Rng rng(47);
    std::vector<double> margins;
    for (int i = 0; i < 10000; ++i) {
        margins.push_back(rng.gaussian(-0.1, 0.02));
    }
    EXPECT_GT(extrapolate_ber_from_margins(margins), 0.1);
}

}  // namespace
}  // namespace gcdr::ber
