// Tests for noise/: the Hajimiri / McNeill / Weigandt kappa models, their
// scaling laws, the oscillator sizing procedure and the power roll-up that
// backs the paper's 5 mW/Gbit/s claim.

#include <gtest/gtest.h>

#include <cmath>

#include "noise/phase_noise.hpp"
#include "util/mathx.hpp"

namespace gcdr::noise {
namespace {

RingOscParams paper_ring() {
    RingOscParams p;
    p.n_stages = 4;
    p.f_osc_hz = 2.5e9;
    p.i_ss_a = 200e-6;
    p.delta_v_v = 0.4;
    p.gamma = 1.5;
    p.eta = 1.0;
    return p;
}

TEST(RingOscParams, DerivedQuantities) {
    const auto p = paper_ring();
    EXPECT_NEAR(p.r_load_ohm(), 2000.0, 1e-9);
    EXPECT_NEAR(p.stage_delay_s(), 50e-12, 1e-15);  // 1/(2*4*2.5G)
    EXPECT_NEAR(p.c_load_f(), 50e-12 / (2000.0 * std::log(2.0)), 1e-18);
    EXPECT_NEAR(p.power_w(), 4 * 200e-6 * 1.8, 1e-12);
}

TEST(Kappa, HajimiriMatchesHandComputation) {
    const auto p = paper_ring();
    const double kt = kBoltzmann * 300.0;
    const double expected = std::sqrt(
        (8.0 * kt / 3.0) * (1.5 / 200e-6) *
        (1.0 / (2000.0 * 200e-6) + 1.0 / 0.4));
    EXPECT_NEAR(kappa_hajimiri(p) / expected, 1.0, 1e-12);
    // Order of magnitude: ~1e-8 sqrt(s) for these bias points.
    EXPECT_GT(kappa_hajimiri(p), 1e-9);
    EXPECT_LT(kappa_hajimiri(p), 1e-7);
}

TEST(Kappa, ScalesInverseSqrtOfCurrent) {
    auto p = paper_ring();
    const double k1 = kappa_hajimiri(p);
    p.i_ss_a *= 4.0;  // constant swing: R_L re-derived inside
    const double k2 = kappa_hajimiri(p);
    EXPECT_NEAR(k1 / k2, 2.0, 1e-9);
}

TEST(Kappa, AllThreeModelsAgreeWithinAFactorOfThree) {
    // Different derivations, same physics: the Fig 11 overlay only makes
    // sense if they cluster.
    const auto p = paper_ring();
    const double h = kappa_hajimiri(p);
    const double m = kappa_mcneill(p);
    const double w = kappa_weigandt(p);
    EXPECT_LT(std::max({h, m, w}) / std::min({h, m, w}), 3.0);
    // Hajimiri's is the published *minimum* kappa.
    EXPECT_LE(h, m * 1.001);
}

TEST(Kappa, JitterAccumulatesAsSqrtTime) {
    const double kappa = 1e-8;
    EXPECT_NEAR(jitter_rms_s(kappa, 4e-9) / jitter_rms_s(kappa, 1e-9), 2.0,
                1e-12);
}

TEST(Kappa, JitterUiAtCidMatchesDefinition) {
    const double kappa = 1e-8;
    const double ui = jitter_ui_at_cid(kappa, kPaperRate, 5);
    EXPECT_NEAR(ui, kappa * std::sqrt(5.0 * 400e-12) / 400e-12, 1e-12);
}

TEST(PhaseNoise, MinusTwentyDbPerDecade) {
    const double kappa = 1e-8;
    const double l1 = phase_noise_dbc_hz(kappa, 2.5e9, 1e6);
    const double l2 = phase_noise_dbc_hz(kappa, 2.5e9, 1e7);
    EXPECT_NEAR(l1 - l2, 20.0, 1e-9);
}

TEST(Sizing, MeetsTheJitterBudget) {
    const auto sized = size_for_jitter(paper_ring(), 0.01, 5, kPaperRate);
    const double achieved =
        jitter_ui_at_cid(kappa_hajimiri(sized), kPaperRate, 5);
    EXPECT_LE(achieved, 0.01 * 1.0001);
    EXPECT_GE(achieved, 0.01 * 0.9);  // minimal current, not overdesign
    EXPECT_GT(sized.i_ss_a, 0.0);
}

TEST(Sizing, TighterBudgetCostsMoreCurrent) {
    const auto loose = size_for_jitter(paper_ring(), 0.02, 5, kPaperRate);
    const auto tight = size_for_jitter(paper_ring(), 0.005, 5, kPaperRate);
    EXPECT_GT(tight.i_ss_a, loose.i_ss_a);
    // kappa ~ 1/sqrt(I): 4x tighter jitter needs 16x current.
    EXPECT_NEAR(tight.i_ss_a / loose.i_ss_a, 16.0, 1.0);
}

TEST(Sizing, LongerCidNeedsMoreCurrent) {
    const auto cid5 = size_for_jitter(paper_ring(), 0.01, 5, kPaperRate);
    const auto cid7 = size_for_jitter(paper_ring(), 0.01, 7, kPaperRate);
    EXPECT_GT(cid7.i_ss_a, cid5.i_ss_a);
}

TEST(PowerBudget, RollUpAndFigureOfMerit) {
    auto sized = paper_ring();
    sized.i_ss_a = 150e-6;
    const auto b = channel_power_budget(sized, /*delay_cells=*/4,
                                        /*logic_cells=*/3,
                                        /*pll_power_w=*/8e-3,
                                        /*n_channels=*/4);
    const double cell = 150e-6 * 1.8;
    EXPECT_NEAR(b.oscillator_w, 4 * cell, 1e-12);
    EXPECT_NEAR(b.delay_line_w, 4 * cell, 1e-12);
    EXPECT_NEAR(b.logic_w, 3 * cell, 1e-12);
    EXPECT_NEAR(b.sampler_w, cell, 1e-12);
    EXPECT_NEAR(b.pll_share_w, 2e-3, 1e-12);
    EXPECT_NEAR(b.total_w(), 12 * cell + 2e-3, 1e-12);
    // mW per Gbit/s at 2.5 Gb/s.
    EXPECT_NEAR(b.mw_per_gbps(kPaperRate), b.total_w() * 1e3 / 2.5, 1e-9);
}

TEST(Sizing, ParasiticFloorScalesWithLoadAndSpeed) {
    auto p = paper_ring();
    const double i30 = min_bias_for_parasitics(p, 30e-15);
    const double i60 = min_bias_for_parasitics(p, 60e-15);
    EXPECT_NEAR(i60 / i30, 2.0, 1e-9);
    // I = c * dV * ln2 / t_d with t_d = 50 ps, dV = 0.4 V, c = 30 fF.
    EXPECT_NEAR(i30, 30e-15 * 0.4 * std::log(2.0) / 50e-12, 1e-9);
    // Faster ring -> shorter stage delay -> more current.
    p.f_osc_hz *= 2.0;
    EXPECT_NEAR(min_bias_for_parasitics(p, 30e-15) / i30, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(min_bias_for_parasitics(p, 0.0), 0.0);
}

TEST(PowerBudget, PaperClaimHolds) {
    // Size the ring for the paper's jitter budget, roll up a full channel,
    // and check the headline claim: < 5 mW/Gbit/s.
    const auto sized = size_for_jitter(paper_ring(), 0.01, 5, kPaperRate);
    const auto b = channel_power_budget(sized, 4, 3, 8e-3, 4);
    EXPECT_LT(b.mw_per_gbps(kPaperRate), 5.0);
}

}  // namespace
}  // namespace gcdr::noise
