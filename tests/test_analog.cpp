// Tests for analog/: the SPICE-lite MNA solver (linear solve, DC operating
// points, RC transients, MOS characteristics) and the CML cell library up
// to the transistor-level ring oscillator.

#include <gtest/gtest.h>

#include <cmath>

#include "analog/circuit.hpp"
#include "analog/cml_cells.hpp"
#include "analog/transient.hpp"

namespace gcdr::analog {
namespace {

TEST(Dense, SolvesKnownSystem) {
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
    std::vector<double> a{2, 1, 1, 3};
    std::vector<double> b{5, 10};
    ASSERT_TRUE(solve_dense(a, b, 2));
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Dense, PivotsOnZeroDiagonal) {
    std::vector<double> a{0, 1, 1, 0};
    std::vector<double> b{2, 3};
    ASSERT_TRUE(solve_dense(a, b, 2));
    EXPECT_NEAR(b[0], 3.0, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Dense, DetectsSingular) {
    std::vector<double> a{1, 1, 1, 1};
    std::vector<double> b{1, 2};
    EXPECT_FALSE(solve_dense(a, b, 2));
}

TEST(Dc, ResistorDivider) {
    Circuit ckt;
    const auto vin = ckt.node("vin");
    const auto mid = ckt.node("mid");
    ckt.add_voltage_source(vin, kGround, 1.8);
    ckt.add_resistor(vin, mid, 1000.0);
    ckt.add_resistor(mid, kGround, 3000.0);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_NEAR(sim.v(mid), 1.35, 1e-5);
    EXPECT_NEAR(sim.v(vin), 1.8, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
    Circuit ckt;
    const auto n = ckt.node("n");
    ckt.add_current_source(kGround, n, 1e-3);  // 1 mA into n
    ckt.add_resistor(n, kGround, 2000.0);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_NEAR(sim.v(n), 2.0, 1e-4);
}

TEST(Transient, RcStepResponseTimeConstant) {
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    // Step at t=0 through R into C.
    ckt.add_voltage_source(in, kGround,
                           [](double t) { return t > 0.0 ? 1.0 : 0.0; });
    ckt.add_resistor(in, out, 1000.0);
    ckt.add_capacitor(out, kGround, 1e-12);  // tau = 1 ns
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    ASSERT_TRUE(sim.run_until(1e-9, 1e-12));
    // v(tau) = 1 - 1/e ~ 0.632 (backward Euler: slight overdamping).
    EXPECT_NEAR(sim.v(out), 0.632, 0.01);
    ASSERT_TRUE(sim.run_until(10e-9, 1e-12));
    EXPECT_NEAR(sim.v(out), 1.0, 1e-3);
}

TEST(Mosfet, SquareLawSaturationCurrent) {
    // NMOS with vgs = 1.0, vth = 0.45, k = 2e-3, lambda = 0 -> in
    // saturation Id = k/2 * vov^2 = 1e-3 * 0.3025 = 302.5 uA.
    Circuit ckt;
    const auto d = ckt.node("d");
    const auto g = ckt.node("g");
    ckt.add_voltage_source(g, kGround, 1.0);
    ckt.add_voltage_source(d, kGround, 1.8);
    MosParams p;
    p.vth = 0.45;
    p.k = 2e-3;
    p.lambda = 0.0;
    ckt.add_mosfet(d, g, kGround, p);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_NEAR(sim.mosfet_id(0), 1e-3 * 0.55 * 0.55 / 2.0 * 2.0, 5e-6);
}

TEST(Mosfet, CutoffBelowThreshold) {
    Circuit ckt;
    const auto d = ckt.node("d");
    ckt.add_voltage_source(d, kGround, 1.8);
    MosParams p;
    ckt.add_mosfet(d, kGround, kGround, p);  // vgs = 0
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_LT(std::abs(sim.mosfet_id(0)), 1e-8);
}

TEST(Mosfet, SourceFollowerSettles) {
    // NMOS source follower: vout ~ vg - vth - vov.
    Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto g = ckt.node("g");
    const auto s = ckt.node("s");
    ckt.add_voltage_source(vdd, kGround, 1.8);
    ckt.add_voltage_source(g, kGround, 1.2);
    ckt.add_mosfet(vdd, g, s, MosParams::nmos_018(10.0));
    ckt.add_resistor(s, kGround, 10e3);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_GT(sim.v(s), 0.4);
    EXPECT_LT(sim.v(s), 1.2 - 0.45 + 0.05);
}

TEST(CmlBuffer, DcLevelsSwitchFully) {
    Circuit ckt;
    CmlNetlist nl(ckt, CmlCellParams{});
    auto in = nl.net("in");
    auto out = nl.net("out");
    // Drive in.p high, in.n low (CML levels).
    ckt.add_voltage_source(in.p, kGround, 1.8);
    ckt.add_voltage_source(in.n, kGround, 1.4);
    nl.buffer(in, out);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    // The in.n side transistor is off: out.p stays at vdd; out.n drops by
    // the full swing.
    EXPECT_NEAR(sim.v(out.p), 1.8, 0.02);
    EXPECT_NEAR(sim.v(out.n), 1.8 - nl.params().swing_v(), 0.05);
    EXPECT_GT(diff_v(sim, out), 0.3);
}

TEST(CmlBuffer, TransientDelayNearFirstOrderEstimate) {
    Circuit ckt;
    CmlCellParams p;
    CmlNetlist nl(ckt, p);
    auto in = nl.net("in");
    auto out = nl.net("out");
    nl.drive_nrz(in, {false, true, false}, 400e-12, 30e-12);
    nl.buffer(in, out);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    // Find the output differential zero crossing after the input edge at
    // 400 ps (input crosses zero at ~415 ps with the 30 ps ramp).
    double crossing = -1.0;
    double prev = diff_v(sim, out);
    ASSERT_TRUE(sim.run_until(900e-12, 1e-12, [&](const TransientSim& s) {
        const double d = diff_v(s, out);
        if (crossing < 0.0 && prev < 0.0 && d >= 0.0 &&
            s.time_s() > 400e-12) {
            crossing = s.time_s();
        }
        prev = d;
    }));
    ASSERT_GT(crossing, 0.0);
    const double delay = crossing - 415e-12;
    // First-order estimate 0.69*RC = 50 ps; allow generous margin for the
    // large-signal behaviour.
    EXPECT_GT(delay, 15e-12);
    EXPECT_LT(delay, 120e-12);
}

TEST(CmlAnd2, TruthTable) {
    struct Case {
        bool a, b;
    };
    for (const auto c : {Case{false, false}, Case{false, true},
                         Case{true, false}, Case{true, true}}) {
        Circuit ckt;
        CmlNetlist nl(ckt, CmlCellParams{});
        auto a = nl.net("a");
        auto b = nl.net("b");
        auto out = nl.net("out");
        const double hi = 1.8, lo = 1.4;
        ckt.add_voltage_source(a.p, kGround, c.a ? hi : lo);
        ckt.add_voltage_source(a.n, kGround, c.a ? lo : hi);
        ckt.add_voltage_source(b.p, kGround, c.b ? hi : lo);
        ckt.add_voltage_source(b.n, kGround, c.b ? lo : hi);
        nl.and2(a, b, out);
        TransientSim sim(ckt);
        ASSERT_TRUE(sim.solve_dc()) << c.a << c.b;
        const double d = diff_v(sim, out);
        if (c.a && c.b) {
            EXPECT_GT(d, 0.2) << c.a << c.b;
        } else {
            EXPECT_LT(d, -0.2) << c.a << c.b;
        }
    }
}

TEST(CmlXor2, TruthTable) {
    struct Case {
        bool a, b;
    };
    for (const auto c : {Case{false, false}, Case{false, true},
                         Case{true, false}, Case{true, true}}) {
        Circuit ckt;
        CmlNetlist nl(ckt, CmlCellParams{});
        auto a = nl.net("a");
        auto b = nl.net("b");
        auto out = nl.net("out");
        const double hi = 1.8, lo = 1.4;
        ckt.add_voltage_source(a.p, kGround, c.a ? hi : lo);
        ckt.add_voltage_source(a.n, kGround, c.a ? lo : hi);
        ckt.add_voltage_source(b.p, kGround, c.b ? hi : lo);
        ckt.add_voltage_source(b.n, kGround, c.b ? lo : hi);
        nl.xor2(a, b, out);
        TransientSim sim(ckt);
        ASSERT_TRUE(sim.solve_dc()) << c.a << c.b;
        const double d = diff_v(sim, out);
        if (c.a != c.b) {
            EXPECT_GT(d, 0.2) << c.a << c.b;
        } else {
            EXPECT_LT(d, -0.2) << c.a << c.b;
        }
    }
}

TEST(CmlDelayLine, PropagatesDifferentialEdge) {
    Circuit ckt;
    CmlNetlist nl(ckt, CmlCellParams{});
    auto in = nl.net("in");
    nl.drive_nrz(in, {false, true}, 400e-12, 30e-12);
    auto out = nl.delay_line(in, 3, "dl");
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    EXPECT_LT(diff_v(sim, out), -0.3);
    ASSERT_TRUE(sim.run_until(1.2e-9, 1e-12));
    EXPECT_GT(diff_v(sim, out), 0.3);
}

TEST(CmlRing, OscillatesNearFirstOrderFrequency) {
    Circuit ckt;
    CmlCellParams p;
    CmlNetlist nl(ckt, p);
    // Tie the gating input high (free run).
    auto trig = nl.net("trig");
    ckt.add_voltage_source(trig.p, kGround, 1.8);
    ckt.add_voltage_source(trig.n, kGround, 1.4);
    const auto ring = build_cml_ring(nl, trig);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    // Count output zero crossings over 20 ns after a 4 ns settle.
    std::vector<double> rises;
    double prev = diff_v(sim, ring.ckout);
    ASSERT_TRUE(sim.run_until(24e-9, 2e-12, [&](const TransientSim& s) {
        const double d = diff_v(s, ring.ckout);
        if (prev < 0.0 && d >= 0.0 && s.time_s() > 4e-9) {
            rises.push_back(s.time_s());
        }
        prev = d;
    }));
    ASSERT_GT(rises.size(), 5u) << "ring did not oscillate";
    const double period =
        (rises.back() - rises.front()) / static_cast<double>(rises.size() - 1);
    // First-order: T = 8 * 0.69 * R * C = 400 ps for the defaults. The
    // square-law large-signal delay lands in the same decade.
    EXPECT_GT(period, 150e-12);
    EXPECT_LT(period, 1200e-12);
}

TEST(CmlRing, GatingFreezesOscillation) {
    Circuit ckt;
    CmlCellParams p;
    CmlNetlist nl(ckt, p);
    auto trig = nl.net("trig");
    // Gate low from 10 ns on.
    ckt.add_voltage_source(trig.p, kGround, [](double t) {
        return t < 10e-9 ? 1.8 : 1.4;
    });
    ckt.add_voltage_source(trig.n, kGround, [](double t) {
        return t < 10e-9 ? 1.4 : 1.8;
    });
    const auto ring = build_cml_ring(nl, trig);
    TransientSim sim(ckt);
    ASSERT_TRUE(sim.solve_dc());
    int crossings_while_gated = 0;
    double prev = diff_v(sim, ring.ckout);
    ASSERT_TRUE(sim.run_until(20e-9, 2e-12, [&](const TransientSim& s) {
        const double d = diff_v(s, ring.ckout);
        if (s.time_s() > 12e-9 && ((prev < 0.0) != (d < 0.0))) {
            ++crossings_while_gated;
        }
        prev = d;
    }));
    EXPECT_EQ(crossings_while_gated, 0);
}

}  // namespace
}  // namespace gcdr::analog
