// Unit tests for the discrete-event kernel: scheduler ordering, VHDL
// transport-delay semantics on Wire, and the waveform tracer.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"
#include "util/rng.hpp"

namespace gcdr::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(SimTime::ps(30), [&] { order.push_back(3); });
    s.schedule_at(SimTime::ps(10), [&] { order.push_back(1); });
    s.schedule_at(SimTime::ps(20), [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), SimTime::ps(30));
}

TEST(Scheduler, EqualTimesRunFifo) {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        s.schedule_at(SimTime::ps(5), [&order, i] { order.push_back(i); });
    }
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, CallbacksCanScheduleMore) {
    Scheduler s;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) s.schedule_in(SimTime::ps(10), chain);
    };
    s.schedule_at(SimTime::ps(0), chain);
    s.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(s.now(), SimTime::ps(40));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
    Scheduler s;
    int fired = 0;
    s.schedule_at(SimTime::ps(10), [&] { ++fired; });
    s.schedule_at(SimTime::ps(50), [&] { ++fired; });
    s.run_until(SimTime::ps(20));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.now(), SimTime::ps(20));
    EXPECT_EQ(s.pending_events(), 1u);
    s.run_until(SimTime::ps(100));
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, SchedulingIntoThePastThrowsInAllBuilds) {
    // Regression: this used to be assert-only, so a Release build would
    // silently enqueue the event and execute it out of order.
    Scheduler s;
    s.schedule_at(SimTime::ps(100), [] {});
    s.run();
    ASSERT_EQ(s.now(), SimTime::ps(100));
    EXPECT_THROW(s.schedule_at(SimTime::ps(99), [] {}), std::logic_error);
    // now() and the queue are untouched by the rejected event.
    EXPECT_EQ(s.now(), SimTime::ps(100));
    EXPECT_TRUE(s.empty());
    // Scheduling at exactly now() stays legal.
    bool ran = false;
    s.schedule_at(SimTime::ps(100), [&] { ran = true; });
    s.run();
    EXPECT_TRUE(ran);
}

TEST(Scheduler, FifoTieBreakAcrossWheelAndOverflow) {
    // Regression for the calendar-queue kernel: (time, insertion-seq) order
    // must hold across every storage tier — near-term wheel slots, the
    // far-future overflow heap (times several wheel horizons out), and
    // same-time ties straddling both. The wheel horizon is ~1 ns, so the
    // +1 us events exercise heap-to-wheel migration.
    Scheduler s;
    std::vector<int> order;
    auto tag = [&order](int id) { return [&order, id] { order.push_back(id); }; };
    s.schedule_at(SimTime::us(1), tag(6));       // overflow
    s.schedule_at(SimTime::ps(5), tag(0));       // wheel
    s.schedule_at(SimTime::us(1), tag(7));       // overflow, same time: FIFO
    s.schedule_at(SimTime::ps(5), tag(1));       // wheel, same time: FIFO
    s.schedule_at(SimTime::ps(5) + SimTime::fs(1), tag(2));  // same slot, later
    s.schedule_at(SimTime::ns(500), tag(5));     // overflow, earlier than us(1)
    s.schedule_at(SimTime::ns(2), tag(3));       // beyond horizon of slot 0
    s.schedule_at(SimTime::ns(2), tag(4));       // tie with previous: FIFO
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Scheduler, LateInWindowPushDoesNotShadowEarlierPending) {
    // Regression: after a pop empties its wheel slot, the queue's
    // minimum-slot hint is unknown. A subsequent push near the far edge of
    // the wheel window must not re-establish the hint at its own slot and
    // shadow earlier events still pending in between.
    Scheduler s;
    std::vector<int> order;
    auto tag = [&order](int id) { return [&order, id] { order.push_back(id); }; };
    s.schedule_at(SimTime::fs(36915), tag(0));    // popped first
    s.schedule_at(SimTime::fs(38335), tag(1));    // survives in a later slot
    s.schedule_at(SimTime::fs(41421), tag(2));
    s.schedule_at(SimTime::fs(36915), [&s, tag] {
        // From inside event 0: slot ~1002 is inside the wheel window but
        // far past the surviving slot-37 events.
        s.schedule_at(SimTime::fs(1026087), tag(3));
    });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, OrderMatchesReferenceSortUnderRandomLoad) {
    // Randomized cross-check against a stable sort by (time, insertion
    // order), with a coarse time quantum to force many exact ties and a
    // spread wide enough to keep both wheel and overflow populated.
    Scheduler s;
    Rng rng(1234);
    std::vector<std::pair<std::int64_t, int>> expected;  // (time_fs, id)
    std::vector<int> order;
    for (int id = 0; id < 2000; ++id) {
        const auto t_fs = static_cast<std::int64_t>(
            rng.uniform(0.0, 3e6));               // 0..3 ns
        const std::int64_t quantized = (t_fs / 7000) * 7000;
        expected.emplace_back(quantized, id);
        s.schedule_at(SimTime::fs(quantized), [&order, id] { order.push_back(id); });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    s.run();
    ASSERT_EQ(order.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(order[i], expected[i].second) << "position " << i;
    }
}

TEST(Scheduler, EventsScheduledAtNowRunBeforeLaterTimes) {
    // A callback scheduling at exactly now() (the ring oscillator's startup
    // kick does this) must run before any strictly later pending event,
    // even one in the same wheel slot.
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(SimTime::ps(10), [&] {
        order.push_back(1);
        s.schedule_at(s.now(), [&order] { order.push_back(2); });
        s.schedule_in(SimTime::fs(1), [&order] { order.push_back(3); });
    });
    s.schedule_at(SimTime::ps(10) + SimTime::fs(2), [&] { order.push_back(4); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Scheduler, OversizedCapturesTakeTheHeapFallback) {
    // Captures beyond the inline callback buffer must still work (heap
    // path of InlineCallback) and run exactly once.
    Scheduler s;
    std::array<char, 128> blob{};
    blob[0] = 42;
    int hits = 0;
    s.schedule_at(SimTime::ps(1), [blob, &hits] { hits += blob[0]; });
    s.run();
    EXPECT_EQ(hits, 42);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
    Scheduler s;
    EXPECT_FALSE(s.step());
    s.schedule_at(SimTime::ps(1), [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
    EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Wire, TransportDelayDeliversValue) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(100), true);
    EXPECT_FALSE(w.value());
    s.run();
    EXPECT_TRUE(w.value());
    EXPECT_EQ(w.last_change(), SimTime::ps(100));
    EXPECT_EQ(w.transition_count(), 1u);
}

TEST(Wire, TransportPassesNarrowPulses) {
    // Transport (unlike inertial) delay must propagate pulses narrower than
    // the delay itself — the EDET pulse relies on this.
    Scheduler s;
    Wire w(s, "w");
    s.schedule_at(SimTime::ps(0), [&] { w.post_transport(SimTime::ps(500), true); });
    s.schedule_at(SimTime::ps(1), [&] { w.post_transport(SimTime::ps(500), false); });
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], std::make_pair(SimTime::ps(500), true));
    EXPECT_EQ(seen[1], std::make_pair(SimTime::ps(501), false));
}

TEST(Wire, LaterPostCancelsPendingAtOrAfter) {
    // VHDL transport rule: a new transaction deletes pending transactions
    // scheduled at or after its own time.
    Scheduler s;
    Wire w(s, "w");
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.schedule_at(SimTime::ps(0), [&] {
        w.post_transport(SimTime::ps(100), true);   // t=100
        w.post_transport(SimTime::ps(50), false);   // t=50 cancels t=100
    });
    s.run();
    // The final value is false; the cancelled 'true' never fired (initial
    // value is already false, so no change events at all).
    EXPECT_TRUE(seen.empty());
    EXPECT_FALSE(w.value());
}

TEST(Wire, CancellationKeepsEarlierTransactions) {
    Scheduler s;
    Wire w(s, "w");
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.schedule_at(SimTime::ps(0), [&] {
        w.post_transport(SimTime::ps(10), true);
        w.post_transport(SimTime::ps(30), false);
        w.post_transport(SimTime::ps(20), true);  // cancels only the t=30
    });
    s.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].first, SimTime::ps(10));
    EXPECT_TRUE(w.value());
}

TEST(Wire, SetNowClearsPending) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(100), true);
    w.set_now(true);
    EXPECT_TRUE(w.value());
    w.set_now(false);
    s.run();
    EXPECT_FALSE(w.value());  // the pending 'true' was cancelled
}

TEST(Wire, RedundantValuePostsAreCollapsed) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(10), false);  // same as current: no-op
    EXPECT_TRUE(s.empty());
    w.post_transport(SimTime::ps(10), true);
    w.post_transport(SimTime::ps(20), true);  // same as pending tail: no-op
    EXPECT_EQ(s.pending_events(), 1u);
    s.run();
    EXPECT_EQ(w.transition_count(), 1u);
}

TEST(Wire, ListenersSeeCommittedValueAtCommitTime) {
    Scheduler s;
    Wire a(s, "a");
    Wire b(s, "b");
    // b follows a with 10 ps transport delay, like a 1-gate netlist.
    a.on_change([&] { b.post_transport(SimTime::ps(10), a.value()); });
    s.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    s.run();
    EXPECT_TRUE(b.value());
    EXPECT_EQ(b.last_change(), SimTime::ps(110));
}

TEST(Tracer, RecordsTransitionsAndEdges) {
    Scheduler s;
    Wire w(s, "clk");
    Tracer tr;
    tr.watch(w);
    for (int i = 1; i <= 6; ++i) {
        s.schedule_at(SimTime::ps(i * 100),
                      [&w, i] { w.set_now(i % 2 == 1); });
    }
    s.run();
    EXPECT_EQ(tr.samples().size(), 6u);
    const auto rising = tr.edges_of("clk", /*rising_only=*/true);
    ASSERT_EQ(rising.size(), 3u);
    EXPECT_EQ(rising[0], SimTime::ps(100));
    EXPECT_EQ(rising[2], SimTime::ps(500));
    const auto all = tr.edges_of("clk");
    EXPECT_EQ(all.size(), 6u);
}

TEST(Tracer, AsciiDiagramShowsLevels) {
    Scheduler s;
    Wire w(s, "data");
    Tracer tr;
    tr.watch(w);
    s.schedule_at(SimTime::ps(500), [&] { w.set_now(true); });
    s.run();
    const auto art = tr.ascii_diagram(SimTime::ps(0), SimTime::ps(1000), 10);
    // Low for the first half, high for the second.
    EXPECT_NE(art.find("data"), std::string::npos);
    EXPECT_NE(art.find('_'), std::string::npos);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Tracer, CsvHasHeaderAndRows) {
    Scheduler s;
    Wire w(s, "x");
    Tracer tr;
    tr.watch(w);
    s.schedule_at(SimTime::ps(250), [&] { w.set_now(true); });
    s.run();
    const auto csv = tr.to_csv();
    EXPECT_NE(csv.find("time_ps,wire,value"), std::string::npos);
    EXPECT_NE(csv.find("250,x,1"), std::string::npos);
}

}  // namespace
}  // namespace gcdr::sim
