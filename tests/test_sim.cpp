// Unit tests for the discrete-event kernel: scheduler ordering, VHDL
// transport-delay semantics on Wire, and the waveform tracer.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace gcdr::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(SimTime::ps(30), [&] { order.push_back(3); });
    s.schedule_at(SimTime::ps(10), [&] { order.push_back(1); });
    s.schedule_at(SimTime::ps(20), [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), SimTime::ps(30));
}

TEST(Scheduler, EqualTimesRunFifo) {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        s.schedule_at(SimTime::ps(5), [&order, i] { order.push_back(i); });
    }
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, CallbacksCanScheduleMore) {
    Scheduler s;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) s.schedule_in(SimTime::ps(10), chain);
    };
    s.schedule_at(SimTime::ps(0), chain);
    s.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(s.now(), SimTime::ps(40));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
    Scheduler s;
    int fired = 0;
    s.schedule_at(SimTime::ps(10), [&] { ++fired; });
    s.schedule_at(SimTime::ps(50), [&] { ++fired; });
    s.run_until(SimTime::ps(20));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.now(), SimTime::ps(20));
    EXPECT_EQ(s.pending_events(), 1u);
    s.run_until(SimTime::ps(100));
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, SchedulingIntoThePastThrowsInAllBuilds) {
    // Regression: this used to be assert-only, so a Release build would
    // silently enqueue the event and execute it out of order.
    Scheduler s;
    s.schedule_at(SimTime::ps(100), [] {});
    s.run();
    ASSERT_EQ(s.now(), SimTime::ps(100));
    EXPECT_THROW(s.schedule_at(SimTime::ps(99), [] {}), std::logic_error);
    // now() and the queue are untouched by the rejected event.
    EXPECT_EQ(s.now(), SimTime::ps(100));
    EXPECT_TRUE(s.empty());
    // Scheduling at exactly now() stays legal.
    bool ran = false;
    s.schedule_at(SimTime::ps(100), [&] { ran = true; });
    s.run();
    EXPECT_TRUE(ran);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
    Scheduler s;
    EXPECT_FALSE(s.step());
    s.schedule_at(SimTime::ps(1), [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
    EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Wire, TransportDelayDeliversValue) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(100), true);
    EXPECT_FALSE(w.value());
    s.run();
    EXPECT_TRUE(w.value());
    EXPECT_EQ(w.last_change(), SimTime::ps(100));
    EXPECT_EQ(w.transition_count(), 1u);
}

TEST(Wire, TransportPassesNarrowPulses) {
    // Transport (unlike inertial) delay must propagate pulses narrower than
    // the delay itself — the EDET pulse relies on this.
    Scheduler s;
    Wire w(s, "w");
    s.schedule_at(SimTime::ps(0), [&] { w.post_transport(SimTime::ps(500), true); });
    s.schedule_at(SimTime::ps(1), [&] { w.post_transport(SimTime::ps(500), false); });
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], std::make_pair(SimTime::ps(500), true));
    EXPECT_EQ(seen[1], std::make_pair(SimTime::ps(501), false));
}

TEST(Wire, LaterPostCancelsPendingAtOrAfter) {
    // VHDL transport rule: a new transaction deletes pending transactions
    // scheduled at or after its own time.
    Scheduler s;
    Wire w(s, "w");
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.schedule_at(SimTime::ps(0), [&] {
        w.post_transport(SimTime::ps(100), true);   // t=100
        w.post_transport(SimTime::ps(50), false);   // t=50 cancels t=100
    });
    s.run();
    // The final value is false; the cancelled 'true' never fired (initial
    // value is already false, so no change events at all).
    EXPECT_TRUE(seen.empty());
    EXPECT_FALSE(w.value());
}

TEST(Wire, CancellationKeepsEarlierTransactions) {
    Scheduler s;
    Wire w(s, "w");
    std::vector<std::pair<SimTime, bool>> seen;
    w.on_change([&] { seen.emplace_back(s.now(), w.value()); });
    s.schedule_at(SimTime::ps(0), [&] {
        w.post_transport(SimTime::ps(10), true);
        w.post_transport(SimTime::ps(30), false);
        w.post_transport(SimTime::ps(20), true);  // cancels only the t=30
    });
    s.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].first, SimTime::ps(10));
    EXPECT_TRUE(w.value());
}

TEST(Wire, SetNowClearsPending) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(100), true);
    w.set_now(true);
    EXPECT_TRUE(w.value());
    w.set_now(false);
    s.run();
    EXPECT_FALSE(w.value());  // the pending 'true' was cancelled
}

TEST(Wire, RedundantValuePostsAreCollapsed) {
    Scheduler s;
    Wire w(s, "w");
    w.post_transport(SimTime::ps(10), false);  // same as current: no-op
    EXPECT_TRUE(s.empty());
    w.post_transport(SimTime::ps(10), true);
    w.post_transport(SimTime::ps(20), true);  // same as pending tail: no-op
    EXPECT_EQ(s.pending_events(), 1u);
    s.run();
    EXPECT_EQ(w.transition_count(), 1u);
}

TEST(Wire, ListenersSeeCommittedValueAtCommitTime) {
    Scheduler s;
    Wire a(s, "a");
    Wire b(s, "b");
    // b follows a with 10 ps transport delay, like a 1-gate netlist.
    a.on_change([&] { b.post_transport(SimTime::ps(10), a.value()); });
    s.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    s.run();
    EXPECT_TRUE(b.value());
    EXPECT_EQ(b.last_change(), SimTime::ps(110));
}

TEST(Tracer, RecordsTransitionsAndEdges) {
    Scheduler s;
    Wire w(s, "clk");
    Tracer tr;
    tr.watch(w);
    for (int i = 1; i <= 6; ++i) {
        s.schedule_at(SimTime::ps(i * 100),
                      [&w, i] { w.set_now(i % 2 == 1); });
    }
    s.run();
    EXPECT_EQ(tr.samples().size(), 6u);
    const auto rising = tr.edges_of("clk", /*rising_only=*/true);
    ASSERT_EQ(rising.size(), 3u);
    EXPECT_EQ(rising[0], SimTime::ps(100));
    EXPECT_EQ(rising[2], SimTime::ps(500));
    const auto all = tr.edges_of("clk");
    EXPECT_EQ(all.size(), 6u);
}

TEST(Tracer, AsciiDiagramShowsLevels) {
    Scheduler s;
    Wire w(s, "data");
    Tracer tr;
    tr.watch(w);
    s.schedule_at(SimTime::ps(500), [&] { w.set_now(true); });
    s.run();
    const auto art = tr.ascii_diagram(SimTime::ps(0), SimTime::ps(1000), 10);
    // Low for the first half, high for the second.
    EXPECT_NE(art.find("data"), std::string::npos);
    EXPECT_NE(art.find('_'), std::string::npos);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Tracer, CsvHasHeaderAndRows) {
    Scheduler s;
    Wire w(s, "x");
    Tracer tr;
    tr.watch(w);
    s.schedule_at(SimTime::ps(250), [&] { w.set_now(true); });
    s.run();
    const auto csv = tr.to_csv();
    EXPECT_NE(csv.find("time_ps,wire,value"), std::string::npos);
    EXPECT_NE(csv.find("250,x,1"), std::string::npos);
}

}  // namespace
}  // namespace gcdr::sim
