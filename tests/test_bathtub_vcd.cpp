// Tests for the bathtub-curve analysis (statmodel/bathtub) and the VCD
// waveform writer (sim/vcd).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/vcd.hpp"
#include "statmodel/bathtub.hpp"

namespace gcdr {
namespace {

statmodel::ModelConfig quick_cfg() {
    statmodel::ModelConfig cfg;
    cfg.grid_dx = 2e-3;
    return cfg;
}

TEST(Bathtub, IsBathtubShaped) {
    // High BER at both cell edges, low in the middle.
    const auto curve = statmodel::bathtub_curve(quick_cfg(), 25);
    ASSERT_EQ(curve.size(), 25u);
    const double left = curve.front().ber;
    const double right = curve.back().ber;
    const double middle = curve[curve.size() / 2].ber;
    EXPECT_GT(left, middle * 1e3);
    EXPECT_GT(right, middle * 1e3);
}

TEST(Bathtub, OptimumNearMidBitWithoutOffset) {
    const auto best = statmodel::optimal_sampling_phase(quick_cfg(), 49);
    EXPECT_GT(best.phase_ui, 0.3);
    EXPECT_LT(best.phase_ui, 0.7);
}

TEST(Bathtub, OffsetSkewsOptimumEarly) {
    // A slow oscillator drifts samples late, so the best static phase
    // moves earlier — the rationale for the paper's Fig 15 T/8 advance.
    auto cfg = quick_cfg();
    cfg.freq_offset = 0.02;
    const auto best_offset = statmodel::optimal_sampling_phase(cfg, 49);
    const auto best_clean = statmodel::optimal_sampling_phase(quick_cfg(), 49);
    EXPECT_LT(best_offset.phase_ui, best_clean.phase_ui);
}

TEST(Bathtub, OpeningShrinksWithJitter) {
    auto clean = quick_cfg();
    const double open_clean = statmodel::bathtub_opening_ui(clean, 1e-12);
    auto noisy = quick_cfg();
    noisy.spec.sj_uipp = 0.3;
    noisy.sj_freq_norm = 0.1;
    const double open_noisy = statmodel::bathtub_opening_ui(noisy, 1e-12);
    EXPECT_GT(open_clean, open_noisy);
    EXPECT_GT(open_clean, 0.1);
}

TEST(Vcd, ProducesWellFormedDocument) {
    sim::Scheduler sched;
    sim::Wire clk(sched, "clk");
    sim::Wire data(sched, "data", true);
    sim::VcdWriter vcd;
    vcd.watch(clk);
    vcd.watch(data);
    for (int i = 1; i <= 4; ++i) {
        sched.schedule_at(SimTime::ps(i * 100),
                          [&clk, i] { clk.set_now(i % 2 == 1); });
    }
    sched.schedule_at(SimTime::ps(250), [&data] { data.set_now(false); });
    sched.run();

    const auto doc = vcd.to_string("tb");
    EXPECT_NE(doc.find("$timescale 1 ps $end"), std::string::npos);
    EXPECT_NE(doc.find("$scope module tb $end"), std::string::npos);
    EXPECT_NE(doc.find("$var wire 1 ! clk $end"), std::string::npos);
    EXPECT_NE(doc.find("$var wire 1 \" data $end"), std::string::npos);
    EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
    // Initial dump: clk = 0, data = 1.
    EXPECT_NE(doc.find("0!"), std::string::npos);
    EXPECT_NE(doc.find("1\""), std::string::npos);
    // Timestamped changes.
    EXPECT_NE(doc.find("#100"), std::string::npos);
    EXPECT_NE(doc.find("#250"), std::string::npos);
    EXPECT_EQ(vcd.change_count(), 5u);
    EXPECT_EQ(vcd.signal_count(), 2u);
}

TEST(Vcd, SharesTimestampLines) {
    sim::Scheduler sched;
    sim::Wire a(sched, "a");
    sim::Wire b(sched, "b");
    sim::VcdWriter vcd;
    vcd.watch(a);
    vcd.watch(b);
    sched.schedule_at(SimTime::ps(100), [&] {
        a.set_now(true);
        b.set_now(true);
    });
    sched.run();
    const auto doc = vcd.to_string();
    // Only one #100 line for both changes.
    const auto first = doc.find("#100");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(doc.find("#100", first + 1), std::string::npos);
}

TEST(Vcd, WritesFile) {
    sim::Scheduler sched;
    sim::Wire w(sched, "sig");
    sim::VcdWriter vcd;
    vcd.watch(w);
    sched.schedule_at(SimTime::ps(10), [&] { w.set_now(true); });
    sched.run();
    const std::string path = "/tmp/gcdr_vcd_test.vcd";
    ASSERT_TRUE(vcd.write_file(path));
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string line;
    std::getline(f, line);
    EXPECT_NE(line.find("$comment"), std::string::npos);
}

TEST(Vcd, ZeroWidthGlitchKeepsBothChanges) {
    // A pulse that rises and falls at the same timestamp (zero width at
    // the VCD timescale) must keep both changes, in order, under a single
    // #time line — GTKWave renders this as a glitch marker.
    sim::Scheduler sched;
    sim::Wire w(sched, "pulse");
    sim::VcdWriter vcd;
    vcd.watch(w);
    sched.schedule_at(SimTime::ps(100), [&] { w.set_now(true); });
    sched.schedule_at(SimTime::ps(100), [&] { w.set_now(false); });
    sched.run();
    EXPECT_EQ(vcd.change_count(), 2u);
    const auto doc = vcd.to_string("tb");
    const auto t = doc.find("#100");
    ASSERT_NE(t, std::string::npos);
    EXPECT_EQ(doc.find("#100", t + 1), std::string::npos);
    const auto rise = doc.find("1!", t);
    const auto fall = doc.find("0!", t);
    ASSERT_NE(rise, std::string::npos);
    ASSERT_NE(fall, std::string::npos);
    EXPECT_LT(rise, fall);
}

TEST(Vcd, MidRunWatchCapturesCurrentValueAsInitial) {
    // Watching a wire after the run has started (out-of-order relative to
    // wire creation and earlier events) snapshots its current value as
    // the $dumpvars initial and records only later transitions.
    sim::Scheduler sched;
    sim::Wire a(sched, "a");
    sim::Wire b(sched, "b");
    sim::VcdWriter vcd;
    vcd.watch(a);
    sched.schedule_at(SimTime::ps(100), [&] {
        a.set_now(true);
        b.set_now(true);  // not yet watched: must not be recorded
    });
    sched.run();
    vcd.watch(b);  // b currently high
    sched.schedule_at(SimTime::ps(200), [&] { b.set_now(false); });
    sched.run();

    EXPECT_EQ(vcd.signal_count(), 2u);
    EXPECT_EQ(vcd.change_count(), 2u);  // a@100 and b@200 only
    const auto doc = vcd.to_string("tb");
    EXPECT_NE(doc.find("$var wire 1 \" b $end"), std::string::npos);
    // Initial dump: a = 0 (pre-first-change), b = 1 (value at watch time).
    const auto dump = doc.find("$dumpvars");
    ASSERT_NE(dump, std::string::npos);
    const auto end = doc.find("$end", dump);
    EXPECT_NE(doc.substr(dump, end - dump).find("1\""), std::string::npos);
    EXPECT_NE(doc.find("#200"), std::string::npos);
}

TEST(Vcd, BoundedWindowMatchesGoldenDocument) {
    // The flight-recorder configuration: a bounded writer whose evicted
    // changes fold into the initial state, rendered over a failure
    // window. The full document is compared against a golden rendering,
    // and the file round-trip must be byte-identical.
    sim::Scheduler sched;
    sim::Wire w(sched, "sig");
    sim::VcdWriter vcd;
    vcd.watch(w);
    vcd.set_max_changes(4);
    for (int i = 1; i <= 10; ++i) {
        sched.schedule_at(SimTime::ps(i * 10),
                          [&w, i] { w.set_now(i % 2 == 1); });
    }
    sched.run();
    EXPECT_EQ(vcd.change_count(), 4u);  // ps 70, 80, 90, 100 retained

    const auto doc = vcd.to_string_window(SimTime::ps(70).femtoseconds(),
                                          SimTime::ps(90).femtoseconds(),
                                          "fr");
    const std::string golden =
        "$comment gcco-cdr behavioral simulation $end\n"
        "$timescale 1 ps $end\n"
        "$scope module fr $end\n"
        "$var wire 1 ! sig $end\n"
        "$upscope $end\n"
        "$enddefinitions $end\n"
        "$dumpvars\n"
        "0!\n"  // evicted ps-60 fall folded into the window's entry state
        "$end\n"
        "#70\n1!\n"
        "#80\n0!\n"
        "#90\n1!\n";
    EXPECT_EQ(doc, golden);

    const std::string path = "/tmp/gcdr_vcd_window_test.vcd";
    ASSERT_TRUE(vcd.write_window(path, SimTime::ps(70).femtoseconds(),
                                 SimTime::ps(90).femtoseconds(), "fr"));
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    EXPECT_EQ(os.str(), golden);
}

}  // namespace
}  // namespace gcdr
