// Tests for gates/: CML gate behavioral models — truth tables through
// transport delays, per-edge jitter statistics, sampler decisions and the
// delay line.

#include <gtest/gtest.h>

#include <cmath>

#include "gates/cml_gates.hpp"
#include "gates/delay_line.hpp"

namespace gcdr::gates {
namespace {

struct Fixture {
    sim::Scheduler sched;
    Rng rng{1234};
};

TEST(JitteredDelay, NoJitterReturnsNominal) {
    Fixture f;
    const CmlTiming t{SimTime::ps(75), 0.0};
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(jittered_delay(t, f.rng), SimTime::ps(75));
    }
}

TEST(JitteredDelay, StatisticsMatchSigma) {
    Fixture f;
    const CmlTiming t{SimTime::ps(100), 0.02};
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double d = jittered_delay(t, f.rng).picoseconds();
        sum += d;
        sum2 += d * d;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 100.0, 0.1);
    EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.1);
}

TEST(JitteredDelay, NeverNonPositive) {
    Fixture f;
    const CmlTiming t{SimTime::fs(5), 3.0};  // absurd jitter
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(jittered_delay(t, f.rng), SimTime::fs(1));
    }
}

TEST(CmlBuffer, PropagatesWithDelay) {
    Fixture f;
    sim::Wire in(f.sched, "in");
    sim::Wire out(f.sched, "out");
    CmlBuffer buf(f.sched, f.rng, in, out, CmlTiming{SimTime::ps(50), 0.0});
    f.sched.schedule_at(SimTime::ps(100), [&] { in.set_now(true); });
    f.sched.run();
    EXPECT_TRUE(out.value());
    EXPECT_EQ(out.last_change(), SimTime::ps(150));
}

TEST(CmlBuffer, InvertingVariant) {
    Fixture f;
    sim::Wire in(f.sched, "in");
    sim::Wire out(f.sched, "out", true);
    CmlBuffer buf(f.sched, f.rng, in, out, CmlTiming{SimTime::ps(50), 0.0},
                  /*invert=*/true);
    f.sched.schedule_at(SimTime::ps(0), [&] { in.set_now(true); });
    f.sched.run();
    EXPECT_FALSE(out.value());
}

TEST(CmlXor, TruthTableThroughTransitions) {
    Fixture f;
    sim::Wire a(f.sched, "a");
    sim::Wire b(f.sched, "b");
    sim::Wire out(f.sched, "out");
    const CmlTiming t{SimTime::ps(10), 0.0};
    CmlXor gate(f.sched, f.rng, a, b, out, t, t);
    // a=1,b=0 -> 1; a=1,b=1 -> 0; a=0,b=1 -> 1; a=0,b=0 -> 0.
    f.sched.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    f.sched.run_until(SimTime::ps(150));
    EXPECT_TRUE(out.value());
    f.sched.schedule_at(SimTime::ps(200), [&] { b.set_now(true); });
    f.sched.run_until(SimTime::ps(250));
    EXPECT_FALSE(out.value());
    f.sched.schedule_at(SimTime::ps(300), [&] { a.set_now(false); });
    f.sched.run_until(SimTime::ps(350));
    EXPECT_TRUE(out.value());
    f.sched.schedule_at(SimTime::ps(400), [&] { b.set_now(false); });
    f.sched.run();
    EXPECT_FALSE(out.value());
}

TEST(CmlXor, XnorIdlesHighOnEqualInputs) {
    Fixture f;
    sim::Wire a(f.sched, "a");
    sim::Wire b(f.sched, "b");
    sim::Wire out(f.sched, "out", true);
    const CmlTiming t{SimTime::ps(10), 0.0};
    CmlXor gate(f.sched, f.rng, a, b, out, t, t, /*invert=*/true);
    f.sched.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    f.sched.schedule_at(SimTime::ps(100), [&] { b.set_now(true); });
    f.sched.run();
    EXPECT_TRUE(out.value());  // equal inputs -> XNOR high
}

TEST(CmlXor, PerInputDelayMismatch) {
    // Stacked CML inputs have different input-to-output delays (Sec. 3.3a):
    // the same output toggle arrives at different times depending on which
    // input moved.
    Fixture f;
    sim::Wire a(f.sched, "a");
    sim::Wire b(f.sched, "b");
    sim::Wire out(f.sched, "out");
    CmlXor gate(f.sched, f.rng, a, b, out, CmlTiming{SimTime::ps(10), 0.0},
                CmlTiming{SimTime::ps(30), 0.0});
    f.sched.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    f.sched.run();
    EXPECT_EQ(out.last_change(), SimTime::ps(110));
    f.sched.schedule_at(f.sched.now() + SimTime::ps(100),
                        [&] { b.set_now(true); });
    f.sched.run();
    EXPECT_EQ(out.last_change(), SimTime::ps(240));  // 210 + 30
}

TEST(CmlAnd, TruthTable) {
    Fixture f;
    sim::Wire a(f.sched, "a");
    sim::Wire b(f.sched, "b", true);
    sim::Wire out(f.sched, "out");
    const CmlTiming t{SimTime::ps(10), 0.0};
    CmlAnd gate(f.sched, f.rng, a, b, out, t, t);
    f.sched.schedule_at(SimTime::ps(100), [&] { a.set_now(true); });
    f.sched.run();
    EXPECT_TRUE(out.value());
    f.sched.schedule_at(f.sched.now() + SimTime::ps(10),
                        [&] { b.set_now(false); });
    f.sched.run();
    EXPECT_FALSE(out.value());
}

TEST(CmlAnd, NandVariant) {
    Fixture f;
    sim::Wire a(f.sched, "a", true);
    sim::Wire b(f.sched, "b", true);
    sim::Wire out(f.sched, "out");
    const CmlTiming t{SimTime::ps(10), 0.0};
    CmlAnd gate(f.sched, f.rng, a, b, out, t, t, /*invert=*/true);
    f.sched.schedule_at(SimTime::ps(50), [&] { a.set_now(false); });
    f.sched.run();
    EXPECT_TRUE(out.value());  // NAND(0,1) = 1
}

TEST(CmlSampler, SamplesOnRisingEdgeOnly) {
    Fixture f;
    sim::Wire d(f.sched, "d");
    sim::Wire clk(f.sched, "clk");
    sim::Wire q(f.sched, "q");
    std::vector<std::pair<SimTime, bool>> decisions;
    CmlSampler ff(f.sched, f.rng, d, clk, q, CmlTiming{SimTime::ps(20), 0.0},
                  [&](SimTime t, bool bit) { decisions.emplace_back(t, bit); });
    f.sched.schedule_at(SimTime::ps(100), [&] { d.set_now(true); });
    f.sched.schedule_at(SimTime::ps(200), [&] { clk.set_now(true); });   // sample 1
    f.sched.schedule_at(SimTime::ps(300), [&] { clk.set_now(false); });  // no sample
    f.sched.schedule_at(SimTime::ps(350), [&] { d.set_now(false); });
    f.sched.schedule_at(SimTime::ps(400), [&] { clk.set_now(true); });   // sample 0
    f.sched.run();
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_EQ(decisions[0], std::make_pair(SimTime::ps(200), true));
    EXPECT_EQ(decisions[1], std::make_pair(SimTime::ps(400), false));
    EXPECT_FALSE(q.value());
    EXPECT_EQ(q.last_change(), SimTime::ps(420));
}

TEST(DelayLine, TotalDelayIsSumOfCells) {
    Fixture f;
    sim::Wire in(f.sched, "in");
    DelayLine dl(f.sched, f.rng, in, 4, CmlTiming{SimTime::ps(75), 0.0});
    EXPECT_EQ(dl.nominal_delay(), SimTime::ps(300));
    EXPECT_EQ(dl.cells(), 4u);
    f.sched.schedule_at(SimTime::ps(0), [&] { in.set_now(true); });
    f.sched.run();
    EXPECT_TRUE(dl.out().value());
    EXPECT_EQ(dl.out().last_change(), SimTime::ps(300));
}

TEST(DelayLine, PropagatesPulsesNarrowerThanDelay) {
    // Transport semantics end-to-end: a 50 ps pulse must survive a 300 ps
    // line — the EDET pulse depends on this.
    Fixture f;
    sim::Wire in(f.sched, "in");
    DelayLine dl(f.sched, f.rng, in, 4, CmlTiming{SimTime::ps(75), 0.0});
    int transitions = 0;
    dl.out().on_change([&] { ++transitions; });
    f.sched.schedule_at(SimTime::ps(100), [&] { in.set_now(true); });
    f.sched.schedule_at(SimTime::ps(150), [&] { in.set_now(false); });
    f.sched.run();
    EXPECT_EQ(transitions, 2);
}

TEST(DelayLine, JitterAccumulatesAcrossCells) {
    // With per-cell sigma s, the output edge sigma is s*sqrt(n)*delay.
    Fixture f;
    sim::Wire in(f.sched, "in");
    DelayLine dl(f.sched, f.rng, in, 16, CmlTiming{SimTime::ps(100), 0.01});
    std::vector<double> arrival_ps;
    dl.out().on_change([&] {
        arrival_ps.push_back(f.sched.now().picoseconds());
    });
    SimTime t{0};
    bool level = false;
    for (int i = 0; i < 4000; ++i) {
        t += SimTime::ns(10);  // far apart: edges never interact
        level = !level;
        const bool v = level;
        f.sched.schedule_at(t, [&in, v] { in.set_now(v); });
    }
    f.sched.run();
    ASSERT_EQ(arrival_ps.size(), 4000u);
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < arrival_ps.size(); ++i) {
        const double latency =
            arrival_ps[i] - (static_cast<double>(i + 1) * 10000.0);
        sum += latency;
        sum2 += latency * latency;
    }
    const double n = static_cast<double>(arrival_ps.size());
    const double mean = sum / n;
    const double sigma = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 1600.0, 2.0);          // 16 * 100 ps
    EXPECT_NEAR(sigma, 4.0, 0.4);            // 1 ps * sqrt(16)
}

}  // namespace
}  // namespace gcdr::gates
