// Tests for encoding/: PRBS generators/checkers, the full 8b/10b codec
// (round trips, disparity bookkeeping, run-length bound, comma alignment)
// and run-length statistics.

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>

#include "encoding/enc8b10b.hpp"
#include "encoding/prbs.hpp"
#include "encoding/runlength.hpp"

namespace gcdr::encoding {
namespace {

class PrbsPeriodTest : public ::testing::TestWithParam<PrbsOrder> {};

TEST_P(PrbsPeriodTest, SequenceHasFullPeriod) {
    const PrbsOrder order = GetParam();
    if (order == PrbsOrder::kPrbs23 || order == PrbsOrder::kPrbs31) {
        GTEST_SKIP() << "period too long for exhaustive check";
    }
    PrbsGenerator gen(order);
    const std::uint32_t s0 = gen.state();
    std::uint64_t period = 0;
    do {
        gen.next();
        ++period;
    } while (gen.state() != s0 && period <= gen.period() + 1);
    EXPECT_EQ(period, gen.period());
}

TEST_P(PrbsPeriodTest, BalancedOnesAndZeros) {
    PrbsGenerator gen(GetParam());
    const std::size_t n = 100000;
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (gen.next()) ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST_P(PrbsPeriodTest, CheckerLocksAndSeesNoErrorsOnCleanStream) {
    PrbsGenerator gen(GetParam());
    PrbsChecker chk(GetParam());
    for (int i = 0; i < 5000; ++i) chk.feed(gen.next());
    EXPECT_TRUE(chk.locked());
    EXPECT_EQ(chk.errors(), 0u);
    EXPECT_GT(chk.bits_checked(), 4000u);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PrbsPeriodTest,
                         ::testing::Values(PrbsOrder::kPrbs7,
                                           PrbsOrder::kPrbs9,
                                           PrbsOrder::kPrbs15,
                                           PrbsOrder::kPrbs23,
                                           PrbsOrder::kPrbs31));

TEST(Prbs, Prbs7MaxRunIsSeven) {
    PrbsGenerator gen(PrbsOrder::kPrbs7);
    const auto bits = gen.bits(254);  // two periods
    EXPECT_EQ(max_run_length(bits), 7u);
}

TEST(Prbs, CheckerCountsInjectedErrors) {
    PrbsGenerator gen(PrbsOrder::kPrbs7);
    PrbsChecker chk(PrbsOrder::kPrbs7);
    for (int i = 0; i < 100; ++i) chk.feed(gen.next());
    ASSERT_TRUE(chk.locked());
    const auto before = chk.errors();
    chk.feed(!gen.next());  // one flipped line bit
    for (int i = 0; i < 100; ++i) chk.feed(gen.next());
    // A single line error corrupts the checker register briefly: between 1
    // and 3 mismatches for a 2-tap polynomial.
    const auto delta = chk.errors() - before;
    EXPECT_GE(delta, 1u);
    EXPECT_LE(delta, 3u);
    // And the checker must re-align afterwards (no persistent errors).
    const auto after = chk.errors();
    for (int i = 0; i < 100; ++i) chk.feed(gen.next());
    EXPECT_EQ(chk.errors(), after);
}

TEST(Prbs, ZeroSeedAvoidsStuckState) {
    PrbsGenerator gen(PrbsOrder::kPrbs7, 0);
    bool any_one = false, any_zero = false;
    for (int i = 0; i < 127; ++i) {
        (gen.next() ? any_one : any_zero) = true;
    }
    EXPECT_TRUE(any_one);
    EXPECT_TRUE(any_zero);
}

TEST(Enc8b10b, AllDataBytesRoundTripBothDisparities) {
    for (int start = 0; start < 2; ++start) {
        const auto rd = start ? Disparity::kPositive : Disparity::kNegative;
        for (int b = 0; b < 256; ++b) {
            Encoder8b10b enc(rd);
            Decoder8b10b dec(rd);
            const auto sym = enc.encode_data(static_cast<std::uint8_t>(b));
            const auto res = dec.decode(sym);
            ASSERT_TRUE(res.has_value()) << "byte " << b;
            EXPECT_FALSE(res->disparity_error) << "byte " << b;
            EXPECT_EQ(res->code.byte, b);
            EXPECT_FALSE(res->code.is_control);
            EXPECT_EQ(dec.running_disparity(), enc.running_disparity());
        }
    }
}

TEST(Enc8b10b, AllControlCodesRoundTrip) {
    int n_controls = 0;
    for (int b = 0; b < 256; ++b) {
        if (!is_valid_control(static_cast<std::uint8_t>(b))) continue;
        ++n_controls;
        for (const auto rd : {Disparity::kNegative, Disparity::kPositive}) {
            Encoder8b10b enc(rd);
            Decoder8b10b dec(rd);
            const auto sym =
                enc.encode(CodePoint{static_cast<std::uint8_t>(b), true});
            const auto res = dec.decode(sym);
            ASSERT_TRUE(res.has_value()) << "K-byte " << b;
            EXPECT_EQ(res->code.byte, b);
            EXPECT_TRUE(res->code.is_control);
        }
    }
    EXPECT_EQ(n_controls, 12);  // K28.0-7 + K23/27/29/30.7
}

TEST(Enc8b10b, SymbolDisparityIsAlwaysBalancedOrPlusMinusTwo) {
    for (const auto rd : {Disparity::kNegative, Disparity::kPositive}) {
        for (int b = 0; b < 256; ++b) {
            Encoder8b10b enc(rd);
            const auto sym = enc.encode_data(static_cast<std::uint8_t>(b));
            const int pc = std::popcount(static_cast<unsigned>(sym));
            EXPECT_TRUE(pc == 5 || pc == 4 || pc == 6) << "byte " << b;
            // RD- encoders must not emit net-negative symbols and vice
            // versa: disparity alternates toward balance.
            if (pc != 5) {
                EXPECT_EQ(pc == 6, rd == Disparity::kNegative) << b;
            }
        }
    }
}

TEST(Enc8b10b, RunningDisparityStaysBounded) {
    Encoder8b10b enc;
    int disp = -1;
    for (int i = 0; i < 1000; ++i) {
        const auto sym =
            enc.encode_data(static_cast<std::uint8_t>((i * 37) & 0xFF));
        const int pc = std::popcount(static_cast<unsigned>(sym));
        disp += 2 * pc - 10;
        EXPECT_TRUE(disp == -1 || disp == 1);
        EXPECT_EQ(disp == 1, enc.running_disparity() == Disparity::kPositive);
    }
}

TEST(Enc8b10b, EncodedStreamRunLengthAtMostFive) {
    Encoder8b10b enc;
    std::vector<CodePoint> cps;
    // Adversarial payload: runs of 0x00/0xFF and everything in between.
    for (int i = 0; i < 256; ++i) cps.push_back({static_cast<std::uint8_t>(i), false});
    for (int i = 0; i < 64; ++i) cps.push_back({0x00, false});
    for (int i = 0; i < 64; ++i) cps.push_back({0xFF, false});
    for (int i = 0; i < 64; ++i) cps.push_back({0xAA, false});
    const auto bits = enc.encode_stream(cps);
    EXPECT_LE(max_run_length(bits), 5u);
}

TEST(Enc8b10b, TenBitCodesAreUniquePerColumn) {
    // No two code points may share a symbol within one starting disparity.
    for (const auto rd : {Disparity::kNegative, Disparity::kPositive}) {
        std::map<std::uint16_t, int> seen;
        for (int b = 0; b < 256; ++b) {
            Encoder8b10b enc(rd);
            const auto sym = enc.encode_data(static_cast<std::uint8_t>(b));
            const auto it = seen.find(sym);
            EXPECT_TRUE(it == seen.end())
                << "collision between D-bytes " << it->second << " and " << b;
            seen[sym] = b;
        }
    }
}

TEST(Enc8b10b, InvalidSymbolRejected) {
    Decoder8b10b dec;
    // 0b1111111111 (all ones) is never a legal 10b code.
    EXPECT_FALSE(dec.decode(0x3FF).has_value());
    EXPECT_FALSE(dec.decode(0x000).has_value());
}

TEST(Enc8b10b, WrongColumnFlagsDisparityError) {
    // Encode D.0.0 from RD- (an unbalanced symbol), then decode it with a
    // decoder that believes RD is already positive.
    Encoder8b10b enc(Disparity::kNegative);
    const auto sym = enc.encode_data(0x00);
    Decoder8b10b dec(Disparity::kPositive);
    const auto res = dec.decode(sym);
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(res->disparity_error);
    EXPECT_EQ(res->code.byte, 0x00);
}

TEST(Enc8b10b, InvalidControlThrows) {
    Encoder8b10b enc;
    EXPECT_THROW((void)enc.encode(CodePoint{0x00, true}),
                 std::invalid_argument);
}

TEST(Enc8b10b, CommaAlignmentFindsK28_5) {
    Encoder8b10b enc;
    std::vector<CodePoint> cps{{0x4A, false}, {0x7E, false}, kK28_5,
                               {0x33, false}};
    const auto bits = enc.encode_stream(cps);
    const auto idx = find_comma_alignment(bits);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx % 10, 0u);  // commas start exactly on symbol boundaries
    EXPECT_EQ(*idx, 20u);      // third symbol
}

TEST(Enc8b10b, NoFalseCommaInDataOnlyStream) {
    Encoder8b10b enc;
    std::vector<CodePoint> cps;
    for (int i = 0; i < 256; ++i) {
        cps.push_back({static_cast<std::uint8_t>(i * 73), false});
    }
    const auto bits = enc.encode_stream(cps);
    // The comma sequence is "singular": it must not appear across any data
    // symbol boundary.
    EXPECT_FALSE(find_comma_alignment(bits).has_value());
}

TEST(RunLength, MaxAndHistogram) {
    const std::vector<bool> bits{0, 0, 0, 1, 1, 0, 1, 1, 1, 1};
    EXPECT_EQ(max_run_length(bits), 4u);
    const auto hist = run_length_histogram(bits);
    ASSERT_EQ(hist.size(), 5u);
    EXPECT_EQ(hist[1], 1u);  // the single 0
    EXPECT_EQ(hist[2], 1u);  // the 11 pair
    EXPECT_EQ(hist[3], 1u);  // 000
    EXPECT_EQ(hist[4], 1u);  // 1111
}

TEST(RunLength, GeometricWeightsNormalizedAndDecreasing) {
    const auto w = geometric_position_weights(5);
    ASSERT_EQ(w.size(), 5u);
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
        EXPECT_GT(w[i], w[i + 1]);
        sum += w[i];
    }
    sum += w.back();
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Untruncated ratios are exactly 1/2.
    EXPECT_NEAR(w[1] / w[0], 0.5, 1e-12);
}

TEST(RunLength, EmpiricalWeightsMatchGeometricOnRandomData) {
    PrbsGenerator gen(PrbsOrder::kPrbs23);
    const auto bits = gen.bits(200000);
    const auto w = empirical_position_weights(bits);
    ASSERT_GE(w.size(), 5u);
    EXPECT_NEAR(w[0], 0.5, 0.01);
    EXPECT_NEAR(w[1], 0.25, 0.01);
    EXPECT_NEAR(w[2], 0.125, 0.01);
}

TEST(RunLength, EmpiricalWeightsOf8b10bCapAtFive) {
    Encoder8b10b enc;
    std::vector<CodePoint> cps;
    for (int i = 0; i < 4096; ++i) {
        cps.push_back({static_cast<std::uint8_t>((i * 151 + 17) & 0xFF),
                       false});
    }
    const auto w = empirical_position_weights(enc.encode_stream(cps));
    EXPECT_LE(w.size(), 5u);
}

}  // namespace
}  // namespace gcdr::encoding
