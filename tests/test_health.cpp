// In-situ lane-health monitors (obs/health, DESIGN.md §14):
//  - the hysteretic lock-state machine: settling time, neutral windows
//    breaking streaks without feeding the lost counter, degraded ->
//    locked re-lock accounting, consistently-bad acquisition going lost,
//    the acquire timeout, and lost stickiness;
//  - the fixed-bin histograms (edge clamping) and the pow2 sample ring
//    (window completion on wrap);
//  - gcdr.health/v1 snapshot shape;
//  - observation purity: attaching a monitor never changes decisions,
//    margins or executed-event counts;
//  - batch-vs-scalar health identity and thread-count invariance (the
//    same guarantees the decision path already has, extended to health
//    snapshots);
//  - flight-recorder dump-path collisions: two simultaneous dumps get
//    distinct files.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <thread>
#include <vector>

#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "jitter/jitter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health/health_monitor.hpp"
#include "obs/json_parse.hpp"
#include "sim/batch/channel_batch.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace gcdr;
using namespace gcdr::obs::health;

/// Small-window config so state transitions happen in a handful of
/// samples: 4-sample windows, 1000 fs UI, default hysteresis.
HealthConfig tiny_config() {
    HealthConfig cfg;
    cfg.ui_fs = 1000.0;
    cfg.window = 4;
    return cfg;
}

/// Feed `n` samples of constant margin, 1 UI apart, starting after the
/// monitor's current sample count (times stay monotone across calls).
void feed(LaneHealthMonitor& m, std::size_t n, double margin) {
    for (std::size_t i = 0; i < n; ++i) {
        const auto t =
            static_cast<std::int64_t>((m.samples() + 1) * 1000);
        m.on_margin(t, margin);
    }
}

constexpr double kGood = 0.50;     // pe 0, min margin well inside
// Neutral must dodge BOTH bad triggers: margin >= 0.04 AND
// |margin - center(0.5)| <= 0.42, i.e. margin in [0.08, 0.10) for
// "not good, not bad".
constexpr double kNeutral = 0.09;
constexpr double kBad = 0.02;      // margin < bad_min_margin_ui

TEST(HealthStateMachine, LocksAfterConsecutiveGoodWindows) {
    LaneHealthMonitor m(tiny_config());
    feed(m, 15, kGood);
    EXPECT_EQ(m.state(), LockState::kAcquiring);
    EXPECT_LT(m.settle_ui(), 0.0);
    feed(m, 1, kGood);  // completes the 4th good window
    EXPECT_EQ(m.state(), LockState::kLocked);
    EXPECT_EQ(m.good_windows(), 4u);
    EXPECT_EQ(m.bad_windows(), 0u);
    // First sample at 1000 fs, lock decided at sample 16 (16000 fs):
    // 15 UI of settling at 1000 fs/UI.
    EXPECT_DOUBLE_EQ(m.settle_ui(), 15.0);
    EXPECT_GT(m.score(), 0.9);
}

TEST(HealthStateMachine, NeutralWindowBreaksStreakWithoutCountingBad) {
    LaneHealthMonitor m(tiny_config());
    feed(m, 12, kGood);    // 3 good windows
    feed(m, 4, kNeutral);  // streak reset, not bad
    EXPECT_EQ(m.state(), LockState::kAcquiring);
    EXPECT_EQ(m.bad_windows(), 0u);
    feed(m, 12, kGood);
    EXPECT_EQ(m.state(), LockState::kAcquiring);  // streak only 3
    feed(m, 4, kGood);
    EXPECT_EQ(m.state(), LockState::kLocked);
}

TEST(HealthStateMachine, DegradedWindowThenRelock) {
    LaneHealthMonitor m(tiny_config());
    feed(m, 16, kGood);
    ASSERT_EQ(m.state(), LockState::kLocked);
    feed(m, 4, kNeutral);  // one not-good window while locked
    EXPECT_EQ(m.state(), LockState::kDegraded);
    EXPECT_EQ(m.relocks(), 0u);
    feed(m, 8, kGood);  // relock_windows = 2 good windows
    EXPECT_EQ(m.state(), LockState::kLocked);
    EXPECT_EQ(m.relocks(), 1u);
    // Degraded at sample 20, relocked at sample 28: 8 UI.
    EXPECT_DOUBLE_EQ(m.last_relock_ui(), 8.0);
}

TEST(HealthStateMachine, ConsistentlyBadAcquisitionGoesLost) {
    LaneHealthMonitor m(tiny_config());
    LockState from = LockState::kLocked;
    int fired = 0;
    m.on_lost = [&](LockState f) {
        from = f;
        ++fired;
    };
    feed(m, 4 * 6, kBad);  // lost_windows consecutive bad windows
    EXPECT_EQ(m.state(), LockState::kLost);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(from, LockState::kAcquiring);
    EXPECT_EQ(m.score(), 0.0);
    // Lost is sticky within a run.
    feed(m, 32, kGood);
    EXPECT_EQ(m.state(), LockState::kLost);
    EXPECT_EQ(fired, 1);
}

TEST(HealthStateMachine, LockedLaneGoesLostThroughDegraded) {
    LaneHealthMonitor m(tiny_config());
    LockState from = LockState::kAcquiring;
    m.on_lost = [&](LockState f) { from = f; };
    feed(m, 16, kGood);
    ASSERT_EQ(m.state(), LockState::kLocked);
    feed(m, 4, kBad);
    EXPECT_EQ(m.state(), LockState::kDegraded);
    feed(m, 4 * 5, kBad);
    EXPECT_EQ(m.state(), LockState::kLost);
    EXPECT_EQ(from, LockState::kDegraded);
}

TEST(HealthStateMachine, AcquireTimeoutReachesLost) {
    HealthConfig cfg = tiny_config();
    cfg.acquire_timeout_windows = 5;
    LaneHealthMonitor m(cfg);
    // Neutral forever: never good, never bad — only the timeout can
    // terminate acquisition.
    feed(m, 4 * 5, kNeutral);
    EXPECT_EQ(m.state(), LockState::kLost);
    EXPECT_EQ(m.bad_windows(), 0u);
}

TEST(FixedHistogramTest, ClampsOutOfRangeIntoEdgeBins) {
    FixedHistogram h(-0.5, 1.0, 32);
    h.record(-5.0);   // below lo -> bin 0
    h.record(-0.5);   // exactly lo -> bin 0
    h.record(5.0);    // above hi -> bin 31
    h.record(1.0);    // exactly hi -> bin 31
    h.record(0.25);   // interior: (0.25+0.5)/1.5*32 = 16
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(31), 2u);
    EXPECT_EQ(h.count(16), 1u);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < h.bins(); ++i) total += h.count(i);
    EXPECT_EQ(total, 5u);
}

TEST(HealthMonitor, SampleRingWrapsIntoWindows) {
    LaneHealthMonitor m(tiny_config());
    feed(m, 10, kGood);
    EXPECT_EQ(m.samples(), 10u);
    EXPECT_EQ(m.windows(), 2u);  // two complete 4-sample windows
    // Every sample lands in the cumulative histograms, wrapped or not.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < m.margin_histogram().bins(); ++i) {
        total += m.margin_histogram().count(i);
    }
    EXPECT_EQ(total, 10u);
    EXPECT_EQ(m.last_window().min_margin_ui, kGood);
    EXPECT_EQ(m.last_window().max_margin_ui, kGood);
}

TEST(HealthMonitor, WindowRoundsUpToPowerOfTwo) {
    HealthConfig cfg = tiny_config();
    cfg.window = 6;
    LaneHealthMonitor m(cfg);
    EXPECT_EQ(m.config().window, 8u);
    feed(m, 8, kGood);
    EXPECT_EQ(m.windows(), 1u);
}

TEST(HealthSnapshot, SchemaAndLaneFields) {
    HealthHub hub(2, tiny_config());
    feed(hub.lane(0), 16, kGood);
    feed(hub.lane(1), 24, kBad);
    EXPECT_EQ(hub.locked_lanes(), 1u);
    EXPECT_FALSE(hub.all_locked());

    const std::string json = hub.snapshot_json();
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::json_parse(json, v, &err)) << err;
    EXPECT_EQ(v.find("schema")->string_or(""), "gcdr.health/v1");
    const obs::JsonValue* lanes = v.find("lanes");
    ASSERT_NE(lanes, nullptr);
    ASSERT_EQ(lanes->items.size(), 2u);
    const obs::JsonValue& l0 = lanes->items[0];
    EXPECT_EQ(l0.find("lane")->uint_or(99), 0u);
    EXPECT_EQ(l0.find("state")->string_or(""), "locked");
    EXPECT_EQ(lanes->items[1].find("state")->string_or(""), "lost");
    for (const char* key :
         {"score", "samples", "windows", "good_windows", "bad_windows",
          "margin_violations", "settle_ui", "relocks", "last_relock_ui",
          "eye_ui", "drift_ui", "window", "pe_hist", "margin_hist"}) {
        EXPECT_NE(l0.find(key), nullptr) << key;
    }
    EXPECT_EQ(l0.find("pe_hist")->find("counts")->items.size(), 32u);
    // The hub snapshot embeds exactly the per-lane serialization.
    EXPECT_NE(json.find(lane_health_json(hub.lane(0), 0)),
              std::string::npos);
}

// ------------------------------------------------------------------
// Integration with the scalar channel and the batched kernel.

std::vector<jitter::Edge> lane_edges(std::uint64_t edge_seed,
                                     std::size_t n_bits,
                                     const jitter::StreamParams& sp) {
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    Rng rng(edge_seed);
    return jitter::jittered_edges(gen.bits(n_bits), sp, rng);
}

TEST(HealthIntegration, AttachedMonitorKeepsRunBitIdentical) {
    constexpr std::size_t kBits = 300;
    const auto cfg = cdr::ChannelConfig::nominal(2.5e9);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    const SimTime t_end =
        sp.start + cfg.rate.ui_to_time(static_cast<double>(kBits));
    const auto edges = lane_edges(77, kBits, sp);

    auto run = [&](LaneHealthMonitor* mon) {
        sim::Scheduler sched;
        Rng rng(5);
        cdr::GccoChannel ch(sched, rng, cfg, "h");
        ch.attach_health(mon);
        ch.drive(edges);
        sched.run_until(t_end);
        return std::tuple(ch.decisions(), ch.margins_ui(),
                          sched.executed_events());
    };

    LaneHealthMonitor mon(health_config_for(cfg));
    const auto [dd, dm, de] = run(nullptr);
    const auto [ad, am, ae] = run(&mon);
    ASSERT_EQ(ad.size(), dd.size());
    for (std::size_t i = 0; i < ad.size(); ++i) {
        EXPECT_EQ(ad[i].time, dd[i].time);
        EXPECT_EQ(ad[i].bit, dd[i].bit);
    }
    EXPECT_EQ(am, dm);
    EXPECT_EQ(ae, de);
    // And the monitor actually observed the run.
    EXPECT_EQ(mon.samples(), am.size());
    EXPECT_GT(mon.windows(), 0u);
}

TEST(HealthIntegration, BatchHealthMatchesScalarHealth) {
    constexpr std::size_t kBits = 300;
    constexpr std::size_t kLanes = 3;
    const auto cfg = cdr::ChannelConfig::nominal(2.5e9 / 1.03);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    const SimTime t_end =
        sp.start + cfg.rate.ui_to_time(static_cast<double>(kBits));

    sim::batch::ChannelBatch batch(cfg, kLanes);
    HealthHub hub;
    batch.attach_health(hub);
    ASSERT_EQ(hub.lanes(), kLanes);
    std::vector<std::vector<jitter::Edge>> edges(kLanes);
    for (std::size_t k = 0; k < kLanes; ++k) {
        edges[k] = lane_edges(exec::derive_seed(9, 1000 + k), kBits, sp);
        batch.seed_lane(k, exec::derive_seed(9, k));
        batch.drive(k, edges[k]);
    }
    batch.run_until(t_end);

    for (std::size_t k = 0; k < kLanes; ++k) {
        sim::Scheduler sched;
        Rng rng(exec::derive_seed(9, k));
        cdr::GccoChannel ch(sched, rng, cfg, "s");
        LaneHealthMonitor mon(health_config_for(cfg));
        ch.attach_health(&mon);
        ch.drive(edges[k]);
        sched.run_until(t_end);
        EXPECT_EQ(lane_health_json(hub.lane(k), k),
                  lane_health_json(mon, k))
            << "lane " << k;
    }
}

TEST(HealthIntegration, SnapshotIsThreadCountInvariant) {
    constexpr std::size_t kBits = 400;
    constexpr std::size_t kLanes = 6;
    const auto cfg = cdr::ChannelConfig::nominal(2.5e9);
    jitter::StreamParams sp;
    sp.spec = jitter::JitterSpec::paper_table1();
    sp.start = SimTime::ns(4);
    const SimTime t_end =
        sp.start + cfg.rate.ui_to_time(static_cast<double>(kBits));

    auto snapshot = [&](exec::ThreadPool* pool) {
        sim::batch::ChannelBatch batch(cfg, kLanes);
        HealthHub hub;
        batch.attach_health(hub);
        for (std::size_t k = 0; k < kLanes; ++k) {
            batch.seed_lane(k, exec::derive_seed(5, k));
            batch.drive(k,
                        lane_edges(exec::derive_seed(5, 100 + k), kBits, sp));
        }
        batch.run_until(t_end, pool);
        return hub.snapshot_json();
    };

    const std::string serial = snapshot(nullptr);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool4(4);
    EXPECT_EQ(snapshot(&pool2), serial);
    EXPECT_EQ(snapshot(&pool4), serial);
}

// ------------------------------------------------------------------
// Flight-recorder dump-path collisions.

TEST(FlightDumpCollision, SanitizedTagKeepsSafeCharsOnly) {
    EXPECT_EQ(obs::sanitize_dump_tag("health_lost:ch3"),
              "health_lost_ch3");
    EXPECT_EQ(obs::sanitize_dump_tag(""), "dump");
    EXPECT_EQ(obs::sanitize_dump_tag("a/b\\c d"), "a_b_c_d");
}

TEST(FlightDumpCollision, SimultaneousDumpsGetDistinctPaths) {
    obs::FlightRecorder::Config cfg;
    cfg.dump_dir = ::testing::TempDir();
    cfg.max_dumps = 8;
    obs::FlightRecorder rec(cfg);
    rec.ring("ch0").append(1000, "din", 1.0);
    rec.ring("ch1").append(2000, "din", 0.0);

    // Two lanes losing lock at the same instant dump the same reason
    // concurrently; the process-wide sequence must keep them apart.
    std::string path_a;
    std::string path_b;
    std::thread t1([&] { path_a = rec.dump("health_lost:ch0"); });
    std::thread t2([&] { path_b = rec.dump("health_lost:ch0"); });
    t1.join();
    t2.join();

    ASSERT_FALSE(path_a.empty());
    ASSERT_FALSE(path_b.empty());
    EXPECT_NE(path_a, path_b);
    for (const std::string& p : {path_a, path_b}) {
        std::ifstream is(p);
        EXPECT_TRUE(is.good()) << p;
        std::string content((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
        EXPECT_NE(content.find("gcdr.flight.dump/v1"), std::string::npos)
            << p;
    }
}

}  // namespace
