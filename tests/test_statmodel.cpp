// Tests for statmodel/: the statistical BER model's qualitative behaviour
// must match the paper's findings — low-frequency SJ is harmless to the
// gated-oscillator topology, near-rate SJ is not (Fig 9); frequency offset
// degrades BER through CID accumulation (Fig 10); the advanced sampling
// point recovers margin (Fig 17).

#include <gtest/gtest.h>

#include <cmath>

#include "statmodel/gated_osc_model.hpp"

namespace gcdr::statmodel {
namespace {

ModelConfig base_config() {
    ModelConfig cfg;  // Table 1 jitter, CID cap 5, mid-bit sampling
    return cfg;
}

TEST(StatModel, CleanChannelIsErrorFree) {
    ModelConfig cfg = base_config();
    cfg.spec.dj_uipp = 0.0;
    cfg.spec.rj_uirms = 0.0;
    cfg.spec.ckj_uirms = 0.001;
    EXPECT_LT(ber_of(cfg), 1e-30);
}

TEST(StatModel, Table1BudgetMeetsTargetWithoutSj) {
    // The design point: Table 1 DJ/RJ/CKJ with no sinusoidal jitter must
    // clear 1e-12 comfortably (the margin the paper's Fig 9 shows).
    EXPECT_LT(ber_of(base_config()), 1e-12);
}

TEST(StatModel, BerIncreasesWithSjAmplitude) {
    ModelConfig cfg = base_config();
    cfg.sj_freq_norm = 0.1;
    double prev = 0.0;
    for (double amp : {0.0, 0.1, 0.2, 0.4, 0.8}) {
        cfg.spec.sj_uipp = amp;
        const double b = ber_of(cfg);
        EXPECT_GE(b, prev * 0.999) << "amp " << amp;
        prev = b;
    }
    EXPECT_GT(prev, 1e-12);  // 0.8 UIpp near-rate SJ must close the eye
}

TEST(StatModel, LowFrequencySjIsHarmless) {
    // f_SJ/f_data = 1e-4: over a 5-bit run the sinusoid barely moves, so
    // even a huge amplitude is tracked by the retriggering.
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 10.0;
    cfg.sj_freq_norm = 1e-4;
    EXPECT_LT(ber_of(cfg), 1e-12);
}

TEST(StatModel, NearRateSjIsHarmful) {
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.5;
    cfg.sj_freq_norm = 0.1;  // accumulates visibly over a run
    const double near_rate = ber_of(cfg);
    cfg.sj_freq_norm = 1e-4;
    const double low_freq = ber_of(cfg);
    EXPECT_GT(near_rate, low_freq * 1e3);
}

TEST(StatModel, SjEffectDependsOnRunLengthResonance) {
    // At f_norm = 1/L the closing edge of an L-run sees zero effective SJ
    // (sin(pi * f * L) = 0); compare with f_norm = 1/(2L) (maximum).
    ModelConfig cfg = base_config();
    cfg.run_model = RunModel::kWorstCase;
    cfg.max_cid = 4;
    cfg.spec.sj_uipp = 0.6;
    cfg.sj_freq_norm = 1.0 / 4.0;  // null for L = 4
    const double at_null = ber_of(cfg);
    cfg.sj_freq_norm = 1.0 / 8.0;  // peak for L = 4
    const double at_peak = ber_of(cfg);
    EXPECT_GT(at_peak, at_null * 10.0);
}

TEST(StatModel, FrequencyOffsetDegradesBer) {
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.2;
    cfg.sj_freq_norm = 0.1;
    const double no_off = ber_of(cfg);
    cfg.freq_offset = 0.01;  // the paper's 1% case (Fig 10)
    const double with_off = ber_of(cfg);
    EXPECT_GT(with_off, no_off);
}

TEST(StatModel, OffsetSignMattersAtMidBitSampling) {
    // A slow oscillator (delta > 0) drifts the sample toward the closing
    // edge; a fast one drifts it away (toward the freshly-triggered edge,
    // which is clean). Slow must therefore be worse.
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.3;
    cfg.sj_freq_norm = 0.1;
    cfg.freq_offset = +0.02;
    const double slow = ber_of(cfg);
    cfg.freq_offset = -0.02;
    const double fast = ber_of(cfg);
    EXPECT_GT(slow, fast);
}

TEST(StatModel, ImprovedSamplingHelpsUnderPositiveOffset) {
    // Fig 17 vs Fig 10: the T/8 advance restores margin against the
    // accumulated drift at the run end.
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.3;
    cfg.sj_freq_norm = 0.1;
    cfg.freq_offset = 0.01;
    const double mid_bit = ber_of(cfg);
    cfg.sampling_advance_ui = 1.0 / 8.0;
    const double advanced = ber_of(cfg);
    EXPECT_LT(advanced, mid_bit);
}

TEST(StatModel, LongerCidCapIsWorse) {
    // PRBS7 (cap 7) stresses the design harder than 8b/10b (cap 5) — the
    // reason the paper's eye diagrams are conservative (Sec. 3.3b).
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.3;
    cfg.sj_freq_norm = 0.07;
    cfg.freq_offset = 0.01;
    cfg.max_cid = 5;
    const double cid5 = ber_of(cfg);
    cfg.max_cid = 7;
    const double cid7 = ber_of(cfg);
    EXPECT_GT(cid7, cid5);
}

TEST(StatModel, WorstCaseBoundsWeighted) {
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.4;
    cfg.sj_freq_norm = 0.09;
    cfg.run_model = RunModel::kWeighted;
    const double weighted = ber_of(cfg);
    cfg.run_model = RunModel::kWorstCase;
    const double worst = ber_of(cfg);
    EXPECT_GE(worst, weighted);
}

TEST(StatModel, EarlyErrorNegligibleAtMidBit) {
    GatedOscStatModel m(base_config());
    EXPECT_LT(m.early_error_prob(), 1e-30);
}

TEST(StatModel, LateErrorGrowsWithRunLength) {
    ModelConfig cfg = base_config();
    cfg.freq_offset = 0.02;
    cfg.max_cid = 7;
    GatedOscStatModel m(cfg);
    EXPECT_LT(m.late_error_prob(1), m.late_error_prob(5));
    EXPECT_LE(m.late_error_prob(5), m.late_error_prob(7));
}

TEST(StatModel, EyeMarginPositiveAtDesignPoint) {
    GatedOscStatModel m(base_config());
    EXPECT_GT(m.eye_margin_ui(1e-12), 0.0);
}

TEST(StatModel, EyeMarginShrinksWithOffset) {
    ModelConfig cfg = base_config();
    GatedOscStatModel m0(cfg);
    cfg.freq_offset = 0.02;
    GatedOscStatModel m1(cfg);
    EXPECT_LT(m1.eye_margin_ui(), m0.eye_margin_ui());
}

TEST(Jtol, ToleranceIsLargeAtLowFrequencyAndDropsNearRate) {
    const ModelConfig cfg = base_config();
    const double lo = jtol_amplitude(cfg, 1e-4);
    const double hi = jtol_amplitude(cfg, 0.2);
    EXPECT_GT(lo, 10.0);
    EXPECT_LT(hi, 2.0);
    EXPECT_GT(hi, 0.0);
}

TEST(Jtol, CurveHasOnePointPerFrequency) {
    const auto curve =
        jtol_curve(base_config(), {1e-3, 1e-2, 1e-1}, kPaperRate);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0].freq_hz, 2.5e6, 1.0);
    EXPECT_GE(curve[0].amp_uipp, curve[2].amp_uipp);
}

TEST(StatModel, PruneFloorLeavesBerUnchanged) {
    // A 1e-18 density floor sits ~5 decades below anything the 1e-12 BER
    // integral touches; enabling it must not move the answer measurably.
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.3;      // stressed enough that BER is far from 0
    cfg.sj_freq_norm = 0.1;
    const double reference = ber_of(cfg);
    cfg.pdf_prune_floor = 1e-18;
    const double pruned = ber_of(cfg);
    ASSERT_GT(reference, 0.0);
    EXPECT_NEAR(pruned / reference, 1.0, 1e-9);
}

TEST(Ftol, PositiveAndDegradedByJitter) {
    ModelConfig cfg = base_config();
    const double clean_tol = ftol(cfg);
    EXPECT_GT(clean_tol, 0.0);
    cfg.spec.sj_uipp = 0.3;
    cfg.sj_freq_norm = 0.1;
    const double jittery_tol = ftol(cfg);
    EXPECT_LE(jittery_tol, clean_tol);
}

TEST(Ftol, ImprovedSamplingExtendsPositiveOffsetTolerance) {
    ModelConfig cfg = base_config();
    cfg.spec.sj_uipp = 0.2;
    cfg.sj_freq_norm = 0.1;
    const double base_tol = ftol(cfg);
    cfg.sampling_advance_ui = 1.0 / 8.0;
    const double improved_tol = ftol(cfg);
    EXPECT_GE(improved_tol, base_tol);
}

}  // namespace
}  // namespace gcdr::statmodel
