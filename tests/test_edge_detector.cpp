// Tests for the edge detector (Fig 7): EDET pulse generation, DDIN delay
// matching, and the tau parameterization.

#include <gtest/gtest.h>

#include "cdr/edge_detector.hpp"

namespace gcdr::cdr {
namespace {

struct Fixture {
    sim::Scheduler sched;
    Rng rng{99};
    std::unique_ptr<sim::Wire> din;
    std::unique_ptr<EdgeDetector> ed;

    explicit Fixture(EdgeDetectorParams p = {}) {
        din = std::make_unique<sim::Wire>(sched, "din", false);
        ed = std::make_unique<EdgeDetector>(sched, rng, *din, p);
    }
};

TEST(EdgeDetector, TauIsCellsTimesDelay) {
    EdgeDetectorParams p;
    p.n_cells = 4;
    p.cell_delay = SimTime::ps(75);
    EXPECT_EQ(p.tau(), SimTime::ps(300));
    Fixture f(p);
    EXPECT_EQ(f.ed->tau(), SimTime::ps(300));
}

TEST(EdgeDetector, EdetIdlesHigh) {
    Fixture f;
    f.sched.run_until(SimTime::ns(2));
    EXPECT_TRUE(f.ed->edet().value());
}

TEST(EdgeDetector, PulsesLowForTauOnEachEdge) {
    EdgeDetectorParams p;
    p.n_cells = 4;
    p.cell_delay = SimTime::ps(75);
    p.xor_delay = SimTime::ps(20);
    Fixture f(p);
    std::vector<std::pair<SimTime, bool>> edet_events;
    f.ed->edet().on_change([&] {
        edet_events.emplace_back(f.sched.now(), f.ed->edet().value());
    });
    f.sched.schedule_at(SimTime::ns(2), [&] { f.din->set_now(true); });
    f.sched.run_until(SimTime::ns(4));
    ASSERT_EQ(edet_events.size(), 2u);
    // Falls one XOR delay after the data edge...
    EXPECT_EQ(edet_events[0].first, SimTime::ns(2) + SimTime::ps(20));
    EXPECT_FALSE(edet_events[0].second);
    // ...and rises tau later.
    EXPECT_EQ(edet_events[1].first - edet_events[0].first, SimTime::ps(300));
    EXPECT_TRUE(edet_events[1].second);
}

TEST(EdgeDetector, PulsesOnBothPolarities) {
    Fixture f;
    int falls = 0;
    f.ed->edet().on_change([&] {
        if (!f.ed->edet().value()) ++falls;
    });
    f.sched.schedule_at(SimTime::ns(2), [&] { f.din->set_now(true); });
    f.sched.schedule_at(SimTime::ns(4), [&] { f.din->set_now(false); });
    f.sched.run_until(SimTime::ns(6));
    EXPECT_EQ(falls, 2);
}

TEST(EdgeDetector, DdinIsDelayedCopyThroughDummy) {
    EdgeDetectorParams p;
    p.n_cells = 4;
    p.cell_delay = SimTime::ps(75);
    p.xor_delay = SimTime::ps(20);  // dummy defaults to the same
    Fixture f(p);
    f.sched.schedule_at(SimTime::ns(1), [&] { f.din->set_now(true); });
    f.sched.run_until(SimTime::ns(3));
    EXPECT_TRUE(f.ed->ddin().value());
    // din -> 4 cells (300) -> dummy (20).
    EXPECT_EQ(f.ed->ddin().last_change(), SimTime::ns(1) + SimTime::ps(320));
}

TEST(EdgeDetector, ConsecutiveEdgesEachGetAPulse) {
    // Alternating data at 400 ps spacing with tau = 300 ps: EDET must
    // return high between edges (tau < T).
    EdgeDetectorParams p;
    p.n_cells = 4;
    p.cell_delay = SimTime::ps(75);
    Fixture f(p);
    int falls = 0;
    f.ed->edet().on_change([&] {
        if (!f.ed->edet().value()) ++falls;
    });
    for (int i = 0; i < 10; ++i) {
        const bool v = i % 2 == 0;
        f.sched.schedule_at(SimTime::ns(2) + SimTime::ps(400) * i,
                            [&f, v] { f.din->set_now(v); });
    }
    f.sched.run_until(SimTime::ns(10));
    EXPECT_EQ(falls, 10);
}

TEST(EdgeDetector, TauAboveBitPeriodMergesPulses) {
    // tau = 1.2 UI with alternating data: DIN and delayed DIN never agree,
    // EDET stays low — the upper bound of the reliable window (Sec. 3.3a).
    EdgeDetectorParams p;
    p.n_cells = 4;
    p.cell_delay = SimTime::ps(120);  // tau = 480 ps > 400 ps
    Fixture f(p);
    for (int i = 0; i < 20; ++i) {
        const bool v = i % 2 == 0;
        f.sched.schedule_at(SimTime::ns(2) + SimTime::ps(400) * i,
                            [&f, v] { f.din->set_now(v); });
    }
    f.sched.run_until(SimTime::ns(2) + SimTime::ps(400 * 10));
    EXPECT_FALSE(f.ed->edet().value());
}

}  // namespace
}  // namespace gcdr::cdr
