// Tests for src/mc/: interval math against externally computed reference
// values, tally merge semantics, the run-length law, and the three
// rare-event engines cross-validated against the statistical model.

#include <gtest/gtest.h>

#include <cmath>

#include "exec/thread_pool.hpp"
#include "mc/direct.hpp"
#include "mc/estimator.hpp"
#include "mc/importance.hpp"
#include "mc/margin_model.hpp"
#include "mc/splitting.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr::mc {
namespace {

// ---------------------------------------------------------------------------
// Intervals (references computed with arbitrary-precision binomial sums)

TEST(Intervals, ClopperPearsonReferenceValues) {
    struct Case {
        std::uint64_t k, n;
        double lo, hi;
    };
    const Case cases[] = {
        {0, 30, 0.0, 0.1157033082},
        {1, 10, 0.002528578544, 0.445016117},
        {5, 100, 0.01643187918, 0.1128349111},
        {3, 1000000, 6.186725502e-7, 8.767247788e-6},
        {10, 100000, 4.795489514e-5, 1.838958454e-4},
        {50, 1000, 0.0373353976, 0.06539048792},
    };
    for (const Case& c : cases) {
        const Interval iv = clopper_pearson_interval(c.k, c.n, 0.95);
        EXPECT_NEAR(iv.lo, c.lo, 1e-8 * (c.lo > 0 ? c.lo : 1.0))
            << "k=" << c.k << " n=" << c.n;
        EXPECT_NEAR(iv.hi, c.hi, 1e-8 * c.hi) << "k=" << c.k << " n=" << c.n;
    }
}

TEST(Intervals, WilsonReferenceValues) {
    const Interval a = wilson_interval(5, 100, 0.95);
    EXPECT_NEAR(a.lo, 0.02154367915, 1e-9);
    EXPECT_NEAR(a.hi, 0.1117504692, 1e-9);
    const Interval b = wilson_interval(0, 30, 0.95);
    EXPECT_DOUBLE_EQ(b.lo, 0.0);
    EXPECT_NEAR(b.hi, 0.1135133932, 1e-9);
    const Interval c = wilson_interval(10, 100000, 0.95);
    EXPECT_NEAR(c.lo, 5.432073451e-5, 1e-12);
    EXPECT_NEAR(c.hi, 1.840846955e-4, 1e-12);
}

TEST(Intervals, WilsonNarrowerThanClopperPearson) {
    // CP is exact hence conservative; the Wilson approximation is
    // strictly narrower (its endpoints can poke past CP's at very low
    // counts, so the invariant is on the width, not nesting).
    for (std::uint64_t k : {2ull, 10ull, 40ull}) {
        const Interval cp = clopper_pearson_interval(k, 200, 0.95);
        const Interval w = wilson_interval(k, 200, 0.95);
        EXPECT_LT(w.hi - w.lo, cp.hi - cp.lo) << "k=" << k;
    }
}

TEST(Intervals, ZValueMatchesStandardQuantiles) {
    EXPECT_NEAR(z_value(0.95), 1.959963985, 1e-6);
    EXPECT_NEAR(z_value(0.99), 2.575829304, 1e-6);
}

// ---------------------------------------------------------------------------
// WeightedTally

TEST(WeightedTally, MomentsAndEss) {
    WeightedTally t;
    t.add(0.0);
    t.add(2.0);
    t.add(2.0);
    t.add(0.0);
    EXPECT_EQ(t.n(), 4u);
    EXPECT_DOUBLE_EQ(t.mean(), 1.0);
    // ESS = (sum w)^2 / sum w^2 = 16 / 8.
    EXPECT_DOUBLE_EQ(t.ess(), 2.0);
}

TEST(WeightedTally, MergeMatchesSequentialAdds) {
    WeightedTally seq, a, b;
    for (int i = 0; i < 10; ++i) {
        const double w = 0.1 * i;
        seq.add(w);
        (i < 5 ? a : b).add(w);
    }
    a.merge(b);
    EXPECT_EQ(a.n(), seq.n());
    EXPECT_DOUBLE_EQ(a.sum(), seq.sum());
    EXPECT_DOUBLE_EQ(a.sum_sq(), seq.sum_sq());
}

// ---------------------------------------------------------------------------
// Run-length law

TEST(RunLength, PmfSumsToOneWithCapAtom) {
    const auto pmf = run_length_pmf(5);
    ASSERT_EQ(pmf.size(), 5u);
    double sum = 0.0;
    for (double p : pmf) sum += p;
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(pmf[0], 0.5);
    EXPECT_DOUBLE_EQ(pmf[4], 0.0625);       // 2^-(cap-1) atom
    EXPECT_DOUBLE_EQ(mean_run_length(pmf), 1.9375);
}

TEST(RunLength, InverseCdfCoversSupport) {
    const auto pmf = run_length_pmf(5);
    EXPECT_EQ(run_length_from_uniform(pmf, 0.0), 1);
    EXPECT_EQ(run_length_from_uniform(pmf, 0.49), 1);
    EXPECT_EQ(run_length_from_uniform(pmf, 0.51), 2);
    EXPECT_EQ(run_length_from_uniform(pmf, 0.999), 5);
}

// ---------------------------------------------------------------------------
// Engines vs the statistical model (all deterministic: fixed seeds)

TEST(ImportanceSampling, AgreesWithStatmodelAtRarePoint) {
    // Mid-bit sampling with a 3% frequency offset: BER ~ 3e-11, far
    // beyond direct counting. The IS estimate must land inside its own
    // 95% CI around the closed-form value with rel err well under 0.3.
    statmodel::ModelConfig cfg;
    cfg.freq_offset = 0.03;
    const double sm = statmodel::ber_of(cfg);
    ASSERT_GT(sm, 0.0);
    ASSERT_LT(sm, 1e-10);

    AnalyticMarginModel model(cfg);
    ImportanceSampler::Config ic;
    ic.budget.target_rel_err = 0.1;
    ic.budget.max_evals = 1'500'000;
    ImportanceSampler is(model, ic);
    exec::ThreadPool pool(2);
    const McEstimate e = is.estimate(pool);
    EXPECT_TRUE(e.converged);
    EXPECT_LE(e.rel_err(), 0.3);
    EXPECT_TRUE(e.contains(sm))
        << "IS " << e.mean << " ci=[" << e.ci.lo << "," << e.ci.hi
        << "] statmodel " << sm;
}

TEST(ImportanceSampling, BitIdenticalAcrossThreadCounts) {
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.20;
    cfg.sj_freq_norm = 0.5;
    AnalyticMarginModel model(cfg);
    ImportanceSampler::Config ic;
    ic.budget.target_rel_err = 0.15;
    ic.budget.max_evals = 600'000;
    ImportanceSampler is(model, ic);
    exec::ThreadPool serial(1);
    exec::ThreadPool wide(4);
    const McEstimate a = is.estimate(serial);
    const McEstimate b = is.estimate(wide);
    EXPECT_EQ(a.mean, b.mean);  // exact, not approximate
    EXPECT_EQ(a.std_err, b.std_err);
    EXPECT_EQ(a.n_samples, b.n_samples);
}

TEST(DirectSampler, MatchesStatmodelAtEasyPoint) {
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.30;
    cfg.sj_freq_norm = 0.5;
    const double sm = statmodel::ber_of(cfg);
    AnalyticMarginModel model(cfg);
    DirectSampler::Config dc;
    dc.budget.max_evals = 1u << 18;
    DirectSampler direct(model, dc);
    exec::ThreadPool pool(2);
    const McEstimate e = direct.estimate(pool);
    // Unbiased control: the exact-CP interval around the counted
    // fraction must cover the closed-form value (the statmodel's grid
    // discretization sits well inside the ~10% interval here).
    EXPECT_TRUE(e.contains(sm))
        << "direct " << e.mean << " ci=[" << e.ci.lo << "," << e.ci.hi
        << "] statmodel " << sm;
    EXPECT_GT(e.mean, 0.0);
}

TEST(DirectSampler, BitIdenticalAcrossThreadCounts) {
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.30;
    cfg.sj_freq_norm = 0.5;
    AnalyticMarginModel model(cfg);
    DirectSampler::Config dc;
    dc.budget.max_evals = 1u << 16;
    DirectSampler direct(model, dc);
    exec::ThreadPool serial(1);
    exec::ThreadPool wide(4);
    const McEstimate a = direct.estimate(serial);
    const McEstimate b = direct.estimate(wide);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.n_samples, b.n_samples);
}

TEST(Splitting, OrderOfMagnitudeAtRarePoint) {
    // Splitting's CI is approximate (chain correlation), so the gate is
    // deliberately coarse: within a factor of 6 of the closed form at a
    // ~3e-7 point, under the default fixed seed.
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.20;
    cfg.sj_freq_norm = 0.5;
    const double sm = statmodel::ber_of(cfg);
    AnalyticMarginModel model(cfg);
    SplittingEngine::Config sc;
    sc.budget.max_evals = 400'000;
    SplittingEngine split(model, sc);
    exec::ThreadPool pool(2);
    const McEstimate e = split.estimate(pool);
    EXPECT_GT(e.mean, sm / 6.0);
    EXPECT_LT(e.mean, sm * 6.0);
}

TEST(Splitting, BitIdenticalAcrossThreadCounts) {
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.20;
    cfg.sj_freq_norm = 0.5;
    AnalyticMarginModel model(cfg);
    SplittingEngine::Config sc;
    sc.budget.max_evals = 200'000;
    SplittingEngine split(model, sc);
    exec::ThreadPool serial(1);
    exec::ThreadPool wide(4);
    const McEstimate a = split.estimate(serial);
    const McEstimate b = split.estimate(wide);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.n_samples, b.n_samples);
}

// ---------------------------------------------------------------------------
// Behavioral margin model (event-driven channel as the sampled oracle)

TEST(BehavioralModel, NominalRunsHaveHealthyMargins) {
    statmodel::ModelConfig cfg;
    BehavioralMarginModel beh(BehavioralMarginModel::params_from(cfg));
    RunSample s;  // all latent coordinates nominal
    for (int l = 1; l <= beh.max_run_length(); ++l) {
        s.run_length = l;
        s.noise_seed = 100 + static_cast<std::uint64_t>(l);
        EXPECT_GT(beh.margin_ui(s), 0.0) << "run length " << l;
    }
}

TEST(BehavioralModel, DeterministicReplayFromLatentState) {
    // Clone-and-restart contract: the margin is a pure function of
    // (latent vector, noise_seed) — two fresh evaluations bit-match.
    statmodel::ModelConfig cfg;
    cfg.spec.sj_uipp = 0.30;
    cfg.sj_freq_norm = 0.5;
    BehavioralMarginModel beh(BehavioralMarginModel::params_from(cfg));
    RunSample s;
    s.run_length = 3;
    s.u_dj = 0.1;
    s.z_edge = -1.5;
    s.u_phase = 0.7;
    s.noise_seed = 777;
    const double a = beh.margin_ui(s);
    const double b = beh.margin_ui(s);
    EXPECT_EQ(a, b);
}

TEST(BehavioralModel, DeepEdgeDisplacementFlipsTheBit) {
    // Push the closing edge far enough and the recovered word changes:
    // the indicator must report an error (negative margin).
    statmodel::ModelConfig cfg;
    BehavioralMarginModel beh(BehavioralMarginModel::params_from(cfg));
    RunSample s;
    s.run_length = 1;
    s.noise_seed = 5;
    s.z_edge = -30.0;  // -30 sigma of RJ ~ -0.63 UI: past the eye edge
    EXPECT_LT(beh.margin_ui(s), 0.0);
}

}  // namespace
}  // namespace gcdr::mc
