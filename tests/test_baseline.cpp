// Tests for the baseline CDRs (bang-bang PLL and phase interpolator):
// tracking behaviour, frequency-offset absorption, and the loop-bandwidth
// JTOL corner that distinguishes them from the gated oscillator.

#include <gtest/gtest.h>

#include "cdr/baseline.hpp"
#include "encoding/prbs.hpp"

namespace gcdr::cdr {
namespace {

jitter::JitterSpec mild_spec() {
    jitter::JitterSpec s;
    s.dj_uipp = 0.1;
    s.rj_uirms = 0.01;
    s.sj_uipp = 0.0;
    return s;
}

std::vector<bool> prbs_bits(std::size_t n) {
    encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
    return gen.bits(n);
}

TEST(BangBang, CleanTrackingIsErrorFree) {
    BangBangCdr cdr({});
    Rng rng(1);
    const auto res = cdr.run(prbs_bits(50000), mild_spec(), kPaperRate, rng);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GT(res.bits, 40000u);
    EXPECT_LT(res.extrapolated_ber(), 1e-12);
}

TEST(BangBang, AbsorbsFrequencyOffsetViaIntegralPath) {
    BangBangCdr::Config cfg;
    cfg.freq_offset = 200e-6;  // 200 ppm, in-spec
    BangBangCdr cdr(cfg);
    Rng rng(2);
    const auto res = cdr.run(prbs_bits(50000), mild_spec(), kPaperRate, rng);
    EXPECT_EQ(res.errors, 0u);
}

TEST(BangBang, TracksLowFrequencySjOfManyUi) {
    // 8 UIpp at f/100000: far beyond the eye, but the loop follows it.
    jitter::JitterSpec spec = mild_spec();
    spec.sj_uipp = 8.0;
    spec.sj_freq_hz = kPaperRate.bits_per_second() / 100000.0;
    BangBangCdr cdr({});
    Rng rng(3);
    const auto res = cdr.run(prbs_bits(200000), spec, kPaperRate, rng);
    EXPECT_EQ(res.errors, 0u);
}

TEST(BangBang, FailsOnLargeSjAboveLoopBandwidth) {
    jitter::JitterSpec spec = mild_spec();
    spec.sj_uipp = 1.5;
    spec.sj_freq_hz = kPaperRate.bits_per_second() / 20.0;  // f/20
    BangBangCdr cdr({});
    Rng rng(4);
    const auto res = cdr.run(prbs_bits(50000), spec, kPaperRate, rng);
    EXPECT_GT(res.errors, 0u);
}

TEST(BangBang, JtolRollsOffWithFrequency) {
    const auto base = mild_spec();
    BangBangCdr cdr({});
    const double lo = baseline_jtol_amplitude(cdr, 1e-5, base, kPaperRate,
                                              30000, 11);
    const double hi = baseline_jtol_amplitude(cdr, 0.05, base, kPaperRate,
                                              30000, 11);
    EXPECT_GT(lo, hi);
    EXPECT_GT(lo, 2.0);
    EXPECT_LT(hi, 2.0);
}

TEST(PhaseInterpolator, CleanTrackingIsErrorFree) {
    PhaseInterpolatorCdr cdr({});
    Rng rng(5);
    const auto res = cdr.run(prbs_bits(50000), mild_spec(), kPaperRate, rng);
    EXPECT_EQ(res.errors, 0u);
}

TEST(PhaseInterpolator, AbsorbsSmallFrequencyOffset) {
    PhaseInterpolatorCdr::Config cfg;
    cfg.freq_offset = 100e-6;
    PhaseInterpolatorCdr cdr(cfg);
    Rng rng(6);
    const auto res = cdr.run(prbs_bits(100000), mild_spec(), kPaperRate, rng);
    EXPECT_EQ(res.errors, 0u);
}

TEST(PhaseInterpolator, SlewLimitFailsLargeFastSj) {
    // Max slew = 1 step / update: SJ slope beyond that cannot be tracked.
    jitter::JitterSpec spec = mild_spec();
    spec.sj_uipp = 2.0;
    spec.sj_freq_hz = kPaperRate.bits_per_second() / 50.0;
    PhaseInterpolatorCdr cdr({});
    Rng rng(7);
    const auto res = cdr.run(prbs_bits(50000), spec, kPaperRate, rng);
    EXPECT_GT(res.errors, 0u);
}

TEST(PhaseInterpolator, QuantizationLeavesResidualMarginLoss) {
    // Coarser interpolator -> larger dither -> smaller minimum margin.
    jitter::JitterSpec spec = mild_spec();
    PhaseInterpolatorCdr::Config fine_cfg;
    fine_cfg.phase_steps = 128;
    PhaseInterpolatorCdr::Config coarse_cfg;
    coarse_cfg.phase_steps = 8;
    Rng rng_a(8), rng_b(8);
    const auto fine =
        PhaseInterpolatorCdr(fine_cfg).run(prbs_bits(30000), spec,
                                           kPaperRate, rng_a);
    const auto coarse =
        PhaseInterpolatorCdr(coarse_cfg).run(prbs_bits(30000), spec,
                                             kPaperRate, rng_b);
    const auto min_of = [](const std::vector<double>& v) {
        return *std::min_element(v.begin(), v.end());
    };
    EXPECT_GT(min_of(fine.margins_ui), min_of(coarse.margins_ui));
}

TEST(BaselineResult, CountedBerMath) {
    BaselineResult r;
    r.bits = 1000;
    r.errors = 5;
    EXPECT_DOUBLE_EQ(r.counted_ber(), 5e-3);
}

}  // namespace
}  // namespace gcdr::cdr
