// Multi-channel receiver (the paper's Fig 2/Fig 6 scenario): four
// 2.5 Gb/s lanes share one PLL-derived control current; each lane carries
// 8b/10b-encoded payload with its own skew and jitter; recovered symbols
// cross into the system clock domain through elastic buffers and are
// decoded back to bytes.
//
// Uses the per-channel-scheduler receiver mode: every lane owns a private
// event queue and a long_jump-separated RNG stream, and the four lanes
// execute concurrently on an exec::ThreadPool. Each lane's recovered bits
// depend only on (seed, lane, its input edges), so the decoded output is
// identical to a serial run.

#include <cstdio>
#include <string>

#include "cdr/multichannel.hpp"
#include "encoding/enc8b10b.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

using namespace gcdr;

namespace {

/// Build an 8b/10b frame: comma alignment preamble, then payload bytes.
std::vector<bool> encode_lane_payload(const std::string& payload,
                                      encoding::Encoder8b10b& enc) {
    std::vector<encoding::CodePoint> cps;
    for (int i = 0; i < 8; ++i) cps.push_back(encoding::kK28_5);
    for (char c : payload) {
        cps.push_back({static_cast<std::uint8_t>(c), false});
    }
    return enc.encode_stream(cps);
}

}  // namespace

int main() {
    Rng rng(7);  // drives the lane payload jitter realizations

    // Full-receiver telemetry: kernel, per-channel CDR blocks, elastic
    // buffers and the lock surface all report into one registry. The
    // instruments are thread-safe, so all four lane schedulers share the
    // "sim" prefix: the counters aggregate across lanes.
    obs::MetricsRegistry metrics;

    auto cfg = cdr::MultiChannelConfig::paper_receiver();
    cdr::MultiChannelCdr rx(/*seed=*/7, cfg);  // per-channel schedulers
    rx.attach_metrics(metrics);
    for (int lane = 0; lane < rx.n_channels(); ++lane) {
        rx.scheduler(lane).attach_metrics(&metrics);
    }
    std::printf("shared PLL locked: HFCK = %.6f GHz, IC = %.1f uA\n\n",
                rx.pll().vco_frequency_hz() / 1e9,
                rx.pll().control_current_a() * 1e6);

    const std::string payloads[4] = {
        "lane0: gated oscillator CDR",
        "lane1: 2.5 Gbit/s per channel",
        "lane2: 8b/10b keeps runs <= 5",
        "lane3: skew tolerated per lane",
    };

    // Each lane: own skew (the motivation for per-channel CDR, Sec. 2.1),
    // own jitter realization, same data rate.
    const SimTime skews[4] = {SimTime::ps(0), SimTime::ps(730),
                              SimTime::ps(1490), SimTime::ps(260)};
    std::size_t lane_bits = 0;
    for (int lane = 0; lane < rx.n_channels(); ++lane) {
        encoding::Encoder8b10b enc;
        const auto bits = encode_lane_payload(payloads[lane], enc);
        lane_bits = std::max(lane_bits, bits.size());
        jitter::StreamParams sp;
        sp.spec = jitter::JitterSpec::paper_table1();
        sp.start = SimTime::ns(4) + skews[lane];
        rx.drive(lane, jitter::jittered_edges(bits, sp, rng));
    }
    exec::ThreadPool pool(static_cast<std::size_t>(rx.n_channels()));
    rx.run_until(SimTime::ns(8) +
                     kPaperRate.ui_to_time(static_cast<double>(lane_bits)),
                 &pool);

    // Drain the recovered streams through the elastic buffers, then
    // comma-align and decode each lane.
    const auto lanes = rx.drain_elastic();
    for (int lane = 0; lane < rx.n_channels(); ++lane) {
        const auto& bits = lanes[lane];
        const auto align = encoding::find_comma_alignment(bits);
        std::printf("lane %d: %zu bits, comma at %s", lane, bits.size(),
                    align ? std::to_string(*align).c_str() : "none");
        if (!align) {
            std::printf(" -> FAILED\n");
            continue;
        }
        encoding::Decoder8b10b dec;
        std::string text;
        int bad = 0;
        for (std::size_t i = *align; i + 10 <= bits.size(); i += 10) {
            std::uint16_t sym = 0;
            for (int b = 0; b < 10; ++b) {
                sym = static_cast<std::uint16_t>((sym << 1) | bits[i + b]);
            }
            const auto res = dec.decode(sym);
            if (!res) {
                ++bad;
                continue;
            }
            if (!res->code.is_control && std::isprint(res->code.byte)) {
                text.push_back(static_cast<char>(res->code.byte));
            }
        }
        std::printf(", %d bad symbols\n  decoded: \"%s\"\n", bad,
                    text.c_str());
        std::printf("  elastic buffer: occ %zu, skips +%llu/-%llu, "
                    "under/overflows %llu/%llu\n",
                    rx.elastic(lane).occupancy(),
                    static_cast<unsigned long long>(
                        rx.elastic(lane).skips_inserted()),
                    static_cast<unsigned long long>(
                        rx.elastic(lane).skips_dropped()),
                    static_cast<unsigned long long>(
                        rx.elastic(lane).underflows()),
                    static_cast<unsigned long long>(
                        rx.elastic(lane).overflows()));
    }

    // Telemetry snapshot: the same registry a bench would dump via --json.
    std::printf("\n--- telemetry ---\n");
    std::printf("kernel: %llu events executed, queue high-water %.0f, "
                "sim/wall ratio %.2e\n",
                static_cast<unsigned long long>(
                    metrics.counter("sim.events_executed").value()),
                metrics.gauge("sim.queue_high_water").value(),
                metrics.gauge("sim.sim_wall_ratio").value());
    std::printf("lock: PLL %s, %d/%d channels locked\n",
                metrics.gauge("cdr.pll.locked").value() > 0.5 ? "locked"
                                                             : "UNLOCKED",
                static_cast<int>(
                    metrics.gauge("cdr.locked_channels").value()),
                rx.n_channels());
    for (int lane = 0; lane < rx.n_channels(); ++lane) {
        const std::string ch = "cdr.ch" + std::to_string(lane);
        std::printf(
            "%s: %llu edet pulses, %llu gcco restarts, %llu decisions, "
            "elastic occ [%.0f, %.0f]\n",
            ch.c_str(),
            static_cast<unsigned long long>(
                metrics.counter(ch + ".edet.pulses").value()),
            static_cast<unsigned long long>(
                metrics.counter(ch + ".gcco.restarts").value()),
            static_cast<unsigned long long>(
                metrics.counter(ch + ".decisions").value()),
            metrics.gauge(ch + ".elastic.occupancy_low_water").value(),
            metrics.gauge(ch + ".elastic.occupancy_high_water").value());
    }
    return 0;
}
