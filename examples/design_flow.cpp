// The paper's top-down design flow, end to end (its Sec. 5 thesis:
// "a complete top-down approach can be implemented in the design of
// demanding high-speed analog ICs"):
//
//   1. system spec      -> jitter budget (Table 1) and BER target
//   2. statistical model-> feasibility: JTOL/FTOL at 1e-12 (Figs 9/10)
//   3. phase-noise math -> oscillator bias from the CKJ budget (Fig 11)
//   4. behavioral model -> time-domain verification of the netlist,
//                          sampling-point improvement (Figs 13-17)
//   5. transistor level -> CML cell transient sanity (Fig 18)

#include <algorithm>
#include <cstdio>

#include "analog/cml_cells.hpp"
#include "analog/transient.hpp"
#include "ber/bert.hpp"
#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"
#include "noise/phase_noise.hpp"
#include "statmodel/gated_osc_model.hpp"

using namespace gcdr;

int main() {
    std::printf("=== Step 1: system specification ===\n");
    const double ber_target = 1e-12;
    auto spec = jitter::JitterSpec::paper_table1();
    std::printf("2.5 Gb/s/channel, BER <= 1e-12, DJ %.2f UIpp, RJ %.3f "
                "UIrms, CKJ %.3f UIrms @ CID 5\n\n",
                spec.dj_uipp, spec.rj_uirms, spec.ckj_uirms);

    std::printf("=== Step 2: statistical feasibility ===\n");
    statmodel::ModelConfig stat;
    stat.grid_dx = 1e-3;
    std::printf("BER at budget (no SJ): 1e%.1f\n",
                std::log10(std::max(1e-40, statmodel::ber_of(stat))));
    std::printf("FTOL: +-%.2f%%  (data-rate spec is only +-100 ppm)\n",
                statmodel::ftol(stat, ber_target) * 100);
    std::printf("JTOL at f/10: %.2f UIpp, at f/1000: %.2f UIpp\n\n",
                statmodel::jtol_amplitude(stat, 0.1, ber_target),
                statmodel::jtol_amplitude(stat, 1e-3, ber_target));

    std::printf("=== Step 3: oscillator sizing from phase noise ===\n");
    noise::RingOscParams proto;
    proto.n_stages = 4;
    proto.f_osc_hz = 2.5e9;
    proto.delta_v_v = 0.4;
    auto sized = noise::size_for_jitter(proto, spec.ckj_uirms, 5, kPaperRate);
    sized.i_ss_a = std::max(sized.i_ss_a,
                            noise::min_bias_for_parasitics(proto, 30e-15));
    const auto budget = noise::channel_power_budget(
        sized, 4, 3, 3.0 * sized.power_w(), 4);
    std::printf("bias %.0f uA/stage -> channel %.2f mW = %.2f mW/Gbit/s "
                "(claim: <= 5)\n\n",
                sized.i_ss_a * 1e6, budget.total_w() * 1e3,
                budget.mw_per_gbps(kPaperRate));

    std::printf("=== Step 4: behavioral verification ===\n");
    for (const bool improved : {false, true}) {
        sim::Scheduler sched;
        Rng rng(5);
        auto cfg = cdr::ChannelConfig::nominal(2.375e9);  // -5% stress
        cfg.improved_sampling = improved;
        cdr::GccoChannel ch(sched, rng, cfg);
        encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
        jitter::StreamParams sp;
        sp.spec = spec;
        sp.spec.sj_uipp = 0.1;
        sp.spec.sj_freq_hz = 250e6;
        sp.start = SimTime::ns(4);
        const std::size_t n = 25000;
        ch.drive(jitter::jittered_edges(gen.bits(n), sp, rng));
        sched.run_until(sp.start + cfg.rate.ui_to_time(n - 4.0));
        double worst = 1.0;
        for (double m : ch.margins_ui()) worst = std::min(worst, m);
        std::printf("%s sampling: eye %.2f UI, worst margin %.3f UI, "
                    "BER %.2g\n",
                    improved ? "advanced (Fig 15)" : "mid-bit (Fig 7)  ",
                    ch.eye().eye_opening_ui(), worst,
                    ch.measured_prbs_ber(encoding::PrbsOrder::kPrbs7));
    }

    std::printf("\n=== Step 5: transistor-level sanity ===\n");
    analog::Circuit ckt;
    analog::CmlNetlist nl(ckt, analog::CmlCellParams{});
    auto trig = nl.net("trig");
    ckt.add_voltage_source(trig.p, analog::kGround, 1.8);
    ckt.add_voltage_source(trig.n, analog::kGround, 1.4);
    const auto ring = analog::build_cml_ring(nl, trig);
    analog::TransientSim sim(ckt);
    if (!sim.solve_dc()) {
        std::printf("DC failed\n");
        return 1;
    }
    std::vector<double> rises;
    double prev = analog::diff_v(sim, ring.ckout);
    sim.run_until(20e-9, 2e-12, [&](const analog::TransientSim& s) {
        const double v = analog::diff_v(s, ring.ckout);
        if (prev < 0.0 && v >= 0.0 && s.time_s() > 4e-9) {
            rises.push_back(s.time_s());
        }
        prev = v;
    });
    if (rises.size() >= 2) {
        const double period = (rises.back() - rises.front()) /
                              static_cast<double>(rises.size() - 1);
        std::printf("CML ring oscillates at %.2f GHz (transistor level)\n",
                    1e-9 / period);
    }
    std::printf("\nFlow complete: spec -> statistics -> sizing -> "
                "behavior -> transistors.\n");
    return 0;
}
