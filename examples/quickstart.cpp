// Quickstart: recover a jittered 2.5 Gb/s PRBS7 stream with one
// gated-oscillator CDR channel and inspect the result.
//
//   $ ./quickstart
//
// Walks the minimal API surface: configure a channel, generate a jittered
// bit stream, run the event-driven simulation, and read back the recovered
// bits, the clock-aligned eye and the BER.

#include <cstdio>

#include "ber/bert.hpp"
#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"
#include "jitter/jitter.hpp"

using namespace gcdr;

int main() {
    // 1. A simulation kernel and a seeded random source: identical seeds
    //    give bit-identical runs.
    sim::Scheduler sched;
    Rng rng(2024);

    // 2. One CDR channel. `nominal` sizes the edge detector (tau = 0.55 UI)
    //    and the oscillator jitter for the paper's 0.01 UIrms budget; here
    //    the oscillator free-runs 1% below the data rate to make the CDR
    //    work for its living.
    cdr::ChannelConfig cfg = cdr::ChannelConfig::nominal(2.475e9);
    cfg.eye_bins = 100;  // ASCII eye width
    cdr::GccoChannel channel(sched, rng, cfg);

    // 3. 20'000 bits of PRBS7 with the paper's Table 1 jitter budget plus
    //    0.1 UIpp of sinusoidal jitter at 25 MHz.
    encoding::PrbsGenerator prbs(encoding::PrbsOrder::kPrbs7);
    jitter::StreamParams stream;
    stream.spec = jitter::JitterSpec::paper_table1();
    stream.spec.sj_uipp = 0.1;
    stream.spec.sj_freq_hz = 25e6;
    stream.start = SimTime::ns(4);
    const std::size_t n_bits = 20000;
    channel.drive(jitter::jittered_edges(prbs.bits(n_bits), stream, rng));

    // 4. Run until just before the data ends (the oscillator itself never
    //    stops).
    sched.run_until(stream.start + cfg.rate.ui_to_time(n_bits - 4.0));

    // 5. Results.
    std::printf("recovered bits   : %zu\n", channel.decisions().size());
    std::printf("counted BER      : %.3g\n",
                channel.measured_prbs_ber(encoding::PrbsOrder::kPrbs7));
    std::printf("extrapolated BER : %.3g\n",
                ber::extrapolate_ber_from_margins(channel.margins_ui()));
    std::printf("eye opening      : %.3f UI\n\n",
                channel.eye().eye_opening_ui());
    std::printf("%s", channel.eye().ascii_art(10, 0.0).c_str());
    std::printf("(eye is folded against the recovered clock; the sampling "
                "instant is the left edge)\n");
    return 0;
}
