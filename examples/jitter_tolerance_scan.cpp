// Jitter-tolerance scan: sweep sinusoidal jitter frequency, find the
// largest amplitude the CDR tolerates at a BER target, and check the curve
// against a standard receiver mask — the workflow behind the paper's
// JTOL discussion (Figs 5/9/10), runnable against both the statistical
// model (fast, 1e-12 target) and the behavioral channel (slower,
// error-count target).

#include <cstdio>

#include "cdr/channel.hpp"
#include "encoding/prbs.hpp"
#include "masks/jtol_mask.hpp"
#include "statmodel/gated_osc_model.hpp"
#include "util/mathx.hpp"

using namespace gcdr;

namespace {

/// Behavioral JTOL probe: largest SJ amplitude with zero counted errors
/// over n_bits (coarse 8-step bisection).
double behavioral_jtol(double sj_freq_hz, std::size_t n_bits) {
    auto errors_at = [&](double amp) {
        sim::Scheduler sched;
        Rng rng(11);
        auto cfg = cdr::ChannelConfig::nominal(2.5e9);
        cdr::GccoChannel ch(sched, rng, cfg);
        encoding::PrbsGenerator gen(encoding::PrbsOrder::kPrbs7);
        jitter::StreamParams sp;
        sp.spec = jitter::JitterSpec::paper_table1();
        sp.spec.sj_uipp = amp;
        sp.spec.sj_freq_hz = sj_freq_hz;
        sp.start = SimTime::ns(4);
        ch.drive(jitter::jittered_edges(gen.bits(n_bits), sp, rng));
        sched.run_until(sp.start +
                        cfg.rate.ui_to_time(static_cast<double>(n_bits) - 4));
        return ch.measured_prbs_ber(encoding::PrbsOrder::kPrbs7);
    };
    double lo = 0.0, hi = 4.0;
    if (errors_at(hi) == 0.0) return hi;
    for (int i = 0; i < 8; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (errors_at(mid) == 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

}  // namespace

int main() {
    const auto mask = masks::JtolMask::infiniband_2g5();
    statmodel::ModelConfig stat;
    stat.grid_dx = 1e-3;

    std::printf("JTOL scan at 2.5 Gb/s under the Table 1 jitter budget\n\n");
    std::printf("%12s | %12s | %14s | %10s\n", "SJ freq", "stat @1e-12",
                "behavioral*", "IB mask");
    std::printf("%12s | %12s | %14s | %10s\n", "[Hz]", "[UIpp]", "[UIpp]",
                "[UIpp]");
    for (double f : logspace(1e5, 1e9, 9)) {
        const double fn = f / kPaperRate.bits_per_second();
        const double stat_tol =
            statmodel::jtol_amplitude(stat, fn, 1e-12, 32.0);
        const double beh_tol = behavioral_jtol(f, 4000);
        std::printf("%12.3g | %12.3f | %14.3f | %10.3f\n", f, stat_tol,
                    beh_tol, mask.amplitude_at(f));
    }
    std::printf(
        "\n* error-free over 4k bits (cap 4 UIpp) — a much weaker criterion\n"
        "  than 1e-12, so the two columns agree in shape, not in level.\n"
        "  Both show the gated oscillator's signature: flat tolerance at\n"
        "  high jitter frequency, 1/f growth below ~1/(CID) of the rate.\n");
    return 0;
}
