#pragma once
// Jitter models applied to the incoming data stream and to the recovered
// clock, matching Sec. 3.1: deterministic jitter (uniform PDF), random
// jitter (Gaussian PDF), sinusoidal jitter (arcsine stationary PDF), plus
// the oscillator's per-cycle jitter.

#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace gcdr::jitter {

/// Table 1 of the paper: the jitter budget all simulations use.
struct JitterSpec {
    double dj_uipp = 0.4;      ///< deterministic jitter, UI peak-peak
    double rj_uirms = 0.021;   ///< random jitter, UI RMS (0.3 UIpp at Q=7)
    double sj_uipp = 0.0;      ///< sinusoidal jitter amplitude, UI peak-peak
    double sj_freq_hz = 0.0;   ///< sinusoidal jitter frequency
    double ckj_uirms = 0.01;   ///< oscillator jitter at CID=5, UI RMS

    /// The paper's Table 1 values at 2.5 Gb/s (SJ swept by the experiments).
    static JitterSpec paper_table1() { return JitterSpec{}; }
};

/// Deterministic time-domain phase of sinusoidal jitter, in UI:
/// (A/2) * sin(2*pi*f*t + phase0). Peak-peak amplitude = A.
class SinusoidalJitter {
public:
    SinusoidalJitter(double amp_uipp, double freq_hz, double phase0 = 0.0)
        : amp_ui_(amp_uipp / 2.0), freq_hz_(freq_hz), phase0_(phase0) {}

    [[nodiscard]] double at(double t_seconds) const;

    [[nodiscard]] double amplitude_uipp() const { return 2.0 * amp_ui_; }
    [[nodiscard]] double frequency_hz() const { return freq_hz_; }

private:
    double amp_ui_;
    double freq_hz_;
    double phase0_;
};

/// One transition of an NRZ waveform.
struct Edge {
    SimTime time;
    bool value;  ///< level after the transition
};

/// How deterministic jitter is realized in the time domain. All three
/// models have the Table 1 uniform(+-DJpp/2) stationary PDF or bound, but
/// differ in edge-to-edge correlation — which is what the retriggering
/// CDR actually responds to:
///  - kTriangleSweep: a slow triangle-wave phase sweep (BERT-style DJ
///    generation; uniform PDF, neighbouring edges see nearly equal DJ so
///    the gated oscillator tracks it). Matches the paper's open Fig 14
///    eyes under the full 0.4 UIpp budget.
///  - kIndependent: fresh uniform draw per edge (worst case; single-bit
///    pulses can shrink by DJpp, stressing the EDET merge limit).
///  - kIsi: first-order inter-symbol interference — an edge closing a run
///    of r bits is displaced by DJpp/2 * (1 - 2^(2-r)); deterministic and
///    pattern-correlated like real ISI.
enum class DjModel {
    kTriangleSweep,
    kIndependent,
    kIsi,
};

/// Parameters for generating a jittered serial data stream.
struct StreamParams {
    LinkRate rate = kPaperRate;
    JitterSpec spec;
    DjModel dj_model = DjModel::kTriangleSweep;
    /// Sweep rate of the kTriangleSweep DJ process.
    double dj_sweep_freq_hz = 1e7;
    /// Relative data-rate offset of the transmitter vs nominal (e.g. 1e-4
    /// = +100 ppm). The receiver's oscillator offset is modeled separately
    /// in the CDR (Sec. 2.3 separates FTOL from data-rate spec).
    double data_rate_offset = 0.0;
    /// Start time of bit 0's leading boundary.
    SimTime start{0};
    /// Initial line level before the first bit.
    bool initial_level = false;
};

/// Expand a bit sequence into jittered transition times. Each transition's
/// displacement is DJ (uniform) + RJ (Gaussian) + SJ (coherent sinusoid
/// evaluated at the nominal edge time). Edge times are forced monotonic
/// (a transition can never precede the previous one).
[[nodiscard]] std::vector<Edge> jittered_edges(const std::vector<bool>& bits,
                                               const StreamParams& params,
                                               Rng& rng);

/// Ideal (jitter-free) edges of a bit sequence; convenience for tests and
/// the transistor-level data path.
[[nodiscard]] std::vector<Edge> ideal_edges(const std::vector<bool>& bits,
                                            LinkRate rate,
                                            SimTime start = SimTime{0},
                                            bool initial_level = false);

/// Decompose a total-jitter population into dual-Dirac DJ/RJ estimates via
/// the standard tail-fit (used by the BERT and eye metrics to report
/// jitter the way the paper's Table 1 specifies it).
struct DualDiracFit {
    double dj_pp = 0.0;   ///< model deterministic jitter (peak-peak)
    double rj_rms = 0.0;  ///< model random jitter (RMS)
    /// Total jitter at the given BER under the dual-Dirac model.
    [[nodiscard]] double tj_at_ber(double ber) const;
};

/// Fit a dual-Dirac model to a sample population of jitter values (same
/// units in = same units out).
[[nodiscard]] DualDiracFit fit_dual_dirac(std::vector<double> samples);

}  // namespace gcdr::jitter
