#include "jitter/jitter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "util/mathx.hpp"

namespace gcdr::jitter {

double SinusoidalJitter::at(double t_seconds) const {
    if (amp_ui_ == 0.0 || freq_hz_ == 0.0) return 0.0;
    return amp_ui_ * std::sin(2.0 * std::numbers::pi * freq_hz_ * t_seconds +
                              phase0_);
}

std::vector<Edge> jittered_edges(const std::vector<bool>& bits,
                                 const StreamParams& params, Rng& rng) {
    std::vector<Edge> out;
    if (bits.empty()) return out;

    const double ui_s = params.rate.ui_seconds() /
                        (1.0 + params.data_rate_offset);
    const SinusoidalJitter sj(params.spec.sj_uipp, params.spec.sj_freq_hz);

    bool level = params.initial_level;
    SimTime prev_time = params.start - SimTime::fs(1);
    std::size_t run_start = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == level) continue;  // no transition at this boundary
        const double nominal_s =
            params.start.seconds() + static_cast<double>(i) * ui_s;
        double disp_ui = 0.0;
        if (params.spec.dj_uipp > 0.0) {
            const double half = params.spec.dj_uipp / 2.0;
            switch (params.dj_model) {
                case DjModel::kTriangleSweep: {
                    // Triangle wave in [-1, 1]: uniform stationary PDF.
                    const double x =
                        2.0 * std::numbers::pi * params.dj_sweep_freq_hz *
                        nominal_s;
                    disp_ui += half * (2.0 / std::numbers::pi) *
                               std::asin(std::sin(x));
                    break;
                }
                case DjModel::kIndependent:
                    disp_ui += rng.uniform(-half, half);
                    break;
                case DjModel::kIsi: {
                    const double r = std::max<std::size_t>(1, i - run_start);
                    disp_ui +=
                        half * (1.0 - std::pow(2.0, 2.0 - static_cast<double>(r)));
                    break;
                }
            }
        }
        if (params.spec.rj_uirms > 0.0) {
            disp_ui += rng.gaussian(0.0, params.spec.rj_uirms);
        }
        disp_ui += sj.at(nominal_s);

        SimTime t = SimTime::from_seconds(nominal_s + disp_ui * ui_s);
        if (t <= prev_time) t = prev_time + SimTime::fs(1);
        out.push_back(Edge{t, bits[i]});
        prev_time = t;
        level = bits[i];
        run_start = i;
    }
    return out;
}

std::vector<Edge> ideal_edges(const std::vector<bool>& bits, LinkRate rate,
                              SimTime start, bool initial_level) {
    std::vector<Edge> out;
    bool level = initial_level;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == level) continue;
        out.push_back(Edge{
            start + SimTime::from_seconds(static_cast<double>(i) *
                                          rate.ui_seconds()),
            bits[i]});
        level = bits[i];
    }
    return out;
}

double DualDiracFit::tj_at_ber(double ber) const {
    return dj_pp + 2.0 * q_inverse(ber) * rj_rms;
}

DualDiracFit fit_dual_dirac(std::vector<double> samples) {
    DualDiracFit fit;
    if (samples.size() < 16) return fit;
    std::sort(samples.begin(), samples.end());
    const auto n = samples.size();

    // Tail-fit at two quantile pairs: map the empirical quantiles to the
    // Gaussian Q-scale; the slope gives RJ sigma, the intercept offset DJ.
    const double p1 = 0.05, p2 = 0.005;
    const double q1 = q_inverse(p1), q2 = q_inverse(p2);
    auto at = [&](double p) {
        const auto idx = static_cast<std::size_t>(
            std::clamp(p * static_cast<double>(n - 1), 0.0,
                       static_cast<double>(n - 1)));
        return samples[idx];
    };
    const double left1 = at(p1), left2 = at(p2);
    const double right1 = at(1.0 - p1), right2 = at(1.0 - p2);

    const double sigma_l = (left1 - left2) / (q2 - q1);
    const double sigma_r = (right2 - right1) / (q2 - q1);
    fit.rj_rms = std::max(0.0, 0.5 * (sigma_l + sigma_r));
    const double mu_l = left1 + q1 * sigma_l;
    const double mu_r = right1 - q1 * sigma_r;
    fit.dj_pp = std::max(0.0, mu_r - mu_l);
    return fit;
}

}  // namespace gcdr::jitter
