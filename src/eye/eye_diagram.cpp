#include "eye/eye_diagram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "jitter/jitter.hpp"
#include "util/mathx.hpp"

namespace gcdr::eye {

EyeBuilder::EyeBuilder(LinkRate rate, std::size_t bins, double width_ui)
    : rate_(rate), width_ui_(width_ui), counts_(bins, 0) {
    assert(bins >= 8);
    assert(width_ui > 0.0);
}

void EyeBuilder::add_transition(SimTime t, SimTime clock_edge) {
    add_transition_phase(rate_.time_to_ui(t - clock_edge));
}

void EyeBuilder::add_transition_phase(double phase_ui) {
    double folded = std::fmod(phase_ui, width_ui_);
    if (folded < 0.0) folded += width_ui_;
    const auto bin = std::min(
        counts_.size() - 1,
        static_cast<std::size_t>(folded / width_ui_ *
                                 static_cast<double>(counts_.size())));
    counts_[bin]++;
    phases_.push_back(folded);
    ++total_;
}

std::pair<std::size_t, std::size_t> EyeBuilder::widest_gap() const {
    // Longest circular run of empty bins; returns [start, length).
    const std::size_t n = counts_.size();
    std::size_t best_start = 0, best_len = 0, cur_start = 0, cur_len = 0;
    for (std::size_t i = 0; i < 2 * n; ++i) {
        if (counts_[i % n] == 0) {
            if (cur_len == 0) cur_start = i;
            if (++cur_len > best_len && cur_len <= n) {
                best_len = cur_len;
                best_start = cur_start;
            }
        } else {
            cur_len = 0;
        }
    }
    return {best_start % n, std::min(best_len, n)};
}

double EyeBuilder::eye_opening_ui() const {
    if (total_ == 0) return width_ui_;
    const auto [start, len] = widest_gap();
    (void)start;
    return width_ui_ * static_cast<double>(len) /
           static_cast<double>(counts_.size());
}

double EyeBuilder::eye_center_ui() const {
    const auto [start, len] = widest_gap();
    const double bin_ui = width_ui_ / static_cast<double>(counts_.size());
    double center =
        (static_cast<double>(start) + static_cast<double>(len) / 2.0) *
        bin_ui;
    if (center >= width_ui_) center -= width_ui_;
    return center;
}

double EyeBuilder::eye_opening_at_ber(double ber) const {
    if (phases_.size() < 64) return eye_opening_ui();
    const double center = eye_center_ui();
    // Split phases into the left and right edge populations relative to the
    // gap center (circularly unwrapped so each population is contiguous).
    std::vector<double> left, right;
    for (double p : phases_) {
        double d = p - center;
        if (d > width_ui_ / 2.0) d -= width_ui_;
        if (d < -width_ui_ / 2.0) d += width_ui_;
        (d < 0.0 ? left : right).push_back(d);
    }
    if (left.size() < 16 || right.size() < 16) return eye_opening_ui();
    const auto fit_l = jitter::fit_dual_dirac(left);
    const auto fit_r = jitter::fit_dual_dirac(right);
    const double q = q_inverse(ber);
    const double l_inner =
        *std::max_element(left.begin(), left.end()) + q * fit_l.rj_rms;
    const double r_inner =
        *std::min_element(right.begin(), right.end()) - q * fit_r.rj_rms;
    return std::max(0.0, r_inner - l_inner);
}

double EyeBuilder::edge_sigma_ui(double around_ui) const {
    std::vector<double> near;
    for (double p : phases_) {
        double d = p - around_ui;
        if (d > width_ui_ / 2.0) d -= width_ui_;
        if (d < -width_ui_ / 2.0) d += width_ui_;
        if (std::abs(d) < 0.25 * width_ui_) near.push_back(d);
    }
    if (near.size() < 2) return 0.0;
    double mean = 0.0;
    for (double d : near) mean += d;
    mean /= static_cast<double>(near.size());
    double var = 0.0;
    for (double d : near) var += (d - mean) * (d - mean);
    var /= static_cast<double>(near.size() - 1);
    return std::sqrt(var);
}

std::string EyeBuilder::ascii_art(std::size_t rows,
                                  double sample_phase_ui) const {
    std::ostringstream os;
    const std::uint64_t peak =
        std::max<std::uint64_t>(1, *std::max_element(counts_.begin(),
                                                     counts_.end()));
    // Vertical bar chart of the transition density: tall columns are the
    // edge clouds, the empty valley between them is the eye opening.
    for (std::size_t r = 0; r < rows; ++r) {
        const double threshold = static_cast<double>(rows - r) /
                                 static_cast<double>(rows + 1);
        for (std::size_t c = 0; c < counts_.size(); ++c) {
            const double level = static_cast<double>(counts_[c]) /
                                 static_cast<double>(peak);
            os << (level >= threshold ? '#' : (level > 0.0 && r + 1 == rows ? '.' : ' '));
        }
        os << '\n';
    }
    if (sample_phase_ui >= 0.0) {
        std::string marker(counts_.size(), ' ');
        const auto pos = std::min(
            counts_.size() - 1,
            static_cast<std::size_t>(sample_phase_ui / width_ui_ *
                                     static_cast<double>(counts_.size())));
        marker[pos] = '^';
        os << marker << "  (sampling instant)\n";
    }
    return os.str();
}

std::string EyeBuilder::to_csv() const {
    std::ostringstream os;
    os << "phase_ui,count\n";
    const double bin_ui = width_ui_ / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        os << (static_cast<double>(i) + 0.5) * bin_ui << ',' << counts_[i]
           << '\n';
    }
    return os.str();
}

}  // namespace gcdr::eye
