#pragma once
// Eye-diagram generation (paper Sec. 3.3b).
//
// The paper inserts a VHDL "eye generator" that — unlike conventional
// fixed-interval eye features — aligns the data on the rising edge of the
// *recovered* sampling clock, writes the aligned samples to a file and
// plots them in Matlab. EyeBuilder is that block: it accumulates data
// transitions folded into a clock-relative window and produces edge
// histograms, eye openings and an ASCII rendering (Figs 14/16/18).
//
// Two-level (binary) signals: amplitude noise is neglected, as the paper
// argues (pre-amplified binary input), so the eye is characterized by its
// horizontal (timing) structure.

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace gcdr::eye {

/// Folded timing histogram of data transitions relative to the aligned
/// sampling clock, over a window of `width_ui` unit intervals.
class EyeBuilder {
public:
    /// `bins` = horizontal resolution; window spans [0, width_ui) UI.
    EyeBuilder(LinkRate rate, std::size_t bins = 256, double width_ui = 1.0);

    /// Record one data transition at absolute time `t`, aligned to the most
    /// recent recovered-clock rising edge at `clock_edge`.
    void add_transition(SimTime t, SimTime clock_edge);

    /// Record a transition by its phase within the UI directly (used by the
    /// statistical and analog paths). Phase in UI, folded into the window.
    void add_transition_phase(double phase_ui);

    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] double width_ui() const { return width_ui_; }
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
        return counts_;
    }
    [[nodiscard]] std::uint64_t total_transitions() const { return total_; }

    /// Raw recorded phases (UI) — kept for dual-Dirac fits on each edge.
    [[nodiscard]] const std::vector<double>& phases() const { return phases_; }

    /// Largest transition-free gap in the folded histogram, in UI: the
    /// horizontal eye opening at the hit-count level.
    [[nodiscard]] double eye_opening_ui() const;

    /// Center of the largest transition-free gap, in UI.
    [[nodiscard]] double eye_center_ui() const;

    /// Eye opening at a BER level using per-edge dual-Dirac extrapolation:
    /// fits the left and right edge populations around the widest gap and
    /// subtracts their total-jitter tails at `ber`.
    [[nodiscard]] double eye_opening_at_ber(double ber) const;

    /// RMS spread of the edge population nearest `around_ui`.
    [[nodiscard]] double edge_sigma_ui(double around_ui) const;

    /// ASCII rendering: `rows` lines of the folded histogram (darker = more
    /// transitions), plus a marker row for a sampling phase if >= 0.
    [[nodiscard]] std::string ascii_art(std::size_t rows = 12,
                                        double sample_phase_ui = -1.0) const;

    /// CSV: bin_center_ui,count
    [[nodiscard]] std::string to_csv() const;

private:
    [[nodiscard]] std::pair<std::size_t, std::size_t> widest_gap() const;

    LinkRate rate_;
    double width_ui_;
    std::vector<std::uint64_t> counts_;
    std::vector<double> phases_;
    std::uint64_t total_ = 0;
};

}  // namespace gcdr::eye
