#include "util/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace gcdr {

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
    const std::size_t n = data.size();
    assert(n != 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang =
            (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
        const std::complex<double> wlen{std::cos(ang), std::sin(ang)};
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const auto u = data[i + k];
                const auto v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto& x : data) x *= inv_n;
    }
}

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

std::vector<double> convolve_fft(const std::vector<double>& a,
                                 const std::vector<double>& b) {
    if (a.empty() || b.empty()) return {};
    const std::size_t out_len = a.size() + b.size() - 1;
    const std::size_t n = next_pow2(out_len);
    std::vector<std::complex<double>> fa(n), fb(n);
    for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
    for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
    fft_inplace(fa, false);
    fft_inplace(fb, false);
    for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
    fft_inplace(fa, true);
    std::vector<double> out(out_len);
    for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
    return out;
}

std::vector<double> convolve_direct(const std::vector<double>& a,
                                    const std::vector<double>& b) {
    if (a.empty() || b.empty()) return {};
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j) {
            out[i + j] += a[i] * b[j];
        }
    }
    return out;
}

}  // namespace gcdr
