#include "util/fft.hpp"

#include "util/simd.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <stdexcept>

namespace gcdr {

namespace {

/// Twiddle table for one transform size: w[j] = exp(-2*pi*i*j/n), j < n/2.
/// Stage `len` indexes it with stride n/len, so one table serves every
/// stage; the inverse transform conjugates on the fly.
struct FftPlan {
    explicit FftPlan(std::size_t size) : n(size), w(size / 2) {
        for (std::size_t j = 0; j < w.size(); ++j) {
            const double ang = -2.0 * std::numbers::pi *
                               static_cast<double>(j) /
                               static_cast<double>(n);
            w[j] = {std::cos(ang), std::sin(ang)};
        }
    }
    std::size_t n;
    std::vector<std::complex<double>> w;
};

/// Per-thread plan cache keyed by log2(n). Thread-local so concurrent
/// sweep lanes never contend; a lane reconvolving the same grid size (the
/// common case: every BER point shares grid_dx) reuses its tables.
const FftPlan& plan_for(std::size_t n) {
    thread_local std::array<std::unique_ptr<FftPlan>, 64> cache;
    const auto k = static_cast<std::size_t>(std::countr_zero(n));
    if (!cache[k]) cache[k] = std::make_unique<FftPlan>(n);
    return *cache[k];
}

}  // namespace

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
    const std::size_t n = data.size();
    assert(n != 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");
    if (n == 1) return;
    const FftPlan& plan = plan_for(n);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t stride = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < len / 2; ++k) {
                std::complex<double> w = plan.w[k * stride];
                if (inverse) w = std::conj(w);
                const auto u = data[i + k];
                const auto v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
            }
        }
    }

    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto& x : data) x *= inv_n;
    }
}

std::size_t next_pow2(std::size_t n) {
    constexpr std::size_t kMaxPow2 =
        (std::numeric_limits<std::size_t>::max() >> 1) + 1;
    if (n > kMaxPow2) {
        throw std::overflow_error(
            "next_pow2: no representable power of two >= n");
    }
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

std::vector<double> convolve_fft(const std::vector<double>& a,
                                 const std::vector<double>& b) {
    if (a.empty() || b.empty()) {
        throw std::invalid_argument("convolve_fft: empty input sequence");
    }
    const std::size_t out_len = a.size() + b.size() - 1;
    const std::size_t n = next_pow2(out_len);

    // Pack both real sequences into one complex buffer, z = a + i*b: the
    // individual spectra fall out of Z's conjugate symmetry, so a single
    // forward transform replaces two. The buffer persists per thread, so
    // steady-state convolves allocate nothing.
    thread_local std::vector<std::complex<double>> z;
    z.assign(n, {0.0, 0.0});
    for (std::size_t i = 0; i < a.size(); ++i) z[i].real(a[i]);
    for (std::size_t i = 0; i < b.size(); ++i) z[i].imag(b[i]);
    fft_inplace(z, false);

    // A[k] = (Z[k] + conj(Z[n-k])) / 2,  B[k] = (Z[k] - conj(Z[n-k])) / 2i.
    // Both spectra are Hermitian (real inputs), so C = A.*B is Hermitian
    // too: compute k and n-k together, writing C in place of Z.
    const auto product_at = [](std::complex<double> zk,
                               std::complex<double> znk) {
        const auto fa = 0.5 * (zk + std::conj(znk));
        const auto fb = std::complex<double>{0.0, -0.5} * (zk - std::conj(znk));
        return fa * fb;
    };
    z[0] = z[0].real() * z[0].imag();  // DC: A = Re, B = Im
    for (std::size_t k = 1; k <= n / 2; ++k) {
        const std::size_t nk = n - k;
        if (k == nk) {  // Nyquist bin is self-conjugate
            z[k] = z[k].real() * z[k].imag();
            break;
        }
        const auto ck = product_at(z[k], z[nk]);
        z[k] = ck;
        z[nk] = std::conj(ck);
    }
    fft_inplace(z, true);

    std::vector<double> out(out_len);
    for (std::size_t i = 0; i < out_len; ++i) out[i] = z[i].real();
    return out;
}

std::vector<double> convolve_direct(const std::vector<double>& a,
                                    const std::vector<double>& b) {
    if (a.empty() || b.empty()) {
        throw std::invalid_argument("convolve_direct: empty input sequence");
    }
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    // axpy over the inner j-loop: each out[i+j] accumulates contributions
    // in the same i-order as the scalar loop, so vectorization changes
    // only the instruction mix, not the summation order.
    for (std::size_t i = 0; i < a.size(); ++i) {
        simd::axpy(out.data() + i, b.data(), a[i], b.size());
    }
    return out;
}

}  // namespace gcdr
