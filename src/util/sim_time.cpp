#include "util/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace gcdr {

SimTime SimTime::from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(std::llround(s * 1e15))};
}

std::string SimTime::to_string() const {
    const double abs_fs = std::abs(static_cast<double>(fs_));
    char buf[48];
    if (abs_fs >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.6gus", static_cast<double>(fs_) * 1e-9);
    } else if (abs_fs >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.6gns", static_cast<double>(fs_) * 1e-6);
    } else if (abs_fs >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.6gps", static_cast<double>(fs_) * 1e-3);
    } else {
        std::snprintf(buf, sizeof buf, "%lldfs", static_cast<long long>(fs_));
    }
    return buf;
}

}  // namespace gcdr
