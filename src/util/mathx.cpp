#include "util/mathx.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace gcdr {

double q_function(double x) {
    return 0.5 * std::erfc(x / std::numbers::sqrt2);
}

double q_inverse(double p) {
    assert(p > 0.0 && p <= 0.5);
    // Bisection on log10 Q(x): Q is strictly decreasing, well conditioned.
    double lo = 0.0, hi = 40.0;
    const double target = std::log10(p);
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (log10_q_function(mid) > target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double log10_q_function(double x) {
    if (x < 30.0) {
        return std::log10(q_function(x));
    }
    // Far tail: Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4).
    const double log_phi =
        -0.5 * x * x - 0.5 * std::log(2.0 * std::numbers::pi);
    const double corr = 1.0 - 1.0 / (x * x) + 3.0 / (x * x * x * x);
    return (log_phi - std::log(x) + std::log(corr)) / std::numbers::ln10;
}

namespace {

/// Continued fraction for the incomplete beta (Numerical-Recipes form):
/// beta_inc(a,b,x) = front * cf / a with the modified-Lentz evaluation.
double beta_cf(double a, double b, double x) {
    constexpr int kMaxIter = 400;
    constexpr double kEps = 1e-15;
    constexpr double kTiny = 1e-300;
    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEps) break;
    }
    return h;
}

}  // namespace

double beta_inc(double a, double b, double x) {
    assert(a > 0.0 && b > 0.0);
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    // Log of the prefactor x^a (1-x)^b / (a B(a,b)); lgamma keeps it finite
    // for the huge b of Clopper-Pearson bounds at tiny error rates.
    const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                             std::lgamma(b) + a * std::log(x) +
                             b * std::log1p(-x);
    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the side where the
    // continued fraction converges fast.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return std::exp(log_front) * beta_cf(a, b, x) / a;
    }
    return 1.0 - std::exp(log_front) * beta_cf(b, a, 1.0 - x) / b;
}

double beta_inc_inv(double a, double b, double p) {
    assert(a > 0.0 && b > 0.0);
    if (p <= 0.0) return 0.0;
    if (p >= 1.0) return 1.0;
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (beta_inc(a, b, mid) < p) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double to_db(double ratio) { return 10.0 * std::log10(ratio); }

double from_db(double db) { return std::pow(10.0, db / 10.0); }

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    assert(n >= 2);
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
    assert(lo > 0.0 && hi > 0.0);
    auto exps = linspace(std::log10(lo), std::log10(hi), n);
    for (auto& e : exps) e = std::pow(10.0, e);
    return exps;
}

double interp_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys, double x) {
    assert(xs.size() == ys.size() && !xs.empty());
    if (x <= xs.front()) return ys.front();
    if (x >= xs.back()) return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - xs.begin());
    const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
    return ys[i - 1] + t * (ys[i] - ys[i - 1]);
}

double trapz(const std::vector<double>& ys, double dx) {
    if (ys.size() < 2) return 0.0;
    double acc = 0.5 * (ys.front() + ys.back());
    for (std::size_t i = 1; i + 1 < ys.size(); ++i) acc += ys[i];
    return acc * dx;
}

}  // namespace gcdr
