#include "util/mathx.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace gcdr {

double q_function(double x) {
    return 0.5 * std::erfc(x / std::numbers::sqrt2);
}

double q_inverse(double p) {
    assert(p > 0.0 && p <= 0.5);
    // Bisection on log10 Q(x): Q is strictly decreasing, well conditioned.
    double lo = 0.0, hi = 40.0;
    const double target = std::log10(p);
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (log10_q_function(mid) > target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double log10_q_function(double x) {
    if (x < 30.0) {
        return std::log10(q_function(x));
    }
    // Far tail: Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4).
    const double log_phi =
        -0.5 * x * x - 0.5 * std::log(2.0 * std::numbers::pi);
    const double corr = 1.0 - 1.0 / (x * x) + 3.0 / (x * x * x * x);
    return (log_phi - std::log(x) + std::log(corr)) / std::numbers::ln10;
}

double to_db(double ratio) { return 10.0 * std::log10(ratio); }

double from_db(double db) { return std::pow(10.0, db / 10.0); }

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    assert(n >= 2);
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
    assert(lo > 0.0 && hi > 0.0);
    auto exps = linspace(std::log10(lo), std::log10(hi), n);
    for (auto& e : exps) e = std::pow(10.0, e);
    return exps;
}

double interp_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys, double x) {
    assert(xs.size() == ys.size() && !xs.empty());
    if (x <= xs.front()) return ys.front();
    if (x >= xs.back()) return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - xs.begin());
    const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
    return ys[i - 1] + t * (ys[i] - ys[i - 1]);
}

double trapz(const std::vector<double>& ys, double dx) {
    if (ys.size() < 2) return 0.0;
    double acc = 0.5 * (ys.front() + ys.back());
    for (std::size_t i = 1; i + 1 < ys.size(); ++i) acc += ys[i];
    return acc * dx;
}

}  // namespace gcdr
