#pragma once
// Deterministic random number generation for all stochastic models.
//
// The paper's VHDL model uses the Xilinx AWGN core [8] for Gaussian samples;
// here a xoshiro256++ generator feeds uniform, Gaussian (polar Box-Muller),
// arcsine (sinusoidal-jitter histogram) and dual-Dirac samplers. Every
// simulation object takes an explicit seed so runs are reproducible.

#include <cstdint>
#include <random>

namespace gcdr {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()();

    /// Advance 2^128 steps; gives independent sequences for parallel channels.
    void long_jump();

private:
    std::uint64_t s_[4];
};

/// Convenience sampler bundle over a single Xoshiro256 stream.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}
    /// Wrap an existing generator state — used to hand each parallel
    /// channel its own long_jump()-separated stream of a common seed.
    explicit Rng(const Xoshiro256& gen) : gen_(gen) {}

    /// Uniform in [0, 1).
    double uniform();
    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);
    /// Standard normal via polar Box-Muller (caches the second deviate).
    double gaussian();
    /// Normal with the given mean and standard deviation.
    double gaussian(double mean, double sigma);
    /// Arcsine distribution on [-amp, +amp]: the PDF of A*sin(uniform phase).
    /// This is the stationary histogram of sinusoidal jitter.
    double arcsine(double amp);
    /// Dual-Dirac: +/-delta with equal probability (bounded DJ model).
    double dual_dirac(double delta);
    /// Uniform integer in [0, n).
    std::uint64_t index(std::uint64_t n);
    /// Fair coin.
    bool coin();

    Xoshiro256& generator() { return gen_; }

private:
    Xoshiro256 gen_;
    double cached_gaussian_ = 0.0;
    bool has_cached_ = false;
};

}  // namespace gcdr
