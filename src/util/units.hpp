#pragma once
// Link-rate bookkeeping: conversions between seconds, unit intervals (UI)
// and frequencies for a serial link. The paper's channel runs at
// 2.5 Gbit/s, i.e. 1 UI = 400 ps (Sec. 2.1).

#include "util/sim_time.hpp"

namespace gcdr {

/// Data-rate context for UI <-> time conversions.
class LinkRate {
public:
    constexpr explicit LinkRate(double bits_per_second)
        : rate_(bits_per_second) {}

    [[nodiscard]] static constexpr LinkRate gbps(double g) {
        return LinkRate{g * 1e9};
    }

    [[nodiscard]] constexpr double bits_per_second() const { return rate_; }
    [[nodiscard]] constexpr double ui_seconds() const { return 1.0 / rate_; }
    [[nodiscard]] SimTime ui_time() const {
        return SimTime::from_seconds(ui_seconds());
    }
    [[nodiscard]] constexpr double seconds_to_ui(double s) const {
        return s * rate_;
    }
    [[nodiscard]] constexpr double ui_to_seconds(double ui) const {
        return ui / rate_;
    }
    [[nodiscard]] double time_to_ui(SimTime t) const {
        return seconds_to_ui(t.seconds());
    }
    [[nodiscard]] SimTime ui_to_time(double ui) const {
        return SimTime::from_seconds(ui_to_seconds(ui));
    }

private:
    double rate_;
};

/// The paper's per-channel rate: 2.5 Gbit/s, 1 UI = 400 ps.
inline constexpr LinkRate kPaperRate = LinkRate::gbps(2.5);

}  // namespace gcdr
