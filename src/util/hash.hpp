#pragma once
// Stable, dependency-free content hashing shared by every subsystem that
// keys persistent state on bytes: the run ledger (obs/ledger) keys
// records by fnv1a64(canonical flag string), and the serving layer
// (serve/cache) keys memoized results by fnv1a64(canonical config JSON).
// FNV-1a is deliberately simple — the offset basis and prime are part of
// the on-disk format, so the constants here must never change (committed
// ledgers and cache segments would silently stop matching).

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace gcdr::util {

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// FNV-1a 64-bit over a byte string. Stable across platforms and repo
/// versions: plain unsigned 64-bit arithmetic, bytes consumed in order.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view text, std::uint64_t h = kFnv1a64OffsetBasis) {
    for (unsigned char c : text) {
        h ^= c;
        h *= kFnv1a64Prime;
    }
    return h;
}

/// Continue an FNV-1a stream with one 64-bit value (little-endian byte
/// order, explicitly — so composite keys hash identically on every
/// platform). Used to fold (config_hash, seed, model_hash) into one
/// cache-shard index.
[[nodiscard]] constexpr std::uint64_t fnv1a64_u64(std::uint64_t value,
                                                  std::uint64_t h) {
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xffu;
        h *= kFnv1a64Prime;
    }
    return h;
}

/// Canonical 16-digit lowercase hex rendering of a 64-bit hash — the
/// form every persistent record stores ("config_hash":"9ae16a3b2f90404f").
[[nodiscard]] inline std::string hash_hex(std::uint64_t h) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/// Parse the canonical hex form back to the hash value. Returns false on
/// anything but exactly 16 hex digits.
[[nodiscard]] inline bool parse_hash_hex(std::string_view hex,
                                         std::uint64_t& out) {
    if (hex.size() != 16) return false;
    std::uint64_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
            v |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    out = v;
    return true;
}

}  // namespace gcdr::util
