#pragma once
// Portable SIMD shim for the hot loops (convolution inner loop, batched
// Box-Muller, SoA lane kernels). Built on std::experimental::simd when the
// tree is configured with -DGCDR_SIMD=ON (the default) and the header is
// available; otherwise every helper degrades to the equivalent scalar
// loop. Callers never branch on availability themselves — they call the
// dispatching helpers here, and the -DGCDR_SIMD=OFF CI leg proves the two
// paths agree.
//
// Equivalence contract:
//  - Integer and bitwise vector ops (the xoshiro256++ state update) are
//    exact, so batched RNG streams are bit-identical to util/rng.hpp.
//  - double add/mul/div/sqrt are IEEE-correctly-rounded in both paths, so
//    element-wise kernels that keep the scalar accumulation order (axpy
//    below) match to the last ulp unless the compiler contracts a
//    mul+add into an FMA in only one path. The default build uses no
//    -march flags (no FMA codegen), where both paths are bit-identical;
//    tests compare with a 1-ulp-scale tolerance to stay robust under
//    -march=native builds.
//  - Transcendentals (log in Box-Muller) are ALWAYS evaluated per element
//    through libm, never through a vector math library, because vector
//    log implementations differ from libm in the last ulps and would
//    break the batched kernel's bit-identity anchor.

#if defined(GCDR_SIMD) && GCDR_SIMD && __has_include(<experimental/simd>)
#define GCDR_SIMD_ENABLED 1
#else
#define GCDR_SIMD_ENABLED 0
#endif

#if GCDR_SIMD_ENABLED
#include <experimental/simd>
#endif

#include <cstddef>

namespace gcdr::simd {

#if GCDR_SIMD_ENABLED
namespace stdx = std::experimental;
/// Vector of doubles and a same-width vector of u64 lanes (widths are
/// forced equal via rebind so u64->double conversions stay element-wise).
using VDouble = stdx::native_simd<double>;
using VUint64 = stdx::rebind_simd_t<std::uint64_t, VDouble>;
#endif

/// Doubles per vector register in the active build (1 = scalar fallback).
[[nodiscard]] constexpr std::size_t width_doubles() {
#if GCDR_SIMD_ENABLED
    return VDouble::size();
#else
    return 1;
#endif
}

[[nodiscard]] constexpr bool enabled() { return GCDR_SIMD_ENABLED != 0; }

/// out[j] += a * b[j] for j in [0, n): the convolution inner loop
/// (saxpy). Vectorizing over j preserves each output element's
/// accumulation order across successive calls, which is what keeps
/// GridPdf::convolve results stable against the scalar path.
inline void axpy_scalar(double* out, const double* b, double a,
                        std::size_t n) {
    for (std::size_t j = 0; j < n; ++j) out[j] += a * b[j];
}

inline void axpy(double* out, const double* b, double a, std::size_t n) {
#if GCDR_SIMD_ENABLED
    constexpr std::size_t kW = VDouble::size();
    const VDouble av = a;
    std::size_t j = 0;
    for (; j + kW <= n; j += kW) {
        VDouble bv(&b[j], stdx::element_aligned);
        VDouble ov(&out[j], stdx::element_aligned);
        ov += av * bv;
        ov.copy_to(&out[j], stdx::element_aligned);
    }
    for (; j < n; ++j) out[j] += a * b[j];
#else
    axpy_scalar(out, b, a, n);
#endif
}

}  // namespace gcdr::simd
