#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace gcdr {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // All-zero state is invalid; splitmix64 of any seed cannot produce it,
    // but keep the guard for belt and braces.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void Xoshiro256::long_jump() {
    static constexpr std::uint64_t kJump[] = {
        0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
        0x77710069854ee241ull, 0x39109bb02acbe635ull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (std::uint64_t{1} << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

double Rng::uniform() {
    // 53-bit mantissa: top bits of the 64-bit output.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

double Rng::gaussian() {
    if (has_cached_) {
        has_cached_ = false;
        return cached_gaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_ = true;
    return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
}

double Rng::arcsine(double amp) {
    return amp * std::sin(2.0 * std::numbers::pi * uniform());
}

double Rng::dual_dirac(double delta) {
    return coin() ? delta : -delta;
}

std::uint64_t Rng::index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded integer.
    if (n == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(gen_()) * n;
    return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::coin() {
    return (gen_() >> 63) != 0;
}

}  // namespace gcdr
