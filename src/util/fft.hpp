#pragma once
// Radix-2 complex FFT used by stats/ to convolve jitter PDFs on a grid.
// Self-contained (no external DSP dependency) because the statistical BER
// model convolves four PDFs per run length and the direct O(n^2) product is
// the bottleneck for fine grids.
//
// Hot-path design:
//  - twiddle factors come from a per-thread plan cache keyed by transform
//    size, so repeated convolves of the same grid pay the trig cost once
//    per thread (concurrent sweep lanes each build their own tables — no
//    locks, no sharing),
//  - convolve_fft packs both real inputs into ONE complex transform
//    (z = a + i*b, spectra recovered via conjugate symmetry), replacing the
//    classic two forward transforms with one,
//  - scratch buffers persist per thread, so steady-state convolves perform
//    no heap allocation.
// Results are deterministic: the same inputs produce the same bits on every
// call and every thread.

#include <complex>
#include <cstddef>
#include <vector>

namespace gcdr {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. inverse=true applies the conjugate transform and 1/N scaling.
/// Twiddles come from the per-thread plan cache.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// Next power of two >= n (n >= 1). Throws std::overflow_error when no
/// power of two >= n is representable in std::size_t (n > 2^63 on 64-bit),
/// where the old shift loop silently wrapped to 0.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Linear convolution of two real sequences via a single packed complex
/// FFT plus one inverse transform. Result length is a.size() + b.size() - 1.
/// Throws std::invalid_argument if either input is empty.
[[nodiscard]] std::vector<double> convolve_fft(const std::vector<double>& a,
                                               const std::vector<double>& b);

/// Direct O(n*m) linear convolution; reference implementation for testing
/// and faster for very short kernels. Throws std::invalid_argument if
/// either input is empty.
[[nodiscard]] std::vector<double> convolve_direct(const std::vector<double>& a,
                                                  const std::vector<double>& b);

}  // namespace gcdr
