#pragma once
// Radix-2 complex FFT used by stats/ to convolve jitter PDFs on a grid.
// Self-contained (no external DSP dependency) because the statistical BER
// model convolves four PDFs per run length and the direct O(n^2) product is
// the bottleneck for fine grids.
//
// All functions are pure (no statics, no twiddle-factor caches), so
// concurrent calls from parallel sweep lanes are safe.

#include <complex>
#include <cstddef>
#include <vector>

namespace gcdr {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. inverse=true applies the conjugate transform and 1/N scaling.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// Next power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Linear convolution of two real sequences via FFT.
/// Result length is a.size() + b.size() - 1.
[[nodiscard]] std::vector<double> convolve_fft(const std::vector<double>& a,
                                               const std::vector<double>& b);

/// Direct O(n*m) linear convolution; reference implementation for testing
/// and faster for very short kernels.
[[nodiscard]] std::vector<double> convolve_direct(const std::vector<double>& a,
                                                  const std::vector<double>& b);

}  // namespace gcdr
