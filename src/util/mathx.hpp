#pragma once
// Numerical helpers shared by the statistical BER model (stats/, statmodel/)
// and the phase-noise budget (noise/): Gaussian tail math on a log scale so
// BERs down to 1e-40 stay representable, plus dB conversions.

#include <cstddef>
#include <vector>

namespace gcdr {

inline constexpr double kBoltzmann = 1.380649e-23;  // J/K
inline constexpr double kRoomTempK = 300.0;

/// Gaussian tail probability Q(x) = P(N(0,1) > x). Accurate into the far
/// tail (uses erfc; no catastrophic cancellation for large x).
[[nodiscard]] double q_function(double x);

/// Inverse of q_function on (0, 0.5]; e.g. q_inverse(1e-12) ~= 7.034.
/// Used to convert a BER target into the Q-scale of dual-Dirac extrapolation.
[[nodiscard]] double q_inverse(double p);

/// log10 of Q(x), stable for x up to ~400 (asymptotic expansion in the tail).
[[nodiscard]] double log10_q_function(double x);

/// Regularized incomplete beta function I_x(a, b) = P(Beta(a,b) <= x).
/// Continued-fraction evaluation (Lentz), accurate for a, b up to ~1e12 —
/// large enough for Clopper–Pearson bounds on terabit error counts.
[[nodiscard]] double beta_inc(double a, double b, double x);

/// Inverse of beta_inc in x: smallest x with I_x(a, b) >= p. Bisection on
/// the monotone CDF; used for exact binomial (Clopper–Pearson) intervals.
[[nodiscard]] double beta_inc_inv(double a, double b, double p);

/// Convert a power ratio to decibels.
[[nodiscard]] double to_db(double ratio);
/// Convert decibels to a power ratio.
[[nodiscard]] double from_db(double db);

/// Linearly spaced grid of n points over [lo, hi] inclusive (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);
/// Logarithmically spaced grid of n points over [lo, hi] inclusive (lo>0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Linear interpolation of tabulated (xs, ys) at x; clamps beyond the ends.
/// xs must be strictly increasing.
[[nodiscard]] double interp_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys, double x);

/// Trapezoidal integral of uniformly spaced samples with step dx.
[[nodiscard]] double trapz(const std::vector<double>& ys, double dx);

}  // namespace gcdr
