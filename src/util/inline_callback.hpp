#pragma once
// Small-buffer-optimized, move-only callable for the event hot path.
//
// sim::Scheduler executes millions of events per run; std::function's
// copyability contract and small (16-byte on libstdc++) inline buffer force
// a heap allocation for the capture sizes the netlist actually uses
// ([this, id] posts from Wire, [this, e] edge drives from cdr/). This type
// stores any nothrow-movable callable up to `Capacity` bytes inline and
// falls back to the heap only beyond that, so the common schedule/execute
// path never allocates.
//
// Only the void() signature is provided — it is the scheduler's event
// signature — which keeps the dispatch table to three entries.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gcdr {

template <std::size_t Capacity>
class InlineCallback {
public:
    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
        emplace(std::forward<F>(f));
    }

    InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
    InlineCallback& operator=(InlineCallback&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;
    ~InlineCallback() { reset(); }

    /// Destroy the held callable (and its captures) immediately.
    void reset() noexcept {
        if (vt_) {
            vt_->destroy(&buf_);
            vt_ = nullptr;
        }
    }

    [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

    void operator()() { vt_->invoke(&buf_); }

private:
    struct VTable {
        void (*invoke)(void*);
        /// Move the callable from src into uninitialized dst, then destroy
        /// the src state (single call, so the heap case just moves a pointer).
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename F>
    static constexpr bool kFitsInline =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineOps {
        static void invoke(void* p) { (*static_cast<F*>(p))(); }
        static void relocate(void* src, void* dst) noexcept {
            ::new (dst) F(std::move(*static_cast<F*>(src)));
            static_cast<F*>(src)->~F();
        }
        static void destroy(void* p) noexcept { static_cast<F*>(p)->~F(); }
        static constexpr VTable vt{&invoke, &relocate, &destroy};
    };

    template <typename F>
    struct HeapOps {
        static F* ptr(void* p) { return *static_cast<F**>(p); }
        static void invoke(void* p) { (*ptr(p))(); }
        static void relocate(void* src, void* dst) noexcept {
            ::new (dst) F*(ptr(src));
        }
        static void destroy(void* p) noexcept { delete ptr(p); }
        static constexpr VTable vt{&invoke, &relocate, &destroy};
    };

    template <typename F2>
    void emplace(F2&& f) {
        using F = std::decay_t<F2>;
        if constexpr (kFitsInline<F>) {
            ::new (static_cast<void*>(&buf_)) F(std::forward<F2>(f));
            vt_ = &InlineOps<F>::vt;
        } else {
            ::new (static_cast<void*>(&buf_)) F*(new F(std::forward<F2>(f)));
            vt_ = &HeapOps<F>::vt;
        }
    }

    void move_from(InlineCallback& other) noexcept {
        vt_ = other.vt_;
        if (vt_) {
            vt_->relocate(&other.buf_, &buf_);
            other.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf_[Capacity];
    const VTable* vt_ = nullptr;
};

}  // namespace gcdr
