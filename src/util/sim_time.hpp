#pragma once
// Integer simulation time with femtosecond resolution.
//
// The behavioral kernel (sim/) schedules events on a strictly ordered integer
// timeline, mirroring the VHDL simulator semantics the paper's behavioral
// model relies on (Fig 12 uses `ps` literals; we keep 1000x finer grain so
// per-stage jitter of a 2.5 GHz oscillator, ~50 fs sigma, is representable).

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace gcdr {

/// Absolute simulation time or a duration, in integer femtoseconds.
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::int64_t femtoseconds) : fs_(femtoseconds) {}

    [[nodiscard]] static constexpr SimTime fs(std::int64_t v) { return SimTime{v}; }
    [[nodiscard]] static constexpr SimTime ps(std::int64_t v) { return SimTime{v * 1000}; }
    [[nodiscard]] static constexpr SimTime ns(std::int64_t v) { return SimTime{v * 1'000'000}; }
    [[nodiscard]] static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000'000'000}; }

    /// Round a floating-point value in seconds to the femtosecond grid.
    [[nodiscard]] static SimTime from_seconds(double s);

    [[nodiscard]] constexpr std::int64_t femtoseconds() const { return fs_; }
    [[nodiscard]] constexpr double seconds() const { return static_cast<double>(fs_) * 1e-15; }
    [[nodiscard]] constexpr double picoseconds() const { return static_cast<double>(fs_) * 1e-3; }

    [[nodiscard]] static constexpr SimTime max() {
        return SimTime{std::numeric_limits<std::int64_t>::max()};
    }

    constexpr auto operator<=>(const SimTime&) const = default;

    constexpr SimTime& operator+=(SimTime rhs) { fs_ += rhs.fs_; return *this; }
    constexpr SimTime& operator-=(SimTime rhs) { fs_ -= rhs.fs_; return *this; }

    friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.fs_ + b.fs_}; }
    friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.fs_ - b.fs_}; }
    friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.fs_ * k}; }
    friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.fs_ * k}; }
    friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.fs_ / b.fs_; }
    friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.fs_ / k}; }

    /// Human-readable rendering with an auto-selected unit ("2.5ns", "400ps").
    [[nodiscard]] std::string to_string() const;

private:
    std::int64_t fs_ = 0;
};

}  // namespace gcdr
