#pragma once
// Inline round-half-away-from-zero, exactly equivalent to std::llround
// for every |x| < 2^62 (the only regime the simulator produces: delays
// and timestamps are < 1e18 fs). std::llround is an out-of-line libm
// call on the hot gate-delay path; this compiles to a truncating
// convert plus a compare.
//
// Exactness argument: for |x| < 2^53 the truncation is representable
// and x - trunc(x) is computed without rounding (the exact difference
// fits the format), so the half-way comparison sees the true fractional
// part. For 2^53 <= |x| < 2^62 every double is already an integer and
// both functions return x unchanged.

#include <cstdint>

namespace gcdr::util {

[[nodiscard]] inline std::int64_t llround_i64(double x) {
    const auto i = static_cast<std::int64_t>(x);  // truncate toward zero
    const double frac = x - static_cast<double>(i);
    if (frac >= 0.5) return i + 1;
    if (frac <= -0.5) return i - 1;
    return i;
}

}  // namespace gcdr::util
