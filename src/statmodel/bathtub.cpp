#include "statmodel/bathtub.hpp"

#include <algorithm>
#include <cassert>

namespace gcdr::statmodel {

std::vector<BathtubPoint> bathtub_curve(ModelConfig base, int n_points,
                                        double phase_min, double phase_max,
                                        obs::MetricsRegistry* metrics,
                                        exec::ThreadPool* pool) {
    assert(n_points >= 2);
    assert(phase_min > 0.0 && phase_max < 1.0 && phase_min < phase_max);
    if (metrics) {
        metrics->counter("statmodel.bathtub.curves").inc();
        metrics->counter("statmodel.bathtub.points")
            .inc(static_cast<std::uint64_t>(n_points));
    }
    std::vector<BathtubPoint> out(static_cast<std::size_t>(n_points));
    auto eval_point = [&](std::size_t i) {
        const double phase =
            phase_min + (phase_max - phase_min) * static_cast<double>(i) /
                            static_cast<double>(n_points - 1);
        ModelConfig cfg = base;
        // sample_instant = (k - 1/2 - advance): phase within the bit is
        // 0.5 - advance at zero offset.
        cfg.sampling_advance_ui = 0.5 - phase;
        out[i] = BathtubPoint{phase, ber_of(cfg)};
    };
    if (pool) {
        pool->parallel_for(out.size(), eval_point);
    } else {
        for (std::size_t i = 0; i < out.size(); ++i) eval_point(i);
    }
    return out;
}

BathtubPoint optimal_sampling_phase(const ModelConfig& base, int n_points,
                                    obs::MetricsRegistry* metrics) {
    const auto curve = bathtub_curve(base, n_points, 0.05, 0.95, metrics);
    double min_ber = curve.front().ber;
    for (const auto& p : curve) min_ber = std::min(min_ber, p.ber);
    // The bathtub floor is often numerically flat; return the middle of
    // the tied minimum region, not its first sample.
    std::size_t first = curve.size(), last = 0;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (curve[i].ber <= min_ber * 1.001 + 1e-300) {
            first = std::min(first, i);
            last = i;
        }
    }
    return curve[(first + last) / 2];
}

double bathtub_opening_ui(const ModelConfig& base, double ber_target,
                          int n_points, obs::MetricsRegistry* metrics) {
    const auto curve = bathtub_curve(base, n_points, 0.02, 0.98, metrics);
    int inside = 0;
    for (const auto& p : curve) {
        if (p.ber <= ber_target) ++inside;
    }
    const double step = (0.98 - 0.02) / static_cast<double>(n_points - 1);
    return inside * step;
}

}  // namespace gcdr::statmodel
