#pragma once
// Statistical BER model of the gated-oscillator CDR (paper Sec. 3.1).
//
// Operating principle being modeled: the GCCO resynchronizes to every
// incoming data edge and free-runs between edges. Take the triggering edge
// as the time reference. The bit at position k of a run is sampled at the
// k-th recovered-clock rising edge,
//
//     s_k = (k - 1/2 - a) * (1 + delta)      [UI, a = sampling advance,
//                                             delta = CCO period offset]
//
// plus the oscillator jitter accumulated since the trigger (Gaussian,
// sigma = CKJ * sqrt((k - 1/2 - a)/CID_ref), CKJ specified at CID_ref = 5).
//
// Errors are dominated by the LAST bit of a run of length L: its sample
// falls after the next data transition at L + dJ, where dJ is the jitter of
// the closing edge *relative to* the triggering edge:
//   - DJ: one uniform(+-DJpp/2). Deterministic jitter is pattern-correlated
//         (ISI/DCD), and the Table 1 figure quantifies total deterministic
//         eye closure, so it enters the relative budget once,
//   - RJ: difference of two independent Gaussians -> sigma*sqrt(2)
//         (random noise really is independent per edge),
//   - SJ: coherent sinusoid difference -> arcsine with effective amplitude
//         A_pp * |sin(pi * f_j/f_data * L)|  (the reason low-frequency
//         jitter is harmless to this topology and near-rate jitter is not,
//         exactly the shape of Figs 9/10).
// The early-side error (first bit sampled before the trigger) is included
// for completeness; it only matters with the advanced sampling point under
// large negative frequency offset (the caveat the paper notes for Fig 17).
//
// BER = sum over run lengths of P(run = L) * P_err(L) / E[L], with the run
// length law truncated at the encoding's CID cap (5 for 8b/10b, 7 for
// PRBS7), or the paper's conservative "all runs = CID" worst case.
//
// Thread safety: the model is a pure function of its ModelConfig — the
// class holds no mutable or global state, every method is const, and the
// stats::GridPdf / FFT machinery underneath is value-semantic. Distinct
// configs (and even shared const models) may therefore be evaluated
// concurrently from an exec::ThreadPool; the sweep helpers below take an
// optional pool and are bit-identical for any thread count because each
// grid point computes independently into its own slot.

#include <vector>

#include "exec/thread_pool.hpp"
#include "jitter/jitter.hpp"
#include "masks/jtol_mask.hpp"
#include "stats/grid_pdf.hpp"

namespace gcdr::statmodel {

/// How run lengths are weighted when rolling per-run error into a BER.
enum class RunModel {
    kWeighted,   ///< truncated-geometric run lengths (random data, CID cap)
    kWorstCase,  ///< every run at the CID cap (paper's conservative view)
};

struct ModelConfig {
    jitter::JitterSpec spec = jitter::JitterSpec::paper_table1();
    /// Sinusoidal jitter frequency normalized to the data rate (f_j/f_d).
    double sj_freq_norm = 0.1;
    /// Relative CCO period offset: (T_cco - T_data)/T_data. Positive =
    /// oscillator slow. A -1% oscillator *frequency* error is delta ~ +1%.
    double freq_offset = 0.0;
    /// Sampling advance in UI: 0 = mid-bit (Fig 7), 1/8 = improved
    /// topology using the inverted third-stage output (Fig 15).
    double sampling_advance_ui = 0.0;
    /// Maximum run length of the encoding (8b/10b: 5, PRBS7: 7).
    int max_cid = 5;
    /// Run length at which the CKJ spec is quoted (paper: 5).
    int cid_ref = 5;
    /// RMS mismatch (UI) between the EDET trigger path (delay line + XOR)
    /// and the DDIN data path (delay line + dummy): the residual timing
    /// error of the retrigger itself. Sets the left (early) bathtub wall;
    /// without it the model would let the sampler sit arbitrarily close to
    /// the opening edge for free.
    double trigger_mismatch_uirms = 0.01;
    /// Grid step for PDF convolution, in UI.
    double grid_dx = 5e-4;
    /// Density floor forwarded to stats::GridPdf::convolve: result bins
    /// below it are trimmed from the PDF tails before the next chained
    /// convolution. 0 (default) keeps every bin — outputs bit-identical to
    /// the historical model. 1e-18 is safe for this model's use: the BER
    /// integrals bottom out at the 1e-12..1e-15 decade, while the mass a
    /// 1e-18 floor can discard is < 1e-18 * grid_dx * bins ~ 1e-18.
    double pdf_prune_floor = 0.0;
    RunModel run_model = RunModel::kWeighted;
};

/// Statistical model instance; precomputes per-run-length error PDFs.
class GatedOscStatModel {
public:
    explicit GatedOscStatModel(const ModelConfig& cfg);

    /// P(sample of the last bit of a run of length L lands past the
    /// closing transition).
    [[nodiscard]] double late_error_prob(int run_length) const;

    /// P(sample of the first bit of a run lands before the triggering
    /// transition).
    [[nodiscard]] double early_error_prob() const;

    /// Bit error ratio under the configured run model.
    [[nodiscard]] double ber() const;

    /// Statistical eye margin for the worst run: distance in UI between the
    /// sample point and the 1e-12 quantile of the closing-edge
    /// distribution. Negative = eye closed at 1e-12.
    [[nodiscard]] double eye_margin_ui(double ber_target = 1e-12) const;

    [[nodiscard]] const ModelConfig& config() const { return cfg_; }

private:
    [[nodiscard]] stats::GridPdf relative_edge_pdf(int run_length) const;
    [[nodiscard]] double sj_effective_amplitude(int run_length) const;
    [[nodiscard]] double sample_instant_ui(int k) const;
    [[nodiscard]] double osc_sigma_ui(int k) const;

    ModelConfig cfg_;
};

/// Convenience: BER for a config (builds a model and evaluates it).
[[nodiscard]] double ber_of(const ModelConfig& cfg);

/// Jitter tolerance at one normalized SJ frequency: the largest SJ
/// amplitude (UIpp) keeping BER <= target. Binary search; `amp_cap` bounds
/// the search (low-frequency tolerance diverges for this topology).
[[nodiscard]] double jtol_amplitude(ModelConfig base, double sj_freq_norm,
                                    double ber_target = 1e-12,
                                    double amp_cap = 100.0);

/// Full JTOL curve over normalized frequencies, as absolute-frequency mask
/// points for comparison against masks::JtolMask. Each frequency's binary
/// search is independent; pass a pool to run them concurrently (the curve
/// is bit-identical to the serial evaluation).
[[nodiscard]] std::vector<masks::MaskPoint> jtol_curve(
    const ModelConfig& base, const std::vector<double>& sj_freq_norms,
    LinkRate rate, double ber_target = 1e-12,
    exec::ThreadPool* pool = nullptr);

/// Frequency tolerance: largest |delta| (both signs checked) keeping
/// BER <= target with no sinusoidal jitter beyond the base config.
[[nodiscard]] double ftol(ModelConfig base, double ber_target = 1e-12);

}  // namespace gcdr::statmodel
