#pragma once
// Bathtub-curve analysis: BER as a function of the sampling phase inside
// the bit cell. The standard way to visualize the Fig 10/17 trade-off —
// the mid-bit point (0.5 UI) is optimal at zero offset, while frequency
// offset and run-length accumulation skew the optimum toward the paper's
// advanced (-T/8) point.

#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr::statmodel {

struct BathtubPoint {
    double phase_ui;  ///< sampling position within the bit (0..1)
    double ber;
};

/// BER vs sampling phase over (phase_min, phase_max), n points. Everything
/// else (jitter, offset, CID) is taken from `base`; its sampling_advance
/// is overridden per point. When `metrics` is given, each BER model
/// evaluation ticks "statmodel.bathtub.points" (and each full curve
/// "statmodel.bathtub.curves") — bathtub sweeps dominate JTOL/FTOL search
/// cost, so the tallies locate where statistical-layer time goes.
/// Points are independent; pass `pool` to evaluate them concurrently
/// (curve values are bit-identical for any thread count).
[[nodiscard]] std::vector<BathtubPoint> bathtub_curve(
    ModelConfig base, int n_points = 49, double phase_min = 0.05,
    double phase_max = 0.95, obs::MetricsRegistry* metrics = nullptr,
    exec::ThreadPool* pool = nullptr);

/// Optimal sampling phase (minimum-BER point of the bathtub).
[[nodiscard]] BathtubPoint optimal_sampling_phase(
    const ModelConfig& base, int n_points = 49,
    obs::MetricsRegistry* metrics = nullptr);

/// Horizontal eye opening at `ber_target`: width of the bathtub region
/// whose BER stays at or below the target (0 if never reached).
[[nodiscard]] double bathtub_opening_ui(const ModelConfig& base,
                                        double ber_target = 1e-12,
                                        int n_points = 97,
                                        obs::MetricsRegistry* metrics = nullptr);

}  // namespace gcdr::statmodel
