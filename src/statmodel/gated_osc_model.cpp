#include "statmodel/gated_osc_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "util/mathx.hpp"

namespace gcdr::statmodel {

namespace {

/// Truncated-geometric run-length probabilities P(L = l), l = 1..cap.
/// Random data forces P(l) = 2^-l; the encoding folds the tail onto the cap
/// (a transition is inserted at the latest after `cap` identical bits).
std::vector<double> run_length_probs(int cap) {
    assert(cap >= 1);
    std::vector<double> p(cap);
    for (int l = 1; l < cap; ++l) {
        p[l - 1] = std::pow(0.5, l);
    }
    p[cap - 1] = std::pow(0.5, cap - 1);  // P(L >= cap)
    return p;
}

double mean_run_length(const std::vector<double>& p) {
    double m = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        m += static_cast<double>(i + 1) * p[i];
    }
    return m;
}

}  // namespace

GatedOscStatModel::GatedOscStatModel(const ModelConfig& cfg) : cfg_(cfg) {
    assert(cfg_.max_cid >= 1);
    assert(cfg_.grid_dx > 0.0);
}

double GatedOscStatModel::sample_instant_ui(int k) const {
    return (static_cast<double>(k) - 0.5 - cfg_.sampling_advance_ui) *
           (1.0 + cfg_.freq_offset);
}

double GatedOscStatModel::osc_sigma_ui(int k) const {
    // CKJ is quoted at cid_ref bit periods of free run; white-noise
    // accumulation scales as sqrt(elapsed time).
    const double elapsed_ui =
        std::max(0.0, static_cast<double>(k) - 0.5 - cfg_.sampling_advance_ui);
    return cfg_.spec.ckj_uirms *
           std::sqrt(elapsed_ui / static_cast<double>(cfg_.cid_ref));
}

stats::GridPdf GatedOscStatModel::relative_edge_pdf(int run_length) const {
    // PDF of (closing-edge jitter) - (sample-instant jitter), in UI.
    const double dx = cfg_.grid_dx;
    std::vector<stats::GridPdf> parts;

    // DJ enters once, not from both edges: deterministic jitter in serial
    // links is pattern-correlated (ISI, duty-cycle distortion), and the
    // Table 1 DJ number quantifies the total deterministic eye closure
    // relative to the recovered clock. Treating the trigger and closing
    // edges' DJ as independent would double-count it and push the Table 1
    // budget's BER floor to ~1e-7, contradicting the paper's Fig 9.
    if (cfg_.spec.dj_uipp > 0.0) {
        parts.push_back(stats::GridPdf::uniform(cfg_.spec.dj_uipp, dx));
    }
    // RJ of both edges and the oscillator's accumulated jitter are
    // independent Gaussians; combine into one.
    const double rj2 = 2.0 * cfg_.spec.rj_uirms * cfg_.spec.rj_uirms;
    const double osc = osc_sigma_ui(run_length);
    const double sigma = std::sqrt(rj2 + osc * osc);
    if (sigma > 0.0) {
        parts.push_back(stats::GridPdf::gaussian(sigma, dx));
    }
    return stats::convolve_all(parts, dx, cfg_.pdf_prune_floor);
}

double GatedOscStatModel::sj_effective_amplitude(int run_length) const {
    // Coherent sinusoid sampled `run_length` UI apart: the difference is a
    // sinusoid of amplitude A_pp * |sin(pi * f_norm * L)|. (A_pp because
    // the jitter sinusoid's own amplitude is A_pp/2 and the difference
    // doubles it at the resonant spacing.)
    if (cfg_.spec.sj_uipp <= 0.0 || cfg_.sj_freq_norm <= 0.0) return 0.0;
    return cfg_.spec.sj_uipp *
           std::abs(std::sin(std::numbers::pi * cfg_.sj_freq_norm *
                             static_cast<double>(run_length)));
}

double GatedOscStatModel::late_error_prob(int run_length) const {
    // Error when  L + dJ  <  s_L  + osc_jitter:  P(X + S < margin)  with
    // X = (DJ + RJ + osc) relative PDF, S the effective SJ sinusoid and
    // margin = s_L - L (in UI). The SJ average is taken exactly over the
    // sinusoid phase (512-point rectangle rule) instead of convolving an
    // arcsine PDF — same math, no grid blow-up at multi-UI amplitudes.
    const double margin =
        sample_instant_ui(run_length) - static_cast<double>(run_length);
    const auto pdf = relative_edge_pdf(run_length);
    const double a_eff = sj_effective_amplitude(run_length);
    if (a_eff <= 0.0) {
        return std::min(1.0, pdf.tail_below(margin));
    }
    constexpr int kPhases = 512;
    double acc = 0.0;
    for (int i = 0; i < kPhases; ++i) {
        const double theta = 2.0 * std::numbers::pi *
                             (static_cast<double>(i) + 0.5) /
                             static_cast<double>(kPhases);
        acc += pdf.tail_below(margin - a_eff * std::sin(theta));
    }
    return std::min(1.0, acc / static_cast<double>(kPhases));
}

double GatedOscStatModel::early_error_prob() const {
    // First bit of a run sampled before its own trigger: the trigger is
    // the common time reference, so only the oscillator's short-horizon
    // jitter and the EDET/DDIN path mismatch apply.
    const double s1 = sample_instant_ui(1);
    const double osc = osc_sigma_ui(1);
    const double mm = cfg_.trigger_mismatch_uirms;
    const double sigma = std::sqrt(osc * osc + mm * mm);
    if (sigma <= 0.0) return s1 < 0.0 ? 1.0 : 0.0;
    return q_function(s1 / sigma);
}

double GatedOscStatModel::ber() const {
    if (cfg_.run_model == RunModel::kWorstCase) {
        return std::min(1.0,
                        late_error_prob(cfg_.max_cid) + early_error_prob());
    }
    const auto probs = run_length_probs(cfg_.max_cid);
    const double mean_l = mean_run_length(probs);
    double errors_per_run = early_error_prob();
    for (int l = 1; l <= cfg_.max_cid; ++l) {
        errors_per_run += probs[l - 1] * late_error_prob(l);
    }
    return std::min(1.0, errors_per_run / mean_l);
}

double GatedOscStatModel::eye_margin_ui(double ber_target) const {
    const int L = cfg_.max_cid;
    const auto pdf = relative_edge_pdf(L);
    const double a_eff = sj_effective_amplitude(L);
    // SJ-phase-averaged lower tail at offset x.
    auto tail_at = [&](double x) {
        if (a_eff <= 0.0) return pdf.tail_below(x);
        constexpr int kPhases = 128;
        double acc = 0.0;
        for (int i = 0; i < kPhases; ++i) {
            const double theta = 2.0 * std::numbers::pi *
                                 (static_cast<double>(i) + 0.5) /
                                 static_cast<double>(kPhases);
            acc += pdf.tail_below(x - a_eff * std::sin(theta));
        }
        return acc / static_cast<double>(kPhases);
    };
    const double margin =
        sample_instant_ui(L) - static_cast<double>(L);
    // Walk the margin left until the tail mass drops below target: the
    // distance walked is the margin to the 1e-12 contour.
    const double dx = cfg_.grid_dx;
    double x = margin;
    if (tail_at(x) <= ber_target) {
        // Already compliant: how much later could we sample?
        while (tail_at(x + dx) <= ber_target && x < 2.0) x += dx;
        return x - margin;
    }
    while (tail_at(x) > ber_target && x > -2.0) x -= dx;
    return x - margin;  // negative: how far the eye is closed
}

double ber_of(const ModelConfig& cfg) {
    return GatedOscStatModel(cfg).ber();
}

double jtol_amplitude(ModelConfig base, double sj_freq_norm,
                      double ber_target, double amp_cap) {
    base.sj_freq_norm = sj_freq_norm;

    auto ber_at = [&base](double amp) {
        ModelConfig c = base;
        c.spec.sj_uipp = amp;
        return ber_of(c);
    };

    if (ber_at(amp_cap) <= ber_target) return amp_cap;
    if (ber_at(0.0) > ber_target) return 0.0;

    double lo = 0.0, hi = amp_cap;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (ber_at(mid) <= ber_target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

std::vector<masks::MaskPoint> jtol_curve(const ModelConfig& base,
                                         const std::vector<double>& sj_freq_norms,
                                         LinkRate rate, double ber_target,
                                         exec::ThreadPool* pool) {
    std::vector<masks::MaskPoint> out(sj_freq_norms.size());
    auto eval_point = [&](std::size_t i) {
        const double fn = sj_freq_norms[i];
        out[i] = masks::MaskPoint{fn * rate.bits_per_second(),
                                  jtol_amplitude(base, fn, ber_target)};
    };
    if (pool) {
        pool->parallel_for(out.size(), eval_point);
    } else {
        for (std::size_t i = 0; i < out.size(); ++i) eval_point(i);
    }
    return out;
}

double ftol(ModelConfig base, double ber_target) {
    auto ber_at = [&base](double delta) {
        ModelConfig c = base;
        c.freq_offset = delta;
        return ber_of(c);
    };
    // FTOL is quoted as a symmetric bound: the smaller of the two one-sided
    // tolerances (a slow oscillator fails sooner than a fast one at the
    // mid-bit sampling point, and vice versa for the advanced one).
    double worst = 0.5;
    for (double sign : {+1.0, -1.0}) {
        if (ber_at(sign * 0.5) <= ber_target) continue;
        if (ber_at(0.0) > ber_target) return 0.0;
        double lo = 0.0, hi = 0.5;
        for (int i = 0; i < 60; ++i) {
            const double mid = 0.5 * (lo + hi);
            if (ber_at(sign * mid) <= ber_target) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        worst = std::min(worst, lo);
    }
    return worst;
}

}  // namespace gcdr::statmodel
