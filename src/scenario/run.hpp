#pragma once
// Executing a validated scenario. run_scenario() walks the document's
// tasks and reproduces, metric for metric, the structure of the
// hard-coded benches each task kind replaces: the same SweepRunner /
// parallel_for call pattern (so exec.jobs / exec.items counters match),
// the same ShardedCounter and ErrorCounter usage, the same gauge and
// histogram names under the task's prefix. A golden scenario mirroring
// bench_fig9_ber_sj therefore produces a report that diffs bit-identical
// under scripts/bench_diff.py --require-identical-counters — CI enforces
// exactly that.
//
// Besides metrics, every task returns a deterministic TaskResult
// (scalars + series) that depends only on (document, seed, thread-count-
// invariant math). The serving daemon builds its cached payloads from
// TaskResults, never from the registry, because timers are wall-clock.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario_doc.hpp"

namespace gcdr::scenario {

struct ScenarioContext {
    obs::MetricsRegistry* metrics = nullptr;  ///< required
    exec::ThreadPool* pool = nullptr;         ///< required
    std::uint64_t seed = 1;
    bool verbose = false;  ///< print bench-style tables to stdout
    /// When set, health_probe tasks wire lane-health lock-loss dumps (and
    /// the receiver's own fault hooks) into this recorder.
    obs::FlightRecorder* flight = nullptr;
    /// When set, health_probe tasks call this after every run slice with
    /// a gcdr.health/v1 snapshot — the daemon's /v1/watch live stream.
    /// The final frame equals the task's health_json byte for byte.
    std::function<void(const std::string&)> health_frame_sink;
};

/// Deterministic output of one task: named scalars plus named series,
/// both in sorted key order. Identical for any thread count.
struct TaskResult {
    std::string prefix;
    std::string kind;
    bool ok = true;  ///< differential gates / mask checks passed
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<std::pair<std::string, std::vector<double>>> series;
    /// health_probe only: final gcdr.health/v1 snapshot (compact JSON).
    std::string health_json;
};

struct ScenarioResult {
    std::vector<TaskResult> tasks;  ///< document order
    bool ok = true;                 ///< all tasks ok
};

/// Run every task of the document. The context's registry/pool are
/// typically a bench::RunReport's (bench_scenario) or scratch instances
/// (the daemon's scenario executor).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioDoc& doc,
                                          const ScenarioContext& ctx);

/// Canonical JSON payload of a result: {"name":...,"ok":...,"tasks":{
/// <prefix>:{"kind":...,"ok":...,"scalars":{..},"series":{..}}}}, keys
/// sorted, obs/canonical number rendering — byte-stable across runs and
/// thread counts, the daemon's cacheable scenario payload.
[[nodiscard]] std::string result_payload_json(const ScenarioDoc& doc,
                                              const ScenarioResult& result);

}  // namespace gcdr::scenario
