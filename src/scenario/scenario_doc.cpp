#include "scenario/scenario_doc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/canonical.hpp"
#include "obs/json.hpp"
#include "util/hash.hpp"
#include "util/mathx.hpp"

namespace gcdr::scenario {

std::string Diagnostic::render() const {
    std::string out;
    if (!file.empty()) {
        out += file;
        if (line > 0) {
            out += ':' + std::to_string(line) + ':' + std::to_string(column);
        }
        out += ": ";
    }
    if (!path.empty()) {
        out += "at " + path + ": ";
    }
    out += message;
    return out;
}

const char* task_kind_name(TaskSpec::Kind k) {
    switch (k) {
        case TaskSpec::Kind::kBerSurface:
            return "ber_surface";
        case TaskSpec::Kind::kBaselineJtol:
            return "baseline_jtol";
        case TaskSpec::Kind::kNetlistRun:
            return "netlist_run";
        case TaskSpec::Kind::kDifferential:
            return "differential";
        case TaskSpec::Kind::kHealthProbe:
            return "health_probe";
    }
    return "?";
}

bool apply_model_field(statmodel::ModelConfig& cfg, std::string_view name,
                       double value) {
    if (name == "sj_freq_norm") {
        cfg.sj_freq_norm = value;
    } else if (name == "freq_offset") {
        cfg.freq_offset = value;
    } else if (name == "sampling_advance_ui") {
        cfg.sampling_advance_ui = value;
    } else if (name == "trigger_mismatch_uirms") {
        cfg.trigger_mismatch_uirms = value;
    } else if (name == "grid_dx") {
        cfg.grid_dx = value;
    } else if (name == "pdf_prune_floor") {
        cfg.pdf_prune_floor = value;
    } else if (name == "dj_uipp") {
        cfg.spec.dj_uipp = value;
    } else if (name == "rj_uirms") {
        cfg.spec.rj_uirms = value;
    } else if (name == "sj_uipp") {
        cfg.spec.sj_uipp = value;
    } else if (name == "ckj_uirms") {
        cfg.spec.ckj_uirms = value;
    } else {
        return false;
    }
    return true;
}

namespace {

/// Validation context: every fail() appends one Diagnostic (with
/// line/column resolved from the value's byte offset when the source
/// text is at hand) and keeps going, so a bad document reports as many
/// problems as one pass can see.
struct Ctx {
    std::string_view source;
    std::string_view file;
    std::vector<Diagnostic>* diags;

    void fail(const obs::JsonValue* v, std::string path, std::string msg) {
        Diagnostic d;
        d.file = std::string(file);
        d.path = std::move(path);
        d.message = std::move(msg);
        if (v && !source.empty()) {
            const obs::LineColumn lc = obs::line_column(source, v->offset);
            d.line = lc.line;
            d.column = lc.column;
        }
        diags->push_back(std::move(d));
    }
};

bool is_identifier(std::string_view s) {
    if (s.empty() || s.size() > 64) return false;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) return false;
    }
    return true;
}

bool read_double(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
                 double& out) {
    if (!v.is_number() || !std::isfinite(v.number)) {
        ctx.fail(&v, path, "want a finite number");
        return false;
    }
    out = v.number;
    return true;
}

bool read_uint(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
               std::uint64_t& out) {
    if (!v.is_number()) {
        ctx.fail(&v, path, "want a non-negative integer");
        return false;
    }
    const std::uint64_t sentinel = ~std::uint64_t{0};
    const std::uint64_t got = v.uint_or(sentinel);
    if (got == sentinel) {
        ctx.fail(&v, path, "want a non-negative integer");
        return false;
    }
    out = got;
    return true;
}

bool read_bool(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
               bool& out) {
    if (!v.is_bool()) {
        ctx.fail(&v, path, "want true or false");
        return false;
    }
    out = v.boolean;
    return true;
}

bool read_string(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
                 std::string& out) {
    if (!v.is_string()) {
        ctx.fail(&v, path, "want a string");
        return false;
    }
    out = v.text;
    return true;
}

/// Bound on expanded sweep values — a generator that asks for more is a
/// config bug, not a workload.
constexpr std::size_t kMaxSweepValues = 10'000;

/// Parse a from/to range object shared by linspace/logspace/steps.
bool read_range(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
                double& from, double& to, double* step,
                std::uint64_t* points) {
    if (!v.is_object()) {
        ctx.fail(&v, path, "want an object");
        return false;
    }
    bool ok = true, saw_from = false, saw_to = false;
    bool saw_third = false;
    for (const auto& [key, val] : v.members) {
        const std::string kp = path + "." + key;
        if (key == "from") {
            saw_from = read_double(ctx, val, kp, from);
            ok = ok && saw_from;
        } else if (key == "to") {
            saw_to = read_double(ctx, val, kp, to);
            ok = ok && saw_to;
        } else if (step && key == "step") {
            saw_third = read_double(ctx, val, kp, *step);
            ok = ok && saw_third;
        } else if (points && key == "points") {
            saw_third = read_uint(ctx, val, kp, *points);
            ok = ok && saw_third;
        } else {
            ctx.fail(&val, kp, "unknown key \"" + key + "\"");
            ok = false;
        }
    }
    if (ok && (!saw_from || !saw_to || !saw_third)) {
        ctx.fail(&v, path,
                 std::string("want {\"from\", \"to\", ") +
                     (step ? "\"step\"}" : "\"points\"}"));
        ok = false;
    }
    return ok;
}

/// Expand one values spec — a literal array or a generator object — to an
/// explicit list. Generators call util::linspace/logspace so the doubles
/// are bit-identical to the C++ benches that build the same grids.
bool read_values(Ctx& ctx, const obs::JsonValue& v, const std::string& path,
                 std::vector<double>& out) {
    out.clear();
    if (v.is_array()) {
        if (v.items.empty()) {
            ctx.fail(&v, path, "want at least one value");
            return false;
        }
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            double d = 0.0;
            if (!read_double(ctx, v.items[i],
                             path + "[" + std::to_string(i) + "]", d)) {
                return false;
            }
            out.push_back(d);
        }
        return true;
    }
    if (!v.is_object() || v.members.size() != 1) {
        ctx.fail(&v, path,
                 "want an array of numbers or exactly one of "
                 "{\"values\"|\"linspace\"|\"logspace\"|\"steps\"}");
        return false;
    }
    const auto& [key, val] = v.members.front();
    const std::string kp = path + "." + key;
    if (key == "values") {
        if (!val.is_array()) {
            ctx.fail(&val, kp, "want an array of numbers");
            return false;
        }
        return read_values(ctx, val, kp, out);
    }
    if (key == "linspace" || key == "logspace") {
        double from = 0.0, to = 0.0;
        std::uint64_t points = 0;
        if (!read_range(ctx, val, kp, from, to, nullptr, &points)) {
            return false;
        }
        if (points < 2 || points > kMaxSweepValues) {
            ctx.fail(&val, kp + ".points",
                     "want an integer in [2, " +
                         std::to_string(kMaxSweepValues) + "]");
            return false;
        }
        if (key == "logspace" && (from <= 0.0 || to <= 0.0)) {
            ctx.fail(&val, kp, "logspace endpoints must be positive");
            return false;
        }
        out = key == "linspace"
                  ? linspace(from, to, static_cast<std::size_t>(points))
                  : logspace(from, to, static_cast<std::size_t>(points));
        return true;
    }
    if (key == "steps") {
        double from = 0.0, to = 0.0, step = 0.0;
        if (!read_range(ctx, val, kp, from, to, &step, nullptr)) {
            return false;
        }
        if (step <= 0.0) {
            ctx.fail(&val, kp + ".step",
                     "sweep step must be positive, got " +
                         std::to_string(step));
            return false;
        }
        if (to < from) {
            ctx.fail(&val, kp, "want from <= to");
            return false;
        }
        // Half-step tolerance on the upper end so from=0.1 to=0.5
        // step=0.1 yields five points despite binary rounding.
        const double n_exact = (to - from) / step;
        const std::size_t n =
            static_cast<std::size_t>(std::floor(n_exact + 0.5 * 1e-9)) + 1;
        if (n > kMaxSweepValues) {
            ctx.fail(&val, kp,
                     "steps generator yields " + std::to_string(n) +
                         " points, cap is " +
                         std::to_string(kMaxSweepValues));
            return false;
        }
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(from + static_cast<double>(i) * step);
        }
        return true;
    }
    ctx.fail(&val, kp, "unknown key \"" + key + "\"");
    return false;
}

void parse_model(Ctx& ctx, const obs::JsonValue& v,
                 statmodel::ModelConfig& cfg) {
    if (!v.is_object()) {
        ctx.fail(&v, "model", "want an object");
        return;
    }
    for (const auto& [key, val] : v.members) {
        const std::string kp = "model." + key;
        if (key == "max_cid" || key == "cid_ref") {
            std::uint64_t n = 0;
            if (read_uint(ctx, val, kp, n)) {
                if (n < 1 || n > 16) {
                    ctx.fail(&val, kp, "want an integer in [1, 16]");
                } else {
                    (key == "max_cid" ? cfg.max_cid : cfg.cid_ref) =
                        static_cast<int>(n);
                }
            }
        } else if (key == "run_model") {
            std::string m;
            if (read_string(ctx, val, kp, m)) {
                if (m == "weighted") {
                    cfg.run_model = statmodel::RunModel::kWeighted;
                } else if (m == "worst_case") {
                    cfg.run_model = statmodel::RunModel::kWorstCase;
                } else {
                    ctx.fail(&val, kp,
                             "want \"weighted\" or \"worst_case\"");
                }
            }
        } else {
            double d = 0.0;
            if (!read_double(ctx, val, kp, d)) continue;
            statmodel::ModelConfig probe;
            if (!apply_model_field(probe, key, d)) {
                ctx.fail(&val, kp, "unknown key \"" + key + "\"");
                continue;
            }
            (void)apply_model_field(cfg, key, d);
        }
    }
    if (cfg.grid_dx <= 0.0 || cfg.grid_dx > 0.1) {
        ctx.fail(&v, "model.grid_dx", "want in (0, 0.1]");
    }
    if (cfg.spec.dj_uipp < 0.0 || cfg.spec.rj_uirms < 0.0 ||
        cfg.spec.sj_uipp < 0.0 || cfg.spec.ckj_uirms < 0.0) {
        ctx.fail(&v, "model", "jitter budget terms must be >= 0");
    }
}

void parse_mc(Ctx& ctx, const obs::JsonValue& v, McSpec& mc) {
    if (!v.is_object()) {
        ctx.fail(&v, "mc", "want an object");
        return;
    }
    for (const auto& [key, val] : v.members) {
        const std::string kp = "mc." + key;
        if (key == "max_evals") {
            if (read_uint(ctx, val, kp, mc.max_evals) &&
                mc.max_evals == 0) {
                ctx.fail(&val, kp,
                         "mc.max_evals must be >= 1 (a zero budget "
                         "computes nothing)");
            }
        } else if (key == "target_rel_err") {
            if (read_double(ctx, val, kp, mc.target_rel_err) &&
                mc.target_rel_err <= 0.0) {
                ctx.fail(&val, kp, "want a positive number");
            }
        } else if (key == "confidence") {
            if (read_double(ctx, val, kp, mc.confidence) &&
                (mc.confidence <= 0.0 || mc.confidence >= 1.0)) {
                ctx.fail(&val, kp, "want in (0, 1)");
            }
        } else {
            ctx.fail(&val, kp, "unknown key \"" + key + "\"");
        }
    }
}

// --- netlist -------------------------------------------------------------

struct PortRef {
    std::string inst, port;
};

bool split_endpoint(const std::string& text, PortRef& out) {
    const auto dot = text.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= text.size()) {
        return false;
    }
    out.inst = text.substr(0, dot);
    out.port = text.substr(dot + 1);
    return out.port.find('.') == std::string::npos;
}

enum class InstKind { kSource, kChannel, kMonitor };

void parse_netlist(Ctx& ctx, const obs::JsonValue& v, NetlistSpec& net) {
    if (!v.is_object()) {
        ctx.fail(&v, "netlist", "want an object");
        return;
    }
    const obs::JsonValue* instances = nullptr;
    const obs::JsonValue* wires = nullptr;
    for (const auto& [key, val] : v.members) {
        if (key == "instances") {
            instances = &val;
        } else if (key == "wires") {
            wires = &val;
        } else {
            ctx.fail(&val, "netlist." + key, "unknown key \"" + key + "\"");
        }
    }
    if (!instances || !instances->is_object()) {
        ctx.fail(instances ? instances : &v, "netlist.instances",
                 "want an object of named instances");
        return;
    }

    // Instances. Names must be identifiers and unique (json_parse keeps
    // duplicate keys, so duplicates are detectable here).
    std::vector<std::pair<std::string, InstKind>> kinds;
    for (const auto& [name, inst] : instances->members) {
        const std::string ip = "netlist.instances." + name;
        if (!is_identifier(name)) {
            ctx.fail(&inst, ip,
                     "instance name must be [A-Za-z0-9_]{1,64}");
            continue;
        }
        bool dup = false;
        for (const auto& [seen, k] : kinds) {
            (void)k;
            if (seen == name) dup = true;
        }
        if (dup) {
            ctx.fail(&inst, ip, "duplicate instance \"" + name + "\"");
            continue;
        }
        if (!inst.is_object()) {
            ctx.fail(&inst, ip, "want an object");
            continue;
        }
        const obs::JsonValue* kindv = inst.find("kind");
        const std::string kind = kindv ? kindv->string_or("") : "";
        if (kind == "source") {
            SourceSpec s;
            s.name = name;
            bool saw_bits = false, saw_prbs = false, saw_repeat = false;
            for (const auto& [key, val] : inst.members) {
                const std::string kp = ip + "." + key;
                if (key == "kind") continue;
                if (key == "bits") {
                    saw_bits = true;
                    if (read_uint(ctx, val, kp, s.bits) &&
                        (s.bits < 1 || s.bits > 10'000'000)) {
                        ctx.fail(&val, kp,
                                 "want an integer in [1, 10000000]");
                    }
                } else if (key == "prbs") {
                    saw_prbs = true;
                    std::uint64_t order = 0;
                    if (read_uint(ctx, val, kp, order)) {
                        if (order != 7 && order != 9 && order != 15 &&
                            order != 23 && order != 31) {
                            ctx.fail(&val, kp,
                                     "want a PRBS order: 7, 9, 15, 23 or "
                                     "31");
                        } else {
                            s.prbs = static_cast<int>(order);
                        }
                    }
                } else if (key == "start_ns") {
                    if (read_double(ctx, val, kp, s.start_ns) &&
                        s.start_ns < 0.0) {
                        ctx.fail(&val, kp, "want >= 0");
                    }
                } else if (key == "pattern") {
                    if (!val.is_array() || val.items.empty() ||
                        val.items.size() > 4096) {
                        ctx.fail(&val, kp,
                                 "want an array of 0/1 bits, size "
                                 "[1, 4096]");
                        continue;
                    }
                    s.pattern.clear();
                    for (std::size_t b = 0; b < val.items.size(); ++b) {
                        const obs::JsonValue& bit = val.items[b];
                        const std::uint64_t got = bit.uint_or(2);
                        if (!bit.is_number() || got > 1) {
                            ctx.fail(&bit,
                                     kp + "[" + std::to_string(b) + "]",
                                     "pattern bits must be 0 or 1");
                            break;
                        }
                        s.pattern.push_back(static_cast<int>(got));
                    }
                } else if (key == "repeat") {
                    saw_repeat = true;
                    if (read_uint(ctx, val, kp, s.repeat) &&
                        (s.repeat < 1 || s.repeat > 100'000)) {
                        ctx.fail(&val, kp,
                                 "want an integer in [1, 100000]");
                    }
                } else if (key == "rate_offset") {
                    if (read_double(ctx, val, kp, s.rate_offset) &&
                        std::fabs(s.rate_offset) > 0.5) {
                        ctx.fail(&val, kp, "want in [-0.5, 0.5]");
                    }
                } else {
                    ctx.fail(&val, kp, "unknown key \"" + key + "\"");
                }
            }
            if (!s.pattern.empty() && (saw_bits || saw_prbs)) {
                ctx.fail(&inst, ip,
                         "\"pattern\" replaces the PRBS stream; it "
                         "cannot be combined with \"bits\" or \"prbs\"");
            }
            if (saw_repeat && s.pattern.empty()) {
                ctx.fail(&inst, ip,
                         "\"repeat\" only applies to a \"pattern\" "
                         "source");
            }
            net.sources.push_back(std::move(s));
            kinds.emplace_back(name, InstKind::kSource);
        } else if (kind == "channel") {
            ChannelSpec c;
            c.name = name;
            for (const auto& [key, val] : inst.members) {
                const std::string kp = ip + "." + key;
                if (key == "kind") continue;
                if (key == "f_osc_hz") {
                    if (read_double(ctx, val, kp, c.f_osc_hz) &&
                        c.f_osc_hz <= 0.0) {
                        ctx.fail(&val, kp, "want > 0");
                    }
                } else if (key == "ckj_uirms") {
                    if (read_double(ctx, val, kp, c.ckj_uirms) &&
                        c.ckj_uirms < 0.0) {
                        ctx.fail(&val, kp, "want >= 0");
                    }
                } else if (key == "improved_sampling") {
                    (void)read_bool(ctx, val, kp, c.improved_sampling);
                } else {
                    ctx.fail(&val, kp, "unknown key \"" + key + "\"");
                }
            }
            net.channels.push_back(std::move(c));
            kinds.emplace_back(name, InstKind::kChannel);
        } else if (kind == "monitor") {
            MonitorSpec m;
            m.name = name;
            for (const auto& [key, val] : inst.members) {
                if (key == "kind") continue;
                ctx.fail(&val, ip + "." + key,
                         "unknown key \"" + key + "\"");
            }
            net.monitors.push_back(std::move(m));
            kinds.emplace_back(name, InstKind::kMonitor);
        } else {
            ctx.fail(kindv ? kindv : &inst, ip + ".kind",
                     "want \"source\", \"channel\" or \"monitor\"");
        }
    }
    if (net.channels.empty()) {
        ctx.fail(instances, "netlist.instances",
                 "netlist needs at least one channel instance");
    }

    // The multichannel receiver instantiates one shared channel template,
    // so per-instance channel parameters must agree.
    for (std::size_t i = 1; i < net.channels.size(); ++i) {
        const ChannelSpec& a = net.channels[0];
        const ChannelSpec& b = net.channels[i];
        if (a.f_osc_hz != b.f_osc_hz || a.ckj_uirms != b.ckj_uirms ||
            a.improved_sampling != b.improved_sampling) {
            ctx.fail(instances, "netlist.instances." + b.name,
                     "channel parameters must match across instances "
                     "(the multichannel receiver shares one channel "
                     "template); \"" +
                         b.name + "\" differs from \"" + a.name + "\"");
        }
    }

    auto kind_of = [&](const std::string& name,
                       InstKind& out) {
        for (const auto& [seen, k] : kinds) {
            if (seen == name) {
                out = k;
                return true;
            }
        }
        return false;
    };

    // Wires: "inst.port" endpoints, output -> input only.
    if (wires) {
        if (!wires->is_array()) {
            ctx.fail(wires, "netlist.wires", "want an array");
            return;
        }
        for (std::size_t i = 0; i < wires->items.size(); ++i) {
            const obs::JsonValue& wv = wires->items[i];
            const std::string wp =
                "netlist.wires[" + std::to_string(i) + "]";
            if (!wv.is_object()) {
                ctx.fail(&wv, wp, "want an object");
                continue;
            }
            WireSpec w;
            bool ok = true;
            bool saw_from = false, saw_to = false;
            for (const auto& [key, val] : wv.members) {
                const std::string kp = wp + "." + key;
                if (key == "from" || key == "to") {
                    std::string text;
                    if (!read_string(ctx, val, kp, text)) {
                        ok = false;
                        continue;
                    }
                    PortRef ref;
                    if (!split_endpoint(text, ref)) {
                        ctx.fail(&val, kp,
                                 "want \"instance.port\", got \"" + text +
                                     "\"");
                        ok = false;
                        continue;
                    }
                    InstKind k{};
                    if (!kind_of(ref.inst, k)) {
                        ctx.fail(&val, kp,
                                 "unknown instance \"" + ref.inst + "\"");
                        ok = false;
                        continue;
                    }
                    // Port tables per kind; from must name an output, to
                    // an input.
                    const bool is_output =
                        (k == InstKind::kSource && ref.port == "out") ||
                        (k == InstKind::kChannel && ref.port == "dout");
                    const bool is_input =
                        (k == InstKind::kChannel && ref.port == "din") ||
                        (k == InstKind::kMonitor && ref.port == "in");
                    if (!is_output && !is_input) {
                        ctx.fail(&val, kp,
                                 "instance \"" + ref.inst +
                                     "\" has no port \"" + ref.port +
                                     "\"");
                        ok = false;
                        continue;
                    }
                    if (key == "from") {
                        if (!is_output) {
                            ctx.fail(&val, kp,
                                     "\"" + ref.port +
                                         "\" is an input port; a wire's "
                                         "\"from\" must be an output");
                            ok = false;
                            continue;
                        }
                        w.from_inst = ref.inst;
                        w.from_port = ref.port;
                        saw_from = true;
                    } else {
                        if (!is_input) {
                            ctx.fail(&val, kp,
                                     "\"" + ref.port +
                                         "\" is an output port; a wire's "
                                         "\"to\" must be an input");
                            ok = false;
                            continue;
                        }
                        w.to_inst = ref.inst;
                        w.to_port = ref.port;
                        saw_to = true;
                    }
                } else if (key == "skew_ps") {
                    ok = read_double(ctx, val, kp, w.skew_ps) && ok;
                } else {
                    ctx.fail(&val, kp, "unknown key \"" + key + "\"");
                    ok = false;
                }
            }
            if (ok && (!saw_from || !saw_to)) {
                ctx.fail(&wv, wp, "want both \"from\" and \"to\"");
                ok = false;
            }
            if (ok) {
                // Wire type check: source.out feeds channel.din,
                // channel.dout feeds monitor.in.
                InstKind fk{}, tk{};
                (void)kind_of(w.from_inst, fk);
                (void)kind_of(w.to_inst, tk);
                if (fk == InstKind::kSource && tk != InstKind::kChannel) {
                    ctx.fail(&wv, wp,
                             "a source output must drive a channel din");
                    ok = false;
                } else if (fk == InstKind::kChannel &&
                           tk != InstKind::kMonitor) {
                    ctx.fail(&wv, wp,
                             "a channel dout must drive a monitor in");
                    ok = false;
                }
            }
            if (ok) net.wires.push_back(std::move(w));
        }
    }

    // Connectivity: every channel din and monitor in driven exactly once,
    // every source output driving at least one channel.
    for (const ChannelSpec& c : net.channels) {
        int drivers = 0;
        for (const WireSpec& w : net.wires) {
            if (w.to_inst == c.name && w.to_port == "din") ++drivers;
        }
        if (drivers == 0) {
            ctx.fail(wires ? wires : instances, "netlist.wires",
                     "channel \"" + c.name +
                         "\" input din is not driven by any wire");
        } else if (drivers > 1) {
            ctx.fail(wires, "netlist.wires",
                     "channel \"" + c.name +
                         "\" input din is driven more than once");
        }
    }
    for (const MonitorSpec& m : net.monitors) {
        int drivers = 0;
        for (const WireSpec& w : net.wires) {
            if (w.to_inst == m.name && w.to_port == "in") ++drivers;
        }
        if (drivers == 0) {
            ctx.fail(wires ? wires : instances, "netlist.wires",
                     "monitor \"" + m.name +
                         "\" input in is not driven by any wire");
        } else if (drivers > 1) {
            ctx.fail(wires, "netlist.wires",
                     "monitor \"" + m.name +
                         "\" input in is driven more than once");
        }
    }
    for (const SourceSpec& s : net.sources) {
        bool drives = false;
        for (const WireSpec& w : net.wires) {
            if (w.from_inst == s.name) drives = true;
        }
        if (!drives) {
            ctx.fail(wires ? wires : instances, "netlist.wires",
                     "source \"" + s.name +
                         "\" output out drives nothing");
        }
    }

    // Canonical orders: instances by name, wires by (from, to). Channel i
    // of the compiled receiver is channels[i] under this order, so the
    // compile is a function of the canonical form, not of key order.
    auto by_name = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };
    std::sort(net.sources.begin(), net.sources.end(), by_name);
    std::sort(net.channels.begin(), net.channels.end(), by_name);
    std::sort(net.monitors.begin(), net.monitors.end(), by_name);
    std::sort(net.wires.begin(), net.wires.end(),
              [](const WireSpec& a, const WireSpec& b) {
                  if (a.from_inst != b.from_inst)
                      return a.from_inst < b.from_inst;
                  if (a.from_port != b.from_port)
                      return a.from_port < b.from_port;
                  if (a.to_inst != b.to_inst) return a.to_inst < b.to_inst;
                  return a.to_port < b.to_port;
              });
}

// --- tasks ---------------------------------------------------------------

void parse_task(Ctx& ctx, const obs::JsonValue& v, const std::string& tp,
                TaskSpec& task) {
    const obs::JsonValue* kindv = v.find("kind");
    const std::string kind = kindv ? kindv->string_or("") : "";
    if (kind == "ber_surface") {
        task.kind = TaskSpec::Kind::kBerSurface;
    } else if (kind == "baseline_jtol") {
        task.kind = TaskSpec::Kind::kBaselineJtol;
    } else if (kind == "netlist_run") {
        task.kind = TaskSpec::Kind::kNetlistRun;
    } else if (kind == "differential") {
        task.kind = TaskSpec::Kind::kDifferential;
    } else if (kind == "health_probe") {
        task.kind = TaskSpec::Kind::kHealthProbe;
    } else {
        ctx.fail(kindv ? kindv : &v, tp + ".kind",
                 "want \"ber_surface\", \"baseline_jtol\", "
                 "\"netlist_run\", \"differential\" or \"health_probe\"");
        return;
    }
    task.prefix = task_kind_name(task.kind);

    const bool surface = task.kind == TaskSpec::Kind::kBerSurface;
    const bool baseline = task.kind == TaskSpec::Kind::kBaselineJtol;
    const bool differential = task.kind == TaskSpec::Kind::kDifferential;
    const bool healthprobe = task.kind == TaskSpec::Kind::kHealthProbe;

    for (const auto& [key, val] : v.members) {
        const std::string kp = tp + "." + key;
        if (key == "kind") continue;
        if (key == "prefix") {
            std::string p;
            if (read_string(ctx, val, kp, p)) {
                bool ok = !p.empty() && p.size() <= 64;
                for (char c : p) {
                    ok = ok && ((c >= 'a' && c <= 'z') ||
                                (c >= '0' && c <= '9') || c == '_' ||
                                c == '.');
                }
                if (!ok) {
                    ctx.fail(&val, kp,
                             "metric prefix must be [a-z0-9_.]{1,64}");
                } else {
                    task.prefix = p;
                }
            }
        } else if (surface && key == "axes") {
            if (!val.is_array() || val.items.empty()) {
                ctx.fail(&val, kp, "want a non-empty array of axes");
                continue;
            }
            for (std::size_t i = 0; i < val.items.size(); ++i) {
                const obs::JsonValue& av = val.items[i];
                const std::string ap = kp + "[" + std::to_string(i) + "]";
                if (!av.is_object()) {
                    ctx.fail(&av, ap, "want an object");
                    continue;
                }
                AxisSpec axis;
                for (const auto& [ak, avv] : av.members) {
                    if (ak == "name") {
                        if (read_string(ctx, avv, ap + ".name",
                                        axis.name)) {
                            statmodel::ModelConfig probe;
                            if (!apply_model_field(probe, axis.name,
                                                   0.0)) {
                                ctx.fail(&avv, ap + ".name",
                                         "unknown model field \"" +
                                             axis.name + "\"");
                            }
                        }
                    } else if (ak == "values" || ak == "linspace" ||
                               ak == "logspace" || ak == "steps") {
                        // Re-wrap as a one-member object so read_values
                        // sees the generator form.
                        obs::JsonValue wrap;
                        wrap.type = obs::JsonValue::Type::kObject;
                        wrap.offset = avv.offset;
                        wrap.members.emplace_back(ak, avv);
                        (void)read_values(ctx, wrap, ap, axis.values);
                    } else {
                        ctx.fail(&avv, ap + "." + ak,
                                 "unknown key \"" + ak + "\"");
                    }
                }
                if (axis.name.empty()) {
                    ctx.fail(&av, ap, "axis needs a \"name\"");
                } else if (axis.values.empty()) {
                    ctx.fail(&av, ap,
                             "axis needs values (literal or generator)");
                } else {
                    task.axes.push_back(std::move(axis));
                }
            }
        } else if (surface && key == "jtol") {
            if (!val.is_object()) {
                ctx.fail(&val, kp, "want an object");
                continue;
            }
            task.has_jtol = true;
            bool saw_freqs = false;
            for (const auto& [jk, jv] : val.members) {
                const std::string jp = kp + "." + jk;
                if (jk == "freqs") {
                    saw_freqs =
                        read_values(ctx, jv, jp, task.jtol.freqs);
                } else if (jk == "ber_target") {
                    if (read_double(ctx, jv, jp, task.jtol.ber_target) &&
                        (task.jtol.ber_target <= 0.0 ||
                         task.jtol.ber_target >= 1.0)) {
                        ctx.fail(&jv, jp, "want in (0, 1)");
                    }
                } else if (jk == "mask") {
                    if (read_string(ctx, jv, jp, task.jtol.mask) &&
                        task.jtol.mask != "infiniband_2g5" &&
                        task.jtol.mask != "none") {
                        ctx.fail(&jv, jp,
                                 "want \"infiniband_2g5\" or \"none\"");
                    }
                } else {
                    ctx.fail(&jv, jp, "unknown key \"" + jk + "\"");
                }
            }
            if (!saw_freqs) {
                ctx.fail(&val, kp, "jtol needs \"freqs\"");
            }
        } else if (baseline && key == "jtol_freqs") {
            (void)read_values(ctx, val, kp, task.jtol_freqs);
        } else if (baseline && key == "jtol_bits") {
            if (read_uint(ctx, val, kp, task.jtol_bits) &&
                (task.jtol_bits < 1000 || task.jtol_bits > 10'000'000)) {
                ctx.fail(&val, kp, "want an integer in [1000, 10000000]");
            }
        } else if (baseline && key == "ber_target") {
            if (read_double(ctx, val, kp, task.ber_target) &&
                (task.ber_target <= 0.0 || task.ber_target >= 1.0)) {
                ctx.fail(&val, kp, "want in (0, 1)");
            }
        } else if (baseline && key == "amp_cap") {
            if (read_double(ctx, val, kp, task.amp_cap) &&
                task.amp_cap <= 0.0) {
                ctx.fail(&val, kp, "want > 0");
            }
        } else if (baseline && key == "offsets") {
            (void)read_values(ctx, val, kp, task.offsets);
        } else if (baseline && key == "offset_bits") {
            if (read_uint(ctx, val, kp, task.offset_bits) &&
                (task.offset_bits < 1000 ||
                 task.offset_bits > 10'000'000)) {
                ctx.fail(&val, kp, "want an integer in [1000, 10000000]");
            }
        } else if (differential && key == "behavioral_runs") {
            if (read_uint(ctx, val, kp, task.behavioral_runs) &&
                task.behavioral_runs > 1'000'000) {
                ctx.fail(&val, kp, "want <= 1000000");
            }
        } else if (differential && key == "behavioral_min_ber") {
            if (read_double(ctx, val, kp, task.behavioral_min_ber) &&
                (task.behavioral_min_ber <= 0.0 ||
                 task.behavioral_min_ber >= 1.0)) {
                ctx.fail(&val, kp, "want in (0, 1)");
            }
        } else if (differential && key == "behavioral_tau") {
            if (read_double(ctx, val, kp, task.behavioral_tau) &&
                task.behavioral_tau < 1.0) {
                ctx.fail(&val, kp, "want >= 1");
            }
        } else if (healthprobe && key == "frames") {
            if (read_uint(ctx, val, kp, task.frames) &&
                (task.frames < 1 || task.frames > 1000)) {
                ctx.fail(&val, kp, "want an integer in [1, 1000]");
            }
        } else {
            ctx.fail(&val, kp,
                     "unknown key \"" + key + "\" for kind \"" + kind +
                         "\"");
        }
    }

    if (surface && task.axes.empty()) {
        ctx.fail(&v, tp, "ber_surface needs \"axes\"");
    }
    if (baseline && task.jtol_freqs.empty()) {
        ctx.fail(&v, tp, "baseline_jtol needs \"jtol_freqs\"");
    }
}

}  // namespace

bool scenario_from_json(const obs::JsonValue& root, ScenarioDoc& doc,
                        std::vector<Diagnostic>& diags,
                        std::string_view source, std::string_view file) {
    doc = ScenarioDoc{};
    const std::size_t diags_before = diags.size();
    Ctx ctx{source, file, &diags};
    if (!root.is_object()) {
        ctx.fail(&root, "", "scenario must be a JSON object");
        return false;
    }
    bool saw_schema = false, saw_name = false, saw_tasks = false;
    for (const auto& [key, val] : root.members) {
        if (key == "schema") {
            saw_schema = true;
            if (val.string_or("") != kScenarioSchema) {
                ctx.fail(&val, "schema",
                         std::string("want \"") + kScenarioSchema + "\"");
            }
        } else if (key == "name") {
            saw_name = true;
            if (read_string(ctx, val, "name", doc.name) &&
                !is_identifier(doc.name)) {
                ctx.fail(&val, "name",
                         "scenario name must be [A-Za-z0-9_]{1,64}");
            }
        } else if (key == "title") {
            (void)read_string(ctx, val, "title", doc.title);
        } else if (key == "model") {
            parse_model(ctx, val, doc.model);
        } else if (key == "mc") {
            parse_mc(ctx, val, doc.mc);
        } else if (key == "netlist") {
            doc.has_netlist = true;
            parse_netlist(ctx, val, doc.netlist);
        } else if (key == "tasks") {
            saw_tasks = true;
            if (!val.is_array() || val.items.empty()) {
                ctx.fail(&val, "tasks", "want a non-empty array");
                continue;
            }
            for (std::size_t i = 0; i < val.items.size(); ++i) {
                TaskSpec task;
                const std::size_t before = diags.size();
                parse_task(ctx, val.items[i],
                           "tasks[" + std::to_string(i) + "]", task);
                if (diags.size() == before) {
                    doc.tasks.push_back(std::move(task));
                }
            }
        } else {
            ctx.fail(&val, key, "unknown key \"" + key + "\"");
        }
    }
    if (!saw_schema) ctx.fail(&root, "schema", "missing \"schema\"");
    if (!saw_name) ctx.fail(&root, "name", "missing \"name\"");
    if (!saw_tasks) ctx.fail(&root, "tasks", "missing \"tasks\"");

    // Cross-cutting checks only meaningful once everything parsed.
    if (diags.size() == diags_before) {
        for (std::size_t i = 0; i < doc.tasks.size(); ++i) {
            for (std::size_t j = i + 1; j < doc.tasks.size(); ++j) {
                if (doc.tasks[i].prefix == doc.tasks[j].prefix) {
                    ctx.fail(&root, "tasks[" + std::to_string(j) + "]",
                             "duplicate metric prefix \"" +
                                 doc.tasks[j].prefix +
                                 "\" (metrics would collide)");
                }
            }
            if ((doc.tasks[i].kind == TaskSpec::Kind::kNetlistRun ||
                 doc.tasks[i].kind == TaskSpec::Kind::kHealthProbe) &&
                !doc.has_netlist) {
                ctx.fail(&root, "tasks[" + std::to_string(i) + "]",
                         std::string(task_kind_name(doc.tasks[i].kind)) +
                             " task needs a \"netlist\" section");
            }
        }
    }
    return diags.size() == diags_before;
}

bool scenario_from_string(std::string_view text, ScenarioDoc& doc,
                          std::vector<Diagnostic>& diags,
                          std::string_view file) {
    obs::JsonValue root;
    std::string err;
    if (!obs::json_parse(text, root, &err)) {
        Diagnostic d;
        d.file = std::string(file);
        d.message = "JSON parse error: " + err;
        // The parser's "<what> at byte N" prefix is stable (json_parse
        // contract); map the offset back so parse errors point like
        // validation errors do.
        const std::size_t at = err.find(" at byte ");
        if (at != std::string::npos) {
            const std::size_t off =
                std::strtoull(err.c_str() + at + 9, nullptr, 10);
            const obs::LineColumn lc = obs::line_column(text, off);
            d.line = lc.line;
            d.column = lc.column;
        }
        diags.push_back(std::move(d));
        return false;
    }
    return scenario_from_json(root, doc, diags, text, file);
}

bool scenario_from_file(const std::string& path, ScenarioDoc& doc,
                        std::vector<Diagnostic>& diags) {
    std::ifstream is(path);
    if (!is) {
        Diagnostic d;
        d.file = path;
        d.message = "cannot open scenario file";
        diags.push_back(std::move(d));
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    return scenario_from_string(text, doc, diags, path);
}

namespace {

void append_field(std::string& out, bool& first, std::string_view key,
                  std::string_view rendered) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += rendered;
}

void append_number(std::string& out, bool& first, std::string_view key,
                   double value) {
    append_field(out, first, key, obs::canonical_number(value, {}));
}

void append_uint(std::string& out, bool& first, std::string_view key,
                 std::uint64_t value) {
    append_field(out, first, key, std::to_string(value));
}

void append_string(std::string& out, bool& first, std::string_view key,
                   const std::string& value) {
    append_field(out, first, key,
                 "\"" + obs::JsonWriter::escape(value) + "\"");
}

std::string values_json(const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ',';
        out += obs::canonical_number(values[i], {});
    }
    out += ']';
    return out;
}

std::string task_json(const TaskSpec& t) {
    // Collect (key, rendered) and sort so the member order stays
    // canonical no matter which kind contributes which keys.
    std::vector<std::pair<std::string, std::string>> fields;
    const auto num = [&](const char* k, double v) {
        fields.emplace_back(k, obs::canonical_number(v, {}));
    };
    const auto uint = [&](const char* k, std::uint64_t v) {
        fields.emplace_back(k, std::to_string(v));
    };
    const auto str = [&](const char* k, const std::string& v) {
        fields.emplace_back(k, "\"" + obs::JsonWriter::escape(v) + "\"");
    };
    switch (t.kind) {
        case TaskSpec::Kind::kBerSurface: {
            std::string axes = "[";
            for (std::size_t i = 0; i < t.axes.size(); ++i) {
                if (i) axes += ',';
                axes += "{\"name\":\"" +
                        obs::JsonWriter::escape(t.axes[i].name) +
                        "\",\"values\":" + values_json(t.axes[i].values) +
                        "}";
            }
            axes += ']';
            fields.emplace_back("axes", std::move(axes));
            if (t.has_jtol) {
                std::string jtol = "{";
                bool jfirst = true;
                append_number(jtol, jfirst, "ber_target",
                              t.jtol.ber_target);
                append_field(jtol, jfirst, "freqs",
                             values_json(t.jtol.freqs));
                append_string(jtol, jfirst, "mask", t.jtol.mask);
                jtol += '}';
                fields.emplace_back("jtol", std::move(jtol));
            }
            break;
        }
        case TaskSpec::Kind::kBaselineJtol:
            num("amp_cap", t.amp_cap);
            num("ber_target", t.ber_target);
            uint("jtol_bits", t.jtol_bits);
            fields.emplace_back("jtol_freqs", values_json(t.jtol_freqs));
            uint("offset_bits", t.offset_bits);
            if (!t.offsets.empty()) {
                fields.emplace_back("offsets", values_json(t.offsets));
            }
            break;
        case TaskSpec::Kind::kNetlistRun:
            break;
        case TaskSpec::Kind::kDifferential:
            num("behavioral_min_ber", t.behavioral_min_ber);
            uint("behavioral_runs", t.behavioral_runs);
            num("behavioral_tau", t.behavioral_tau);
            break;
        case TaskSpec::Kind::kHealthProbe:
            uint("frames", t.frames);
            break;
    }
    str("kind", std::string(task_kind_name(t.kind)));
    str("prefix", t.prefix);
    std::sort(fields.begin(), fields.end());

    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : fields) append_field(out, first, k, v);
    out += '}';
    return out;
}

std::string netlist_json(const NetlistSpec& net) {
    // Instance names are sorted (the loader's canonical order) and kinds
    // sort as channel < monitor < source, so emitting channels, then
    // monitors, then sources interleaved by name keeps the member list
    // bytewise sorted only if names don't interleave across kinds —
    // which they can. Collect (name, rendered) pairs and sort instead.
    std::vector<std::pair<std::string, std::string>> insts;
    for (const ChannelSpec& c : net.channels) {
        std::string o = "{";
        bool first = true;
        append_number(o, first, "ckj_uirms", c.ckj_uirms);
        append_number(o, first, "f_osc_hz", c.f_osc_hz);
        append_field(o, first, "improved_sampling",
                     c.improved_sampling ? "true" : "false");
        append_string(o, first, "kind", "channel");
        o += '}';
        insts.emplace_back(c.name, std::move(o));
    }
    for (const MonitorSpec& m : net.monitors) {
        insts.emplace_back(m.name, "{\"kind\":\"monitor\"}");
    }
    for (const SourceSpec& s : net.sources) {
        // Pattern sources replace the PRBS stream, so exactly one of the
        // two generator descriptions is emitted; rate_offset only when
        // non-default. This keeps pre-existing documents' canonical bytes
        // (and therefore scenario hashes) unchanged — same conditional-
        // emission precedent as the baseline task's "offsets".
        std::string o = "{";
        bool first = true;
        if (s.pattern.empty()) {
            append_uint(o, first, "bits", s.bits);
            append_string(o, first, "kind", "source");
            append_uint(o, first, "prbs",
                        static_cast<std::uint64_t>(s.prbs));
        } else {
            append_string(o, first, "kind", "source");
            std::string pat = "[";
            for (std::size_t b = 0; b < s.pattern.size(); ++b) {
                if (b) pat += ',';
                pat += s.pattern[b] ? '1' : '0';
            }
            pat += ']';
            append_field(o, first, "pattern", pat);
        }
        if (s.rate_offset != 0.0) {
            append_number(o, first, "rate_offset", s.rate_offset);
        }
        if (!s.pattern.empty()) {
            append_uint(o, first, "repeat", s.repeat);
        }
        append_number(o, first, "start_ns", s.start_ns);
        o += '}';
        insts.emplace_back(s.name, std::move(o));
    }
    std::sort(insts.begin(), insts.end());

    std::string out = "{\"instances\":{";
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (i) out += ',';
        out += '"' + obs::JsonWriter::escape(insts[i].first) +
               "\":" + insts[i].second;
    }
    out += "},\"wires\":[";
    for (std::size_t i = 0; i < net.wires.size(); ++i) {
        const WireSpec& w = net.wires[i];
        if (i) out += ',';
        std::string o = "{";
        bool first = true;
        append_string(o, first, "from", w.from_inst + "." + w.from_port);
        append_number(o, first, "skew_ps", w.skew_ps);
        append_string(o, first, "to", w.to_inst + "." + w.to_port);
        o += '}';
        out += o;
    }
    out += "]}";
    return out;
}

}  // namespace

std::string resolved_json(const ScenarioDoc& doc) {
    std::string out = "{";
    bool first = true;
    {
        std::string mc = "{";
        bool mfirst = true;
        append_number(mc, mfirst, "confidence", doc.mc.confidence);
        append_uint(mc, mfirst, "max_evals", doc.mc.max_evals);
        append_number(mc, mfirst, "target_rel_err", doc.mc.target_rel_err);
        mc += '}';
        append_field(out, first, "mc", mc);
    }
    {
        std::string cfg = "{";
        bool cfirst = true;
        const statmodel::ModelConfig& c = doc.model;
        append_uint(cfg, cfirst, "cid_ref",
                    static_cast<std::uint64_t>(c.cid_ref));
        append_number(cfg, cfirst, "ckj_uirms", c.spec.ckj_uirms);
        append_number(cfg, cfirst, "dj_uipp", c.spec.dj_uipp);
        append_number(cfg, cfirst, "freq_offset", c.freq_offset);
        append_number(cfg, cfirst, "grid_dx", c.grid_dx);
        append_uint(cfg, cfirst, "max_cid",
                    static_cast<std::uint64_t>(c.max_cid));
        append_number(cfg, cfirst, "pdf_prune_floor", c.pdf_prune_floor);
        append_number(cfg, cfirst, "rj_uirms", c.spec.rj_uirms);
        append_field(cfg, cfirst, "run_model",
                     c.run_model == statmodel::RunModel::kWeighted
                         ? "\"weighted\""
                         : "\"worst_case\"");
        append_number(cfg, cfirst, "sampling_advance_ui",
                      c.sampling_advance_ui);
        append_number(cfg, cfirst, "sj_freq_norm", c.sj_freq_norm);
        append_number(cfg, cfirst, "sj_uipp", c.spec.sj_uipp);
        append_number(cfg, cfirst, "trigger_mismatch_uirms",
                      c.trigger_mismatch_uirms);
        cfg += '}';
        append_field(out, first, "model", cfg);
    }
    append_string(out, first, "name", doc.name);
    if (doc.has_netlist) {
        append_field(out, first, "netlist", netlist_json(doc.netlist));
    }
    append_string(out, first, "schema", kScenarioSchema);
    {
        std::string tasks = "[";
        for (std::size_t i = 0; i < doc.tasks.size(); ++i) {
            if (i) tasks += ',';
            tasks += task_json(doc.tasks[i]);
        }
        tasks += ']';
        append_field(out, first, "tasks", tasks);
    }
    append_string(out, first, "title", doc.title);
    out += '}';
    return out;
}

std::uint64_t scenario_hash(const ScenarioDoc& doc) {
    return util::fnv1a64(resolved_json(doc));
}

}  // namespace gcdr::scenario
