#include "scenario/compile.hpp"

namespace gcdr::scenario {

CompiledNetlist compile_netlist(const NetlistSpec& net) {
    CompiledNetlist out;
    out.config.n_channels = static_cast<int>(net.channels.size());
    if (!net.channels.empty()) {
        const ChannelSpec& t = net.channels.front();
        out.config.channel =
            cdr::ChannelConfig::nominal(t.f_osc_hz, t.ckj_uirms);
        out.config.channel.improved_sampling = t.improved_sampling;
    }

    for (const ChannelSpec& c : net.channels) {
        CompiledLane lane;
        lane.channel = c.name;
        // The loader guarantees exactly one wire into <c>.din and at most
        // one monitor on <c>.dout.
        for (const WireSpec& w : net.wires) {
            if (w.to_inst == c.name && w.to_port == "din") {
                lane.source = w.from_inst;
                lane.skew_ps = w.skew_ps;
            }
            if (w.from_inst == c.name && w.from_port == "dout") {
                lane.monitor = w.to_inst;
            }
        }
        for (const SourceSpec& s : net.sources) {
            if (s.name == lane.source) {
                lane.bits = s.bits;
                lane.prbs = s.prbs;
                lane.start_ns = s.start_ns;
                lane.pattern = s.pattern;
                lane.repeat = s.repeat;
                lane.rate_offset = s.rate_offset;
            }
        }
        out.lanes.push_back(std::move(lane));
    }
    return out;
}

exec::SweepGrid compile_grid(const TaskSpec& task) {
    exec::SweepGrid grid;
    for (const AxisSpec& axis : task.axes) {
        grid.axis(axis.name, axis.values);
    }
    return grid;
}

mc::McBudget compile_budget(const McSpec& mc, std::uint64_t base_seed) {
    mc::McBudget budget;
    budget.target_rel_err = mc.target_rel_err;
    budget.max_evals = mc.max_evals;
    budget.confidence = mc.confidence;
    budget.base_seed = base_seed;
    return budget;
}

}  // namespace gcdr::scenario
