#include "scenario/fuzz.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace gcdr::scenario {

namespace {

/// Round to a short decimal so resolved_json stays compact and the doc
/// survives text round-trips exactly (4 significant-ish digits).
double quantize(double v) { return std::round(v * 1e4) / 1e4; }

}  // namespace

ScenarioDoc random_valid(std::uint64_t seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ce0a11d);
    ScenarioDoc doc;
    doc.name = "fuzz_" + std::to_string(seed);
    doc.title = "differential fuzz seed " + std::to_string(seed);

    // Jitter stack around the paper's Table 1 operating region. SJ
    // amplitude up to ~1 UIpp and frequencies log-uniform across the Fig 9
    // axis keep the resulting BER inside the statmodel's resolvable range
    // often enough that the differential gates get real work.
    statmodel::ModelConfig& m = doc.model;
    m.grid_dx = 1e-3;
    m.spec.dj_uipp = quantize(rng.uniform(0.1, 0.5));
    m.spec.rj_uirms = quantize(rng.uniform(0.005, 0.035));
    m.spec.ckj_uirms = quantize(rng.uniform(0.002, 0.02));
    m.spec.sj_uipp = quantize(rng.uniform(0.0, 1.0));
    m.sj_freq_norm =
        quantize(std::pow(10.0, rng.uniform(-3.0, std::log10(0.5))));
    if (rng.coin()) {
        m.freq_offset = quantize(rng.uniform(0.0, 0.03));
    }
    if (rng.index(4) == 0) {
        // Fig 15/17 improved sampling: advanced T/8 strobe.
        m.sampling_advance_ui = 0.125;
    }
    m.max_cid = static_cast<int>(3 + rng.index(4));  // [3, 6]
    m.cid_ref = 5;

    doc.mc.max_evals = 500'000;
    doc.mc.target_rel_err = 0.1;
    doc.mc.confidence = 0.95;

    TaskSpec task;
    task.kind = TaskSpec::Kind::kDifferential;
    task.prefix = "diff";
    task.behavioral_runs = 4096;
    task.behavioral_min_ber = 3e-4;
    task.behavioral_tau = 5.0;
    doc.tasks.push_back(std::move(task));
    return doc;
}

}  // namespace gcdr::scenario
