#pragma once
// Seeded generator of random *valid* scenarios — the input half of the
// differential fuzzer. random_valid(seed) samples the statmodel's knob
// space (jitter stack, SJ frequency, frequency offset, sampling advance)
// inside the regime where both the statistical model and the Monte Carlo
// engines are meaningful, and wraps it in a single differential task. The
// CI fuzz leg runs N seeds through run_scenario() and fails on any
// stat-vs-MC disagreement; every document round-trips bit-identically
// through resolved_json -> load -> resolved_json, so a failing seed is
// reproducible from its config hash alone.

#include <cstdint>

#include "scenario/scenario_doc.hpp"

namespace gcdr::scenario {

/// Deterministic map seed -> valid ScenarioDoc (same doc on every
/// platform/thread-count; validated by construction). The document's
/// name embeds the seed: "fuzz_<seed>".
[[nodiscard]] ScenarioDoc random_valid(std::uint64_t seed);

}  // namespace gcdr::scenario
