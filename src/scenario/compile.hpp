#pragma once
// Lowering a validated ScenarioDoc onto the existing object graph — the
// "generate" half of the netlist idiom. compile_netlist() turns the
// declarative instances/wires into a cdr::MultiChannelConfig plus one
// CompiledLane per channel (the drive recipe: which PRBS, how many bits,
// what skew); compile_grid()/compile_budget() map the sweep and MC
// sections onto exec::SweepGrid and mc::McBudget. Compilation is total on
// validated documents: every structural error is caught by the loader, so
// these functions do not fail.

#include <cstdint>
#include <string>
#include <vector>

#include "cdr/multichannel.hpp"
#include "exec/sweep.hpp"
#include "mc/estimator.hpp"
#include "scenario/scenario_doc.hpp"

namespace gcdr::scenario {

/// Drive recipe for one receiver lane. Lane i of the compiled
/// MultiChannelCdr is NetlistSpec::channels[i] (name order).
struct CompiledLane {
    std::string channel;  ///< channel instance name
    std::string source;   ///< driving source instance
    std::string monitor;  ///< monitor on dout; empty when unmonitored
    std::uint64_t bits = 0;
    int prbs = 7;
    double start_ns = 0.0;
    double skew_ps = 0.0;  ///< skew of the source->channel wire
    /// Explicit bit pattern (tiled `repeat` times); empty = PRBS stream.
    std::vector<int> pattern;
    std::uint64_t repeat = 1;
    double rate_offset = 0.0;  ///< TX data-rate offset (relative)
};

struct CompiledNetlist {
    cdr::MultiChannelConfig config;
    std::vector<CompiledLane> lanes;  ///< lanes[i] drives channel i
};

/// Lower a validated netlist. The channel template comes from the (loader
/// -enforced identical) channel instances via cdr::ChannelConfig::nominal.
[[nodiscard]] CompiledNetlist compile_netlist(const NetlistSpec& net);

/// Sweep grid of a ber_surface task, axes in document order — the same
/// row-major point order as the hard-coded benches.
[[nodiscard]] exec::SweepGrid compile_grid(const TaskSpec& task);

/// MC budget with the run's base seed filled in.
[[nodiscard]] mc::McBudget compile_budget(const McSpec& mc,
                                          std::uint64_t base_seed);

}  // namespace gcdr::scenario
