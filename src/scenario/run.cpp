#include "scenario/run.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "ber/bert.hpp"
#include "cdr/baseline.hpp"
#include "cdr/multichannel.hpp"
#include "encoding/prbs.hpp"
#include "exec/sweep.hpp"
#include "jitter/jitter.hpp"
#include "masks/jtol_mask.hpp"
#include "mc/direct.hpp"
#include "mc/importance.hpp"
#include "mc/margin_model.hpp"
#include "obs/canonical.hpp"
#include "obs/health/health_monitor.hpp"
#include "obs/json.hpp"
#include "obs/sharded.hpp"
#include "scenario/compile.hpp"
#include "statmodel/gated_osc_model.hpp"
#include "util/rng.hpp"

namespace gcdr::scenario {

namespace {

// --- ber_surface ---------------------------------------------------------
// Mirrors bench_fig9_ber_sj point for point: one SweepRunner map over the
// grid (ShardedCounter on <prefix>.ber_evals), histograms recorded
// serially in row-major order afterwards, then one jtol_curve parallel_for
// over the contour frequencies. Two pool jobs total — the same exec.jobs /
// exec.items a hard-coded surface bench produces.

TaskResult run_ber_surface(const ScenarioDoc& doc, const TaskSpec& task,
                           const ScenarioContext& ctx) {
    obs::MetricsRegistry& reg = *ctx.metrics;
    exec::ThreadPool& pool = *ctx.pool;
    TaskResult result;
    result.prefix = task.prefix;
    result.kind = task_kind_name(task.kind);

    const statmodel::ModelConfig base = doc.model;
    const exec::SweepGrid grid = compile_grid(task);
    const exec::SweepRunner runner(pool, grid, ctx.seed);

    auto* evals = &reg.counter(task.prefix + ".ber_evals");
    auto* ber_hist = &reg.histogram(task.prefix + ".ber");
    std::vector<double> surface;
    {
        obs::ScopedTimer t(&reg, task.prefix + ".surface_seconds");
        obs::ShardedCounter eval_shards(*evals, pool.size());
        surface = runner.map<double>([&](const exec::SweepPoint& p) {
            statmodel::ModelConfig cfg = base;
            for (std::size_t a = 0; a < task.axes.size(); ++a) {
                (void)apply_model_field(cfg, task.axes[a].name,
                                        p.value[a]);
            }
            eval_shards.inc(exec::ThreadPool::lane_index());
            return statmodel::ber_of(cfg);
        });
        eval_shards.flush();
    }
    for (double ber : surface) ber_hist->record(ber);
    result.series.emplace_back("ber", surface);
    result.scalars.emplace_back("grid_points",
                                static_cast<double>(surface.size()));
    if (ctx.verbose) {
        std::printf("[%s] %zu-point BER surface computed\n",
                    task.prefix.c_str(), surface.size());
    }

    if (task.has_jtol) {
        std::vector<masks::MaskPoint> contour;
        {
            obs::ScopedTimer t(&reg, task.prefix + ".jtol_contour_seconds");
            contour = statmodel::jtol_curve(base, task.jtol.freqs,
                                            kPaperRate,
                                            task.jtol.ber_target, &pool);
        }
        const bool masked = task.jtol.mask != "none";
        const auto mask = masks::JtolMask::infiniband_2g5();
        bool all_ok = true;
        std::vector<double> tol;
        for (const masks::MaskPoint& pt : contour) {
            reg.histogram(task.prefix + ".jtol_uipp").record(pt.amp_uipp);
            tol.push_back(pt.amp_uipp);
            if (masked) {
                all_ok =
                    all_ok && pt.amp_uipp >= mask.amplitude_at(pt.freq_hz);
            }
            if (ctx.verbose) {
                std::printf("[%s] jtol %12.4g Hz -> %.3f UIpp\n",
                            task.prefix.c_str(), pt.freq_hz, pt.amp_uipp);
            }
        }
        result.series.emplace_back("jtol_uipp", std::move(tol));
        if (masked) {
            // mask_met is the paper's *finding*, not a gate: the
            // reproduced contour intentionally drops below the mask near
            // the data rate (bench_fig9_ber_sj reports the same gauge and
            // never fails on it). Gating would fail every faithful run.
            reg.gauge(task.prefix + ".mask_met").set(all_ok ? 1.0 : 0.0);
            result.scalars.emplace_back("mask_met", all_ok ? 1.0 : 0.0);
        }
    }
    return result;
}

// --- baseline_jtol -------------------------------------------------------
// Mirrors bench_baseline_jtol: sweep 1 maps the three architectures over
// the JTOL frequencies; sweep 2 (when the document asks for it) maps the
// frequency-offset sensitivity; ErrorCounters attach after the sweep and
// replay the per-point error totals, exactly like the bench.

TaskResult run_baseline_jtol(const ScenarioDoc& doc, const TaskSpec& task,
                             const ScenarioContext& ctx) {
    obs::MetricsRegistry& reg = *ctx.metrics;
    exec::ThreadPool& pool = *ctx.pool;
    TaskResult result;
    result.prefix = task.prefix;
    result.kind = task_kind_name(task.kind);

    const statmodel::ModelConfig gcco_cfg = doc.model;
    jitter::JitterSpec base = doc.model.spec;
    base.sj_uipp = 0.0;  // SJ amplitude is the swept quantity

    const cdr::BangBangCdr bb({});
    const cdr::PhaseInterpolatorCdr pi({});

    struct JtolRow {
        double gated_osc = 0.0;
        double bang_bang = 0.0;
        double phase_int = 0.0;
    };
    std::vector<JtolRow> rows;
    {
        obs::ScopedTimer t(&reg, task.prefix + ".jtol_sweep_seconds");
        exec::SweepGrid grid;
        grid.axis("sj_freq_norm", task.jtol_freqs);
        rows = exec::SweepRunner(pool, grid, ctx.seed)
                   .map<JtolRow>([&](const exec::SweepPoint& p) {
                       const double fn = p.value[0];
                       JtolRow r;
                       r.gated_osc = statmodel::jtol_amplitude(
                           gcco_cfg, fn, task.ber_target, task.amp_cap);
                       r.bang_bang = cdr::baseline_jtol_amplitude(
                           bb, fn, base, kPaperRate, task.jtol_bits,
                           p.seed, task.ber_target, task.amp_cap);
                       r.phase_int = cdr::baseline_jtol_amplitude(
                           pi, fn, base, kPaperRate, task.jtol_bits,
                           p.seed, task.ber_target, task.amp_cap);
                       return r;
                   });
    }
    std::vector<double> go, bbv, piv;
    for (const JtolRow& r : rows) {
        reg.counter(task.prefix + ".jtol_points").inc();
        reg.histogram(task.prefix + ".jtol_gated_osc_uipp")
            .record(r.gated_osc);
        reg.histogram(task.prefix + ".jtol_bang_bang_uipp")
            .record(r.bang_bang);
        reg.histogram(task.prefix + ".jtol_phase_int_uipp")
            .record(r.phase_int);
        go.push_back(r.gated_osc);
        bbv.push_back(r.bang_bang);
        piv.push_back(r.phase_int);
    }
    result.series.emplace_back("jtol_bang_bang_uipp", std::move(bbv));
    result.series.emplace_back("jtol_gated_osc_uipp", std::move(go));
    result.series.emplace_back("jtol_phase_int_uipp", std::move(piv));
    if (ctx.verbose) {
        std::printf("[%s] %zu-point architecture JTOL sweep done\n",
                    task.prefix.c_str(), rows.size());
    }

    if (!task.offsets.empty()) {
        struct OffsetRow {
            double gated_osc_ber = 0.0;
            std::uint64_t bang_bang_errors = 0;
            std::uint64_t phase_int_errors = 0;
        };
        std::vector<OffsetRow> offset_rows;
        {
            obs::ScopedTimer t(&reg,
                               task.prefix + ".freq_offset_seconds");
            exec::SweepGrid grid;
            grid.axis("freq_offset", task.offsets);
            offset_rows =
                exec::SweepRunner(pool, grid, ctx.seed)
                    .map<OffsetRow>([&](const exec::SweepPoint& p) {
                        const double d = p.value[0];
                        statmodel::ModelConfig g = gcco_cfg;
                        g.freq_offset = d;
                        OffsetRow r;
                        r.gated_osc_ber = statmodel::ber_of(g);

                        cdr::BangBangCdr::Config bc;
                        bc.freq_offset = d;
                        cdr::PhaseInterpolatorCdr::Config pc;
                        pc.freq_offset = d;
                        Rng r1(p.seed), r2(p.seed);
                        encoding::PrbsGenerator gen1(
                            encoding::PrbsOrder::kPrbs7);
                        encoding::PrbsGenerator gen2(
                            encoding::PrbsOrder::kPrbs7);
                        const std::size_t n =
                            static_cast<std::size_t>(task.offset_bits);
                        r.bang_bang_errors =
                            cdr::BangBangCdr(bc)
                                .run(gen1.bits(n), base, kPaperRate, r1)
                                .errors;
                        r.phase_int_errors =
                            cdr::PhaseInterpolatorCdr(pc)
                                .run(gen2.bits(n), base, kPaperRate, r2)
                                .errors;
                        return r;
                    });
        }
        ber::ErrorCounter bb_errors, pi_errors;
        bb_errors.attach_metrics(reg, task.prefix + ".bang_bang");
        pi_errors.attach_metrics(reg, task.prefix + ".phase_int");
        std::vector<double> gb, be, pe;
        for (const OffsetRow& r : offset_rows) {
            bb_errors.record_bits(task.offset_bits, r.bang_bang_errors);
            pi_errors.record_bits(task.offset_bits, r.phase_int_errors);
            gb.push_back(r.gated_osc_ber);
            be.push_back(static_cast<double>(r.bang_bang_errors));
            pe.push_back(static_cast<double>(r.phase_int_errors));
        }
        result.series.emplace_back("offset_bang_bang_errors",
                                   std::move(be));
        result.series.emplace_back("offset_gated_osc_ber", std::move(gb));
        result.series.emplace_back("offset_phase_int_errors",
                                   std::move(pe));
    }
    return result;
}

// --- netlist_run ---------------------------------------------------------

encoding::PrbsOrder prbs_order(int order) {
    switch (order) {
        case 9:
            return encoding::PrbsOrder::kPrbs9;
        case 15:
            return encoding::PrbsOrder::kPrbs15;
        case 23:
            return encoding::PrbsOrder::kPrbs23;
        case 31:
            return encoding::PrbsOrder::kPrbs31;
        default:
            return encoding::PrbsOrder::kPrbs7;
    }
}

TaskResult run_netlist(const ScenarioDoc& doc, const TaskSpec& task,
                       const ScenarioContext& ctx) {
    obs::MetricsRegistry& reg = *ctx.metrics;
    TaskResult result;
    result.prefix = task.prefix;
    result.kind = task_kind_name(task.kind);

    const CompiledNetlist cn = compile_netlist(doc.netlist);
    cdr::MultiChannelCdr rx(ctx.seed, cn.config);
    rx.attach_metrics(reg, task.prefix + ".cdr");

    // One RNG drives every lane's jitter realization (like the example
    // receiver); lane bit streams stay deterministic because drive order
    // is the canonical channel order.
    Rng rng(ctx.seed);
    std::uint64_t max_bits = 0;
    double last_start_ns = 0.0;
    for (std::size_t i = 0; i < cn.lanes.size(); ++i) {
        const CompiledLane& lane = cn.lanes[i];
        encoding::PrbsGenerator gen(prbs_order(lane.prbs));
        const auto bits =
            gen.bits(static_cast<std::size_t>(lane.bits));
        jitter::StreamParams sp;
        sp.spec = doc.model.spec;
        sp.start =
            SimTime::ns(lane.start_ns) + SimTime::ps(lane.skew_ps);
        rx.drive(static_cast<int>(i), jitter::jittered_edges(bits, sp, rng));
        max_bits = std::max(max_bits, lane.bits);
        last_start_ns = std::max(last_start_ns,
                                 lane.start_ns + lane.skew_ps * 1e-3);
    }
    rx.run_until(SimTime::ns(last_start_ns + 4.0) +
                     kPaperRate.ui_to_time(static_cast<double>(max_bits)),
                 ctx.pool);

    const auto lanes = rx.drain_elastic();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const std::string key = "ch" + std::to_string(i);
        result.scalars.emplace_back(
            key + "_recovered_bits",
            static_cast<double>(lanes[i].size()));
        result.scalars.emplace_back(
            key + "_elastic_skips",
            static_cast<double>(rx.elastic(static_cast<int>(i))
                                    .skips_inserted() +
                                rx.elastic(static_cast<int>(i))
                                    .skips_dropped()));
        if (ctx.verbose) {
            std::printf("[%s] lane %zu (%s): %zu bits recovered\n",
                        task.prefix.c_str(), i,
                        cn.lanes[i].channel.c_str(), lanes[i].size());
        }
    }
    rx.update_lock_metrics();
    const double locked =
        reg.gauge(task.prefix + ".cdr.locked_channels").value();
    result.scalars.emplace_back("locked_channels", locked);
    result.ok = locked ==
                static_cast<double>(cn.config.n_channels);
    return result;
}

// --- health_probe --------------------------------------------------------
// A netlist run with per-lane obs/health monitors attached. The run is
// sliced into `frames` equal femtosecond spans; after each slice the
// context's health_frame_sink (when set) receives a gcdr.health/v1
// snapshot — this is the daemon's /v1/watch live stream. Slicing is
// behavior-neutral (event-driven execution: run_until(a); run_until(b)
// executes the same events as run_until(b)), so decisions, counters and
// the final snapshot are identical for any frame count or thread count.
// A lost lane is a *finding*, not a task failure: result.ok stays true
// and CI asserts detection from the health block instead.

TaskResult run_health_probe(const ScenarioDoc& doc, const TaskSpec& task,
                            const ScenarioContext& ctx) {
    obs::MetricsRegistry& reg = *ctx.metrics;
    TaskResult result;
    result.prefix = task.prefix;
    result.kind = task_kind_name(task.kind);

    const CompiledNetlist cn = compile_netlist(doc.netlist);
    cdr::MultiChannelCdr rx(ctx.seed, cn.config);
    rx.attach_metrics(reg, task.prefix + ".cdr");
    obs::health::HealthHub hub;
    rx.attach_health(hub);
    if (ctx.flight) rx.enable_flight_recorder(*ctx.flight);

    Rng rng(ctx.seed);
    std::uint64_t max_bits = 0;
    double last_start_ns = 0.0;
    for (std::size_t i = 0; i < cn.lanes.size(); ++i) {
        const CompiledLane& lane = cn.lanes[i];
        std::vector<bool> bits;
        if (lane.pattern.empty()) {
            encoding::PrbsGenerator gen(prbs_order(lane.prbs));
            bits = gen.bits(static_cast<std::size_t>(lane.bits));
        } else {
            bits.reserve(lane.pattern.size() *
                         static_cast<std::size_t>(lane.repeat));
            for (std::uint64_t r = 0; r < lane.repeat; ++r) {
                for (int b : lane.pattern) bits.push_back(b != 0);
            }
        }
        jitter::StreamParams sp;
        sp.spec = doc.model.spec;
        sp.data_rate_offset = lane.rate_offset;
        sp.start =
            SimTime::ns(lane.start_ns) + SimTime::ps(lane.skew_ps);
        rx.drive(static_cast<int>(i), jitter::jittered_edges(bits, sp, rng));
        max_bits = std::max<std::uint64_t>(max_bits, bits.size());
        last_start_ns = std::max(last_start_ns,
                                 lane.start_ns + lane.skew_ps * 1e-3);
    }

    const SimTime t_end =
        SimTime::ns(last_start_ns + 4.0) +
        kPaperRate.ui_to_time(static_cast<double>(max_bits));
    const std::int64_t end_fs = t_end.femtoseconds();
    const std::uint64_t frames = task.frames == 0 ? 1 : task.frames;
    for (std::uint64_t k = 1; k <= frames; ++k) {
        const std::int64_t slice_fs =
            end_fs * static_cast<std::int64_t>(k) /
            static_cast<std::int64_t>(frames);
        rx.run_until(SimTime{slice_fs}, ctx.pool);
        if (ctx.health_frame_sink && k < frames) {
            ctx.health_frame_sink(hub.snapshot_json());
        }
    }
    // The final snapshot is taken once and handed to both the sink and
    // the result, so a /v1/watch client's last frame matches the report's
    // health block byte for byte.
    result.health_json = hub.snapshot_json();
    if (ctx.health_frame_sink) ctx.health_frame_sink(result.health_json);

    rx.update_lock_metrics();
    hub.publish(reg, task.prefix + ".cdr");

    const auto lanes = rx.drain_elastic();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const std::string key = "ch" + std::to_string(i);
        const obs::health::LaneHealthMonitor& m = hub.lane(i);
        result.scalars.emplace_back(
            key + "_recovered_bits",
            static_cast<double>(lanes[i].size()));
        result.scalars.emplace_back(
            key + "_health_state",
            static_cast<double>(static_cast<int>(m.state())));
        result.scalars.emplace_back(key + "_health_score", m.score());
        result.scalars.emplace_back(key + "_settle_ui", m.settle_ui());
        if (ctx.verbose) {
            std::printf("[%s] lane %zu (%s): %zu bits, health %s "
                        "(score %.3f)\n",
                        task.prefix.c_str(), i,
                        cn.lanes[i].channel.c_str(), lanes[i].size(),
                        obs::health::lock_state_name(m.state()),
                        m.score());
        }
    }
    result.scalars.emplace_back(
        "health_locked_lanes", static_cast<double>(hub.locked_lanes()));
    result.scalars.emplace_back(
        "locked_channels",
        reg.gauge(task.prefix + ".cdr.locked_channels").value());
    return result;
}

// --- differential --------------------------------------------------------
// The fuzzer's oracle. Strict gate: importance sampling on the analytic
// margin model (same equations as the statmodel) must agree with
// statmodel::ber_of — IS 95% CI containing the value, or the ratio within
// [1/3, 3] when the CI is razor-thin. Loose gate: the behavioral
// event-driven channel, sampled directly, must bracket the statmodel
// value inside a tau-inflated CI — the two layers differ by genuine
// channel physics, so tau absorbs the modeling gap, not sampling noise.

TaskResult run_differential(const ScenarioDoc& doc, const TaskSpec& task,
                            const ScenarioContext& ctx) {
    obs::MetricsRegistry& reg = *ctx.metrics;
    exec::ThreadPool& pool = *ctx.pool;
    TaskResult result;
    result.prefix = task.prefix;
    result.kind = task_kind_name(task.kind);

    const statmodel::ModelConfig cfg = doc.model;
    const double sm = statmodel::ber_of(cfg);
    reg.gauge(task.prefix + ".statmodel").set(sm);
    result.scalars.emplace_back("statmodel", sm);

    // Outside [1e-13, 0.1] the statmodel itself is out of its valid
    // regime (gridded-PDF underflow below, saturation above), so there is
    // nothing meaningful to differentiate against.
    const bool in_regime = sm >= 1e-13 && sm <= 0.1;
    result.scalars.emplace_back("in_regime", in_regime ? 1.0 : 0.0);

    bool strict_ok = true;
    if (in_regime) {
        mc::AnalyticMarginModel model(cfg);
        mc::ImportanceSampler::Config ic;
        ic.budget = compile_budget(doc.mc, ctx.seed);
        mc::ImportanceSampler is(model, ic, &reg);
        const auto ie = is.estimate(pool);
        const double ratio = sm > 0.0 ? ie.mean / sm : 0.0;
        strict_ok = ie.contains(sm) ||
                    (ratio >= 1.0 / 3.0 && ratio <= 3.0);
        reg.gauge(task.prefix + ".is_ber").set(ie.mean);
        reg.gauge(task.prefix + ".is_rel_err").set(ie.rel_err());
        reg.gauge(task.prefix + ".is_ci_lo").set(ie.ci.lo);
        reg.gauge(task.prefix + ".is_ci_hi").set(ie.ci.hi);
        reg.counter(task.prefix + ".is_samples").inc(ie.n_samples);
        result.scalars.emplace_back("is_ber", ie.mean);
        result.scalars.emplace_back("is_rel_err", ie.rel_err());
        if (ctx.verbose) {
            std::printf("[%s] statmodel %.3e vs IS %.3e (rel %.2f) -> %s\n",
                        task.prefix.c_str(), sm, ie.mean, ie.rel_err(),
                        strict_ok ? "agree" : "DISAGREE");
        }
    }
    reg.gauge(task.prefix + ".agree").set(strict_ok ? 1.0 : 0.0);
    result.scalars.emplace_back("agree", strict_ok ? 1.0 : 0.0);

    bool beh_ok = true;
    if (task.behavioral_runs > 0 && in_regime &&
        sm >= task.behavioral_min_ber) {
        auto bp = mc::BehavioralMarginModel::params_from(cfg);
        mc::BehavioralMarginModel beh(bp);
        mc::DirectSampler::Config dc;
        dc.budget.max_evals = task.behavioral_runs;
        dc.budget.base_seed = ctx.seed;
        dc.runs_per_round =
            std::min<std::uint64_t>(task.behavioral_runs, 4096);
        mc::DirectSampler direct(beh, dc, &reg);
        const auto de = direct.estimate(pool);
        // tau-inflated Clopper-Pearson bracket around the behavioral
        // estimate; a zero-error run still has a positive CI upper bound.
        const double lo = std::max(
            0.0, de.mean - task.behavioral_tau * (de.mean - de.ci.lo));
        const double hi =
            de.mean + task.behavioral_tau * (de.ci.hi - de.mean);
        // Ratio fallback, wider than the strict gate's: with enough
        // runs the tau-band collapses around the behavioral mean, and
        // behavioral-vs-analytic agreement is order-of-magnitude by
        // construction (bench_xval_ber's long-standing caveat — lock
        // dynamics and SJ trajectory sampling that the statmodel
        // integrates out). One decade still convicts a broken decoder
        // (BER pinned at 0.5 or 0).
        const double bratio = sm > 0.0 ? de.mean / sm : 0.0;
        beh_ok = (sm >= lo && sm <= hi) || (bratio >= 0.1 && bratio <= 10.0);
        reg.gauge(task.prefix + ".beh_ber").set(de.mean);
        reg.counter(task.prefix + ".beh_runs").inc(de.n_samples);
        reg.gauge(task.prefix + ".beh_agree").set(beh_ok ? 1.0 : 0.0);
        result.scalars.emplace_back("beh_agree", beh_ok ? 1.0 : 0.0);
        result.scalars.emplace_back("beh_ber", de.mean);
        if (ctx.verbose) {
            std::printf("[%s] behavioral %.3e in tau-band [%.1e, %.1e] "
                        "-> %s\n",
                        task.prefix.c_str(), de.mean, lo, hi,
                        beh_ok ? "agree" : "DISAGREE");
        }
    }
    result.ok = strict_ok && beh_ok;
    return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioDoc& doc,
                            const ScenarioContext& ctx) {
    ScenarioResult result;
    for (const TaskSpec& task : doc.tasks) {
        TaskResult tr;
        switch (task.kind) {
            case TaskSpec::Kind::kBerSurface:
                tr = run_ber_surface(doc, task, ctx);
                break;
            case TaskSpec::Kind::kBaselineJtol:
                tr = run_baseline_jtol(doc, task, ctx);
                break;
            case TaskSpec::Kind::kNetlistRun:
                tr = run_netlist(doc, task, ctx);
                break;
            case TaskSpec::Kind::kDifferential:
                tr = run_differential(doc, task, ctx);
                break;
            case TaskSpec::Kind::kHealthProbe:
                tr = run_health_probe(doc, task, ctx);
                break;
        }
        result.ok = result.ok && tr.ok;
        result.tasks.push_back(std::move(tr));
    }
    return result;
}

namespace {

void append_field(std::string& out, bool& first, std::string_view key,
                  std::string_view rendered) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += rendered;
}

}  // namespace

std::string result_payload_json(const ScenarioDoc& doc,
                                const ScenarioResult& result) {
    std::string out = "{\"name\":\"" + obs::JsonWriter::escape(doc.name) +
                      "\",\"ok\":" + (result.ok ? "true" : "false") +
                      ",\"tasks\":{";
    // Tasks keyed by prefix; prefixes are unique (loader-enforced), so
    // sorting them yields a canonical object.
    std::vector<const TaskResult*> tasks;
    for (const TaskResult& t : result.tasks) tasks.push_back(&t);
    std::sort(tasks.begin(), tasks.end(),
              [](const TaskResult* a, const TaskResult* b) {
                  return a->prefix < b->prefix;
              });
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const TaskResult& t = *tasks[i];
        if (i) out += ',';
        out += '"' + obs::JsonWriter::escape(t.prefix) + "\":{";
        bool first = true;
        if (!t.health_json.empty()) {
            // Already-canonical compact JSON (gcdr.health/v1); spliced
            // verbatim so the payload stays byte-comparable with the
            // daemon's final watch frame. "health" sorts before the
            // other keys.
            append_field(out, first, "health", t.health_json);
        }
        append_field(out, first, "kind",
                     "\"" + obs::JsonWriter::escape(t.kind) + "\"");
        append_field(out, first, "ok", t.ok ? "true" : "false");
        {
            auto scalars = t.scalars;
            std::sort(scalars.begin(), scalars.end());
            std::string s = "{";
            for (std::size_t k = 0; k < scalars.size(); ++k) {
                if (k) s += ',';
                s += '"' + obs::JsonWriter::escape(scalars[k].first) +
                     "\":" + obs::canonical_number(scalars[k].second, {});
            }
            s += '}';
            append_field(out, first, "scalars", s);
        }
        {
            auto series = t.series;
            std::sort(series.begin(), series.end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
            std::string s = "{";
            for (std::size_t k = 0; k < series.size(); ++k) {
                if (k) s += ',';
                s += '"' + obs::JsonWriter::escape(series[k].first) +
                     "\":[";
                for (std::size_t j = 0; j < series[k].second.size(); ++j) {
                    if (j) s += ',';
                    s += obs::canonical_number(series[k].second[j], {});
                }
                s += ']';
            }
            s += '}';
            append_field(out, first, "series", s);
        }
        out += '}';
    }
    out += "}}";
    return out;
}

}  // namespace gcdr::scenario
