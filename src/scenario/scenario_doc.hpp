#pragma once
// Declarative scenario documents (gcdr.scenario/v1) — the config-file
// netlist layer of ROADMAP item 4. A scenario describes WHAT to simulate
// (channel count and wiring, jitter stack, statmodel knobs, sweep grids,
// MC budgets, tasks) as data; the compiler (scenario/compile.hpp) lowers
// a validated document onto the existing object graph and the runner
// (scenario/run.hpp) executes it with the exact metric structure of the
// hard-coded benches it replaces.
//
// Format sketch (JSON, parsed with the strict obs/json_parse parser):
//
//   {"schema": "gcdr.scenario/v1",
//    "name": "fig9_ber_sj",
//    "title": "...",                          // optional
//    "model": {.. statmodel::ModelConfig surface, all optional ..},
//    "mc": {"max_evals": 200000, "target_rel_err": 0.1},
//    "netlist": {"instances": {..}, "wires": [..]},   // optional
//    "tasks": [{"kind": "ber_surface", ...}, ...]}
//
// Sweep values anywhere a list of numbers is needed accept generator
// forms — [..] literal, {"values": [..]}, {"linspace"|"logspace":
// {"from": a, "to": b, "points": n}}, {"steps": {"from": a, "to": b,
// "step": s}} — expanded at load time through util::linspace/logspace so
// a scenario reproduces the exact grid doubles of the C++ bench it
// mirrors.
//
// Validation follows the qsoc netlist idiom: parse, then structural
// validation that is LOUD — unknown keys anywhere, unconnected or
// doubly-driven wires, direction mismatches, out-of-range parameters are
// all hard errors carrying file/path/line/column diagnostics (byte
// offsets recorded per value by obs/json_parse). A typo must never
// silently fall back to a default: the daemon caches results under the
// document's canonical hash, and a half-understood document would poison
// the cache under a wrong key.
//
// Canonical form: resolved_json() re-serializes a loaded document with
// every field explicit (defaults resolved, generators expanded, keys
// sorted, obs/canonical number rendering, netlist instances and wires in
// name order). It is a fixed point — resolved_json(load(resolved_json(d)))
// is byte-identical — and its fnv1a64 is the scenario's config hash used
// by the bench ledger and the serving daemon's cache keys.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr::scenario {

inline constexpr const char* kScenarioSchema = "gcdr.scenario/v1";

/// One validation (or parse) failure, pointing as precisely as the
/// source allows: document path always, file and line/column when the
/// loader had the source text.
struct Diagnostic {
    std::string file;     ///< as given to the loader; may be empty
    std::string path;     ///< document path, e.g. "tasks[1].axes[0].step"
    std::size_t line = 0; ///< 1-based; 0 = unknown
    std::size_t column = 0;
    std::string message;

    /// "file:line:col: at <path>: message" with unknown parts omitted.
    [[nodiscard]] std::string render() const;
};

/// A named sweep axis with its values fully expanded.
struct AxisSpec {
    std::string name;
    std::vector<double> values;
};

/// JTOL-contour rider of a ber_surface task (fig9's second half).
struct JtolSpec {
    std::vector<double> freqs;  ///< normalized SJ frequencies
    double ber_target = 1e-12;
    std::string mask = "infiniband_2g5";  ///< or "none"
};

struct TaskSpec {
    enum class Kind {
        kBerSurface,
        kBaselineJtol,
        kNetlistRun,
        kDifferential,
        kHealthProbe
    };
    Kind kind = Kind::kBerSurface;
    /// Metric prefix ("fig9" -> fig9.ber_evals...); unique per document.
    std::string prefix;

    // kBerSurface: statistical-model BER over a sweep grid, optionally
    // followed by a JTOL contour (replicates bench_fig9_ber_sj).
    std::vector<AxisSpec> axes;
    bool has_jtol = false;
    JtolSpec jtol;

    // kBaselineJtol: gated-oscillator statmodel vs bang-bang vs
    // phase-interpolator CDRs (replicates bench_baseline_jtol).
    std::vector<double> jtol_freqs;
    std::uint64_t jtol_bits = 40000;
    double ber_target = 1e-12;
    double amp_cap = 32.0;
    std::vector<double> offsets;  ///< empty = skip the offset sweep
    std::uint64_t offset_bits = 50000;

    // kNetlistRun: drive the document's netlist end to end (no extra
    // fields; the netlist is the workload).

    // kDifferential: statistical model vs analytic-margin importance
    // sampling (strict gate), plus an optional behavioral-channel direct
    // MC leg (loose gate — the behavioral layer differs by genuine
    // channel physics).
    std::uint64_t behavioral_runs = 4096;  ///< 0 = analytic-only
    double behavioral_min_ber = 3e-4;  ///< skip behavioral below this BER
    double behavioral_tau = 5.0;       ///< CI inflation of the loose gate

    // kHealthProbe: netlist run with per-lane health monitors attached
    // (obs/health); the run is sliced into `frames` equal femtosecond
    // spans and a gcdr.health/v1 snapshot is emitted after each slice
    // (the daemon's /v1/watch live stream). Event-driven execution makes
    // the slicing behavior-neutral.
    std::uint64_t frames = 8;
};

[[nodiscard]] const char* task_kind_name(TaskSpec::Kind k);

struct McSpec {
    std::uint64_t max_evals = 200'000;
    double target_rel_err = 0.1;
    double confidence = 0.95;
};

// --- netlist -------------------------------------------------------------
// Instance kinds and their ports:
//   source  { bits, prbs, start_ns,           out  (output)
//             pattern, repeat, rate_offset }
//   channel { f_osc_hz, ckj_uirms,            din  (input)
//             improved_sampling }             dout (output)
//   monitor {}                                in   (input)
// Wires run output -> input; a source may fan out to several channels,
// every channel.din and monitor.in must be driven exactly once.

struct SourceSpec {
    std::string name;
    std::uint64_t bits = 2000;
    int prbs = 7;  ///< PRBS order: 7, 9, 15, 23 or 31
    double start_ns = 4.0;
    /// Explicit 0/1 bit pattern; when non-empty it replaces the PRBS
    /// stream (specifying `pattern` together with `bits` or `prbs` is an
    /// error) and the source emits pattern repeated `repeat` times.
    std::vector<int> pattern;
    std::uint64_t repeat = 1;
    /// Relative TX data-rate offset (jitter::StreamParams::data_rate_offset);
    /// a grossly off-rate source makes the lane unlockable — the health
    /// subsystem's fault-injection knob.
    double rate_offset = 0.0;
};

struct ChannelSpec {
    std::string name;
    double f_osc_hz = 2.5e9;
    double ckj_uirms = 0.01;
    bool improved_sampling = false;
};

struct MonitorSpec {
    std::string name;
};

struct WireSpec {
    std::string from_inst, from_port;
    std::string to_inst, to_port;
    double skew_ps = 0.0;
};

struct NetlistSpec {
    // All in name order (the canonical instance order; channel i of the
    // compiled receiver is channels[i]).
    std::vector<SourceSpec> sources;
    std::vector<ChannelSpec> channels;
    std::vector<MonitorSpec> monitors;
    std::vector<WireSpec> wires;  ///< sorted by (from, to)
};

struct ScenarioDoc {
    std::string name;
    std::string title;
    statmodel::ModelConfig model;
    McSpec mc;
    bool has_netlist = false;
    NetlistSpec netlist;
    std::vector<TaskSpec> tasks;
};

/// Set one ModelConfig double field by its scenario/protocol name
/// (sj_freq_norm, freq_offset, sampling_advance_ui,
/// trigger_mismatch_uirms, grid_dx, pdf_prune_floor, dj_uipp, rj_uirms,
/// sj_uipp, ckj_uirms). Returns false for unknown names. Sweep axes
/// address exactly this namespace.
[[nodiscard]] bool apply_model_field(statmodel::ModelConfig& cfg,
                                     std::string_view name, double value);

/// Build a ScenarioDoc from a parsed JSON value. Collects every
/// diagnostic it can (not just the first); returns true iff none. Pass
/// `source`/`file` when available so diagnostics carry line/column.
[[nodiscard]] bool scenario_from_json(const obs::JsonValue& root,
                                      ScenarioDoc& doc,
                                      std::vector<Diagnostic>& diags,
                                      std::string_view source = {},
                                      std::string_view file = {});

/// Parse + validate one document from text.
[[nodiscard]] bool scenario_from_string(std::string_view text,
                                        ScenarioDoc& doc,
                                        std::vector<Diagnostic>& diags,
                                        std::string_view file = "<string>");

/// Read + parse + validate a scenario file.
[[nodiscard]] bool scenario_from_file(const std::string& path,
                                      ScenarioDoc& doc,
                                      std::vector<Diagnostic>& diags);

/// Canonical resolved serialization (see header comment). Valid JSON;
/// canonicalizing it is the identity.
[[nodiscard]] std::string resolved_json(const ScenarioDoc& doc);

/// fnv1a64(resolved_json(doc)) — the scenario's config hash.
[[nodiscard]] std::uint64_t scenario_hash(const ScenarioDoc& doc);

}  // namespace gcdr::scenario
