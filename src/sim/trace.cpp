#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gcdr::sim {

void Tracer::watch(Wire& w) {
    const std::size_t idx = names_.size();
    names_.push_back(w.name());
    initial_values_.push_back(w.value());
    w.on_change([this, idx, &w] {
        if (max_samples_ != 0 && samples_.size() >= max_samples_) {
            ++dropped_;
            if (m_dropped_) m_dropped_->inc();
            return;
        }
        samples_.push_back(TraceSample{w.scheduler().now(), idx, w.value()});
        if (m_samples_) m_samples_->set(static_cast<double>(samples_.size()));
    });
}

void Tracer::attach_metrics(obs::MetricsRegistry& registry,
                            const std::string& prefix) {
    m_samples_ = &registry.gauge(prefix + ".samples");
    m_dropped_ = &registry.counter(prefix + ".dropped_samples");
    m_samples_->set(static_cast<double>(samples_.size()));
    if (dropped_) m_dropped_->inc(dropped_);
}

std::vector<SimTime> Tracer::edges_of(const std::string& wire_name,
                                      bool rising_only) const {
    // An unknown name used to silently return nothing, indistinguishable
    // from a watched wire that never toggled — a typo in a test would
    // "pass" with zero edges. Name lookup failures are now loud.
    std::size_t wire = names_.size();
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == wire_name) {
            wire = i;
            break;
        }
    }
    if (wire == names_.size()) {
        std::string msg = "Tracer::edges_of: wire '" + wire_name +
                          "' is not watched; watched wires:";
        for (const auto& n : names_) msg += " '" + n + "'";
        throw std::invalid_argument(msg);
    }
    std::vector<SimTime> out;
    for (const auto& s : samples_) {
        if (s.wire == wire && (!rising_only || s.value)) out.push_back(s.time);
    }
    return out;
}

std::string Tracer::ascii_diagram(SimTime t0, SimTime t1,
                                  std::size_t columns) const {
    // Build straight into a pre-sized string: one row per wire of
    // label(>=10) + columns + newline. ostringstream paid a streambuf
    // round-trip per chunk and a final copy out.
    std::string out;
    std::size_t label_width = 10;
    for (const auto& n : names_) label_width = std::max(label_width, n.size());
    out.reserve(names_.size() * (label_width + columns + 1));
    const double span = static_cast<double>((t1 - t0).femtoseconds());
    for (std::size_t w = 0; w < names_.size(); ++w) {
        // Reconstruct the level in each time bin from the transition list.
        bool level = initial_values_[w];
        std::size_t si = 0;
        std::string row(columns, ' ');
        for (std::size_t c = 0; c < columns; ++c) {
            const SimTime bin_end =
                t0 + SimTime{static_cast<std::int64_t>(
                         span * static_cast<double>(c + 1) /
                         static_cast<double>(columns))};
            bool toggled = false;
            while (si < samples_.size() && samples_[si].time <= bin_end) {
                if (samples_[si].wire == w) {
                    level = samples_[si].value;
                    toggled = true;
                }
                ++si;
            }
            row[c] = toggled ? '|' : (level ? '#' : '_');
        }
        out += names_[w];
        out.append(names_[w].size() < 10 ? 10 - names_[w].size() : 0, ' ');
        out += row;
        out += '\n';
    }
    return out;
}

std::string Tracer::to_csv() const {
    // ~24 bytes of digits/punctuation per line plus the wire name.
    std::size_t per_line = 24;
    for (const auto& n : names_) per_line = std::max(per_line, n.size() + 24);
    std::string out = "time_ps,wire,value\n";
    out.reserve(out.size() + samples_.size() * per_line);
    char ps[32];
    for (const auto& s : samples_) {
        // %g matches the old ostream formatting ("250", not "250.000000").
        std::snprintf(ps, sizeof ps, "%g", s.time.picoseconds());
        out += ps;
        out += ',';
        out += names_[s.wire];
        out += ',';
        out += s.value ? '1' : '0';
        out += '\n';
    }
    return out;
}

}  // namespace gcdr::sim
