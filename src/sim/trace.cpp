#include "sim/trace.hpp"

#include <sstream>

namespace gcdr::sim {

void Tracer::watch(Wire& w) {
    const std::size_t idx = names_.size();
    names_.push_back(w.name());
    initial_values_.push_back(w.value());
    w.on_change([this, idx, &w] {
        if (max_samples_ != 0 && samples_.size() >= max_samples_) {
            ++dropped_;
            if (m_dropped_) m_dropped_->inc();
            return;
        }
        samples_.push_back(TraceSample{w.scheduler().now(), idx, w.value()});
        if (m_samples_) m_samples_->set(static_cast<double>(samples_.size()));
    });
}

void Tracer::attach_metrics(obs::MetricsRegistry& registry,
                            const std::string& prefix) {
    m_samples_ = &registry.gauge(prefix + ".samples");
    m_dropped_ = &registry.counter(prefix + ".dropped_samples");
    m_samples_->set(static_cast<double>(samples_.size()));
    if (dropped_) m_dropped_->inc(dropped_);
}

std::vector<SimTime> Tracer::edges_of(const std::string& wire_name,
                                      bool rising_only) const {
    std::vector<SimTime> out;
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] != wire_name) continue;
        for (const auto& s : samples_) {
            if (s.wire == i && (!rising_only || s.value)) out.push_back(s.time);
        }
    }
    return out;
}

std::string Tracer::ascii_diagram(SimTime t0, SimTime t1,
                                  std::size_t columns) const {
    std::ostringstream os;
    const double span = static_cast<double>((t1 - t0).femtoseconds());
    for (std::size_t w = 0; w < names_.size(); ++w) {
        // Reconstruct the level in each time bin from the transition list.
        bool level = initial_values_[w];
        std::size_t si = 0;
        std::string row(columns, ' ');
        for (std::size_t c = 0; c < columns; ++c) {
            const SimTime bin_end =
                t0 + SimTime{static_cast<std::int64_t>(
                         span * static_cast<double>(c + 1) /
                         static_cast<double>(columns))};
            bool toggled = false;
            while (si < samples_.size() && samples_[si].time <= bin_end) {
                if (samples_[si].wire == w) {
                    level = samples_[si].value;
                    toggled = true;
                }
                ++si;
            }
            row[c] = toggled ? '|' : (level ? '#' : '_');
        }
        os << names_[w];
        for (std::size_t pad = names_[w].size(); pad < 10; ++pad) os << ' ';
        os << row << '\n';
    }
    return os.str();
}

std::string Tracer::to_csv() const {
    std::ostringstream os;
    os << "time_ps,wire,value\n";
    for (const auto& s : samples_) {
        os << s.time.picoseconds() << ',' << names_[s.wire] << ','
           << (s.value ? 1 : 0) << '\n';
    }
    return os.str();
}

}  // namespace gcdr::sim
