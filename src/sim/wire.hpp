#pragma once
// Boolean signal with VHDL `transport` delay semantics.
//
// The paper's behavioral model (Fig 12) drives every oscillator and delay-
// line node with `transport ... after delay`. Transport semantics matter:
// they propagate arbitrarily narrow pulses (the EDET gating pulse can be a
// sizeable fraction of a bit) and a new assignment cancels pending
// transactions scheduled at-or-after its own effective time. Wire implements
// exactly that rule on top of sim::Scheduler.
//
// Differential CML nets are modeled single-ended (true rail); gates/ applies
// the sign flips explicitly where the paper inverts a differential pair.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/inline_callback.hpp"
#include "util/sim_time.hpp"

namespace gcdr::sim {

class Wire {
public:
    /// Listeners fire on every committed transition — the netlist's hottest
    /// dispatch path — so they use the same small-buffer callable as the
    /// scheduler: gate captures stay inline, no std::function indirection.
    using Listener = InlineCallback<48>;

    Wire(Scheduler& sched, std::string name, bool initial = false)
        : sched_(&sched), name_(std::move(name)), value_(initial) {}

    Wire(const Wire&) = delete;
    Wire& operator=(const Wire&) = delete;

    [[nodiscard]] bool value() const { return value_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] Scheduler& scheduler() const { return *sched_; }

    /// Time of the most recent committed value change.
    [[nodiscard]] SimTime last_change() const { return last_change_; }
    /// Number of committed value changes so far.
    [[nodiscard]] std::uint64_t transition_count() const { return transitions_; }

    /// VHDL `transport` assignment: value takes effect at now() + delay.
    /// Pending transactions at or after that time are cancelled.
    void post_transport(SimTime delay, bool v);

    /// Immediate (delta-free) assignment. Cancels all pending transactions.
    void set_now(bool v);

    /// Register a callback invoked after every committed value change.
    /// Listeners are permanent for the wire's lifetime (static netlists).
    void on_change(Listener fn) { listeners_.push_back(std::move(fn)); }

    /// Telemetry: count committed transitions (listener callbacks) of this
    /// wire under "<metric_prefix>.transitions" (default: "wire.<name>").
    /// The per-wire tallies let a bench attribute kernel event churn to
    /// individual nets.
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& metric_prefix = "") {
        const std::string base =
            metric_prefix.empty() ? "wire." + name_ : metric_prefix;
        auto* c = &registry.counter(base + ".transitions");
        on_change([c] { c->inc(); });
    }

private:
    struct Pending {
        SimTime time;
        std::uint64_t id;
        bool value;
    };

    void commit(std::uint64_t id);
    void apply(bool v);

    Scheduler* sched_;
    std::string name_;
    bool value_;
    SimTime last_change_{0};
    std::uint64_t transitions_ = 0;
    std::uint64_t next_id_ = 0;
    std::deque<Pending> pending_;
    std::vector<Listener> listeners_;
};

}  // namespace gcdr::sim
