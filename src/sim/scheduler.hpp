#pragma once
// Discrete-event scheduler: the core of the behavioral (VHDL-equivalent)
// simulation layer. Events are (time, insertion-order) ordered, so identical
// seeds give bit-identical runs. All gate models (gates/) and the CDR
// topology (cdr/) execute on top of this kernel.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sim_time.hpp"

namespace gcdr::sim {

class Scheduler {
public:
    using Callback = std::function<void()>;

    /// Schedule `fn` at absolute time `t`. Throws std::logic_error if
    /// t < now() — in every build configuration, not just with asserts
    /// enabled — because a past-time event would corrupt event order for
    /// the remainder of the run.
    void schedule_at(SimTime t, Callback fn);

    /// Schedule `fn` at now() + dt (dt >= 0).
    void schedule_in(SimTime dt, Callback fn);

    /// Current simulation time.
    [[nodiscard]] SimTime now() const { return now_; }

    /// Pop and execute the next event. Returns false when the queue is empty.
    bool step();

    /// Run until the queue drains or the next event is past `t_end`;
    /// afterwards now() == min(t_end, last executed event time).
    void run_until(SimTime t_end);

    /// Run until the event queue is empty.
    void run();

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

    /// Attach telemetry (obs/). Registers under `prefix`:
    ///   <prefix>.events_scheduled / .events_executed   counters
    ///   <prefix>.queue_high_water                      gauge
    ///   <prefix>.wall_seconds / .sim_wall_ratio        gauges, updated by
    ///                                                  run()/run_until()
    /// Pass nullptr to detach. When detached (the default) the hot path
    /// pays only a null-pointer branch per event.
    void attach_metrics(obs::MetricsRegistry* registry,
                        const std::string& prefix = "sim");

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;  // tie-break: FIFO among equal-time events
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void finish_run(SimTime sim_start, double wall_seconds);

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_{0};
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;

    // Telemetry instruments (null when no registry is attached).
    obs::Counter* m_scheduled_ = nullptr;
    obs::Counter* m_executed_ = nullptr;
    obs::Gauge* m_queue_hwm_ = nullptr;
    obs::Gauge* m_wall_seconds_ = nullptr;
    obs::Gauge* m_sim_wall_ratio_ = nullptr;
    double wall_accum_s_ = 0.0;   ///< total wall time inside run*()
    double sim_accum_s_ = 0.0;    ///< total sim time advanced by run*()
};

}  // namespace gcdr::sim
