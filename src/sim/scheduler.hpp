#pragma once
// Discrete-event scheduler: the core of the behavioral (VHDL-equivalent)
// simulation layer. Events are (time, insertion-order) ordered, so identical
// seeds give bit-identical runs. All gate models (gates/) and the CDR
// topology (cdr/) execute on top of this kernel.
//
// Storage is a calendar queue (sim/event_queue.hpp): a timer wheel for the
// near-term events the netlist actually executes plus a binary-heap overflow
// for the pre-scheduled far-future drive edges, with slab-pooled events and
// small-buffer callbacks so the steady-state schedule/execute path performs
// no heap allocation. Ordering is identical to the previous binary-heap
// kernel, so seeded runs stay byte-for-byte reproducible across the swap.

#include <cstdint>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/trace_causal.hpp"
#include "sim/event_queue.hpp"
#include "util/sim_time.hpp"

namespace gcdr::sim {

class Scheduler {
public:
    /// Small-buffer move-only callable; lambdas with up to 48 bytes of
    /// captures (every gates/ and cdr/ event) are stored without allocating.
    using Callback = EventQueue::Callback;

    /// Schedule `fn` at absolute time `t`. Throws std::logic_error if
    /// t < now() — in every build configuration, not just with asserts
    /// enabled — because a past-time event would corrupt event order for
    /// the remainder of the run.
    void schedule_at(SimTime t, Callback fn);

    /// Schedule `fn` at now() + dt (dt >= 0).
    void schedule_in(SimTime dt, Callback fn);

    /// Current simulation time.
    [[nodiscard]] SimTime now() const { return now_; }

    /// Pop and execute the next event. Returns false when the queue is empty.
    bool step();

    /// Run until the queue drains or the next event is past `t_end`;
    /// afterwards now() == min(t_end, last executed event time).
    void run_until(SimTime t_end);

    /// Run until the event queue is empty.
    void run();

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

    /// Attach telemetry (obs/). Registers under `prefix`:
    ///   <prefix>.events_scheduled / .events_executed   counters
    ///   <prefix>.queue_high_water                      gauge
    ///   <prefix>.queue_depth                           gauge (at flush)
    ///   <prefix>.pool_capacity / .pool_in_use          gauges (at flush)
    ///   <prefix>.wall_seconds / .sim_wall_ratio        gauges, updated by
    ///                                                  run()/run_until()
    /// Pass nullptr to detach. When detached (the default) the drain loops
    /// run with the telemetry branch compiled out entirely.
    ///
    /// Scheduling telemetry is accumulated in plain members on the hot
    /// path and published to the registry's atomics when a run*()/step()
    /// call returns (and on re-attach/detach) — registry values are exact
    /// whenever the scheduler is idle, which is when reports read them.
    void attach_metrics(obs::MetricsRegistry* registry,
                        const std::string& prefix = "sim");

    /// Attach a causal tracer (obs/trace_causal.hpp). Every schedule_at
    /// records (id = queue seq + 1, parent = id of the event executing at
    /// schedule time, due time); pass nullptr to detach. Like telemetry,
    /// the tracing branch is template-hoisted out of the drain loop, so
    /// the detached default costs nothing per event.
    void attach_tracer(obs::CausalTracer* tracer) { tracer_ = tracer; }
    [[nodiscard]] obs::CausalTracer* tracer() const { return tracer_; }

    /// Causal id of the event currently executing (0 between events).
    /// Decision callbacks read this to stamp flight-recorder entries.
    [[nodiscard]] std::uint64_t current_event_id() const {
        return current_event_id_;
    }

    /// Invoked (before throwing) when schedule_at receives a past-time
    /// event — the flight recorder hooks in here so a corrupted run
    /// leaves a post-mortem. `kind` is a stable token ("schedule_in_past"),
    /// `detail` the human-readable message.
    using FaultHook = std::function<void(const char* kind,
                                        const std::string& detail)>;
    void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

private:
    /// Drain loop; the telemetry and tracing branches are hoisted to
    /// template parameters so the detached (default) configuration pays
    /// nothing per event.
    template <bool kTelemetry, bool kTrace>
    void drain(SimTime t_end);

    void dispatch_drain(SimTime t_end);

    void finish_run(SimTime sim_start, double wall_seconds);

    /// Publish the locally accumulated schedule-side telemetry.
    void flush_pending_telemetry();

    EventQueue queue_;
    SimTime now_{0};
    std::uint64_t executed_ = 0;

    // Causal tracing (null = detached, the default).
    obs::CausalTracer* tracer_ = nullptr;
    std::uint64_t current_event_id_ = 0;
    FaultHook fault_hook_;

    // Telemetry instruments (null when no registry is attached).
    obs::Counter* m_scheduled_ = nullptr;
    obs::Counter* m_executed_ = nullptr;
    obs::Gauge* m_queue_hwm_ = nullptr;
    obs::Gauge* m_queue_depth_ = nullptr;
    obs::Gauge* m_pool_capacity_ = nullptr;
    obs::Gauge* m_pool_in_use_ = nullptr;
    obs::Gauge* m_wall_seconds_ = nullptr;
    obs::Gauge* m_sim_wall_ratio_ = nullptr;
    // Hot-path accumulators: published by flush_pending_telemetry() so
    // schedule_at pays plain increments instead of atomics per event.
    std::uint64_t pending_scheduled_ = 0;
    std::size_t local_hwm_ = 0;
    double wall_accum_s_ = 0.0;   ///< total wall time inside run*()
    double sim_accum_s_ = 0.0;    ///< total sim time advanced by run*()
};

}  // namespace gcdr::sim
