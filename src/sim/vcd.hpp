#pragma once
// IEEE 1364 VCD (value change dump) writer for the behavioral simulation:
// attach wires, run, then emit a dump readable by GTKWave & co. The
// behavioral layer replaces the paper's VHDL simulator; this replaces its
// waveform viewer hookup.

#include <string>
#include <vector>

#include "sim/wire.hpp"

namespace gcdr::sim {

class VcdWriter {
public:
    /// `timescale_fs` sets the VCD timescale unit in femtoseconds
    /// (default 1 ps, matching the paper's VHDL resolution).
    explicit VcdWriter(std::int64_t timescale_fs = 1000)
        : timescale_fs_(timescale_fs) {}

    /// Attach a wire; transitions from now on are recorded.
    void watch(Wire& w);

    /// Render the complete VCD document.
    [[nodiscard]] std::string to_string(
        const std::string& module_name = "gcco_cdr") const;

    /// Write to a file; returns false on I/O failure.
    bool write_file(const std::string& path,
                    const std::string& module_name = "gcco_cdr") const;

    [[nodiscard]] std::size_t signal_count() const { return names_.size(); }
    [[nodiscard]] std::size_t change_count() const { return changes_.size(); }

private:
    struct Change {
        std::int64_t time_fs;
        std::size_t signal;
        bool value;
    };

    [[nodiscard]] std::string id_of(std::size_t index) const;

    std::int64_t timescale_fs_;
    std::vector<std::string> names_;
    std::vector<bool> initial_;
    std::vector<Change> changes_;
};

}  // namespace gcdr::sim
