#pragma once
// IEEE 1364 VCD (value change dump) writer for the behavioral simulation:
// attach wires, run, then emit a dump readable by GTKWave & co. The
// behavioral layer replaces the paper's VHDL simulator; this replaces its
// waveform viewer hookup.

#include <string>
#include <vector>

#include "sim/wire.hpp"

namespace gcdr::sim {

class VcdWriter {
public:
    /// `timescale_fs` sets the VCD timescale unit in femtoseconds
    /// (default 1 ps, matching the paper's VHDL resolution).
    explicit VcdWriter(std::int64_t timescale_fs = 1000)
        : timescale_fs_(timescale_fs) {}

    /// Attach a wire; transitions from now on are recorded.
    void watch(Wire& w);

    /// Bound the retained history to the newest `n` changes (0 = unbounded,
    /// the default). Evicted changes fold into the per-signal initial
    /// values, so a capped writer still renders a correct waveform for the
    /// window it retains — this is what lets the flight recorder watch a
    /// channel for an entire run without unbounded growth.
    void set_max_changes(std::size_t n);

    /// Render the complete VCD document.
    [[nodiscard]] std::string to_string(
        const std::string& module_name = "gcco_cdr") const;

    /// Render only changes with time_fs in [t0_fs, t1_fs]; changes before
    /// the window fold into the initial values, so signal states entering
    /// the window are correct. Used for flight-recorder failure windows.
    [[nodiscard]] std::string to_string_window(
        std::int64_t t0_fs, std::int64_t t1_fs,
        const std::string& module_name = "gcco_cdr") const;

    /// Write to a file; returns false on I/O failure.
    bool write_file(const std::string& path,
                    const std::string& module_name = "gcco_cdr") const;

    /// write_file restricted to the [t0_fs, t1_fs] window.
    bool write_window(const std::string& path, std::int64_t t0_fs,
                      std::int64_t t1_fs,
                      const std::string& module_name = "gcco_cdr") const;

    [[nodiscard]] std::size_t signal_count() const { return names_.size(); }
    [[nodiscard]] std::size_t change_count() const { return changes_.size(); }

private:
    struct Change {
        std::int64_t time_fs;
        std::size_t signal;
        bool value;
    };

    [[nodiscard]] std::string id_of(std::size_t index) const;
    void record(std::int64_t time_fs, std::size_t signal, bool value);
    /// Header + $dumpvars with `state` as the initial values, then every
    /// change in [t0_fs, t1_fs].
    [[nodiscard]] std::string render(const std::string& module_name,
                                     const std::vector<bool>& state,
                                     std::int64_t t0_fs,
                                     std::int64_t t1_fs) const;

    std::int64_t timescale_fs_;
    std::vector<std::string> names_;
    std::vector<bool> initial_;
    std::vector<Change> changes_;
    std::size_t max_changes_ = 0;  ///< 0 = unbounded
    std::size_t evict_pos_ = 0;    ///< ring start when bounded
};

}  // namespace gcdr::sim
