#include "sim/scheduler.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace gcdr::sim {

void Scheduler::schedule_at(SimTime t, Callback fn) {
    // Fail fast in every build configuration: a past-time event would be
    // executed out of order, silently corrupting causality for the rest
    // of the run. An assert would vanish under NDEBUG (Release), which is
    // exactly where long bench runs happen.
    if (t < now_) {
        throw std::logic_error(
            "Scheduler::schedule_at: event time " +
            std::to_string(t.femtoseconds()) + " fs is before now() = " +
            std::to_string(now_.femtoseconds()) + " fs");
    }
    queue_.push(Event{t, next_seq_++, std::move(fn)});
    if (m_scheduled_) {
        m_scheduled_->inc();
        m_queue_hwm_->set_max(static_cast<double>(queue_.size()));
    }
}

void Scheduler::schedule_in(SimTime dt, Callback fn) {
    schedule_at(now_ + dt, std::move(fn));
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    // Move out of the queue before popping: the callback may schedule.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    if (m_executed_) m_executed_->inc();
    ev.fn();
    return true;
}

void Scheduler::run_until(SimTime t_end) {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    while (!queue_.empty() && queue_.top().time <= t_end) {
        step();
    }
    if (now_ < t_end) now_ = t_end;
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::run() {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    while (step()) {
    }
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::finish_run(SimTime sim_start, double wall_seconds) {
    wall_accum_s_ += wall_seconds;
    sim_accum_s_ += (now_ - sim_start).seconds();
    m_wall_seconds_->set(wall_accum_s_);
    if (wall_accum_s_ > 0.0) {
        m_sim_wall_ratio_->set(sim_accum_s_ / wall_accum_s_);
    }
}

void Scheduler::attach_metrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
    if (!registry) {
        m_scheduled_ = m_executed_ = nullptr;
        m_queue_hwm_ = m_wall_seconds_ = m_sim_wall_ratio_ = nullptr;
        return;
    }
    m_scheduled_ = &registry->counter(prefix + ".events_scheduled");
    m_executed_ = &registry->counter(prefix + ".events_executed");
    m_queue_hwm_ = &registry->gauge(prefix + ".queue_high_water");
    m_wall_seconds_ = &registry->gauge(prefix + ".wall_seconds");
    m_sim_wall_ratio_ = &registry->gauge(prefix + ".sim_wall_ratio");
}

}  // namespace gcdr::sim
