#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace gcdr::sim {

void Scheduler::schedule_at(SimTime t, Callback fn) {
    assert(t >= now_ && "cannot schedule into the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Scheduler::schedule_in(SimTime dt, Callback fn) {
    schedule_at(now_ + dt, std::move(fn));
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    // Move out of the queue before popping: the callback may schedule.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
}

void Scheduler::run_until(SimTime t_end) {
    while (!queue_.empty() && queue_.top().time <= t_end) {
        step();
    }
    if (now_ < t_end) now_ = t_end;
}

void Scheduler::run() {
    while (step()) {
    }
}

}  // namespace gcdr::sim
