#include "sim/scheduler.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace gcdr::sim {

void Scheduler::schedule_at(SimTime t, Callback fn) {
    // Fail fast in every build configuration: a past-time event would be
    // executed out of order, silently corrupting causality for the rest
    // of the run. An assert would vanish under NDEBUG (Release), which is
    // exactly where long bench runs happen.
    if (t < now_) {
        throw std::logic_error(
            "Scheduler::schedule_at: event time " +
            std::to_string(t.femtoseconds()) + " fs is before now() = " +
            std::to_string(now_.femtoseconds()) + " fs");
    }
    queue_.push(t, std::move(fn));
    if (m_scheduled_) {
        ++pending_scheduled_;
        if (queue_.size() > local_hwm_) local_hwm_ = queue_.size();
    }
}

void Scheduler::schedule_in(SimTime dt, Callback fn) {
    schedule_at(now_ + dt, std::move(fn));
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    const EventQueue::Handle h = queue_.take_if_at_most(SimTime::max());
    now_ = queue_.time_of(h);
    ++executed_;
    queue_.run_and_recycle(h);
    if (m_executed_) {
        m_executed_->inc();
        flush_pending_telemetry();
    }
    return true;
}

template <bool kTelemetry>
void Scheduler::drain(SimTime t_end) {
    std::uint64_t n = 0;
    EventQueue::Handle h;
    while ((h = queue_.take_if_at_most(t_end)) != EventQueue::kNoEvent) {
        now_ = queue_.time_of(h);
        ++n;
        // Runs the callback in place in the event pool: no move out, and
        // any events it schedules reuse other pool slots.
        queue_.run_and_recycle(h);
    }
    executed_ += n;
    if constexpr (kTelemetry) m_executed_->inc(n);
}

void Scheduler::run_until(SimTime t_end) {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    if (m_executed_) {
        drain<true>(t_end);
    } else {
        drain<false>(t_end);
    }
    if (now_ < t_end) now_ = t_end;
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::run() {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    if (m_executed_) {
        drain<true>(SimTime::max());
    } else {
        drain<false>(SimTime::max());
    }
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::finish_run(SimTime sim_start, double wall_seconds) {
    flush_pending_telemetry();
    wall_accum_s_ += wall_seconds;
    sim_accum_s_ += (now_ - sim_start).seconds();
    m_wall_seconds_->set(wall_accum_s_);
    if (wall_accum_s_ > 0.0) {
        m_sim_wall_ratio_->set(sim_accum_s_ / wall_accum_s_);
    }
}

void Scheduler::flush_pending_telemetry() {
    if (!m_scheduled_) return;
    if (pending_scheduled_ != 0) {
        m_scheduled_->inc(pending_scheduled_);
        pending_scheduled_ = 0;
    }
    m_queue_hwm_->set_max(static_cast<double>(local_hwm_));
}

void Scheduler::attach_metrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
    flush_pending_telemetry();  // publish to the outgoing registry
    local_hwm_ = 0;  // a fresh registry must only see its own peaks
    if (!registry) {
        m_scheduled_ = m_executed_ = nullptr;
        m_queue_hwm_ = m_wall_seconds_ = m_sim_wall_ratio_ = nullptr;
        return;
    }
    m_scheduled_ = &registry->counter(prefix + ".events_scheduled");
    m_executed_ = &registry->counter(prefix + ".events_executed");
    m_queue_hwm_ = &registry->gauge(prefix + ".queue_high_water");
    m_wall_seconds_ = &registry->gauge(prefix + ".wall_seconds");
    m_sim_wall_ratio_ = &registry->gauge(prefix + ".sim_wall_ratio");
}

}  // namespace gcdr::sim
