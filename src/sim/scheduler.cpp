#include "sim/scheduler.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace gcdr::sim {

void Scheduler::schedule_at(SimTime t, Callback fn) {
    // Fail fast in every build configuration: a past-time event would be
    // executed out of order, silently corrupting causality for the rest
    // of the run. An assert would vanish under NDEBUG (Release), which is
    // exactly where long bench runs happen.
    if (t < now_) {
        const std::string detail =
            "Scheduler::schedule_at: event time " +
            std::to_string(t.femtoseconds()) + " fs is before now() = " +
            std::to_string(now_.femtoseconds()) + " fs";
        // Let the flight recorder write a post-mortem before the stack
        // unwinds — by the time the exception surfaces, the rings are
        // often gone.
        if (fault_hook_) fault_hook_("schedule_in_past", detail);
        throw std::logic_error(detail);
    }
    const std::uint64_t seq = queue_.push(t, std::move(fn));
    if (tracer_) {
        tracer_->on_schedule(seq + 1, current_event_id_, t.femtoseconds());
    }
    if (m_scheduled_) {
        ++pending_scheduled_;
        if (queue_.size() > local_hwm_) local_hwm_ = queue_.size();
    }
}

void Scheduler::schedule_in(SimTime dt, Callback fn) {
    schedule_at(now_ + dt, std::move(fn));
}

bool Scheduler::step() {
    if (queue_.empty()) return false;
    const EventQueue::Handle h = queue_.take_if_at_most(SimTime::max());
    now_ = queue_.time_of(h);
    ++executed_;
    if (tracer_) current_event_id_ = queue_.seq_of(h) + 1;
    queue_.run_and_recycle(h);
    current_event_id_ = 0;
    if (m_executed_) {
        m_executed_->inc();
        flush_pending_telemetry();
    }
    return true;
}

template <bool kTelemetry, bool kTrace>
void Scheduler::drain(SimTime t_end) {
    std::uint64_t n = 0;
    EventQueue::Handle h;
    while ((h = queue_.take_if_at_most(t_end)) != EventQueue::kNoEvent) {
        now_ = queue_.time_of(h);
        ++n;
        if constexpr (kTrace) current_event_id_ = queue_.seq_of(h) + 1;
        // Runs the callback in place in the event pool: no move out, and
        // any events it schedules reuse other pool slots.
        queue_.run_and_recycle(h);
    }
    if constexpr (kTrace) current_event_id_ = 0;
    executed_ += n;
    if constexpr (kTelemetry) m_executed_->inc(n);
}

void Scheduler::dispatch_drain(SimTime t_end) {
    if (m_executed_) {
        if (tracer_) drain<true, true>(t_end);
        else drain<true, false>(t_end);
    } else {
        if (tracer_) drain<false, true>(t_end);
        else drain<false, false>(t_end);
    }
}

void Scheduler::run_until(SimTime t_end) {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    dispatch_drain(t_end);
    if (now_ < t_end) now_ = t_end;
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::run() {
    using Clock = std::chrono::steady_clock;
    const auto wall0 = m_wall_seconds_ ? Clock::now() : Clock::time_point{};
    const SimTime sim0 = now_;
    dispatch_drain(SimTime::max());
    if (m_wall_seconds_) {
        finish_run(sim0,
                   std::chrono::duration<double>(Clock::now() - wall0).count());
    }
}

void Scheduler::finish_run(SimTime sim_start, double wall_seconds) {
    flush_pending_telemetry();
    wall_accum_s_ += wall_seconds;
    sim_accum_s_ += (now_ - sim_start).seconds();
    m_wall_seconds_->set(wall_accum_s_);
    if (wall_accum_s_ > 0.0) {
        m_sim_wall_ratio_->set(sim_accum_s_ / wall_accum_s_);
    }
}

void Scheduler::flush_pending_telemetry() {
    if (!m_scheduled_) return;
    if (pending_scheduled_ != 0) {
        m_scheduled_->inc(pending_scheduled_);
        pending_scheduled_ = 0;
    }
    m_queue_hwm_->set_max(static_cast<double>(local_hwm_));
    // Instantaneous occupancy, sampled off the hot path: queue depth at
    // flush time plus the event pool's footprint (capacity never shrinks,
    // so it records the run's high-water memory commitment).
    m_queue_depth_->set(static_cast<double>(queue_.size()));
    m_pool_capacity_->set(static_cast<double>(queue_.pool_capacity()));
    m_pool_in_use_->set(static_cast<double>(queue_.pool_in_use()));
}

void Scheduler::attach_metrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
    flush_pending_telemetry();  // publish to the outgoing registry
    local_hwm_ = 0;  // a fresh registry must only see its own peaks
    if (!registry) {
        m_scheduled_ = m_executed_ = nullptr;
        m_queue_hwm_ = m_queue_depth_ = m_pool_capacity_ = nullptr;
        m_pool_in_use_ = m_wall_seconds_ = m_sim_wall_ratio_ = nullptr;
        return;
    }
    m_scheduled_ = &registry->counter(prefix + ".events_scheduled");
    m_executed_ = &registry->counter(prefix + ".events_executed");
    m_queue_hwm_ = &registry->gauge(prefix + ".queue_high_water");
    m_queue_depth_ = &registry->gauge(prefix + ".queue_depth");
    m_pool_capacity_ = &registry->gauge(prefix + ".pool_capacity");
    m_pool_in_use_ = &registry->gauge(prefix + ".pool_in_use");
    m_wall_seconds_ = &registry->gauge(prefix + ".wall_seconds");
    m_sim_wall_ratio_ = &registry->gauge(prefix + ".sim_wall_ratio");
}

}  // namespace gcdr::sim
