#include "sim/wire.hpp"

#include <cassert>

namespace gcdr::sim {

void Wire::post_transport(SimTime delay, bool v) {
    assert(delay >= SimTime{0});
    const SimTime when = sched_->now() + delay;
    // Transport rule: the new transaction overrides anything scheduled at or
    // after its own time. Pending is kept time-sorted, so cut from the back.
    while (!pending_.empty() && pending_.back().time >= when) {
        pending_.pop_back();
    }
    // Collapsing transactions that repeat the preceding value is observably
    // equivalent (commits of an unchanged value fire no listeners, and the
    // cancellation rule removes a suffix, which dedup preserves).
    if (pending_.empty() ? (v == value_) : (pending_.back().value == v)) {
        return;
    }
    const std::uint64_t id = next_id_++;
    pending_.push_back(Pending{when, id, v});
    sched_->schedule_at(when, [this, id] { commit(id); });
}

void Wire::set_now(bool v) {
    pending_.clear();
    apply(v);
}

void Wire::commit(std::uint64_t id) {
    // The transaction may have been cancelled by a later transport post; in
    // that case its id is no longer at the queue front (or anywhere at all).
    if (pending_.empty() || pending_.front().id != id) return;
    const bool v = pending_.front().value;
    pending_.pop_front();
    apply(v);
}

void Wire::apply(bool v) {
    if (v == value_) return;
    value_ = v;
    last_change_ = sched_->now();
    ++transitions_;
    for (auto& fn : listeners_) fn();
}

}  // namespace gcdr::sim
