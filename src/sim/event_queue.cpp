#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace gcdr::sim {

std::uint32_t EventQueue::acquire_slot() {
    if (free_.empty()) {
        const auto base =
            static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
        slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
        // Hand indices out low-first so early runs touch one warm slab.
        for (std::size_t i = kSlabSize; i-- > 0;) {
            free_.push_back(base + static_cast<std::uint32_t>(i));
        }
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
}

void EventQueue::bucket_insert(std::int64_t slot, std::uint32_t idx) {
    const auto b = static_cast<std::size_t>(slot) & kWheelMask;
    if (buckets_[b].empty()) {
        bitmap_[b >> 6] |= std::uint64_t{1} << (b & 63);
    }
    buckets_[b].push_back(idx);
    ++wheel_count_;
    // Keep the wheel-minimum hint exact so ready_front can usually skip
    // the bitmap scan. An insert can only *establish* the hint when the
    // wheel was empty; while the hint is invalid ("unknown") a smaller
    // occupied slot may exist, so it must stay invalid until the next scan.
    if (wheel_count_ == 1) {
        min_slot_ = slot;
        min_valid_ = true;
    } else if (min_valid_ && slot < min_slot_) {
        min_slot_ = slot;
    }
}

std::uint64_t EventQueue::push(SimTime t, Callback&& fn) {
    const std::uint32_t idx = acquire_slot();
    Event& ev = event(idx);
    ev.time = t;
    ev.seq = next_seq_++;
    ev.fn = std::move(fn);

    // The window floor is the slot of the last popped event (cursor only
    // moves forward through pops), so every push lands at slot >= cursor —
    // the scheduler rejects past-time events. Never re-anchor on push: two
    // pushes can arrive out of time order, and the earlier one must still
    // sort first.
    const std::int64_t slot = slot_of(t);
    if (slot - cursor_slot_ < static_cast<std::int64_t>(kWheelSize)) {
        bucket_insert(slot, idx);
    } else {
        overflow_.push_back(HeapEntry{t, ev.seq, idx});
        std::push_heap(overflow_.begin(), overflow_.end(), HeapLater{});
    }
    ++size_;
    return ev.seq;
}

void EventQueue::drain_overflow() {
    while (!overflow_.empty() &&
           slot_of(overflow_.front().time) - cursor_slot_ <
               static_cast<std::int64_t>(kWheelSize)) {
        std::pop_heap(overflow_.begin(), overflow_.end(), HeapLater{});
        const HeapEntry e = overflow_.back();
        overflow_.pop_back();
        bucket_insert(slot_of(e.time), e.idx);
    }
}

void EventQueue::ready_front() {
    assert(size_ != 0);
    if (wheel_count_ == 0) {
        // Jump the window to the earliest far-future event.
        cursor_slot_ = slot_of(overflow_.front().time);
        drain_overflow();
        return;
    }
    if (min_valid_) {
        // Exact hint (maintained by insert/remove): no scan needed.
        cursor_slot_ = min_slot_;
    } else {
        // All wheel slots lie in [cursor, cursor + kWheelSize), so the
        // first set bit circularly from the cursor is the earliest slot.
        const std::size_t cur =
            static_cast<std::size_t>(cursor_slot_) & kWheelMask;
        std::size_t word = cur >> 6;
        std::uint64_t mask = ~std::uint64_t{0} << (cur & 63);
        for (;;) {
            const std::uint64_t bits = bitmap_[word] & mask;
            if (bits) {
                const std::size_t bit =
                    (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
                cursor_slot_ +=
                    static_cast<std::int64_t>((bit - cur) & kWheelMask);
                break;
            }
            word = (word + 1) & (bitmap_.size() - 1);
            mask = ~std::uint64_t{0};
        }
        min_slot_ = cursor_slot_;
        min_valid_ = true;
    }
    // The window moved forward; admit any overflow that now fits. Admitted
    // slots are past the old horizon, hence after the bucket just found.
    drain_overflow();
}

std::size_t EventQueue::min_pos_in_cursor_bucket() {
    const auto& b =
        buckets_[static_cast<std::size_t>(cursor_slot_) & kWheelMask];
    std::size_t best = 0;
    for (std::size_t i = 1; i < b.size(); ++i) {
        const Event& cand = event(b[i]);
        const Event& cur = event(b[best]);
        if (cand.time < cur.time ||
            (cand.time == cur.time && cand.seq < cur.seq)) {
            best = i;
        }
    }
    return best;
}

std::uint32_t EventQueue::unlink_from_cursor_bucket(std::size_t pos) {
    const auto bi = static_cast<std::size_t>(cursor_slot_) & kWheelMask;
    auto& b = buckets_[bi];
    const std::uint32_t idx = b[pos];
    b[pos] = b.back();
    b.pop_back();
    if (b.empty()) {
        bitmap_[bi >> 6] &= ~(std::uint64_t{1} << (bi & 63));
        min_valid_ = false;  // the cursor bucket held the wheel minimum
    }
    --wheel_count_;
    --size_;
    return idx;
}

SimTime EventQueue::peek_time() {
    ready_front();
    const auto& b =
        buckets_[static_cast<std::size_t>(cursor_slot_) & kWheelMask];
    return event(b[min_pos_in_cursor_bucket()]).time;
}

SimTime EventQueue::pop(Callback& out) {
    ready_front();
    const std::uint32_t idx =
        unlink_from_cursor_bucket(min_pos_in_cursor_bucket());
    Event& ev = event(idx);
    out = std::move(ev.fn);  // move-assign resets out's previous state
    const SimTime t = ev.time;
    release_slot(idx);
    return t;
}

EventQueue::Handle EventQueue::take_if_at_most(SimTime t_end) {
    if (size_ == 0) return kNoEvent;
    ready_front();
    const std::size_t pos = min_pos_in_cursor_bucket();
    const auto& b =
        buckets_[static_cast<std::size_t>(cursor_slot_) & kWheelMask];
    if (event(b[pos]).time > t_end) return kNoEvent;
    return unlink_from_cursor_bucket(pos);
}

void EventQueue::run_and_recycle(Handle h) {
    // The slab array never relocates its slabs, so this reference stays
    // valid even if the callback pushes events (possibly growing the pool).
    Event& ev = event(h);
    ev.fn();
    ev.fn.reset();
    release_slot(h);
}

}  // namespace gcdr::sim
