#pragma once
// Waveform tracing for the behavioral model: records committed transitions
// of selected wires so benches can print the paper's timing diagrams (Fig 8)
// and tests can assert on edge sequences.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/wire.hpp"
#include "util/sim_time.hpp"

namespace gcdr::sim {

struct TraceSample {
    SimTime time;
    std::size_t wire;  // index into wire_names()
    bool value;
};

class Tracer {
public:
    /// Attach to a wire; all subsequent transitions are recorded. The wire
    /// must outlive the tracer's use of it.
    void watch(Wire& w);

    [[nodiscard]] const std::vector<TraceSample>& samples() const {
        return samples_;
    }
    [[nodiscard]] const std::vector<std::string>& wire_names() const {
        return names_;
    }

    /// Transition times of one watched wire, optionally rising edges only.
    /// A watched wire with no recorded transitions returns an empty
    /// vector; a name that was never watched throws std::invalid_argument
    /// listing the watched wires (it used to silently return nothing).
    [[nodiscard]] std::vector<SimTime> edges_of(const std::string& wire_name,
                                                bool rising_only = false) const;

    /// Render an ASCII timing diagram (one row per wire) over [t0, t1] with
    /// `columns` time bins — a textual Fig 8.
    [[nodiscard]] std::string ascii_diagram(SimTime t0, SimTime t1,
                                            std::size_t columns = 100) const;

    /// CSV dump: time_ps,wire,value per transition.
    [[nodiscard]] std::string to_csv() const;

    void clear() { samples_.clear(); }

    /// Cap the stored sample count so unattended long runs cannot grow
    /// memory without bound: once `n` samples are held, further
    /// transitions are counted in dropped_samples() but not stored.
    /// 0 (the default) means unlimited. Lowering the cap below the
    /// current size keeps existing samples and only gates new ones.
    void set_max_samples(std::size_t n) { max_samples_ = n; }
    [[nodiscard]] std::size_t max_samples() const { return max_samples_; }
    [[nodiscard]] std::uint64_t dropped_samples() const { return dropped_; }

    /// Telemetry: report stored/dropped sample tallies under `prefix`
    /// (<prefix>.samples gauge, <prefix>.dropped_samples counter).
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "trace");

private:
    std::vector<std::string> names_;
    std::vector<bool> initial_values_;
    std::vector<TraceSample> samples_;
    std::size_t max_samples_ = 0;
    std::uint64_t dropped_ = 0;
    obs::Gauge* m_samples_ = nullptr;
    obs::Counter* m_dropped_ = nullptr;
};

}  // namespace gcdr::sim
