#pragma once
// Structure-of-arrays bank of per-lane xoshiro256++ streams feeding the
// batched channel kernel's jitter draws.
//
// Contract: for a lane seeded with S, the sequence popped by next(lane)
// is bit-identical to the sequence util::Rng(S).gaussian() would return —
// including the polar Box-Muller pair order (u*factor first, then the
// cached v*factor). The scalar event path consumes its normals one at a
// time as gate evaluations fire; the batch path pre-generates them in
// chunks. Because generation within a lane is strictly sequential and
// consumption is FIFO, chunking changes nothing about the values.
//
// top_up() refills every lane with the SIMD kernel (lanes mapped to
// vector slots, rejection handled with per-slot masks so a slot that
// finished or rejected never advances another slot's state); next()
// falls back to a scalar refill when a lane drains mid-slice. Both
// refills walk the identical generation recurrence, so the stream is the
// same no matter which path produced it.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcdr::sim::batch {

class NormalBank {
public:
    explicit NormalBank(std::size_t lanes);

    /// Re-seed one lane, discarding its buffered normals. Seeding matches
    /// util::Xoshiro256(seed): four splitmix64 draws plus the zero-state
    /// guard.
    void seed_lane(std::size_t lane, std::uint64_t seed);

    [[nodiscard]] std::size_t lanes() const { return s0_.size(); }

    /// Standard normals currently buffered for `lane`.
    [[nodiscard]] std::size_t available(std::size_t lane) const {
        const Fifo& f = fifo_[lane];
        return f.buf.size() - f.head;
    }

    /// Pop the next normal for `lane`; scalar refill on underflow.
    double next(std::size_t lane) {
        Fifo& f = fifo_[lane];
        if (f.head == f.buf.size()) refill_lane_scalar(lane, kChunk);
        return f.buf[f.head++];
    }

    // Raw window access for a consumer that pops many normals in a tight
    // loop (the lane kernel): read [head(), size()) from data(), then
    // set_head() with the new position before anything else touches the
    // bank. The window is invalidated by next()/top_up()/seed_lane().
    [[nodiscard]] const double* data(std::size_t lane) const {
        return fifo_[lane].buf.data();
    }
    [[nodiscard]] std::size_t head(std::size_t lane) const {
        return fifo_[lane].head;
    }
    [[nodiscard]] std::size_t size(std::size_t lane) const {
        return fifo_[lane].buf.size();
    }
    void set_head(std::size_t lane, std::size_t head) {
        fifo_[lane].head = head;
    }

    /// Refill every lane to at least `want` buffered normals, vectorized
    /// across lanes (scalar-equivalent when GCDR_SIMD is off).
    void top_up(std::size_t want);

    /// Doubles per vector register in this build (1 = scalar fallback).
    [[nodiscard]] static std::size_t simd_width();

private:
    struct Fifo {
        std::vector<double> buf;
        std::size_t head = 0;
    };
    static constexpr std::size_t kChunk = 64;

    /// Drop consumed entries so append indices stay small.
    void compact(std::size_t lane);
    /// Append >= `want` - available normals via the scalar recurrence.
    void refill_lane_scalar(std::size_t lane, std::size_t want);

    // xoshiro256++ state, one column per lane.
    std::vector<std::uint64_t> s0_, s1_, s2_, s3_;
    std::vector<Fifo> fifo_;
};

}  // namespace gcdr::sim::batch
