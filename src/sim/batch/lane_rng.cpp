#include "sim/batch/lane_rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"

namespace gcdr::sim::batch {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

// splitmix64, exactly as util/rng.cpp seeds Xoshiro256.
std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

// One xoshiro256++ step (Blackman & Vigna), matching Xoshiro256::operator().
inline std::uint64_t xoshiro_next(std::uint64_t& s0, std::uint64_t& s1,
                                  std::uint64_t& s2, std::uint64_t& s3) {
    const std::uint64_t result = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
    return result;
}

// Rng::uniform(): top 53 bits scaled to [0, 1).
inline double to_unit(std::uint64_t r) {
    return static_cast<double>(r >> 11) * 0x1.0p-53;
}

}  // namespace

NormalBank::NormalBank(std::size_t lanes)
    : s0_(lanes), s1_(lanes), s2_(lanes), s3_(lanes), fifo_(lanes) {
    for (std::size_t l = 0; l < lanes; ++l) seed_lane(l, 1);
}

void NormalBank::seed_lane(std::size_t lane, std::uint64_t seed) {
    std::uint64_t x = seed;
    s0_[lane] = splitmix64(x);
    s1_[lane] = splitmix64(x);
    s2_[lane] = splitmix64(x);
    s3_[lane] = splitmix64(x);
    if ((s0_[lane] | s1_[lane] | s2_[lane] | s3_[lane]) == 0) s0_[lane] = 1;
    fifo_[lane].buf.clear();
    fifo_[lane].head = 0;
}

void NormalBank::compact(std::size_t lane) {
    Fifo& f = fifo_[lane];
    if (f.head == 0) return;
    f.buf.erase(f.buf.begin(),
                f.buf.begin() + static_cast<std::ptrdiff_t>(f.head));
    f.head = 0;
}

void NormalBank::refill_lane_scalar(std::size_t lane, std::size_t want) {
    compact(lane);
    Fifo& f = fifo_[lane];
    std::uint64_t s0 = s0_[lane], s1 = s1_[lane], s2 = s2_[lane],
                  s3 = s3_[lane];
    while (f.buf.size() < want) {
        // Polar Box-Muller, the exact Rng::gaussian() recurrence; the
        // accepted pair enters the FIFO in consumption order (u*factor is
        // what gaussian() returns, v*factor is its cached second deviate).
        double u, v, s;
        do {
            u = 2.0 * to_unit(xoshiro_next(s0, s1, s2, s3)) - 1.0;
            v = 2.0 * to_unit(xoshiro_next(s0, s1, s2, s3)) - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        f.buf.push_back(u * factor);
        f.buf.push_back(v * factor);
    }
    s0_[lane] = s0;
    s1_[lane] = s1;
    s2_[lane] = s2;
    s3_[lane] = s3;
}

std::size_t NormalBank::simd_width() { return gcdr::simd::width_doubles(); }

void NormalBank::top_up(std::size_t want) {
#if GCDR_SIMD_ENABLED
    namespace stdx = gcdr::simd::stdx;
    using VD = gcdr::simd::VDouble;
    using VU = gcdr::simd::VUint64;
    using Mask = VU::mask_type;
    constexpr std::size_t kW = VD::size();

    const auto rotl_v = [](VU x, int k) {
        return (x << k) | (x >> (64 - k));
    };
    // Masked xoshiro advance: slots outside `m` keep their state, so a
    // finished lane's stream position is untouched by its neighbours'
    // rejection retries.
    const auto advance = [&](VU& s0, VU& s1, VU& s2, VU& s3, Mask m) {
        const VU t = s1 << 17;
        VU n2 = s2 ^ s0;
        VU n3 = s3 ^ s1;
        const VU n1 = s1 ^ n2;
        const VU n0 = s0 ^ n3;
        n2 = n2 ^ t;
        n3 = rotl_v(n3, 45);
        stdx::where(m, s0) = n0;
        stdx::where(m, s1) = n1;
        stdx::where(m, s2) = n2;
        stdx::where(m, s3) = n3;
    };

    const std::size_t n = lanes();
    for (std::size_t base = 0; base < n; base += kW) {
        const std::size_t cnt = std::min(kW, n - base);
        // Per-slot bookkeeping lives in plain stack arrays: simd-type
        // subscripts round-trip through memory on every access, which
        // costs more than the vector math saves at narrow widths.
        bool act[kW] = {};
        std::vector<double>* bufs[kW] = {};
        std::size_t goal[kW] = {};
        bool any = false;
        for (std::size_t k = 0; k < cnt; ++k) {
            compact(base + k);
            Fifo& f = fifo_[base + k];
            const bool needs = f.buf.size() < want;  // head == 0 now
            act[k] = needs;
            any = any || needs;
            if (needs) {
                bufs[k] = &f.buf;
                goal[k] = want;
                f.buf.reserve(want + 2);
            }
        }
        if (!any) continue;

        VU s0{}, s1{}, s2{}, s3{};
        for (std::size_t k = 0; k < cnt; ++k) {
            s0[k] = s0_[base + k];
            s1[k] = s1_[base + k];
            s2[k] = s2_[base + k];
            s3[k] = s3_[base + k];
        }

        while (any) {
            Mask active{false};
            for (std::size_t k = 0; k < cnt; ++k) active[k] = act[k];
            // Two raw draws per Box-Muller attempt; r2 of an inactive slot
            // is computed from stale state and never used.
            const VU r1 = rotl_v(s0 + s3, 23) + s0;
            advance(s0, s1, s2, s3, active);
            const VU r2 = rotl_v(s0 + s3, 23) + s0;
            advance(s0, s1, s2, s3, active);

            const VD u =
                2.0 * (stdx::static_simd_cast<VD>(r1 >> 11) * 0x1.0p-53) -
                1.0;
            const VD v =
                2.0 * (stdx::static_simd_cast<VD>(r2 >> 11) * 0x1.0p-53) -
                1.0;
            const VD s = u * u + v * v;

            double ua[kW], va[kW], sa[kW];
            u.copy_to(ua, stdx::element_aligned);
            v.copy_to(va, stdx::element_aligned);
            s.copy_to(sa, stdx::element_aligned);

            // Accept/reject and the log/sqrt tail run per slot: the
            // rejection outcome is data-dependent, and factor goes through
            // scalar libm so the values match the scalar path exactly.
            any = false;
            for (std::size_t k = 0; k < cnt; ++k) {
                if (!act[k]) continue;
                const double sk = sa[k];
                if (sk < 1.0 && sk != 0.0) {
                    const double factor =
                        std::sqrt(-2.0 * std::log(sk) / sk);
                    std::vector<double>& b = *bufs[k];
                    b.push_back(ua[k] * factor);
                    b.push_back(va[k] * factor);
                    if (b.size() >= goal[k]) act[k] = false;
                }
                any = any || act[k];
            }
        }

        for (std::size_t k = 0; k < cnt; ++k) {
            s0_[base + k] = s0[k];
            s1_[base + k] = s1[k];
            s2_[base + k] = s2[k];
            s3_[base + k] = s3[k];
        }
    }
#else
    for (std::size_t l = 0; l < lanes(); ++l) {
        compact(l);
        if (available(l) < want) refill_lane_scalar(l, want);
    }
#endif
}

}  // namespace gcdr::sim::batch
