#include "sim/batch/channel_batch.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>

#include "cdr/lane_step.hpp"
#include "gates/cml_equations.hpp"
#include "sim/batch/lane_rng.hpp"
#include "util/simd.hpp"

namespace gcdr::sim::batch {

namespace {

constexpr std::int64_t kNoHorizon = std::numeric_limits<std::int64_t>::max();

/// Pending transport transactions of one wire — sim::Wire's deque with a
/// consumed-prefix index instead of node allocation. The scheduler seq of
/// the commit event doubles as the transaction id: it is unique, and a
/// cancelled transaction's commit simply finds a different seq (or an
/// empty queue) at the front, exactly like Wire's id check. The posted
/// value is packed into seq's low bit to keep the struct at 16 bytes
/// (the queues sit on the hottest loads of the kernel).
struct Pend {
    std::int64_t time;
    std::uint64_t seq_val;  ///< (seq << 1) | value

    [[nodiscard]] std::uint64_t seq() const { return seq_val >> 1; }
    [[nodiscard]] bool value() const { return (seq_val & 1) != 0; }
};

struct PendQ {
    std::vector<Pend> buf;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const { return head == buf.size(); }
    [[nodiscard]] const Pend& front() const { return buf[head]; }
    [[nodiscard]] const Pend& back() const { return buf.back(); }
    void pop_front() {
        ++head;
        if (head == buf.size()) clear();
    }
    void pop_back() {
        buf.pop_back();
        if (head == buf.size()) clear();
    }
    void push_back(const Pend& p) { buf.push_back(p); }
    void clear() {
        buf.clear();
        head = 0;
    }
};

/// A scheduled wire-commit event. (time, seq) replicate the scheduler's
/// total order; seq also identifies the transaction (no-op commit when
/// the front pending entry carries a different seq), exactly like
/// Wire::commit's id check. The wire index lives in seq's low 16 bits so
/// the struct stays at 16 bytes; ordering on the packed field equals
/// ordering on seq because seqs are unique.
struct CommitEv {
    std::int64_t time;
    std::uint64_t seq_wire;  ///< (seq << 16) | wire

    [[nodiscard]] std::uint64_t seq() const { return seq_wire >> 16; }
    [[nodiscard]] std::uint32_t wire() const {
        return static_cast<std::uint32_t>(seq_wire & 0xFFFFu);
    }
};

/// Executes-earlier order: (time, seq) ascending.
inline bool runs_before(const CommitEv& a, const CommitEv& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_wire < b.seq_wire;
}

/// Shared (lane-invariant) compile of the channel topology: delays in
/// integer femtoseconds, jitter sigmas, and the flat wire numbering.
///
/// Wire layout (C = delay-line cells):
///   0         din
///   1..C      delay-line nodes (C = line out)
///   C+1       edet          C+2  ddin
///   C+3..C+6  vinv1..vinv4
///   C+7       ckout         C+8  q
struct KernelConfig {
    explicit KernelConfig(const cdr::ChannelConfig& cfg) : rate(cfg.rate) {
        n_cells = static_cast<std::uint32_t>(cfg.edge_detector.n_cells);
        cell_fs = cfg.edge_detector.cell_delay.femtoseconds();
        cell_jitter = cfg.edge_detector.cell_jitter_rel;
        xor_fs = cfg.edge_detector.xor_delay.femtoseconds();
        xor_jitter = cfg.edge_detector.xor_jitter_rel;
        SimTime dummy = cfg.edge_detector.dummy_delay;
        if (dummy < SimTime{0}) dummy = cfg.edge_detector.xor_delay;
        dummy_fs = dummy.femtoseconds();
        // Control current is fixed for the batch channel, so the nominal
        // stage delay 1/(8f) hoists out of the per-event path.
        stage_d0 = 1.0 / (8.0 * cfg.gcco.frequency_at(cfg.control_current_a));
        gcco_sigma = cfg.gcco.jitter_sigma;
        // CmlSampler posts q with jittered_delay(clk_to_q) at jitter 0:
        // the nominal delay clamped to >= 1 fs, no draw.
        sampler_fs = std::max<std::int64_t>(
            cfg.sampler_delay.femtoseconds(), 1);
        improved = cfg.improved_sampling;

        line_out = n_cells;
        edet = n_cells + 1;
        ddin = n_cells + 2;
        v1 = n_cells + 3;
        v2 = n_cells + 4;
        v3 = n_cells + 5;
        v4 = n_cells + 6;
        ckout = n_cells + 7;
        q = n_cells + 8;
        n_wires = n_cells + 9;
        // CommitEv packs the wire index into 16 bits (delay lines are a
        // handful of cells; this leaves 48 bits of seq, ~2.8e14 events).
        assert(n_wires < 0x10000u);
    }

    LinkRate rate;
    std::uint32_t n_cells;
    std::int64_t cell_fs;
    double cell_jitter;
    std::int64_t xor_fs;
    double xor_jitter;
    std::int64_t dummy_fs;
    double stage_d0;  ///< nominal GCCO stage delay 1/(8f), seconds
    double gcco_sigma;
    std::int64_t sampler_fs;
    bool improved;
    std::uint32_t line_out, edet, ddin, v1, v2, v3, v4, ckout, q, n_wires;
};

/// Dispatch codes, one per wire role (precomputed in Lane::init so the
/// listener dispatch is a jump table instead of a comparison ladder).
enum : std::uint8_t {
    kActNone = 0,  // q: no listeners
    kActDin,
    kActInner,
    kActLineOut,
    kActEdet,
    kActDdin,
    kActV1,
    kActV2,
    kActV3,
    kActV4,
    kActCkout,
};

/// One lane's flat event kernel. Event kinds and their sequence numbers
/// replicate the scalar construction order: the GCCO startup kick is the
/// first event scheduled (seq 0, time 0), GccoChannel::drive() then
/// allocates one seq per input edge (1..E), and every wire commit takes
/// the next seq at post time. The next event is the (time, seq) minimum
/// across {kick, edge cursor, commit heap}.
struct Lane {
    const KernelConfig* kc = nullptr;
    NormalBank* nb = nullptr;
    std::size_t lane = 0;

    std::vector<std::uint8_t> val;
    std::vector<std::uint8_t> action;  ///< dispatch code per wire
    std::vector<PendQ> pend;
    std::vector<CommitEv> evq;

    // Cached NormalBank window, valid only inside run_to (see draw()).
    const double* rn = nullptr;
    std::size_t rn_head = 0;
    std::size_t rn_end = 0;

    std::vector<jitter::Edge> edges;
    std::size_t edge_cursor = 0;
    bool kicked = false;
    bool started = false;
    std::uint64_t seq_next = 0;

    std::int64_t now = 0;
    std::int64_t horizon = kNoHorizon;
    std::uint64_t executed = 0;

    std::vector<cdr::Decision> decisions;
    std::vector<double> margins;
    std::uint64_t ones = 0;
    std::int64_t last_clk_rise = -1;
    obs::health::LaneHealthMonitor* health = nullptr;

    void init(const KernelConfig& k, NormalBank& bank, std::size_t idx) {
        kc = &k;
        nb = &bank;
        lane = idx;
        val.assign(k.n_wires, 0);
        // Initial wire values of the scalar netlist: EDET idles high
        // (XNOR of equal inputs), the ring starts in the frozen pattern
        // (0,1,0,1); everything else follows din = low.
        val[k.edet] = 1;
        val[k.v2] = 1;
        val[k.v4] = 1;
        pend.assign(k.n_wires, PendQ{});
        for (PendQ& pq : pend) pq.buf.reserve(16);
        evq.reserve(32);
        action.assign(k.n_wires, kActNone);
        action[0] = kActDin;
        for (std::uint32_t w = 1; w < k.line_out; ++w) action[w] = kActInner;
        action[k.line_out] = kActLineOut;
        action[k.edet] = kActEdet;
        action[k.ddin] = kActDdin;
        action[k.v1] = kActV1;
        action[k.v2] = kActV2;
        action[k.v3] = kActV3;
        action[k.v4] = kActV4;
        action[k.ckout] = kActCkout;
    }

    /// Pop a normal from the cached bank window; the slow path syncs the
    /// head, lets the bank refill, and re-caches.
    [[nodiscard]] double draw() {
        if (rn_head < rn_end) return rn[rn_head++];
        return draw_slow();
    }

    [[nodiscard]] double draw_slow() {
        nb->set_head(lane, rn_head);
        const double v = nb->next(lane);
        rn = nb->data(lane);
        rn_head = nb->head(lane);
        rn_end = nb->size(lane);
        return v;
    }

    /// Schedule v on wire w at absolute time `when`. The current event
    /// time is threaded through as a parameter (rather than read from a
    /// member) so the compiler can keep it in a register across the
    /// vector stores below, which would otherwise force reloads.
    void post(std::uint32_t w, std::int64_t when, bool v) {
        PendQ& q = pend[w];
        // Transport rule + dedup, verbatim from Wire::post_transport: a
        // dropped post consumes neither a transaction id nor an event seq.
        while (!q.empty() && q.back().time >= when) q.pop_back();
        if (q.empty() ? (v == static_cast<bool>(val[w]))
                      : (q.back().value() == v)) {
            return;
        }
        const std::uint64_t seq = seq_next++;
        q.push_back(Pend{when, (seq << 1) | (v ? 1u : 0u)});
        const CommitEv ev{when, (seq << 16) | w};
        std::size_t i = evq.size();
        while (i > 0 && runs_before(evq[i - 1], ev)) --i;
        evq.insert(evq.begin() + static_cast<std::ptrdiff_t>(i), ev);
    }

    void apply(std::uint32_t w, bool v, std::int64_t t) {
        if (static_cast<bool>(val[w]) == v) return;
        val[w] = v ? 1 : 0;
        dispatch(w, t);
    }

    // --- gate evaluations (listener bodies of the scalar netlist) ---

    void eval_cell(std::uint32_t i, std::int64_t t) {  // cell i: i -> i+1
        const double z = kc->cell_jitter > 0.0 ? draw() : 0.0;
        post(i + 1,
             t + gates::eq::cml_delay_fs(kc->cell_fs, kc->cell_jitter, z),
             gates::eq::buffer_value(val[i], false));
    }

    void eval_xnor(std::int64_t t) {  // EDET = XNOR(din, line out)
        const bool v = gates::eq::xor_value(val[0], val[kc->line_out], true);
        const double z = kc->xor_jitter > 0.0 ? draw() : 0.0;
        post(kc->edet,
             t + gates::eq::cml_delay_fs(kc->xor_fs, kc->xor_jitter, z), v);
    }

    void eval_dummy(std::int64_t t) {  // DDIN = line out via dummy gate
        const double z = kc->xor_jitter > 0.0 ? draw() : 0.0;
        post(kc->ddin,
             t + gates::eq::cml_delay_fs(kc->dummy_fs, kc->xor_jitter, z),
             gates::eq::buffer_value(val[kc->line_out], false));
    }

    [[nodiscard]] std::int64_t stage_delay_fs() {
        const double z = kc->gcco_sigma > 0.0 ? draw() : 0.0;
        return cdr::lane_step::gcco_stage_delay_fs(kc->stage_d0,
                                                   kc->gcco_sigma, z);
    }

    void eval_stage1(std::int64_t t) {
        const bool v =
            cdr::lane_step::gcco_gate_value(val[kc->v4], val[kc->edet]);
        post(kc->v1, t + stage_delay_fs(), v);
    }

    void eval_inv(std::uint32_t j, std::int64_t t) {  // vinv_j, j in 2..4
        const bool v =
            cdr::lane_step::gcco_inverter_value(val[kc->v1 + j - 2]);
        post(kc->v1 + j - 1, t + stage_delay_fs(), v);
    }

    void eval_ckout(std::int64_t t) {
        post(kc->ckout, t + 1, !val[kc->v4]);
    }

    void on_clk_change(std::uint32_t w, std::int64_t t) {
        if (!val[w]) return;  // sampler + eye fold act on rises only
        // CmlSampler::on_clk: latch DDIN, post q (no jitter draw), record
        // the decision...
        const bool bit = val[kc->ddin];
        post(kc->q, t + kc->sampler_fs, bit);
        decisions.push_back(cdr::Decision{SimTime{t}, bit});
        ones += bit ? 1u : 0u;
        // ...then the channel's eye-fold listener notes the clock rise.
        last_clk_rise = t;
    }

    void on_ddin(std::int64_t t) {
        if (last_clk_rise < 0) return;  // clock not started yet
        const double margin = cdr::lane_step::fold_margin_ui(
            kc->rate, SimTime{t}, SimTime{last_clk_rise}, kc->improved);
        margins.push_back(margin);
        if (health) health->on_margin(t, margin);
    }

    /// Listener dispatch for wire `w`; each case runs that wire's scalar
    /// listeners in registration order.
    void dispatch(std::uint32_t w, std::int64_t t) {
        const KernelConfig& k = *kc;
        switch (action[w]) {
            case kActDin:  // din: [delay-line cell 0, XNOR input a]
                eval_cell(0, t);
                eval_xnor(t);
                break;
            case kActInner:  // inner node: feeds the next cell
                eval_cell(w, t);
                break;
            case kActLineOut:  // line out: [XNOR input b, dummy]
                eval_xnor(t);
                eval_dummy(t);
                break;
            case kActEdet:  // GCCO gating input
                eval_stage1(t);
                break;
            case kActDdin:  // margin measurement
                on_ddin(t);
                break;
            case kActV1:
                eval_inv(2, t);
                break;
            case kActV2:
                eval_inv(3, t);
                break;
            case kActV3:  // [inverter 3] + sampler in improved mode
                eval_inv(4, t);
                if (k.improved) on_clk_change(w, t);
                break;
            case kActV4:  // [gating stage, ckout complement]
                eval_stage1(t);
                eval_ckout(t);
                break;
            case kActCkout:
                if (!k.improved) on_clk_change(w, t);
                break;
            default:  // q has no listeners
                break;
        }
    }

    /// Drain every event with time <= t_end, in scheduler (time, seq)
    /// order, including no-op commits of cancelled transactions. The seq
    /// discipline collapses to a static priority at equal times — kick
    /// (seq 0) < drive edges (seqs 1..E, cursor order) < commits (seqs
    /// allocated from 1+E at post time) — so the loop drains the commit
    /// heap up to each edge instead of re-deriving a three-way minimum
    /// per event.
    void run_to(std::int64_t t_end) {
        // Cache the lane's normals window for the duration of the slice.
        rn = nb->data(lane);
        rn_head = nb->head(lane);
        rn_end = nb->size(lane);
        run_to_inner(t_end);
        nb->set_head(lane, rn_head);
    }

    void run_to_inner(std::int64_t t_end) {
        if (!started) {
            started = true;
            seq_next = 1 + edges.size();
        }
        if (!kicked) {  // GCCO startup kick at (time 0, seq 0)
            if (t_end < 0) return;
            kicked = true;
            now = 0;
            ++executed;
            eval_stage1(0);
        }
        const std::size_t n_edges = edges.size();
        std::uint64_t ran = 0;
        std::int64_t t_now = now;
        for (;;) {
            const std::int64_t edge_t =
                edge_cursor < n_edges
                    ? edges[edge_cursor].time.femtoseconds()
                    : kNoHorizon;
            // Commits strictly before the next edge (same-time commits
            // carry larger seqs and run after it).
            const std::int64_t cap = std::min(t_end, edge_t - 1);
            while (!evq.empty() && evq.back().time <= cap) {
                const CommitEv ev = evq.back();
                evq.pop_back();
                t_now = ev.time;
                ++ran;
                PendQ& pq = pend[ev.wire()];
                if (!pq.empty() && pq.front().seq() == ev.seq()) {
                    const bool v = pq.front().value();
                    pq.pop_front();
                    apply(ev.wire(), v, t_now);
                }
            }
            if (edge_t > t_end) break;
            t_now = edge_t;
            ++ran;
            const bool v = edges[edge_cursor++].value;
            pend[0].clear();  // input drive: din set_now semantics
            apply(0, v, t_now);
        }
        now = t_now;
        executed += ran;
    }
};

}  // namespace

struct ChannelBatch::Impl {
    Impl(const cdr::ChannelConfig& cfg, std::size_t n)
        : kc(cfg), bank(n), lanes(n) {
        for (std::size_t l = 0; l < n; ++l) lanes[l].init(kc, bank, l);
    }

    KernelConfig kc;
    NormalBank bank;
    std::vector<Lane> lanes;
    std::uint64_t steps = 0;
    double run_seconds = 0.0;

    /// Lockstep slice length. Long slices amortize the per-slice refill
    /// scan and keep each lane's streams (edges in, decisions out,
    /// normals in) running sequentially instead of ping-ponging between
    /// lanes; 1024 UI measured fastest on the 16-lane bench while still
    /// giving the pool slice-granular progress to tile.
    static constexpr std::int64_t kSliceUi = 1024;
    /// Normals kept buffered per lane per slice, covering the per-slice
    /// draw count (ring + delay line together draw ~10 per UI);
    /// underflow just falls back to the scalar refill.
    static constexpr std::size_t kTopUp = 12288;

    void run_to_targets(const std::vector<std::int64_t>& targets,
                        exec::ThreadPool* pool) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::int64_t ui_fs = kc.rate.ui_time().femtoseconds();
        const std::int64_t slice_fs = kSliceUi * ui_fs;
        std::int64_t begin = kNoHorizon;
        std::int64_t end = 0;
        for (std::size_t l = 0; l < lanes.size(); ++l) {
            begin = std::min(begin, lanes[l].now);
            end = std::max(end, targets[l]);
        }
        for (std::int64_t hi = begin + slice_fs;; hi += slice_fs) {
            const std::int64_t cap = std::min(hi, end);
            bank.top_up(kTopUp);
            ++steps;
            auto work = [&](std::size_t l) {
                lanes[l].run_to(std::min(cap, targets[l]));
            };
            if (pool != nullptr) {
                // Always dispatch through the pool when one is given, even
                // at size 1: parallel_for's serial path runs the same
                // per-lane code and the same .jobs/.items accounting, so
                // pool counters depend only on the workload, never on the
                // thread count — required by the CI identical-counters
                // diffs across --threads values.
                pool->parallel_for(lanes.size(), work);
            } else {
                for (std::size_t l = 0; l < lanes.size(); ++l) work(l);
            }
            if (cap >= end) break;
        }
        run_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
    }
};

ChannelBatch::ChannelBatch(const cdr::ChannelConfig& cfg, std::size_t lanes)
    : impl_(std::make_unique<Impl>(cfg, lanes)) {
    assert(lanes >= 1);
}

ChannelBatch::~ChannelBatch() = default;

std::size_t ChannelBatch::lanes() const { return impl_->lanes.size(); }

void ChannelBatch::seed_lane(std::size_t lane, std::uint64_t seed) {
    impl_->bank.seed_lane(lane, seed);
}

void ChannelBatch::drive(std::size_t lane,
                         const std::vector<jitter::Edge>& edges) {
    Lane& ln = impl_->lanes[lane];
    assert(!ln.started && "drive() must precede the first run");
    ln.edges.insert(ln.edges.end(), edges.begin(), edges.end());
    // Clock rises land about once per UI and DDIN toggles once per input
    // edge; reserving up front keeps reallocation out of the event loop.
    ln.decisions.reserve(ln.edges.size() * 2 + 64);
    ln.margins.reserve(ln.edges.size() + 64);
}

void ChannelBatch::set_horizon(std::size_t lane, SimTime t_end) {
    impl_->lanes[lane].horizon = t_end.femtoseconds();
}

void ChannelBatch::run_until(SimTime t_end, exec::ThreadPool* pool) {
    std::vector<std::int64_t> targets(impl_->lanes.size(),
                                      t_end.femtoseconds());
    impl_->run_to_targets(targets, pool);
}

void ChannelBatch::attach_health(obs::health::HealthHub& hub) {
    obs::health::HealthConfig hc;
    hc.ui_fs = impl_->kc.rate.ui_seconds() * 1e15;
    hc.center_ui = impl_->kc.improved ? 0.625 : 0.5;
    hub.configure(impl_->lanes.size(), hc);
    for (std::size_t l = 0; l < impl_->lanes.size(); ++l) {
        impl_->lanes[l].health = &hub.lane(l);
    }
}

void ChannelBatch::run_all(exec::ThreadPool* pool) {
    std::vector<std::int64_t> targets(impl_->lanes.size());
    for (std::size_t l = 0; l < targets.size(); ++l) {
        targets[l] = impl_->lanes[l].horizon;
        assert(targets[l] != kNoHorizon &&
               "run_all() requires set_horizon on every lane");
    }
    impl_->run_to_targets(targets, pool);
}

const std::vector<cdr::Decision>& ChannelBatch::decisions(
    std::size_t lane) const {
    return impl_->lanes[lane].decisions;
}

const std::vector<double>& ChannelBatch::margins_ui(std::size_t lane) const {
    return impl_->lanes[lane].margins;
}

std::uint64_t ChannelBatch::ones(std::size_t lane) const {
    return impl_->lanes[lane].ones;
}

std::uint64_t ChannelBatch::events_executed(std::size_t lane) const {
    return impl_->lanes[lane].executed;
}

std::uint64_t ChannelBatch::events_executed() const {
    std::uint64_t total = 0;
    for (const Lane& l : impl_->lanes) total += l.executed;
    return total;
}

std::uint64_t ChannelBatch::batch_steps() const { return impl_->steps; }

double ChannelBatch::run_seconds() const { return impl_->run_seconds; }

std::size_t ChannelBatch::simd_width() {
    return gcdr::simd::width_doubles();
}

void ChannelBatch::publish_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
    registry.gauge(prefix + ".lanes")
        .set(static_cast<double>(impl_->lanes.size()));
    registry.gauge(prefix + ".simd_width")
        .set(static_cast<double>(simd_width()));
    registry.gauge(prefix + ".steps_per_s")
        .set(impl_->run_seconds > 0.0
                 ? static_cast<double>(impl_->steps) / impl_->run_seconds
                 : 0.0);
    registry.counter(prefix + ".events").inc(events_executed());
    registry.counter(prefix + ".steps").inc(impl_->steps);
}

}  // namespace gcdr::sim::batch
