#pragma once
// Batched structure-of-arrays execution of N homogeneous GCCO CDR lanes.
//
// The generic event kernel (sim/Scheduler + Wire + gates/) spends most of
// each event on dispatch machinery: calendar-queue bookkeeping, listener
// indirection through InlineCallback, telemetry branches, string-named
// wires. A multi-channel receiver — or a Monte-Carlo engine running
// thousands of clones of one channel — simulates N *identical* netlists
// that differ only in seed and input edges, so all of that generality is
// paid N times for nothing.
//
// ChannelBatch replaces it with a flat per-lane micro-kernel plus SoA
// shared state advanced in lockstep time slices:
//
//  - lane state is plain arrays (wire values, per-wire pending transport
//    rings, a small (time, seq) commit heap, edge cursor) — no listeners,
//    no allocation in steady state;
//  - gate/oscillator update equations are the SAME header-only functions
//    the event path uses (gates/cml_equations.hpp, cdr/lane_step.hpp);
//  - jitter normals come from a NormalBank: per-lane xoshiro256++ streams
//    refilled across lanes with SIMD between slices (scalar fallback when
//    GCDR_SIMD is off);
//  - run_until()/run_all() advance every lane slice by slice, optionally
//    tiling lanes across an exec::ThreadPool (lanes are independent, so
//    results are bit-identical for any thread count).
//
// Correctness contract (enforced by tests/test_batch.cpp): for any seed,
// lane k of a batched run produces the same decision stream, margins and
// executed-event count as a scalar cdr::GccoChannel driven with the same
// config, seed and edges — the kernel replicates VHDL transport-delay
// wire semantics, (time, insertion-seq) event order and the draw-when-
// jitter-enabled RNG discipline exactly, including no-op commits of
// cancelled transport transactions.
//
// The event kernel is still the right tool when lanes are heterogeneous,
// when a run needs causal tracing / flight recording / per-wire
// telemetry, or when the netlist under study is not the fixed GCCO
// channel topology; see DESIGN.md "Batched SoA execution".

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdr/channel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace gcdr::sim::batch {

class ChannelBatch {
public:
    /// All lanes share `cfg` (homogeneous channels); per-lane variation
    /// enters through seed_lane() and drive().
    ChannelBatch(const cdr::ChannelConfig& cfg, std::size_t lanes);
    ~ChannelBatch();

    ChannelBatch(const ChannelBatch&) = delete;
    ChannelBatch& operator=(const ChannelBatch&) = delete;

    [[nodiscard]] std::size_t lanes() const;

    /// Seed lane `k`'s jitter stream; equivalent to handing the scalar
    /// channel `Rng(seed)`.
    void seed_lane(std::size_t lane, std::uint64_t seed);

    /// Schedule an edge stream onto lane `k`'s input (times ascending).
    /// All drives must precede the first run — event sequence numbers are
    /// frozen when the kernel starts, exactly as GccoChannel::drive()
    /// allocates them before any event executes.
    void drive(std::size_t lane, const std::vector<jitter::Edge>& edges);

    /// Per-lane end time used by run_all() (default: unbounded).
    void set_horizon(std::size_t lane, SimTime t_end);

    /// Advance every lane to `t_end` in lockstep slices. With a pool,
    /// lanes are tiled across it; bit-identical for any pool size.
    void run_until(SimTime t_end, exec::ThreadPool* pool = nullptr);

    /// Advance every lane to its own horizon (set_horizon).
    void run_all(exec::ThreadPool* pool = nullptr);

    [[nodiscard]] const std::vector<cdr::Decision>& decisions(
        std::size_t lane) const;
    [[nodiscard]] const std::vector<double>& margins_ui(
        std::size_t lane) const;
    /// Count of 1-decisions on the lane (the margin model's ground truth).
    [[nodiscard]] std::uint64_t ones(std::size_t lane) const;

    /// Events executed, including no-op commits of cancelled transport
    /// transactions — comparable 1:1 with Scheduler::executed_events().
    [[nodiscard]] std::uint64_t events_executed(std::size_t lane) const;
    [[nodiscard]] std::uint64_t events_executed() const;

    /// Lockstep slices run so far.
    [[nodiscard]] std::uint64_t batch_steps() const;
    /// Wall seconds spent inside run_until()/run_all().
    [[nodiscard]] double run_seconds() const;

    /// Attach an in-situ health hub (obs/health): (re)configures `hub`
    /// with one monitor per lane — UI / sampling center from the shared
    /// channel config — and feeds each monitor its lane's margin stream,
    /// identical to what GccoChannel::attach_health feeds the scalar
    /// path (the batch-vs-scalar health-identity test relies on this).
    /// Pure observation: decisions, margins and event counts are
    /// unchanged, and each monitor is only touched by the thread running
    /// its lane, so snapshots are thread-count invariant. Call before
    /// running; `hub` must outlive the batch.
    void attach_health(obs::health::HealthHub& hub);

    /// Doubles per SIMD register in this build (1 = scalar fallback).
    [[nodiscard]] static std::size_t simd_width();

    /// Publish batched-path runtime metrics under `prefix`:
    ///   <prefix>.lanes / .simd_width          gauges
    ///   <prefix>.steps_per_s                  gauge (slices / wall)
    ///   <prefix>.events / .steps              counters
    void publish_metrics(obs::MetricsRegistry& registry,
                         const std::string& prefix) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace gcdr::sim::batch
