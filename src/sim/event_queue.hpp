#pragma once
// Calendar-queue event storage for the discrete-event kernel.
//
// The scheduler's old std::priority_queue paid O(log n) comparisons plus
// 40-byte element moves per push/pop against a queue dominated by the
// pre-scheduled input-edge events (~5k deep in the CDR workloads), even
// though almost every *executed* event is an oscillator/gate hop only a few
// stage delays (tens of ps) ahead of now. This queue exploits that shape:
//
//  - an indexed timer wheel (1024 slots x 1.024 ps) absorbs the near-term
//    events at O(1) push/pop,
//  - a binary min-heap holds the far-future overflow (the drive events);
//    entries migrate into the wheel as the window advances,
//  - events live in a slab/free-list pool, so bucket vectors hold 4-byte
//    indices and steady-state scheduling never allocates,
//  - callbacks are InlineCallback (util/), so captures up to 48 bytes —
//    every capture in gates/ and cdr/ — stay inline.
//
// Ordering is EXACTLY (time, insertion-seq): within a wheel slot the min is
// found by scan (slots hold ~1 event), the overflow heap compares (time,
// seq), and the two stores cover disjoint time ranges. Seeded runs are
// byte-identical to the binary-heap kernel.
//
// Precondition: push() times are never below the last popped time (the
// scheduler enforces this by throwing on past-time events).

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/inline_callback.hpp"
#include "util/sim_time.hpp"

namespace gcdr::sim {

class EventQueue {
public:
    /// 48 bytes of inline capture: covers [this, id] wire commits,
    /// [this, edge] drives, and a copied std::function<void()>.
    using Callback = InlineCallback<48>;

    /// Opaque ticket for an event removed from the queue but not yet run.
    using Handle = std::uint32_t;
    static constexpr Handle kNoEvent = ~Handle{0};

    EventQueue() = default;

    /// Enqueue; assigns and returns the next FIFO tie-break sequence
    /// number (the scheduler derives causal-trace ids from it).
    std::uint64_t push(SimTime t, Callback&& fn);

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Pool occupancy, for the scheduler's telemetry gauges: total slots
    /// ever allocated (slabs never shrink) and slots currently holding a
    /// live or in-flight event. in_use can exceed size() transiently
    /// while a taken handle awaits run_and_recycle.
    [[nodiscard]] std::size_t pool_capacity() const {
        return slabs_.size() * kSlabSize;
    }
    [[nodiscard]] std::size_t pool_in_use() const {
        return pool_capacity() - free_.size();
    }

    /// Time of the earliest (time, seq) event. Not const: may advance the
    /// wheel window (observably pure). Precondition: !empty().
    [[nodiscard]] SimTime peek_time();

    /// Remove the earliest (time, seq) event, moving its callback into
    /// `out`; returns its time. Precondition: !empty().
    SimTime pop(Callback& out);

    /// Fused peek+pop for the drain loop: if non-empty and the earliest
    /// event's time is <= t_end, unlink it and return its handle, else
    /// kNoEvent. The handle's slot stays owned until run_and_recycle, so
    /// the callback is executed in place — no move out of the pool.
    [[nodiscard]] Handle take_if_at_most(SimTime t_end);
    [[nodiscard]] SimTime time_of(Handle h) { return event(h).time; }
    [[nodiscard]] std::uint64_t seq_of(Handle h) { return event(h).seq; }
    /// Invoke the event's callback, then return its slot to the pool.
    /// Reentrant: the callback may push new events.
    void run_and_recycle(Handle h);

private:
    struct Event {
        SimTime time{};
        std::uint64_t seq = 0;
        Callback fn;
    };
    struct HeapEntry {
        SimTime time;
        std::uint64_t seq;
        std::uint32_t idx;
    };
    struct HeapLater {
        bool operator()(const HeapEntry& a, const HeapEntry& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    static constexpr std::size_t kWheelBits = 10;
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr std::size_t kWheelMask = kWheelSize - 1;
    static constexpr int kSlotShiftFs = 10;  ///< 1024 fs per wheel slot
    static constexpr std::size_t kSlabSize = 256;

    [[nodiscard]] static std::int64_t slot_of(SimTime t) {
        return t.femtoseconds() >> kSlotShiftFs;
    }

    [[nodiscard]] Event& event(std::uint32_t idx) {
        return slabs_[idx / kSlabSize][idx % kSlabSize];
    }
    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t idx) { free_.push_back(idx); }

    void bucket_insert(std::int64_t slot, std::uint32_t idx);
    /// Move every overflow entry now inside the wheel window into buckets.
    void drain_overflow();
    /// Advance cursor_slot_ to the earliest non-empty bucket and pull in
    /// newly admitted overflow; leaves the global min in the cursor bucket.
    void ready_front();
    /// Position of the (time, seq) minimum within the cursor bucket.
    [[nodiscard]] std::size_t min_pos_in_cursor_bucket();
    /// Remove the entry at `pos` of the cursor bucket; returns its pool
    /// index (still owned — callers run/recycle or release it).
    std::uint32_t unlink_from_cursor_bucket(std::size_t pos);

    // --- event pool ---
    std::vector<std::unique_ptr<Event[]>> slabs_;
    std::vector<std::uint32_t> free_;

    // --- wheel: slots [cursor_slot_, cursor_slot_ + kWheelSize) ---
    std::array<std::vector<std::uint32_t>, kWheelSize> buckets_;
    std::array<std::uint64_t, kWheelSize / 64> bitmap_{};
    std::int64_t cursor_slot_ = 0;
    std::size_t wheel_count_ = 0;
    // Exact minimum occupied wheel slot while valid; invalidated when the
    // minimum's bucket empties, re-established by the next bitmap scan.
    std::int64_t min_slot_ = 0;
    bool min_valid_ = false;

    // --- far-future overflow: slots >= cursor_slot_ + kWheelSize ---
    std::vector<HeapEntry> overflow_;

    std::size_t size_ = 0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace gcdr::sim
