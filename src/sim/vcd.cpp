#include "sim/vcd.hpp"

#include <fstream>
#include <sstream>

namespace gcdr::sim {

void VcdWriter::watch(Wire& w) {
    const std::size_t idx = names_.size();
    // VCD identifiers must not contain whitespace; replace just in case.
    std::string name = w.name();
    for (char& c : name) {
        if (c == ' ') c = '_';
    }
    names_.push_back(name);
    initial_.push_back(w.value());
    w.on_change([this, idx, &w] {
        changes_.push_back(Change{w.scheduler().now().femtoseconds(), idx,
                                  w.value()});
    });
}

std::string VcdWriter::id_of(std::size_t index) const {
    // Printable-ASCII identifier code, base 94 starting at '!'.
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index != 0);
    return id;
}

std::string VcdWriter::to_string(const std::string& module_name) const {
    std::ostringstream os;
    os << "$comment gcco-cdr behavioral simulation $end\n";
    if (timescale_fs_ >= 1'000'000) {
        os << "$timescale " << timescale_fs_ / 1'000'000 << " ns $end\n";
    } else if (timescale_fs_ >= 1000) {
        os << "$timescale " << timescale_fs_ / 1000 << " ps $end\n";
    } else {
        os << "$timescale " << timescale_fs_ << " fs $end\n";
    }
    os << "$scope module " << module_name << " $end\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        os << "$var wire 1 " << id_of(i) << ' ' << names_[i] << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";
    os << "$dumpvars\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        os << (initial_[i] ? '1' : '0') << id_of(i) << '\n';
    }
    os << "$end\n";
    std::int64_t last_time = -1;
    for (const auto& c : changes_) {
        const std::int64_t t = c.time_fs / timescale_fs_;
        if (t != last_time) {
            os << '#' << t << '\n';
            last_time = t;
        }
        os << (c.value ? '1' : '0') << id_of(c.signal) << '\n';
    }
    return os.str();
}

bool VcdWriter::write_file(const std::string& path,
                           const std::string& module_name) const {
    std::ofstream f(path);
    if (!f) return false;
    f << to_string(module_name);
    return static_cast<bool>(f);
}

}  // namespace gcdr::sim
