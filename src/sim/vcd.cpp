#include "sim/vcd.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

namespace gcdr::sim {

void VcdWriter::watch(Wire& w) {
    const std::size_t idx = names_.size();
    // VCD identifiers must not contain whitespace; replace just in case.
    std::string name = w.name();
    for (char& c : name) {
        if (c == ' ') c = '_';
    }
    names_.push_back(name);
    initial_.push_back(w.value());
    w.on_change([this, idx, &w] {
        record(w.scheduler().now().femtoseconds(), idx, w.value());
    });
}

void VcdWriter::record(std::int64_t time_fs, std::size_t signal, bool value) {
    if (max_changes_ == 0 || changes_.size() < max_changes_) {
        changes_.push_back(Change{time_fs, signal, value});
        return;
    }
    // Ring is full: the oldest change becomes part of the pre-window
    // state, and its slot takes the new change.
    Change& oldest = changes_[evict_pos_];
    initial_[oldest.signal] = oldest.value;
    oldest = Change{time_fs, signal, value};
    evict_pos_ = (evict_pos_ + 1) % max_changes_;
}

void VcdWriter::set_max_changes(std::size_t n) {
    // Linearize the ring, fold anything beyond the new cap into the
    // initial values, and restart the ring at slot 0.
    std::vector<Change> ordered;
    ordered.reserve(changes_.size());
    for (std::size_t i = 0; i < changes_.size(); ++i) {
        ordered.push_back(changes_[(evict_pos_ + i) % changes_.size()]);
    }
    if (n != 0 && ordered.size() > n) {
        const std::size_t drop = ordered.size() - n;
        for (std::size_t i = 0; i < drop; ++i) {
            initial_[ordered[i].signal] = ordered[i].value;
        }
        ordered.erase(ordered.begin(),
                      ordered.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    changes_ = std::move(ordered);
    max_changes_ = n;
    evict_pos_ = 0;
}

std::string VcdWriter::id_of(std::size_t index) const {
    // Printable-ASCII identifier code, base 94 starting at '!'.
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index != 0);
    return id;
}

std::string VcdWriter::render(const std::string& module_name,
                              const std::vector<bool>& state_in,
                              std::int64_t t0_fs, std::int64_t t1_fs) const {
    // Fold everything before the window into the starting state and keep
    // the in-window changes in recorded (ring) order, which is time order.
    std::vector<bool> state = state_in;
    std::vector<Change> window;
    for (std::size_t i = 0; i < changes_.size(); ++i) {
        const Change& c = max_changes_ == 0
                              ? changes_[i]
                              : changes_[(evict_pos_ + i) % changes_.size()];
        if (c.time_fs < t0_fs) {
            state[c.signal] = c.value;
        } else if (c.time_fs <= t1_fs) {
            window.push_back(c);
        }
    }

    std::ostringstream os;
    os << "$comment gcco-cdr behavioral simulation $end\n";
    if (timescale_fs_ >= 1'000'000) {
        os << "$timescale " << timescale_fs_ / 1'000'000 << " ns $end\n";
    } else if (timescale_fs_ >= 1000) {
        os << "$timescale " << timescale_fs_ / 1000 << " ps $end\n";
    } else {
        os << "$timescale " << timescale_fs_ << " fs $end\n";
    }
    os << "$scope module " << module_name << " $end\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        os << "$var wire 1 " << id_of(i) << ' ' << names_[i] << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";
    os << "$dumpvars\n";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        os << (state[i] ? '1' : '0') << id_of(i) << '\n';
    }
    os << "$end\n";
    std::int64_t last_time = std::numeric_limits<std::int64_t>::min();
    for (const auto& c : window) {
        const std::int64_t t = c.time_fs / timescale_fs_;
        if (t != last_time) {
            os << '#' << t << '\n';
            last_time = t;
        }
        os << (c.value ? '1' : '0') << id_of(c.signal) << '\n';
    }
    return os.str();
}

std::string VcdWriter::to_string(const std::string& module_name) const {
    return render(module_name, initial_,
                  std::numeric_limits<std::int64_t>::min(),
                  std::numeric_limits<std::int64_t>::max());
}

std::string VcdWriter::to_string_window(std::int64_t t0_fs, std::int64_t t1_fs,
                                        const std::string& module_name) const {
    return render(module_name, initial_, t0_fs, t1_fs);
}

bool VcdWriter::write_file(const std::string& path,
                           const std::string& module_name) const {
    std::ofstream f(path);
    if (!f) return false;
    f << to_string(module_name);
    return static_cast<bool>(f);
}

bool VcdWriter::write_window(const std::string& path, std::int64_t t0_fs,
                             std::int64_t t1_fs,
                             const std::string& module_name) const {
    std::ofstream f(path);
    if (!f) return false;
    f << to_string_window(t0_fs, t1_fs, module_name);
    return static_cast<bool>(f);
}

}  // namespace gcdr::sim
