#include "noise/phase_noise.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "util/mathx.hpp"

namespace gcdr::noise {

double RingOscParams::c_load_f() const {
    return stage_delay_s() / (r_load_ohm() * std::numbers::ln2);
}

double kappa_hajimiri(const RingOscParams& p) {
    const double kt = kBoltzmann * p.temperature_k;
    const double term =
        1.0 / (p.r_load_ohm() * p.i_ss_a) + 1.0 / p.delta_v_v;
    return std::sqrt((8.0 * kt / 3.0) * (p.gamma * p.eta / p.i_ss_a) * term);
}

double kappa_mcneill(const RingOscParams& p) {
    const double kt = kBoltzmann * p.temperature_k;
    return std::sqrt(8.0 * kt * p.gamma / (p.i_ss_a * p.delta_v_v));
}

double kappa_weigandt(const RingOscParams& p) {
    const double kt = kBoltzmann * p.temperature_k;
    const double td = p.stage_delay_s();
    const double sigma_td =
        td * std::sqrt(2.0 * kt * p.gamma /
                       (p.c_load_f() * p.delta_v_v * p.delta_v_v));
    return sigma_td / std::sqrt(td);
}

double jitter_rms_s(double kappa, double dt_s) {
    return kappa * std::sqrt(dt_s);
}

double jitter_ui_at_cid(double kappa, LinkRate rate, int cid) {
    const double dt = static_cast<double>(cid) * rate.ui_seconds();
    return jitter_rms_s(kappa, dt) / rate.ui_seconds();
}

double phase_noise_dbc_hz(double kappa, double f_osc_hz, double f_offset_hz) {
    assert(f_offset_hz > 0.0);
    return 10.0 * std::log10(f_osc_hz * f_osc_hz * kappa * kappa /
                             (f_offset_hz * f_offset_hz));
}

RingOscParams size_for_jitter(const RingOscParams& proto,
                              double target_ui_rms, int cid, LinkRate rate) {
    assert(target_ui_rms > 0.0 && cid >= 1);
    // kappa_hajimiri is strictly decreasing in I_SS (with constant swing),
    // so bisection brackets the minimum current meeting the budget.
    RingOscParams p = proto;
    double lo = 1e-7, hi = 1e-1;
    for (int i = 0; i < 100; ++i) {
        const double mid = std::sqrt(lo * hi);  // geometric: decades apart
        p.i_ss_a = mid;
        const double ui = jitter_ui_at_cid(kappa_hajimiri(p), rate, cid);
        if (ui > target_ui_rms) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    p.i_ss_a = hi;
    return p;
}

double min_bias_for_parasitics(const RingOscParams& proto, double c_min_f) {
    assert(c_min_f >= 0.0);
    return c_min_f * proto.delta_v_v * std::numbers::ln2 /
           proto.stage_delay_s();
}

ChannelPowerBudget channel_power_budget(const RingOscParams& sized,
                                        int delay_cells, int logic_cells,
                                        double pll_power_w, int n_channels) {
    assert(n_channels >= 1);
    const double cell_w = sized.i_ss_a * sized.vdd_v;
    ChannelPowerBudget b;
    b.oscillator_w = sized.n_stages * cell_w;
    b.delay_line_w = delay_cells * cell_w;
    b.logic_w = logic_cells * cell_w;
    b.sampler_w = cell_w;  // one CML latch pair at the same bias
    b.pll_share_w = pll_power_w / n_channels;
    return b;
}

}  // namespace gcdr::noise
