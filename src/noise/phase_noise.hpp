#pragma once
// Ring-oscillator timing-jitter / phase-noise models (Sec. 3.2).
//
// The design flow sizes the oscillator from the jitter budget: the
// statistical model demands sigma = 0.01 UI RMS on the sampling clock at
// CID = 5 (Table 1); Hajimiri's kappa formula (eq. 1 of the paper) converts
// that into a bias current, hence power. kappa is the jitter accumulation
// constant: sigma_t(dt) = kappa * sqrt(dt) for free-running white-noise-
// dominated oscillators.
//
// Three published models are implemented for the Fig 11 comparison:
//  - Hajimiri et al., JSSC 1999 (the paper's eq. 1, "minimum kappa"),
//  - McNeill, JSSC 1997 (first-order variation, as the paper overlays),
//  - Weigandt et al., ISCAS 1994 (per-stage kT/C form).

#include "util/units.hpp"

namespace gcdr::noise {

/// Electrical parameters of one differential CML delay stage and the ring.
struct RingOscParams {
    int n_stages = 4;          ///< ring length (paper Fig 7: 4 stages)
    double f_osc_hz = 2.5e9;   ///< oscillation frequency
    double i_ss_a = 200e-6;    ///< per-stage tail current
    double delta_v_v = 0.4;    ///< differential swing (= R_L * I_SS in CML)
    double gamma = 1.5;        ///< device excess-noise factor
    double eta = 1.0;          ///< rise-time-to-delay proportionality
    double vdd_v = 1.8;        ///< supply (0.18 um CMOS)
    double temperature_k = 300.0;

    /// Load resistance implied by the CML swing: R_L = dV / I_SS.
    [[nodiscard]] double r_load_ohm() const { return delta_v_v / i_ss_a; }
    /// Per-stage delay for the ring frequency: t_d = 1 / (2 N f).
    [[nodiscard]] double stage_delay_s() const {
        return 1.0 / (2.0 * n_stages * f_osc_hz);
    }
    /// Load capacitance implied by t_d = R_L * C_L * ln 2.
    [[nodiscard]] double c_load_f() const;
    /// Static power of the ring: N * I_SS * V_DD.
    [[nodiscard]] double power_w() const {
        return n_stages * i_ss_a * vdd_v;
    }
};

/// Paper eq. 1: kappa_min = sqrt( (8kT/3) * (gamma*eta / I_SS) *
///                                (1/(R_L*I_SS) + 1/dV) ).  [sqrt(s)]
[[nodiscard]] double kappa_hajimiri(const RingOscParams& p);

/// First-order McNeill form: kappa = sqrt(8 k T gamma / (I_SS * dV)).
/// The paper overlays "a variation of McNeill's formula" without printing
/// it; this standard form reproduces the same 1/sqrt(P) law with a
/// slightly higher constant than Hajimiri's minimum.
[[nodiscard]] double kappa_mcneill(const RingOscParams& p);

/// Weigandt per-stage kT/C form: sigma_td = t_d * sqrt(2 k T gamma /
/// (C_L * dV^2)); kappa = sigma_td / sqrt(t_d).
[[nodiscard]] double kappa_weigandt(const RingOscParams& p);

/// RMS timing jitter accumulated over a free-run interval dt: kappa*sqrt(dt).
[[nodiscard]] double jitter_rms_s(double kappa, double dt_s);

/// RMS sampling-clock jitter, in UI, after `cid` bit periods of free run —
/// the figure of merit the paper budgets at 0.01 UI for CID = 5.
[[nodiscard]] double jitter_ui_at_cid(double kappa, LinkRate rate, int cid);

/// Single-sideband phase noise implied by kappa at offset f from carrier
/// f0 (white-noise region): L(f) = 10*log10( f0^2 * kappa^2 / f^2 ) [dBc/Hz].
[[nodiscard]] double phase_noise_dbc_hz(double kappa, double f_osc_hz,
                                        double f_offset_hz);

/// Solve (by bisection on I_SS) for the smallest per-stage bias current
/// whose Hajimiri kappa meets a target UI-RMS jitter at the given CID.
/// All other parameters are taken from `proto` (swing held constant, R_L
/// re-derived — standard CML sizing practice). Thermal-noise bound only;
/// combine with min_bias_for_parasitics for a buildable design point.
[[nodiscard]] RingOscParams size_for_jitter(const RingOscParams& proto,
                                            double target_ui_rms, int cid,
                                            LinkRate rate);

/// Smallest tail current that still drives a parasitic-bounded load at the
/// ring frequency: the stage delay t_d = R_L*C_L*ln2 with C_L >= c_min
/// forces I_SS >= c_min * dV * ln2 / t_d. Real rings are usually set by
/// this, not by thermal noise — it is what anchors the paper's power.
[[nodiscard]] double min_bias_for_parasitics(const RingOscParams& proto,
                                             double c_min_f);

/// Per-channel power roll-up used to check the <= 5 mW/Gbit/s claim.
struct ChannelPowerBudget {
    double oscillator_w = 0.0;   ///< gated 4-stage ring
    double delay_line_w = 0.0;   ///< edge-detector delay cells
    double logic_w = 0.0;        ///< XOR + NAND + dummies
    double sampler_w = 0.0;      ///< decision flip-flop
    double pll_share_w = 0.0;    ///< shared PLL split across channels

    [[nodiscard]] double total_w() const {
        return oscillator_w + delay_line_w + logic_w + sampler_w +
               pll_share_w;
    }
    /// The paper's figure of merit, mW per Gbit/s.
    [[nodiscard]] double mw_per_gbps(LinkRate rate) const {
        return total_w() * 1e3 / (rate.bits_per_second() * 1e-9);
    }
};

/// Build the budget from a sized oscillator stage. `delay_cells` covers the
/// edge-detector delay line, `logic_cells` the XOR/NAND/dummy gates; all
/// cells reuse the oscillator's CML bias (identical two-input gates,
/// Sec. 2.2). The shared PLL power is divided by `n_channels`.
[[nodiscard]] ChannelPowerBudget channel_power_budget(
    const RingOscParams& sized, int delay_cells, int logic_cells,
    double pll_power_w, int n_channels);

}  // namespace gcdr::noise
