#pragma once
// Multilevel splitting (subset simulation, Au & Beck) on a MarginModel —
// the engine that reaches 1e-12 on the *behavioral* channel, where no
// closed-form tilt exists.
//
// The chain lives in a standard-normal latent space: seven N(0,1)
// coordinates map through Phi / inverse-CDF onto (run length, DJ, edge
// RJ, trigger RJ, oscillator jitter, SJ phase, early-path noise), plus a
// noise_seed integer that feeds the behavioral channel's internal draws.
// Because the margin is a *deterministic* function of this latent state,
// "clone and restart from a checkpointed channel state" reduces to
// cloning the latent vector and replaying it on a fresh Scheduler — no
// live event-queue state is ever serialized (see mc/margin_model.hpp).
//
// Importance function h = -margin (error <=> h >= 0). Each level keeps
// the p0-fraction of particles with the highest h, sets the next
// threshold at that quantile, and repopulates by pCN Metropolis moves
//     z' = rho * z + sqrt(1 - rho^2) * xi,   accept iff h(z') >= tau
// (indicator acceptance targets the prior conditioned on h >= tau; the
// noise_seed coordinate uses an independence proposal, which is likewise
// reversible under its uniform prior). P(error) = prod_l p_l * f_final.
//
// Determinism: level-0 particle i draws from derive_seed(base, i); the
// chain grown from survivor slot j of level l draws from
// derive_seed(base, (l+1) * kLevelStride + j); survivor selection sorts
// by (h desc, index asc); every parallel item writes only its own slots.
// Bit-identical for any thread count.

#include <cstdint>
#include <vector>

#include "exec/thread_pool.hpp"
#include "mc/estimator.hpp"
#include "mc/margin_model.hpp"
#include "obs/metrics.hpp"

namespace gcdr::mc {

class SplittingEngine {
public:
    struct Config {
        McBudget budget;  ///< max_evals caps total margin evaluations
        std::size_t n_particles = 1024;
        double p0 = 0.1;        ///< survivor fraction per level
        /// Starting pCN autocorrelation (0 = indep, 1 = frozen). The step
        /// size is re-tuned between levels toward ~0.44 acceptance
        /// (adaptive conditional sampling), so this only seeds level 1.
        double pcn_rho = 0.85;
        int max_levels = 40;    ///< safety net against non-progressing chains
    };

    SplittingEngine(const MarginModel& model, Config cfg,
                    obs::MetricsRegistry* metrics = nullptr);

    /// Run the cascade and return the BER estimate. std_err uses the
    /// per-level binomial approximation inflated by Au & Beck's gamma
    /// factor, estimated from the indicator autocorrelation along each
    /// level's chains — adequate for cross-checking orders of magnitude
    /// and CI overlap, not a certified bound.
    [[nodiscard]] McEstimate estimate(exec::ThreadPool& pool) const;

    /// Levels used by the last estimate are reported via metrics
    /// ("mc.split.levels"); the engine itself is stateless/const.

private:
    struct Particle {
        double z[7];             ///< latent normals
        std::uint64_t noise_seed = 0;
        double h = 0.0;          ///< -margin at this latent state
    };

    [[nodiscard]] RunSample to_sample(const Particle& p) const;
    [[nodiscard]] double eval_h(const Particle& p) const;
    /// h for a contiguous block of particles via the model's batched
    /// oracle. Only the i.i.d. level-0 seeding can use it — inside a pCN
    /// chain each proposal depends on the previous accept, so the chain
    /// phase stays on the sequential eval_h.
    void eval_h_batch(Particle* particles, std::size_t n) const;

    const MarginModel* model_;
    Config cfg_;
    obs::MetricsRegistry* metrics_;
    std::vector<double> pmf_;
    double mean_len_ = 1.0;
};

}  // namespace gcdr::mc
