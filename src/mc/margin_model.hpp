#pragma once
// The sampled quantity behind every rare-event engine: the timing margin
// (UI) of one run of the gated-oscillator CDR, as a deterministic function
// of a latent coordinate vector. Error <=> margin < 0.
//
// Two implementations:
//  - AnalyticMarginModel mirrors statmodel/gated_osc_model.cpp's timing
//    equations exactly (same jitter budget, same relative-edge algebra),
//    but *samples* the continuous laws instead of convolving gridded PDFs.
//    Monte Carlo estimates over it therefore converge to the statistical
//    model's BER up to grid error — the cross-validation bench leans on
//    that identity.
//  - BehavioralMarginModel drives a real cdr::GccoChannel (Scheduler +
//    EdgeDetector + GCCO + sampler) through one warmup + run + closing
//    pattern per evaluation and reads the channel's measured closing
//    margin. The channel is a deterministic function of (latent vector,
//    noise_seed), which is what makes clone-and-restart splitting work:
//    a checkpoint is the latent state, a restart is a fresh Scheduler
//    replaying it — no live event-queue state needs copying.
//
// All evaluations are const and allocate only locally, so one model
// instance may be shared by every lane of an exec::ThreadPool.

#include <atomic>
#include <cstdint>
#include <vector>

#include "cdr/channel.hpp"
#include "obs/flight_recorder.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr::mc {

/// Latent coordinates of one run event. Engines draw these (importance
/// sampling from tilted laws, splitting via MCMC); the margin model maps
/// them to a timing margin. Uniform coordinates are in [0,1); z
/// coordinates are standard-normal.
struct RunSample {
    int run_length = 1;    ///< L, in [1, max_cid]
    double u_dj = 0.5;     ///< -> DJ displacement (uniform, Table 1 DJpp)
    double z_edge = 0.0;   ///< closing-edge RJ
    double z_trig = 0.0;   ///< triggering-edge RJ
    double z_osc = 0.0;    ///< oscillator jitter accumulated over the run
    double u_phase = 0.0;  ///< -> SJ phase in [0, 2*pi)
    double z_early = 0.0;  ///< trigger-path mismatch + short-horizon osc
    /// Extra system noise with no smooth coordinate (the behavioral
    /// channel's internal stage jitter). Analytic model ignores it.
    std::uint64_t noise_seed = 0;
};

/// Truncated-geometric run-length law P(L = l), l = 1..cap (the same law
/// statmodel uses: random data with the encoding's CID cap).
[[nodiscard]] std::vector<double> run_length_pmf(int cap);
[[nodiscard]] double mean_run_length(const std::vector<double>& pmf);

/// Inverse-CDF draw of a run length from the law, u in [0,1).
[[nodiscard]] int run_length_from_uniform(const std::vector<double>& pmf,
                                          double u);

class MarginModel {
public:
    virtual ~MarginModel() = default;
    /// Worst margin of the run (min of late and early mechanisms where
    /// the model resolves both); error <=> negative.
    [[nodiscard]] virtual double margin_ui(const RunSample& s) const = 0;
    /// Evaluate `n` samples into `out[0..n)`. Semantically identical to
    /// calling margin_ui per sample (the default does exactly that);
    /// batched implementations evaluate clones in lockstep on the SoA
    /// kernel instead of one Scheduler per sample. Engines should prefer
    /// this entry point wherever their sampling plan admits buffering.
    virtual void margin_ui_batch(const RunSample* samples, std::size_t n,
                                 double* out) const;
    [[nodiscard]] virtual int max_run_length() const = 0;
};

/// Closed-form margins from the statistical model's timing equations.
class AnalyticMarginModel : public MarginModel {
public:
    explicit AnalyticMarginModel(const statmodel::ModelConfig& cfg);

    [[nodiscard]] double margin_ui(const RunSample& s) const override;
    [[nodiscard]] int max_run_length() const override {
        return cfg_.max_cid;
    }

    /// Margin of the run's last bit against the closing transition.
    [[nodiscard]] double late_margin_ui(const RunSample& s) const;
    /// late_margin_ui over a buffer — the importance sampler's hot loop.
    void late_margin_ui_batch(const RunSample* samples, std::size_t n,
                              double* out) const;
    /// Margin of the run's first bit against its own trigger.
    [[nodiscard]] double early_margin_ui(double z_early) const;

    // Pieces the importance sampler's tilt construction needs.
    /// (s_L - L): the (negative) threshold the relative edge must cross.
    [[nodiscard]] double margin_threshold(int run_length) const;
    [[nodiscard]] double rj_sigma() const { return cfg_.spec.rj_uirms; }
    [[nodiscard]] double osc_sigma(int run_length) const;
    /// sqrt(2*rj^2 + osc^2): sigma of the relative Gaussian budget.
    [[nodiscard]] double combined_sigma(int run_length) const;
    /// Effective relative SJ amplitude A_pp*|sin(pi*f*L)|.
    [[nodiscard]] double sj_eff_amp(int run_length) const;
    /// Nominal first-bit sample instant s_1.
    [[nodiscard]] double early_nominal_ui() const;
    /// sqrt(osc_1^2 + trigger mismatch^2): early-mechanism sigma.
    [[nodiscard]] double early_sigma() const;

    [[nodiscard]] const statmodel::ModelConfig& config() const {
        return cfg_;
    }

private:
    statmodel::ModelConfig cfg_;
};

/// Margins measured on a live GccoChannel, one short simulation per
/// evaluation: warmup toggles to start the oscillator, the run under
/// test, and a closing transition whose measured margin is returned.
class BehavioralMarginModel : public MarginModel {
public:
    struct Params {
        cdr::ChannelConfig channel;
        jitter::JitterSpec spec;   ///< DJ/RJ/SJ budget applied to the run
        double sj_freq_norm = 0.0;
        int max_cid = 5;
        int warmup_bits = 12;
        /// Optional post-mortem sink: every evaluation records its channel
        /// events (with causal ids) into the ring "mc.lane<k>" for the
        /// executing pool lane, and an evaluation whose recovered-bit
        /// count is wrong dumps ("mc_margin_error") before returning — so
        /// a failed splitting clone leaves a walkable trace. nullptr (the
        /// default) costs nothing.
        obs::FlightRecorder* flight = nullptr;
        std::size_t flight_tracer_capacity = 1024;
        /// > 1: margin_ui_batch() evaluates clones on the batched SoA
        /// kernel (sim/batch/ChannelBatch), this many lanes per lockstep
        /// batch. 0/1 keeps the scalar one-Scheduler-per-eval path.
        /// Ignored (scalar) whenever `flight` is set — flight recording
        /// needs the event kernel's causal tracer.
        std::size_t batch_lanes = 0;
    };

    /// Cumulative batched-path telemetry (all evaluations routed through
    /// the SoA kernel by margin_ui_batch). Atomics: the model is shared
    /// across pool lanes.
    struct BatchStats {
        std::atomic<std::uint64_t> evals{0};    ///< samples batch-evaluated
        std::atomic<std::uint64_t> batches{0};  ///< ChannelBatch runs
        std::atomic<std::uint64_t> steps{0};    ///< lockstep slices
        std::atomic<double> wall_seconds{0.0};  ///< kernel time inside runs
    };

    explicit BehavioralMarginModel(Params p);

    /// Channel + budget equivalent to a statistical-model config: the
    /// oscillator center frequency realizes cfg.freq_offset, improved
    /// sampling realizes the T/8 advance, CKJ sizes the stage jitter.
    [[nodiscard]] static Params params_from(
        const statmodel::ModelConfig& cfg, LinkRate rate = kPaperRate);

    [[nodiscard]] double margin_ui(const RunSample& s) const override;
    /// Batched oracle: chunks of Params::batch_lanes clones share one
    /// ChannelBatch, bit-identical to the scalar path per sample.
    void margin_ui_batch(const RunSample* samples, std::size_t n,
                         double* out) const override;
    [[nodiscard]] int max_run_length() const override {
        return params_.max_cid;
    }

    [[nodiscard]] const Params& params() const { return params_; }
    [[nodiscard]] const BatchStats& batch_stats() const { return stats_; }

private:
    /// The warmup + run + closing pattern for one sample; `L` is the
    /// already-clamped run length.
    [[nodiscard]] std::vector<jitter::Edge> build_edges(const RunSample& s,
                                                        int L) const;
    /// Map a finished run's observables to the returned margin (the
    /// ones-count ground truth + unwrap repair described in margin_ui).
    [[nodiscard]] double resolve_margin(const std::vector<double>& margins,
                                        std::size_t n_decisions,
                                        std::uint64_t ones, int L) const;

    Params params_;
    mutable BatchStats stats_;
};

}  // namespace gcdr::mc
