#pragma once
// Common estimator accounting for the rare-event Monte Carlo engines
// (mc/importance.hpp, mc/splitting.hpp, mc/direct.hpp).
//
// Every engine reports the same McEstimate record: point estimate,
// standard error, relative error, effective sample size and a 95%-style
// confidence interval, so the cross-validation bench (bench_xval_ber) can
// compare statmodel / importance-sampling / splitting numbers on one
// footing. Interval flavors:
//   - unweighted counts (direct sampler, ErrorCounter): exact
//     Clopper-Pearson and the cheaper Wilson score interval,
//   - weighted estimators (importance sampling): normal-theory interval
//     from the weighted variance, with the effective sample size
//     (sum w)^2 / sum w^2 reported so a collapsed-weight run is visible,
//   - splitting: normal-theory interval on the product-of-levels estimate
//     (per-level binomial variances summed in relative terms).
//
// All accumulation here is plain sequential arithmetic — engines own the
// parallel structure and must merge lane-local tallies in a fixed order
// (the exec/ determinism contract), so estimates are bit-identical for
// any thread count.

#include <cstdint>

namespace gcdr::mc {

struct Interval {
    double lo = 0.0;
    double hi = 1.0;
};

/// Wilson score interval for k successes in n Bernoulli trials.
[[nodiscard]] Interval wilson_interval(std::uint64_t k, std::uint64_t n,
                                       double confidence = 0.95);

/// Exact Clopper-Pearson interval (inverse incomplete beta) for k in n.
[[nodiscard]] Interval clopper_pearson_interval(std::uint64_t k,
                                                std::uint64_t n,
                                                double confidence = 0.95);

/// Symmetric normal-theory interval mean +/- z(confidence) * se, floored
/// at 0 (all estimands here are probabilities).
[[nodiscard]] Interval normal_interval(double mean, double se,
                                       double confidence = 0.95);

/// Two-sided z-value for a confidence level (0.95 -> 1.9600).
[[nodiscard]] double z_value(double confidence);

/// Shared adaptive-stopping knobs: every engine runs in rounds and stops
/// at the first round where rel_err <= target_rel_err, or when the next
/// round would exceed max_evals margin-model evaluations.
struct McBudget {
    double target_rel_err = 0.1;
    std::uint64_t max_evals = 1'000'000;
    double confidence = 0.95;
    std::uint64_t base_seed = 1;
};

/// One engine's result for one estimand.
struct McEstimate {
    double mean = 0.0;     ///< point estimate (a probability / BER)
    double std_err = 0.0;  ///< standard error of `mean`
    Interval ci;           ///< confidence interval at `confidence`
    double confidence = 0.95;
    double ess = 0.0;      ///< effective sample size (= n when unweighted)
    std::uint64_t n_samples = 0;  ///< raw evaluations consumed
    bool converged = false;  ///< hit the target relative error in budget

    /// std_err / mean; infinite when the estimate is zero.
    [[nodiscard]] double rel_err() const;
    /// True when `value` lies inside the confidence interval — the
    /// cross-validation agreement test.
    [[nodiscard]] bool contains(double value) const {
        return value >= ci.lo && value <= ci.hi;
    }
};

/// Streaming first/second-moment tally of (possibly weighted) samples.
/// add(w) ingests one draw's contribution w = weight * indicator; zero
/// contributions still count toward n. Merging order matters in the last
/// floating-point bits — engines merge per-stratum tallies in index order.
class WeightedTally {
public:
    void add(double w) {
        ++n_;
        sum_ += w;
        sum_sq_ += w * w;
    }
    void merge(const WeightedTally& other) {
        n_ += other.n_;
        sum_ += other.sum_;
        sum_sq_ += other.sum_sq_;
    }

    [[nodiscard]] std::uint64_t n() const { return n_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double sum_sq() const { return sum_sq_; }
    /// Sample mean (0 for an empty tally).
    [[nodiscard]] double mean() const;
    /// Standard error of the mean (unbiased variance / n, 0 if n < 2).
    [[nodiscard]] double std_err() const;
    /// Effective sample size (sum w)^2 / (sum w^2); n when unweighted.
    [[nodiscard]] double ess() const;

private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
};

}  // namespace gcdr::mc
