#include "mc/importance.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>

#include "exec/sweep.hpp"
#include "obs/progress.hpp"
#include "obs/trace_span.hpp"
#include "util/rng.hpp"

namespace gcdr::mc {

ImportanceSampler::ImportanceSampler(const AnalyticMarginModel& model,
                                     Config cfg,
                                     obs::MetricsRegistry* metrics)
    : model_(&model), cfg_(cfg), metrics_(metrics) {
    assert(cfg_.samples_per_stratum_round > 0);
    assert(cfg_.phase_bins >= 1);
    pmf_ = run_length_pmf(model.max_run_length());
    mean_len_ = mean_run_length(pmf_);
    const bool has_sj = model.config().spec.sj_uipp > 0.0 &&
                        model.config().sj_freq_norm > 0.0;
    bins_ = has_sj ? cfg_.phase_bins : 1;
    build_strata();
}

void ImportanceSampler::build_strata() {
    strata_.clear();
    for (int l = 1; l <= model_->max_run_length(); ++l) {
        const double sigma_rj = model_->rj_sigma();
        const double sigma_osc = model_->osc_sigma(l);
        const double amp = model_->sj_eff_amp(l);
        // Margin = c.z + DJ + SJ - threshold with c the gradient below.
        const double c[3] = {sigma_rj, -sigma_rj, -sigma_osc};
        const double c2 = c[0] * c[0] + c[1] * c[1] + c[2] * c[2];
        for (int b = 0; b < bins_; ++b) {
            Stratum st;
            st.run_length = l;
            st.phase_bin = b;
            // Distance from the *nearest* point of the stratum's bounded
            // box (DJ in +-DJpp/2, phase anywhere in the bin) to the
            // error boundary at z = 0. Tilting by less than the distance
            // of every box point keeps the proposal overlapping the whole
            // failure region; tilting to a midpoint distance instead can
            // park the proposal sigmas away from where the bounded-jitter
            // corner already fails at z ~ 0, and the estimator then never
            // sees that (dominant) mass in any finite run.
            const double u_lo =
                static_cast<double>(b) / static_cast<double>(bins_);
            const double u_hi =
                static_cast<double>(b + 1) / static_cast<double>(bins_);
            double sin_min =
                std::min(std::sin(2.0 * std::numbers::pi * u_lo),
                         std::sin(2.0 * std::numbers::pi * u_hi));
            if (u_lo <= 0.75 && 0.75 < u_hi) sin_min = -1.0;  // interior min
            const double g_min = -0.5 * model_->config().spec.dj_uipp +
                                 amp * sin_min -
                                 model_->margin_threshold(l);
            if (g_min > 0.0 && c2 > 0.0) {
                for (int i = 0; i < 3; ++i) st.mu[i] = -g_min * c[i] / c2;
            }
            strata_.push_back(st);
        }
    }
    Stratum early;
    early.early = true;
    const double s1 = model_->early_nominal_ui();
    const double se = model_->early_sigma();
    if (s1 > 0.0 && se > 0.0) early.mu_early = -s1 / se;
    strata_.push_back(early);
}

double ImportanceSampler::shift_norm(std::size_t s) const {
    const Stratum& st = strata_[s];
    if (st.early) return std::abs(st.mu_early);
    return std::sqrt(st.mu[0] * st.mu[0] + st.mu[1] * st.mu[1] +
                     st.mu[2] * st.mu[2]);
}

void ImportanceSampler::sample_stratum(const Stratum& st,
                                       std::uint64_t seed, std::uint64_t n,
                                       WeightedTally& tally) const {
    Rng rng(seed);
    if (st.early) {
        const double mu = st.mu_early;
        for (std::uint64_t i = 0; i < n; ++i) {
            const double z = rng.gaussian();
            const double w = std::exp(-mu * z - 0.5 * mu * mu);
            const double m = model_->early_margin_ui(z + mu);
            tally.add(m < 0.0 ? w : 0.0);
        }
        return;
    }
    const double* mu = st.mu;
    const double mu2 =
        mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2];
    // Buffer coordinates and likelihood ratios, batch-evaluate the margin,
    // then tally in draw order — same rng stream and same tally sequence
    // as the one-at-a-time loop, but the margin evaluation goes through
    // the model's buffered entry point. Chunking only bounds memory.
    constexpr std::uint64_t kChunk = 1024;
    std::vector<RunSample> buf;
    std::vector<double> weights;
    std::vector<double> margins;
    for (std::uint64_t done = 0; done < n;) {
        const std::uint64_t c = std::min(kChunk, n - done);
        buf.resize(c);
        weights.resize(c);
        margins.resize(c);
        for (std::uint64_t i = 0; i < c; ++i) {
            RunSample& s = buf[i];
            s.run_length = st.run_length;
            s.u_dj = rng.uniform();
            s.u_phase = (static_cast<double>(st.phase_bin) + rng.uniform()) /
                        static_cast<double>(bins_);
            const double z0 = rng.gaussian();
            const double z1 = rng.gaussian();
            const double z2 = rng.gaussian();
            s.z_edge = z0 + mu[0];
            s.z_trig = z1 + mu[1];
            s.z_osc = z2 + mu[2];
            weights[i] = std::exp(
                -(mu[0] * z0 + mu[1] * z1 + mu[2] * z2) - 0.5 * mu2);
        }
        model_->late_margin_ui_batch(buf.data(), c, margins.data());
        for (std::uint64_t i = 0; i < c; ++i) {
            tally.add(margins[i] < 0.0 ? weights[i] : 0.0);
        }
        done += c;
    }
}

McEstimate ImportanceSampler::assemble(
    const std::vector<WeightedTally>& tallies,
    std::uint64_t total_evals) const {
    // Late strata: p_late(L) = (1/B) sum_b mean_b; early is the last
    // tally. Variances combine with the same (fixed) weights.
    double p_sum = 0.0;
    double var_sum = 0.0;
    double ess = 0.0;
    const double inv_b = 1.0 / static_cast<double>(bins_);
    for (std::size_t s = 0; s < strata_.size(); ++s) {
        const Stratum& st = strata_[s];
        const double weight =
            st.early ? 1.0 : pmf_[static_cast<std::size_t>(st.run_length) - 1] * inv_b;
        const double se = tallies[s].std_err();
        p_sum += weight * tallies[s].mean();
        var_sum += weight * weight * se * se;
        ess += tallies[s].ess();
    }
    McEstimate est;
    est.confidence = cfg_.budget.confidence;
    est.mean = p_sum / mean_len_;
    est.std_err = std::sqrt(var_sum) / mean_len_;
    est.ci = normal_interval(est.mean, est.std_err, est.confidence);
    est.ess = ess;
    est.n_samples = total_evals;
    est.converged = est.rel_err() <= cfg_.budget.target_rel_err;
    return est;
}

McEstimate ImportanceSampler::estimate(exec::ThreadPool& pool) const {
    const std::size_t n_strata = strata_.size();
    const std::uint64_t round_evals =
        cfg_.samples_per_stratum_round * n_strata;
    std::vector<WeightedTally> cum(n_strata);
    std::uint64_t total = 0;
    McEstimate est;
    std::uint64_t round = 0;
    // Opt-in live progress against the eval budget (the loop may exit
    // early on convergence — finish() emits the final count either way).
    std::unique_ptr<obs::ProgressReporter> progress;
    if (obs::ProgressReporter::enabled() &&
        round_evals <= cfg_.budget.max_evals) {
        progress = std::make_unique<obs::ProgressReporter>(
            "mc.is", cfg_.budget.max_evals);
    }
    while (total + round_evals <= cfg_.budget.max_evals) {
        obs::TraceSpan round_span("mc.is.round");
        std::vector<WeightedTally> round_tallies(n_strata);
        pool.parallel_for(n_strata, [&](std::size_t s) {
            const std::uint64_t seed = exec::derive_seed(
                cfg_.budget.base_seed, round * n_strata + s);
            sample_stratum(strata_[s], seed,
                           cfg_.samples_per_stratum_round,
                           round_tallies[s]);
        });
        for (std::size_t s = 0; s < n_strata; ++s) {
            cum[s].merge(round_tallies[s]);  // fixed order: determinism
        }
        total += round_evals;
        ++round;
        est = assemble(cum, total);
        if (progress) progress->add(round_evals);
        if (metrics_) {
            metrics_->counter("mc.is.samples").inc(round_evals);
            metrics_->gauge("mc.is.rounds").set(static_cast<double>(round));
            metrics_->gauge("mc.is.ber").set(est.mean);
            metrics_->gauge("mc.is.rel_err").set(est.rel_err());
            metrics_->gauge("mc.is.ess").set(est.ess);
        }
        if (est.converged) break;
    }
    if (progress) progress->finish();
    if (total == 0) est = assemble(cum, 0);  // budget below one round
    return est;
}

}  // namespace gcdr::mc
