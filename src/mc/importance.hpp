#pragma once
// Importance sampling of the gated-oscillator run-error probability via
// exponential tilting (mean shift) of the Gaussian jitter coordinates.
//
// The estimand mirrors statmodel's decomposition exactly:
//
//     BER = ( sum_L P(L) * p_late(L) + p_early ) / E[L]
//
// with one stratum per (run length, SJ phase bin) for the late mechanism
// plus one for the early mechanism. Within a stratum the Gaussian block
// (z_edge, z_trig, z_osc) is sampled from N(mu, I) where mu is the
// minimum-norm shift that moves the mean onto the error boundary of the
// *nearest* point of the stratum's bounded-jitter box (DJ extreme, phase
// extremum of the bin) — never past it, so the proposal always overlaps
// the failure region; each draw carries the exact likelihood ratio
// w = exp(-mu.z - |mu|^2/2), so the weighted indicator mean is unbiased
// for the true stratum probability at any shift. DJ stays uniform and the
// SJ phase is stratified (uniform within its bin) — the unbounded Gaussian
// directions do all the tilting work.
//
// Determinism: rounds x strata form a flat index space; stratum s of
// round r draws only from derive_seed(base_seed, r * n_strata + s), each
// parallel item writes its own tally slot, and round tallies merge into
// the cumulative ones in stratum order after the barrier — estimates are
// bit-identical for any thread count (the exec/ contract).

#include <cstdint>
#include <vector>

#include "exec/thread_pool.hpp"
#include "mc/estimator.hpp"
#include "mc/margin_model.hpp"
#include "obs/metrics.hpp"

namespace gcdr::mc {

class ImportanceSampler {
public:
    struct Config {
        McBudget budget;
        /// Draws added to every stratum per adaptive round.
        std::uint64_t samples_per_stratum_round = 4096;
        /// SJ phase strata per run length (1 when the config has no SJ).
        int phase_bins = 8;
    };

    ImportanceSampler(const AnalyticMarginModel& model, Config cfg,
                      obs::MetricsRegistry* metrics = nullptr);

    /// Adaptive estimate of the BER: rounds of stratified tilted draws
    /// until the normal-theory relative error meets the budget target or
    /// the evaluation budget is exhausted.
    [[nodiscard]] McEstimate estimate(exec::ThreadPool& pool) const;

    /// Number of strata ((phase bins) x (run lengths) + early).
    [[nodiscard]] std::size_t n_strata() const { return strata_.size(); }

    /// Mean shift applied in stratum s (|mu|, exposed for tests: rare
    /// operating points must actually tilt).
    [[nodiscard]] double shift_norm(std::size_t s) const;

private:
    struct Stratum {
        bool early = false;
        int run_length = 1;
        int phase_bin = 0;
        /// Mean shift on (z_edge, z_trig, z_osc), or on z_early.
        double mu[3] = {0.0, 0.0, 0.0};
        double mu_early = 0.0;
    };

    void build_strata();
    void sample_stratum(const Stratum& st, std::uint64_t seed,
                        std::uint64_t n, WeightedTally& tally) const;
    [[nodiscard]] McEstimate assemble(
        const std::vector<WeightedTally>& tallies,
        std::uint64_t total_evals) const;

    const AnalyticMarginModel* model_;
    Config cfg_;
    obs::MetricsRegistry* metrics_;
    std::vector<Stratum> strata_;
    std::vector<double> pmf_;
    double mean_len_ = 1.0;
    int bins_ = 1;
};

}  // namespace gcdr::mc
