#include "mc/margin_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numbers>
#include <string>

#include "exec/thread_pool.hpp"
#include "obs/trace_causal.hpp"
#include "sim/batch/channel_batch.hpp"
#include "sim/scheduler.hpp"

namespace gcdr::mc {

void MarginModel::margin_ui_batch(const RunSample* samples, std::size_t n,
                                  double* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = margin_ui(samples[i]);
}

std::vector<double> run_length_pmf(int cap) {
    assert(cap >= 1);
    std::vector<double> p(cap);
    for (int l = 1; l < cap; ++l) {
        p[l - 1] = std::pow(0.5, l);
    }
    p[cap - 1] = std::pow(0.5, cap - 1);  // P(L >= cap) folded onto the cap
    return p;
}

double mean_run_length(const std::vector<double>& pmf) {
    double m = 0.0;
    for (std::size_t i = 0; i < pmf.size(); ++i) {
        m += static_cast<double>(i + 1) * pmf[i];
    }
    return m;
}

int run_length_from_uniform(const std::vector<double>& pmf, double u) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < pmf.size(); ++i) {
        acc += pmf[i];
        if (u < acc) return static_cast<int>(i + 1);
    }
    return static_cast<int>(pmf.size());
}

// ---------------------------------------------------------------------------
// AnalyticMarginModel

AnalyticMarginModel::AnalyticMarginModel(const statmodel::ModelConfig& cfg)
    : cfg_(cfg) {
    assert(cfg_.max_cid >= 1);
}

double AnalyticMarginModel::margin_threshold(int run_length) const {
    return (static_cast<double>(run_length) - 0.5 -
            cfg_.sampling_advance_ui) *
               (1.0 + cfg_.freq_offset) -
           static_cast<double>(run_length);
}

double AnalyticMarginModel::osc_sigma(int run_length) const {
    const double elapsed_ui =
        std::max(0.0, static_cast<double>(run_length) - 0.5 -
                          cfg_.sampling_advance_ui);
    return cfg_.spec.ckj_uirms *
           std::sqrt(elapsed_ui / static_cast<double>(cfg_.cid_ref));
}

double AnalyticMarginModel::combined_sigma(int run_length) const {
    const double rj2 = 2.0 * cfg_.spec.rj_uirms * cfg_.spec.rj_uirms;
    const double osc = osc_sigma(run_length);
    return std::sqrt(rj2 + osc * osc);
}

double AnalyticMarginModel::sj_eff_amp(int run_length) const {
    if (cfg_.spec.sj_uipp <= 0.0 || cfg_.sj_freq_norm <= 0.0) return 0.0;
    return cfg_.spec.sj_uipp *
           std::abs(std::sin(std::numbers::pi * cfg_.sj_freq_norm *
                             static_cast<double>(run_length)));
}

double AnalyticMarginModel::late_margin_ui(const RunSample& s) const {
    // The last sample survives while  L + dJ_rel > s_L + osc jitter, i.e.
    // margin = DJ + RJ_close - RJ_trig - osc*z + SJ_rel - (s_L - L) > 0.
    // Identical in law to statmodel's P(DJ + G + S < s_L - L) with
    // G ~ N(0, 2*rj^2 + osc^2) and S the phase-uniform SJ sinusoid.
    const double dj = (s.u_dj - 0.5) * cfg_.spec.dj_uipp;
    const double rj = cfg_.spec.rj_uirms * (s.z_edge - s.z_trig);
    const double osc = osc_sigma(s.run_length) * s.z_osc;
    const double sj =
        sj_eff_amp(s.run_length) *
        std::sin(2.0 * std::numbers::pi * s.u_phase);
    return dj + rj - osc + sj - margin_threshold(s.run_length);
}

double AnalyticMarginModel::early_nominal_ui() const {
    return (0.5 - cfg_.sampling_advance_ui) * (1.0 + cfg_.freq_offset);
}

double AnalyticMarginModel::early_sigma() const {
    const double osc = osc_sigma(1);
    const double mm = cfg_.trigger_mismatch_uirms;
    return std::sqrt(osc * osc + mm * mm);
}

double AnalyticMarginModel::early_margin_ui(double z_early) const {
    return early_nominal_ui() + early_sigma() * z_early;
}

void AnalyticMarginModel::late_margin_ui_batch(const RunSample* samples,
                                               std::size_t n,
                                               double* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = late_margin_ui(samples[i]);
}

double AnalyticMarginModel::margin_ui(const RunSample& s) const {
    return std::min(late_margin_ui(s), early_margin_ui(s.z_early));
}

// ---------------------------------------------------------------------------
// BehavioralMarginModel

BehavioralMarginModel::BehavioralMarginModel(Params p)
    : params_(std::move(p)) {
    assert(params_.max_cid >= 1);
    assert(params_.warmup_bits >= 2);
    // An even warmup ends on the low level, so the run always opens with
    // a real triggering transition.
    if (params_.warmup_bits % 2 != 0) ++params_.warmup_bits;
}

BehavioralMarginModel::Params BehavioralMarginModel::params_from(
    const statmodel::ModelConfig& cfg, LinkRate rate) {
    Params p;
    // delta = (T_cco - T_data)/T_data, so the oscillator runs at
    // f_data/(1 + delta).
    const double f_osc =
        rate.bits_per_second() / (1.0 + cfg.freq_offset);
    p.channel = cdr::ChannelConfig::nominal(f_osc, cfg.spec.ckj_uirms, rate);
    p.channel.improved_sampling = cfg.sampling_advance_ui > 0.0;
    p.spec = cfg.spec;
    p.sj_freq_norm = cfg.sj_freq_norm;
    p.max_cid = cfg.max_cid;
    return p;
}

std::vector<jitter::Edge> BehavioralMarginModel::build_edges(
    const RunSample& s, int L) const {
    const LinkRate rate = params_.channel.rate;
    const double ui_s = rate.ui_seconds();
    const int w = params_.warmup_bits;

    // Pattern: w alternating warmup bits (1,0,...,1,0), the run of L high
    // bits, one low closing bit. Transitions fall on every warmup
    // boundary, at index w (the trigger) and at w + L (the closing edge
    // whose measured margin is the sample).
    const SimTime start = SimTime::ns(4);  // oscillator startup first
    const double theta0 = 2.0 * std::numbers::pi * s.u_phase;
    const double sj_amp_ui = params_.spec.sj_uipp / 2.0;
    auto sj_at = [&](int bits_past_trigger) {
        if (sj_amp_ui == 0.0 || params_.sj_freq_norm == 0.0) return 0.0;
        return sj_amp_ui *
               std::sin(theta0 + 2.0 * std::numbers::pi *
                                     params_.sj_freq_norm *
                                     static_cast<double>(bits_past_trigger));
    };

    std::vector<jitter::Edge> edges;
    edges.reserve(static_cast<std::size_t>(w) + 2);
    SimTime prev = start - SimTime::fs(1);
    bool level = false;
    auto push_edge = [&](int bit_index, double disp_ui) {
        const double nominal_s =
            start.seconds() + static_cast<double>(bit_index) * ui_s;
        SimTime t = SimTime::from_seconds(nominal_s + disp_ui * ui_s);
        if (t <= prev) t = prev + SimTime::fs(1);
        level = !level;
        edges.push_back(jitter::Edge{t, level});
        prev = t;
    };
    for (int i = 0; i < w; ++i) push_edge(i, 0.0);  // clean warmup toggles
    // Triggering edge of the run: its own RJ plus the coherent sinusoid.
    push_edge(w, params_.spec.rj_uirms * s.z_trig + sj_at(0));
    // Closing edge: DJ + RJ + the sinusoid L bits later. The SJ difference
    // across the run realizes the A*|sin(pi*f*L)| effective amplitude the
    // analytic layer uses.
    push_edge(w + L, (s.u_dj - 0.5) * params_.spec.dj_uipp +
                         params_.spec.rj_uirms * s.z_edge + sj_at(L));
    return edges;
}

double BehavioralMarginModel::resolve_margin(
    const std::vector<double>& margins, std::size_t n_decisions,
    std::uint64_t ones, int L) const {
    if (margins.empty() || n_decisions == 0) return 1.0;
    // Ground truth from the recovered bits: the sampler must emit exactly
    // (warmup ones + L) ones. A late error drops one (bit L sampled past
    // the closing edge reads 0), an early/deep shift adds one (the closing
    // 0 sampled while the run is still high) — either way the count moves.
    // The channel's margin population alone cannot decide this: its 1-UI
    // unwrap maps errors deeper than ~half a period back into the healthy
    // band.
    const auto expected =
        static_cast<std::uint64_t>(params_.warmup_bits / 2 + L);
    const bool error = ones != expected;
    // The closing edge is the last DDIN transition, so its measured margin
    // is the final entry: continuous through 0 for near misses (the
    // channel unwraps those to small negatives). Errors the unwrap missed
    // saturate at -0.5; healthy runs whose late closing edge tripped the
    // unwrap get the period added back.
    const double m = margins.back();
    if (error) return m < 0.0 ? m : -0.5;
    return m > 0.0 ? m : m + 1.0;
}

double BehavioralMarginModel::margin_ui(const RunSample& s) const {
    const LinkRate rate = params_.channel.rate;
    const int L = std::clamp(s.run_length, 1, params_.max_cid);
    const std::vector<jitter::Edge> edges = build_edges(s, L);

    // A fresh Scheduler + channel per evaluation IS the clone-and-restart:
    // the trajectory is fully determined by (latent vector, noise_seed),
    // so a checkpoint never has to serialize live event-queue state.
    sim::Scheduler sched;
    Rng rng(s.noise_seed);
    cdr::GccoChannel ch(sched, rng, params_.channel, "mc");

    // Per-lane flight ring + a tracer local to this evaluation, so a
    // failed clone's dump carries a walkable causal chain. The tracer is
    // detached from the ring before it goes out of scope.
    obs::FlightRing* ring = nullptr;
    std::unique_ptr<obs::CausalTracer> tracer;
    if (params_.flight) {
        ring = &params_.flight->ring(
            "mc.lane" + std::to_string(exec::ThreadPool::lane_index()));
        tracer =
            std::make_unique<obs::CausalTracer>(params_.flight_tracer_capacity);
        sched.attach_tracer(tracer.get());
        ring->set_tracer(tracer.get());
        ch.record_flight(*ring);
    }

    ch.drive(edges);
    sched.run_until(edges.back().time + rate.ui_to_time(4.0));

    const auto& margins = ch.margins_ui();
    if (margins.empty() || ch.decisions().empty()) {
        if (ring) ring->set_tracer(nullptr);
        return 1.0;
    }
    std::uint64_t ones = 0;
    for (const auto& d : ch.decisions()) ones += d.bit ? 1u : 0u;
    if (ring) {
        const auto expected =
            static_cast<std::uint64_t>(params_.warmup_bits / 2 + L);
        // Dump while this evaluation's tracer is still alive, then detach
        // it — the ring outlives the eval, the tracer does not.
        if (ones != expected) params_.flight->dump("mc_margin_error");
        ring->set_tracer(nullptr);
    }
    return resolve_margin(margins, ch.decisions().size(), ones, L);
}

void BehavioralMarginModel::margin_ui_batch(const RunSample* samples,
                                            std::size_t n,
                                            double* out) const {
    // Flight recording needs the event kernel's tracer; a 0/1-lane batch
    // gains nothing over the scalar path.
    if (params_.batch_lanes <= 1 || params_.flight != nullptr) {
        MarginModel::margin_ui_batch(samples, n, out);
        return;
    }
    const LinkRate rate = params_.channel.rate;
    for (std::size_t base = 0; base < n; base += params_.batch_lanes) {
        const std::size_t cnt = std::min(params_.batch_lanes, n - base);
        sim::batch::ChannelBatch batch(params_.channel, cnt);
        std::vector<int> lens(cnt);
        for (std::size_t k = 0; k < cnt; ++k) {
            const RunSample& s = samples[base + k];
            lens[k] = std::clamp(s.run_length, 1, params_.max_cid);
            const std::vector<jitter::Edge> edges = build_edges(s, lens[k]);
            batch.seed_lane(k, s.noise_seed);
            batch.drive(k, edges);
            batch.set_horizon(k, edges.back().time + rate.ui_to_time(4.0));
        }
        // No pool handoff here: engines already tile margin_ui_batch
        // chunks across their ThreadPool, so the kernel runs its lanes on
        // the calling lane.
        batch.run_all();
        for (std::size_t k = 0; k < cnt; ++k) {
            out[base + k] =
                resolve_margin(batch.margins_ui(k), batch.decisions(k).size(),
                               batch.ones(k), lens[k]);
        }
        stats_.evals.fetch_add(cnt, std::memory_order_relaxed);
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        stats_.steps.fetch_add(batch.batch_steps(),
                               std::memory_order_relaxed);
        stats_.wall_seconds.fetch_add(batch.run_seconds(),
                                      std::memory_order_relaxed);
    }
}

}  // namespace gcdr::mc
