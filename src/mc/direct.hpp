#pragma once
// Stratified direct (crude) Monte Carlo over a MarginModel — the unbiased
// control the variance-reduced engines are validated against.
//
// Strata are run lengths with *exactly* proportional allocation: the
// truncated-geometric run-length law is dyadic (1/2, 1/4, ..., two tail
// atoms of 2^-(cap-1)), so a round size that is a multiple of 2^(cap-1)
// splits into integer per-stratum counts n_l = N * P(l). The design is
// then self-weighting: the pooled error fraction k/n equals the
// stratified estimate sum_l P(l) * k_l/n_l, which keeps the exact
// Clopper-Pearson machinery applicable to the pooled counts while the
// standard error still benefits from the stratification.
//
// Every remaining coordinate (DJ, RJ, SJ phase, early-path noise, channel
// noise seed) is drawn from its nominal law, and the indicator is
// margin_ui < 0 — late and early mechanisms jointly, i.e. the union
// probability rather than statmodel's sum of the two (they differ by a
// product of two rare probabilities, far below every tolerance here).
//
// Determinism: (round, stratum) -> derive_seed(base, r * cap + l), slot
// writes only, fixed-order merges — bit-identical for any thread count.

#include <cstdint>
#include <vector>

#include "exec/thread_pool.hpp"
#include "mc/estimator.hpp"
#include "mc/margin_model.hpp"
#include "obs/metrics.hpp"

namespace gcdr::mc {

class DirectSampler {
public:
    struct Config {
        McBudget budget;
        /// Runs added per adaptive round; rounded up to a multiple of
        /// 2^(max_cid - 1) so the dyadic allocation is exact.
        std::uint64_t runs_per_round = 1u << 16;
    };

    DirectSampler(const MarginModel& model, Config cfg,
                  obs::MetricsRegistry* metrics = nullptr);

    /// Rounds of stratified direct runs until the Clopper-Pearson
    /// interval's implied relative error meets the target or the budget
    /// runs out. `ci` is exact Clopper-Pearson on the pooled counts
    /// (scaled to BER); `std_err` is the stratified binomial SE.
    [[nodiscard]] McEstimate estimate(exec::ThreadPool& pool) const;

    /// Pooled error count / run count of the last estimate() call are not
    /// retained (const engine); the Wilson flavor of the same counts:
    [[nodiscard]] static Interval wilson_of(std::uint64_t errors,
                                            std::uint64_t runs,
                                            double confidence = 0.95) {
        return wilson_interval(errors, runs, confidence);
    }

    [[nodiscard]] std::uint64_t runs_per_round() const {
        return runs_per_round_;
    }

private:
    const MarginModel* model_;
    Config cfg_;
    obs::MetricsRegistry* metrics_;
    std::vector<double> pmf_;
    double mean_len_ = 1.0;
    std::uint64_t runs_per_round_ = 0;
    std::vector<std::uint64_t> alloc_;  ///< per-stratum runs per round
};

}  // namespace gcdr::mc
