#include "mc/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/mathx.hpp"

namespace gcdr::mc {

double z_value(double confidence) {
    assert(confidence > 0.0 && confidence < 1.0);
    // Two-sided: tail mass (1-conf)/2 on each side.
    return q_inverse(0.5 * (1.0 - confidence));
}

Interval wilson_interval(std::uint64_t k, std::uint64_t n,
                         double confidence) {
    Interval iv;
    if (n == 0) return iv;
    assert(k <= n);
    const double z = z_value(confidence);
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(k) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = (p + z2 / (2.0 * nn)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
    iv.lo = std::max(0.0, center - half);
    iv.hi = std::min(1.0, center + half);
    return iv;
}

Interval clopper_pearson_interval(std::uint64_t k, std::uint64_t n,
                                  double confidence) {
    Interval iv;
    if (n == 0) return iv;
    assert(k <= n);
    const double kk = static_cast<double>(k);
    const double nn = static_cast<double>(n);
    const double alpha = 1.0 - confidence;
    iv.lo = (k == 0) ? 0.0 : beta_inc_inv(kk, nn - kk + 1.0, alpha / 2.0);
    iv.hi = (k == n) ? 1.0
                     : beta_inc_inv(kk + 1.0, nn - kk, 1.0 - alpha / 2.0);
    return iv;
}

Interval normal_interval(double mean, double se, double confidence) {
    const double z = z_value(confidence);
    Interval iv;
    iv.lo = std::max(0.0, mean - z * se);
    iv.hi = mean + z * se;
    return iv;
}

double McEstimate::rel_err() const {
    if (mean <= 0.0) return std::numeric_limits<double>::infinity();
    return std_err / mean;
}

double WeightedTally::mean() const {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

double WeightedTally::std_err() const {
    if (n_ < 2) return 0.0;
    const double nn = static_cast<double>(n_);
    const double m = sum_ / nn;
    // Unbiased sample variance of the contributions.
    const double var = std::max(0.0, (sum_sq_ - nn * m * m) / (nn - 1.0));
    return std::sqrt(var / nn);
}

double WeightedTally::ess() const {
    if (sum_sq_ <= 0.0) return 0.0;
    return sum_ * sum_ / sum_sq_;
}

}  // namespace gcdr::mc
