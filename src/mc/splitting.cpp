#include "mc/splitting.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>

#include "exec/sweep.hpp"
#include "obs/progress.hpp"
#include "obs/trace_span.hpp"
#include "util/rng.hpp"

namespace gcdr::mc {

namespace {

// Seed-space stride between levels; particle indices stay far below it.
constexpr std::uint64_t kLevelStride = 1ull << 32;

double std_normal_cdf(double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

// Map a latent normal to a uniform strictly inside [0, 1).
double to_uniform(double z) {
    const double u = std_normal_cdf(z);
    return std::min(std::max(u, 0.0), 0x1.fffffffffffffp-1);
}

}  // namespace

SplittingEngine::SplittingEngine(const MarginModel& model, Config cfg,
                                 obs::MetricsRegistry* metrics)
    : model_(&model), cfg_(cfg), metrics_(metrics) {
    assert(cfg_.n_particles >= 8);
    assert(cfg_.p0 > 0.0 && cfg_.p0 < 1.0);
    assert(cfg_.pcn_rho >= 0.0 && cfg_.pcn_rho < 1.0);
    pmf_ = run_length_pmf(model.max_run_length());
    mean_len_ = mean_run_length(pmf_);
}

RunSample SplittingEngine::to_sample(const Particle& p) const {
    RunSample s;
    s.run_length = run_length_from_uniform(pmf_, to_uniform(p.z[0]));
    s.u_dj = to_uniform(p.z[1]);
    s.z_edge = p.z[2];
    s.z_trig = p.z[3];
    s.z_osc = p.z[4];
    s.u_phase = to_uniform(p.z[5]);
    s.z_early = p.z[6];
    s.noise_seed = p.noise_seed;
    return s;
}

double SplittingEngine::eval_h(const Particle& p) const {
    return -model_->margin_ui(to_sample(p));
}

void SplittingEngine::eval_h_batch(Particle* particles,
                                   std::size_t n) const {
    std::vector<RunSample> samples(n);
    std::vector<double> margins(n);
    for (std::size_t i = 0; i < n; ++i) samples[i] = to_sample(particles[i]);
    model_->margin_ui_batch(samples.data(), n, margins.data());
    for (std::size_t i = 0; i < n; ++i) particles[i].h = -margins[i];
}

McEstimate SplittingEngine::estimate(exec::ThreadPool& pool) const {
    obs::TraceSpan span("mc.split");
    const std::size_t n = cfg_.n_particles;
    const std::size_t ns = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg_.p0 * static_cast<double>(n)));
    const std::size_t chain_len = (n + ns - 1) / ns;  // ceil(n / ns)

    McEstimate est;
    est.confidence = cfg_.budget.confidence;
    if (cfg_.budget.max_evals < n) return est;  // can't even seed level 0

    std::vector<Particle> particles(n);
    {
        obs::TraceSpan seed_span("mc.split.seed");
        // Draw first (cheap, per-particle seeds), then evaluate the i.i.d.
        // population through the batched oracle in pool-tiled blocks. The
        // block size only shapes scheduling — particles are already fixed,
        // so results are identical for any blocking or thread count.
        pool.parallel_for(n, [&](std::size_t i) {
            Rng rng(exec::derive_seed(cfg_.budget.base_seed, i));
            Particle& p = particles[i];
            for (double& z : p.z) z = rng.gaussian();
            p.noise_seed = rng.generator()();
        });
        constexpr std::size_t kBlock = 64;
        const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
        pool.parallel_for(n_blocks, [&](std::size_t b) {
            const std::size_t lo = b * kBlock;
            eval_h_batch(&particles[lo], std::min(kBlock, n - lo));
        });
    }
    std::uint64_t total = n;

    // Evaluations one repopulation costs: every slot except each active
    // chain's seed copy.
    std::size_t level_evals = 0;
    for (std::size_t j = 0; j < ns; ++j) {
        const std::size_t lo = j * chain_len;
        const std::size_t hi = std::min(lo + chain_len, n);
        if (hi > lo) level_evals += hi - lo - 1;
    }

    std::vector<double> level_probs;
    std::vector<double> level_gammas;
    std::vector<std::size_t> order(n);
    double final_fraction = 0.0;
    double final_gamma = 0.0;
    bool reached = false;
    // pCN step size; cfg_.pcn_rho sets the starting correlation and the
    // acceptance-rate feedback below re-tunes it between levels.
    double beta = std::sqrt(1.0 - cfg_.pcn_rho * cfg_.pcn_rho);
    int level = 0;
    // Opt-in live progress against the eval budget; the run usually ends
    // well short of it (on reaching the target set), so finish() stamps
    // the actual total.
    std::unique_ptr<obs::ProgressReporter> progress;
    if (obs::ProgressReporter::enabled()) {
        progress = std::make_unique<obs::ProgressReporter>(
            "mc.split", cfg_.budget.max_evals);
        progress->add(total);
    }

    // Au & Beck's gamma: variance inflation of a level-probability
    // estimate from the indicator autocorrelation along the chains that
    // generated the current population. Level 0 is i.i.d. (gamma = 0).
    auto chain_gamma = [&](double thr) -> double {
        if (level == 0) return 0.0;
        double pbar = 0.0;
        for (const Particle& p : particles) {
            if (p.h >= thr) pbar += 1.0;
        }
        pbar /= static_cast<double>(n);
        const double r0 = pbar * (1.0 - pbar);
        if (r0 <= 0.0) return 0.0;
        double gamma = 0.0;
        for (std::size_t k = 1; k < chain_len; ++k) {
            double acc = 0.0;
            std::size_t pairs = 0;
            for (std::size_t j = 0; j < ns; ++j) {
                const std::size_t lo = j * chain_len;
                const std::size_t hi = std::min(lo + chain_len, n);
                for (std::size_t t = lo; t + k < hi; ++t) {
                    acc += (particles[t].h >= thr ? 1.0 : 0.0) *
                           (particles[t + k].h >= thr ? 1.0 : 0.0);
                    ++pairs;
                }
            }
            if (pairs == 0) break;
            const double rho_k =
                (acc / static_cast<double>(pairs) - pbar * pbar) / r0;
            gamma += 2.0 *
                     (1.0 - static_cast<double>(k) /
                                static_cast<double>(chain_len)) *
                     rho_k;
        }
        return std::max(0.0, gamma);
    };
    for (;; ++level) {
        obs::TraceSpan level_span("mc.split.level");
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (particles[a].h != particles[b].h) {
                          return particles[a].h > particles[b].h;
                      }
                      return a < b;  // deterministic tie-break
                  });
        const double tau = particles[order[ns - 1]].h;
        std::size_t n_target = 0;
        for (const Particle& p : particles) {
            if (p.h >= 0.0) ++n_target;
        }
        if (tau >= 0.0) {
            // The p0-quantile itself is in the error region: finish.
            final_fraction =
                static_cast<double>(n_target) / static_cast<double>(n);
            final_gamma = chain_gamma(0.0);
            reached = true;
            break;
        }
        if (level >= cfg_.max_levels ||
            total + level_evals > cfg_.budget.max_evals) {
            final_fraction =
                static_cast<double>(n_target) / static_cast<double>(n);
            final_gamma = chain_gamma(0.0);
            break;
        }
        level_probs.push_back(static_cast<double>(ns) /
                              static_cast<double>(n));
        level_gammas.push_back(chain_gamma(tau));

        std::vector<Particle> next(n);
        std::vector<std::uint32_t> accepts(ns, 0);
        const double rho = std::sqrt(1.0 - beta * beta);
        pool.parallel_for(ns, [&](std::size_t j) {
            const std::size_t lo = j * chain_len;
            const std::size_t hi = std::min(lo + chain_len, n);
            if (hi <= lo) return;  // ns doesn't divide n: spare survivor
            Rng rng(exec::derive_seed(
                cfg_.budget.base_seed,
                static_cast<std::uint64_t>(level + 1) * kLevelStride + j));
            Particle cur = particles[order[j]];
            next[lo] = cur;  // the survivor itself stays in the population
            std::uint32_t acc = 0;
            for (std::size_t slot = lo + 1; slot < hi; ++slot) {
                Particle cand;
                for (int d = 0; d < 7; ++d) {
                    cand.z[d] = rho * cur.z[d] + beta * rng.gaussian();
                }
                cand.noise_seed = rng.generator()();
                cand.h = eval_h(cand);
                if (cand.h >= tau) {
                    cur = cand;
                    ++acc;
                }
                next[slot] = cur;
            }
            accepts[j] = acc;
        });
        particles.swap(next);
        total += level_evals;
        if (progress) progress->add(level_evals);
        // Adaptive conditional sampling: steer the pCN step size toward
        // the ~0.44 acceptance sweet spot (Papaioannou et al.). The
        // statistic is merged in fixed order after the barrier, so the
        // adaptation — like everything else — is thread-count invariant.
        if (level_evals > 0) {
            std::uint64_t acc_total = 0;
            for (std::size_t j = 0; j < ns; ++j) acc_total += accepts[j];
            const double acc_rate = static_cast<double>(acc_total) /
                                    static_cast<double>(level_evals);
            beta = std::clamp(beta * std::exp(acc_rate - 0.44), 0.02, 1.0);
            if (metrics_) {
                metrics_->gauge("mc.split.acceptance_rate").set(acc_rate);
                metrics_->gauge("mc.split.pcn_beta").set(beta);
            }
        }
    }
    if (progress) progress->finish();

    double p = final_fraction;
    for (double pl : level_probs) p *= pl;
    est.mean = p / mean_len_;
    est.n_samples = total;
    est.ess = static_cast<double>(n);
    if (metrics_) {
        metrics_->counter("mc.split.evals").inc(total);
        metrics_->gauge("mc.split.levels").set(level_probs.size() + 1.0);
        metrics_->gauge("mc.split.ber").set(est.mean);
    }
    if (p <= 0.0) {
        // Nothing reached the error region within budget: report a
        // rule-of-3 style upper bound at the deepest level attained.
        double bound = -std::log(1.0 - est.confidence) /
                       static_cast<double>(n);
        for (double pl : level_probs) bound *= pl;
        est.ci = Interval{0.0, bound / mean_len_};
        est.converged = false;
        return est;
    }
    // Per-level binomial variance inflated by the measured chain
    // correlation (Au & Beck's (1 + gamma) factor per level).
    double rel_var = 0.0;
    for (std::size_t l = 0; l < level_probs.size(); ++l) {
        const double pl = level_probs[l];
        rel_var += (1.0 + level_gammas[l]) * (1.0 - pl) /
                   (pl * static_cast<double>(n));
    }
    if (final_fraction < 1.0) {
        rel_var += (1.0 + final_gamma) * (1.0 - final_fraction) /
                   (final_fraction * static_cast<double>(n));
    }
    est.std_err = est.mean * std::sqrt(rel_var);
    // The estimate's error is multiplicative (a product of level
    // fractions), so a symmetric linear-scale CI undercovers badly once
    // the spread reaches a sizable fraction of a decade. Delta method on
    // log X: sd(log X) ~ rel std, hence the log-normal interval.
    const double z = z_value(est.confidence);
    const double sig_log = std::sqrt(rel_var);
    est.ci = Interval{est.mean * std::exp(-z * sig_log),
                      est.mean * std::exp(z * sig_log)};
    est.converged =
        reached && est.rel_err() <= cfg_.budget.target_rel_err;
    if (metrics_) {
        metrics_->gauge("mc.split.rel_err").set(est.rel_err());
    }
    return est;
}

}  // namespace gcdr::mc
