#include "mc/direct.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "exec/sweep.hpp"
#include "obs/progress.hpp"
#include "obs/trace_span.hpp"
#include "util/rng.hpp"

namespace gcdr::mc {

DirectSampler::DirectSampler(const MarginModel& model, Config cfg,
                             obs::MetricsRegistry* metrics)
    : model_(&model), cfg_(cfg), metrics_(metrics) {
    const int cap = model.max_run_length();
    pmf_ = run_length_pmf(cap);
    mean_len_ = mean_run_length(pmf_);
    // Smallest pmf atom is 2^-(cap-1); a round that is a multiple of
    // 2^(cap-1) makes every n_l = N * P(l) an exact integer.
    const std::uint64_t quantum = 1ull << (cap - 1);
    runs_per_round_ =
        ((std::max<std::uint64_t>(cfg_.runs_per_round, 1) + quantum - 1) /
         quantum) *
        quantum;
    alloc_.resize(static_cast<std::size_t>(cap));
    std::uint64_t check = 0;
    for (int l = 1; l <= cap; ++l) {
        const double exact = static_cast<double>(runs_per_round_) * pmf_[l - 1];
        alloc_[l - 1] = static_cast<std::uint64_t>(std::llround(exact));
        check += alloc_[l - 1];
    }
    assert(check == runs_per_round_);
    (void)check;
}

McEstimate DirectSampler::estimate(exec::ThreadPool& pool) const {
    const std::size_t cap = alloc_.size();
    std::vector<std::uint64_t> errors(cap, 0);
    std::vector<std::uint64_t> runs(cap, 0);
    std::uint64_t total = 0;
    McEstimate est;
    est.confidence = cfg_.budget.confidence;
    std::uint64_t round = 0;
    auto refresh = [&]() {
        std::uint64_t k = 0;
        std::uint64_t n = 0;
        double var = 0.0;
        for (std::size_t l = 0; l < cap; ++l) {
            k += errors[l];
            n += runs[l];
            if (runs[l] > 1) {
                const double nn = static_cast<double>(runs[l]);
                const double p = static_cast<double>(errors[l]) / nn;
                var += pmf_[l] * pmf_[l] * p * (1.0 - p) / nn;
            }
        }
        est.n_samples = total;
        if (n == 0) return;
        // Self-weighting design: pooled fraction == stratified estimate.
        est.mean = static_cast<double>(k) / static_cast<double>(n) / mean_len_;
        est.std_err = std::sqrt(var) / mean_len_;
        Interval cp = clopper_pearson_interval(k, n, est.confidence);
        est.ci = Interval{cp.lo / mean_len_, cp.hi / mean_len_};
        est.ess = static_cast<double>(n);
        // Exact-interval convergence: the CP half-width relative to the
        // point estimate (the rule the ISSUE's "unbiased control" needs —
        // a zero-error tally never converges, it just tightens its bound).
        if (k > 0) {
            const double half = 0.5 * (cp.hi - cp.lo) / mean_len_;
            est.converged = half / est.mean <= cfg_.budget.target_rel_err &&
                            est.rel_err() <= cfg_.budget.target_rel_err;
        }
    };
    // Opt-in live progress against the eval budget (convergence exits
    // early; finish() emits the actual total).
    std::unique_ptr<obs::ProgressReporter> progress;
    if (obs::ProgressReporter::enabled() &&
        runs_per_round_ <= cfg_.budget.max_evals) {
        progress = std::make_unique<obs::ProgressReporter>(
            "mc.direct", cfg_.budget.max_evals);
    }
    while (total + runs_per_round_ <= cfg_.budget.max_evals) {
        obs::TraceSpan round_span("mc.direct.round");
        std::vector<std::uint64_t> round_err(cap, 0);
        pool.parallel_for(cap, [&](std::size_t l) {
            Rng rng(exec::derive_seed(cfg_.budget.base_seed,
                                      round * cap + l));
            // Draw-then-evaluate in chunks: the coordinate stream leaves
            // rng in the same order as one-at-a-time sampling, while the
            // evaluation goes through the batched oracle (which a
            // BehavioralMarginModel with batch_lanes set runs on the SoA
            // kernel). The chunk size only bounds buffer memory.
            constexpr std::uint64_t kChunk = 1024;
            std::vector<RunSample> buf;
            std::vector<double> margins;
            std::uint64_t k = 0;
            for (std::uint64_t done = 0; done < alloc_[l];) {
                const std::uint64_t c = std::min(kChunk, alloc_[l] - done);
                buf.resize(c);
                margins.resize(c);
                for (std::uint64_t i = 0; i < c; ++i) {
                    RunSample& s = buf[i];
                    s.run_length = static_cast<int>(l) + 1;
                    s.u_dj = rng.uniform();
                    s.z_edge = rng.gaussian();
                    s.z_trig = rng.gaussian();
                    s.z_osc = rng.gaussian();
                    s.u_phase = rng.uniform();
                    s.z_early = rng.gaussian();
                    s.noise_seed = rng.generator()();
                }
                model_->margin_ui_batch(buf.data(), c, margins.data());
                for (std::uint64_t i = 0; i < c; ++i) {
                    if (margins[i] < 0.0) ++k;
                }
                done += c;
            }
            round_err[l] = k;
        });
        for (std::size_t l = 0; l < cap; ++l) {  // fixed merge order
            errors[l] += round_err[l];
            runs[l] += alloc_[l];
        }
        total += runs_per_round_;
        ++round;
        refresh();
        if (progress) progress->add(runs_per_round_);
        if (metrics_) {
            metrics_->counter("mc.direct.runs").inc(runs_per_round_);
            metrics_->gauge("mc.direct.rounds").set(
                static_cast<double>(round));
            metrics_->gauge("mc.direct.ber").set(est.mean);
            metrics_->gauge("mc.direct.rel_err").set(est.rel_err());
        }
        if (est.converged) break;
    }
    if (progress) progress->finish();
    refresh();
    return est;
}

}  // namespace gcdr::mc
