#pragma once
// Declarative N-dimensional parameter sweeps on top of exec::ThreadPool.
//
// A SweepGrid is an ordered list of named axes; its flat index space is
// row-major with the FIRST axis slowest, so results come back in exactly
// the order the old hand-rolled nested loops produced them:
//
//     for (fn : freqs)          // axis 0 (slow)
//         for (a : amps)        // axis 1 (fast)
//
// becomes
//
//     SweepGrid grid;
//     grid.axis("sj_freq_norm", freqs).axis("sj_uipp", amps);
//     auto bers = SweepRunner(pool, grid).map<double>(
//         [&](const SweepPoint& p) {
//             cfg.sj_freq_norm = p.value[0];
//             cfg.spec.sj_uipp = p.value[1];
//             return statmodel::ber_of(cfg);
//         });
//
// Determinism: every point gets a seed derived from (base_seed, flat
// index) by a splitmix64 finalizer — a pure function of the index — and
// each point writes only its own result slot. Results are therefore
// bit-identical regardless of thread count or scheduling order; only
// wall-clock changes. Stochastic points must draw exclusively from
// p.seed (never from a shared RNG), and side effects into shared
// telemetry should go through per-lane shards (obs::ShardedCounter)
// keyed by ThreadPool::lane_index().

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "exec/thread_pool.hpp"
#include "obs/progress.hpp"
#include "obs/trace_span.hpp"

namespace gcdr::exec {

/// splitmix64 finalizer over (base_seed, index): statistically independent
/// seeds for neighboring indices, stable across thread counts. index is
/// offset by a golden-ratio increment so (base, 0) != base.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t index);

struct SweepAxis {
    std::string name;
    std::vector<double> values;
};

/// One evaluated grid point, handed to the mapped lambda.
struct SweepPoint {
    std::size_t index = 0;             ///< flat row-major index
    std::uint64_t seed = 0;            ///< derive_seed(base_seed, index)
    std::vector<std::size_t> idx;      ///< per-axis value index
    std::vector<double> value;         ///< per-axis value
};

class SweepGrid {
public:
    /// Append an axis (fluent). Empty axes are rejected via assert.
    SweepGrid& axis(std::string name, std::vector<double> values);

    [[nodiscard]] std::size_t n_axes() const { return axes_.size(); }
    [[nodiscard]] const SweepAxis& axis_at(std::size_t i) const {
        return axes_[i];
    }
    /// Total number of grid points (product of axis sizes; 0 if no axes).
    [[nodiscard]] std::size_t size() const;

    /// Decode a flat index into per-axis indices/values and attach the
    /// derived seed.
    [[nodiscard]] SweepPoint point(std::size_t flat_index,
                                   std::uint64_t base_seed) const;

private:
    std::vector<SweepAxis> axes_;
};

/// Maps a lambda over a SweepGrid on a ThreadPool. The result vector is
/// indexed like the grid (row-major, first axis slowest) and is
/// bit-identical for any pool size.
class SweepRunner {
public:
    SweepRunner(ThreadPool& pool, SweepGrid grid,
                std::uint64_t base_seed = 0)
        : pool_(&pool), grid_(std::move(grid)), base_seed_(base_seed) {}

    [[nodiscard]] const SweepGrid& grid() const { return grid_; }
    [[nodiscard]] std::uint64_t base_seed() const { return base_seed_; }

    /// Evaluate fn at every grid point; fn: (const SweepPoint&) -> R with
    /// R default-constructible. Point evaluation order is unspecified;
    /// the returned vector's order is not.
    template <typename R, typename F>
    [[nodiscard]] std::vector<R> map(F&& fn) const {
        obs::TraceSpan span("sweep.map");
        std::vector<R> out(grid_.size());
        // Live progress is globally opt-in (bench --progress); the
        // disabled path costs one relaxed load per sweep, nothing per
        // point. Purely observational — results stay bit-identical.
        std::unique_ptr<obs::ProgressReporter> progress;
        if (obs::ProgressReporter::enabled() && out.size() > 1) {
            progress = std::make_unique<obs::ProgressReporter>(
                "sweep.map", out.size());
        }
        pool_->parallel_for(out.size(), [&](std::size_t i) {
            obs::TraceSpan point_span("sweep.point");
            out[i] = fn(grid_.point(i, base_seed_));
            if (progress) progress->add();
        });
        if (progress) progress->finish();
        return out;
    }

    /// map() for lambdas taking only the axis values, common for
    /// deterministic statistical-model sweeps: fn(p.value) -> R.
    template <typename R, typename F>
    [[nodiscard]] std::vector<R> map_values(F&& fn) const {
        return map<R>([&fn](const SweepPoint& p) { return fn(p.value); });
    }

private:
    ThreadPool* pool_;
    SweepGrid grid_;
    std::uint64_t base_seed_;
};

}  // namespace gcdr::exec
