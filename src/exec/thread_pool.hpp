#pragma once
// Fixed-size worker thread pool with a fork-join parallel_for. This is the
// execution engine behind the sweep layer (exec/sweep.hpp): BER surfaces,
// JTOL/FTOL searches and multi-channel behavioral runs are embarrassingly
// parallel across grid points / channels, and this pool turns that into
// wall-clock speedup without giving up determinism — work items are
// addressed by index, each index writes only its own result slot, and any
// randomness is derived from the index (exec::derive_seed), never from
// which thread or in what order an item ran.
//
// Concurrency model:
//   - The caller participates: a pool of size N has N-1 worker threads and
//     drains indices on the calling thread too, so ThreadPool(1) spawns no
//     threads at all and parallel_for degenerates to a plain serial loop.
//   - Indices are handed out dynamically (one atomic fetch_add per item),
//     so uneven per-item cost load-balances automatically. Items should be
//     chunky (>= ~10 us); for micro-work, batch indices in the callback.
//   - parallel_for is a barrier: it returns only after every index ran.
//     The first exception thrown by any item is rethrown to the caller
//     (remaining items still execute; they are not cancelled).
//   - parallel_for is NOT reentrant from inside an item. Nested calls are
//     detected and run their loop inline on the calling worker.

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace gcdr::exec {

class ThreadPool {
public:
    /// `n_threads` = total concurrency including the caller; 0 picks
    /// std::thread::hardware_concurrency() (min 1).
    explicit ThreadPool(std::size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total lanes (worker threads + the calling thread).
    [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

    /// Run fn(i) for every i in [0, n); blocks until all completed.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

    /// Lane index of the current thread during a parallel_for: 0 for the
    /// calling thread (and any thread outside the pool), 1..size()-1 for
    /// workers. Stable for the lifetime of the pool; use it to index
    /// per-lane shards (obs::ShardedCounter).
    [[nodiscard]] static std::size_t lane_index();

private:
    void worker_main(std::size_t lane);
    void drain();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;      ///< bumped per parallel_for
    std::size_t active_workers_ = 0;    ///< workers still in current job

    const std::function<void(std::size_t)>* job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    std::atomic<std::size_t> next_{0};
    std::exception_ptr first_error_;
};

}  // namespace gcdr::exec
