#pragma once
// Fixed-size worker thread pool with a fork-join parallel_for. This is the
// execution engine behind the sweep layer (exec/sweep.hpp): BER surfaces,
// JTOL/FTOL searches and multi-channel behavioral runs are embarrassingly
// parallel across grid points / channels, and this pool turns that into
// wall-clock speedup without giving up determinism — work items are
// addressed by index, each index writes only its own result slot, and any
// randomness is derived from the index (exec::derive_seed), never from
// which thread or in what order an item ran.
//
// Concurrency model:
//   - The caller participates: a pool of size N has N-1 worker threads and
//     drains indices on the calling thread too, so ThreadPool(1) spawns no
//     threads at all and parallel_for degenerates to a plain serial loop.
//   - Indices are handed out dynamically (one atomic fetch_add per item),
//     so uneven per-item cost load-balances automatically. Items should be
//     chunky (>= ~10 us); for micro-work, batch indices in the callback.
//   - parallel_for is a barrier: it returns only after every index ran.
//     The first exception thrown by any item is rethrown to the caller
//     (remaining items still execute; they are not cancelled).
//   - parallel_for is NOT reentrant from inside an item. Nested calls are
//     detected and run their loop inline on the calling worker.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "obs/metrics.hpp"

namespace gcdr::exec {

class ThreadPool {
public:
    /// `n_threads` = total concurrency including the caller; 0 picks
    /// std::thread::hardware_concurrency() (min 1).
    explicit ThreadPool(std::size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total lanes (worker threads + the calling thread).
    [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

    /// Run fn(i) for every i in [0, n); blocks until all completed.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

    /// Cooperatively cancellable parallel_for for the serving layer's
    /// deadline/cancel paths: once `stop` reads true, no NEW index is
    /// handed out (items already started run to completion — fn is never
    /// torn mid-item). Returns the number of items that actually ran.
    /// Which indices ran under a mid-flight stop is scheduling-dependent
    /// by nature; determinism is preserved in the only sense that matters
    /// to the cache — every index either ran fn completely or not at all.
    std::size_t parallel_for_cancellable(
        std::size_t n, const std::function<void(std::size_t)>& fn,
        const std::atomic<bool>& stop);

    /// Lane index of the current thread during a parallel_for: 0 for the
    /// calling thread (and any thread outside the pool), 1..size()-1 for
    /// workers. Stable for the lifetime of the pool; use it to index
    /// per-lane shards (obs::ShardedCounter).
    [[nodiscard]] static std::size_t lane_index();

    /// Attach telemetry (obs/). Registers under `prefix`:
    ///   <prefix>.jobs / .items          counters (parallel_for calls /
    ///                                   indices executed, incl. serial)
    ///   <prefix>.job_seconds            histogram, barrier-to-barrier wall
    ///   <prefix>.item_seconds           histogram, per-item latency
    ///   <prefix>.lanes                  gauge, size()
    ///   <prefix>.lane_utilization       gauge, sum(lane busy) /
    ///                                   (lanes * job wall) of the last
    ///                                   parallel job (1.0 = no idle lanes)
    /// Pass nullptr to detach. Detached (the default), parallel_for takes
    /// no clock reads and no atomic RMWs beyond the index handout; items
    /// are assumed chunky (>= ~10 us), so the two steady_clock reads per
    /// item when attached stay in the noise.
    void attach_metrics(obs::MetricsRegistry* registry,
                        const std::string& prefix = "exec");

private:
    void worker_main(std::size_t lane);
    void drain();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;      ///< bumped per parallel_for
    std::size_t active_workers_ = 0;    ///< workers still in current job

    const std::function<void(std::size_t)>* job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    std::atomic<std::size_t> next_{0};
    std::exception_ptr first_error_;
    /// Non-null only during a cancellable job: the caller's stop flag,
    /// polled before each index handout. executed_ tallies items that ran.
    const std::atomic<bool>* job_stop_ = nullptr;
    std::atomic<std::size_t> executed_{0};

    // Telemetry instruments (null when no registry is attached).
    obs::Counter* m_jobs_ = nullptr;
    obs::Counter* m_items_ = nullptr;
    obs::Histogram* m_job_seconds_ = nullptr;
    obs::Histogram* m_item_seconds_ = nullptr;
    obs::Gauge* m_lanes_ = nullptr;
    obs::Gauge* m_lane_utilization_ = nullptr;
    /// Per-job busy time summed across lanes (ns); reset at job start.
    std::atomic<std::int64_t> busy_ns_{0};
};

}  // namespace gcdr::exec
