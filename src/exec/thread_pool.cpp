#include "exec/thread_pool.hpp"

#include <algorithm>

namespace gcdr::exec {

namespace {
// 0 on the caller and on foreign threads; workers overwrite on startup.
thread_local std::size_t t_lane_index = 0;
// Set while a thread is inside drain(): nested parallel_for runs inline.
thread_local bool t_in_parallel_region = false;
}  // namespace

std::size_t ThreadPool::lane_index() { return t_lane_index; }

ThreadPool::ThreadPool(std::size_t n_threads) {
    if (n_threads == 0) {
        n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(n_threads - 1);
    for (std::size_t lane = 1; lane < n_threads; ++lane) {
        workers_.emplace_back([this, lane] { worker_main(lane); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(std::size_t lane) {
    t_lane_index = lane;
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen_generation = 0;
    for (;;) {
        cv_start_.wait(lk, [&] {
            return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        lk.unlock();
        drain();
        lk.lock();
        if (--active_workers_ == 0) cv_done_.notify_all();
    }
}

void ThreadPool::drain() {
    t_in_parallel_region = true;
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_n_) break;
        try {
            (*job_fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!first_error_) first_error_ = std::current_exception();
        }
    }
    t_in_parallel_region = false;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1 || t_in_parallel_region) {
        // Serial path: a 1-lane pool, a single item, or a nested call from
        // inside an item. Runs the exact same per-index code.
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_fn_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        first_error_ = nullptr;
        active_workers_ = workers_.size();
        ++generation_;
    }
    cv_start_.notify_all();
    drain();  // the caller is lane 0
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return active_workers_ == 0; });
    if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace gcdr::exec
