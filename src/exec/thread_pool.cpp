#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace gcdr::exec {

namespace {
using MonoClock = std::chrono::steady_clock;

double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

std::int64_t elapsed_ns(MonoClock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               MonoClock::now() - t0)
        .count();
}
}  // namespace

namespace {
// 0 on the caller and on foreign threads; workers overwrite on startup.
thread_local std::size_t t_lane_index = 0;
// Set while a thread is inside drain(): nested parallel_for runs inline.
thread_local bool t_in_parallel_region = false;
}  // namespace

std::size_t ThreadPool::lane_index() { return t_lane_index; }

ThreadPool::ThreadPool(std::size_t n_threads) {
    if (n_threads == 0) {
        n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(n_threads - 1);
    for (std::size_t lane = 1; lane < n_threads; ++lane) {
        workers_.emplace_back([this, lane] { worker_main(lane); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(std::size_t lane) {
    t_lane_index = lane;
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen_generation = 0;
    for (;;) {
        cv_start_.wait(lk, [&] {
            return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        lk.unlock();
        drain();
        lk.lock();
        if (--active_workers_ == 0) cv_done_.notify_all();
    }
}

void ThreadPool::drain() {
    t_in_parallel_region = true;
    const bool timed = m_item_seconds_ != nullptr;
    const std::atomic<bool>* stop = job_stop_;
    const auto lane_t0 = timed ? MonoClock::now() : MonoClock::time_point{};
    for (;;) {
        if (stop && stop->load(std::memory_order_relaxed)) break;
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_n_) break;
        const auto item_t0 =
            timed ? MonoClock::now() : MonoClock::time_point{};
        try {
            (*job_fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        if (timed) m_item_seconds_->record(ns_to_s(elapsed_ns(item_t0)));
        if (stop) executed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (timed) busy_ns_.fetch_add(elapsed_ns(lane_t0),
                                  std::memory_order_relaxed);
    t_in_parallel_region = false;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const bool timed = m_job_seconds_ != nullptr;
    if (workers_.empty() || n == 1 || t_in_parallel_region) {
        // Serial path: a 1-lane pool, a single item, or a nested call from
        // inside an item. Runs the exact same per-index code.
        const auto t0 = timed ? MonoClock::now() : MonoClock::time_point{};
        for (std::size_t i = 0; i < n; ++i) {
            const auto item_t0 =
                timed ? MonoClock::now() : MonoClock::time_point{};
            fn(i);
            if (timed) {
                m_item_seconds_->record(ns_to_s(elapsed_ns(item_t0)));
            }
        }
        if (timed) {
            m_jobs_->inc();
            m_items_->inc(n);
            m_job_seconds_->record(ns_to_s(elapsed_ns(t0)));
            // No idle lanes on the serial path by construction; nested
            // calls fold into the enclosing job's utilization instead.
            if (!t_in_parallel_region) m_lane_utilization_->set(1.0);
        }
        return;
    }
    const auto job_t0 = timed ? MonoClock::now() : MonoClock::time_point{};
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_fn_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        first_error_ = nullptr;
        active_workers_ = workers_.size();
        ++generation_;
        busy_ns_.store(0, std::memory_order_relaxed);
        job_stop_ = nullptr;
    }
    cv_start_.notify_all();
    drain();  // the caller is lane 0
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return active_workers_ == 0; });
    if (timed) {
        const std::int64_t wall_ns = elapsed_ns(job_t0);
        m_jobs_->inc();
        m_items_->inc(n);
        m_job_seconds_->record(ns_to_s(wall_ns));
        if (wall_ns > 0) {
            const double busy =
                static_cast<double>(busy_ns_.load(std::memory_order_relaxed));
            m_lane_utilization_->set(
                busy / (static_cast<double>(size()) *
                        static_cast<double>(wall_ns)));
        }
    }
    if (first_error_) std::rethrow_exception(first_error_);
}

std::size_t ThreadPool::parallel_for_cancellable(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const std::atomic<bool>& stop) {
    if (n == 0) return 0;
    if (workers_.empty() || n == 1 || t_in_parallel_region) {
        // Serial path mirrors parallel_for's: same per-index code, with
        // the stop poll between items.
        std::size_t ran = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (stop.load(std::memory_order_relaxed)) break;
            fn(i);
            ++ran;
        }
        return ran;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_fn_ = &fn;
        job_n_ = n;
        next_.store(0, std::memory_order_relaxed);
        first_error_ = nullptr;
        active_workers_ = workers_.size();
        ++generation_;
        busy_ns_.store(0, std::memory_order_relaxed);
        job_stop_ = &stop;
        executed_.store(0, std::memory_order_relaxed);
    }
    cv_start_.notify_all();
    drain();  // the caller is lane 0
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return active_workers_ == 0; });
    job_stop_ = nullptr;
    const std::size_t ran = executed_.load(std::memory_order_relaxed);
    if (first_error_) std::rethrow_exception(first_error_);
    return ran;
}

void ThreadPool::attach_metrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
    if (!registry) {
        m_jobs_ = m_items_ = nullptr;
        m_job_seconds_ = m_item_seconds_ = nullptr;
        m_lanes_ = m_lane_utilization_ = nullptr;
        return;
    }
    m_jobs_ = &registry->counter(prefix + ".jobs");
    m_items_ = &registry->counter(prefix + ".items");
    m_job_seconds_ = &registry->histogram(prefix + ".job_seconds");
    m_item_seconds_ = &registry->histogram(prefix + ".item_seconds");
    m_lanes_ = &registry->gauge(prefix + ".lanes");
    m_lane_utilization_ = &registry->gauge(prefix + ".lane_utilization");
    m_lanes_->set(static_cast<double>(size()));
}

}  // namespace gcdr::exec
