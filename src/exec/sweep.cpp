#include "exec/sweep.hpp"

#include <cassert>
#include <utility>

namespace gcdr::exec {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
    // splitmix64 finalizer (Steele, Lea & Flood / Stafford mix13), the
    // same mixer Xoshiro256 uses to expand its seed. Feeding it
    // base + (index+1)*golden gives well-separated streams even for
    // base_seed = 0 and consecutive indices.
    std::uint64_t z = base_seed + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
    assert(!values.empty() && "sweep axis needs at least one value");
    axes_.push_back(SweepAxis{std::move(name), std::move(values)});
    return *this;
}

std::size_t SweepGrid::size() const {
    if (axes_.empty()) return 0;
    std::size_t n = 1;
    for (const auto& a : axes_) n *= a.values.size();
    return n;
}

SweepPoint SweepGrid::point(std::size_t flat_index,
                            std::uint64_t base_seed) const {
    assert(flat_index < size());
    SweepPoint p;
    p.index = flat_index;
    p.seed = derive_seed(base_seed, flat_index);
    p.idx.resize(axes_.size());
    p.value.resize(axes_.size());
    // Row-major, first axis slowest: peel from the last (fastest) axis.
    std::size_t rem = flat_index;
    for (std::size_t a = axes_.size(); a-- > 0;) {
        const std::size_t n = axes_[a].values.size();
        p.idx[a] = rem % n;
        p.value[a] = axes_[a].values[p.idx[a]];
        rem /= n;
    }
    return p;
}

}  // namespace gcdr::exec
