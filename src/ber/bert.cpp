#include "ber/bert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "jitter/jitter.hpp"

namespace gcdr::ber {

double ErrorCounter::ber_upper_bound(double confidence) const {
    assert(confidence > 0.0 && confidence < 1.0);
    if (bits_ == 0) return 1.0;
    const double n = static_cast<double>(bits_);
    if (errors_ == 0) {
        // Exact: (1-p)^n >= 1-confidence  =>  p <= -ln(1-conf)/n.
        return std::min(1.0, -std::log(1.0 - confidence) / n);
    }
    // Gaussian approximation around the point estimate.
    const double p = ber();
    const double z = q_inverse(1.0 - confidence);
    return std::min(1.0, p + z * std::sqrt(p * (1.0 - p) / n));
}

double extrapolate_ber_from_margins(const std::vector<double>& margins_ui) {
    if (margins_ui.size() < 64) return 1.0;
    // Margins are positive when the closing edge clears the sampler; an
    // error is margin < 0. Fit the lower tail and evaluate P(margin < 0).
    auto fit = jitter::fit_dual_dirac(margins_ui);
    double mean = 0.0;
    for (double m : margins_ui) mean += m;
    mean /= static_cast<double>(margins_ui.size());
    const double inner = mean - fit.dj_pp / 2.0;  // bounded-jitter edge
    if (fit.rj_rms <= 0.0) return inner < 0.0 ? 1.0 : 0.0;
    return std::pow(10.0, log10_q_function(std::max(0.0, inner) / fit.rj_rms));
}

double bits_needed_for(double ber_target, double confidence) {
    assert(ber_target > 0.0);
    return -std::log(1.0 - confidence) / ber_target;
}

}  // namespace gcdr::ber
