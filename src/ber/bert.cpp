#include "ber/bert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "jitter/jitter.hpp"

namespace gcdr::ber {

double ErrorCounter::ber_upper_bound(double confidence) const {
    assert(confidence > 0.0 && confidence < 1.0);
    if (bits_ == 0) return 1.0;
    const double n = static_cast<double>(bits_);
    if (errors_ == 0) {
        // Exact: (1-p)^n >= 1-confidence  =>  p <= -ln(1-conf)/n.
        return std::min(1.0, -std::log(1.0 - confidence) / n);
    }
    if (errors_ >= bits_) return 1.0;
    // Exact Clopper-Pearson: the smallest p with P(X <= k | p) <= 1-conf,
    // i.e. the (confidence)-quantile of Beta(k+1, n-k).
    const double k = static_cast<double>(errors_);
    return beta_inc_inv(k + 1.0, n - k, confidence);
}

ErrorCounter::Interval ErrorCounter::ber_interval(double confidence) const {
    assert(confidence > 0.0 && confidence < 1.0);
    Interval iv;
    if (bits_ == 0) return iv;  // vacuous [0, 1]
    const double n = static_cast<double>(bits_);
    const double k = static_cast<double>(errors_);
    const double alpha = 1.0 - confidence;
    if (errors_ > 0) {
        iv.lo = beta_inc_inv(k, n - k + 1.0, alpha / 2.0);
    }
    if (errors_ < bits_) {
        iv.hi = beta_inc_inv(k + 1.0, n - k, 1.0 - alpha / 2.0);
    }
    return iv;
}

double extrapolate_ber_from_margins(const std::vector<double>& margins_ui) {
    if (margins_ui.size() < 64) return 1.0;
    // Margins are positive when the closing edge clears the sampler; an
    // error is margin < 0. Fit the lower tail and evaluate P(margin < 0).
    auto fit = jitter::fit_dual_dirac(margins_ui);
    double mean = 0.0;
    for (double m : margins_ui) mean += m;
    mean /= static_cast<double>(margins_ui.size());
    const double inner = mean - fit.dj_pp / 2.0;  // bounded-jitter edge
    if (fit.rj_rms <= 0.0) return inner < 0.0 ? 1.0 : 0.0;
    return std::pow(10.0, log10_q_function(std::max(0.0, inner) / fit.rj_rms));
}

double bits_needed_for(double ber_target, double confidence) {
    assert(ber_target > 0.0);
    return -std::log(1.0 - confidence) / ber_target;
}

}  // namespace gcdr::ber
