#pragma once
// Bit-error-ratio test instrumentation.
//
// The paper quotes BER targets of 1e-12 — unreachable by direct counting in
// a behavioral simulation of 25k bits. The BERT therefore reports both the
// counted BER with its binomial confidence bound AND a Q-scale (dual-Dirac)
// extrapolation of the measured timing margins, which is how the behavioral
// eye results are compared against the statistical model's 1e-12 contours.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mathx.hpp"

namespace gcdr::ber {

/// Counted-error statistics.
class ErrorCounter {
public:
    void record(bool error) {
        ++bits_;
        if (error) ++errors_;
        if (m_bits_) {
            m_bits_->inc();
            if (error) m_errors_->inc();
        }
    }
    void record_bits(std::uint64_t bits, std::uint64_t errors) {
        bits_ += bits;
        errors_ += errors;
        if (m_bits_) {
            m_bits_->inc(bits);
            m_errors_->inc(errors);
        }
    }

    /// Telemetry: live "<prefix>.bits" / "<prefix>.errors" counters so a
    /// long run's error tally is visible in the report without waiting
    /// for the final ber() readout. Existing totals are carried over.
    void attach_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) {
        m_bits_ = &registry.counter(prefix + ".bits");
        m_errors_ = &registry.counter(prefix + ".errors");
        m_bits_->inc(bits_);
        m_errors_->inc(errors_);
    }

    [[nodiscard]] std::uint64_t bits() const { return bits_; }
    [[nodiscard]] std::uint64_t errors() const { return errors_; }
    [[nodiscard]] double ber() const {
        return bits_ ? static_cast<double>(errors_) /
                           static_cast<double>(bits_)
                     : 0.0;
    }

    /// One-sided upper confidence bound on the true BER at the given
    /// confidence level. Exact at every error count: the rule-of-3 closed
    /// form for zero errors (95%: BER < 3/N), the Clopper-Pearson bound
    /// (inverse incomplete beta) otherwise. The Gaussian approximation the
    /// bound used to fall back on is badly anti-conservative at the low
    /// error counts rare-event runs produce (k < ~20).
    [[nodiscard]] double ber_upper_bound(double confidence = 0.95) const;

    /// Two-sided exact Clopper-Pearson interval [lo, hi] on the true BER
    /// at the given confidence level. lo = 0 at zero errors, hi = 1 when
    /// every bit errored; no bits gives the vacuous [0, 1].
    struct Interval {
        double lo = 0.0;
        double hi = 1.0;
    };
    [[nodiscard]] Interval ber_interval(double confidence = 0.95) const;

    void reset() { bits_ = errors_ = 0; }

private:
    std::uint64_t bits_ = 0;
    std::uint64_t errors_ = 0;
    obs::Counter* m_bits_ = nullptr;
    obs::Counter* m_errors_ = nullptr;
};

/// Q-scale extrapolation: given the sampled timing margin population
/// (signed distance from each closing edge to the sampling instant, in UI),
/// estimate the BER floor via a dual-Dirac tail fit.
[[nodiscard]] double extrapolate_ber_from_margins(
    const std::vector<double>& margins_ui);

/// Number of error-free bits needed to certify `ber_target` at the given
/// confidence (rule-of-3 generalized): N = -ln(1-confidence)/BER.
[[nodiscard]] double bits_needed_for(double ber_target,
                                     double confidence = 0.95);

}  // namespace gcdr::ber
