#pragma once
// Full IBM 8b/10b line code (Widmer & Franaszek), as used by InfiniBand and
// the short-distance serial links the paper targets (Sec. 1, Sec. 2.3).
//
// Properties the CDR design relies on and the tests verify:
//  - DC balance via running disparity (RD) bookkeeping,
//  - run length (consecutive identical digits, CID) bounded by 5,
//  - comma sequences (in K28.5) for word alignment.
//
// Bit conventions: a 10-bit symbol is stored in a std::uint16_t with the
// first-transmitted bit 'a' in bit 9 (MSB) down to 'j' in bit 0, so
// serialization walks from bit 9 to bit 0.

#include <cstdint>
#include <optional>
#include <vector>

namespace gcdr::encoding {

/// Running disparity: either -1 or +1 between symbols.
enum class Disparity : int { kNegative = -1, kPositive = +1 };

/// An 8-bit code point: data (D.x.y) or control (K.x.y).
struct CodePoint {
    std::uint8_t byte = 0;
    bool is_control = false;

    friend bool operator==(const CodePoint&, const CodePoint&) = default;
};

/// K28.5: the comma character used for word alignment and elastic-buffer
/// skip management.
inline constexpr CodePoint kK28_5{0xBC, true};
/// K28.0: skip/idle filler.
inline constexpr CodePoint kK28_0{0x1C, true};

/// Returns true if `byte` is one of the 12 valid control code points.
[[nodiscard]] bool is_valid_control(std::uint8_t byte);

/// Stateful 8b/10b encoder tracking running disparity.
class Encoder8b10b {
public:
    explicit Encoder8b10b(Disparity initial = Disparity::kNegative)
        : rd_(initial) {}

    /// Encode one code point into a 10-bit symbol (bit 9 first on the wire).
    /// Control points must satisfy is_valid_control().
    [[nodiscard]] std::uint16_t encode(CodePoint cp);

    /// Encode a data byte.
    [[nodiscard]] std::uint16_t encode_data(std::uint8_t byte) {
        return encode(CodePoint{byte, false});
    }

    /// Serialize symbols to a bit stream, MSB ('a') first.
    [[nodiscard]] std::vector<bool> encode_stream(
        const std::vector<CodePoint>& cps);

    [[nodiscard]] Disparity running_disparity() const { return rd_; }

private:
    Disparity rd_;
};

/// Result of decoding one 10-bit symbol.
struct DecodeResult {
    CodePoint code;
    bool disparity_error = false;  // symbol legal but wrong RD column
};

/// Stateful 8b/10b decoder with code and disparity error detection.
class Decoder8b10b {
public:
    explicit Decoder8b10b(Disparity initial = Disparity::kNegative)
        : rd_(initial) {}

    /// Decode one symbol. nullopt => not a legal 10b code in either column.
    [[nodiscard]] std::optional<DecodeResult> decode(std::uint16_t symbol);

    [[nodiscard]] Disparity running_disparity() const { return rd_; }

private:
    Disparity rd_;
};

/// Scan a serial bit stream for the comma pattern (the singular sequence
/// 0011111 / 1100000 that only appears in K28.1/5/7); returns the bit index
/// where the first aligned 10-bit symbol starts, or nullopt.
[[nodiscard]] std::optional<std::size_t> find_comma_alignment(
    const std::vector<bool>& bits);

}  // namespace gcdr::encoding
