#include "encoding/runlength.hpp"

#include <cassert>
#include <cmath>

namespace gcdr::encoding {

std::size_t max_run_length(const std::vector<bool>& bits) {
    std::size_t best = 0, cur = 0;
    bool prev = false;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i == 0 || bits[i] == prev) {
            ++cur;
        } else {
            cur = 1;
        }
        prev = bits[i];
        if (cur > best) best = cur;
    }
    return best;
}

std::vector<std::size_t> run_length_histogram(const std::vector<bool>& bits) {
    std::vector<std::size_t> hist(max_run_length(bits) + 1, 0);
    std::size_t cur = 0;
    bool prev = false;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i == 0 || bits[i] == prev) {
            ++cur;
        } else {
            hist[cur]++;
            cur = 1;
        }
        prev = bits[i];
    }
    if (cur > 0) hist[cur]++;
    return hist;
}

std::vector<double> geometric_position_weights(std::size_t max_cid) {
    assert(max_cid >= 1);
    // For random NRZ data, P(position == k) = 2^-k, k >= 1. An encoding
    // that caps runs at max_cid redistributes the tail: every bit beyond
    // the cap would have forced a transition, so the truncated stream's
    // position distribution is the conditional geometric re-normalized.
    std::vector<double> w(max_cid);
    double total = 0.0;
    for (std::size_t k = 1; k <= max_cid; ++k) {
        w[k - 1] = std::pow(0.5, static_cast<double>(k));
        total += w[k - 1];
    }
    for (auto& v : w) v /= total;
    return w;
}

std::vector<double> empirical_position_weights(const std::vector<bool>& bits) {
    if (bits.size() < 2) return {};
    std::vector<std::size_t> counts;
    std::size_t pos = 0;  // 0 = before the first transition (skipped)
    std::size_t counted = 0;
    for (std::size_t i = 1; i < bits.size(); ++i) {
        if (bits[i] != bits[i - 1]) {
            pos = 1;
        } else if (pos > 0) {
            ++pos;
        } else {
            continue;  // leading run with no preceding transition
        }
        if (counts.size() < pos) counts.resize(pos, 0);
        counts[pos - 1]++;
        ++counted;
    }
    std::vector<double> w(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        w[i] = static_cast<double>(counts[i]) / static_cast<double>(counted);
    }
    return w;
}

}  // namespace gcdr::encoding
