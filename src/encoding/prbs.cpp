#include "encoding/prbs.hpp"

#include <cassert>

namespace gcdr::encoding {

namespace {
int second_tap(PrbsOrder order) {
    switch (order) {
        case PrbsOrder::kPrbs7: return 6;
        case PrbsOrder::kPrbs9: return 5;
        case PrbsOrder::kPrbs15: return 14;
        case PrbsOrder::kPrbs23: return 18;
        case PrbsOrder::kPrbs31: return 28;
    }
    return 0;
}
}  // namespace

PrbsGenerator::PrbsGenerator(PrbsOrder order, std::uint32_t seed)
    : order_(static_cast<int>(order)), tap_(second_tap(order)) {
    const std::uint32_t mask = (order_ == 31)
                                   ? 0x7FFFFFFFu
                                   : ((std::uint32_t{1} << order_) - 1);
    state_ = seed & mask;
    if (state_ == 0) state_ = mask;  // all-zero state is the LFSR fixed point
}

bool PrbsGenerator::next() {
    const bool out = (state_ >> (order_ - 1)) & 1u;
    const bool fb = out ^ ((state_ >> (tap_ - 1)) & 1u);
    state_ = ((state_ << 1) | static_cast<std::uint32_t>(fb)) &
             ((order_ == 31) ? 0x7FFFFFFFu
                             : ((std::uint32_t{1} << order_) - 1));
    return out;
}

std::vector<bool> PrbsGenerator::bits(std::size_t n) {
    std::vector<bool> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
    return out;
}

PrbsChecker::PrbsChecker(PrbsOrder order)
    : order_(static_cast<int>(order)), tap_(second_tap(order)) {}

bool PrbsChecker::predict_and_shift(bool actual) {
    const bool predicted =
        (((shift_ >> (order_ - 1)) ^ (shift_ >> (tap_ - 1))) & 1u) != 0;
    shift_ = ((shift_ << 1) | static_cast<std::uint32_t>(actual)) &
             ((order_ == 31) ? 0x7FFFFFFFu
                             : ((std::uint32_t{1} << order_) - 1));
    return predicted;
}

bool PrbsChecker::feed(bool bit) {
    if (!locked_) {
        // Fill the register from the line, then verify a probation window:
        // with the register seeded from received data, a clean stream
        // predicts itself exactly.
        predict_and_shift(bit);
        if (++warmup_ >= 2 * order_) locked_ = true;
        return true;
    }
    const bool predicted = predict_and_shift(bit);
    ++checked_;
    if (predicted != bit) {
        ++errors_;
        return false;
    }
    return true;
}

}  // namespace gcdr::encoding
