#pragma once
// Run-length (consecutive identical digits, CID) analysis.
//
// The gated-oscillator CDR resynchronizes on every data edge; between edges
// the oscillator free-runs and its jitter plus any frequency offset
// accumulate over the run (Sec. 2.3). The statistical BER model therefore
// weights the per-position error probability by how often a bit sits k
// positions after the last transition. This module provides those weights,
// both theoretical (random data, truncated at a CID cap) and empirical
// (measured from an actual bit stream).

#include <cstddef>
#include <vector>

namespace gcdr::encoding {

/// Longest run of identical consecutive bits in `bits`.
[[nodiscard]] std::size_t max_run_length(const std::vector<bool>& bits);

/// Histogram of run lengths: result[L] = number of runs of exactly L bits
/// (result[0] unused).
[[nodiscard]] std::vector<std::size_t> run_length_histogram(
    const std::vector<bool>& bits);

/// P(bit is the k-th bit after the preceding transition), k = 1..max_cid,
/// for ideal random data truncated at max_cid (8b/10b: max_cid = 5; the
/// remaining tail mass is folded onto the cap). Sums to 1.
[[nodiscard]] std::vector<double> geometric_position_weights(
    std::size_t max_cid);

/// Same weights measured from an actual stream (PRBS, 8b/10b, ...).
/// result[k-1] = fraction of bits at position k after a transition, up to
/// the longest run present.
[[nodiscard]] std::vector<double> empirical_position_weights(
    const std::vector<bool>& bits);

}  // namespace gcdr::encoding
