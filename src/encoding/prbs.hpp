#pragma once
// Pseudo-random binary sequence generators (Fibonacci LFSRs).
//
// The paper's eye diagrams (Figs 14/16/18) use PRBS7, chosen deliberately:
// PRBS7 exhibits longer runs (up to 7 consecutive identical digits) than an
// 8b/10b stream (<= 5), so it stresses the gated oscillator's free-running
// drift harder than the real line code would.

#include <cstdint>
#include <vector>

namespace gcdr::encoding {

/// ITU-T standard PRBS polynomials.
enum class PrbsOrder : int {
    kPrbs7 = 7,    // x^7 + x^6 + 1, period 127
    kPrbs9 = 9,    // x^9 + x^5 + 1, period 511
    kPrbs15 = 15,  // x^15 + x^14 + 1, period 32767
    kPrbs23 = 23,  // x^23 + x^18 + 1, period 8388607
    kPrbs31 = 31,  // x^31 + x^28 + 1, period 2^31 - 1
};

/// Fibonacci LFSR PRBS source. Deterministic; period 2^order - 1.
class PrbsGenerator {
public:
    explicit PrbsGenerator(PrbsOrder order, std::uint32_t seed = 0);

    /// Next bit of the sequence.
    bool next();

    /// Generate n bits.
    [[nodiscard]] std::vector<bool> bits(std::size_t n);

    [[nodiscard]] int order() const { return order_; }
    [[nodiscard]] std::uint64_t period() const {
        return (std::uint64_t{1} << order_) - 1;
    }
    [[nodiscard]] std::uint32_t state() const { return state_; }

private:
    int order_;
    int tap_;  // second feedback tap (first is the MSB = order)
    std::uint32_t state_;
};

/// Self-synchronizing PRBS checker: locks onto an incoming PRBS stream and
/// counts bit errors after lock. Mirrors hardware BERT pattern checkers.
class PrbsChecker {
public:
    explicit PrbsChecker(PrbsOrder order);

    /// Feed one received bit. Returns true if the bit matched the locally
    /// re-generated sequence (only meaningful once locked()).
    bool feed(bool bit);

    [[nodiscard]] bool locked() const { return locked_; }
    [[nodiscard]] std::uint64_t bits_checked() const { return checked_; }
    [[nodiscard]] std::uint64_t errors() const { return errors_; }
    [[nodiscard]] double ber() const {
        return checked_ ? static_cast<double>(errors_) /
                              static_cast<double>(checked_)
                        : 0.0;
    }

private:
    bool predict_and_shift(bool actual);

    int order_;
    int tap_;
    std::uint32_t shift_ = 0;
    int warmup_ = 0;       // bits consumed to fill the register
    bool locked_ = false;
    std::uint64_t checked_ = 0;
    std::uint64_t errors_ = 0;
};

}  // namespace gcdr::encoding
