#include "encoding/enc8b10b.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>

namespace gcdr::encoding {

namespace {

// 5b/6b table, RD- column, "abcdei" with 'a' in bit 5.
constexpr std::array<std::uint8_t, 32> kD6Neg = {
    0b100111, 0b011101, 0b101101, 0b110001, 0b110101, 0b101001, 0b011001,
    0b111000, 0b111001, 0b100101, 0b010101, 0b110100, 0b001101, 0b101100,
    0b011100, 0b010111, 0b011011, 0b100011, 0b010011, 0b110010, 0b001011,
    0b101010, 0b011010, 0b111010, 0b110011, 0b100110, 0b010110, 0b110110,
    0b001110, 0b101110, 0b011110, 0b101011,
};

// 3b/4b table for data, RD- column, "fghj" with 'f' in bit 3. Index 7 is
// the primary (P7) encoding; the alternate (A7) is handled separately.
constexpr std::array<std::uint8_t, 8> kD4Neg = {
    0b1011, 0b1001, 0b0101, 0b1100, 0b1101, 0b1010, 0b0110, 0b1110,
};
constexpr std::uint8_t kA7Neg = 0b0111;

// K-code sub-block tables (RD- column). Only x in {23,27,28,29,30} exist.
constexpr std::uint8_t k6_neg_for_x(std::uint8_t x) {
    switch (x) {
        case 23: return 0b111010;
        case 27: return 0b110110;
        case 28: return 0b001111;
        case 29: return 0b101110;
        case 30: return 0b011110;
        default: return 0;  // invalid, guarded by is_valid_control
    }
}

constexpr std::array<std::uint8_t, 8> kK4Neg = {
    0b1011, 0b0110, 0b1010, 0b1100, 0b1101, 0b0101, 0b1001, 0b0111,
};

int popcount6(std::uint8_t v) { return std::popcount(static_cast<unsigned>(v & 0x3F)); }
int popcount4(std::uint8_t v) { return std::popcount(static_cast<unsigned>(v & 0x0F)); }

// RD+ column of a 6b sub-block: complement when unbalanced; balanced codes
// keep their RD- form except D.07 / K.28, which flip despite being balanced.
std::uint8_t d6_pos(std::uint8_t x) {
    const std::uint8_t neg = kD6Neg[x];
    if (popcount6(neg) != 3 || x == 7) return static_cast<std::uint8_t>(~neg & 0x3F);
    return neg;
}

std::uint8_t d4_pos(std::uint8_t y) {
    const std::uint8_t neg = kD4Neg[y];
    if (popcount4(neg) != 2 || y == 3) return static_cast<std::uint8_t>(~neg & 0x0F);
    return neg;
}

// A7 replaces P7 to avoid five-bit runs across the sub-block boundary.
bool use_alternate7(Disparity rd_after6, std::uint8_t x) {
    if (rd_after6 == Disparity::kNegative) {
        return x == 17 || x == 18 || x == 20;
    }
    return x == 11 || x == 13 || x == 14;
}

Disparity advance(Disparity rd, int block_popcount, int block_width) {
    const int disp = 2 * block_popcount - block_width;
    if (disp == 0) return rd;
    return disp > 0 ? Disparity::kPositive : Disparity::kNegative;
}

struct SymbolInfo {
    CodePoint code;
    Disparity end_rd;
};

// symbol -> per-start-RD decode info, built once by running the encoder
// over the full code space. Index 0: start RD-, index 1: start RD+.
using DecodeTable = std::map<std::uint16_t, std::array<std::optional<SymbolInfo>, 2>>;

const DecodeTable& decode_table() {
    static const DecodeTable table = [] {
        DecodeTable t;
        auto add = [&t](CodePoint cp, Disparity start) {
            Encoder8b10b enc(start);
            const std::uint16_t sym = enc.encode(cp);
            auto& slot = t[sym][start == Disparity::kNegative ? 0 : 1];
            // The code space is a bijection per column; collisions would be
            // a table bug and are asserted against in tests.
            slot = SymbolInfo{cp, enc.running_disparity()};
        };
        for (int b = 0; b < 256; ++b) {
            add(CodePoint{static_cast<std::uint8_t>(b), false},
                Disparity::kNegative);
            add(CodePoint{static_cast<std::uint8_t>(b), false},
                Disparity::kPositive);
        }
        for (int b = 0; b < 256; ++b) {
            const auto byte = static_cast<std::uint8_t>(b);
            if (!is_valid_control(byte)) continue;
            add(CodePoint{byte, true}, Disparity::kNegative);
            add(CodePoint{byte, true}, Disparity::kPositive);
        }
        return t;
    }();
    return table;
}

}  // namespace

bool is_valid_control(std::uint8_t byte) {
    const std::uint8_t x = byte & 0x1F;
    const std::uint8_t y = byte >> 5;
    if (x == 28) return true;  // K.28.0 .. K.28.7
    return y == 7 && (x == 23 || x == 27 || x == 29 || x == 30);
}

std::uint16_t Encoder8b10b::encode(CodePoint cp) {
    const std::uint8_t x = cp.byte & 0x1F;
    const std::uint8_t y = cp.byte >> 5;

    std::uint8_t six;
    std::uint8_t four;
    if (cp.is_control) {
        if (!is_valid_control(cp.byte)) {
            throw std::invalid_argument("invalid 8b/10b control code point");
        }
        const std::uint8_t six_neg = k6_neg_for_x(x);
        six = (rd_ == Disparity::kNegative)
                  ? six_neg
                  : static_cast<std::uint8_t>(~six_neg & 0x3F);
        const Disparity rd6 = advance(rd_, popcount6(six), 6);
        const std::uint8_t four_neg = kK4Neg[y];
        // K 4b codes always swap with RD (including the balanced ones).
        four = (rd6 == Disparity::kNegative)
                   ? four_neg
                   : static_cast<std::uint8_t>(~four_neg & 0x0F);
        rd_ = advance(rd6, popcount4(four), 4);
    } else {
        six = (rd_ == Disparity::kNegative) ? kD6Neg[x] : d6_pos(x);
        const Disparity rd6 = advance(rd_, popcount6(six), 6);
        if (y == 7 && use_alternate7(rd6, x)) {
            four = (rd6 == Disparity::kNegative)
                       ? kA7Neg
                       : static_cast<std::uint8_t>(~kA7Neg & 0x0F);
        } else {
            four = (rd6 == Disparity::kNegative) ? kD4Neg[y] : d4_pos(y);
        }
        rd_ = advance(rd6, popcount4(four), 4);
    }
    return static_cast<std::uint16_t>((six << 4) | four);
}

std::vector<bool> Encoder8b10b::encode_stream(
    const std::vector<CodePoint>& cps) {
    std::vector<bool> bits;
    bits.reserve(cps.size() * 10);
    for (const auto& cp : cps) {
        const std::uint16_t sym = encode(cp);
        for (int b = 9; b >= 0; --b) bits.push_back((sym >> b) & 1u);
    }
    return bits;
}

std::optional<DecodeResult> Decoder8b10b::decode(std::uint16_t symbol) {
    const auto& table = decode_table();
    const auto it = table.find(symbol);
    if (it == table.end()) {
        // Illegal symbol. Track disparity from raw popcount so follow-on
        // symbols are still judged sensibly.
        const int pc = std::popcount(static_cast<unsigned>(symbol & 0x3FF));
        if (pc != 5) rd_ = (pc > 5) ? Disparity::kPositive : Disparity::kNegative;
        return std::nullopt;
    }
    const int want = (rd_ == Disparity::kNegative) ? 0 : 1;
    if (const auto& hit = it->second[want]) {
        rd_ = hit->end_rd;
        return DecodeResult{hit->code, false};
    }
    const auto& other = it->second[1 - want];
    assert(other.has_value());
    rd_ = other->end_rd;
    return DecodeResult{other->code, true};
}

std::optional<std::size_t> find_comma_alignment(const std::vector<bool>& bits) {
    // Comma: 0011111 or 1100000 ("singular" sequence; first bit = symbol
    // start). Appears only in K28.1/K28.5/K28.7.
    if (bits.size() < 7) return std::nullopt;
    for (std::size_t i = 0; i + 7 <= bits.size(); ++i) {
        const bool b0 = bits[i];
        if (bits[i + 1] != b0) continue;
        bool ok = true;
        for (std::size_t k = 2; k < 7; ++k) {
            if (bits[i + k] == b0) {
                ok = false;
                break;
            }
        }
        if (ok) return i;
    }
    return std::nullopt;
}

}  // namespace gcdr::encoding
