#include "gates/delay_line.hpp"

#include <cassert>

namespace gcdr::gates {

DelayLine::DelayLine(sim::Scheduler& sched, Rng& rng, sim::Wire& in,
                     std::size_t n_cells, CmlTiming per_cell,
                     const std::string& name_prefix)
    : per_cell_(per_cell) {
    assert(n_cells >= 1);
    sim::Wire* prev = &in;
    for (std::size_t i = 0; i < n_cells; ++i) {
        nodes_.push_back(std::make_unique<sim::Wire>(
            sched, name_prefix + "_n" + std::to_string(i + 1), in.value()));
        cells_.push_back(std::make_unique<CmlBuffer>(sched, rng, *prev,
                                                     *nodes_.back(),
                                                     per_cell));
        prev = nodes_.back().get();
    }
}

}  // namespace gcdr::gates
