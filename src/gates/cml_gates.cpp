#include "gates/cml_gates.hpp"

#include "gates/cml_equations.hpp"

namespace gcdr::gates {

SimTime jittered_delay(const CmlTiming& t, Rng& rng) {
    // Draw discipline: consume a normal exactly when jitter is enabled.
    // The batched kernel follows the same rule, so RNG stream positions
    // line up event for event.
    const double z = t.jitter_rel > 0.0 ? rng.gaussian() : 0.0;
    return SimTime::fs(
        eq::cml_delay_fs(t.delay.femtoseconds(), t.jitter_rel, z));
}

CmlBuffer::CmlBuffer(sim::Scheduler& sched, Rng& rng, sim::Wire& in,
                     sim::Wire& out, CmlTiming timing, bool invert)
    : CmlGate(sched, rng),
      in_(&in),
      out_(&out),
      timing_(timing),
      invert_(invert) {
    in_->on_change([this] { evaluate(); });
}

void CmlBuffer::evaluate() {
    out_->post_transport(jittered_delay(timing_, *rng_),
                         eq::buffer_value(in_->value(), invert_));
}

CmlXor::CmlXor(sim::Scheduler& sched, Rng& rng, sim::Wire& a, sim::Wire& b,
               sim::Wire& out, CmlTiming timing_a, CmlTiming timing_b,
               bool invert)
    : CmlGate(sched, rng),
      a_(&a),
      b_(&b),
      out_(&out),
      timing_a_(timing_a),
      timing_b_(timing_b),
      invert_(invert) {
    a_->on_change([this] { evaluate(timing_a_); });
    b_->on_change([this] { evaluate(timing_b_); });
}

void CmlXor::evaluate(const CmlTiming& timing) {
    const bool v = eq::xor_value(a_->value(), b_->value(), invert_);
    out_->post_transport(jittered_delay(timing, *rng_), v);
}

CmlAnd::CmlAnd(sim::Scheduler& sched, Rng& rng, sim::Wire& a, sim::Wire& b,
               sim::Wire& out, CmlTiming timing_a, CmlTiming timing_b,
               bool invert)
    : CmlGate(sched, rng),
      a_(&a),
      b_(&b),
      out_(&out),
      timing_a_(timing_a),
      timing_b_(timing_b),
      invert_(invert) {
    a_->on_change([this] { evaluate(timing_a_); });
    b_->on_change([this] { evaluate(timing_b_); });
}

void CmlAnd::evaluate(const CmlTiming& timing) {
    const bool v = eq::and_value(a_->value(), b_->value(), invert_);
    out_->post_transport(jittered_delay(timing, *rng_), v);
}

CmlSampler::CmlSampler(sim::Scheduler& sched, Rng& rng, sim::Wire& d,
                       sim::Wire& clk, sim::Wire& q, CmlTiming clk_to_q,
                       DecisionFn on_decision)
    : CmlGate(sched, rng),
      d_(&d),
      clk_(&clk),
      q_(&q),
      clk_to_q_(clk_to_q),
      on_decision_(std::move(on_decision)) {
    clk_->on_change([this] { on_clk(); });
}

void CmlSampler::on_clk() {
    if (!clk_->value()) return;  // rising edges only
    const bool bit = d_->value();
    const SimTime now = sched_->now();
    q_->post_transport(jittered_delay(clk_to_q_, *rng_), bit);
    if (on_decision_) on_decision_(now, bit);
}

}  // namespace gcdr::gates
