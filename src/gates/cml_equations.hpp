#pragma once
// Pure per-gate update equations, shared between the scalar event path
// (gates/cml_gates.cpp, which wraps them in Wire/Scheduler plumbing) and
// the batched SoA kernel (sim/batch/, which inlines them into flat lane
// loops). Keeping both paths on the same arithmetic is what makes the
// lane-granular bit-identity contract hold: any change here changes both
// simulators identically, and any drift between the paths is a bug.
//
// All functions are branch-pure on their arguments: no RNG, no time, no
// wire access. Jitter enters as a pre-drawn standard-normal z, and the
// CALLER owns the draw-discipline rule (draw exactly when jitter > 0,
// never otherwise), because the RNG stream position is part of the
// bit-identity contract.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/fast_round.hpp"

namespace gcdr::gates::eq {

/// Jittered CML gate delay in integer femtoseconds. With jitter_rel <= 0
/// the nominal delay passes through (clamped to >= 1 fs so transport
/// ordering is preserved); otherwise the delay is scaled by
/// (1 + jitter_rel * z) with z ~ N(0,1) drawn by the caller. Matches
/// gates::jittered_delay bit-for-bit: Rng::gaussian(0, sigma) expands to
/// 0.0 + sigma * z, and 0.0 + x == x for every finite x the pipeline can
/// produce.
[[nodiscard]] inline std::int64_t cml_delay_fs(std::int64_t delay_fs,
                                               double jitter_rel, double z) {
    if (jitter_rel <= 0.0) return std::max<std::int64_t>(delay_fs, 1);
    const double factor = 1.0 + jitter_rel * z;
    const std::int64_t fs =
        util::llround_i64(static_cast<double>(delay_fs) * factor);
    return std::max<std::int64_t>(1, fs);
}

[[nodiscard]] inline bool buffer_value(bool in, bool invert) {
    return in != invert;
}

[[nodiscard]] inline bool xor_value(bool a, bool b, bool invert) {
    return (a != b) != invert;
}

[[nodiscard]] inline bool and_value(bool a, bool b, bool invert) {
    return (a && b) != invert;
}

}  // namespace gcdr::gates::eq
