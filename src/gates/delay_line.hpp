#pragma once
// Chain of identical CML delay cells — the edge detector's delay element.

#include <memory>
#include <string>
#include <vector>

#include "gates/cml_gates.hpp"

namespace gcdr::gates {

/// N identical buffers in series; total nominal delay = n * per-cell delay.
/// Each cell injects its own per-edge jitter (the paper's VHDL model
/// computes every cell's phase noise independently, Sec. 3.3).
class DelayLine {
public:
    DelayLine(sim::Scheduler& sched, Rng& rng, sim::Wire& in,
              std::size_t n_cells, CmlTiming per_cell,
              const std::string& name_prefix = "dl");

    [[nodiscard]] sim::Wire& out() { return *nodes_.back(); }
    [[nodiscard]] std::size_t cells() const { return cells_.size(); }
    [[nodiscard]] SimTime nominal_delay() const {
        return per_cell_.delay * static_cast<std::int64_t>(cells_.size());
    }

private:
    CmlTiming per_cell_;
    std::vector<std::unique_ptr<sim::Wire>> nodes_;
    std::vector<std::unique_ptr<CmlBuffer>> cells_;
};

}  // namespace gcdr::gates
