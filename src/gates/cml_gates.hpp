#pragma once
// Behavioral models of the fully-differential current-mode-logic gates the
// design is built from (Sec. 2.2: "All delay cells in the delay line and
// the ring oscillator are built with identical current-mode logic two-input
// gates"). Differential pairs are modeled single-ended on the true rail;
// where the paper inverts a differential output "for free", the model reads
// the complement of the wire.
//
// Each gate re-evaluates on any input change and posts its output with a
// transport delay of  nominal * (1 + N(0, jitter_rel))  — the same per-
// evaluation jitter injection as the VHDL model in Fig 12. Stacked CML
// inputs see different input-to-output delays (Sec. 3.3a); per-input
// mismatch is modeled with an additive offset.

#include <functional>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/wire.hpp"
#include "util/rng.hpp"

namespace gcdr::gates {

/// Timing of one CML gate evaluation path.
struct CmlTiming {
    SimTime delay{0};        ///< nominal propagation delay
    double jitter_rel = 0.0; ///< sigma of the relative delay variation
};

/// Draw one jittered delay (>= 1 fs so causality holds).
[[nodiscard]] SimTime jittered_delay(const CmlTiming& t, Rng& rng);

/// Common base wiring: owns nothing, connects existing wires.
class CmlGate {
public:
    virtual ~CmlGate() = default;

protected:
    CmlGate(sim::Scheduler& sched, Rng& rng) : sched_(&sched), rng_(&rng) {}
    sim::Scheduler* sched_;
    Rng* rng_;
};

/// Buffer / delay cell: out follows in after the (jittered) delay.
class CmlBuffer : public CmlGate {
public:
    CmlBuffer(sim::Scheduler& sched, Rng& rng, sim::Wire& in, sim::Wire& out,
              CmlTiming timing, bool invert = false);

private:
    void evaluate();

    sim::Wire* in_;
    sim::Wire* out_;
    CmlTiming timing_;
    bool invert_;
};

/// Two-input XOR (the edge detector comparator). Separate per-input
/// timings model the stacked-pair delay mismatch; `invert` yields XNOR,
/// which is how EDET is generated (free differential inversion).
class CmlXor : public CmlGate {
public:
    CmlXor(sim::Scheduler& sched, Rng& rng, sim::Wire& a, sim::Wire& b,
           sim::Wire& out, CmlTiming timing_a, CmlTiming timing_b,
           bool invert = false);

private:
    void evaluate(const CmlTiming& timing);

    sim::Wire* a_;
    sim::Wire* b_;
    sim::Wire* out_;
    CmlTiming timing_a_;
    CmlTiming timing_b_;
    bool invert_;
};

/// Two-input AND/NAND with per-input timing (the oscillator's gating
/// stage). The paper compensates the NAND input mismatch with dummy gates;
/// setting both timings equal models the compensated design, distinct
/// timings model the uncompensated one (a VHDL-model finding, Sec. 3.3a).
class CmlAnd : public CmlGate {
public:
    CmlAnd(sim::Scheduler& sched, Rng& rng, sim::Wire& a, sim::Wire& b,
           sim::Wire& out, CmlTiming timing_a, CmlTiming timing_b,
           bool invert = false);

private:
    void evaluate(const CmlTiming& timing);

    sim::Wire* a_;
    sim::Wire* b_;
    sim::Wire* out_;
    CmlTiming timing_a_;
    CmlTiming timing_b_;
    bool invert_;
};

/// Decision flip-flop: samples `d` on each rising edge of `clk` after a
/// clk->q delay. Also reports each (time, bit) decision to a callback —
/// that is the recovered data stream the BERT checks.
class CmlSampler : public CmlGate {
public:
    using DecisionFn = std::function<void(SimTime, bool)>;

    CmlSampler(sim::Scheduler& sched, Rng& rng, sim::Wire& d, sim::Wire& clk,
               sim::Wire& q, CmlTiming clk_to_q, DecisionFn on_decision = {});

private:
    void on_clk();

    sim::Wire* d_;
    sim::Wire* clk_;
    sim::Wire* q_;
    CmlTiming clk_to_q_;
    DecisionFn on_decision_;
};

}  // namespace gcdr::gates
