#pragma once
// Nonlinear DC and transient analysis over a Circuit: Newton-Raphson on the
// MNA equations; capacitors use backward-Euler companion models (A-stable,
// appropriate for stiff CML RC nets); MOSFETs contribute their linearized
// square-law companion at each Newton iteration.

#include <vector>

#include "analog/circuit.hpp"

namespace gcdr::analog {

struct SimOptions {
    double gmin = 1e-9;        ///< conductance from every node to ground
    int max_newton_iters = 200;
    double abstol_v = 1e-6;    ///< Newton convergence on node voltages
    int gmin_steps = 8;        ///< gmin-stepping stages for hard DC points
};

class TransientSim {
public:
    explicit TransientSim(const Circuit& ckt, SimOptions opts = {});

    /// DC operating point at t = 0 (capacitors open). Returns false if
    /// Newton fails even with gmin stepping.
    bool solve_dc();

    /// Advance one backward-Euler step of `dt` seconds.
    bool step(double dt_s);

    /// Run until `t_end`, fixed step, invoking `probe(sim)` after each step
    /// if provided.
    template <typename Fn>
    bool run_until(double t_end_s, double dt_s, Fn&& probe) {
        while (t_ < t_end_s) {
            if (!step(dt_s)) return false;
            probe(*this);
        }
        return true;
    }
    bool run_until(double t_end_s, double dt_s) {
        return run_until(t_end_s, dt_s, [](const TransientSim&) {});
    }

    /// Node voltage (ground = 0 V).
    [[nodiscard]] double v(NodeId n) const {
        return n == kGround ? 0.0 : x_[n - 1];
    }
    [[nodiscard]] double time_s() const { return t_; }

    /// Drain current of MOSFET index `i` at the present solution.
    [[nodiscard]] double mosfet_id(std::size_t i) const;

private:
    bool newton_solve(double t_s, double dt_s, bool dc, double gmin);

    const Circuit* ckt_;
    SimOptions opts_;
    int n_;                      ///< unknown count
    std::vector<double> x_;      ///< current solution
    std::vector<double> x_prev_; ///< previous accepted timestep
    double t_ = 0.0;
};

}  // namespace gcdr::analog
