#include "analog/circuit.hpp"

#include <cassert>
#include <cmath>

namespace gcdr::analog {

NodeId Circuit::node(const std::string& name) {
    if (name == "0" || name == "gnd") return kGround;
    const auto it = names_.find(name);
    if (it != names_.end()) return it->second;
    const NodeId id = next_node_++;
    names_.emplace(name, id);
    return id;
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
    assert(ohms > 0.0);
    r_.push_back(Resistor{a, b, ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
    assert(farads > 0.0);
    c_.push_back(Capacitor{a, b, farads});
}

void Circuit::add_current_source(NodeId from, NodeId to, double amps) {
    add_current_source(from, to, [amps](double) { return amps; });
}

void Circuit::add_current_source(NodeId from, NodeId to, Waveform amps) {
    i_.push_back(CurrentSource{from, to, std::move(amps)});
}

void Circuit::add_voltage_source(NodeId pos, NodeId neg, double volts) {
    add_voltage_source(pos, neg, [volts](double) { return volts; });
}

void Circuit::add_voltage_source(NodeId pos, NodeId neg, Waveform volts) {
    const int branch = static_cast<int>(v_.size());
    v_.push_back(VoltageSource{pos, neg, std::move(volts), branch});
}

void Circuit::add_mosfet(NodeId d, NodeId g, NodeId s, const MosParams& p) {
    m_.push_back(Mosfet{d, g, s, p});
}

bool solve_dense(std::vector<double>& a, std::vector<double>& b, int n) {
    assert(static_cast<int>(a.size()) == n * n);
    assert(static_cast<int>(b.size()) == n);
    for (int col = 0; col < n; ++col) {
        // Partial pivot.
        int pivot = col;
        double best = std::abs(a[col * n + col]);
        for (int row = col + 1; row < n; ++row) {
            const double v = std::abs(a[row * n + col]);
            if (v > best) {
                best = v;
                pivot = row;
            }
        }
        if (best < 1e-14) return false;
        if (pivot != col) {
            for (int k = col; k < n; ++k) {
                std::swap(a[col * n + k], a[pivot * n + k]);
            }
            std::swap(b[col], b[pivot]);
        }
        const double diag = a[col * n + col];
        for (int row = col + 1; row < n; ++row) {
            const double factor = a[row * n + col] / diag;
            if (factor == 0.0) continue;
            for (int k = col; k < n; ++k) {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    for (int row = n - 1; row >= 0; --row) {
        double acc = b[row];
        for (int k = row + 1; k < n; ++k) {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    return true;
}

}  // namespace gcdr::analog
