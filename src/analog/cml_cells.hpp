#pragma once
// Transistor-level CML cell netlists (the paper's Sec. 4 design style):
// differential pairs with resistive loads and an ideal tail current sink.
// Cells compose into the edge-detector data path and the gated ring
// oscillator for the Fig 18 "transistor-level eye" experiment.

#include <string>
#include <vector>

#include "analog/circuit.hpp"

namespace gcdr::analog {

/// Shared electrical parameters of one CML cell (typical values for a
/// 0.18 um, 1.8 V process with 400 mV swing at 200 uA).
struct CmlCellParams {
    double vdd_v = 1.8;
    double r_load_ohm = 2000.0;
    double i_ss_a = 200e-6;
    double c_load_f = 36e-15;   ///< per-output load (sets the stage delay)
    double pair_w_over_l = 20.0;

    [[nodiscard]] double swing_v() const { return r_load_ohm * i_ss_a; }
    /// First-order stage delay: 0.69 * R * C.
    [[nodiscard]] double stage_delay_s() const {
        return 0.6931 * r_load_ohm * c_load_f;
    }
};

/// Differential net handle.
struct DiffNet {
    NodeId p, n;
};

/// Netlist builder for CML logic on a shared supply rail.
class CmlNetlist {
public:
    CmlNetlist(Circuit& ckt, CmlCellParams params);

    [[nodiscard]] Circuit& circuit() { return *ckt_; }
    [[nodiscard]] const CmlCellParams& params() const { return params_; }
    [[nodiscard]] NodeId vdd() const { return vdd_; }

    /// Create a named differential net ("x" -> nodes "x_p"/"x_n").
    [[nodiscard]] DiffNet net(const std::string& name);

    /// Buffer / delay cell: out = in after one stage delay.
    void buffer(DiffNet in, DiffNet out);
    /// 2-input AND (series-gated): out = a & b.
    void and2(DiffNet a, DiffNet b, DiffNet out);
    /// 2-input XOR (series-gated): out = a ^ b.
    void xor2(DiffNet a, DiffNet b, DiffNet out);

    /// Chain of `n` buffers from `in`; returns the final output net.
    [[nodiscard]] DiffNet delay_line(DiffNet in, int n,
                                     const std::string& prefix);

    /// Ideal differential NRZ driver with finite rise/fall time: drives
    /// `out` with the bit sequence at `ui_s` seconds per bit, swinging
    /// between vdd - swing and vdd (CML levels).
    void drive_nrz(DiffNet out, std::vector<bool> bits, double ui_s,
                   double rise_s);

private:
    void loads(DiffNet out);

    Circuit* ckt_;
    CmlCellParams params_;
    NodeId vdd_;
    int auto_net_ = 0;
};

/// Transistor-level gated ring oscillator: 4 CML stages, stage 1 gated by
/// `trig` through a series AND path (Fig 7 at transistor level).
struct CmlRing {
    DiffNet stage1, stage2, stage3, stage4;
    DiffNet ckout;  ///< = stage4 inverted (complement wiring, no extra gate)
};
[[nodiscard]] CmlRing build_cml_ring(CmlNetlist& nl, DiffNet trig,
                                     const std::string& prefix = "ring");

/// Helper for eye probing: differential voltage of a net.
[[nodiscard]] double diff_v(const class TransientSim& sim, DiffNet n);

}  // namespace gcdr::analog
