#include "analog/cml_cells.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analog/transient.hpp"

namespace gcdr::analog {

CmlNetlist::CmlNetlist(Circuit& ckt, CmlCellParams params)
    : ckt_(&ckt), params_(params) {
    vdd_ = ckt_->node("vdd");
    ckt_->add_voltage_source(vdd_, kGround, params_.vdd_v);
}

DiffNet CmlNetlist::net(const std::string& name) {
    return DiffNet{ckt_->node(name + "_p"), ckt_->node(name + "_n")};
}

void CmlNetlist::loads(DiffNet out) {
    ckt_->add_resistor(vdd_, out.p, params_.r_load_ohm);
    ckt_->add_resistor(vdd_, out.n, params_.r_load_ohm);
    ckt_->add_capacitor(out.p, kGround, params_.c_load_f);
    ckt_->add_capacitor(out.n, kGround, params_.c_load_f);
}

void CmlNetlist::buffer(DiffNet in, DiffNet out) {
    loads(out);
    const NodeId tail = ckt_->node("t" + std::to_string(auto_net_++));
    const auto mos = MosParams::nmos_018(params_.pair_w_over_l);
    // in.p high steers current into out.n's load -> out.n low, out.p high.
    ckt_->add_mosfet(out.n, in.p, tail, mos);
    ckt_->add_mosfet(out.p, in.n, tail, mos);
    ckt_->add_current_source(tail, kGround, params_.i_ss_a);
}

void CmlNetlist::and2(DiffNet a, DiffNet b, DiffNet out) {
    loads(out);
    const auto mos = MosParams::nmos_018(params_.pair_w_over_l);
    const NodeId t0 = ckt_->node("t" + std::to_string(auto_net_++));
    const NodeId tm = ckt_->node("t" + std::to_string(auto_net_++));
    // Bottom pair steered by b: current to the top pair when b, else
    // straight to out.p (forcing out low).
    ckt_->add_mosfet(tm, b.p, t0, mos);
    ckt_->add_mosfet(out.p, b.n, t0, mos);
    // Top pair steered by a.
    ckt_->add_mosfet(out.n, a.p, tm, mos);
    ckt_->add_mosfet(out.p, a.n, tm, mos);
    ckt_->add_current_source(t0, kGround, params_.i_ss_a);
}

void CmlNetlist::xor2(DiffNet a, DiffNet b, DiffNet out) {
    loads(out);
    const auto mos = MosParams::nmos_018(params_.pair_w_over_l);
    const NodeId t0 = ckt_->node("t" + std::to_string(auto_net_++));
    const NodeId t1 = ckt_->node("t" + std::to_string(auto_net_++));
    const NodeId t2 = ckt_->node("t" + std::to_string(auto_net_++));
    ckt_->add_mosfet(t1, b.p, t0, mos);
    ckt_->add_mosfet(t2, b.n, t0, mos);
    // b high: out = !a is wrong for XOR; we need out low when a == b.
    // Pair on t1 (b = 1): a = 1 pulls out.p low (out -> 0), a = 0 pulls
    // out.n low (out -> 1).
    ckt_->add_mosfet(out.p, a.p, t1, mos);
    ckt_->add_mosfet(out.n, a.n, t1, mos);
    // Pair on t2 (b = 0): a = 1 -> out 1, a = 0 -> out 0.
    ckt_->add_mosfet(out.n, a.p, t2, mos);
    ckt_->add_mosfet(out.p, a.n, t2, mos);
    ckt_->add_current_source(t0, kGround, params_.i_ss_a);
}

DiffNet CmlNetlist::delay_line(DiffNet in, int n, const std::string& prefix) {
    DiffNet cur = in;
    for (int i = 0; i < n; ++i) {
        DiffNet next = net(prefix + std::to_string(i + 1));
        buffer(cur, next);
        cur = next;
    }
    return cur;
}

void CmlNetlist::drive_nrz(DiffNet out, std::vector<bool> bits, double ui_s,
                           double rise_s) {
    const double hi = params_.vdd_v;
    const double lo = params_.vdd_v - params_.swing_v();
    auto level = [bits = std::move(bits), ui_s, rise_s, hi,
                  lo](double t, bool invert) {
        if (t < 0.0 || bits.empty()) return invert ? hi : lo;
        const auto idx = std::min(
            bits.size() - 1,
            static_cast<std::size_t>(std::max(0.0, t / ui_s)));
        const bool cur = bits[idx] != invert;
        const double target = cur ? hi : lo;
        // Linear ramp over rise_s after each bit boundary if the previous
        // bit differed.
        const double into_bit = t - static_cast<double>(idx) * ui_s;
        if (idx == 0 || into_bit >= rise_s) return target;
        const bool prev = bits[idx - 1] != invert;
        if (prev == cur) return target;
        const double from = prev ? hi : lo;
        return from + (target - from) * (into_bit / rise_s);
    };
    ckt_->add_voltage_source(out.p, kGround,
                             [level](double t) { return level(t, false); });
    ckt_->add_voltage_source(out.n, kGround,
                             [level](double t) { return level(t, true); });
}

CmlRing build_cml_ring(CmlNetlist& nl, DiffNet trig,
                       const std::string& prefix) {
    CmlRing ring;
    ring.stage1 = nl.net(prefix + "_s1");
    ring.stage2 = nl.net(prefix + "_s2");
    ring.stage3 = nl.net(prefix + "_s3");
    ring.stage4 = nl.net(prefix + "_s4");
    // Stage 1: feedback AND gating (non-inverting in stage4, Fig 12).
    nl.and2(ring.stage4, trig, ring.stage1);
    // Startup kick: the perfectly symmetric operating point is a valid DC
    // solution of the differential ring; a brief 20 uA imbalance on the
    // first stage tips it into oscillation (in silicon, device noise and
    // mismatch do this).
    nl.circuit().add_current_source(ring.stage1.p, kGround, [](double t) {
        return t < 0.5e-9 ? 20e-6 : 0.0;
    });
    // Stages 2..4 invert: swap differential rails at the input.
    nl.buffer(DiffNet{ring.stage1.n, ring.stage1.p}, ring.stage2);
    nl.buffer(DiffNet{ring.stage2.n, ring.stage2.p}, ring.stage3);
    nl.buffer(DiffNet{ring.stage3.n, ring.stage3.p}, ring.stage4);
    // ckout = !stage4: free complement wiring.
    ring.ckout = DiffNet{ring.stage4.n, ring.stage4.p};
    return ring;
}

double diff_v(const TransientSim& sim, DiffNet n) {
    return sim.v(n.p) - sim.v(n.n);
}

}  // namespace gcdr::analog
