#include "analog/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gcdr::analog {

namespace {

struct MosEval {
    double id;   // drain->source channel current (positive into drain)
    double gm;   // dId/dVgs
    double gds;  // dId/dVds
};

/// Square-law evaluation for an NMOS-oriented device with vds >= 0.
MosEval eval_nmos(double vgs, double vds, const MosParams& p) {
    const double vov = vgs - p.vth;
    if (vov <= 0.0) {
        // Subthreshold: off, tiny leakage conductance for convergence.
        return MosEval{0.0, 0.0, 1e-12};
    }
    const double clm = 1.0 + p.lambda * vds;
    if (vds >= vov) {
        const double id = 0.5 * p.k * vov * vov * clm;
        return MosEval{id, p.k * vov * clm,
                       0.5 * p.k * vov * vov * p.lambda};
    }
    const double id = p.k * (vov * vds - 0.5 * vds * vds) * clm;
    const double gm = p.k * vds * clm;
    const double gds = p.k * (vov - vds) * clm +
                       p.k * (vov * vds - 0.5 * vds * vds) * p.lambda;
    return MosEval{id, gm, gds};
}

/// Evaluate any MOSFET given absolute terminal voltages; returns the
/// current flowing INTO the drain terminal plus conductances referred to
/// the (possibly swapped) operating orientation.
struct MosStamp {
    NodeId d, g, s;   // orientation actually used for the stamp
    MosEval e;
    double sign;      // +1: current d->s; -1 for PMOS (s->d)
};

MosStamp eval_mosfet(const Mosfet& m, const std::vector<double>& x) {
    auto volt = [&x](NodeId n) { return n == kGround ? 0.0 : x[n - 1]; };
    NodeId d = m.d, s = m.s;
    if (!m.p.pmos) {
        if (volt(d) < volt(s)) std::swap(d, s);  // symmetric conduction
        const double vgs = volt(m.g) - volt(s);
        const double vds = volt(d) - volt(s);
        return MosStamp{d, m.g, s, eval_nmos(vgs, vds, m.p), +1.0};
    }
    // PMOS: mirror into NMOS coordinates (vsg, vsd).
    if (volt(d) > volt(s)) std::swap(d, s);
    const double vsg = volt(s) - volt(m.g);
    const double vsd = volt(s) - volt(d);
    return MosStamp{d, m.g, s, eval_nmos(vsg, vsd, m.p), -1.0};
}

}  // namespace

TransientSim::TransientSim(const Circuit& ckt, SimOptions opts)
    : ckt_(&ckt), opts_(opts), n_(ckt.unknown_count()) {
    x_.assign(n_, 0.0);
    x_prev_.assign(n_, 0.0);
}

bool TransientSim::newton_solve(double t_s, double dt_s, bool dc,
                                double gmin) {
    const int nn = ckt_->node_count() - 1;  // node unknowns
    std::vector<double> a(static_cast<std::size_t>(n_) * n_);
    std::vector<double> z(n_);

    auto idx = [](NodeId nd) { return nd - 1; };
    for (int iter = 0; iter < opts_.max_newton_iters; ++iter) {
        std::fill(a.begin(), a.end(), 0.0);
        std::fill(z.begin(), z.end(), 0.0);

        auto stamp_g = [&](NodeId p, NodeId q, double g) {
            if (p != kGround) a[idx(p) * n_ + idx(p)] += g;
            if (q != kGround) a[idx(q) * n_ + idx(q)] += g;
            if (p != kGround && q != kGround) {
                a[idx(p) * n_ + idx(q)] -= g;
                a[idx(q) * n_ + idx(p)] -= g;
            }
        };
        auto stamp_i = [&](NodeId from, NodeId to, double amps) {
            // amps flows out of `from` into `to`.
            if (from != kGround) z[idx(from)] -= amps;
            if (to != kGround) z[idx(to)] += amps;
        };

        for (int k = 0; k < nn; ++k) a[k * n_ + k] += gmin;

        for (const auto& r : ckt_->resistors()) {
            stamp_g(r.a, r.b, 1.0 / r.ohms);
        }
        if (!dc) {
            for (const auto& c : ckt_->capacitors()) {
                const double geq = c.farads / dt_s;
                const double va0 = c.a == kGround ? 0.0 : x_prev_[idx(c.a)];
                const double vb0 = c.b == kGround ? 0.0 : x_prev_[idx(c.b)];
                stamp_g(c.a, c.b, geq);
                // Backward Euler: i = geq*(v - v_prev); history as a source
                // pushing current from a to b of geq*v_prev.
                stamp_i(c.a, c.b, -geq * (va0 - vb0));
            }
        }
        for (const auto& s : ckt_->isources()) {
            stamp_i(s.from, s.to, s.amps(t_s));
        }
        for (const auto& vs : ckt_->vsources()) {
            const int row = nn + vs.branch;
            if (vs.pos != kGround) {
                a[idx(vs.pos) * n_ + row] += 1.0;
                a[row * n_ + idx(vs.pos)] += 1.0;
            }
            if (vs.neg != kGround) {
                a[idx(vs.neg) * n_ + row] -= 1.0;
                a[row * n_ + idx(vs.neg)] -= 1.0;
            }
            z[row] = vs.volts(t_s);
        }
        for (const auto& m : ckt_->mosfets()) {
            const auto st = eval_mosfet(m, x_);
            auto volt = [this](NodeId nd) {
                return nd == kGround ? 0.0 : x_[nd - 1];
            };
            const double vgs = volt(st.g) - volt(st.s);
            const double vds = volt(st.d) - volt(st.s);
            double id, gm, gds, vgs_op, vds_op;
            if (st.sign > 0.0) {
                id = st.e.id;
                gm = st.e.gm;
                gds = st.e.gds;
                vgs_op = vgs;
                vds_op = vds;
            } else {
                // PMOS evaluated as (vsg, vsd): current flows s->d, i.e.
                // negative drain current wrt the NMOS stamp orientation;
                // conductances stay positive in mirrored coordinates.
                id = -st.e.id;
                gm = st.e.gm;
                gds = st.e.gds;
                vgs_op = -vgs;  // vsg
                vds_op = -vds;  // vsd
            }
            // Linearization: i(d->s) = id + sign*gm*(dvgs_op) +
            // sign*gds*(dvds_op). In circuit coordinates both reduce to:
            const double g_m = gm;   // between (g,s)
            const double g_ds = gds; // between (d,s)
            const double ieq =
                id - st.sign * (g_m * vgs_op + g_ds * vds_op);
            // Stamp gds between d and s.
            stamp_g(st.d, st.s, g_ds);
            // Stamp gm as a VCCS: current d->s controlled by (g - s).
            if (st.d != kGround) {
                if (st.g != kGround) a[idx(st.d) * n_ + idx(st.g)] += g_m;
                if (st.s != kGround) a[idx(st.d) * n_ + idx(st.s)] -= g_m;
            }
            if (st.s != kGround) {
                if (st.g != kGround) a[idx(st.s) * n_ + idx(st.g)] -= g_m;
                if (st.s != kGround) a[idx(st.s) * n_ + idx(st.s)] += g_m;
            }
            // History current source d->s.
            stamp_i(st.d, st.s, ieq);
        }

        std::vector<double> a_copy = a;
        std::vector<double> x_new = z;
        if (!solve_dense(a_copy, x_new, n_)) return false;

        // Damped update with per-iteration voltage clamping.
        double max_dv = 0.0;
        for (int k = 0; k < nn; ++k) {
            double dv = x_new[k] - x_[k];
            dv = std::clamp(dv, -0.5, 0.5);
            x_[k] += dv;
            max_dv = std::max(max_dv, std::abs(dv));
        }
        for (int k = nn; k < n_; ++k) x_[k] = x_new[k];  // branch currents
        if (max_dv < opts_.abstol_v) return true;
    }
    return false;
}

bool TransientSim::solve_dc() {
    // gmin stepping: converge with a heavy shunt first, then relax.
    double gmin = 1e-2;
    for (int stage = 0; stage < opts_.gmin_steps; ++stage) {
        if (!newton_solve(0.0, 1.0, /*dc=*/true, gmin)) return false;
        gmin = std::max(opts_.gmin, gmin * 0.1);
    }
    if (!newton_solve(0.0, 1.0, /*dc=*/true, opts_.gmin)) return false;
    x_prev_ = x_;
    return true;
}

bool TransientSim::step(double dt_s) {
    assert(dt_s > 0.0);
    t_ += dt_s;
    if (!newton_solve(t_, dt_s, /*dc=*/false, opts_.gmin)) return false;
    x_prev_ = x_;
    return true;
}

double TransientSim::mosfet_id(std::size_t i) const {
    const auto st = eval_mosfet(ckt_->mosfets()[i], x_);
    return st.sign * st.e.id;
}

}  // namespace gcdr::analog
