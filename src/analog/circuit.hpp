#pragma once
// SPICE-lite circuit description: modified nodal analysis (MNA) over a
// small device set — resistors, capacitors, current sources, (time-varying)
// voltage sources and square-law MOSFETs. This is the transistor-level
// substitute for the paper's Sec. 4 (UMC 0.18 um + SPICE): accurate enough
// for first-order CML switching waveforms and the Fig 18 eye shape, with no
// PDK dependency.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gcdr::analog {

/// Node handle. Ground is node 0.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Square-law MOSFET parameters (level-1-style; typical 0.18 um values).
struct MosParams {
    double vth = 0.45;     ///< threshold voltage [V] (use negative magnitudes via PMOS flag)
    double k = 2e-3;       ///< transconductance factor mu*Cox*W/L [A/V^2]
    double lambda = 0.05;  ///< channel-length modulation [1/V]
    bool pmos = false;

    [[nodiscard]] static MosParams nmos_018(double w_over_l) {
        return MosParams{0.45, 300e-6 * w_over_l, 0.05, false};
    }
    [[nodiscard]] static MosParams pmos_018(double w_over_l) {
        return MosParams{0.45, 120e-6 * w_over_l, 0.08, true};
    }
};

/// Time-varying source value.
using Waveform = std::function<double(double t_s)>;

struct Resistor {
    NodeId a, b;
    double ohms;
};
struct Capacitor {
    NodeId a, b;
    double farads;
};
struct CurrentSource {  // current flows from `from` node through the source into `to`
    NodeId from, to;
    Waveform amps;
};
struct VoltageSource {
    NodeId pos, neg;
    Waveform volts;
    int branch;  ///< MNA auxiliary row index, assigned by Circuit
};
struct Mosfet {
    NodeId d, g, s;
    MosParams p;
};

/// A flat netlist with named nodes. Build once, then simulate with
/// DcSolver / TransientSim.
class Circuit {
public:
    /// Get or create a named node ("vdd", "outp", ...). "0"/"gnd" = ground.
    [[nodiscard]] NodeId node(const std::string& name);
    [[nodiscard]] int node_count() const { return next_node_; }

    void add_resistor(NodeId a, NodeId b, double ohms);
    void add_capacitor(NodeId a, NodeId b, double farads);
    /// DC current source: `amps` flowing out of `from` into `to`.
    void add_current_source(NodeId from, NodeId to, double amps);
    void add_current_source(NodeId from, NodeId to, Waveform amps);
    void add_voltage_source(NodeId pos, NodeId neg, double volts);
    void add_voltage_source(NodeId pos, NodeId neg, Waveform volts);
    void add_mosfet(NodeId d, NodeId g, NodeId s, const MosParams& p);

    [[nodiscard]] const std::vector<Resistor>& resistors() const { return r_; }
    [[nodiscard]] const std::vector<Capacitor>& capacitors() const { return c_; }
    [[nodiscard]] const std::vector<CurrentSource>& isources() const { return i_; }
    [[nodiscard]] const std::vector<VoltageSource>& vsources() const { return v_; }
    [[nodiscard]] const std::vector<Mosfet>& mosfets() const { return m_; }

    /// MNA system size: nodes (minus ground) + voltage-source branches.
    [[nodiscard]] int unknown_count() const {
        return (next_node_ - 1) + static_cast<int>(v_.size());
    }

private:
    std::map<std::string, NodeId> names_;
    int next_node_ = 1;  // 0 is ground
    std::vector<Resistor> r_;
    std::vector<Capacitor> c_;
    std::vector<CurrentSource> i_;
    std::vector<VoltageSource> v_;
    std::vector<Mosfet> m_;
};

/// Dense linear solve (Gaussian elimination, partial pivoting).
/// a is row-major n x n; b is overwritten with the solution.
/// Returns false if the matrix is numerically singular.
bool solve_dense(std::vector<double>& a, std::vector<double>& b, int n);

}  // namespace gcdr::analog
