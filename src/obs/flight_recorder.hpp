#pragma once
// Flight recorder: fixed-size wait-free rings of the last N simulation
// events per channel, dumped to JSON (plus an optional VCD window around
// the failure time) when something goes wrong — lock loss, elastic
// over/underflow, schedule_at-in-the-past, or a fatal signal.
//
// Layering note: this module is obs-level and knows nothing about
// sim::Wire or sim::VcdWriter. Times are raw femtosecond integers and the
// waveform window is produced by a caller-installed hook, so sim/cdr can
// depend on obs without a cycle.
//
// Concurrency: each FlightRing has exactly one producer (the thread
// driving that channel's scheduler); append() is wait-free for that
// producer. snapshot()/dump() are meant for after the producer has
// stopped (post-mortem) or from the producing thread itself (the
// lock-loss and fault paths); a racing dump can only see a torn *oldest*
// slot, never corrupt the ring.
//
// The crash handler is best-effort: dumping from a signal context is not
// async-signal-safe (it allocates and does file I/O), but on SIGSEGV the
// alternative is no post-mortem at all. It re-raises with the default
// disposition after dumping so exit codes and core dumps are preserved.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_causal.hpp"

namespace gcdr::obs {

/// Filename-safe tag derived from a dump reason: [A-Za-z0-9-] preserved,
/// everything else '_', truncated to 48 chars ("lock_loss:ch2" ->
/// "lock_loss_ch2"). Dump files are named
/// "flight_dump_<tag>_<seq>.json" with a process-wide monotonic <seq>,
/// so simultaneous faults on different lanes (or recorders) never
/// overwrite each other's post-mortems. Exposed for tests.
[[nodiscard]] std::string sanitize_dump_tag(const std::string& reason);

/// One recorded simulation event. `kind` must be a string literal (the
/// ring stores the pointer; the append path never allocates).
struct FlightEvent {
    std::int64_t time_fs = 0;
    const char* kind = "";
    double value = 0.0;
    std::uint64_t cause_id = 0;  ///< causal trace id, 0 = untraced
};

class FlightRing {
public:
    FlightRing(std::string name, std::size_t capacity);

    void append(std::int64_t time_fs, const char* kind, double value,
                std::uint64_t cause_id = 0) {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        slots_[h & mask_] = FlightEvent{time_fs, kind, value, cause_id};
        head_.store(h + 1, std::memory_order_release);
    }

    /// Retained events, oldest first.
    [[nodiscard]] std::vector<FlightEvent> snapshot() const;

    /// Tracer whose ids this ring's cause_id fields refer to; used by
    /// FlightRecorder::dump to emit the causal chain. The tracer must
    /// outlive the ring or be detached (set nullptr) first.
    void set_tracer(const CausalTracer* tracer) { tracer_ = tracer; }
    [[nodiscard]] const CausalTracer* tracer() const { return tracer_; }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
    [[nodiscard]] std::uint64_t appended() const {
        return head_.load(std::memory_order_acquire);
    }

private:
    std::string name_;
    std::vector<FlightEvent> slots_;
    std::uint64_t mask_;
    std::atomic<std::uint64_t> head_{0};
    const CausalTracer* tracer_ = nullptr;
};

class FlightRecorder {
public:
    struct Config {
        std::size_t ring_capacity = 512;  ///< per ring, rounded to pow2
        std::string dump_dir = ".";
        std::size_t max_dumps = 8;  ///< later triggers are counted, not dumped
        std::int64_t window_fs = 50'000'000;  ///< waveform half-window (50 ns)
    };

    FlightRecorder();  ///< default Config
    explicit FlightRecorder(Config config);
    ~FlightRecorder();

    /// The ring for `name`, created on first use. Returned reference is
    /// stable for the recorder's lifetime.
    FlightRing& ring(const std::string& name);

    /// Install the waveform hook: given a file stem (dump path minus
    /// extension) and a [t0, t1] femtosecond window, write any waveform
    /// files and return their paths (listed in the JSON dump). Typically
    /// wraps VcdWriter::write_window.
    void set_waveform_dump(
        std::function<std::vector<std::string>(const std::string& stem,
                                               std::int64_t t0_fs,
                                               std::int64_t t1_fs)>
            hook);

    /// Write a post-mortem: JSON (schema gcdr.flight.dump/v1) with every
    /// ring's retained events plus the causal chain walked back from
    /// `focus_id` (or, when 0, from the newest traced event across all
    /// rings), and waveform files from the installed hook. Returns the
    /// JSON path, or "" once max_dumps is exhausted (the trigger still
    /// counts in triggers()).
    std::string dump(const std::string& reason, std::uint64_t focus_id = 0);

    [[nodiscard]] std::uint64_t triggers() const {
        return triggers_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::vector<std::string> dump_paths() const;
    [[nodiscard]] const Config& config() const { return config_; }

    /// Route SIGSEGV/SIGABRT/SIGFPE/SIGILL/SIGBUS through a best-effort
    /// dump("signal:<name>") on this recorder, then re-raise. Only one
    /// recorder can hold the handlers; installing from a second recorder
    /// replaces the first. Not async-signal-safe (see header comment).
    void install_crash_handler();

private:
    Config config_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<FlightRing>> rings_;
    std::function<std::vector<std::string>(const std::string&, std::int64_t,
                                           std::int64_t)>
        waveform_dump_;
    std::atomic<std::uint64_t> triggers_{0};
    std::vector<std::string> dump_paths_;
    bool handler_installed_ = false;
};

}  // namespace gcdr::obs
