#include "obs/log.hpp"

#include <cctype>
#include <cinttypes>
#include <ctime>

#include "obs/json.hpp"

namespace gcdr::obs {

std::string format_utc_rfc3339(std::chrono::system_clock::time_point tp) {
    const std::time_t t = std::chrono::system_clock::to_time_t(tp);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

namespace {

std::string format_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

const char* log_level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "trace";
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        case LogLevel::kOff: return "off";
    }
    return "unknown";
}

bool parse_log_level(std::string_view text, LogLevel& out) {
    std::string lower;
    lower.reserve(text.size());
    for (char c : text) {
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    if (lower == "trace") out = LogLevel::kTrace;
    else if (lower == "debug") out = LogLevel::kDebug;
    else if (lower == "info") out = LogLevel::kInfo;
    else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
    else if (lower == "error") out = LogLevel::kError;
    else if (lower == "off" || lower == "none") out = LogLevel::kOff;
    else return false;
    return true;
}

std::string LogField::value_text() const {
    switch (kind) {
        case Kind::kString: return str;
        case Kind::kDouble: return format_double(d);
        case Kind::kInt: return std::to_string(i);
        case Kind::kUint: return std::to_string(u);
        case Kind::kBool: return b ? "true" : "false";
    }
    return {};
}

std::string StderrSink::format(const LogRecord& rec) {
    std::string out = format_utc_rfc3339(rec.wall);
    out += ' ';
    // Fixed-width uppercase level tag so columns line up across
    // severities (the JSONL sink keeps the lowercase names).
    char tag[8];
    std::snprintf(tag, sizeof tag, "%-5s", log_level_name(rec.level));
    for (char* p = tag; *p != '\0'; ++p) {
        *p = static_cast<char>(std::toupper(static_cast<unsigned char>(*p)));
    }
    out += tag;
    out += ' ';
    out += rec.component;
    out += ": ";
    out += rec.message;
    for (const LogField& f : rec.fields) {
        out += ' ';
        out += f.key;
        out += '=';
        out += f.value_text();
    }
    if (rec.suppressed > 0) {
        out += " suppressed=";
        out += std::to_string(rec.suppressed);
    }
    return out;
}

void StderrSink::write(const LogRecord& rec) {
    const std::string line = format(rec);
    // One fputs per record: lines from concurrent loggers (the sink mutex
    // already serializes us) and from foreign fprintf callers never
    // interleave mid-line.
    std::fprintf(stream_, "%s\n", line.c_str());
}

std::string JsonlFileSink::format(const LogRecord& rec) {
    JsonWriter w(JsonWriter::kCompact);
    w.begin_object();
    w.key("schema").value("gcdr.log/v1");
    w.key("utc").value(format_utc_rfc3339(rec.wall));
    w.key("level").value(log_level_name(rec.level));
    w.key("component").value(rec.component);
    w.key("message").value(rec.message);
    if (rec.suppressed > 0) w.key("suppressed").value(rec.suppressed);
    if (!rec.fields.empty()) {
        w.key("fields").begin_object();
        for (const LogField& f : rec.fields) {
            w.key(f.key);
            switch (f.kind) {
                case LogField::Kind::kString: w.value(f.str); break;
                case LogField::Kind::kDouble: w.value(f.d); break;
                case LogField::Kind::kInt: w.value(f.i); break;
                case LogField::Kind::kUint: w.value(f.u); break;
                case LogField::Kind::kBool: w.value(f.b); break;
            }
        }
        w.end_object();
    }
    w.end_object();
    return w.str();
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {
    if (!file_) {
        std::fprintf(stderr, "log: cannot open JSONL sink '%s'\n",
                     path.c_str());
    }
}

JsonlFileSink::~JsonlFileSink() {
    if (file_) std::fclose(file_);
}

void JsonlFileSink::write(const LogRecord& rec) {
    if (!file_) return;
    const std::string line = format(rec);
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);  // post-mortems must survive a crash right after
}

Logger::Logger() = default;

Logger& Logger::global() {
    static Logger logger;
    return logger;
}

void Logger::add_sink(std::shared_ptr<LogSink> sink) {
    std::lock_guard<std::mutex> lock(mu_);
    default_stderr_ = false;
    if (sink) sinks_.push_back(std::move(sink));
}

void Logger::clear_sinks() {
    std::lock_guard<std::mutex> lock(mu_);
    default_stderr_ = false;
    sinks_.clear();
}

void Logger::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    sinks_.clear();
    default_stderr_ = true;
    level_.store(static_cast<int>(LogLevel::kInfo),
                 std::memory_order_relaxed);
}

void Logger::log(LogRecord rec) {
    if (!enabled(rec.level)) return;
    rec.wall = std::chrono::system_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (default_stderr_) {
        static StderrSink stderr_sink;
        stderr_sink.write(rec);
        return;
    }
    for (auto& sink : sinks_) sink->write(rec);
}

void Logger::log(LogLevel level, std::string component, std::string message,
                 std::vector<LogField> fields, std::uint64_t suppressed) {
    LogRecord rec;
    rec.level = level;
    rec.component = std::move(component);
    rec.message = std::move(message);
    rec.fields = std::move(fields);
    rec.suppressed = suppressed;
    log(std::move(rec));
}

bool LogRateGate::admit(std::uint64_t* suppressed) {
    const auto now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    std::int64_t next = next_ns_.load(std::memory_order_relaxed);
    do {
        if (now_ns < next) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    } while (!next_ns_.compare_exchange_weak(next, now_ns + interval_ns_,
                                             std::memory_order_relaxed));
    if (suppressed) {
        *suppressed = dropped_.exchange(0, std::memory_order_relaxed);
    }
    return true;
}

void log_debug(std::string component, std::string message,
               std::vector<LogField> fields) {
    Logger::global().log(LogLevel::kDebug, std::move(component),
                         std::move(message), std::move(fields));
}

void log_info(std::string component, std::string message,
              std::vector<LogField> fields) {
    Logger::global().log(LogLevel::kInfo, std::move(component),
                         std::move(message), std::move(fields));
}

void log_warn(std::string component, std::string message,
              std::vector<LogField> fields) {
    Logger::global().log(LogLevel::kWarn, std::move(component),
                         std::move(message), std::move(fields));
}

void log_error(std::string component, std::string message,
               std::vector<LogField> fields) {
    Logger::global().log(LogLevel::kError, std::move(component),
                         std::move(message), std::move(fields));
}

}  // namespace gcdr::obs
