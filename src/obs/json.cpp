#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace gcdr::obs {

std::string JsonWriter::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::newline_indent() {
    if (indent_ < 0) return;  // compact mode: everything on one line
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * stack_.size(), ' ');
}

void JsonWriter::pre_value() {
    if (key_pending_) {
        key_pending_ = false;  // value follows its key on the same line
        return;
    }
    if (!stack_.empty()) {
        if (stack_.back().has_items) out_ += ',';
        stack_.back().has_items = true;
        newline_indent();
    }
}

JsonWriter& JsonWriter::begin_object() {
    pre_value();
    stack_.push_back({'{', false});
    out_ += '{';
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    const bool had = !stack_.empty() && stack_.back().has_items;
    if (!stack_.empty()) stack_.pop_back();
    if (had) newline_indent();
    out_ += '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    pre_value();
    stack_.push_back({'[', false});
    out_ += '[';
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    const bool had = !stack_.empty() && stack_.back().has_items;
    if (!stack_.empty()) stack_.pop_back();
    if (had) newline_indent();
    out_ += ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    pre_value();
    out_ += '"';
    out_ += escape(k);
    out_ += "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    pre_value();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    return *this;
}

JsonWriter& JsonWriter::value(double d) {
    if (!std::isfinite(d)) return null_value();
    pre_value();
    char buf[40];
    // %.17g round-trips doubles; trim to a cleaner form when exact.
    std::snprintf(buf, sizeof buf, "%.12g", d);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != d) std::snprintf(buf, sizeof buf, "%.17g", d);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
    pre_value();
    out_ += std::to_string(u);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
    pre_value();
    out_ += std::to_string(i);
    return *this;
}

JsonWriter& JsonWriter::value(bool b) {
    pre_value();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter& JsonWriter::null_value() {
    pre_value();
    out_ += "null";
    return *this;
}

}  // namespace gcdr::obs
