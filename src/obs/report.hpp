#pragma once
// Run-report emitter: one JSON document per bench/example run capturing
// the metrics snapshot, total wall time and build provenance. These are
// the repo's perf-trajectory artifacts — scripts/run_benches.sh collects
// them under bench/reports/BENCH_<id>.json and future performance PRs
// diff against the committed baselines. Schema documented in DESIGN.md
// ("Telemetry" section); bump kReportSchema on breaking changes.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace gcdr::obs {

inline constexpr const char* kReportSchema = "gcdr.bench.report/v1";

/// Compiler / standard / build-mode string triple baked in at compile
/// time, so reports from different checkouts are attributable.
struct BuildInfo {
    std::string compiler;    ///< e.g. "gcc 12.2.0"
    long cxx_standard;       ///< __cplusplus value
    std::string build_mode;  ///< "release" (NDEBUG) or "debug"
    std::string sanitizer;   ///< "address", "thread", ... or "none"
    /// Checkout the binary was built from: the GCDR_GIT_SHA environment
    /// variable when set (CI exports it; a stale build can't lie), else
    /// the sha baked in at configure time, else "unknown".
    std::string git_sha;

    [[nodiscard]] static BuildInfo current();
};

struct ReportInfo {
    std::string id;     ///< bench identifier, e.g. "kernel_perf"
    std::string title;  ///< human-readable one-liner
    double wall_seconds = 0.0;  ///< total run wall time
    /// Execution-layer provenance (bench --threads/--seed): lanes the
    /// run's ThreadPool actually had (0 = single-threaded/not recorded)
    /// and the base seed every sweep point derived from. Emitted as a
    /// "run" object so perf diffs can bucket reports by concurrency.
    std::size_t threads = 0;
    std::uint64_t seed = 0;
    /// Scenario provenance (bench --scenario): the config file the run
    /// was compiled from and the fnv1a64 of its canonical resolved JSON.
    /// Both ride in the "run" object (and the ledger record) when set, so
    /// a report traces back to the exact declarative config — not just
    /// the file path, whose contents may have changed since.
    std::string scenario_file;
    std::string scenario_hash;  ///< hex; empty = not a scenario run
    /// Optional span profile (bench --trace): emitted as a top-level
    /// "spans" object — per-name count/total_seconds/max_seconds — kept
    /// OUT of "metrics" so bench_diff's missing-metric check doesn't fire
    /// when diffing a traced run against an untraced baseline. Wall-clock
    /// data: informational in diffs, never identity-compared.
    const SpanCollector* spans = nullptr;
    /// Optional lane-health snapshot (bench --health / health_probe
    /// tasks): a complete gcdr.health/v1 document (compact JSON, see
    /// obs/health) spliced verbatim as a top-level "health" key. Kept OUT
    /// of "metrics" for the same bench_diff reason as spans.
    std::string health_json;
};

/// Serialize the full report document (schema above) to a string.
[[nodiscard]] std::string run_report_json(const MetricsRegistry& registry,
                                          const ReportInfo& info);

/// Write the report to `path`. Returns false (and prints to stderr) on
/// I/O failure; benches treat that as a soft error.
bool write_run_report(const std::string& path,
                      const MetricsRegistry& registry,
                      const ReportInfo& info);

}  // namespace gcdr::obs
