#pragma once
// Causal event tracing: every event pushed through the calendar-queue
// kernel carries a trace id (its queue sequence number + 1; id 0 is the
// "no parent" root) and the id of the event that was executing when it
// was scheduled. The Scheduler calls on_schedule() from inside
// schedule_at, so a sampled bit or lock-loss can be walked backwards —
// sampler decision → GCCO stage eval → EDET gate → input edge — with
// chain().
//
// Storage is a ring indexed by id % capacity (capacity rounded up to a
// power of two). Ids are assigned sequentially by the queue, so the ring
// always holds the most recent `capacity` schedules and find() is a
// single masked load — no hashing, no allocation after construction.
// Records older than `capacity` schedules are overwritten; chain()
// truncates cleanly when it walks off the retained window.
//
// The tracer is single-scheduler state (one writer); attach one tracer
// per Scheduler, exactly like MetricsRegistry attachment.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcdr::obs {

class CausalTracer {
public:
    struct Record {
        std::uint64_t id = 0;      ///< 0 = empty slot
        std::uint64_t parent = 0;  ///< 0 = scheduled from outside any event
        std::int64_t time_fs = 0;  ///< due time captured at schedule_at
    };

    explicit CausalTracer(std::size_t capacity = 8192);

    /// Called by the scheduler at schedule_at time. `id` must be nonzero.
    void on_schedule(std::uint64_t id, std::uint64_t parent,
                     std::int64_t time_fs) {
        Record& r = ring_[id & mask_];
        r.id = id;
        r.parent = parent;
        r.time_fs = time_fs;
        ++recorded_;
    }

    /// The record for `id`, or nullptr if it was never recorded or has
    /// been overwritten by a newer id in the same ring slot.
    [[nodiscard]] const Record* find(std::uint64_t id) const {
        if (id == 0) return nullptr;
        const Record& r = ring_[id & mask_];
        return r.id == id ? &r : nullptr;
    }

    /// Parent walk starting at `id` (inclusive), newest first, stopping
    /// at the root (parent 0), at an evicted record, or after `max_len`
    /// hops.
    [[nodiscard]] std::vector<Record> chain(std::uint64_t id,
                                            std::size_t max_len = 64) const;

    [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
    [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

    /// Empty every slot (capacity unchanged).
    void clear();

private:
    std::vector<Record> ring_;
    std::uint64_t mask_;
    std::uint64_t recorded_ = 0;
};

}  // namespace gcdr::obs
