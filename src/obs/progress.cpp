#include "obs/progress.hpp"

#include <cstdio>

namespace gcdr::obs {

namespace {
std::atomic<bool> g_progress_enabled{false};
}  // namespace

void ProgressReporter::set_enabled(bool on) {
    g_progress_enabled.store(on, std::memory_order_relaxed);
}

bool ProgressReporter::enabled() {
    return g_progress_enabled.load(std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::string label, std::uint64_t total,
                                   double min_interval_s)
    : label_(std::move(label)),
      total_(total),
      gate_(min_interval_s),
      t0_(std::chrono::steady_clock::now()) {}

void ProgressReporter::add(std::uint64_t n) {
    const std::uint64_t now_done =
        done_.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t suppressed = 0;
    if (gate_.admit(&suppressed)) emit(now_done, suppressed);
}

void ProgressReporter::finish() {
    if (finished_.exchange(true, std::memory_order_relaxed)) return;
    emit(done_.load(std::memory_order_relaxed), 0);
}

void ProgressReporter::emit(std::uint64_t done_now,
                            std::uint64_t suppressed) {
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    const double pct =
        total_ > 0 ? 100.0 * static_cast<double>(done_now) /
                         static_cast<double>(total_)
                   : 0.0;
    // ETA from the mean rate so far; unknown until work has started.
    double eta_s = -1.0;
    if (done_now > 0 && total_ >= done_now) {
        eta_s = elapsed_s * static_cast<double>(total_ - done_now) /
                static_cast<double>(done_now);
    }
    char msg[96];
    std::snprintf(msg, sizeof msg, "%llu/%llu (%.1f%%)",
                  static_cast<unsigned long long>(done_now),
                  static_cast<unsigned long long>(total_), pct);
    std::vector<LogField> fields;
    fields.emplace_back("done", done_now);
    fields.emplace_back("total", total_);
    fields.emplace_back("elapsed_s", elapsed_s);
    if (eta_s >= 0.0) fields.emplace_back("eta_s", eta_s);
    Logger::global().log(LogLevel::kInfo, "progress." + label_, msg,
                         std::move(fields), suppressed);
}

}  // namespace gcdr::obs
