#pragma once
// Point-in-time rendering of a MetricsRegistry in the Prometheus text
// exposition format (version 0.0.4) — the live-metrics surface for the
// future simulation-as-a-service daemon and, today, for the bench
// `--metrics-out` snapshot that any scraper / promtool can ingest.
//
// Mapping from the registry's dotted names:
//   - metric names are sanitized ('.', '-', and every other invalid
//     character become '_') and prefixed with `<namespace>_`,
//   - counters additionally get the conventional `_total` suffix,
//   - an instrument name may carry labels inline after a '{':
//     `events_total{lane=3,kind=edge}` — the exporter parses them, so
//     per-lane / per-channel series share one metric family. Series of a
//     family are emitted under a single # TYPE header, labels sorted by
//     key and values escaped (\\, \", \n),
//   - histograms render as classic Prometheus histograms: cumulative
//     `_bucket{le="..."}` series from the non-empty log-scale buckets,
//     an `le="+Inf"` bucket, `_sum` and `_count`,
//   - unset gauges are skipped (they export as null in JSON; Prometheus
//     has no null).
//
// Output is deterministic for a given registry state: families sorted by
// name (the registry map is ordered), series sorted by label signature —
// the golden-format tests rely on this.

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gcdr::obs {

struct PrometheusOptions {
    /// Prepended to every metric name as `<prefix>_`; empty = no prefix.
    std::string prefix = "gcdr";
    /// Labels added to every series (run id, git sha, ...). Merged with
    /// per-instrument inline labels; inline labels win on key collision.
    std::vector<std::pair<std::string, std::string>> const_labels;
};

/// Render the full exposition document (ends with a newline).
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry,
                                        const PrometheusOptions& opts = {});

/// Write the exposition to `path`. Returns false (and logs at error
/// level) on I/O failure.
bool write_prometheus(const std::string& path,
                      const MetricsRegistry& registry,
                      const PrometheusOptions& opts = {});

/// A metric name made exposition-safe: invalid characters replaced by
/// '_', a leading digit guarded by '_' (exposed for tests).
[[nodiscard]] std::string prometheus_sanitize_name(const std::string& name);

/// Label-value escaping per the text format: backslash, double-quote and
/// newline (exposed for tests).
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

}  // namespace gcdr::obs
