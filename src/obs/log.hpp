#pragma once
// Structured, leveled logging for the operational layer (the future
// serving daemon and today's bench/CI loop). Design rules, matching the
// rest of obs/:
//
//   - zero cost when disabled: the level check is one relaxed atomic
//     load; a suppressed call formats nothing and takes no lock,
//   - pluggable sinks: human-readable stderr text (the default — the raw
//     std::fprintf(stderr, ...) sites this replaces keep printing) and an
//     append-mode JSONL file (one gcdr.log/v1 object per line) for
//     machine consumption; sinks can be stacked,
//   - per-call-site rate limiting: a static LogRateGate at the call site
//     (or the GCDR_LOG_EVERY_* macros) admits at most one record per
//     interval and folds the drop count into the next admitted record's
//     "suppressed" field, so a hot loop cannot flood a sink,
//   - thread-safe: records are fully formatted on the calling thread and
//     handed to sinks under one mutex, so concurrent lines never
//     interleave mid-record.
//
// Records are structured: a component (dotted path, same convention as
// metric names), a message, and optional typed key=value fields. The
// text sink renders fields as trailing `key=value` tokens; the JSONL
// sink preserves their types.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gcdr::obs {

enum class LogLevel : int {
    kTrace = 0,
    kDebug = 1,
    kInfo = 2,
    kWarn = 3,
    kError = 4,
    kOff = 5,  ///< threshold only; records are never emitted at kOff
};

/// Stable lower-case name ("trace".."error", "off").
[[nodiscard]] const char* log_level_name(LogLevel level);

/// RFC-3339 UTC timestamp ("2026-08-07T12:00:00Z"), second resolution —
/// shared by the log sinks and the run ledger.
[[nodiscard]] std::string format_utc_rfc3339(
    std::chrono::system_clock::time_point tp);

/// Parse "trace|debug|info|warn|warning|error|off" (case-insensitive).
/// Returns false (and leaves `out` untouched) on anything else.
[[nodiscard]] bool parse_log_level(std::string_view text, LogLevel& out);

/// One typed key=value attachment. Kept simple on purpose: a tagged
/// union over the types the JSONL sink can serialize losslessly.
struct LogField {
    enum class Kind { kString, kDouble, kInt, kUint, kBool };

    std::string key;
    Kind kind = Kind::kString;
    std::string str;       ///< kString
    double d = 0.0;        ///< kDouble
    std::int64_t i = 0;    ///< kInt
    std::uint64_t u = 0;   ///< kUint
    bool b = false;        ///< kBool

    LogField(std::string k, std::string v)
        : key(std::move(k)), kind(Kind::kString), str(std::move(v)) {}
    LogField(std::string k, const char* v)
        : key(std::move(k)), kind(Kind::kString), str(v) {}
    LogField(std::string k, double v)
        : key(std::move(k)), kind(Kind::kDouble), d(v) {}
    LogField(std::string k, std::int64_t v)
        : key(std::move(k)), kind(Kind::kInt), i(v) {}
    LogField(std::string k, int v)
        : key(std::move(k)), kind(Kind::kInt), i(v) {}
    LogField(std::string k, std::uint64_t v)
        : key(std::move(k)), kind(Kind::kUint), u(v) {}
    LogField(std::string k, bool v)
        : key(std::move(k)), kind(Kind::kBool), b(v) {}

    /// The value rendered as text (how the stderr sink prints it).
    [[nodiscard]] std::string value_text() const;
};

struct LogRecord {
    LogLevel level = LogLevel::kInfo;
    std::chrono::system_clock::time_point wall{};  ///< stamped by Logger
    std::string component;  ///< dotted path, e.g. "obs.flight"
    std::string message;
    std::vector<LogField> fields;
    /// Records dropped at this call site by rate limiting since the last
    /// admitted one (0 = none).
    std::uint64_t suppressed = 0;
};

/// Sink interface. write() is always called under the logger's sink
/// mutex, so implementations need no locking of their own unless they
/// share state with non-logger code.
class LogSink {
public:
    virtual ~LogSink() = default;
    virtual void write(const LogRecord& rec) = 0;
};

/// Human-readable text to a FILE* (default stderr):
///   2026-08-07T12:00:00Z WARN  obs.flight: cannot open dump (path=...)
class StderrSink : public LogSink {
public:
    explicit StderrSink(std::FILE* stream = stderr) : stream_(stream) {}
    void write(const LogRecord& rec) override;

    /// The full formatted line (exposed for tests).
    [[nodiscard]] static std::string format(const LogRecord& rec);

private:
    std::FILE* stream_;
};

/// One compact JSON object per line, schema gcdr.log/v1:
///   {"schema":"gcdr.log/v1","utc":"...","level":"warn",
///    "component":"obs.flight","message":"...","suppressed":0,
///    "fields":{"path":"..."}}
/// Opened in append mode so several runs can share one file.
class JsonlFileSink : public LogSink {
public:
    explicit JsonlFileSink(const std::string& path);
    ~JsonlFileSink() override;
    [[nodiscard]] bool ok() const { return file_ != nullptr; }
    void write(const LogRecord& rec) override;

    /// The serialized line, without the trailing newline (for tests).
    [[nodiscard]] static std::string format(const LogRecord& rec);

private:
    std::FILE* file_ = nullptr;
};

/// Process-wide logger. Formatting happens on the calling thread; sink
/// dispatch takes one mutex. The default configuration (no explicit
/// sinks) writes text to stderr at kInfo, which preserves the behavior
/// of the raw fprintf sites the obs/ subsystems used before.
class Logger {
public:
    [[nodiscard]] static Logger& global();

    void set_level(LogLevel level) {
        level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }
    [[nodiscard]] LogLevel level() const {
        return static_cast<LogLevel>(
            level_.load(std::memory_order_relaxed));
    }
    /// The hot-path guard: one relaxed load + compare.
    [[nodiscard]] bool enabled(LogLevel level) const {
        return static_cast<int>(level) >=
                   level_.load(std::memory_order_relaxed) &&
               level != LogLevel::kOff;
    }

    /// Append a sink (keeps the existing ones, including the implicit
    /// stderr default — call clear_sinks() first for exclusive routing).
    void add_sink(std::shared_ptr<LogSink> sink);
    /// Drop all sinks, including the implicit stderr default. With no
    /// sinks installed afterwards, records are discarded (tests use this
    /// to keep output clean).
    void clear_sinks();
    /// Restore the default configuration: stderr text sink at kInfo.
    void reset();

    /// Emit (level is re-checked, so callers may skip the guard).
    void log(LogRecord rec);
    void log(LogLevel level, std::string component, std::string message,
             std::vector<LogField> fields = {},
             std::uint64_t suppressed = 0);

private:
    Logger();

    std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
    std::mutex mu_;
    std::vector<std::shared_ptr<LogSink>> sinks_;
    bool default_stderr_ = true;  ///< no explicit sinks yet -> stderr
};

/// Per-call-site token gate: admits one record per `min_interval_s`,
/// counting the suppressed calls in between. Lock-free (one CAS per
/// admitted record, one relaxed fetch_add per suppressed one); intended
/// to live in a function-local static at the call site.
class LogRateGate {
public:
    explicit LogRateGate(double min_interval_s)
        : interval_ns_(static_cast<std::int64_t>(min_interval_s * 1e9)) {}

    /// True when the caller should emit now. On admission, *suppressed
    /// receives the number of calls dropped since the last admission.
    [[nodiscard]] bool admit(std::uint64_t* suppressed);

private:
    std::atomic<std::int64_t> next_ns_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::int64_t interval_ns_;
};

// Convenience wrappers for the common severities.
void log_debug(std::string component, std::string message,
               std::vector<LogField> fields = {});
void log_info(std::string component, std::string message,
              std::vector<LogField> fields = {});
void log_warn(std::string component, std::string message,
              std::vector<LogField> fields = {});
void log_error(std::string component, std::string message,
               std::vector<LogField> fields = {});

}  // namespace gcdr::obs

/// Rate-limited structured logging at a specific call site: at most one
/// record per `interval_s` seconds from THIS macro expansion; drops are
/// folded into the next admitted record. The level guard runs first, so
/// a disabled level costs one atomic load.
#define GCDR_LOG_EVERY(level_, interval_s, component_, message_, ...)       \
    do {                                                                    \
        if (::gcdr::obs::Logger::global().enabled(level_)) {                \
            static ::gcdr::obs::LogRateGate gcdr_log_gate_((interval_s));   \
            std::uint64_t gcdr_log_suppressed_ = 0;                         \
            if (gcdr_log_gate_.admit(&gcdr_log_suppressed_)) {              \
                ::gcdr::obs::Logger::global().log(                          \
                    (level_), (component_), (message_),                     \
                    {__VA_ARGS__}, gcdr_log_suppressed_);                   \
            }                                                               \
        }                                                                   \
    } while (0)
