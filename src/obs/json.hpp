#pragma once
// Minimal streaming JSON writer: structural correctness by construction
// (comma placement, nesting) with pretty-printed output so committed
// BENCH_*.json baselines diff cleanly. No external dependency — the
// repo's telemetry must not pull one in.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gcdr::obs {

class JsonWriter {
public:
    /// Pass as `indent` for single-line output (JSONL records, ledger
    /// lines): no newlines or indentation are emitted at all.
    static constexpr int kCompact = -1;

    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Key of the next value; must be inside an object.
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(double d);  ///< non-finite values emit null
    JsonWriter& value(std::uint64_t u);
    JsonWriter& value(std::int64_t i);
    JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter& value(unsigned u) {
        return value(static_cast<std::uint64_t>(u));
    }
    JsonWriter& value(bool b);
    JsonWriter& null_value();

    /// The document so far. Complete once every container is closed.
    [[nodiscard]] const std::string& str() const { return out_; }
    [[nodiscard]] bool complete() const { return stack_.empty() && !out_.empty(); }

    /// JSON string escaping (shared with tests / CSV quoting callers).
    [[nodiscard]] static std::string escape(std::string_view s);

private:
    struct Level {
        char kind;       // '{' or '['
        bool has_items;  // emitted at least one child
    };
    void pre_value();  // comma/newline/indent before a value or key
    void newline_indent();

    std::string out_;
    std::vector<Level> stack_;
    bool key_pending_ = false;
    int indent_;
};

}  // namespace gcdr::obs
