#pragma once
// Per-lane counter shards for hot parallel-sweep loops. A plain atomic
// obs::Counter is correct under concurrency but every inc() bounces its
// cache line between cores; for per-point tallies inside a parallel_for
// that contention can rival the work itself. ShardedCounter gives each
// pool lane its own cache-line-sized cell (plain, unsynchronized adds)
// and folds the cells into the backing Counter once, on flush() or
// destruction.
//
// Lane discipline: `lane` must uniquely identify the calling thread for
// the shard's lifetime — use exec::ThreadPool::lane_index() (the obs
// layer deliberately does not depend on exec, so the index is passed in).
// Totals become visible in the backing Counter only after flush().

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace gcdr::obs {

class ShardedCounter {
public:
    /// `n_lanes` = pool size (ThreadPool::size()). Indices out of range
    /// fall back to the (contended but correct) backing counter.
    ShardedCounter(Counter& sink, std::size_t n_lanes)
        : sink_(&sink), cells_(n_lanes) {}

    ~ShardedCounter() { flush(); }
    ShardedCounter(const ShardedCounter&) = delete;
    ShardedCounter& operator=(const ShardedCounter&) = delete;

    void inc(std::size_t lane, std::uint64_t n = 1) {
        if (lane < cells_.size()) {
            cells_[lane].value += n;
        } else {
            sink_->inc(n);
        }
    }

    /// Fold all shard cells into the backing counter and zero them.
    /// Call after parallel_for returns (no concurrent inc()).
    void flush() {
        for (auto& c : cells_) {
            if (c.value) {
                sink_->inc(c.value);
                c.value = 0;
            }
        }
    }

private:
    struct alignas(64) Cell {
        std::uint64_t value = 0;
    };

    Counter* sink_;
    std::vector<Cell> cells_;
};

}  // namespace gcdr::obs
