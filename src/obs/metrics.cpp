#include "obs/metrics.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.hpp"

namespace gcdr::obs {

int Histogram::bucket_index(double v) {
    // v > 0 guaranteed by record(). Index grows with log10(v); bucket i
    // holds (upper(i-1), upper(i)].
    const double pos = (std::log10(v) - kMinExp) * kPerDecade;
    // ceil - 1: a value exactly on an edge belongs to the bucket below.
    const int i = static_cast<int>(std::ceil(pos)) - 1;
    return i;
}

double Histogram::bucket_upper(int i) {
    return std::pow(10.0, static_cast<double>(i + 1) / kPerDecade + kMinExp);
}

namespace {

/// Lock-free watermark update: keep the smallest/largest of all
/// concurrently recorded values.
void atomic_watermark(std::atomic<double>& slot, double v, bool keep_min) {
    double cur = slot.load(std::memory_order_relaxed);
    while (keep_min ? v < cur : v > cur) {
        if (slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
            break;
        }
    }
}

}  // namespace

void Histogram::record(double v) {
    if (std::isnan(v)) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> (C++20) — compiles to a CAS loop; the
    // per-field atomicity means no sample is ever dropped, though the
    // floating-point accumulation order follows the thread schedule.
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_watermark(min_, v, /*keep_min=*/true);
    atomic_watermark(max_, v, /*keep_min=*/false);
    if (!(v > 0.0)) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const int i = bucket_index(v);
    if (i < 0) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
    } else if (i >= kBuckets) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
        bins_[static_cast<std::size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
    }
}

double Histogram::quantile(double q) const {
    if (count() == 0) return 0.0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max();
    const double target = q * static_cast<double>(count());
    double cum =
        static_cast<double>(underflow_.load(std::memory_order_relaxed));
    if (cum >= target) return min();
    for (int i = 0; i < kBuckets; ++i) {
        cum += static_cast<double>(bins_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed));
        if (cum >= target) {
            // Geometric bucket midpoint, clamped to observed extremes.
            const double mid = bucket_upper(i) /
                               std::pow(10.0, 0.5 / kPerDecade);
            return std::min(std::max(mid, min()), max());
        }
    }
    return max();
}

std::vector<Histogram::Bucket> Histogram::nonempty_buckets() const {
    std::vector<Bucket> out;
    const auto under = underflow_.load(std::memory_order_relaxed);
    if (under) {
        out.push_back({std::pow(10.0, kMinExp), under});
    }
    for (int i = 0; i < kBuckets; ++i) {
        const auto n =
            bins_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
        if (n) out.push_back({bucket_upper(i), n});
    }
    const auto over = overflow_.load(std::memory_order_relaxed);
    if (over) {
        out.push_back({std::numeric_limits<double>::infinity(), over});
    }
    return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
    std::lock_guard<std::mutex> lk(mu_);
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, c] : counters_) w.key(name).value(c->value());
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, g] : gauges_) {
        w.key(name);
        if (g->has_value()) {
            w.value(g->value());
        } else {
            w.null_value();
        }
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : histograms_) {
        w.key(name).begin_object();
        w.key("count").value(h->count());
        w.key("sum").value(h->sum());
        w.key("min").value(h->min());
        w.key("max").value(h->max());
        w.key("mean").value(h->mean());
        w.key("p50").value(h->quantile(0.50));
        w.key("p90").value(h->quantile(0.90));
        w.key("p99").value(h->quantile(0.99));
        w.key("buckets").begin_array();
        for (const auto& b : h->nonempty_buckets()) {
            w.begin_object();
            w.key("le").value(b.upper);
            w.key("count").value(b.count);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

std::string MetricsRegistry::to_json() const {
    JsonWriter w;
    write_json(w);
    return w.str();
}

std::string MetricsRegistry::to_csv() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << "kind,name,value\n";
    for (const auto& [name, c] : counters_) {
        os << "counter," << name << ',' << c->value() << '\n';
    }
    for (const auto& [name, g] : gauges_) {
        os << "gauge," << name << ',';
        if (g->has_value()) os << g->value();
        os << '\n';
    }
    for (const auto& [name, h] : histograms_) {
        os << "histogram," << name << ".count," << h->count() << '\n';
        os << "histogram," << name << ".sum," << h->sum() << '\n';
        os << "histogram," << name << ".mean," << h->mean() << '\n';
    }
    return os.str();
}

}  // namespace gcdr::obs
