#include "obs/trace_span.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace gcdr::obs {

namespace {

// Per-thread cache of the buffer resolved for one collector. A thread
// recording into two collectors alternately re-resolves on each switch,
// which is fine: spans are recorded in bulk against one collector at a
// time (the global one, in practice).
struct LocalCache {
    const void* collector = nullptr;
    void* buffer = nullptr;
};
thread_local LocalCache t_cache;

}  // namespace

void SpanCollector::enable(std::size_t per_thread_capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_.load(std::memory_order_relaxed)) return;
    capacity_ = per_thread_capacity == 0 ? 1 : per_thread_capacity;
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void SpanCollector::disable() {
    enabled_.store(false, std::memory_order_release);
}

double SpanCollector::now_s() const {
    if (!enabled()) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

SpanCollector::Buffer& SpanCollector::local_buffer() {
    if (t_cache.collector == this && t_cache.buffer)
        return *static_cast<Buffer*>(t_cache.buffer);
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>(
        static_cast<std::uint32_t>(buffers_.size()), capacity_));
    t_cache.collector = this;
    t_cache.buffer = buffers_.back().get();
    return *buffers_.back();
}

void SpanCollector::record(const char* name, double t0_s, double t1_s) {
    if (!enabled()) return;
    Buffer& buf = local_buffer();
    if (buf.spans.size() >= capacity_) {
        ++buf.dropped;
        return;
    }
    buf.spans.push_back(Span{name, t0_s, t1_s, buf.tid, buf.next_seq++});
}

std::vector<SpanCollector::Span> SpanCollector::merged() const {
    std::vector<Span> all;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::size_t total = 0;
        for (const auto& b : buffers_) total += b->spans.size();
        all.reserve(total);
        for (const auto& b : buffers_)
            all.insert(all.end(), b->spans.begin(), b->spans.end());
    }
    std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
        if (a.t0_s != b.t0_s) return a.t0_s < b.t0_s;
        if (a.t1_s != b.t1_s) return a.t1_s < b.t1_s;
        if (int c = std::strcmp(a.name, b.name); c != 0) return c < 0;
        if (a.tid != b.tid) return a.tid < b.tid;
        return a.seq < b.seq;
    });
    return all;
}

std::vector<SpanCollector::Summary> SpanCollector::summaries() const {
    std::map<std::string, Summary> by_name;  // ordered => sorted output
    for (const Span& s : merged()) {
        Summary& sum = by_name[s.name];
        if (sum.count == 0) sum.name = s.name;
        ++sum.count;
        const double dur = s.t1_s - s.t0_s;
        sum.total_s += dur;
        sum.max_s = std::max(sum.max_s, dur);
    }
    std::vector<Summary> out;
    out.reserve(by_name.size());
    for (auto& [_, sum] : by_name) out.push_back(std::move(sum));
    return out;
}

std::uint64_t SpanCollector::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& b : buffers_) n += b->dropped;
    return n;
}

std::string SpanCollector::chrome_trace_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const Span& s : merged()) {
        w.begin_object();
        w.key("name").value(s.name);
        w.key("cat").value("gcdr");
        w.key("ph").value("X");
        w.key("pid").value(1);
        w.key("tid").value(s.tid);
        w.key("ts").value(s.t0_s * 1e6);                // microseconds
        w.key("dur").value((s.t1_s - s.t0_s) * 1e6);
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").begin_object();
    w.key("schema").value("gcdr.trace/v1");
    w.key("dropped_spans").value(dropped());
    w.end_object();
    w.end_object();
    return w.str();
}

bool SpanCollector::write_chrome_trace(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        log_error("obs.trace", "cannot open chrome trace file",
                  {{"path", path}});
        return false;
    }
    out << chrome_trace_json() << '\n';
    return static_cast<bool>(out);
}

void SpanCollector::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep the Buffer objects alive: threads hold cached pointers to them.
    for (auto& b : buffers_) {
        b->spans.clear();
        b->dropped = 0;
        b->next_seq = 0;
    }
}

SpanCollector& SpanCollector::global() {
    static SpanCollector collector;
    return collector;
}

}  // namespace gcdr::obs
