#pragma once
// Persistent run ledger: one compact JSON object per bench run, appended
// to a shared JSONL file (bench --ledger PATH, default off). Where a run
// report (report.hpp) is a snapshot that gets overwritten, the ledger is
// history — scripts/perf_history.py groups its records by
// (bench, build_mode, threads), prints throughput trends, and fails CI
// when the newest run regresses against a trailing window.
//
// Record schema gcdr.bench.ledger/v1:
//   {"schema":"gcdr.bench.ledger/v1","utc":"...",
//    "bench":"kernel_perf","config":"<canonical flag string>",
//    "config_hash":"9ae16a3b2f90404f",      // fnv1a64(config), hex
//    "git_sha":"...","seed":1,"threads":4,"build_mode":"release",
//    "compiler":"gcc ...","sanitizer":"none","wall_seconds":1.25,
//    "metrics":{...full gcdr.bench.report/v1 metrics object...},
//    "spans":{...optional span summary...}}
//
// Append-only and line-oriented on purpose: concurrent CI jobs can merge
// ledgers with `cat`, partial lines from a crashed run are skipped by
// the reader, and the file stays greppable.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/hash.hpp"

namespace gcdr::obs {

inline constexpr const char* kLedgerSchema = "gcdr.bench.ledger/v1";

/// FNV-1a 64-bit over the canonical config string. The implementation
/// lives in util/hash.hpp (it is also the serving cache's key hash);
/// this forwarder keeps the historical obs:: spelling working.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view text) {
    return util::fnv1a64(text);
}

/// The identity of a run in the ledger. `config` is the bench's
/// canonical flag string (whatever the bench considers
/// workload-defining); the hash is derived, never stored independently.
struct LedgerKey {
    std::string bench;
    std::string config;
    std::uint64_t seed = 0;
    std::size_t threads = 0;
};

/// Serialize one ledger record (no trailing newline). Build provenance
/// (git sha, build mode, compiler, sanitizer) is taken from
/// BuildInfo::current(); metrics and the optional span summary come from
/// the same sources the run report uses, so ledger and report never
/// disagree.
[[nodiscard]] std::string ledger_record_json(const LedgerKey& key,
                                             const MetricsRegistry& registry,
                                             const ReportInfo& info);

/// Append one record to `path` (created if missing). Returns false and
/// logs at error level on I/O failure; benches treat that as soft.
bool ledger_append(const std::string& path, const LedgerKey& key,
                   const MetricsRegistry& registry, const ReportInfo& info);

/// Read every well-formed record from a ledger file. Lines that are
/// blank, truncated, or fail to parse are skipped (counted in
/// *skipped when non-null) — a crash mid-append must not poison the
/// whole history. Returns false only when the file cannot be opened.
bool ledger_read(const std::string& path, std::vector<JsonValue>& out,
                 std::size_t* skipped = nullptr);

}  // namespace gcdr::obs
