#pragma once
// Opt-in live progress for long-running sweeps and MC budgets: a
// thread-safe done/total tally that emits rate-limited "done/total (pct),
// eta" lines through the structured logger, so a multi-minute
// `bench_xval_ber --deep` run is no longer silent.
//
// Cost model, matching the rest of obs/: progress is globally opt-in
// (`ProgressReporter::set_enabled(true)`, wired to the bench --progress
// flag). Producers (exec::SweepRunner, mc/ engines) check enabled()
// once and skip construction entirely when off — the disabled path costs
// one relaxed atomic load per sweep/round, nothing per point. When on,
// add() is one relaxed fetch_add plus a rate-gate check; the formatted
// line is only built for the (at most) ~2 records/second that pass the
// gate. Purely observational: results and RNG streams are untouched, so
// the exec/ determinism contract holds with progress on or off.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/log.hpp"

namespace gcdr::obs {

class ProgressReporter {
public:
    /// `label` names the work ("sweep.map", "mc.is"); `total` is the
    /// expected unit count (points, evaluations). Emits at most one
    /// record per `min_interval_s` (plus the final one from finish()).
    explicit ProgressReporter(std::string label, std::uint64_t total,
                              double min_interval_s = 0.5);

    /// Count `n` units done; emits a progress record if the gate allows.
    void add(std::uint64_t n = 1);

    /// Emit the final record unconditionally (idempotent).
    void finish();

    [[nodiscard]] std::uint64_t done() const {
        return done_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total() const { return total_; }

    /// Global opt-in switch (bench --progress). Default off.
    static void set_enabled(bool on);
    [[nodiscard]] static bool enabled();

private:
    void emit(std::uint64_t done_now, std::uint64_t suppressed);

    std::string label_;
    std::uint64_t total_;
    std::atomic<std::uint64_t> done_{0};
    std::atomic<bool> finished_{false};
    LogRateGate gate_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace gcdr::obs
