#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace gcdr::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

// Crash-handler registry: one recorder at a time (see header).
std::atomic<FlightRecorder*> g_crash_recorder{nullptr};

const char* signal_name(int sig) {
    switch (sig) {
        case SIGSEGV: return "SIGSEGV";
        case SIGABRT: return "SIGABRT";
        case SIGFPE: return "SIGFPE";
        case SIGILL: return "SIGILL";
        case SIGBUS: return "SIGBUS";
        default: return "signal";
    }
}

void crash_handler(int sig) {
    // Restore default disposition first so a second fault (or our own
    // re-raise) terminates instead of recursing.
    std::signal(sig, SIG_DFL);
    if (FlightRecorder* rec =
            g_crash_recorder.exchange(nullptr, std::memory_order_acq_rel)) {
        rec->dump(std::string("signal:") + signal_name(sig));
    }
    std::raise(sig);
}

}  // namespace

std::string sanitize_dump_tag(const std::string& reason) {
    std::string tag;
    tag.reserve(reason.size());
    for (char c : reason) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-';
        tag.push_back(ok ? c : '_');
        if (tag.size() >= 48) break;  // keep paths bounded
    }
    if (tag.empty()) tag = "dump";
    return tag;
}

FlightRing::FlightRing(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      slots_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      mask_(slots_.size() - 1) {}

std::vector<FlightEvent> FlightRing::snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, slots_.size());
    std::vector<FlightEvent> out;
    out.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i) out.push_back(slots_[i & mask_]);
    return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config config) : config_(std::move(config)) {}

FlightRecorder::~FlightRecorder() {
    // Detach from the crash handler so a later signal doesn't dump
    // through a destroyed recorder.
    FlightRecorder* self = this;
    g_crash_recorder.compare_exchange_strong(self, nullptr,
                                             std::memory_order_acq_rel);
}

FlightRing& FlightRecorder::ring(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : rings_)
        if (r->name() == name) return *r;
    rings_.push_back(
        std::make_unique<FlightRing>(name, config_.ring_capacity));
    return *rings_.back();
}

void FlightRecorder::set_waveform_dump(
    std::function<std::vector<std::string>(const std::string&, std::int64_t,
                                           std::int64_t)>
        hook) {
    std::lock_guard<std::mutex> lock(mu_);
    waveform_dump_ = std::move(hook);
}

std::string FlightRecorder::dump(const std::string& reason,
                                 std::uint64_t focus_id) {
    const std::uint64_t n =
        triggers_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (n >= config_.max_dumps) return "";

    // Snapshot every ring up front; find the trigger time (newest event
    // anywhere) and, if no focus was given, the newest traced event.
    struct RingView {
        const FlightRing* ring;
        std::vector<FlightEvent> events;
    };
    std::vector<RingView> views;
    views.reserve(rings_.size());
    std::int64_t trigger_time_fs = 0;
    const CausalTracer* focus_tracer = nullptr;
    std::int64_t focus_time_fs = -1;
    for (const auto& r : rings_) {
        views.push_back(RingView{r.get(), r->snapshot()});
        for (const FlightEvent& ev : views.back().events) {
            trigger_time_fs = std::max(trigger_time_fs, ev.time_fs);
            if (focus_id == 0 && ev.cause_id != 0 && r->tracer() &&
                ev.time_fs > focus_time_fs) {
                focus_time_fs = ev.time_fs;
                focus_id = ev.cause_id;
                focus_tracer = r->tracer();
            }
        }
    }
    if (focus_id != 0 && !focus_tracer) {
        // Explicit focus id: resolve against the first ring that has a
        // tracer attached (single-scheduler dumps, the common case).
        for (const auto& r : rings_)
            if (r->tracer()) { focus_tracer = r->tracer(); break; }
    }

    // Dump names carry the sanitized reason (which includes the faulting
    // lane, e.g. "lock_loss:ch2" -> "lock_loss_ch2") plus a process-wide
    // monotonic sequence number. The per-recorder index `n` only gates
    // max_dumps: two recorders sharing a dump_dir — or two lanes faulting
    // in the same run — would both have been "flight_dump_0" and the
    // second post-mortem silently overwrote the first.
    static std::atomic<std::uint64_t> g_dump_seq{0};
    const std::uint64_t seq =
        g_dump_seq.fetch_add(1, std::memory_order_relaxed);
    const std::string stem = config_.dump_dir + "/flight_dump_" +
                             sanitize_dump_tag(reason) + "_" +
                             std::to_string(seq);
    const std::string json_path = stem + ".json";

    std::vector<std::string> waveform_paths;
    if (waveform_dump_) {
        waveform_paths = waveform_dump_(
            stem, trigger_time_fs - config_.window_fs,
            trigger_time_fs + config_.window_fs);
    }

    JsonWriter w;
    w.begin_object();
    w.key("schema").value("gcdr.flight.dump/v1");
    w.key("reason").value(reason);
    w.key("trigger_time_fs").value(static_cast<std::int64_t>(trigger_time_fs));
    w.key("rings").begin_object();
    for (const RingView& view : views) {
        w.key(view.ring->name()).begin_object();
        w.key("appended").value(view.ring->appended());
        w.key("events").begin_array();
        for (const FlightEvent& ev : view.events) {
            w.begin_object();
            w.key("time_fs").value(ev.time_fs);
            w.key("kind").value(ev.kind);
            w.key("value").value(ev.value);
            w.key("cause_id").value(ev.cause_id);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.key("causal_chain").begin_array();
    if (focus_id != 0 && focus_tracer) {
        for (const CausalTracer::Record& rec : focus_tracer->chain(focus_id)) {
            w.begin_object();
            w.key("id").value(rec.id);
            w.key("parent").value(rec.parent);
            w.key("time_fs").value(rec.time_fs);
            // Annotate with any recorded event that this id caused, so
            // the chain reads "decision ← stage eval ← EDET gate" without
            // cross-referencing by hand.
            for (const RingView& view : views) {
                for (const FlightEvent& ev : view.events) {
                    if (ev.cause_id == rec.id) {
                        w.key("ring").value(view.ring->name());
                        w.key("kind").value(ev.kind);
                        goto annotated;
                    }
                }
            }
        annotated:
            w.end_object();
        }
    }
    w.end_array();
    w.key("waveforms").begin_array();
    for (const std::string& p : waveform_paths) w.value(p);
    w.end_array();
    w.end_object();

    std::ofstream out(json_path);
    if (!out) {
        log_error("obs.flight", "cannot open dump file",
                  {{"path", json_path}});
        return "";
    }
    out << w.str() << '\n';
    if (!out) return "";
    dump_paths_.push_back(json_path);
    log_info("obs.flight", "dumped ring buffer",
             {{"reason", reason}, {"path", json_path}});
    return json_path;
}

std::vector<std::string> FlightRecorder::dump_paths() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dump_paths_;
}

void FlightRecorder::install_crash_handler() {
    g_crash_recorder.store(this, std::memory_order_release);
    if (handler_installed_) return;
    handler_installed_ = true;
    for (int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS})
        std::signal(sig, crash_handler);
}

}  // namespace gcdr::obs
