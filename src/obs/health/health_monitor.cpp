#include "obs/health/health_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gcdr::obs::health {

const char* lock_state_name(LockState s) {
    switch (s) {
        case LockState::kAcquiring: return "acquiring";
        case LockState::kLocked: return "locked";
        case LockState::kDegraded: return "degraded";
        case LockState::kLost: return "lost";
    }
    return "unknown";
}

void FixedHistogram::record(double v) {
    if (counts_.empty()) return;
    const double span = hi_ - lo_;
    double x = (v - lo_) / span * static_cast<double>(counts_.size());
    std::size_t i = 0;
    if (x >= static_cast<double>(counts_.size())) {
        i = counts_.size() - 1;
    } else if (x > 0.0) {
        i = static_cast<std::size_t>(x);
        if (i >= counts_.size()) i = counts_.size() - 1;
    }
    ++counts_[i];
}

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

}  // namespace

void LaneHealthMonitor::configure(const HealthConfig& cfg) {
    cfg_ = cfg;
    if (cfg_.window < 2) cfg_.window = 2;
    cfg_.window = round_up_pow2(cfg_.window);
    ring_.assign(cfg_.window, 0.0);
    ring_mask_ = cfg_.window - 1;
    // Phase error spans one UI around zero; folded decision errors go
    // below, so leave headroom on the low side. Margins live in
    // [-0.5, 1.0) after folding.
    pe_hist_ = FixedHistogram(-0.75, 0.75, 32);
    margin_hist_ = FixedHistogram(-0.5, 1.0, 32);
    reset();
}

void LaneHealthMonitor::reset() {
    state_ = LockState::kAcquiring;
    samples_ = windows_ = good_windows_ = bad_windows_ = 0;
    margin_violations_ = 0;
    good_streak_ = bad_streak_ = 0;
    first_sample_fs_ = degraded_since_fs_ = -1;
    settle_ui_ = -1.0;
    relocks_ = 0;
    last_relock_ui_ = -1.0;
    eye_ui_ = drift_fast_ui_ = drift_slow_ui_ = drift_ui_ = 0.0;
    ewma_primed_ = false;
    last_window_ = WindowStats{};
    pe_hist_.reset();
    margin_hist_.reset();
}

void LaneHealthMonitor::on_margin(std::int64_t time_fs, double margin_ui) {
    if (first_sample_fs_ < 0) first_sample_fs_ = time_fs;
    if (margin_ui < 0.0) ++margin_violations_;
    pe_hist_.record(margin_ui - cfg_.center_ui);
    margin_hist_.record(margin_ui);
    ring_[samples_ & ring_mask_] = margin_ui;
    ++samples_;
    if ((samples_ & ring_mask_) == 0) complete_window(time_fs);
}

void LaneHealthMonitor::complete_window(std::int64_t time_fs) {
    const std::size_t n = ring_.size();
    double sum = 0.0;
    double sum2 = 0.0;
    double mn = ring_[0];
    double mx = ring_[0];
    for (double m : ring_) {
        const double pe = m - cfg_.center_ui;
        sum += pe;
        sum2 += pe * pe;
        mn = std::min(mn, m);
        mx = std::max(mx, m);
    }
    last_window_.mean_pe_ui = sum / static_cast<double>(n);
    last_window_.rms_pe_ui = std::sqrt(sum2 / static_cast<double>(n));
    last_window_.min_margin_ui = mn;
    last_window_.max_margin_ui = mx;
    ++windows_;

    const bool good =
        mn >= cfg_.good_min_margin_ui &&
        std::fabs(last_window_.mean_pe_ui) <= cfg_.good_max_abs_pe_ui;
    const bool bad =
        mn < cfg_.bad_min_margin_ui ||
        std::fabs(last_window_.mean_pe_ui) > cfg_.bad_max_abs_pe_ui;
    if (good) {
        ++good_windows_;
        ++good_streak_;
    } else {
        good_streak_ = 0;
    }
    if (bad) {
        ++bad_windows_;
        ++bad_streak_;
    } else {
        bad_streak_ = 0;
    }

    // Eye estimate: the UI fraction no transition crossed this window.
    const double eye_w = std::clamp(1.0 - (mx - mn), 0.0, 1.0);
    if (!ewma_primed_) {
        eye_ui_ = eye_w;
        drift_fast_ui_ = drift_slow_ui_ = last_window_.mean_pe_ui;
        ewma_primed_ = true;
    } else {
        eye_ui_ += cfg_.eye_alpha * (eye_w - eye_ui_);
        drift_fast_ui_ +=
            cfg_.drift_fast_alpha * (last_window_.mean_pe_ui - drift_fast_ui_);
        drift_slow_ui_ +=
            cfg_.drift_slow_alpha * (last_window_.mean_pe_ui - drift_slow_ui_);
    }
    drift_ui_ = std::fabs(drift_fast_ui_ - drift_slow_ui_);

    switch (state_) {
        case LockState::kAcquiring:
            if (good_streak_ >= cfg_.lock_windows) {
                settle_ui_ = static_cast<double>(time_fs - first_sample_fs_) /
                             cfg_.ui_fs;
                transition(LockState::kLocked, time_fs);
            } else if (bad_streak_ >= cfg_.lost_windows ||
                       windows_ >= cfg_.acquire_timeout_windows) {
                // A lane that is consistently *bad* while acquiring (e.g. a
                // gross TX rate offset) is declared lost without waiting out
                // the full acquisition timeout.
                transition(LockState::kLost, time_fs);
            }
            break;
        case LockState::kLocked:
            if (bad_streak_ >= cfg_.lost_windows) {
                transition(LockState::kLost, time_fs);
            } else if (!good) {
                degraded_since_fs_ = time_fs;
                transition(LockState::kDegraded, time_fs);
            }
            break;
        case LockState::kDegraded:
            if (bad_streak_ >= cfg_.lost_windows) {
                transition(LockState::kLost, time_fs);
            } else if (good_streak_ >= cfg_.relock_windows) {
                ++relocks_;
                last_relock_ui_ =
                    static_cast<double>(time_fs - degraded_since_fs_) /
                    cfg_.ui_fs;
                transition(LockState::kLocked, time_fs);
            }
            break;
        case LockState::kLost:
            // Sticky within a run: the post-mortem has fired and the
            // terminal state is what the report should carry.
            break;
    }
}

void LaneHealthMonitor::transition(LockState next, std::int64_t /*time_fs*/) {
    const LockState from = state_;
    state_ = next;
    if (next == LockState::kLost && on_lost) on_lost(from);
}

double LaneHealthMonitor::score() const {
    double w = 0.0;
    switch (state_) {
        case LockState::kAcquiring: w = 0.3; break;
        case LockState::kLocked: w = 1.0; break;
        case LockState::kDegraded: w = 0.6; break;
        case LockState::kLost: return 0.0;
    }
    const double eye = std::clamp(eye_ui_, 0.0, 1.0);
    const double drift_penalty = std::max(0.0, 1.0 - 4.0 * drift_ui_);
    return w * eye * drift_penalty;
}

void HealthHub::configure(std::size_t n_lanes, const HealthConfig& cfg) {
    lanes_.assign(n_lanes, LaneHealthMonitor(cfg));
}

std::size_t HealthHub::locked_lanes() const {
    std::size_t n = 0;
    for (const auto& m : lanes_) {
        if (m.state() == LockState::kLocked) ++n;
    }
    return n;
}

bool HealthHub::all_locked() const {
    return locked_lanes() == lanes_.size() && !lanes_.empty();
}

namespace {

void write_histogram(JsonWriter& w, const FixedHistogram& h) {
    w.begin_object();
    w.key("lo").value(h.lo());
    w.key("hi").value(h.hi());
    w.key("counts").begin_array();
    for (std::size_t i = 0; i < h.bins(); ++i) w.value(h.count(i));
    w.end_array();
    w.end_object();
}

void write_lane(JsonWriter& w, const LaneHealthMonitor& m, std::size_t lane) {
    w.begin_object();
    w.key("lane").value(static_cast<std::uint64_t>(lane));
    w.key("state").value(lock_state_name(m.state()));
    w.key("score").value(m.score());
    w.key("samples").value(m.samples());
    w.key("windows").value(m.windows());
    w.key("good_windows").value(m.good_windows());
    w.key("bad_windows").value(m.bad_windows());
    w.key("margin_violations").value(m.margin_violations());
    w.key("settle_ui").value(m.settle_ui());
    w.key("relocks").value(m.relocks());
    w.key("last_relock_ui").value(m.last_relock_ui());
    w.key("eye_ui").value(m.eye_ui());
    w.key("drift_ui").value(m.drift_ui());
    const WindowStats& s = m.last_window();
    w.key("window").begin_object();
    w.key("mean_pe_ui").value(s.mean_pe_ui);
    w.key("rms_pe_ui").value(s.rms_pe_ui);
    w.key("min_margin_ui").value(s.min_margin_ui);
    w.key("max_margin_ui").value(s.max_margin_ui);
    w.end_object();
    w.key("pe_hist");
    write_histogram(w, m.pe_histogram());
    w.key("margin_hist");
    write_histogram(w, m.margin_histogram());
    w.end_object();
}

}  // namespace

std::string lane_health_json(const LaneHealthMonitor& m, std::size_t lane) {
    JsonWriter w(JsonWriter::kCompact);
    write_lane(w, m, lane);
    return w.str();
}

std::string HealthHub::snapshot_json() const {
    JsonWriter w(JsonWriter::kCompact);
    w.begin_object();
    w.key("schema").value(kHealthSchema);
    w.key("lanes").begin_array();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        write_lane(w, lanes_[i], i);
    }
    w.end_array();
    w.end_object();
    return w.str();
}

void HealthHub::publish(MetricsRegistry& reg, const std::string& prefix) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        const LaneHealthMonitor& m = lanes_[i];
        const std::string p = prefix + ".ch" + std::to_string(i) + ".health.";
        reg.gauge(p + "state")
            .set(static_cast<double>(static_cast<int>(m.state())));
        reg.gauge(p + "score").set(m.score());
        reg.gauge(p + "eye_ui").set(m.eye_ui());
        reg.gauge(p + "drift_ui").set(m.drift_ui());
        reg.gauge(p + "settle_ui").set(m.settle_ui());
        reg.gauge(p + "relocks").set(static_cast<double>(m.relocks()));
        reg.gauge(p + "windows").set(static_cast<double>(m.windows()));
        reg.gauge(p + "good_windows")
            .set(static_cast<double>(m.good_windows()));
        reg.gauge(p + "bad_windows").set(static_cast<double>(m.bad_windows()));
        reg.gauge(p + "margin_violations")
            .set(static_cast<double>(m.margin_violations()));
    }
    reg.gauge(prefix + ".health.locked_lanes")
        .set(static_cast<double>(locked_lanes()));
}

}  // namespace gcdr::obs::health
