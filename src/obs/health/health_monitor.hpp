#pragma once
// In-situ lane-health monitoring (DESIGN.md §14). Real multi-channel CDR
// silicon ships lock detectors and background eye monitors next to every
// lane; this is the reproduction's equivalent, built to the same rules as
// the rest of obs/:
//
//   - pure observation: a monitor consumes the (time, decision-margin)
//     stream a lane already produces and never touches the simulation —
//     no RNG draws, no event mutation — so an attached run is
//     bit-identical in decisions/counters to a detached one,
//   - allocation-free hot path: samples land in a fixed power-of-two
//     ring; windows, histograms and EWMAs are fixed-size arrays updated
//     in place,
//   - per-lane state only: lanes never share mutable state, so health
//     snapshots are thread-count invariant for free (each lane is
//     stepped by exactly one scheduler thread),
//   - layering: obs/ must not depend on sim/cdr. The monitor speaks raw
//     femtoseconds and margin-in-UI doubles; cdr/ and sim/batch/ feed it
//     through a nullable pointer + one branch, the same zero-cost-when-
//     detached idiom as the tracers and the flight recorder.
//
// Signals per lane:
//   - windowed phase error (margin minus the sampling center, 0.5 UI or
//     0.625 UI improved) and decision margin: per-window mean/rms/min
//     plus cumulative fixed-bin histograms,
//   - a hysteretic lock-state machine acquiring -> locked -> degraded ->
//     lost that measures settling time and re-lock time in UI,
//   - an eye-opening estimator (1 - observed phase-error span, EWMA'd),
//   - EWMA drift detection (fast vs slow mean-phase-error trackers),
//   - a composite health score in [0, 1].
//
// Snapshots serialize as gcdr.health/v1 — the same bytes land in run
// reports, the ledger, and the daemon's /v1/health and /v1/watch frames.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gcdr::obs {
class MetricsRegistry;
}

namespace gcdr::obs::health {

inline constexpr const char* kHealthSchema = "gcdr.health/v1";

enum class LockState : int {
    kAcquiring = 0,
    kLocked = 1,
    kDegraded = 2,
    kLost = 3,
};

/// Stable lower-case name ("acquiring", "locked", "degraded", "lost").
[[nodiscard]] const char* lock_state_name(LockState s);

struct HealthConfig {
    /// One unit interval in femtoseconds (settling/re-lock times are
    /// reported in UI). 400 ps = the paper's 2.5 Gb/s rate.
    double ui_fs = 400e3;
    /// Sampling center the margins fold around: 0.5 UI, or 0.625 UI for
    /// the improved-sampling channel (cdr::lane_step::fold_margin_ui).
    double center_ui = 0.5;
    /// Samples per window. Must be a power of two (the sample ring's
    /// capacity is the window).
    std::size_t window = 64;

    // Window classification. A window is GOOD when its minimum margin
    // and mean phase error are comfortably inside the eye; BAD when a
    // transition came within bad_min_margin_ui of the sampling point
    // (folded decision errors go negative, so errors always classify
    // bad) or the mean phase error left the eye region. Neither -> a
    // neutral window: it breaks a good streak without feeding the lost
    // counter. Defaults tolerate the paper's full Table 1 jitter budget
    // (DJ 0.4 UIpp sweeps the mean +-0.2 UI).
    double good_min_margin_ui = 0.10;
    double good_max_abs_pe_ui = 0.30;
    double bad_min_margin_ui = 0.04;
    double bad_max_abs_pe_ui = 0.42;

    // Hysteresis (in windows).
    std::size_t lock_windows = 4;    ///< consecutive good -> locked
    std::size_t relock_windows = 2;  ///< good while degraded -> locked
    std::size_t lost_windows = 6;    ///< consecutive bad -> lost
    /// Acquiring for this many windows without locking -> lost (a lane
    /// that can never lock must still reach a terminal state so the
    /// post-mortem hook fires).
    std::size_t acquire_timeout_windows = 256;

    // EWMA coefficients.
    double eye_alpha = 0.25;
    double drift_fast_alpha = 0.30;
    double drift_slow_alpha = 0.03;
};

/// Cumulative fixed-bin histogram over a closed value range; out-of-range
/// samples clamp into the edge bins. POD-array storage, no allocation
/// after construction.
class FixedHistogram {
public:
    FixedHistogram() = default;
    FixedHistogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0) {}

    void record(double v);
    void reset() { for (auto& c : counts_) c = 0; }

    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_[i]; }
    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }

private:
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<std::uint64_t> counts_;
};

/// Per-window summary statistics (the last completed window's are kept
/// for snapshots).
struct WindowStats {
    double mean_pe_ui = 0.0;  ///< mean phase error
    double rms_pe_ui = 0.0;   ///< rms phase error
    double min_margin_ui = 0.0;
    double max_margin_ui = 0.0;
};

/// One lane's monitor. Not thread-safe by design: exactly one simulation
/// thread feeds a lane (the per-channel scheduler or the batch kernel's
/// lane loop), which is what makes snapshots thread-count invariant.
class LaneHealthMonitor {
public:
    LaneHealthMonitor() { configure(HealthConfig{}); }
    explicit LaneHealthMonitor(const HealthConfig& cfg) { configure(cfg); }

    /// (Re)apply a config; resets all state. `window` is rounded up to a
    /// power of two.
    void configure(const HealthConfig& cfg);
    void reset();

    /// Hot path: one decision-margin sample (the folded margin the lane
    /// already computes for its eye/margin telemetry). `time_fs` is the
    /// transition's absolute simulation time.
    void on_margin(std::int64_t time_fs, double margin_ui);

    /// Invoked with the previous state on any transition INTO kLost —
    /// the flight-recorder dump hook. Set before the run starts.
    std::function<void(LockState from)> on_lost;

    // -- accessors ---------------------------------------------------
    [[nodiscard]] LockState state() const { return state_; }
    [[nodiscard]] std::uint64_t samples() const { return samples_; }
    [[nodiscard]] std::uint64_t windows() const { return windows_; }
    [[nodiscard]] std::uint64_t good_windows() const { return good_windows_; }
    [[nodiscard]] std::uint64_t bad_windows() const { return bad_windows_; }
    /// Folded margins below zero: a transition landed past the sampling
    /// point, i.e. an almost-certain decision error.
    [[nodiscard]] std::uint64_t margin_violations() const {
        return margin_violations_;
    }
    /// Settling time in UI from the first sample to the first lock;
    /// negative while never locked.
    [[nodiscard]] double settle_ui() const { return settle_ui_; }
    [[nodiscard]] std::uint64_t relocks() const { return relocks_; }
    /// Duration of the last degraded -> locked recovery in UI; negative
    /// when no re-lock has happened.
    [[nodiscard]] double last_relock_ui() const { return last_relock_ui_; }
    [[nodiscard]] double eye_ui() const { return eye_ui_; }
    [[nodiscard]] double drift_ui() const { return drift_ui_; }
    /// Composite score in [0, 1]: lock-state weight x eye opening x a
    /// drift penalty. 0 the moment a lane is lost.
    [[nodiscard]] double score() const;
    [[nodiscard]] const WindowStats& last_window() const { return last_window_; }
    [[nodiscard]] const FixedHistogram& pe_histogram() const { return pe_hist_; }
    [[nodiscard]] const FixedHistogram& margin_histogram() const {
        return margin_hist_;
    }
    [[nodiscard]] const HealthConfig& config() const { return cfg_; }

private:
    void complete_window(std::int64_t time_fs);
    void transition(LockState next, std::int64_t time_fs);

    HealthConfig cfg_;
    std::vector<double> ring_;  ///< pow2 sample ring == current window
    std::size_t ring_mask_ = 0;

    LockState state_ = LockState::kAcquiring;
    std::uint64_t samples_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t good_windows_ = 0;
    std::uint64_t bad_windows_ = 0;
    std::uint64_t margin_violations_ = 0;
    std::size_t good_streak_ = 0;
    std::size_t bad_streak_ = 0;
    std::int64_t first_sample_fs_ = -1;
    std::int64_t degraded_since_fs_ = -1;
    double settle_ui_ = -1.0;
    std::uint64_t relocks_ = 0;
    double last_relock_ui_ = -1.0;
    double eye_ui_ = 0.0;
    double drift_fast_ui_ = 0.0;
    double drift_slow_ui_ = 0.0;
    double drift_ui_ = 0.0;
    bool ewma_primed_ = false;
    WindowStats last_window_;
    FixedHistogram pe_hist_;
    FixedHistogram margin_hist_;
};

/// A receiver's worth of monitors plus the serialization / export
/// surface. Owns one LaneHealthMonitor per lane; lanes are configured
/// identically (the scenario layer's channel-template rule) but step
/// independently.
class HealthHub {
public:
    HealthHub() = default;
    HealthHub(std::size_t n_lanes, const HealthConfig& cfg) {
        configure(n_lanes, cfg);
    }

    void configure(std::size_t n_lanes, const HealthConfig& cfg);

    [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
    [[nodiscard]] LaneHealthMonitor& lane(std::size_t i) { return lanes_[i]; }
    [[nodiscard]] const LaneHealthMonitor& lane(std::size_t i) const {
        return lanes_[i];
    }

    /// Lanes currently in kLocked.
    [[nodiscard]] std::size_t locked_lanes() const;
    /// True when every lane is locked.
    [[nodiscard]] bool all_locked() const;

    /// One gcdr.health/v1 snapshot document:
    ///   {"schema":"gcdr.health/v1","lanes":[{...lane 0...},...]}
    /// Deterministic for a given monitor state — the daemon's final
    /// /v1/watch frame and the run report's health block are this exact
    /// string, which is what makes them byte-comparable.
    [[nodiscard]] std::string snapshot_json() const;

    /// Publish per-lane health gauges into a registry under
    /// `<prefix>.ch<i>.health.*` (state/score/eye_ui/drift_ui/settle_ui/
    /// relocks/windows/good_windows/bad_windows/margin_violations) plus
    /// `<prefix>.health.locked_lanes`. Values are deterministic, so
    /// reports that carry them still diff bit-identical across thread
    /// counts.
    void publish(MetricsRegistry& reg, const std::string& prefix) const;

private:
    std::vector<LaneHealthMonitor> lanes_;
};

/// Serialize one lane's state as the per-lane object inside a
/// gcdr.health/v1 snapshot (exposed for tests).
[[nodiscard]] std::string lane_health_json(const LaneHealthMonitor& m,
                                           std::size_t lane);

}  // namespace gcdr::obs::health
