#include "obs/canonical.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/json.hpp"
#include "util/hash.hpp"

namespace gcdr::obs {

namespace {

/// Largest double-exact integer magnitude: beyond 2^53 the double value
/// can no longer distinguish neighboring integers, so integer tokens
/// keep their exact digits instead of round-tripping through the double.
constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53

/// True when `token` is a pure JSON integer (optional minus, digits
/// only — no fraction, no exponent).
bool is_integer_token(std::string_view token) {
    if (token.empty()) return false;
    std::size_t i = token[0] == '-' ? 1 : 0;
    if (i >= token.size()) return false;
    for (; i < token.size(); ++i) {
        if (token[i] < '0' || token[i] > '9') return false;
    }
    return true;
}

void append_canonical(const JsonValue& v, std::string& out) {
    using Type = JsonValue::Type;
    switch (v.type) {
        case Type::kNull:
            out += "null";
            break;
        case Type::kBool:
            out += v.boolean ? "true" : "false";
            break;
        case Type::kNumber:
            out += canonical_number(v.number, v.text);
            break;
        case Type::kString:
            out += '"';
            out += JsonWriter::escape(v.text);
            out += '"';
            break;
        case Type::kArray:
            out += '[';
            for (std::size_t i = 0; i < v.items.size(); ++i) {
                if (i) out += ',';
                append_canonical(v.items[i], out);
            }
            out += ']';
            break;
        case Type::kObject: {
            // Sort member *indices* bytewise by key; on duplicates keep
            // the first occurrence (the one find() resolves) so a
            // reordered duplicate cannot change the canonical form.
            std::vector<std::size_t> order(v.members.size());
            for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return v.members[a].first <
                                        v.members[b].first;
                             });
            out += '{';
            bool first = true;
            const std::string* prev_key = nullptr;
            for (std::size_t idx : order) {
                const auto& [key, val] = v.members[idx];
                if (prev_key && *prev_key == key) continue;  // duplicate
                prev_key = &key;
                if (!first) out += ',';
                first = false;
                out += '"';
                out += JsonWriter::escape(key);
                out += "\":";
                append_canonical(val, out);
            }
            out += '}';
            break;
        }
    }
}

}  // namespace

std::string canonical_number(double value, std::string_view token) {
    char buf[40];
    // Integer tokens too large for a double to hold exactly keep their
    // literal digits ("-0" still normalizes through the double path).
    if (is_integer_token(token) && std::abs(value) >= kExactIntLimit) {
        std::string t(token);
        // Normalize any leading zeros a lenient producer may have left
        // (RFC 8259 forbids them, but the cache key must not trust that).
        const bool neg = t[0] == '-';
        std::size_t i = neg ? 1 : 0;
        while (i + 1 < t.size() && t[i] == '0') t.erase(i, 1);
        return t;
    }
    if (std::isfinite(value) && std::nearbyint(value) == value &&
        std::abs(value) < kExactIntLimit) {
        // Integral double (covers 1.0, 1e0, and both zeros: -0.0 prints
        // as "0" through the int64 cast).
        std::snprintf(buf, sizeof buf, "%" PRId64,
                      static_cast<std::int64_t>(value));
        return buf;
    }
    if (!std::isfinite(value)) return "null";  // writer convention
    std::snprintf(buf, sizeof buf, "%.12g", value);
    if (std::strtod(buf, nullptr) != value) {
        std::snprintf(buf, sizeof buf, "%.17g", value);
    }
    return buf;
}

std::string canonical_json(const JsonValue& v) {
    std::string out;
    append_canonical(v, out);
    return out;
}

std::uint64_t canonical_hash(const JsonValue& v) {
    return util::fnv1a64(canonical_json(v));
}

bool canonicalize(std::string_view text, std::string& out,
                  std::string* error) {
    JsonValue v;
    if (!obs::json_parse(text, v, error)) return false;
    out = canonical_json(v);
    return true;
}

}  // namespace gcdr::obs
