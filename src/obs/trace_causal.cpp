#include "obs/trace_causal.hpp"

namespace gcdr::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}
}  // namespace

CausalTracer::CausalTracer(std::size_t capacity)
    : ring_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1) {}

std::vector<CausalTracer::Record> CausalTracer::chain(
    std::uint64_t id, std::size_t max_len) const {
    std::vector<Record> out;
    while (id != 0 && out.size() < max_len) {
        const Record* r = find(id);
        if (!r) break;  // evicted: the chain is truncated, not wrong
        out.push_back(*r);
        id = r->parent;
    }
    return out;
}

void CausalTracer::clear() {
    for (Record& r : ring_) r = Record{};
    recorded_ = 0;
}

}  // namespace gcdr::obs
