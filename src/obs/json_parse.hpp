#pragma once
// Minimal recursive-descent JSON parser — the read side of obs/json.hpp.
// Consumers: the run-ledger reload path (obs/ledger.hpp) and, per the
// roadmap, the simulation-as-a-service daemon's request decoding. Scope
// is deliberately small: full JSON values (RFC 8259), UTF-8 passed
// through verbatim, \uXXXX escapes decoded (surrogate pairs included),
// objects preserve key order and keep duplicate keys (find() returns the
// first). No external dependency, same as the writer.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gcdr::obs {

/// A parsed JSON document node. Numbers are stored as double (the repo's
/// reports only contain doubles and counters well below 2^53) with the
/// original token kept for exact uint64 reads.
class JsonValue {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    using Member = std::pair<std::string, JsonValue>;

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;  ///< kString: the decoded string; kNumber: the token
    std::vector<JsonValue> items;   ///< kArray
    std::vector<Member> members;    ///< kObject, in document order
    /// Byte offset of this value's first token character in the source
    /// text. Consumers that keep the source around (the scenario loader)
    /// can map it to a line/column via line_column() for diagnostics
    /// about *semantically* bad values long after the parse succeeded.
    std::size_t offset = 0;

    [[nodiscard]] bool is_null() const { return type == Type::kNull; }
    [[nodiscard]] bool is_object() const { return type == Type::kObject; }
    [[nodiscard]] bool is_array() const { return type == Type::kArray; }
    [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
    [[nodiscard]] bool is_string() const { return type == Type::kString; }
    [[nodiscard]] bool is_bool() const { return type == Type::kBool; }

    /// First member with this key, or nullptr (also for non-objects).
    [[nodiscard]] const JsonValue* find(std::string_view key) const;

    /// Convenience typed reads with fallback defaults.
    [[nodiscard]] double number_or(double fallback) const {
        return is_number() ? number : fallback;
    }
    [[nodiscard]] std::string string_or(std::string fallback) const {
        return is_string() ? text : std::move(fallback);
    }
    /// Exact unsigned read from the original token (no double rounding);
    /// falls back for non-numbers and negative/fractional tokens.
    [[nodiscard]] std::uint64_t uint_or(std::uint64_t fallback) const;
};

/// Parse one complete JSON document. Returns false on any syntax error
/// (trailing garbage included) and, when `error` is non-null, stores a
/// one-line description with the byte offset followed by the 1-based
/// line/column, e.g. "bad number at byte 17 (line 2, column 5)". The
/// "<what> at byte N" prefix is stable; match on it, not the suffix.
[[nodiscard]] bool json_parse(std::string_view input, JsonValue& out,
                              std::string* error = nullptr);

/// 1-based line/column of a byte offset in `text` (newline = '\n';
/// offsets past the end clamp to the final position). The reverse map
/// for JsonValue::offset.
struct LineColumn {
    std::size_t line = 1;
    std::size_t column = 1;
};
[[nodiscard]] LineColumn line_column(std::string_view text,
                                     std::size_t offset);

}  // namespace gcdr::obs
