#include "obs/ledger.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace gcdr::obs {

std::string ledger_record_json(const LedgerKey& key,
                               const MetricsRegistry& registry,
                               const ReportInfo& info) {
    const BuildInfo build = BuildInfo::current();
    const std::string hash_hex = util::hash_hex(fnv1a64(key.config));

    JsonWriter w(JsonWriter::kCompact);
    w.begin_object();
    w.key("schema").value(kLedgerSchema);
    w.key("utc").value(
        format_utc_rfc3339(std::chrono::system_clock::now()));
    w.key("bench").value(key.bench);
    w.key("config").value(key.config);
    w.key("config_hash").value(hash_hex);
    if (!info.scenario_hash.empty()) {
        w.key("scenario_file").value(info.scenario_file);
        w.key("scenario_hash").value(info.scenario_hash);
    }
    w.key("git_sha").value(build.git_sha);
    w.key("seed").value(key.seed);
    w.key("threads").value(static_cast<std::uint64_t>(key.threads));
    w.key("build_mode").value(build.build_mode);
    w.key("compiler").value(build.compiler);
    w.key("sanitizer").value(build.sanitizer);
    w.key("wall_seconds").value(info.wall_seconds);
    w.key("metrics");
    registry.write_json(w);
    if (info.spans) {
        w.key("spans").begin_object();
        for (const SpanCollector::Summary& s : info.spans->summaries()) {
            w.key(s.name).begin_object();
            w.key("count").value(s.count);
            w.key("total_seconds").value(s.total_s);
            w.key("max_seconds").value(s.max_s);
            w.end_object();
        }
        w.end_object();
    }
    w.end_object();
    std::string out = w.str();
    if (!info.health_json.empty()) {
        // Same splice as run_report_json: the gcdr.health/v1 snapshot is
        // already compact JSON.
        out.insert(out.size() - 1, ",\"health\":" + info.health_json);
    }
    return out;
}

bool ledger_append(const std::string& path, const LedgerKey& key,
                   const MetricsRegistry& registry, const ReportInfo& info) {
    const std::string line = ledger_record_json(key, registry, info);
    std::ofstream os(path, std::ios::app);
    if (!os) {
        log_error("obs.ledger", "cannot open ledger file",
                  {{"path", path}});
        return false;
    }
    os << line << '\n';
    os.flush();
    if (!os.good()) {
        log_error("obs.ledger", "short write to ledger file",
                  {{"path", path}});
        return false;
    }
    return true;
}

bool ledger_read(const std::string& path, std::vector<JsonValue>& out,
                 std::size_t* skipped) {
    if (skipped) *skipped = 0;
    std::ifstream is(path);
    if (!is) return false;
    std::string line;
    while (std::getline(is, line)) {
        // Strip a stray CR (ledgers may transit Windows tooling).
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;  // blank line: not a skip
        JsonValue v;
        std::string err;
        if (!json_parse(line, v, &err) || v.type != JsonValue::Type::kObject) {
            if (skipped) ++*skipped;
            continue;
        }
        const JsonValue* schema = v.find("schema");
        if (!schema || schema->type != JsonValue::Type::kString ||
            schema->text != kLedgerSchema) {
            if (skipped) ++*skipped;
            continue;
        }
        out.push_back(std::move(v));
    }
    return true;
}

}  // namespace gcdr::obs
