#pragma once
// Span profiling: RAII wall-clock spans over named phases (sweep points,
// MC rounds/levels, convolve calls, whole bench runs) collected into
// per-thread ring buffers and exported as Chrome `trace_event` JSON —
// loadable in chrome://tracing or https://ui.perfetto.dev — plus a compact
// per-span summary folded into the gcdr.bench.report/v1 document.
//
// Cost model: a TraceSpan against a disabled collector is one relaxed
// atomic load in the constructor and one branch in the destructor — cheap
// enough to leave instrumentation compiled in everywhere. When enabled,
// each span costs two steady_clock reads plus one bounded vector append
// into the recording thread's private buffer (no lock on the record path;
// the only lock is taken once per thread at buffer registration). Buffers
// are fixed-capacity: overflowing spans are counted in dropped(), never
// reallocated mid-run.
//
// Merge determinism: merged() is a pure function of the recorded span
// *set* — spans are gathered from every thread buffer and sorted by
// (start, end, name, tid, seq), so the export does not depend on buffer
// registration order or on which thread's buffer is visited first. The
// wall-clock values themselves naturally vary run to run; determinism here
// means the serialization order for a given set of measurements.
//
// Span names must be string literals (or otherwise outlive the collector):
// buffers store the pointer, not a copy, so the record path never
// allocates.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gcdr::obs {

class JsonWriter;  // obs/json.hpp

class SpanCollector {
public:
    struct Span {
        const char* name;    ///< static string (see header comment)
        double t0_s;         ///< start, seconds since enable()
        double t1_s;         ///< end, seconds since enable()
        std::uint32_t tid;   ///< buffer (thread) index, registration order
        std::uint64_t seq;   ///< per-buffer record sequence
    };
    struct Summary {
        std::string name;
        std::uint64_t count = 0;
        double total_s = 0.0;
        double max_s = 0.0;
    };

    /// Start collecting. Each recording thread gets a private buffer with
    /// room for `per_thread_capacity` spans; further spans are dropped
    /// (and counted). No-op when already enabled.
    void enable(std::size_t per_thread_capacity = 32768);
    /// Stop collecting. Recorded spans stay readable until clear().
    void disable();
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Seconds since enable() on the steady clock (0 when disabled).
    [[nodiscard]] double now_s() const;

    /// Append one span to the calling thread's buffer (no-op when
    /// disabled). Normally called by ~TraceSpan, not directly.
    void record(const char* name, double t0_s, double t1_s);

    /// Every recorded span in deterministic order (see header comment).
    [[nodiscard]] std::vector<Span> merged() const;
    /// Per-name count/total/max, sorted by name.
    [[nodiscard]] std::vector<Summary> summaries() const;
    /// Spans lost to full buffers, across all threads.
    [[nodiscard]] std::uint64_t dropped() const;

    /// Chrome trace_event document: {"traceEvents":[...]} with one
    /// complete ("ph":"X") event per span, timestamps in microseconds.
    [[nodiscard]] std::string chrome_trace_json() const;
    /// Write the Chrome trace to `path`; false (+ stderr note) on I/O
    /// failure.
    bool write_chrome_trace(const std::string& path) const;

    /// Forget all recorded spans (buffers stay registered, so cached
    /// thread-local pointers remain valid).
    void clear();

    /// Process-wide collector used by the default TraceSpan constructor
    /// and the instrumented library phases; enabled by bench `--trace`.
    static SpanCollector& global();

private:
    struct Buffer {
        Buffer(std::uint32_t tid, std::size_t capacity) : tid(tid) {
            spans.reserve(capacity);
        }
        std::uint32_t tid;
        std::vector<Span> spans;
        std::uint64_t dropped = 0;
        std::uint64_t next_seq = 0;
    };

    Buffer& local_buffer();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};
    std::size_t capacity_ = 32768;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Buffer>> buffers_;  // stable addresses
};

/// RAII span: captures the collector's enabled state at construction, so
/// a span straddling enable()/disable() is recorded consistently (either
/// fully or not at all).
class TraceSpan {
public:
    explicit TraceSpan(const char* name)
        : TraceSpan(name, SpanCollector::global()) {}
    TraceSpan(const char* name, SpanCollector& collector)
        : collector_(collector.enabled() ? &collector : nullptr),
          name_(name),
          t0_s_(collector_ ? collector_->now_s() : 0.0) {}
    ~TraceSpan() {
        if (collector_) collector_->record(name_, t0_s_, collector_->now_s());
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    SpanCollector* collector_;
    const char* name_;
    double t0_s_;
};

}  // namespace gcdr::obs
