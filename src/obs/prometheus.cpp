#include "obs/prometheus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>

#include "obs/log.hpp"

namespace gcdr::obs {

namespace {

/// Shortest decimal that round-trips (same policy as JsonWriter).
std::string fmt_double(double v) {
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Split an instrument name into (base, inline labels). The inline form
/// is `base{k=v,k2=v2}`; anything malformed falls back to treating the
/// whole string as the base name (it then gets sanitized into '_'s).
void split_name(const std::string& name, std::string& base,
                LabelSet& labels) {
    labels.clear();
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}') {
        base = name;
        return;
    }
    base = name.substr(0, brace);
    std::size_t pos = brace + 1;
    const std::size_t end = name.size() - 1;
    while (pos < end) {
        std::size_t comma = name.find(',', pos);
        if (comma == std::string::npos || comma > end) comma = end;
        const std::string_view item(name.data() + pos, comma - pos);
        const std::size_t eq = item.find('=');
        if (eq != std::string_view::npos && eq > 0) {
            labels.emplace_back(std::string(item.substr(0, eq)),
                                std::string(item.substr(eq + 1)));
        }
        pos = comma + 1;
    }
}

/// Merge const labels under inline ones (inline wins), sorted by key.
LabelSet merge_labels(const LabelSet& const_labels,
                      const LabelSet& inline_labels) {
    LabelSet out = inline_labels;
    for (const auto& cl : const_labels) {
        const bool shadowed =
            std::any_of(inline_labels.begin(), inline_labels.end(),
                        [&](const auto& il) { return il.first == cl.first; });
        if (!shadowed) out.push_back(cl);
    }
    std::sort(out.begin(), out.end());
    return out;
}

/// `{k="v",k2="v2"}`, or "" when empty. `extra` (the histogram `le`)
/// is appended last when non-empty, matching common exporter output.
std::string render_labels(const LabelSet& labels, const std::string& extra_key,
                          const std::string& extra_value) {
    if (labels.empty() && extra_key.empty()) return {};
    std::string out = "{";
    bool first = true;
    auto add = [&](const std::string& k, const std::string& v) {
        if (!first) out += ',';
        first = false;
        out += prometheus_sanitize_name(k);
        out += "=\"";
        out += prometheus_escape_label(v);
        out += '"';
    };
    for (const auto& [k, v] : labels) add(k, v);
    if (!extra_key.empty()) add(extra_key, extra_value);
    out += '}';
    return out;
}

struct Series {
    LabelSet labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
};

/// All instruments of one exposition family (same rendered name).
struct Family {
    const char* type = "untyped";
    std::vector<Series> series;
};

void emit_family(std::string& out, const std::string& fam_name,
                 const Family& fam) {
    out += "# TYPE ";
    out += fam_name;
    out += ' ';
    out += fam.type;
    out += '\n';
    for (const Series& s : fam.series) {
        if (s.counter) {
            out += fam_name;
            out += render_labels(s.labels, "", "");
            out += ' ';
            out += std::to_string(s.counter->value());
            out += '\n';
        } else if (s.gauge) {
            out += fam_name;
            out += render_labels(s.labels, "", "");
            out += ' ';
            out += fmt_double(s.gauge->value());
            out += '\n';
        } else if (s.histogram) {
            const Histogram& h = *s.histogram;
            std::uint64_t cum = 0;
            bool has_inf_bucket = false;
            for (const Histogram::Bucket& b : h.nonempty_buckets()) {
                cum += b.count;
                const bool inf = std::isinf(b.upper);
                has_inf_bucket = has_inf_bucket || inf;
                out += fam_name;
                out += "_bucket";
                out += render_labels(s.labels, "le",
                                     inf ? "+Inf" : fmt_double(b.upper));
                out += ' ';
                out += std::to_string(cum);
                out += '\n';
            }
            if (!has_inf_bucket) {
                out += fam_name;
                out += "_bucket";
                out += render_labels(s.labels, "le", "+Inf");
                out += ' ';
                out += std::to_string(h.count());
                out += '\n';
            }
            out += fam_name;
            out += "_sum";
            out += render_labels(s.labels, "", "");
            out += ' ';
            out += fmt_double(h.sum());
            out += '\n';
            out += fam_name;
            out += "_count";
            out += render_labels(s.labels, "", "");
            out += ' ';
            out += std::to_string(h.count());
            out += '\n';
        }
    }
}

}  // namespace

std::string prometheus_sanitize_name(const std::string& name) {
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string prometheus_escape_label(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

std::string to_prometheus(const MetricsRegistry& registry,
                          const PrometheusOptions& opts) {
    // (family name -> Family), ordered — the exposition is deterministic.
    std::map<std::string, Family> families;
    const std::string prefix = opts.prefix.empty()
                                   ? std::string{}
                                   : prometheus_sanitize_name(opts.prefix) + "_";

    auto family_name = [&](const std::string& base, const char* suffix) {
        return prefix + prometheus_sanitize_name(base) + suffix;
    };

    registry.with_export_lock([&] {
        std::string base;
        LabelSet inline_labels;
        for (const auto& [name, counter] : registry.counters()) {
            split_name(name, base, inline_labels);
            Family& fam = families[family_name(base, "_total")];
            fam.type = "counter";
            Series s;
            s.labels = merge_labels(opts.const_labels, inline_labels);
            s.counter = counter.get();
            fam.series.push_back(std::move(s));
        }
        for (const auto& [name, gauge] : registry.gauges()) {
            if (!gauge->has_value()) continue;  // no null in Prometheus
            split_name(name, base, inline_labels);
            Family& fam = families[family_name(base, "")];
            fam.type = "gauge";
            Series s;
            s.labels = merge_labels(opts.const_labels, inline_labels);
            s.gauge = gauge.get();
            fam.series.push_back(std::move(s));
        }
        for (const auto& [name, hist] : registry.histograms()) {
            split_name(name, base, inline_labels);
            Family& fam = families[family_name(base, "")];
            fam.type = "histogram";
            Series s;
            s.labels = merge_labels(opts.const_labels, inline_labels);
            s.histogram = hist.get();
            fam.series.push_back(std::move(s));
        }
    });

    std::string out;
    for (auto& [name, fam] : families) {
        // Series order within a family: by label signature, so per-lane /
        // per-channel series list in a stable order.
        std::sort(fam.series.begin(), fam.series.end(),
                  [](const Series& a, const Series& b) {
                      return a.labels < b.labels;
                  });
        emit_family(out, name, fam);
    }
    return out;
}

bool write_prometheus(const std::string& path,
                      const MetricsRegistry& registry,
                      const PrometheusOptions& opts) {
    std::ofstream os(path);
    if (!os) {
        log_error("obs.prometheus", "cannot open metrics snapshot file",
                  {{"path", path}});
        return false;
    }
    os << to_prometheus(registry, opts);
    return os.good();
}

}  // namespace gcdr::obs
