#include "obs/process_stats.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gcdr::obs {

namespace {

/// Parse a "Vm...:  <n> kB" line from /proc/self/status. Returns 0 when
/// the file or the key is unavailable (non-Linux).
std::uint64_t proc_status_kb(const char* key) {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return 0;
    const std::size_t key_len = std::strlen(key);
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
            unsigned long long v = 0;
            if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) kb = v;
            break;
        }
    }
    std::fclose(f);
    return kb;
}

}  // namespace

std::uint64_t process_peak_rss_bytes() {
    if (const std::uint64_t kb = proc_status_kb("VmHWM")) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB
#endif
    }
#endif
    return 0;
}

std::uint64_t process_current_rss_bytes() {
    return proc_status_kb("VmRSS") * 1024;
}

void record_process_stats(MetricsRegistry& registry,
                          const std::string& prefix) {
    if (const std::uint64_t peak = process_peak_rss_bytes()) {
        registry.gauge(prefix + ".peak_rss_bytes")
            .set(static_cast<double>(peak));
    }
    if (const std::uint64_t cur = process_current_rss_bytes()) {
        registry.gauge(prefix + ".current_rss_bytes")
            .set(static_cast<double>(cur));
    }
}

}  // namespace gcdr::obs
