#pragma once
// Telemetry core: a registry of named counters, gauges and log-scale
// histograms, plus RAII wall-clock probes. Designed to be zero-cost when
// unused — instrumented components hold plain pointers that default to
// nullptr, so a disabled run pays one predictable branch per hot-path
// event and nothing else. Registry lookups (by name) happen only at
// attach time; the returned references stay valid for the registry's
// lifetime.
//
// Units are by convention: counters are dimensionless event tallies,
// ScopedTimer records seconds, and histogram names carry their unit as a
// suffix (`_ps`, `_seconds`, ...). Exporters live in obs/json.hpp and
// obs/report.hpp.

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gcdr::obs {

/// Monotonically increasing event tally.
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

private:
    std::uint64_t value_ = 0;
};

/// Last-written value, with high/low-water helpers for occupancy-style
/// measurements. Unset gauges export as null.
class Gauge {
public:
    void set(double v) {
        value_ = v;
        has_value_ = true;
    }
    /// Keep the maximum of all observations (high-water mark).
    void set_max(double v) {
        if (!has_value_ || v > value_) set(v);
    }
    /// Keep the minimum of all observations (low-water mark).
    void set_min(double v) {
        if (!has_value_ || v < value_) set(v);
    }
    [[nodiscard]] double value() const { return has_value_ ? value_ : 0.0; }
    [[nodiscard]] bool has_value() const { return has_value_; }

private:
    double value_ = 0.0;
    bool has_value_ = false;
};

/// Fixed log10-spaced histogram for positive measurements spanning many
/// orders of magnitude (periods in ps, timer seconds, BER values). The
/// bucket grid covers [1e-30, 1e12) with kPerDecade buckets per decade;
/// values at or below the range go to an underflow bucket, values above
/// to an overflow bucket. Exact count/sum/min/max are tracked alongside,
/// so means are not quantized — only quantiles are.
class Histogram {
public:
    static constexpr int kPerDecade = 16;
    static constexpr int kMinExp = -30;  ///< lowest decade edge, 10^kMinExp
    static constexpr int kMaxExp = 12;   ///< highest decade edge, 10^kMaxExp
    static constexpr int kBuckets = (kMaxExp - kMinExp) * kPerDecade;

    void record(double v);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
    [[nodiscard]] double mean() const {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /// Quantile estimate (q in [0,1]) from the bucket the q-th sample
    /// falls in, clamped to the exact observed [min, max].
    [[nodiscard]] double quantile(double q) const;

    struct Bucket {
        double upper;         ///< bucket upper edge (inclusive)
        std::uint64_t count;  ///< samples in this bucket
    };
    /// Non-empty buckets in increasing order of upper edge. Underflow
    /// reports upper = 10^kMinExp; overflow reports upper = +inf.
    [[nodiscard]] std::vector<Bucket> nonempty_buckets() const;

    /// Upper edge of bucket index i (exposed for tests).
    [[nodiscard]] static double bucket_upper(int i);

private:
    [[nodiscard]] static int bucket_index(double v);

    std::array<std::uint64_t, kBuckets> bins_{};
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

class JsonWriter;  // obs/json.hpp

/// Owner of all named instruments. Names are free-form dotted paths
/// ("sim.events_executed", "cdr.ch0.period_ps"); requesting the same name
/// twice returns the same instrument, so independent components can share
/// a tally. References remain valid until the registry is destroyed.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
    counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>&
    gauges() const {
        return gauges_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
    histograms() const {
        return histograms_;
    }

    /// Serialize as a {"counters":..,"gauges":..,"histograms":..} object
    /// into an in-progress writer (after w.key(...) or inside an array).
    void write_json(JsonWriter& w) const;
    /// Standalone pretty-printed JSON document of the same object.
    [[nodiscard]] std::string to_json() const;
    /// Flat CSV (kind,name,value) of counters and gauges — histogram
    /// summaries are exported as pseudo-gauges name.count/sum/mean.
    [[nodiscard]] std::string to_csv() const;

private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII wall-clock probe: records elapsed seconds into a histogram on
/// destruction. Null-registry constructor is a no-op probe, so call sites
/// need no branching.
class ScopedTimer {
public:
    ScopedTimer(MetricsRegistry* registry, const std::string& name)
        : hist_(registry ? &registry->histogram(name) : nullptr),
          t0_(Clock::now()) {}
    explicit ScopedTimer(Histogram& h) : hist_(&h), t0_(Clock::now()) {}
    ~ScopedTimer() {
        if (hist_) hist_->record(seconds_so_far());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    [[nodiscard]] double seconds_so_far() const {
        return std::chrono::duration<double>(Clock::now() - t0_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Histogram* hist_;
    Clock::time_point t0_;
};

}  // namespace gcdr::obs
