#pragma once
// Telemetry core: a registry of named counters, gauges and log-scale
// histograms, plus RAII wall-clock probes. Designed to be zero-cost when
// unused — instrumented components hold plain pointers that default to
// nullptr, so a disabled run pays one predictable branch per hot-path
// event and nothing else. Registry lookups (by name) happen only at
// attach time; the returned references stay valid for the registry's
// lifetime.
//
// Units are by convention: counters are dimensionless event tallies,
// ScopedTimer records seconds, and histogram names carry their unit as a
// suffix (`_ps`, `_seconds`, ...). Exporters live in obs/json.hpp and
// obs/report.hpp.
//
// Thread safety (for the exec/ parallel sweep layer): Counter, Gauge and
// Histogram updates are atomic (relaxed ordering — instruments are
// statistics, not synchronization), and registry lookups are
// mutex-guarded, so instrumented code may run concurrently on a
// ThreadPool. Exporters (write_json/to_csv) and multi-field reads are
// snapshot-consistent only when writers are quiescent — take snapshots
// after parallel_for returns. For per-point tallies on hot sweep loops
// prefer obs::ShardedCounter (obs/sharded.hpp): one cache line per lane,
// merged once per sweep, instead of a contended atomic per point.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gcdr::obs {

/// Monotonically increasing event tally. inc() is atomic; concurrent
/// increments are never lost.
class Counter {
public:
    void inc(std::uint64_t n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value, with high/low-water helpers for occupancy-style
/// measurements. Unset gauges export as null. Individual updates are
/// atomic (set_max/set_min via CAS, so concurrent water marks are never
/// lost); value()/has_value() pairs are only snapshot-consistent once
/// writers are quiescent.
class Gauge {
public:
    void set(double v) {
        value_.store(v, std::memory_order_relaxed);
        has_value_.store(true, std::memory_order_release);
    }
    /// Keep the maximum of all observations (high-water mark).
    void set_max(double v) { set_watermark(v, /*keep_max=*/true); }
    /// Keep the minimum of all observations (low-water mark).
    void set_min(double v) { set_watermark(v, /*keep_max=*/false); }
    [[nodiscard]] double value() const {
        return has_value() ? value_.load(std::memory_order_relaxed) : 0.0;
    }
    [[nodiscard]] bool has_value() const {
        return has_value_.load(std::memory_order_acquire);
    }

private:
    void set_watermark(double v, bool keep_max) {
        if (!has_value_.load(std::memory_order_acquire)) {
            set(v);  // benign race: a concurrent first write is resolved
                     // by the CAS loop below on the next observation
        }
        double cur = value_.load(std::memory_order_relaxed);
        while (keep_max ? v > cur : v < cur) {
            if (value_.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
                break;
            }
        }
    }

    std::atomic<double> value_{0.0};
    std::atomic<bool> has_value_{false};
};

/// Fixed log10-spaced histogram for positive measurements spanning many
/// orders of magnitude (periods in ps, timer seconds, BER values). The
/// bucket grid covers [1e-30, 1e12) with kPerDecade buckets per decade;
/// values at or below the range go to an underflow bucket, values above
/// to an overflow bucket. Exact count/sum/min/max are tracked alongside,
/// so means are not quantized — only quantiles are.
///
/// record() is atomic per field (no sample is lost under concurrency),
/// but note that sum() is then order-dependent in the last floating-point
/// bits: for bit-identical reports, record sweep results serially in
/// index order after the parallel region (the SweepRunner pattern).
class Histogram {
public:
    static constexpr int kPerDecade = 16;
    static constexpr int kMinExp = -30;  ///< lowest decade edge, 10^kMinExp
    static constexpr int kMaxExp = 12;   ///< highest decade edge, 10^kMaxExp
    static constexpr int kBuckets = (kMaxExp - kMinExp) * kPerDecade;

    void record(double v);

    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double min() const {
        return count() ? min_.load(std::memory_order_relaxed) : 0.0;
    }
    [[nodiscard]] double max() const {
        return count() ? max_.load(std::memory_order_relaxed) : 0.0;
    }
    [[nodiscard]] double mean() const {
        const auto n = count();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

    /// Quantile estimate (q in [0,1]) from the bucket the q-th sample
    /// falls in, clamped to the exact observed [min, max].
    [[nodiscard]] double quantile(double q) const;

    struct Bucket {
        double upper;         ///< bucket upper edge (inclusive)
        std::uint64_t count;  ///< samples in this bucket
    };
    /// Non-empty buckets in increasing order of upper edge. Underflow
    /// reports upper = 10^kMinExp; overflow reports upper = +inf.
    [[nodiscard]] std::vector<Bucket> nonempty_buckets() const;

    /// Upper edge of bucket index i (exposed for tests).
    [[nodiscard]] static double bucket_upper(int i);

private:
    [[nodiscard]] static int bucket_index(double v);

    std::array<std::atomic<std::uint64_t>, kBuckets> bins_{};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

class JsonWriter;  // obs/json.hpp

/// Owner of all named instruments. Names are free-form dotted paths
/// ("sim.events_executed", "cdr.ch0.period_ps"); requesting the same name
/// twice returns the same instrument, so independent components can share
/// a tally. References remain valid until the registry is destroyed.
/// Instrument creation/lookup is mutex-guarded, so lanes of a parallel
/// sweep may attach lazily; the JSON/CSV exporters take the same lock for
/// a consistent directory. The raw map accessors return unguarded
/// references — use them only while no thread is creating instruments.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
    counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>&
    gauges() const {
        return gauges_;
    }
    [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
    histograms() const {
        return histograms_;
    }

    /// Run `fn` with the instrument-creation mutex held, so external
    /// exporters (obs/prometheus.hpp) can walk the raw maps with the
    /// same consistency guarantee as write_json/to_csv. `fn` must not
    /// call back into counter()/gauge()/histogram().
    template <typename F>
    void with_export_lock(F&& fn) const {
        std::lock_guard<std::mutex> lk(mu_);
        fn();
    }

    /// Serialize as a {"counters":..,"gauges":..,"histograms":..} object
    /// into an in-progress writer (after w.key(...) or inside an array).
    void write_json(JsonWriter& w) const;
    /// Standalone pretty-printed JSON document of the same object.
    [[nodiscard]] std::string to_json() const;
    /// Flat CSV (kind,name,value) of counters and gauges — histogram
    /// summaries are exported as pseudo-gauges name.count/sum/mean.
    [[nodiscard]] std::string to_csv() const;

private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII wall-clock probe: records elapsed seconds into a histogram on
/// destruction. Null-registry constructor is a no-op probe, so call sites
/// need no branching.
class ScopedTimer {
public:
    ScopedTimer(MetricsRegistry* registry, const std::string& name)
        : hist_(registry ? &registry->histogram(name) : nullptr),
          t0_(Clock::now()) {}
    explicit ScopedTimer(Histogram& h) : hist_(&h), t0_(Clock::now()) {}
    ~ScopedTimer() {
        if (hist_) hist_->record(seconds_so_far());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    [[nodiscard]] double seconds_so_far() const {
        return std::chrono::duration<double>(Clock::now() - t0_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Histogram* hist_;
    Clock::time_point t0_;
};

}  // namespace gcdr::obs
