#pragma once
// Canonical JSON serialization — originally the content-addressing layer
// under the serving daemon's result cache (serve/cache.hpp), promoted to
// obs/ once the scenario subsystem needed the same rendering for config
// hashing (scenario/ cannot depend on serve/, which depends on it). Two
// documents that mean the same workload must hash to the same key no
// matter how a client formatted them, so canonical_json() collapses every
// representation choice JSON leaves open:
//
//   - object keys are sorted bytewise; duplicate keys keep the FIRST
//     occurrence (matching obs::JsonValue::find), later ones are dropped,
//   - numbers are re-rendered from their parsed value, never echoed:
//     integral doubles within +-2^53 print as plain integers (so 1, 1.0,
//     1e0, 10e-1 and -0.0 all canonicalize to the same text), pure
//     integer tokens outside the double-exact range keep their exact
//     digits (uint64 counters survive untouched), and everything else
//     prints as shortest-round-trip %.17g,
//   - strings are re-escaped through the one JsonWriter escaper,
//   - no whitespace anywhere.
//
// The output is itself valid JSON that re-parses (obs::json_parse) to an
// equivalent document, and canonicalization is idempotent:
// canonical(parse(canonical(x))) == canonical(x). Stability across
// platforms follows from doing only integer arithmetic plus IEEE-754
// printf of doubles (correctly rounded on every libc this repo targets).

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json_parse.hpp"

namespace gcdr::obs {

/// Canonical compact rendering of a parsed JSON document (rules above).
[[nodiscard]] std::string canonical_json(const JsonValue& v);

/// fnv1a64 of canonical_json(v) — the config-hash half of a cache key.
[[nodiscard]] std::uint64_t canonical_hash(const JsonValue& v);

/// Parse + canonicalize in one step. Returns false (and fills *error
/// when non-null) on malformed input.
[[nodiscard]] bool canonicalize(std::string_view text, std::string& out,
                                std::string* error = nullptr);

/// The canonical rendering of one number value/token pair — exposed so
/// result payload writers can emit numbers that re-canonicalize to
/// themselves (the cache bit-identity contract). `token` may be empty
/// when the value never had a source token.
[[nodiscard]] std::string canonical_number(double value,
                                           std::string_view token);

}  // namespace gcdr::obs
