#include "obs/report.hpp"

#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace gcdr::obs {

BuildInfo BuildInfo::current() {
    BuildInfo b;
#if defined(__clang__)
    b.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    b.compiler = "gcc " __VERSION__;
#else
    b.compiler = "unknown";
#endif
    b.cxx_standard = __cplusplus;
#ifdef NDEBUG
    b.build_mode = "release";
#else
    b.build_mode = "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
    b.sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
    b.sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    b.sanitizer = "address";
#else
    b.sanitizer = "none";
#endif
#else
    b.sanitizer = "none";
#endif
    return b;
}

std::string run_report_json(const MetricsRegistry& registry,
                            const ReportInfo& info) {
    const BuildInfo build = BuildInfo::current();
    JsonWriter w;
    w.begin_object();
    w.key("schema").value(kReportSchema);
    w.key("bench").value(info.id);
    w.key("title").value(info.title);
    w.key("wall_seconds").value(info.wall_seconds);
    w.key("run").begin_object();
    w.key("threads").value(static_cast<std::uint64_t>(info.threads));
    w.key("seed").value(info.seed);
    w.end_object();
    w.key("build").begin_object();
    w.key("compiler").value(build.compiler);
    w.key("cxx_standard").value(static_cast<std::int64_t>(build.cxx_standard));
    w.key("build_mode").value(build.build_mode);
    w.key("sanitizer").value(build.sanitizer);
    w.end_object();
    w.key("metrics");
    registry.write_json(w);
    if (info.spans) {
        w.key("spans").begin_object();
        for (const SpanCollector::Summary& s : info.spans->summaries()) {
            w.key(s.name).begin_object();
            w.key("count").value(s.count);
            w.key("total_seconds").value(s.total_s);
            w.key("max_seconds").value(s.max_s);
            w.end_object();
        }
        w.end_object();
    }
    w.end_object();
    return w.str() + "\n";
}

bool write_run_report(const std::string& path,
                      const MetricsRegistry& registry,
                      const ReportInfo& info) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "obs: cannot open report file '%s'\n",
                     path.c_str());
        return false;
    }
    os << run_report_json(registry, info);
    return os.good();
}

}  // namespace gcdr::obs
