#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace gcdr::obs {

BuildInfo BuildInfo::current() {
    BuildInfo b;
#if defined(__clang__)
    b.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    b.compiler = "gcc " __VERSION__;
#else
    b.compiler = "unknown";
#endif
    b.cxx_standard = __cplusplus;
#ifdef NDEBUG
    b.build_mode = "release";
#else
    b.build_mode = "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
    b.sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
    b.sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    b.sanitizer = "address";
#else
    b.sanitizer = "none";
#endif
#else
    b.sanitizer = "none";
#endif
    // Runtime env wins over the configure-time define: CI exports the sha
    // it checked out, which stays correct even for an incremental rebuild
    // of an older configure.
    if (const char* env = std::getenv("GCDR_GIT_SHA"); env && *env) {
        b.git_sha = env;
    } else {
#ifdef GCDR_GIT_SHA
        b.git_sha = GCDR_GIT_SHA;
#else
        b.git_sha = "unknown";
#endif
    }
    if (b.git_sha.empty()) b.git_sha = "unknown";
    return b;
}

std::string run_report_json(const MetricsRegistry& registry,
                            const ReportInfo& info) {
    const BuildInfo build = BuildInfo::current();
    JsonWriter w;
    w.begin_object();
    w.key("schema").value(kReportSchema);
    w.key("bench").value(info.id);
    w.key("title").value(info.title);
    w.key("wall_seconds").value(info.wall_seconds);
    w.key("run").begin_object();
    w.key("threads").value(static_cast<std::uint64_t>(info.threads));
    w.key("seed").value(info.seed);
    if (!info.scenario_hash.empty()) {
        w.key("scenario_file").value(info.scenario_file);
        w.key("scenario_hash").value(info.scenario_hash);
    }
    w.end_object();
    w.key("build").begin_object();
    w.key("compiler").value(build.compiler);
    w.key("cxx_standard").value(static_cast<std::int64_t>(build.cxx_standard));
    w.key("build_mode").value(build.build_mode);
    w.key("sanitizer").value(build.sanitizer);
    w.key("git_sha").value(build.git_sha);
    w.end_object();
    w.key("metrics");
    registry.write_json(w);
    if (info.spans) {
        w.key("spans").begin_object();
        for (const SpanCollector::Summary& s : info.spans->summaries()) {
            w.key(s.name).begin_object();
            w.key("count").value(s.count);
            w.key("total_seconds").value(s.total_s);
            w.key("max_seconds").value(s.max_s);
            w.end_object();
        }
        w.end_object();
    }
    w.end_object();
    std::string out = w.str();
    if (!info.health_json.empty()) {
        // The snapshot is already-valid compact JSON produced by
        // obs/health; splice it before the closing brace (the writer has
        // no raw-value API, by design).
        out.insert(out.size() - 1, ",\"health\":" + info.health_json);
    }
    return out + "\n";
}

bool write_run_report(const std::string& path,
                      const MetricsRegistry& registry,
                      const ReportInfo& info) {
    std::ofstream os(path);
    if (!os) {
        log_error("obs.report", "cannot open report file",
                  {{"path", path}});
        return false;
    }
    os << run_report_json(registry, info);
    return os.good();
}

}  // namespace gcdr::obs
