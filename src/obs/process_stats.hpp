#pragma once
// Process-level resource gauges: resident-set sizes read from the OS.
// Sampled, not instrumented — call record_process_stats() at report time
// (bench::RunReport does) or periodically from the future daemon's
// metrics endpoint; nothing here touches the hot path.

#include <cstdint>

#include "obs/metrics.hpp"

namespace gcdr::obs {

/// Peak resident set size in bytes. Linux: VmHWM from
/// /proc/self/status; elsewhere falls back to getrusage(ru_maxrss).
/// Returns 0 when unavailable.
[[nodiscard]] std::uint64_t process_peak_rss_bytes();

/// Current resident set size in bytes (VmRSS; 0 when unavailable).
[[nodiscard]] std::uint64_t process_current_rss_bytes();

/// Record `<prefix>.peak_rss_bytes` / `<prefix>.current_rss_bytes`
/// gauges (skipping any the OS cannot provide).
void record_process_stats(MetricsRegistry& registry,
                          const std::string& prefix = "process");

}  // namespace gcdr::obs
