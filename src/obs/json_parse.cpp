#include "obs/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace gcdr::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const Member& m : members) {
        if (m.first == key) return &m.second;
    }
    return nullptr;
}

std::uint64_t JsonValue::uint_or(std::uint64_t fallback) const {
    if (type != Type::kNumber || text.empty()) return fallback;
    if (text.find_first_of(".eE-") != std::string::npos) return fallback;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') return fallback;
    return static_cast<std::uint64_t>(v);
}

namespace {

class Parser {
public:
    Parser(std::string_view in, std::string* error)
        : in_(in), error_(error) {}

    bool parse_document(JsonValue& out) {
        skip_ws();
        if (!parse_value(out)) return false;
        skip_ws();
        if (pos_ != in_.size()) return fail("trailing characters");
        return true;
    }

private:
    bool fail(const char* what) {
        if (error_ && error_->empty()) {
            // The "<what> at byte N" prefix is load-bearing (tests and
            // scenario diagnostics match on it); line/column ride behind
            // in parentheses for humans staring at a config file.
            const LineColumn lc = line_column(in_, pos_);
            *error_ = std::string(what) + " at byte " + std::to_string(pos_) +
                      " (line " + std::to_string(lc.line) + ", column " +
                      std::to_string(lc.column) + ")";
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < in_.size()) {
            const char c = in_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
            else break;
        }
    }

    [[nodiscard]] bool at_end() const { return pos_ >= in_.size(); }
    [[nodiscard]] char peek() const { return in_[pos_]; }

    bool consume_literal(std::string_view lit) {
        if (in_.substr(pos_, lit.size()) != lit) {
            return fail("invalid literal");
        }
        pos_ += lit.size();
        return true;
    }

    static void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parse_hex4(std::uint32_t& out) {
        if (pos_ + 4 > in_.size()) return fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int k = 0; k < 4; ++k) {
            const char c = in_[pos_ + static_cast<std::size_t>(k)];
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else return fail("bad \\u escape digit");
        }
        pos_ += 4;
        out = v;
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (true) {
            if (at_end()) return fail("unterminated string");
            const char c = in_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at_end()) return fail("unterminated escape");
            const char e = in_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    std::uint32_t cp = 0;
                    if (!parse_hex4(cp)) return false;
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: must pair with \uDC00..\uDFFF.
                        if (in_.substr(pos_, 2) != "\\u") {
                            return fail("lone high surrogate");
                        }
                        pos_ += 2;
                        std::uint32_t lo = 0;
                        if (!parse_hex4(lo)) return false;
                        if (lo < 0xDC00 || lo > 0xDFFF) {
                            return fail("bad low surrogate");
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("lone low surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: return fail("unknown escape");
            }
        }
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (!at_end() && peek() == '-') ++pos_;
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            return fail("bad number");
        }
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (!at_end() && peek() == '.') {
            ++pos_;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return fail("bad fraction");
            }
            while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (!at_end() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return fail("bad exponent");
            }
            while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        out.type = JsonValue::Type::kNumber;
        out.text = std::string(in_.substr(start, pos_ - start));
        out.number = std::strtod(out.text.c_str(), nullptr);
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        const bool ok = parse_value_inner(out);
        --depth_;
        return ok;
    }

    bool parse_value_inner(JsonValue& out) {
        skip_ws();
        if (at_end()) return fail("unexpected end of input");
        out.offset = pos_;
        const char c = peek();
        switch (c) {
            case '{': {
                ++pos_;
                out.type = JsonValue::Type::kObject;
                skip_ws();
                if (!at_end() && peek() == '}') { ++pos_; return true; }
                while (true) {
                    skip_ws();
                    if (at_end() || peek() != '"') {
                        return fail("expected object key");
                    }
                    JsonValue::Member m;
                    if (!parse_string(m.first)) return false;
                    skip_ws();
                    if (at_end() || peek() != ':') return fail("expected ':'");
                    ++pos_;
                    if (!parse_value(m.second)) return false;
                    out.members.push_back(std::move(m));
                    skip_ws();
                    if (at_end()) return fail("unterminated object");
                    if (peek() == ',') { ++pos_; continue; }
                    if (peek() == '}') { ++pos_; return true; }
                    return fail("expected ',' or '}'");
                }
            }
            case '[': {
                ++pos_;
                out.type = JsonValue::Type::kArray;
                skip_ws();
                if (!at_end() && peek() == ']') { ++pos_; return true; }
                while (true) {
                    JsonValue item;
                    if (!parse_value(item)) return false;
                    out.items.push_back(std::move(item));
                    skip_ws();
                    if (at_end()) return fail("unterminated array");
                    if (peek() == ',') { ++pos_; continue; }
                    if (peek() == ']') { ++pos_; return true; }
                    return fail("expected ',' or ']'");
                }
            }
            case '"':
                out.type = JsonValue::Type::kString;
                return parse_string(out.text);
            case 't':
                out.type = JsonValue::Type::kBool;
                out.boolean = true;
                return consume_literal("true");
            case 'f':
                out.type = JsonValue::Type::kBool;
                out.boolean = false;
                return consume_literal("false");
            case 'n':
                out.type = JsonValue::Type::kNull;
                return consume_literal("null");
            default:
                return parse_number(out);
        }
    }

    static constexpr int kMaxDepth = 128;

    std::string_view in_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

}  // namespace

bool json_parse(std::string_view input, JsonValue& out, std::string* error) {
    if (error) error->clear();
    out = JsonValue{};
    Parser p(input, error);
    return p.parse_document(out);
}

LineColumn line_column(std::string_view text, std::size_t offset) {
    if (offset > text.size()) offset = text.size();
    LineColumn lc;
    for (std::size_t i = 0; i < offset; ++i) {
        if (text[i] == '\n') {
            ++lc.line;
            lc.column = 1;
        } else {
            ++lc.column;
        }
    }
    return lc;
}

}  // namespace gcdr::obs
