#include "masks/jtol_mask.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gcdr::masks {

JtolMask::JtolMask(std::string name, std::vector<MaskPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
    assert(points_.size() >= 2);
    assert(std::is_sorted(points_.begin(), points_.end(),
                          [](const MaskPoint& a, const MaskPoint& b) {
                              return a.freq_hz < b.freq_hz;
                          }));
}

double JtolMask::amplitude_at(double freq_hz) const {
    if (freq_hz <= points_.front().freq_hz) return points_.front().amp_uipp;
    if (freq_hz >= points_.back().freq_hz) return points_.back().amp_uipp;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (freq_hz <= points_[i].freq_hz) {
            const auto& a = points_[i - 1];
            const auto& b = points_[i];
            const double t = (std::log(freq_hz) - std::log(a.freq_hz)) /
                             (std::log(b.freq_hz) - std::log(a.freq_hz));
            return std::exp(std::log(a.amp_uipp) +
                            t * (std::log(b.amp_uipp) - std::log(a.amp_uipp)));
        }
    }
    return points_.back().amp_uipp;
}

bool JtolMask::complies(const std::vector<MaskPoint>& measured) const {
    if (measured.empty()) return false;
    auto measured_at = [&measured](double f) {
        // Log-log interpolation of the measured curve; outside its span the
        // curve provides no evidence, handled by the caller's sweep range.
        if (f <= measured.front().freq_hz) return measured.front().amp_uipp;
        if (f >= measured.back().freq_hz) return measured.back().amp_uipp;
        for (std::size_t i = 1; i < measured.size(); ++i) {
            if (f <= measured[i].freq_hz) {
                const auto& a = measured[i - 1];
                const auto& b = measured[i];
                const double t = (std::log(f) - std::log(a.freq_hz)) /
                                 (std::log(b.freq_hz) - std::log(a.freq_hz));
                return std::exp(std::log(a.amp_uipp) +
                                t * (std::log(b.amp_uipp) -
                                     std::log(a.amp_uipp)));
            }
        }
        return measured.back().amp_uipp;
    };
    for (const auto& p : points_) {
        if (p.freq_hz < measured.front().freq_hz ||
            p.freq_hz > measured.back().freq_hz) {
            continue;
        }
        if (measured_at(p.freq_hz) < p.amp_uipp) return false;
    }
    for (const auto& m : measured) {
        if (m.freq_hz < points_.front().freq_hz ||
            m.freq_hz > points_.back().freq_hz) {
            continue;
        }
        if (m.amp_uipp < amplitude_at(m.freq_hz)) return false;
    }
    return true;
}

JtolMask JtolMask::infiniband_2g5(LinkRate rate) {
    const double corner = rate.bits_per_second() / 1667.0;  // ~1.5 MHz
    const double plateau = 0.35;
    const double lf_cap = 15.0;
    // -20 dB/dec between the cap and the corner: f_cap = corner*plateau/cap.
    const double f_cap = corner * plateau / lf_cap;
    return JtolMask("InfiniBand 2.5G RX",
                    {{f_cap / 10.0, lf_cap},
                     {f_cap, lf_cap},
                     {corner, plateau},
                     {rate.bits_per_second() / 2.0, plateau}});
}

JtolMask JtolMask::sonet_oc48() {
    // GR-253 Category II OC-48 receiver tolerance template.
    return JtolMask("SONET OC-48 RX",
                    {{10.0, 622.0},
                     {600.0, 622.0},
                     {6000.0, 62.2},
                     {100e3, 62.2 * 6000.0 / 100e3},
                     {1e6, 0.37 * 1e6 / 1e6},  // converges to the plateau
                     {10e6, 0.37},
                     {1.244e9, 0.37}});
}

}  // namespace gcdr::masks
