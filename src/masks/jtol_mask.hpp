#pragma once
// Jitter-tolerance masks (Fig 5): the minimum sinusoidal-jitter amplitude a
// compliant receiver must tolerate at each jitter frequency while keeping
// BER <= 1e-12. Masks are piecewise linear in log(f) - log(A).

#include <string>
#include <vector>

#include "util/units.hpp"

namespace gcdr::masks {

/// One mask breakpoint.
struct MaskPoint {
    double freq_hz;
    double amp_uipp;
};

/// Piecewise log-log jitter tolerance mask.
class JtolMask {
public:
    JtolMask(std::string name, std::vector<MaskPoint> points);

    /// Required tolerated amplitude at `freq_hz` (log-log interpolation,
    /// clamped at the ends).
    [[nodiscard]] double amplitude_at(double freq_hz) const;

    /// True if a measured tolerance curve (freq -> max tolerated amplitude)
    /// stays at or above the mask at every mask breakpoint and every
    /// measured frequency inside the mask span.
    [[nodiscard]] bool complies(const std::vector<MaskPoint>& measured) const;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<MaskPoint>& points() const {
        return points_;
    }

    /// InfiniBand-style 2.5 Gb/s receiver mask as in the paper's Fig 5:
    /// -20 dB/decade golden slope below the corner at bitrate/1667
    /// (~1.5 MHz), a high-frequency plateau of 0.35 UIpp, capped at
    /// 15 UIpp at low frequencies. Breakpoint values are an approximation
    /// of the InfiniBand 1.0a template (documented in EXPERIMENTS.md).
    [[nodiscard]] static JtolMask infiniband_2g5(LinkRate rate = kPaperRate);

    /// SONET GR-253 OC-48 mask (second reference mask for the bench suite).
    [[nodiscard]] static JtolMask sonet_oc48();

private:
    std::string name_;
    std::vector<MaskPoint> points_;  // sorted by frequency
};

}  // namespace gcdr::masks
