#pragma once
// Probability density functions on a uniform grid, with convolution.
//
// This is the engine behind the paper's "statistical model" (Sec. 3.1): the
// exact contributions of the different jitter types are combined by
// convolving their PDFs — uniform (DJ), Gaussian (RJ), arcsine (SJ) and
// Gaussian (oscillator) — then integrating the tails that fall outside the
// timing margin to get the BER.
//
// Thread safety: GridPdf is value-semantic with no global or hidden shared
// state — factories return fresh objects, const queries touch only `this`,
// and convolution allocates its result. Distinct instances can be built
// and queried concurrently (exec/ sweeps rely on this); only mutating one
// instance from several threads needs external synchronization.

#include <cstddef>
#include <vector>

namespace gcdr::stats {

/// A real-valued PDF sampled on a uniform grid [x0, x0 + (n-1)*dx].
/// Values are densities; sum(values)*dx ~= 1 for a normalized PDF.
class GridPdf {
public:
    GridPdf() = default;
    GridPdf(double x0, double dx, std::vector<double> density);

    /// Delta distribution at `x` (mass 1 in a single bin).
    [[nodiscard]] static GridPdf dirac(double x, double dx);
    /// Uniform on [-width/2, +width/2] (DJ with peak-peak `width`).
    [[nodiscard]] static GridPdf uniform(double width_pp, double dx);
    /// Gaussian, truncated at +/- n_sigmas (default far enough for 1e-16
    /// tail mass to be represented).
    [[nodiscard]] static GridPdf gaussian(double sigma, double dx,
                                          double n_sigmas = 9.0);
    /// Arcsine on [-amp, +amp]: stationary PDF of a sinusoid with amplitude
    /// `amp` (i.e. sinusoidal jitter of peak-peak 2*amp).
    [[nodiscard]] static GridPdf arcsine(double amp, double dx);
    /// Empirical PDF from samples, binned over their range.
    [[nodiscard]] static GridPdf from_samples(const std::vector<double>& xs,
                                              double dx);

    [[nodiscard]] bool empty() const { return density_.size() == 0; }
    [[nodiscard]] std::size_t size() const { return density_.size(); }
    [[nodiscard]] double x0() const { return x0_; }
    [[nodiscard]] double dx() const { return dx_; }
    [[nodiscard]] double x_at(std::size_t i) const {
        return x0_ + dx_ * static_cast<double>(i);
    }
    [[nodiscard]] const std::vector<double>& density() const {
        return density_;
    }

    [[nodiscard]] double mass() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;

    /// Scale densities so mass() == 1.
    void normalize();

    /// Translate the support by `offset`: moves x0 directly, so the grid
    /// origin need not stay a multiple of dx (bin width is unchanged).
    void shift(double offset);

    /// P(X <= x): trapezoidal CDF evaluated from the left.
    [[nodiscard]] double cdf(double x) const;
    /// P(X < lo) + P(X > hi): the "error tail" mass outside [lo, hi].
    [[nodiscard]] double tail_outside(double lo, double hi) const;
    /// P(X > x).
    [[nodiscard]] double tail_above(double x) const;
    /// P(X < x).
    [[nodiscard]] double tail_below(double x) const;

    /// Convolution (distribution of the sum of independent variables).
    /// Grids must share dx. Uses FFT above a size threshold.
    ///
    /// `prune_floor` > 0 trims leading/trailing result bins whose density
    /// is below it (the support shrinks; x0 shifts by the trimmed width).
    /// The default 0 keeps every bin, bit-identical to the historical
    /// behavior. Pruning at 1e-18 is safe whenever downstream tail
    /// integrals only need to resolve masses >= ~1e-15: the discarded
    /// mass is bounded by prune_floor * dx * bins. It keeps chained
    /// convolutions (convolve_all) from growing O(sum of supports) when
    /// the far tails are already below the measurement floor.
    [[nodiscard]] GridPdf convolve(const GridPdf& other,
                                   double prune_floor = 0.0) const;

private:
    double x0_ = 0.0;
    double dx_ = 1.0;
    std::vector<double> density_;
};

/// Convolve a set of PDFs (skipping empties); returns dirac(0) if none.
/// `prune_floor` is forwarded to each pairwise convolve (see
/// GridPdf::convolve); 0 = keep every bin.
[[nodiscard]] GridPdf convolve_all(const std::vector<GridPdf>& pdfs,
                                   double dx, double prune_floor = 0.0);

}  // namespace gcdr::stats
