#include "stats/grid_pdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "obs/trace_span.hpp"
#include "util/fft.hpp"

namespace gcdr::stats {

GridPdf::GridPdf(double x0, double dx, std::vector<double> density)
    : x0_(x0), dx_(dx), density_(std::move(density)) {
    assert(dx_ > 0.0);
}

GridPdf GridPdf::dirac(double x, double dx) {
    return GridPdf{x, dx, std::vector<double>{1.0 / dx}};
}

GridPdf GridPdf::uniform(double width_pp, double dx) {
    assert(width_pp >= 0.0);
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(width_pp / dx)) + 1);
    if (n == 1) return dirac(0.0, dx);
    const double half = dx * static_cast<double>(n - 1) / 2.0;
    std::vector<double> d(n, 1.0);
    GridPdf p{-half, dx, std::move(d)};
    p.normalize();
    return p;
}

GridPdf GridPdf::gaussian(double sigma, double dx, double n_sigmas) {
    assert(sigma >= 0.0);
    if (sigma == 0.0) return dirac(0.0, dx);
    const auto half_n =
        static_cast<std::size_t>(std::ceil(n_sigmas * sigma / dx));
    const std::size_t n = 2 * half_n + 1;
    std::vector<double> d(n);
    const double norm = 1.0 / (sigma * std::sqrt(2.0 * std::numbers::pi));
    for (std::size_t i = 0; i < n; ++i) {
        const double x =
            dx * (static_cast<double>(i) - static_cast<double>(half_n));
        d[i] = norm * std::exp(-0.5 * (x / sigma) * (x / sigma));
    }
    GridPdf p{-dx * static_cast<double>(half_n), dx, std::move(d)};
    p.normalize();
    return p;
}

GridPdf GridPdf::arcsine(double amp, double dx) {
    assert(amp >= 0.0);
    if (amp < dx) return dirac(0.0, dx);
    const auto half_n = static_cast<std::size_t>(std::floor(amp / dx));
    const std::size_t n = 2 * half_n + 1;
    std::vector<double> d(n, 0.0);
    // Integrate the analytic arcsine CDF over each bin to avoid the
    // endpoint singularities: F(x) = 1/2 + asin(x/amp)/pi.
    auto cdf = [amp](double x) {
        const double z = std::clamp(x / amp, -1.0, 1.0);
        return 0.5 + std::asin(z) / std::numbers::pi;
    };
    for (std::size_t i = 0; i < n; ++i) {
        const double xc =
            dx * (static_cast<double>(i) - static_cast<double>(half_n));
        d[i] = (cdf(xc + dx / 2.0) - cdf(xc - dx / 2.0)) / dx;
    }
    GridPdf p{-dx * static_cast<double>(half_n), dx, std::move(d)};
    p.normalize();
    return p;
}

GridPdf GridPdf::from_samples(const std::vector<double>& xs, double dx) {
    if (xs.empty()) return {};
    const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
    const double lo = *lo_it;
    const auto n = static_cast<std::size_t>(
                       std::floor((*hi_it - lo) / dx)) + 1;
    std::vector<double> d(n, 0.0);
    for (double x : xs) {
        auto idx = static_cast<std::size_t>(std::floor((x - lo) / dx));
        if (idx >= n) idx = n - 1;
        d[idx] += 1.0;
    }
    const double norm = 1.0 / (static_cast<double>(xs.size()) * dx);
    for (auto& v : d) v *= norm;
    return GridPdf{lo, dx, std::move(d)};
}

double GridPdf::mass() const {
    double s = 0.0;
    for (double v : density_) s += v;
    return s * dx_;
}

double GridPdf::mean() const {
    double s = 0.0, m = 0.0;
    for (std::size_t i = 0; i < density_.size(); ++i) {
        s += density_[i];
        m += density_[i] * x_at(i);
    }
    return s > 0.0 ? m / s : 0.0;
}

double GridPdf::variance() const {
    const double mu = mean();
    double s = 0.0, v = 0.0;
    for (std::size_t i = 0; i < density_.size(); ++i) {
        s += density_[i];
        const double d = x_at(i) - mu;
        v += density_[i] * d * d;
    }
    return s > 0.0 ? v / s : 0.0;
}

double GridPdf::stddev() const { return std::sqrt(variance()); }

void GridPdf::normalize() {
    const double m = mass();
    if (m <= 0.0) return;
    for (auto& v : density_) v /= m;
}

void GridPdf::shift(double offset) {
    x0_ += offset;
}

double GridPdf::cdf(double x) const {
    if (empty()) return 0.0;
    // Each bin's mass is spread uniformly over [x_i - dx/2, x_i + dx/2);
    // integrate exactly, including the partial bin at x.
    double acc = 0.0;
    for (std::size_t i = 0; i < density_.size(); ++i) {
        const double left = x_at(i) - dx_ / 2.0;
        if (x >= left + dx_) {
            acc += density_[i] * dx_;
        } else if (x > left) {
            acc += density_[i] * (x - left);
            break;
        } else {
            break;
        }
    }
    return std::min(acc, mass());
}

double GridPdf::tail_below(double x) const { return cdf(x); }

double GridPdf::tail_above(double x) const {
    if (empty()) return 0.0;
    // Computed from the right so far-tail values are not lost to rounding
    // against the bulk mass.
    double acc = 0.0;
    for (std::size_t i = density_.size(); i-- > 0;) {
        const double left = x_at(i) - dx_ / 2.0;
        if (x <= left) {
            acc += density_[i] * dx_;
        } else if (x < left + dx_) {
            acc += density_[i] * (left + dx_ - x);
            break;
        } else {
            break;
        }
    }
    return acc;
}

double GridPdf::tail_outside(double lo, double hi) const {
    return tail_below(lo) + tail_above(hi);
}

GridPdf GridPdf::convolve(const GridPdf& other, double prune_floor) const {
    obs::TraceSpan span("pdf.convolve");
    if (empty() || other.empty()) return {};
    assert(std::abs(dx_ - other.dx_) < 1e-12 * dx_ &&
           "convolution requires a shared grid step");
    // FFT pays off for large kernels, but rounding in the FFT path can turn
    // ~1e-17 relative error into fake tail mass, which matters when we
    // integrate 1e-12 tails. Use direct convolution unless both operands
    // are large, then clamp tiny negatives.
    std::vector<double> conv;
    if (density_.size() > 2048 && other.density_.size() > 2048) {
        conv = convolve_fft(density_, other.density_);
        for (auto& v : conv) {
            if (v < 0.0) v = 0.0;
        }
    } else {
        conv = convolve_direct(density_, other.density_);
    }
    for (auto& v : conv) v *= dx_;  // discrete conv -> density scaling

    // Optional tail pruning: drop sub-floor bins at both ends (never the
    // whole support). Interior bins are kept even when below the floor so
    // the result stays a contiguous grid.
    std::size_t first = 0;
    std::size_t last = conv.size();
    if (prune_floor > 0.0) {
        while (first + 1 < last && conv[first] < prune_floor) ++first;
        while (last > first + 1 && conv[last - 1] < prune_floor) --last;
        conv.erase(conv.begin() + static_cast<std::ptrdiff_t>(last),
                   conv.end());
        conv.erase(conv.begin(),
                   conv.begin() + static_cast<std::ptrdiff_t>(first));
    }
    return GridPdf{x0_ + other.x0_ + dx_ * static_cast<double>(first), dx_,
                   std::move(conv)};
}

GridPdf convolve_all(const std::vector<GridPdf>& pdfs, double dx,
                     double prune_floor) {
    GridPdf acc = GridPdf::dirac(0.0, dx);
    for (const auto& p : pdfs) {
        if (p.empty() || p.size() == 1) {
            if (!p.empty()) acc.shift(p.x0());
            continue;
        }
        acc = acc.convolve(p, prune_floor);
    }
    return acc;
}

}  // namespace gcdr::stats
