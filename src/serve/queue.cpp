#include "serve/queue.hpp"

#include <algorithm>
#include <limits>

namespace gcdr::serve {

const char* job_status_name(JobStatus s) {
    switch (s) {
        case JobStatus::kQueued:
            return "queued";
        case JobStatus::kRunning:
            return "running";
        case JobStatus::kDone:
            return "done";
        case JobStatus::kPartial:
            return "partial";
        case JobStatus::kCancelled:
            return "cancelled";
        case JobStatus::kExpired:
            return "expired";
        case JobStatus::kFailed:
            return "failed";
    }
    return "?";
}

bool job_status_terminal(JobStatus s) {
    return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

double JobState::remaining_s() const {
    if (spec_.deadline_s <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - enqueued_).count();
    return spec_.deadline_s - elapsed;
}

double JobState::queue_wait_s() const {
    std::lock_guard<std::mutex> lk(m_);
    if (started_ == Clock::time_point{}) return 0.0;
    return std::chrono::duration<double>(started_ - enqueued_).count();
}

void JobState::mark_running() {
    std::lock_guard<std::mutex> lk(m_);
    status_ = JobStatus::kRunning;
    started_ = Clock::now();
}

void JobState::finish(JobStatus status, std::string result) {
    {
        std::lock_guard<std::mutex> lk(m_);
        if (job_status_terminal(status_)) return;  // first terminal wins
        status_ = status;
        result_ = std::move(result);
    }
    cv_.notify_all();
}

JobStatus JobState::wait() const {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return job_status_terminal(status_); });
    return status_;
}

JobStatus JobState::status() const {
    std::lock_guard<std::mutex> lk(m_);
    return status_;
}

std::string JobState::result() const {
    std::lock_guard<std::mutex> lk(m_);
    return result_;
}

void JobState::push_frame(std::string frame) {
    {
        std::lock_guard<std::mutex> lk(m_);
        frames_.push_back(std::move(frame));
    }
    cv_.notify_all();
}

std::size_t JobState::wait_frames(std::size_t seen,
                                  std::vector<std::string>& out) const {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
        return frames_.size() > seen || job_status_terminal(status_);
    });
    for (std::size_t i = seen; i < frames_.size(); ++i) {
        out.push_back(frames_[i]);
    }
    return frames_.size();
}

std::string JobState::latest_frame() const {
    std::lock_guard<std::mutex> lk(m_);
    return frames_.empty() ? std::string() : frames_.back();
}

std::size_t JobState::frame_count() const {
    std::lock_guard<std::mutex> lk(m_);
    return frames_.size();
}

std::shared_ptr<JobState> JobQueue::submit(JobSpec spec) {
    return submit_with_sink(std::move(spec), nullptr);
}

std::shared_ptr<JobState> JobQueue::submit_with_sink(
    JobSpec spec, std::function<void(const std::string&)> sink) {
    std::shared_ptr<JobState> job;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_) return nullptr;
        job = std::make_shared<JobState>(next_id_++, std::move(spec));
        // The sink must be attached before the job becomes visible to a
        // worker — once heap_.push runs under this lock, pop() may hand
        // it out the moment the lock drops.
        job->stream_sink = std::move(sink);
        heap_.push(QueueItem{job->spec().priority, job->id(), job});
        by_id_[job->id()] = job;
    }
    cv_.notify_one();
    return job;
}

std::shared_ptr<JobState> JobQueue::pop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [&] { return stopped_ || !heap_.empty(); });
        if (stopped_) return nullptr;
        auto job = heap_.top().state;
        heap_.pop();
        if (job->cancel_requested()) {
            retire_locked(job, JobStatus::kCancelled);
            continue;
        }
        if (job->deadline_passed()) {
            retire_locked(job, JobStatus::kExpired);
            continue;
        }
        job->mark_running();
        return job;
    }
}

void JobQueue::retire_locked(const std::shared_ptr<JobState>& job,
                             JobStatus status) {
    job->finish(status,
                std::string("{\"schema\":\"gcdr.serve.result/v1\","
                            "\"job_id\":") +
                    std::to_string(job->id()) + ",\"status\":\"" +
                    job_status_name(status) + "\"}");
    retired_.push_back(job->id());
    while (retired_.size() > retire_capacity_) {
        by_id_.erase(retired_.front());
        retired_.pop_front();
    }
}

bool JobQueue::cancel(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    it->second->request_cancel();
    return true;
}

std::shared_ptr<JobState> JobQueue::find(std::uint64_t id) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<JobState>> JobQueue::jobs() const {
    std::vector<std::shared_ptr<JobState>> out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out.reserve(by_id_.size());
        for (const auto& [id, job] : by_id_) out.push_back(job);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a->id() < b->id(); });
    return out;
}

std::size_t JobQueue::depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return heap_.size();
}

void JobQueue::stop() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopped_ = true;
    }
    cv_.notify_all();
}

}  // namespace gcdr::serve
