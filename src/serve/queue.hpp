#pragma once
// Priority job queue between the daemon's HTTP front end and its
// executor workers.
//
// Ordering: higher `priority` first; ties in FIFO submission order (the
// id is the tiebreak, so two equal-priority submissions never reorder).
// Cancellation is cooperative end to end: a queued job cancelled before
// pop never reaches a worker (pop retires it as kCancelled); a running
// job sees its `cancel` flag between sweep points / compute slices and
// returns what it has (kPartial for sweeps with completed points — which
// are already in the cache, so a resubmission resumes, not recomputes).
// Deadlines are measured from submission: a job whose deadline lapses
// while queued is retired as kExpired at pop time; the executor checks
// remaining_s() between slices while running.
//
// Lifecycle: submit() -> (pop by a worker) -> finish(). Finished states
// stay queryable (GET /v1/jobs/<id>) in a bounded retire ring; waiters
// block on the per-job condition variable.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"

namespace gcdr::serve {

enum class JobStatus {
    kQueued,
    kRunning,
    kDone,
    kPartial,    ///< sweep stopped early (cancel/deadline); points cached
    kCancelled,
    kExpired,
    kFailed,
};

[[nodiscard]] const char* job_status_name(JobStatus s);
[[nodiscard]] bool job_status_terminal(JobStatus s);

class JobState {
public:
    using Clock = std::chrono::steady_clock;

    JobState(std::uint64_t id, JobSpec spec)
        : id_(id), spec_(std::move(spec)), enqueued_(Clock::now()) {}

    [[nodiscard]] std::uint64_t id() const { return id_; }
    [[nodiscard]] const JobSpec& spec() const { return spec_; }

    /// Cooperative cancel flag, checked by the executor between slices.
    void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancel_requested() const {
        return cancel_.load(std::memory_order_relaxed);
    }

    /// Seconds until the deadline; +inf when the job has none.
    [[nodiscard]] double remaining_s() const;
    [[nodiscard]] bool deadline_passed() const { return remaining_s() <= 0; }
    /// Seconds the job sat in the queue before running (0 until popped).
    [[nodiscard]] double queue_wait_s() const;

    /// Transition to kRunning (worker, at pop).
    void mark_running();
    /// Terminal transition; wakes every waiter. `result` is the full
    /// response envelope JSON.
    void finish(JobStatus status, std::string result);
    /// Block until terminal; returns the terminal status.
    JobStatus wait() const;
    [[nodiscard]] JobStatus status() const;
    /// Terminal result envelope (empty until finished).
    [[nodiscard]] std::string result() const;

    /// Append one gcdr.health/v1 frame (scenario health_probe jobs emit
    /// one per completed slice, then the final snapshot) and wake every
    /// watcher blocked in wait_frames().
    void push_frame(std::string frame);
    /// Copy frames with index >= `seen` into `out` and return the new
    /// high-water index. Blocks until fresh frames exist or the job is
    /// terminal; terminal with nothing fresh returns `seen` and leaves
    /// `out` empty — the watcher's end-of-stream signal.
    std::size_t wait_frames(std::size_t seen,
                            std::vector<std::string>& out) const;
    /// Most recent frame ("" when the job produced none).
    [[nodiscard]] std::string latest_frame() const;
    [[nodiscard]] std::size_t frame_count() const;

    /// Per-point streaming sink for chunked sweep responses: invoked by
    /// the executor with one compact JSON line per completed point. Set
    /// before submit; never changed afterwards.
    std::function<void(const std::string&)> stream_sink;

private:
    friend class JobQueue;

    const std::uint64_t id_;
    const JobSpec spec_;
    const Clock::time_point enqueued_;
    Clock::time_point started_{};
    std::atomic<bool> cancel_{false};

    mutable std::mutex m_;
    mutable std::condition_variable cv_;
    JobStatus status_ = JobStatus::kQueued;
    std::string result_;
    std::vector<std::string> frames_;  ///< live health frames, in order
};

class JobQueue {
public:
    /// `retire_capacity`: how many finished jobs stay queryable by id.
    explicit JobQueue(std::size_t retire_capacity = 1024)
        : retire_capacity_(retire_capacity) {}

    /// Enqueue; returns the shared state (also retrievable via find()).
    std::shared_ptr<JobState> submit(JobSpec spec);

    /// Enqueue with a per-point streaming sink, attached before the job
    /// becomes visible to workers (a plain submit-then-assign would race
    /// a fast pop()).
    std::shared_ptr<JobState> submit_with_sink(
        JobSpec spec, std::function<void(const std::string&)> sink);

    /// Block until a runnable job is available (skipping cancelled /
    /// queue-expired ones, which are retired with the matching terminal
    /// status) or stop() is called — then returns nullptr. The returned
    /// job is already marked kRunning.
    std::shared_ptr<JobState> pop();

    /// Request cancellation. Returns false for unknown ids; finished
    /// jobs are left untouched (their status is already terminal).
    bool cancel(std::uint64_t id);

    [[nodiscard]] std::shared_ptr<JobState> find(std::uint64_t id) const;
    /// Every job still queryable by id (queued, running and the retire
    /// ring), ascending id — the /v1/health snapshot walks this.
    [[nodiscard]] std::vector<std::shared_ptr<JobState>> jobs() const;
    [[nodiscard]] std::size_t depth() const;
    [[nodiscard]] std::uint64_t submitted() const {
        std::lock_guard<std::mutex> lk(mu_);
        return next_id_ - 1;
    }

    /// Wake every blocked pop() with nullptr; subsequent submits are
    /// rejected (nullptr).
    void stop();

private:
    struct QueueItem {
        int priority;
        std::uint64_t id;
        std::shared_ptr<JobState> state;
        bool operator<(const QueueItem& o) const {
            // std::priority_queue is a max-heap: higher priority wins,
            // then LOWER id (earlier submission).
            if (priority != o.priority) return priority < o.priority;
            return id > o.id;
        }
    };

    void retire_locked(const std::shared_ptr<JobState>& job,
                       JobStatus status);

    std::size_t retire_capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stopped_ = false;
    std::uint64_t next_id_ = 1;
    std::priority_queue<QueueItem> heap_;
    std::unordered_map<std::uint64_t, std::shared_ptr<JobState>> by_id_;
    std::deque<std::uint64_t> retired_;  ///< finished ids, oldest first
};

}  // namespace gcdr::serve
