#pragma once
// Minimal HTTP/1.1 over POSIX sockets — the daemon's wire layer and the
// matching client the load generator / tests use. Scope is deliberately
// small (the repo's no-external-deps rule): request line + headers +
// Content-Length bodies in, fixed-length or chunked responses out,
// keep-alive connections, IPv4 loopback by default. Not a general web
// server: no TLS, no request pipelining, no chunked *requests*.
//
// Threading model: one acceptor thread (poll with a short timeout, so
// stop() is prompt) plus one thread per live connection. Connection
// threads block in recv with a receive timeout and re-check the stop
// flag, so shutdown never hangs on an idle keep-alive connection. The
// handler runs on the connection thread; it may block (the /v1/run
// endpoint waits for a worker to finish the job).

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace gcdr::serve {

struct HttpRequest {
    std::string method;   ///< "GET", "POST", "DELETE", ...
    std::string target;   ///< path + optional query, e.g. "/v1/jobs/3"
    std::string version;  ///< "HTTP/1.1"
    /// Header fields in arrival order, names lowercased.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// One request/response exchange on a live connection. The handler must
/// either respond() once or begin_chunked()/send_chunk().../end_chunked().
class HttpExchange {
public:
    explicit HttpExchange(int fd) : fd_(fd) {}

    /// Fixed-length response. `body` is sent verbatim.
    void respond(int status, std::string_view body,
                 std::string_view content_type = "application/json");

    /// Start a chunked (streaming) response.
    void begin_chunked(int status,
                       std::string_view content_type = "application/json");
    /// One chunk (empty data is skipped — an empty chunk would terminate
    /// the stream on the wire).
    void send_chunk(std::string_view data);
    void end_chunked();

    [[nodiscard]] bool responded() const { return responded_; }
    /// A send failed (peer gone): the connection will be dropped.
    [[nodiscard]] bool failed() const { return failed_; }

    /// Status code of the response sent (0 until respond/begin_chunked)
    /// and body bytes written so far — the server's access log reads
    /// both after the handler returns.
    [[nodiscard]] int status() const { return status_; }
    [[nodiscard]] std::size_t bytes_sent() const { return bytes_sent_; }

private:
    bool send_all(std::string_view data);

    int fd_;
    bool responded_ = false;
    bool chunked_open_ = false;
    bool failed_ = false;
    int status_ = 0;
    std::size_t bytes_sent_ = 0;
};

class HttpServer {
public:
    using Handler = std::function<void(const HttpRequest&, HttpExchange&)>;

    HttpServer() = default;
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Bind 127.0.0.1:`port` (0 = ephemeral) and start accepting.
    /// Returns false (with errno intact) when the socket can't be bound.
    bool start(std::uint16_t port, Handler handler);

    /// The bound port (after start; useful with port 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }
    [[nodiscard]] bool running() const {
        return running_.load(std::memory_order_acquire);
    }

    /// Stop accepting, wake idle connections, join every thread. Safe to
    /// call twice; called by the destructor.
    void stop();

private:
    void accept_loop();
    void connection_loop(int fd);
    /// Reads one full request from `fd`. Returns 1 on success, 0 on
    /// clean EOF / stop, -1 on protocol or I/O error (connection drops).
    int read_request(int fd, std::string& buf, HttpRequest& out);

    Handler handler_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;
    std::mutex conn_mu_;
    std::list<std::thread> conns_;
};

/// Blocking keep-alive client. Reconnects transparently when the server
/// closed the previous keep-alive connection.
class HttpClient {
public:
    HttpClient(std::string host, std::uint16_t port)
        : host_(std::move(host)), port_(port) {}
    ~HttpClient();
    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    struct Response {
        int status = 0;
        std::vector<std::pair<std::string, std::string>> headers;
        std::string body;  ///< chunked responses arrive de-chunked
        bool chunked = false;
        /// Chunk boundaries as received (offsets into body) — streaming
        /// tests assert per-chunk framing.
        std::vector<std::string> chunks;
    };

    /// One round trip. Returns false on connect/send/parse failure.
    bool request(std::string_view method, std::string_view target,
                 std::string_view body, Response& out);

    /// Convenience wrappers.
    bool get(std::string_view target, Response& out) {
        return request("GET", target, {}, out);
    }
    bool post(std::string_view target, std::string_view body,
              Response& out) {
        return request("POST", target, body, out);
    }

private:
    bool ensure_connected();
    void disconnect();
    bool send_all(std::string_view data);
    bool read_response(Response& out);
    /// Pulls more bytes into buf_; false on EOF/error.
    bool fill();

    std::string host_;
    std::uint16_t port_;
    int fd_ = -1;
    std::string buf_;  ///< unconsumed bytes from the socket
};

}  // namespace gcdr::serve
