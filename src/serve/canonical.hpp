#pragma once
// Canonical JSON for the serving daemon — the implementation moved to
// obs/canonical.hpp when the scenario subsystem started hashing its
// config documents the same way (scenario/ sits below serve/ in the
// dependency order). These aliases keep every serve/ call site and the
// historical include path working unchanged.

#include "obs/canonical.hpp"

namespace gcdr::serve {

using obs::canonical_hash;
using obs::canonical_json;
using obs::canonical_number;
using obs::canonicalize;

}  // namespace gcdr::serve
