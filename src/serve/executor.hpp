#pragma once
// Cache-aware job execution: turns one JobSpec into a result envelope,
// consulting the content-addressed ResultCache before touching the
// statistical/MC model and storing every freshly computed payload back.
//
// Payloads (the cached unit) are compact JSON objects produced by
// deterministic pure functions of (resolved config, seed), so a cache
// hit returns byte-identical content to recomputation:
//   ber:   {"ber":x}
//   eye:   {"bathtub_opening_ui":x,"eye_margin_ui":y}
//   mc:    {"ber":..,"ci_hi":..,"ci_lo":..,"converged":..,"ess":..,
//           "n_samples":..,"std_err":..}
//   sweep: {"points":[<ber payload>|null, ...]}  (index order; null =
//          not computed before cancel/deadline)
//
// Sweep points are individually keyed (sweep_point_spec) and computed
// through ThreadPool::parallel_for_cancellable, so a job that hits its
// deadline or is cancelled returns kPartial/kCancelled with whatever
// completed — and those points are already stored, which is exactly why
// resubmitting the same sweep resumes instead of recomputing.

#include <cstdint>
#include <string>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"

namespace gcdr::serve {

inline constexpr const char* kResultSchema = "gcdr.serve.result/v1";

struct ExecOutcome {
    JobStatus status = JobStatus::kDone;
    std::string envelope;  ///< full gcdr.serve.result/v1 JSON
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
};

class JobExecutor {
public:
    /// `metrics` may be null (tests); serve.* instruments are optional.
    JobExecutor(ResultCache& cache, obs::MetricsRegistry* metrics = nullptr);

    /// Execute the job's spec; checks `job`'s cancel flag and deadline
    /// between compute units and streams per-point lines to
    /// job.stream_sink when set. Does NOT call job.finish() — the worker
    /// loop owns the state transition.
    ExecOutcome execute(JobState& job, exec::ThreadPool& pool);

    /// The cache key of a (resolved) spec — exposed for tests and the
    /// server's introspection endpoints.
    [[nodiscard]] static CacheKey key_of(const JobSpec& spec);

private:
    ExecOutcome run_single(JobState& job, exec::ThreadPool& pool);
    ExecOutcome run_sweep(JobState& job, exec::ThreadPool& pool);
    /// `job` non-null only for single (non-sweep-point) computations:
    /// scenario health_probe tasks push live gcdr.health/v1 frames into
    /// it for the /v1/watch stream. Cache hits bypass this path, so a
    /// fully cached job streams no frames — only the envelope.
    [[nodiscard]] std::string compute_payload(const JobSpec& spec,
                                              exec::ThreadPool& pool,
                                              JobState* job = nullptr) const;

    ResultCache* cache_;
    obs::MetricsRegistry* metrics_;
};

}  // namespace gcdr::serve
