// gcdr_served — the simulation-as-a-service daemon.
//
//   gcdr_served [--port N] [--port-file PATH] [--cache PATH]
//               [--max-entries N] [--workers N] [--job-threads N]
//               [--log-level LEVEL]
//
// Binds 127.0.0.1 only (this is a lab-bench tool, not an internet
// service). With --port 0 (default) the kernel picks a free port; the
// chosen port is printed on stdout ("listening on 127.0.0.1:PORT") and,
// with --port-file, written to a file scripts can poll for readiness.
// SIGINT/SIGTERM (or POST /v1/shutdown) drain and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/log.hpp"
#include "serve/server.hpp"

namespace {

std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--port N] [--port-file PATH] [--cache PATH]\n"
        "          [--max-entries N] [--workers N] [--job-threads N]\n"
        "          [--log-level trace|debug|info|warn|error]\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    using gcdr::serve::ServeServer;
    using gcdr::serve::ServerOptions;

    ServerOptions opts;
    opts.cache_path = "serve_cache.jsonl";
    std::string port_file;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        auto need = [&](const char* flag) -> const char* {
            if (!next) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            ++i;
            return next;
        };
        if (arg == "--port") {
            opts.port = static_cast<std::uint16_t>(
                std::strtoul(need("--port"), nullptr, 10));
        } else if (arg == "--port-file") {
            port_file = need("--port-file");
        } else if (arg == "--cache") {
            opts.cache_path = need("--cache");
        } else if (arg == "--max-entries") {
            opts.cache_max_entries =
                std::strtoull(need("--max-entries"), nullptr, 10);
        } else if (arg == "--workers") {
            opts.workers = std::strtoull(need("--workers"), nullptr, 10);
        } else if (arg == "--job-threads") {
            opts.job_threads =
                std::strtoull(need("--job-threads"), nullptr, 10);
        } else if (arg == "--log-level") {
            gcdr::obs::LogLevel level{};
            if (!gcdr::obs::parse_log_level(need("--log-level"), level)) {
                std::fprintf(stderr, "bad --log-level\n");
                return 2;
            }
            gcdr::obs::Logger::global().set_level(level);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }

    ServeServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "failed to bind 127.0.0.1:%u\n",
                     static_cast<unsigned>(opts.port));
        return 1;
    }
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!port_file.empty()) {
        if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
            std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
            return 1;
        }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_signalled && !server.shutdown_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    return 0;
}
