#pragma once
// Request/job protocol of the serving daemon (gcdr.serve.job/v1).
//
// A job is a JSON object:
//
//   {"type":"ber"|"eye"|"sweep"|"mc"|"scenario",
//    "config":{...statmodel knobs, all optional...},
//    "axes":[{"name":"sj_uipp","values":[0.1,0.2]}, ...],   // sweep only
//    "ber_target":1e-12,                                     // eye only
//    "mc":{"max_evals":200000,"target_rel_err":0.1},         // mc only
//    "scenario":{...gcdr.scenario/v1 document...},           // scenario only
//    "seed":1, "priority":0, "deadline_s":0, "stream":false}
//
// A "scenario" job carries a full gcdr.scenario/v1 document (the same
// format bench_scenario loads from scenarios/*.json) in its "scenario"
// key and excludes config/axes/ber_target/mc — the document defines the
// whole workload. Its payload is scenario::result_payload_json of the
// run: deterministic, thread-count invariant, cacheable.
//
// "config" accepts exactly the statmodel::ModelConfig surface: sj_freq_norm,
// freq_offset, sampling_advance_ui, max_cid, cid_ref,
// trigger_mismatch_uirms, grid_dx, pdf_prune_floor, run_model
// ("weighted"|"worst_case"), and the jitter budget dj_uipp / rj_uirms /
// sj_uipp / ckj_uirms. Unknown keys are a hard parse error — a typo that
// silently fell back to a default would poison the cache under a wrong
// key.
//
// Content addressing: the cache key hashes the RESOLVED spec — every
// field explicitly re-serialized from the parsed struct in sorted key
// order with canonical number formatting (serve/canonical.hpp) — so
// requests that differ only in key order, float spelling, or omitted
// defaults address the same cache entry. seed / priority / deadline_s /
// stream are execution envelope, not workload, and stay out of the hash
// (seed is a separate key component).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/sweep.hpp"
#include "obs/json_parse.hpp"
#include "scenario/scenario_doc.hpp"
#include "statmodel/gated_osc_model.hpp"

namespace gcdr::serve {

/// Version stamp of the numerical model backing cached results. Part of
/// every cache key: bump it whenever statmodel/mc produce different
/// numbers for the same config, and stale cache segments stop matching
/// instead of serving wrong answers.
inline constexpr const char* kModelVersion = "gcdr-statmodel/1";

/// Scenario jobs execute the full scenario runtime (statmodel + mc +
/// behavioral cdr), so they carry their own version stamp: a change in
/// any of those layers invalidates scenario results without having to
/// bump the narrower statmodel version (and vice versa).
inline constexpr const char* kScenarioModelVersion = "gcdr-scenario/1";

enum class JobType { kBer, kEye, kSweep, kMc, kScenario };

[[nodiscard]] const char* job_type_name(JobType t);

/// The model-version stamp hashed into a job's cache key.
[[nodiscard]] const char* model_version_of(JobType t);

struct McParams {
    std::uint64_t max_evals = 200'000;
    double target_rel_err = 0.1;
};

struct JobSpec {
    JobType type = JobType::kBer;
    statmodel::ModelConfig cfg;
    std::vector<exec::SweepAxis> axes;  ///< sweep only
    double ber_target = 1e-12;          ///< eye only
    McParams mc;                        ///< mc only
    scenario::ScenarioDoc scenario;     ///< scenario only
    bool has_scenario = false;
    // Execution envelope (not part of the config hash).
    std::uint64_t seed = 1;
    int priority = 0;
    double deadline_s = 0.0;  ///< 0 = no deadline
    bool stream = false;      ///< sweep: chunked per-point streaming
};

/// Set one ModelConfig field by protocol name (doubles only — the sweep
/// axes address the same namespace). Returns false for unknown names.
[[nodiscard]] bool apply_config_field(statmodel::ModelConfig& cfg,
                                      std::string_view name, double value);

/// Parse a gcdr.serve.job/v1 object. On failure returns false and fills
/// `error` with a one-line reason (unknown key, bad type, empty axis...).
[[nodiscard]] bool parse_job(const obs::JsonValue& v, JobSpec& spec,
                             std::string& error);

/// Canonical resolved serialization of the workload-defining part of a
/// spec (type + full config + axes/ber_target/mc) — the string whose
/// fnv1a64 is the cache key's config_hash. Already in canonical form:
/// canonicalizing its parse is the identity (tested).
[[nodiscard]] std::string resolved_spec_json(const JobSpec& spec);

/// fnv1a64(resolved_spec_json(spec)).
[[nodiscard]] std::uint64_t spec_config_hash(const JobSpec& spec);

/// The spec of one sweep grid point: the base spec's config with the
/// point's axis values applied, as a BER job (axes cleared). Sweep
/// points therefore share cache entries with standalone BER queries for
/// the same resolved config.
[[nodiscard]] JobSpec sweep_point_spec(const JobSpec& sweep,
                                       const exec::SweepPoint& p);

}  // namespace gcdr::serve
